package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"perm/internal/engine"
	"perm/internal/wire"
)

// bigDB seeds a database whose cross-join result is large enough that any
// cursor spans many batches.
func bigDB(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`CREATE TABLE big (i int, s text)`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'row %d payload payload payload')", i, i)
	}
	if _, err := s.Execute(b.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// waitZero polls an int-returning observable down to zero.
func waitZero(t *testing.T, what string, f func() int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s still %d after 5s", what, f())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCursorDisconnectFreesPortal kills the TCP connection while a cursor
// is suspended halfway through a large result: the server must free the
// portal (closing the executor tree) and tear down the session promptly.
func TestCursorDisconnectFreesPortal(t *testing.T) {
	db := bigDB(t, 100)
	addr, srv, shutdown := startServerSrv(t, db, Config{CursorBatchRows: 8})
	defer shutdown()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	if _, err := wire.Handshake(conn, "stream-test"); err != nil {
		t.Fatal(err)
	}
	req := wire.Execute{SQL: `SELECT b1.s FROM big b1, big b2`, FetchSize: 10}
	if err := conn.WriteMessage(wire.MsgExecute, req.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read this fetch's frames up to the suspension, so the portal is
	// definitely open server-side...
	for {
		typ, _, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if typ == wire.MsgSuspended {
			break
		}
		if typ != wire.MsgRowDesc && typ != wire.MsgRowBatch {
			t.Fatalf("unexpected frame %q", typ)
		}
	}
	if got := srv.ActivePortals(); got != 1 {
		t.Fatalf("ActivePortals = %d, want 1", got)
	}
	// ... then vanish without a goodbye.
	nc.Close()
	waitZero(t, "portals", srv.ActivePortals)
	waitZero(t, "sessions", db.ActiveSessions)
}

// TestCursorDisconnectMidWrite kills the connection while the server is
// streaming a large fetch, so the failure surfaces as a write error inside
// the batch loop rather than an idle suspension.
func TestCursorDisconnectMidWrite(t *testing.T) {
	db := bigDB(t, 120)
	addr, srv, shutdown := startServerSrv(t, db, Config{CursorBatchRows: 4, QueryTimeout: 5 * time.Second})
	defer shutdown()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	if _, err := wire.Handshake(conn, "stream-test"); err != nil {
		t.Fatal(err)
	}
	// FetchSize 0: the server streams the whole 14400-row cross join; the
	// client disappears after the first frame.
	req := wire.Execute{SQL: `SELECT b1.s FROM big b1, big b2`}
	if err := conn.WriteMessage(wire.MsgExecute, req.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.ReadMessage(); err != nil {
		t.Fatal(err)
	}
	nc.Close()
	waitZero(t, "portals", srv.ActivePortals)
	waitZero(t, "sessions", db.ActiveSessions)
}

// TestCursorTimeoutBetweenFetches parks an open cursor past the per-query
// timeout: the next Fetch must fail with the typed timeout error, the
// portal must be freed, and the connection must stay usable.
func TestCursorTimeoutBetweenFetches(t *testing.T) {
	db := bigDB(t, 50)
	addr, srv, shutdown := startServerSrv(t, db, Config{QueryTimeout: 100 * time.Millisecond, CursorBatchRows: 4})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur, err := c.Execute("", `SELECT i FROM big`, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the first batch, then outstay the timeout.
	for i := 0; i < 5; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatalf("first batch: %v", err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	_, err = cur.Next() // triggers the next Fetch
	var serr *wire.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.ErrCodeTimeout {
		t.Fatalf("fetch past deadline: err=%v, want typed timeout", err)
	}
	if !strings.Contains(serr.Message, "per-query timeout") {
		t.Fatalf("timeout message = %q", serr.Message)
	}
	waitZero(t, "portals", srv.ActivePortals)
	// The connection survives the statement error.
	rows, err := c.Query(`SELECT count(*) FROM big`)
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	row, err := rows.Next()
	if err != nil || row[0].Int() != 50 {
		t.Fatalf("after timeout: row=%v err=%v", row, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCursorMidStreamError streams a result that fails partway through
// (division by zero on a later row): the rows before the failure arrive,
// the error comes back typed in-band, the portal is freed, and the
// connection stays usable.
func TestCursorMidStreamError(t *testing.T) {
	db := engine.NewDB()
	s := db.NewSession()
	if _, err := s.Execute(`CREATE TABLE seq (i int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`INSERT INTO seq VALUES (1), (2), (3), (4), (5)`); err != nil {
		t.Fatal(err)
	}
	s.Close()
	addr, srv, shutdown := startServerSrv(t, db, Config{CursorBatchRows: 1})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur, err := c.Execute("", `SELECT 10 / (4 - i) FROM seq`, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	var streamErr error
	for {
		row, err := cur.Next()
		if err != nil {
			streamErr = err
			break
		}
		if row == nil {
			break
		}
		got = append(got, row[0].Int())
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 10 {
		t.Fatalf("rows before failure = %v", got)
	}
	var serr *wire.ServerError
	if !errors.As(streamErr, &serr) || !strings.Contains(serr.Message, "division by zero") {
		t.Fatalf("mid-stream error = %v, want division by zero", streamErr)
	}
	cur.Close()
	waitZero(t, "portals", srv.ActivePortals)
	if _, err := c.Exec(`SELECT 1`); err != nil {
		t.Fatalf("connection unusable after mid-stream error: %v", err)
	}
}

// TestParkedCursorReaped leaves a suspended cursor with a silent client:
// once the portal's query deadline plus one grace timeout passes, the
// server reaps the connection — a silent client cannot pin the executor
// tree, session, or MaxConns slot indefinitely.
func TestParkedCursorReaped(t *testing.T) {
	db := bigDB(t, 50)
	addr, srv, shutdown := startServerSrv(t, db, Config{QueryTimeout: 100 * time.Millisecond, CursorBatchRows: 4})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("", `SELECT i FROM big`, nil, 4); err != nil {
		t.Fatal(err)
	}
	if got := srv.ActivePortals(); got != 1 {
		t.Fatalf("ActivePortals = %d, want 1", got)
	}
	// No Fetch, ever. Deadline (100ms) + grace (100ms) later the server
	// must have torn everything down on its own.
	waitZero(t, "portals", srv.ActivePortals)
	waitZero(t, "sessions", db.ActiveSessions)
}

// TestShutdownSkipsExpiredPortal starts a graceful shutdown while a parked
// cursor's deadline has already passed: its next Fetch could only fail with
// the typed timeout, so Shutdown must close it immediately instead of
// burning the whole drain deadline waiting for it.
func TestShutdownSkipsExpiredPortal(t *testing.T) {
	db := bigDB(t, 50)
	addr, srv, _ := startServerSrv(t, db, Config{QueryTimeout: 50 * time.Millisecond, CursorBatchRows: 4})

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("", `SELECT i FROM big`, nil, 4); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // expire the portal deadline

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("shutdown with expired portal took %v", took)
	}
	if got := srv.ActivePortals(); got != 0 {
		t.Fatalf("portals after shutdown = %d", got)
	}
}

// TestShutdownDrainsOpenCursor starts a graceful shutdown while a cursor is
// suspended: the connection must survive for the client to finish fetching
// (Fetch and ClosePortal stay admissible), after which the connection
// closes and Shutdown returns within the drain deadline.
func TestShutdownDrainsOpenCursor(t *testing.T) {
	db := bigDB(t, 40)
	addr, srv, _ := startServerSrv(t, db, Config{CursorBatchRows: 4})
	// Shutdown driven by hand below; the startServerSrv closer would
	// double-shutdown.

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur, err := c.Execute("", `SELECT i FROM big`, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Give shutdown time to close listeners and idle connections; the
	// cursor connection must NOT be one of them.
	time.Sleep(50 * time.Millisecond)

	var n int
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatalf("fetch during shutdown: %v", err)
		}
		if row == nil {
			break
		}
		n++
	}
	if n != 39 { // 40 rows, one consumed before shutdown
		t.Fatalf("drained %d rows during shutdown, want 39", n)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor close: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	if got := srv.ActivePortals(); got != 0 {
		t.Fatalf("portals after shutdown = %d", got)
	}
}

// TestShutdownKillsParkedCursor expires the drain deadline while a cursor
// sits open: the kill path force-closes the connection, interrupts the
// session, and frees the portal.
func TestShutdownKillsParkedCursor(t *testing.T) {
	db := bigDB(t, 40)
	addr, srv, _ := startServerSrv(t, db, Config{CursorBatchRows: 4})

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur, err := c.Execute("", `SELECT i FROM big`, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}

	// An already-expired context: drain nothing, kill immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown = %v, want context.Canceled", err)
	}
	waitZero(t, "portals", srv.ActivePortals)
	waitZero(t, "sessions", db.ActiveSessions)
}

// TestStreamedTagMatchesMaterialized is the tag regression: "SELECT n" for a
// streamed result is computed at drain time and must agree with the
// materialized path, over the wire included.
func TestStreamedTagMatchesMaterialized(t *testing.T) {
	db := bigDB(t, 30)
	addr, _, shutdown := startServerSrv(t, db, Config{CursorBatchRows: 4})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess := db.NewSession()
	defer sess.Close()

	for _, q := range []string{
		`SELECT i FROM big`,
		`SELECT i FROM big WHERE i < 7`,
		`SELECT i FROM big LIMIT 11`,
		`SELECT b1.i FROM big b1, big b2 WHERE b1.i = b2.i AND b1.i % 2 = 0`,
		`SELECT i FROM big WHERE i < 0`,
	} {
		res, err := sess.Execute(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want := fmt.Sprintf("SELECT %d", len(res.Rows))
		if res.Tag != want {
			t.Fatalf("%q: materialized tag %q, want %q", q, res.Tag, want)
		}
		cur, err := c.Execute("", q, nil, 3)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		var n int
		for {
			row, err := cur.Next()
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			if row == nil {
				break
			}
			n++
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if n != len(res.Rows) {
			t.Fatalf("%q: streamed %d rows, materialized %d", q, n, len(res.Rows))
		}
		if cur.Complete.Tag != want {
			t.Fatalf("%q: streamed tag %q, want %q", q, cur.Complete.Tag, want)
		}
	}
}
