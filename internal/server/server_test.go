package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"perm/internal/engine"
	"perm/internal/value"
	"perm/internal/wire"
)

// startServer runs a server on a loopback listener and returns its address
// and a shutdown func.
func startServer(t *testing.T, db *engine.DB, cfg Config) (addr string, shutdown func()) {
	t.Helper()
	addr, _, shutdown = startServerSrv(t, db, cfg)
	return addr, shutdown
}

// startServerSrv is startServer, additionally exposing the Server for tests
// that assert on its counters or drive Shutdown themselves.
func startServerSrv(t *testing.T, db *engine.DB, cfg Config) (addr string, srv *Server, shutdown func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv = New(db, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	var once sync.Once
	return l.Addr().String(), srv, func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-done; err != ErrServerClosed {
				t.Errorf("serve returned %v, want ErrServerClosed", err)
			}
		})
	}
}

func seedDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	s := db.NewSession()
	defer s.Close()
	for _, stmt := range []string{
		`CREATE TABLE r (i int, s text)`,
		`INSERT INTO r VALUES (1, 'a'), (2, 'b'), (3, NULL)`,
	} {
		if _, err := s.Execute(stmt); err != nil {
			t.Fatalf("seed %q: %v", stmt, err)
		}
	}
	return db
}

func TestQueryRoundTrip(t *testing.T) {
	db := seedDB(t)
	addr, shutdown := startServer(t, db, Config{})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rows, err := c.Query(`SELECT PROVENANCE i FROM r ORDER BY i`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := rows.Desc.Names; len(got) != 3 || got[0] != "i" || got[1] != "prov_public_r_i" || got[2] != "prov_public_r_s" {
		t.Fatalf("columns = %v", got)
	}
	if rows.Desc.IsProv[0] || !rows.Desc.IsProv[1] || !rows.Desc.IsProv[2] {
		t.Fatalf("provenance flags = %v", rows.Desc.IsProv)
	}
	var all []value.Row
	for {
		row, err := rows.Next()
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if row == nil {
			break
		}
		all = append(all, row)
	}
	if len(all) != 3 || all[0][0].Int() != 1 || all[0][1].Int() != 1 {
		t.Fatalf("rows = %v", all)
	}
	if rows.Complete.Tag != "SELECT 3" {
		t.Fatalf("tag = %q", rows.Complete.Tag)
	}

	// Remote results must equal the embedded engine's, value for value.
	s := db.NewSession()
	defer s.Close()
	local, err := s.Execute(`SELECT PROVENANCE i FROM r ORDER BY i`)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	for i, lr := range local.Rows {
		if value.CompareRows(lr, all[i]) != 0 {
			t.Fatalf("row %d: remote %v != local %v", i, all[i], lr)
		}
	}
}

func TestStatementErrorKeepsConnectionUsable(t *testing.T) {
	addr, shutdown := startServer(t, seedDB(t), Config{})
	defer shutdown()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Query(`SELECT nope FROM missing`); err == nil {
		t.Fatal("want error for bad query")
	} else if _, ok := err.(*wire.ServerError); !ok {
		t.Fatalf("want *wire.ServerError, got %T: %v", err, err)
	}
	done, err := c.Exec(`SELECT i FROM r WHERE i = 1`)
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	if done.Tag != "SELECT 1" {
		t.Fatalf("tag = %q", done.Tag)
	}
}

func TestSessionIsolationAndSettings(t *testing.T) {
	addr, shutdown := startServer(t, seedDB(t), Config{})
	defer shutdown()
	c1, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := c1.Exec(`SET provenance_contribution = 'copy'`); err != nil {
		t.Fatalf("set: %v", err)
	}
	show := func(c *wire.Client) string {
		rows, err := c.Query(`SHOW provenance_contribution`)
		if err != nil {
			t.Fatalf("show: %v", err)
		}
		row, err := rows.Next()
		if err != nil || row == nil {
			t.Fatalf("show next: %v %v", row, err)
		}
		rows.Close()
		return row[0].Str()
	}
	if got := show(c1); got != "copy" {
		t.Fatalf("c1 contribution = %q", got)
	}
	if got := show(c2); got != "influence" {
		t.Fatalf("c2 contribution = %q (session settings leaked)", got)
	}
}

func TestPerQueryTimeout(t *testing.T) {
	db := engine.NewDB()
	s := db.NewSession()
	defer s.Close()
	// A self-cross-joined table big enough to overrun a tiny timeout.
	if _, err := s.Execute(`CREATE TABLE big (n int)`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`INSERT INTO big VALUES (0)`)
	for i := 1; i < 400; i++ {
		fmt.Fprintf(&b, ", (%d)", i)
	}
	if _, err := s.Execute(b.String()); err != nil {
		t.Fatal(err)
	}

	addr, shutdown := startServer(t, db, Config{QueryTimeout: 5 * time.Millisecond})
	defer shutdown()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Exec(`SELECT count(*) FROM big a, big b, big c WHERE a.n <= b.n`)
	if err == nil {
		t.Fatal("runaway query was not canceled")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("error = %v, want per-query timeout", err)
	}
	// The session survives the cancellation.
	done, err := c.Exec(`SELECT count(*) FROM big`)
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	if done.Tag != "SELECT 1" {
		t.Fatalf("tag = %q", done.Tag)
	}

	// A join whose probe loop never emits a row (the condition can never
	// match) must still observe the timeout: this exercises the row-free
	// cancellation polls, which the materialization loops cannot cover.
	_, err = c.Exec(`SELECT count(*) FROM big a JOIN big b ON a.n >= b.n JOIN big c ON a.n > c.n + 1000`)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("never-matching join not canceled: %v", err)
	}
}

func TestConnectionLimit(t *testing.T) {
	addr, shutdown := startServer(t, seedDB(t), Config{MaxConns: 2})
	defer shutdown()
	c1, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := wire.Dial(addr); err == nil {
		t.Fatal("third connection admitted over MaxConns=2")
	} else if !strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("refusal error = %v", err)
	}

	// Closing one admits the next.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := wire.Dial(addr)
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not released: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSessionTeardownOnDisconnect(t *testing.T) {
	db := seedDB(t)
	addr, shutdown := startServer(t, db, Config{})
	defer shutdown()

	base := db.ActiveSessions()
	var clients []*wire.Client
	for i := 0; i < 5; i++ {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if _, err := c.Exec(`SELECT i FROM r`); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.ActiveSessions(); got != base+5 {
		t.Fatalf("active sessions = %d, want %d", got, base+5)
	}
	for _, c := range clients {
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for db.ActiveSessions() != base {
		if time.Now().After(deadline) {
			t.Fatalf("sessions not torn down: %d live", db.ActiveSessions()-base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestOnlineBackupRestores(t *testing.T) {
	db := seedDB(t)
	addr, shutdown := startServer(t, db, Config{})
	defer shutdown()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Materialize provenance eagerly, then back up over the wire.
	if _, err := c.Exec(`CREATE TABLE p AS SELECT PROVENANCE i, s FROM r`); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	var snap bytes.Buffer
	if err := c.Backup(&snap); err != nil {
		t.Fatalf("backup: %v", err)
	}

	restored := engine.NewDB()
	if err := restored.Store().Restore(&snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	s := restored.NewSession()
	defer s.Close()
	res, err := s.Execute(`SELECT count(*) FROM p`)
	if err != nil {
		t.Fatalf("query restored: %v", err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("restored provenance table has %v rows, want 3", res.Rows[0][0])
	}
}

func TestBackupDoesNotBlockQueries(t *testing.T) {
	db := seedDB(t)
	// Grow the table so the backup encode takes a visible amount of time.
	s := db.NewSession()
	var b strings.Builder
	b.WriteString(`INSERT INTO r VALUES (10, 'x')`)
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, ", (%d, 'padding-%d')", i+10, i)
	}
	if _, err := s.Execute(b.String()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	addr, shutdown := startServer(t, db, Config{})
	defer shutdown()

	var wg sync.WaitGroup
	wg.Add(2)
	errCh := make(chan error, 2)
	go func() {
		defer wg.Done()
		c, err := wire.Dial(addr)
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		for i := 0; i < 3; i++ {
			var snap bytes.Buffer
			if err := c.Backup(&snap); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		c, err := wire.Dial(addr)
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		for i := 0; i < 20; i++ {
			if _, err := c.Exec(`SELECT PROVENANCE count(*) FROM r GROUP BY s`); err != nil {
				errCh <- err
				return
			}
			if _, err := c.Exec(fmt.Sprintf(`INSERT INTO r VALUES (%d, 'c')`, 1000+i)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent backup/query: %v", err)
	}
}

func TestGracefulShutdownClosesIdleConns(t *testing.T) {
	db := seedDB(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	// An idle pooled connection (request completed, nothing in flight) must
	// not delay shutdown: it is closed immediately, like net/http does.
	c, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`SELECT i FROM r`); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("shutdown waited %s on an idle connection", waited)
	}
	// The idle session was torn down and new dials fail.
	if _, err := c.Exec(`SELECT 1`); err == nil {
		t.Fatal("idle connection survived shutdown")
	}
	if _, err := wire.Dial(l.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	if err := <-done; err != ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}
	if got := db.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions still active after shutdown", got)
	}
}

func TestProtocolVersionMismatch(t *testing.T) {
	addr, shutdown := startServer(t, seedDB(t), Config{})
	defer shutdown()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if err := conn.WriteMessage(wire.MsgHello, wire.Hello{Version: 99, Client: "test"}.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, body, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("type = %q, want error", typ)
	}
	if msg := wire.NewReader(body).String(); !strings.Contains(msg, "protocol version") {
		t.Fatalf("message = %q", msg)
	}
}
