package server

import (
	"fmt"
	"strings"
	"testing"

	"perm/internal/engine"
	"perm/internal/value"
	"perm/internal/wire"
	"perm/internal/workload"
)

// The differential harness runs the provenance query suite through every
// execution path the system now has and asserts byte-identical results:
//
//   - embedded:       engine Session.Execute (materialized drain wrapper)
//   - embedded-prep:  engine Session.Prepare + streaming Rows (typed binds)
//   - wire-query:     MsgQuery streaming (server forwards batched frames)
//   - wire-cursor:    Parse-less one-shot cursor with a tiny fetch size, so
//     every query crosses several Fetch round trips
//   - wire-prepared:  real server-side prepared statement + bind execution
//
// It extends PR 3's assertIdentical: same rendered-result comparison, but
// across execution paths of one database instead of across replicas.

// differentialSuite is the unparameterized battery (the replication suite's
// provenance coverage, verbatim).
var differentialSuite = replicationSuite

// paramCase pairs a parameterized statement with bind arguments and the
// equivalent literal SQL. The bind paths must match the literal text run
// embedded — that is the "binds travel as typed wire parameters and results
// are identical to the interpolated path" guarantee.
type paramCase struct {
	sql     string
	args    []value.Value
	literal string
}

var paramSuite = []paramCase{
	{
		sql:     `SELECT PROVENANCE mId, text FROM messages WHERE mId > ? ORDER BY mId`,
		args:    []value.Value{value.NewInt(1)},
		literal: `SELECT PROVENANCE mId, text FROM messages WHERE mId > 1 ORDER BY mId`,
	},
	{
		sql:     `SELECT PROVENANCE name FROM users u, messages m WHERE u.uId = m.uId AND name <> ? ORDER BY name`,
		args:    []value.Value{value.NewString("nobody")},
		literal: `SELECT PROVENANCE name FROM users u, messages m WHERE u.uId = m.uId AND name <> 'nobody' ORDER BY name`,
	},
	{
		sql:     `SELECT mId, text FROM messages WHERE text LIKE ? ORDER BY mId`,
		args:    []value.Value{value.NewString("%a%")},
		literal: `SELECT mId, text FROM messages WHERE text LIKE '%a%' ORDER BY mId`,
	},
	{
		sql:     `SELECT PROVENANCE uId, count(*) FROM approved WHERE uId >= ? GROUP BY uId HAVING count(*) >= ? ORDER BY uId`,
		args:    []value.Value{value.NewInt(0), value.NewInt(1)},
		literal: `SELECT PROVENANCE uId, count(*) FROM approved WHERE uId >= 0 GROUP BY uId HAVING count(*) >= 1 ORDER BY uId`,
	},
	{
		sql:     `SELECT mId, ? FROM messages WHERE mId IN (?, ?) ORDER BY mId`,
		args:    []value.Value{value.NewString("tag"), value.NewInt(1), value.NewInt(3)},
		literal: `SELECT mId, 'tag' FROM messages WHERE mId IN (1, 3) ORDER BY mId`,
	},
	{
		sql:     `SELECT PROVENANCE mId FROM messages WHERE mId > ANY (SELECT mId FROM approved WHERE uId <> ?) ORDER BY mId`,
		args:    []value.Value{value.NewInt(99)},
		literal: `SELECT PROVENANCE mId FROM messages WHERE mId > ANY (SELECT mId FROM approved WHERE uId <> 99) ORDER BY mId`,
	},
	{
		sql:     `SELECT CASE WHEN mId = ? THEN ? ELSE NULL END FROM messages ORDER BY mId`,
		args:    []value.Value{value.NewInt(2), value.NewFloat(2.5)},
		literal: `SELECT CASE WHEN mId = 2 THEN 2.5 ELSE NULL END FROM messages ORDER BY mId`,
	},
}

// renderWire flattens a wire result (desc + rows + tag) in exactly the
// renderResult format, so the two sides compare byte for byte.
func renderWire(desc wire.RowDesc, rows []value.Row, tag string) string {
	var b strings.Builder
	for i, c := range desc.Names {
		fmt.Fprintf(&b, "%s|", c)
		fmt.Fprintf(&b, "%s|%v|", desc.Kinds[i], desc.IsProv[i])
	}
	b.WriteString("\n")
	for _, row := range rows {
		for _, v := range row {
			b.WriteString(v.SQLLiteral())
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString(tag)
	return b.String()
}

// renderEngineResult is renderResult plus the command tag.
func renderEngineResult(res *engine.Result) string {
	return renderResult(res) + res.Tag
}

// drainCursor collects a wire cursor.
func drainCursor(t *testing.T, cur *wire.Cursor) (wire.RowDesc, []value.Row, string) {
	t.Helper()
	var rows []value.Row
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatalf("cursor next: %v", err)
		}
		if row == nil {
			break
		}
		rows = append(rows, row)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor close: %v", err)
	}
	return cur.Desc, rows, cur.Complete.Tag
}

func TestDifferentialSuite(t *testing.T) {
	db := engine.NewDB()
	if err := workload.LoadPaperExample(db); err != nil {
		t.Fatal(err)
	}
	addr, srv, shutdown := startServerSrv(t, db, Config{CursorBatchRows: 3})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	sess := db.NewSession()
	defer sess.Close()

	for i, q := range differentialSuite {
		res, err := sess.Execute(q)
		if err != nil {
			t.Fatalf("embedded %q: %v", q, err)
		}
		want := renderEngineResult(res)

		// Embedded streaming path (Session.Query drained by hand).
		erows, err := sess.Query(q)
		if err != nil {
			t.Fatalf("embedded stream %q: %v", q, err)
		}
		var streamed []value.Row
		for {
			row, err := erows.Next()
			if err != nil {
				t.Fatalf("embedded stream next %q: %v", q, err)
			}
			if row == nil {
				break
			}
			streamed = append(streamed, row)
		}
		got := renderEngineResult(&engine.Result{Columns: erows.Columns, Schema: erows.Schema, Rows: streamed, Tag: erows.Tag()})
		if got != want {
			t.Fatalf("embedded stream diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}

		// Wire streaming query (MsgQuery).
		wr, err := c.Query(q)
		if err != nil {
			t.Fatalf("wire query %q: %v", q, err)
		}
		var wrows []value.Row
		for {
			row, err := wr.Next()
			if err != nil {
				t.Fatalf("wire next %q: %v", q, err)
			}
			if row == nil {
				break
			}
			wrows = append(wrows, row)
		}
		if got := renderWire(wr.Desc, wrows, wr.Complete.Tag); got != want {
			t.Fatalf("wire query diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}

		// Wire cursor with a tiny fetch, forcing several Fetch round trips.
		cur, err := c.Execute("", q, nil, 2)
		if err != nil {
			t.Fatalf("wire cursor %q: %v", q, err)
		}
		desc, crows, tag := drainCursor(t, cur)
		if got := renderWire(desc, crows, tag); got != want {
			t.Fatalf("wire cursor diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}

		// Server-side prepared statement, executed by name.
		name := fmt.Sprintf("dq%d", i)
		if _, err := c.Prepare(name, q); err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		pcur, err := c.Execute(name, "", nil, 3)
		if err != nil {
			t.Fatalf("execute prepared %q: %v", q, err)
		}
		desc, crows, tag = drainCursor(t, pcur)
		if got := renderWire(desc, crows, tag); got != want {
			t.Fatalf("wire prepared diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}
		if err := c.CloseStmt(name); err != nil {
			t.Fatalf("close stmt: %v", err)
		}
	}
	if n := srv.ActivePortals(); n != 0 {
		t.Fatalf("portals leaked: %d", n)
	}
}

func TestDifferentialParams(t *testing.T) {
	db := engine.NewDB()
	if err := workload.LoadPaperExample(db); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, db, Config{CursorBatchRows: 2})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	sess := db.NewSession()
	defer sess.Close()

	for i, pc := range paramSuite {
		res, err := sess.Execute(pc.literal)
		if err != nil {
			t.Fatalf("literal %q: %v", pc.literal, err)
		}
		want := renderEngineResult(res)

		// Engine-level binds (embedded prepared statement).
		prep, err := sess.Prepare(pc.sql)
		if err != nil {
			t.Fatalf("engine prepare %q: %v", pc.sql, err)
		}
		if got := prep.NumParams(); got != len(pc.args) {
			t.Fatalf("engine prepare %q: %d params, want %d", pc.sql, got, len(pc.args))
		}
		pres, err := prep.Exec(pc.args...)
		if err != nil {
			t.Fatalf("engine bind exec %q: %v", pc.sql, err)
		}
		if got := renderEngineResult(pres); got != want {
			t.Fatalf("engine binds diverged on %q:\nwant:\n%s\ngot:\n%s", pc.sql, want, got)
		}

		// One-shot wire binds.
		cur, err := c.Execute("", pc.sql, pc.args, 2)
		if err != nil {
			t.Fatalf("wire one-shot bind %q: %v", pc.sql, err)
		}
		desc, crows, tag := drainCursor(t, cur)
		if got := renderWire(desc, crows, tag); got != want {
			t.Fatalf("wire one-shot binds diverged on %q:\nwant:\n%s\ngot:\n%s", pc.sql, want, got)
		}

		// Named server-side prepared statement, executed twice (the second
		// run hits the session plan cache keyed on text + param kinds).
		name := fmt.Sprintf("pq%d", i)
		if n, err := c.Prepare(name, pc.sql); err != nil || n != len(pc.args) {
			t.Fatalf("wire prepare %q: n=%d err=%v", pc.sql, n, err)
		}
		for round := 0; round < 2; round++ {
			pcur, err := c.Execute(name, "", pc.args, 3)
			if err != nil {
				t.Fatalf("wire prepared bind %q round %d: %v", pc.sql, round, err)
			}
			desc, crows, tag = drainCursor(t, pcur)
			if got := renderWire(desc, crows, tag); got != want {
				t.Fatalf("wire prepared binds diverged on %q round %d:\nwant:\n%s\ngot:\n%s", pc.sql, round, want, got)
			}
		}
	}
}

// TestDifferentialDML proves DML binds mutate identically to literal DML:
// the same statements run with binds over the wire against one database and
// as literals embedded against another, then every table must render
// byte-identically (assertIdentical, PR 3's comparator).
func TestDifferentialDML(t *testing.T) {
	bindDB := engine.NewDB()
	litDB := engine.NewDB()
	for _, db := range []*engine.DB{bindDB, litDB} {
		if err := workload.LoadPaperExample(db); err != nil {
			t.Fatal(err)
		}
	}
	addr, shutdown := startServer(t, bindDB, Config{})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	litSess := litDB.NewSession()
	defer litSess.Close()

	type dml struct {
		sql     string
		args    []value.Value
		literal string
	}
	steps := []dml{
		{
			sql:     `INSERT INTO messages VALUES (?, ?, ?)`,
			args:    []value.Value{value.NewInt(9), value.NewString("bound insert"), value.NewInt(1)},
			literal: `INSERT INTO messages VALUES (9, 'bound insert', 1)`,
		},
		{
			sql:     `UPDATE users SET name = ? WHERE uId = ?`,
			args:    []value.Value{value.NewString("Bound Bertha"), value.NewInt(1)},
			literal: `UPDATE users SET name = 'Bound Bertha' WHERE uId = 1`,
		},
		{
			sql:     `DELETE FROM approved WHERE mId = ?`,
			args:    []value.Value{value.NewInt(2)},
			literal: `DELETE FROM approved WHERE mId = 2`,
		},
		{
			sql:     `INSERT INTO imports (mId, text) SELECT mId + ?, text FROM messages WHERE mId = ?`,
			args:    []value.Value{value.NewInt(100), value.NewInt(9)},
			literal: `INSERT INTO imports (mId, text) SELECT mId + 100, text FROM messages WHERE mId = 9`,
		},
	}
	for _, st := range steps {
		done, err := c.Execute("", st.sql, st.args, 0)
		if err != nil {
			t.Fatalf("bind dml %q: %v", st.sql, err)
		}
		if err := done.Close(); err != nil {
			t.Fatalf("bind dml close %q: %v", st.sql, err)
		}
		lres, err := litSess.Execute(st.literal)
		if err != nil {
			t.Fatalf("literal dml %q: %v", st.literal, err)
		}
		if done.Complete.Tag != lres.Tag {
			t.Fatalf("dml %q: bind tag %q, literal tag %q", st.sql, done.Complete.Tag, lres.Tag)
		}
	}
	assertIdentical(t, bindDB, litDB, append(replicationSuite,
		`SELECT * FROM imports ORDER BY mId, text`,
		`SELECT PROVENANCE * FROM messages ORDER BY mId`,
	))
}
