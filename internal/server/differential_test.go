package server

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"perm/internal/engine"
	"perm/internal/value"
	"perm/internal/wire"
	"perm/internal/workload"
)

// The differential harness runs the provenance query suite through every
// execution path the system now has and asserts byte-identical results:
//
//   - embedded:       engine Session.Execute (materialized drain wrapper)
//   - embedded-prep:  engine Session.Prepare + streaming Rows (typed binds)
//   - wire-query:     MsgQuery streaming (server forwards batched frames)
//   - wire-cursor:    Parse-less one-shot cursor with a tiny fetch size, so
//     every query crosses several Fetch round trips
//   - wire-prepared:  real server-side prepared statement + bind execution
//
// It extends PR 3's assertIdentical: same rendered-result comparison, but
// across execution paths of one database instead of across replicas.

// differentialSuite is the unparameterized battery (the replication suite's
// provenance coverage, verbatim).
var differentialSuite = replicationSuite

// paramCase pairs a parameterized statement with bind arguments and the
// equivalent literal SQL. The bind paths must match the literal text run
// embedded — that is the "binds travel as typed wire parameters and results
// are identical to the interpolated path" guarantee.
type paramCase struct {
	sql     string
	args    []value.Value
	literal string
}

var paramSuite = []paramCase{
	{
		sql:     `SELECT PROVENANCE mId, text FROM messages WHERE mId > ? ORDER BY mId`,
		args:    []value.Value{value.NewInt(1)},
		literal: `SELECT PROVENANCE mId, text FROM messages WHERE mId > 1 ORDER BY mId`,
	},
	{
		sql:     `SELECT PROVENANCE name FROM users u, messages m WHERE u.uId = m.uId AND name <> ? ORDER BY name`,
		args:    []value.Value{value.NewString("nobody")},
		literal: `SELECT PROVENANCE name FROM users u, messages m WHERE u.uId = m.uId AND name <> 'nobody' ORDER BY name`,
	},
	{
		sql:     `SELECT mId, text FROM messages WHERE text LIKE ? ORDER BY mId`,
		args:    []value.Value{value.NewString("%a%")},
		literal: `SELECT mId, text FROM messages WHERE text LIKE '%a%' ORDER BY mId`,
	},
	{
		sql:     `SELECT PROVENANCE uId, count(*) FROM approved WHERE uId >= ? GROUP BY uId HAVING count(*) >= ? ORDER BY uId`,
		args:    []value.Value{value.NewInt(0), value.NewInt(1)},
		literal: `SELECT PROVENANCE uId, count(*) FROM approved WHERE uId >= 0 GROUP BY uId HAVING count(*) >= 1 ORDER BY uId`,
	},
	{
		sql:     `SELECT mId, ? FROM messages WHERE mId IN (?, ?) ORDER BY mId`,
		args:    []value.Value{value.NewString("tag"), value.NewInt(1), value.NewInt(3)},
		literal: `SELECT mId, 'tag' FROM messages WHERE mId IN (1, 3) ORDER BY mId`,
	},
	{
		sql:     `SELECT PROVENANCE mId FROM messages WHERE mId > ANY (SELECT mId FROM approved WHERE uId <> ?) ORDER BY mId`,
		args:    []value.Value{value.NewInt(99)},
		literal: `SELECT PROVENANCE mId FROM messages WHERE mId > ANY (SELECT mId FROM approved WHERE uId <> 99) ORDER BY mId`,
	},
	{
		sql:     `SELECT CASE WHEN mId = ? THEN ? ELSE NULL END FROM messages ORDER BY mId`,
		args:    []value.Value{value.NewInt(2), value.NewFloat(2.5)},
		literal: `SELECT CASE WHEN mId = 2 THEN 2.5 ELSE NULL END FROM messages ORDER BY mId`,
	},
}

// renderWire flattens a wire result (desc + rows + tag) in exactly the
// renderResult format, so the two sides compare byte for byte.
func renderWire(desc wire.RowDesc, rows []value.Row, tag string) string {
	var b strings.Builder
	for i, c := range desc.Names {
		fmt.Fprintf(&b, "%s|", c)
		fmt.Fprintf(&b, "%s|%v|", desc.Kinds[i], desc.IsProv[i])
	}
	b.WriteString("\n")
	for _, row := range rows {
		for _, v := range row {
			b.WriteString(v.SQLLiteral())
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString(tag)
	return b.String()
}

// renderEngineResult is renderResult plus the command tag.
func renderEngineResult(res *engine.Result) string {
	return renderResult(res) + res.Tag
}

// drainCursor collects a wire cursor.
func drainCursor(t *testing.T, cur *wire.Cursor) (wire.RowDesc, []value.Row, string) {
	t.Helper()
	var rows []value.Row
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatalf("cursor next: %v", err)
		}
		if row == nil {
			break
		}
		rows = append(rows, row)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor close: %v", err)
	}
	return cur.Desc, rows, cur.Complete.Tag
}

func TestDifferentialSuite(t *testing.T) {
	db := engine.NewDB()
	if err := workload.LoadPaperExample(db); err != nil {
		t.Fatal(err)
	}
	addr, srv, shutdown := startServerSrv(t, db, Config{CursorBatchRows: 3})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	sess := db.NewSession()
	defer sess.Close()

	for i, q := range differentialSuite {
		res, err := sess.Execute(q)
		if err != nil {
			t.Fatalf("embedded %q: %v", q, err)
		}
		want := renderEngineResult(res)

		// Embedded streaming path (Session.Query drained by hand).
		erows, err := sess.Query(q)
		if err != nil {
			t.Fatalf("embedded stream %q: %v", q, err)
		}
		var streamed []value.Row
		for {
			row, err := erows.Next()
			if err != nil {
				t.Fatalf("embedded stream next %q: %v", q, err)
			}
			if row == nil {
				break
			}
			streamed = append(streamed, row)
		}
		got := renderEngineResult(&engine.Result{Columns: erows.Columns, Schema: erows.Schema, Rows: streamed, Tag: erows.Tag()})
		if got != want {
			t.Fatalf("embedded stream diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}

		// Wire streaming query (MsgQuery).
		wr, err := c.Query(q)
		if err != nil {
			t.Fatalf("wire query %q: %v", q, err)
		}
		var wrows []value.Row
		for {
			row, err := wr.Next()
			if err != nil {
				t.Fatalf("wire next %q: %v", q, err)
			}
			if row == nil {
				break
			}
			wrows = append(wrows, row)
		}
		if got := renderWire(wr.Desc, wrows, wr.Complete.Tag); got != want {
			t.Fatalf("wire query diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}

		// Wire cursor with a tiny fetch, forcing several Fetch round trips.
		cur, err := c.Execute("", q, nil, 2)
		if err != nil {
			t.Fatalf("wire cursor %q: %v", q, err)
		}
		desc, crows, tag := drainCursor(t, cur)
		if got := renderWire(desc, crows, tag); got != want {
			t.Fatalf("wire cursor diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}

		// Server-side prepared statement, executed by name.
		name := fmt.Sprintf("dq%d", i)
		if _, err := c.Prepare(name, q); err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		pcur, err := c.Execute(name, "", nil, 3)
		if err != nil {
			t.Fatalf("execute prepared %q: %v", q, err)
		}
		desc, crows, tag = drainCursor(t, pcur)
		if got := renderWire(desc, crows, tag); got != want {
			t.Fatalf("wire prepared diverged on %q:\nwant:\n%s\ngot:\n%s", q, want, got)
		}
		if err := c.CloseStmt(name); err != nil {
			t.Fatalf("close stmt: %v", err)
		}
	}
	if n := srv.ActivePortals(); n != 0 {
		t.Fatalf("portals leaked: %d", n)
	}
}

func TestDifferentialParams(t *testing.T) {
	db := engine.NewDB()
	if err := workload.LoadPaperExample(db); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, db, Config{CursorBatchRows: 2})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	sess := db.NewSession()
	defer sess.Close()

	for i, pc := range paramSuite {
		res, err := sess.Execute(pc.literal)
		if err != nil {
			t.Fatalf("literal %q: %v", pc.literal, err)
		}
		want := renderEngineResult(res)

		// Engine-level binds (embedded prepared statement).
		prep, err := sess.Prepare(pc.sql)
		if err != nil {
			t.Fatalf("engine prepare %q: %v", pc.sql, err)
		}
		if got := prep.NumParams(); got != len(pc.args) {
			t.Fatalf("engine prepare %q: %d params, want %d", pc.sql, got, len(pc.args))
		}
		pres, err := prep.Exec(pc.args...)
		if err != nil {
			t.Fatalf("engine bind exec %q: %v", pc.sql, err)
		}
		if got := renderEngineResult(pres); got != want {
			t.Fatalf("engine binds diverged on %q:\nwant:\n%s\ngot:\n%s", pc.sql, want, got)
		}

		// One-shot wire binds.
		cur, err := c.Execute("", pc.sql, pc.args, 2)
		if err != nil {
			t.Fatalf("wire one-shot bind %q: %v", pc.sql, err)
		}
		desc, crows, tag := drainCursor(t, cur)
		if got := renderWire(desc, crows, tag); got != want {
			t.Fatalf("wire one-shot binds diverged on %q:\nwant:\n%s\ngot:\n%s", pc.sql, want, got)
		}

		// Named server-side prepared statement, executed twice (the second
		// run hits the session plan cache keyed on text + param kinds).
		name := fmt.Sprintf("pq%d", i)
		if n, err := c.Prepare(name, pc.sql); err != nil || n != len(pc.args) {
			t.Fatalf("wire prepare %q: n=%d err=%v", pc.sql, n, err)
		}
		for round := 0; round < 2; round++ {
			pcur, err := c.Execute(name, "", pc.args, 3)
			if err != nil {
				t.Fatalf("wire prepared bind %q round %d: %v", pc.sql, round, err)
			}
			desc, crows, tag = drainCursor(t, pcur)
			if got := renderWire(desc, crows, tag); got != want {
				t.Fatalf("wire prepared binds diverged on %q round %d:\nwant:\n%s\ngot:\n%s", pc.sql, round, want, got)
			}
		}
	}
}

// TestDifferentialDML proves DML binds mutate identically to literal DML:
// the same statements run with binds over the wire against one database and
// as literals embedded against another, then every table must render
// byte-identically (assertIdentical, PR 3's comparator).
func TestDifferentialDML(t *testing.T) {
	bindDB := engine.NewDB()
	litDB := engine.NewDB()
	for _, db := range []*engine.DB{bindDB, litDB} {
		if err := workload.LoadPaperExample(db); err != nil {
			t.Fatal(err)
		}
	}
	addr, shutdown := startServer(t, bindDB, Config{})
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	litSess := litDB.NewSession()
	defer litSess.Close()

	type dml struct {
		sql     string
		args    []value.Value
		literal string
	}
	steps := []dml{
		{
			sql:     `INSERT INTO messages VALUES (?, ?, ?)`,
			args:    []value.Value{value.NewInt(9), value.NewString("bound insert"), value.NewInt(1)},
			literal: `INSERT INTO messages VALUES (9, 'bound insert', 1)`,
		},
		{
			sql:     `UPDATE users SET name = ? WHERE uId = ?`,
			args:    []value.Value{value.NewString("Bound Bertha"), value.NewInt(1)},
			literal: `UPDATE users SET name = 'Bound Bertha' WHERE uId = 1`,
		},
		{
			sql:     `DELETE FROM approved WHERE mId = ?`,
			args:    []value.Value{value.NewInt(2)},
			literal: `DELETE FROM approved WHERE mId = 2`,
		},
		{
			sql:     `INSERT INTO imports (mId, text) SELECT mId + ?, text FROM messages WHERE mId = ?`,
			args:    []value.Value{value.NewInt(100), value.NewInt(9)},
			literal: `INSERT INTO imports (mId, text) SELECT mId + 100, text FROM messages WHERE mId = 9`,
		},
	}
	for _, st := range steps {
		done, err := c.Execute("", st.sql, st.args, 0)
		if err != nil {
			t.Fatalf("bind dml %q: %v", st.sql, err)
		}
		if err := done.Close(); err != nil {
			t.Fatalf("bind dml close %q: %v", st.sql, err)
		}
		lres, err := litSess.Execute(st.literal)
		if err != nil {
			t.Fatalf("literal dml %q: %v", st.literal, err)
		}
		if done.Complete.Tag != lres.Tag {
			t.Fatalf("dml %q: bind tag %q, literal tag %q", st.sql, done.Complete.Tag, lres.Tag)
		}
	}
	assertIdentical(t, bindDB, litDB, append(replicationSuite,
		`SELECT * FROM imports ORDER BY mId, text`,
		`SELECT PROVENANCE * FROM messages ORDER BY mId`,
	))
}

// --- property-based forced-spill differential ------------------------------------
//
// A seeded random-query generator covering every blocking operator — ORDER BY
// with multiple asc/desc keys, GROUP BY with plain and DISTINCT aggregates
// (and HAVING), INTERSECT/EXCEPT/UNION in ALL and DISTINCT flavors, DISTINCT
// projection — each query optionally under a provenance rewrite. Every query
// runs twice against the same database: once with the default (generous)
// work_mem and once with a tiny budget that forces every blocking operator to
// spill. Results must be byte-identical, including row order for queries with
// no ORDER BY at all (the spill paths preserve the in-memory emission order).
// The seed is logged so a failure reproduces with PERM_SPILL_SEED=<seed>.

// spillPropertyWorkMem forces spilling while the per-operator progress
// floors keep file counts sane.
const spillPropertyWorkMem = 4096

// spillGen generates random-but-valid SQL over two fixed-schema tables
// r1(a int, b int, c text, d float) and r2 (same schema).
type spillGen struct {
	rng *rand.Rand
}

func (g *spillGen) pick(opts ...string) string { return opts[g.rng.Intn(len(opts))] }

func (g *spillGen) table() string { return g.pick("r1", "r2") }

// where returns a random predicate clause, or "".
func (g *spillGen) where() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf(" WHERE a < %d", 50+g.rng.Intn(350))
	case 1:
		return fmt.Sprintf(" WHERE b %% %d = %d", 2+g.rng.Intn(4), g.rng.Intn(2))
	case 2:
		return fmt.Sprintf(" WHERE c <> 'word%d'", g.rng.Intn(30))
	}
	return ""
}

// orderBy returns a multi-key ORDER BY over cols, each key asc or desc.
func (g *spillGen) orderBy(cols ...string) string {
	n := 1 + g.rng.Intn(len(cols))
	g.rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = cols[i] + g.pick("", " ASC", " DESC")
	}
	return " ORDER BY " + strings.Join(keys, ", ")
}

// prov optionally turns the query into a provenance rewrite.
func (g *spillGen) prov() string {
	if g.rng.Intn(5) < 2 {
		return "PROVENANCE "
	}
	return ""
}

func (g *spillGen) query() string {
	switch g.rng.Intn(4) {
	case 0: // multi-key ORDER BY
		return fmt.Sprintf(`SELECT %sa, b, c, d FROM %s%s%s`,
			g.prov(), g.table(), g.where(), g.orderBy("a", "b", "c", "d"))
	case 1: // GROUP BY with plain and DISTINCT aggregates
		agg := g.pick(`count(*), sum(b)`, `count(DISTINCT c), min(b), max(b)`,
			`count(DISTINCT b), avg(d)`, `count(*), count(DISTINCT c), sum(b)`)
		q := fmt.Sprintf(`SELECT %sa, %s FROM %s%s GROUP BY a`,
			g.prov(), agg, g.table(), g.where())
		if g.rng.Intn(2) == 0 {
			q += ` HAVING count(*) >= ` + strconv.Itoa(1+g.rng.Intn(3))
		}
		if g.rng.Intn(2) == 0 {
			q += g.orderBy("a")
		}
		return q
	case 2: // set operations
		op := g.pick("INTERSECT", "INTERSECT ALL", "EXCEPT", "EXCEPT ALL", "UNION", "UNION ALL")
		q := fmt.Sprintf(`SELECT %sa, c FROM r1%s %s SELECT a, c FROM r2%s`,
			g.prov(), g.where(), op, g.where())
		if g.rng.Intn(2) == 0 {
			q += g.orderBy("a", "c")
		}
		return q
	default: // DISTINCT projection
		q := fmt.Sprintf(`SELECT %sDISTINCT a, c FROM %s%s`, g.prov(), g.table(), g.where())
		if g.rng.Intn(2) == 0 {
			q += g.orderBy("a", "c")
		}
		return q
	}
}

// seedSpillTables loads r1/r2 with enough rows (duplicate-heavy keys, NULLs,
// every kind) that a 4 KiB work_mem forces every blocking operator to disk.
func seedSpillTables(t *testing.T, db *engine.DB, rng *rand.Rand) {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	for _, tbl := range []string{"r1", "r2"} {
		if _, err := s.Execute(fmt.Sprintf(`CREATE TABLE %s (a int, b int, c text, d float)`, tbl)); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for off := 0; off < 2000; off += 500 {
			b.Reset()
			fmt.Fprintf(&b, `INSERT INTO %s VALUES `, tbl)
			for i := 0; i < 500; i++ {
				if i > 0 {
					b.WriteString(", ")
				}
				c := fmt.Sprintf("'word%d'", rng.Intn(30))
				if rng.Intn(20) == 0 {
					c = "NULL"
				}
				d := fmt.Sprintf("%d.5", rng.Intn(400))
				if rng.Intn(20) == 0 {
					d = "NULL"
				}
				fmt.Fprintf(&b, "(%d, %d, %s, %s)", rng.Intn(400), rng.Intn(1000), c, d)
			}
			if _, err := s.Execute(b.String()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDifferentialSpillProperty(t *testing.T) {
	seeds := []int64{1, 424242}
	if env := os.Getenv("PERM_SPILL_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad PERM_SPILL_SEED %q: %v", env, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSpillProperty(t, seed)
		})
	}
}

func runSpillProperty(t *testing.T, seed int64) {
	t.Logf("spill property seed %d (reproduce with PERM_SPILL_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDB()
	seedSpillTables(t, db, rng)

	wide := db.NewSession()
	defer wide.Close()
	tiny := db.NewSession()
	defer tiny.Close()
	if _, err := tiny.Execute(fmt.Sprintf(`SET work_mem = %d`, spillPropertyWorkMem)); err != nil {
		t.Fatal(err)
	}

	gen := &spillGen{rng: rng}
	const queries = 80
	succeeded := 0
	for i := 0; i < queries; i++ {
		q := gen.query()
		wres, werr := wide.Execute(q)
		tres, terr := tiny.Execute(q)
		if (werr == nil) != (terr == nil) {
			t.Fatalf("seed %d query %d %q: wide err %v, tiny err %v", seed, i, q, werr, terr)
		}
		if werr != nil {
			// Both paths must fail identically (e.g. an unsupported
			// provenance rewrite) — a budget must never change semantics.
			if werr.Error() != terr.Error() {
				t.Fatalf("seed %d query %d %q: errors diverged:\nwide: %v\ntiny: %v", seed, i, q, werr, terr)
			}
			continue
		}
		succeeded++
		if want, got := renderEngineResult(wres), renderEngineResult(tres); want != got {
			t.Fatalf("seed %d query %d diverged under forced spill:\n%s\nwant:\n%.3000s\ngot:\n%.3000s", seed, i, q, want, got)
		}
	}
	if succeeded < queries/2 {
		t.Fatalf("seed %d: only %d/%d generated queries executed", seed, succeeded, queries)
	}
	ms := tiny.MemStatus()
	if ms.SpillFiles == 0 || ms.SpillBytes == 0 {
		t.Fatalf("seed %d: tiny work_mem session never spilled (%+v)", seed, ms)
	}
	if ws := wide.MemStatus(); ws.SpillFiles != 0 {
		t.Fatalf("seed %d: default work_mem session spilled (%+v)", seed, ws)
	}
}
