package server

import (
	"net"

	"perm/internal/metrics"
)

// Process-wide server and replication metrics. Gauges aggregate across every
// Server/Follower in the process (the test suite runs several at once); the
// staleness gauge is scrape-time computed and latest-registered wins.
var (
	mConns = metrics.Default.Gauge("perm_server_connections",
		"Connections currently being served")
	mConnsTotal = metrics.Default.Counter("perm_server_connections_total",
		"Connections ever accepted past the handshake")
	mServerQueries = metrics.Default.Counter("perm_server_queries_total",
		"Statements served over the wire")
	mOpenPortals = metrics.Default.Gauge("perm_server_open_portals",
		"Cursors currently open (each pins an executor tree)")
	mQueryTimeouts = metrics.Default.Counter("perm_server_query_timeouts_total",
		"Statements canceled by the per-query timeout")
	mBytesIn = metrics.Default.Counter("perm_server_bytes_in_total",
		"Bytes read from clients")
	mBytesOut = metrics.Default.Counter("perm_server_bytes_out_total",
		"Bytes written to clients")

	mReplReconnects = metrics.Default.Counter("perm_repl_reconnects_total",
		"Follower stream failures that forced a reconnect")
	mReplBootstraps = metrics.Default.Counter("perm_repl_bootstraps_total",
		"Follower bootstrap snapshots consumed (full re-seeds)")
	mReplLag = metrics.Default.Gauge("perm_repl_lag_records",
		"Follower apply lag in log records (primary LSN minus applied LSN)")
)

// countingConn wraps a served net.Conn so wire traffic feeds the byte
// counters. Only Read/Write are intercepted; everything else passes through,
// including the deadline control the server's timeout logic depends on.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		mBytesIn.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		mBytesOut.Add(uint64(n))
	}
	return n, err
}
