package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"perm/internal/catalog"
	"perm/internal/engine"
	"perm/internal/storage"
	"perm/internal/value"
	"perm/internal/wal"
	"perm/internal/wal/walfault"
)

// The crash-fault-injection matrix: a child process (this test binary,
// re-exec'd) runs a fixed op sequence against a WAL-backed store and
// SIGKILLs itself at an injected commit point — before the append, after
// the append but before fsync, after fsync but before the ack, mid-segment
// rotation, or mid-checkpoint. The parent then recovers the data directory
// and holds it to the durability contract:
//
//   - no acknowledged write is lost (sync policies always and group),
//   - no unacknowledged write is half-applied: the recovered state is
//     byte-identical to a never-crashed reference that ran exactly the
//     recovered prefix of the op sequence,
//   - a torn tail truncates, it never fails recovery.

// crashOps is the deterministic op sequence. Every op appends exactly one
// change record, so op i commits at LSN i+1 and the recovered LastLSN is
// exactly the count of applied ops — that equivalence is what lets the
// parent rebuild the reference state for any crash point.
var crashOps = []func(*storage.Store) error{
	func(s *storage.Store) error {
		_, err := s.CreateTable(&catalog.TableDef{Name: "kv", Columns: []catalog.Column{
			{Name: "k", Type: value.KindInt},
			{Name: "v", Type: value.KindInt},
		}})
		return err
	},
	crashIns(1), crashIns(2), crashIns(3),
	crashUpdAll,
	crashIns(4),
	crashDel(2),
	crashIns(5),
	func(s *storage.Store) error {
		return s.CreateView(&catalog.ViewDef{Name: "kvv", Text: "SELECT k FROM kv",
			Columns: []catalog.Column{{Name: "k", Type: value.KindInt}}})
	},
	crashIns(6),
	crashUpdAll,
	crashDel(4),
	crashIns(7),
	func(s *storage.Store) error { return s.Analyze("kv") },
	crashIns(8), crashIns(9),
	crashDel(1),
	crashIns(10),
}

// crashCheckpointEvery makes the child checkpoint after every 6th op, so
// mid-checkpoint crash points exist and recovery exercises snapshot+tail.
const crashCheckpointEvery = 6

// crashSegBytes forces several segment rotations across the op sequence.
const crashSegBytes = 384

func crashIns(k int64) func(*storage.Store) error {
	return func(s *storage.Store) error {
		_, err := s.Table("kv").Insert(value.Row{value.NewInt(k), value.NewInt(k * 10)})
		return err
	}
}

func crashUpdAll(s *storage.Store) error {
	_, err := s.Table("kv").Update(nil, func(r value.Row) (value.Row, error) {
		return value.Row{r[0], value.NewInt(r[1].I + 1)}, nil
	})
	return err
}

func crashDel(k int64) func(*storage.Store) error {
	return func(s *storage.Store) error {
		_, err := s.Table("kv").Delete(func(r value.Row) (bool, error) { return r[0].I == k, nil })
		return err
	}
}

// TestWALCrashChild is the harness child, inert unless the harness env is
// set. It acknowledges each completed op by appending one fsync'd byte to
// the ack file — the parent reads the file's size as "ops acked before the
// kill".
func TestWALCrashChild(t *testing.T) {
	dir := os.Getenv("PERM_WAL_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-harness child; driven by TestWALCrashMatrix")
	}
	var hooks *walfault.Hooks
	if spec := os.Getenv("PERM_WAL_CRASH_SPEC"); spec != "" {
		h, err := walfault.CrashSpec(spec, func() {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // never resume past the kill point
		})
		if err != nil {
			t.Fatalf("crash spec: %v", err)
		}
		hooks = h
	}
	store, mgr, _, err := wal.Open(dir, wal.Options{
		Sync:         os.Getenv("PERM_WAL_CRASH_SYNC"),
		SegmentBytes: crashSegBytes,
		Hooks:        hooks,
	})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	ack, err := os.OpenFile(os.Getenv("PERM_WAL_CRASH_ACK"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("child ack file: %v", err)
	}
	for i, op := range crashOps {
		if err := op(store); err != nil {
			t.Fatalf("child op %d: %v", i, err)
		}
		if _, err := ack.Write([]byte{'a'}); err == nil {
			if err := ack.Sync(); err != nil {
				t.Fatalf("child ack sync: %v", err)
			}
		} else {
			t.Fatalf("child ack write: %v", err)
		}
		if i%crashCheckpointEvery == crashCheckpointEvery-1 {
			if err := mgr.Checkpoint(); err != nil {
				t.Fatalf("child checkpoint after op %d: %v", i, err)
			}
		}
	}
	ack.Close()
	if err := mgr.Close(); err != nil {
		t.Fatalf("child close: %v", err)
	}
}

func TestWALCrashMatrix(t *testing.T) {
	if os.Getenv("PERM_WAL_CRASH_DIR") != "" {
		t.Skip("already inside the harness child")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	points := []string{
		walfault.PointPreAppend,
		walfault.PointPostAppend,
		walfault.PointPostSync,
		walfault.PointMidRotate,
		walfault.PointMidCheckpoint,
	}
	syncs := []string{"always", "group(1)", "off"}
	specs := []string{""} // control: a clean, never-crashed run
	for _, p := range points {
		// The 1st occurrence crashes early (often before the first
		// checkpoint), a later one lands mid-history with checkpoints and
		// rotations behind it. Occurrences past what a run produces simply
		// complete cleanly — still a valid recovery case.
		specs = append(specs, p+":1", p+":4")
	}
	for _, sync := range syncs {
		for _, spec := range specs {
			name := sync + "/" + spec
			if spec == "" {
				name = sync + "/clean"
			}
			sync, spec := sync, spec
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				base := t.TempDir()
				dataDir := filepath.Join(base, "data")
				ackPath := filepath.Join(base, "ack")
				cmd := exec.Command(exe, "-test.run=^TestWALCrashChild$", "-test.count=1")
				cmd.Env = append(os.Environ(),
					"PERM_WAL_CRASH_DIR="+dataDir,
					"PERM_WAL_CRASH_SPEC="+spec,
					"PERM_WAL_CRASH_SYNC="+sync,
					"PERM_WAL_CRASH_ACK="+ackPath,
				)
				out, runErr := cmd.CombinedOutput()
				if runErr != nil {
					// The planned outcome is a SIGKILL; anything else (a
					// child t.Fatal exits 1) is a harness failure.
					ee, ok := runErr.(*exec.ExitError)
					if !ok || !ee.ProcessState.Sys().(syscall.WaitStatus).Signaled() {
						t.Fatalf("child failed (not killed): %v\n%s", runErr, out)
					}
				} else if spec == "" {
					// A clean run must prove the harness actually ran — a
					// silently skipped child would make every crash case
					// vacuous (k=0 recovers k=0).
					verifyCleanRun(t, ackPath, out)
				}
				verifyCrashRecovery(t, dataDir, ackPath, sync)
			})
		}
	}
}

// verifyCleanRun asserts a no-crash child completed every op, guarding the
// harness against a child that silently never ran.
func verifyCleanRun(t *testing.T, ackPath string, out []byte) {
	t.Helper()
	fi, err := os.Stat(ackPath)
	if err != nil || fi.Size() != int64(len(crashOps)) {
		t.Fatalf("clean child did not complete all %d ops (ack file: %v %v)\n%s", len(crashOps), fi, err, out)
	}
}

// verifyCrashRecovery recovers the crashed directory and compares it against
// a never-crashed reference that ran exactly the recovered op prefix.
func verifyCrashRecovery(t *testing.T, dataDir, ackPath, sync string) {
	t.Helper()
	kAck := int64(0)
	if fi, err := os.Stat(ackPath); err == nil {
		kAck = fi.Size()
	}
	store, mgr, rec, err := wal.Open(dataDir, wal.Options{Sync: "always"})
	if err != nil {
		t.Fatalf("recovery failed (must truncate, not fail): %v", err)
	}
	defer mgr.Close()
	k := store.Log().LastLSN()
	if k > uint64(len(crashOps)) {
		t.Fatalf("recovered to LSN %d, only %d ops ran", k, len(crashOps))
	}
	// The durability contract: under always and group, an acked op's record
	// reached fsync before the ack, so recovery must reach at least the
	// acked count. Under off, acked writes may be lost (never corrupted).
	if sync != "off" && k < uint64(kAck) {
		t.Fatalf("LOST ACKNOWLEDGED WRITES: %d ops acked, recovered only to LSN %d (%s)", kAck, k, rec)
	}

	ref := storage.NewStore()
	for i := uint64(0); i < k; i++ {
		if err := crashOps[i](ref); err != nil {
			t.Fatalf("reference op %d: %v", i, err)
		}
	}
	if refLSN := ref.Log().LastLSN(); refLSN != k {
		t.Fatalf("reference replay reached LSN %d, recovered store %d", refLSN, k)
	}
	queries := []string{}
	if k >= 2 {
		queries = append(queries,
			`SELECT k, v FROM kv ORDER BY k, v`,
			`SELECT count(*) FROM kv`,
			`SELECT PROVENANCE k, v FROM kv ORDER BY k, v`,
		)
	}
	if k >= 9 {
		queries = append(queries, `SELECT * FROM kvv ORDER BY k`)
	}
	assertIdentical(t, engine.NewDBFrom(ref), engine.NewDBFrom(store), queries)

	// The recovered store must accept and journal new writes.
	if k >= 1 {
		if err := crashIns(999)(store); err != nil {
			t.Fatalf("recovered store rejects writes: %v", err)
		}
		if got := store.Log().LastLSN(); got != k+1 {
			t.Fatalf("post-recovery write landed at LSN %d, want %d", got, k+1)
		}
	}
	_ = fmt.Sprintf("%s", rec) // recovery summary is part of the contract; keep it printable
}
