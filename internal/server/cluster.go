package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"perm/internal/cluster"
	"perm/internal/engine"
	"perm/internal/storage"
)

// ClusterControl is the server's handle on the node's promote/demote
// harness. The wire layer delegates coordinator-issued MsgPromote/MsgDemote
// frames to it; a server without one refuses them.
type ClusterControl interface {
	// Promote fences the node at epoch (strictly above its current one)
	// and opens it for writes.
	Promote(epoch uint64) error
	// Demote fences the node at epoch (at least its current one), makes it
	// read-only and points it at primaryAddr as a replication follower.
	Demote(epoch uint64, primaryAddr string) error
}

type clusterBox struct{ ctl ClusterControl }

// SetCluster installs (or, with nil, removes) the node's cluster harness.
func (s *Server) SetCluster(ctl ClusterControl) { s.cluster.Store(clusterBox{ctl: ctl}) }

// ClusterControl returns the installed cluster harness, if any.
func (s *Server) ClusterControl() ClusterControl {
	if box, ok := s.cluster.Load().(clusterBox); ok {
		return box.ctl
	}
	return nil
}

// --- semi-synchronous replication gate ------------------------------------------

// ErrSyncTimeout is the typed failure of a semi-synchronous write that could
// not gather its replica-acknowledgment quorum: the mutation is applied (and
// WAL-durable) locally but NOT confirmed replicated. Callers must treat it
// as "unacknowledged" — exactly the honesty failover relies on.
var ErrSyncTimeout = errors.New("write not acknowledged by the required replicas")

// ackTracker records, per live replication subscription, the highest LSN the
// follower has durably applied (its MsgSubAck frames). waitQuorum is the
// blocking half the syncGate uses.
type ackTracker struct {
	mu      sync.Mutex
	seq     int
	acks    map[int]uint64
	changed chan struct{}
}

func newAckTracker() *ackTracker {
	return &ackTracker{acks: make(map[int]uint64), changed: make(chan struct{})}
}

// bump wakes every waiter to re-evaluate; callers hold t.mu.
func (t *ackTracker) bump() {
	close(t.changed)
	t.changed = make(chan struct{})
}

func (t *ackTracker) register() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := t.seq
	t.acks[id] = 0
	return id
}

func (t *ackTracker) unregister(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.acks, id)
	// Waiters must re-count: a quorum can shrink when a follower drops.
	t.bump()
}

func (t *ackTracker) update(id int, lsn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.acks[id]; ok && lsn > cur {
		t.acks[id] = lsn
		t.bump()
	}
}

// count reports how many subscribers have acknowledged through lsn.
func (t *ackTracker) count(lsn uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, a := range t.acks {
		if a >= lsn {
			n++
		}
	}
	return n
}

// waitQuorum blocks until n subscribers have acknowledged lsn, the timeout
// expires, or cancel fires.
func (t *ackTracker) waitQuorum(lsn uint64, n int, timeout time.Duration, cancel <-chan struct{}) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		t.mu.Lock()
		got := 0
		for _, a := range t.acks {
			if a >= lsn {
				got++
			}
		}
		ch := t.changed
		t.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("%w: %d of %d acknowledgments for LSN %d within %s",
				ErrSyncTimeout, got, n, lsn, timeout)
		case <-cancel:
			return fmt.Errorf("%w: server shutting down", ErrSyncTimeout)
		}
	}
}

// syncGate composes the replica-acknowledgment quorum over the store's
// existing durability gate (the WAL): a write is acknowledged only when it
// is locally durable AND SyncReplicas followers have durably applied it. The
// role check is dynamic, so the same gate is harmless on a store that gets
// demoted — replicas never wait on their own (absent) subscribers.
type syncGate struct {
	inner storage.Durability
	s     *Server
}

func (g *syncGate) WaitDurable(lsn uint64) error {
	if g.inner != nil {
		if err := g.inner.WaitDurable(lsn); err != nil {
			return err
		}
	}
	if g.s.db.ReadOnly() {
		return nil
	}
	return g.s.acks.waitQuorum(lsn, g.s.cfg.SyncReplicas, g.s.cfg.syncTimeout(), g.s.done)
}

func (g *syncGate) Err() error {
	if g.inner != nil {
		return g.inner.Err()
	}
	return nil
}

// InstallSyncGate wraps the current store's durability gate with the
// replica-acknowledgment quorum when Config.SyncReplicas is positive. New
// calls it once; the cluster harness calls it again after a promotion,
// because a replica's bootstrap (wal.Manager.AdoptStore) re-attaches the
// plain WAL gate. Installing twice is a no-op.
func (s *Server) InstallSyncGate() {
	if s.cfg.SyncReplicas <= 0 {
		return
	}
	st := s.db.Store()
	cur := st.Durability()
	if _, ok := cur.(*syncGate); ok {
		return
	}
	st.SetDurability(&syncGate{inner: cur, s: s})
}

// --- the per-node cluster harness -----------------------------------------------

// ClusterNodeConfig configures a ClusterNode.
type ClusterNodeConfig struct {
	// DataDir, when set, is where the fencing epoch persists (beside the
	// WAL segments); "" keeps the epoch in memory only — test topologies.
	DataDir string
	// Follower is the template configuration for the follower the node runs
	// while demoted; PrimaryAddr is overwritten per demotion. PrepareStore
	// should be the WAL manager's AdoptStore on durable nodes.
	Follower FollowerConfig
	// Logf, when set, receives role-transition logs.
	Logf func(format string, args ...any)
}

// ClusterNode makes one server a managed cluster member: it owns the node's
// follower lifecycle and implements the coordinator's Promote/Demote orders
// with durable epoch fencing. It is the piece that turns `SetReadOnly(false)
// exists` into an actual failover: epoch bump (persisted first, so a crash
// cannot forget the fence), WAL tail flushed, writes opened.
type ClusterNode struct {
	db  *engine.DB
	srv *Server
	cfg ClusterNodeConfig

	mu       sync.Mutex
	follower *Follower
	upstream string

	// fileMu serializes epoch-file writes; persisted tracks the highest
	// epoch on disk so concurrent persists can never regress the file.
	fileMu    sync.Mutex
	persisted uint64
}

// NewClusterNode builds the harness, restores the persisted epoch, and
// installs itself on srv (when non-nil) as its ClusterControl.
func NewClusterNode(db *engine.DB, srv *Server, cfg ClusterNodeConfig) (*ClusterNode, error) {
	n := &ClusterNode{db: db, srv: srv, cfg: cfg}
	if cfg.DataDir != "" {
		e, err := cluster.LoadEpoch(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		n.persisted = e
		db.SetEpoch(e)
	}
	if srv != nil {
		srv.SetCluster(n)
	}
	return n, nil
}

func (n *ClusterNode) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// persistEpoch durably records e before it is exposed. The file content is
// monotonic even under concurrent persists (promote vs. stream-observed
// epochs): a lower epoch never overwrites a higher one.
func (n *ClusterNode) persistEpoch(e uint64) error {
	if n.cfg.DataDir == "" {
		return nil
	}
	n.fileMu.Lock()
	defer n.fileMu.Unlock()
	if e <= n.persisted {
		return nil
	}
	if err := cluster.SaveEpoch(n.cfg.DataDir, e); err != nil {
		return err
	}
	n.persisted = e
	return nil
}

// adoptEpoch persists then exposes e (monotonic; lower values are no-ops).
func (n *ClusterNode) adoptEpoch(e uint64) error {
	if err := n.persistEpoch(e); err != nil {
		return err
	}
	n.db.SetEpoch(e)
	return nil
}

// ObserveEpoch is the follower's hook for epochs learned from the upstream
// stream. It deliberately avoids n.mu: the follower goroutine calls it while
// Promote/Demote may be blocked stopping that same follower.
func (n *ClusterNode) ObserveEpoch(e uint64) {
	if e <= n.db.Epoch() {
		return
	}
	if err := n.adoptEpoch(e); err != nil {
		n.logf("cluster: persisting observed epoch %d: %v", e, err)
	}
}

// EnsurePrimaryEpoch gives a never-clustered primary its first epoch (1), so
// handshakes and write acknowledgments are stamped from the start. No-op on
// replicas and on nodes that already carry an epoch.
func (n *ClusterNode) EnsurePrimaryEpoch() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.db.ReadOnly() || n.db.Epoch() != 0 {
		return nil
	}
	return n.adoptEpoch(1)
}

// Promote fences the node at epoch and opens it for writes: stop following,
// persist the new epoch (the fence must survive a crash BEFORE any write is
// accepted under it), flush the WAL tail, exit read-only. Epochs at or below
// the current one are refused with the typed stale-epoch error — a promote
// that lost the race must never roll the fence back.
func (n *ClusterNode) Promote(epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur := n.db.Epoch(); epoch <= cur {
		return fmt.Errorf("promote to epoch %d refused, node already at epoch %d: %w",
			epoch, cur, engine.ErrStaleEpoch)
	}
	if n.follower != nil {
		n.follower.Stop()
		n.follower = nil
		n.upstream = ""
	}
	if err := n.adoptEpoch(epoch); err != nil {
		return err
	}
	n.db.SetReplStatusFunc(nil)
	// The replica's store already holds everything it ever applied (process
	// start replayed any WAL tail; streamed applies land synchronously), but
	// the tail must be durable before writes build on top of it.
	if err := n.db.Store().WaitDurable(); err != nil {
		return fmt.Errorf("promote: flushing WAL tail: %w", err)
	}
	n.db.SetReadOnly(false)
	if n.srv != nil {
		// A bootstrap may have swapped stores since New; re-wrap the current
		// store's WAL gate with the replica-acknowledgment quorum.
		n.srv.InstallSyncGate()
	}
	n.logf("cluster: promoted to primary at epoch %d", epoch)
	return nil
}

// Demote fences the node at epoch, makes it read-only and points it at
// primaryAddr as a follower. A deposed primary lands here when the
// coordinator finds it again: it adopts the new epoch, and PR 3's
// origin/resume-hash fork detection re-seeds it if its timeline diverged
// (unacknowledged writes it applied before dying). Re-demoting an already
// conforming follower is a no-op, so coordinators may demote liberally.
func (n *ClusterNode) Demote(epoch uint64, primaryAddr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.db.Epoch()
	if epoch < cur {
		return fmt.Errorf("demote to epoch %d refused, node already at epoch %d: %w",
			epoch, cur, engine.ErrStaleEpoch)
	}
	if epoch == cur && n.db.ReadOnly() && n.follower != nil && n.upstream == primaryAddr {
		return nil
	}
	if err := n.adoptEpoch(epoch); err != nil {
		return err
	}
	n.db.SetReadOnly(true)
	if n.follower != nil {
		n.follower.Stop()
		n.follower = nil
	}
	n.startFollowerLocked(primaryAddr)
	n.logf("cluster: demoted to follower of %s at epoch %d", primaryAddr, epoch)
	return nil
}

// Follow starts the node as a read-only follower of addr under its current
// epoch — initial replica setup (permserver -replica-of).
func (n *ClusterNode) Follow(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.db.SetReadOnly(true)
	if n.follower != nil {
		n.follower.Stop()
	}
	n.startFollowerLocked(addr)
}

func (n *ClusterNode) startFollowerLocked(addr string) {
	fcfg := n.cfg.Follower
	fcfg.PrimaryAddr = addr
	if fcfg.Logf == nil {
		fcfg.Logf = n.cfg.Logf
	}
	fcfg.ObserveEpoch = n.ObserveEpoch
	n.follower = StartFollower(n.db, fcfg)
	n.upstream = addr
}

// Follower returns the node's current follower, nil while primary.
func (n *ClusterNode) Follower() *Follower {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.follower
}

// Stop stops any running follower (process shutdown).
func (n *ClusterNode) Stop() {
	n.mu.Lock()
	f := n.follower
	n.follower = nil
	n.mu.Unlock()
	if f != nil {
		f.Stop()
	}
}
