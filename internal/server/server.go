// Package server exposes a Perm database over TCP using the wire protocol
// of internal/wire. Every accepted connection gets its own engine.Session —
// per-session settings, plan cache and SQL-PLE provenance queries all work
// over the network exactly as they do embedded — while the storage engine
// and catalog are shared, so concurrent clients see one database.
//
// Operational behavior:
//
//   - Connection limits: at most Config.MaxConns sessions run at once;
//     excess connections are refused with a wire error at handshake.
//   - Per-query timeouts: Config.QueryTimeout arms the session's interrupt
//     channel for each statement; a query that overruns unwinds with
//     executor.ErrInterrupted, is reported as a wire error, and the
//     connection stays usable.
//   - Graceful shutdown: Shutdown stops accepting, closes idle connections
//     immediately, waits for in-flight requests to drain until the context
//     expires, then force-closes stragglers (interrupting their queries).
//   - Online backup: the Backup message streams a consistent storage
//     snapshot (storage.Store.Save) without blocking concurrent queries.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"perm/internal/engine"
	"perm/internal/executor"
	"perm/internal/logx"
	"perm/internal/repl"
	"perm/internal/value"
	"perm/internal/wire"
)

// Config tunes a Server. The zero value means no connection limit and no
// query timeout.
type Config struct {
	// MaxConns caps concurrently served connections; 0 means unlimited.
	MaxConns int
	// QueryTimeout bounds each statement's execution AND the writing of its
	// response, so a client that stops reading cannot pin a session (and a
	// MaxConns slot) forever; 0 means unlimited. For cursors the timeout
	// spans the portal's whole lifetime — a client that parks an open cursor
	// past it gets a typed timeout on its next Fetch — while the write
	// deadline is re-armed per fetch, so a long result is bounded by
	// per-batch delivery progress, not total duration.
	QueryTimeout time.Duration
	// CursorBatchRows caps the rows packed into one RowBatch frame (and is
	// the fetch size used when a client asks for 0); 0 means 256.
	CursorBatchRows int
	// CursorBatchBytes is the target encoded size of one RowBatch frame;
	// wide provenance rows flush early so a frame never dwarfs it. 0 means
	// 256 KiB.
	CursorBatchBytes int
	// HeartbeatInterval is how often a replication subscription sends a
	// heartbeat (carrying the primary's last LSN) while the change log is
	// idle; 0 means one second. Followers size their read timeouts to it.
	HeartbeatInterval time.Duration
	// WorkMem, when non-zero, is the per-session memory budget in bytes for
	// blocking operators (sorts, aggregation, set operations, DISTINCT):
	// each connection's session starts with SET work_mem = WorkMem and
	// spills to disk past it. 0 keeps the engine default; negative means
	// unlimited.
	WorkMem int64
	// Parallelism, when non-zero, is the default intra-query parallelism
	// degree for every connection's session (permserver -parallelism):
	// each session starts with SET parallelism = Parallelism and clients
	// may still override per session. 0 keeps the engine default (serial);
	// negative means "all cores" (SET parallelism = 0 semantics).
	Parallelism int
	// TempDir, when set, is where sessions create their spill files
	// (permserver -temp-dir); "" means the OS temp directory. Spill files
	// are removed when their query ends, and a session teardown — client
	// disconnect, timeout, shutdown — removes any it left behind.
	TempDir string
	// SyncReplicas, when positive, makes writes semi-synchronous: a
	// mutation is acknowledged only after that many replication
	// subscribers have confirmed durably applying it (MsgSubAck), on top
	// of the local WAL gate. A write that cannot gather its quorum within
	// SyncTimeout fails with a typed error — it is applied locally but NOT
	// confirmed replicated, the honest answer during a replica outage —
	// which is what lets failover promote a most-caught-up replica without
	// losing a single acknowledged write. 0 keeps replication async.
	SyncReplicas int
	// SyncTimeout bounds the wait for the SyncReplicas quorum; 0 means two
	// seconds.
	SyncTimeout time.Duration
	// SlowQueryMs, when positive, starts every connection's session with
	// SET slow_query_ms = SlowQueryMs (permserver -slow-query-ms): statements
	// at or over the threshold are logged through Log. 0 keeps the engine
	// default (off); sessions can still opt in per-connection with SET.
	SlowQueryMs int64
	// Log, when set, receives structured records (slow queries); nil means
	// the process-default logger.
	Log *logx.Logger
	// Logf, when set, receives connection lifecycle and error logs.
	Logf func(format string, args ...any)
}

func (c Config) slog() *logx.Logger {
	if c.Log != nil {
		return c.Log
	}
	return logx.Default
}

func (c Config) heartbeat() time.Duration {
	if c.HeartbeatInterval <= 0 {
		return time.Second
	}
	return c.HeartbeatInterval
}

func (c Config) syncTimeout() time.Duration {
	if c.SyncTimeout <= 0 {
		return 2 * time.Second
	}
	return c.SyncTimeout
}

func (c Config) batchRows() int {
	if c.CursorBatchRows <= 0 {
		return 256
	}
	// The batch writer's fixed-width count header holds 28 bits; a frame of
	// two million rows is far past any sane batch anyway.
	if c.CursorBatchRows > 1<<21 {
		return 1 << 21
	}
	return c.CursorBatchRows
}

func (c Config) batchBytes() int {
	if c.CursorBatchBytes <= 0 {
		return 256 << 10
	}
	return c.CursorBatchBytes
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Server serves a Perm database over the wire protocol.
type Server struct {
	db  *engine.DB
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	// conns tracks each served connection: its kill channel (closing it
	// interrupts the connection's in-flight query, so force-closing a socket
	// also unwinds the session promptly) and whether a request is currently
	// being served — graceful shutdown closes idle connections immediately
	// (the norm with pooled database/sql clients) and lets in-flight requests
	// finish.
	conns map[net.Conn]*connState
	// refuseConns tracks connections currently being refused, so the forced
	// shutdown path can cut their 5-second courtesy window short.
	refuseConns map[net.Conn]struct{}
	active      int
	closing     bool
	wg          sync.WaitGroup
	// refuseWg tracks in-flight connection refusals; refusing counts how many
	// run right now, so a connection flood cannot grow refusal goroutines
	// (each with bufio buffers) without bound (see goRefuse).
	refuseWg sync.WaitGroup
	refusing int

	// done is closed when Shutdown begins: replication subscriptions wait on
	// the change log, not the socket, so closing their connection alone would
	// not wake them promptly.
	done     chan struct{}
	doneOnce sync.Once

	queries       atomic.Uint64
	subscriptions atomic.Int64
	portals       atomic.Int64

	// acks tracks each replication subscriber's durably-applied LSN (from
	// MsgSubAck frames); the semi-synchronous write gate waits on it.
	acks *ackTracker
	// cluster, when set, is the node's promote/demote harness (a clusterBox).
	cluster atomic.Value
}

// New creates a server over db.
func New(db *engine.DB, cfg Config) *Server {
	s := &Server{
		db:          db,
		cfg:         cfg,
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]*connState),
		refuseConns: make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
		acks:        newAckTracker(),
	}
	s.InstallSyncGate()
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// QueriesServed reports the total number of statements executed.
func (s *Server) QueriesServed() uint64 { return s.queries.Load() }

// ActiveSubscriptions reports how many replication followers are streaming.
func (s *Server) ActiveSubscriptions() int { return int(s.subscriptions.Load()) }

// ActivePortals reports how many cursors are currently open across all
// connections — a live portal pins an executor iterator tree, so this is
// the observable for leak tests and capacity monitoring.
func (s *Server) ActivePortals() int { return int(s.portals.Load()) }

// ActiveConns reports the number of connections currently served.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until the listener fails or the server
// shuts down. It may be called on several listeners concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	var acceptDelay time.Duration
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return ErrServerClosed
			}
			// Transient accept failures (EMFILE under fd pressure, ECONNABORTED)
			// must not take the whole server down; back off and retry the way
			// net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				s.logf("accept: %v; retrying in %v", err, acceptDelay)
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		kill, ok := s.registerConn(nc)
		if !ok {
			// Over the connection limit (or shutting down): answer the
			// handshake with an error so clients fail fast and descriptively.
			s.goRefuse(nc)
			continue
		}
		go func() {
			defer s.wg.Done()
			defer s.unregisterConn(nc)
			s.serveConn(nc, kill)
		}()
	}
}

// registerConn admits nc under the connection limit. The WaitGroup increment
// happens under the same lock that Shutdown uses to set closing, so a
// connection is either refused or visible to Shutdown's wait — never
// admitted into a gap.
func (s *Server) registerConn(nc net.Conn) (chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, false
	}
	if s.cfg.MaxConns > 0 && s.active >= s.cfg.MaxConns {
		return nil, false
	}
	s.active++
	kill := make(chan struct{})
	s.conns[nc] = &connState{kill: kill}
	s.wg.Add(1)
	return kill, true
}

// connState is the per-connection bookkeeping shutdown needs.
type connState struct {
	kill     chan struct{}
	inFlight bool
	// portalOpen marks a suspended cursor: the connection is between
	// requests, but an executor tree is live. Graceful shutdown treats such
	// connections like in-flight ones — the client may keep fetching (or
	// close the portal) until the drain deadline kills stragglers.
	portalOpen bool
	// portalDeadline is the open portal's query deadline (zero when no
	// timeout is configured). Shutdown closes portal connections already
	// past it immediately: their next Fetch is guaranteed to fail with the
	// typed timeout, so there is nothing to drain.
	portalDeadline time.Time
}

// beginRequest marks the connection busy; it returns false when the server
// is shutting down and the request should be refused. draining requests
// (Fetch, ClosePortal) stay admissible during shutdown on a connection
// whose portal is open, so a client can finish reading its cursor.
func (s *Server) beginRequest(nc net.Conn, draining bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.conns[nc]
	if s.closing && !(draining && st != nil && st.portalOpen) {
		return false
	}
	if st != nil {
		st.inFlight = true
	}
	return true
}

// endRequest marks the connection idle again; it returns false when the
// server started shutting down mid-request, in which case the session
// should close now that its response is delivered — unless a portal is
// still open, which keeps the connection alive to drain it.
func (s *Server) endRequest(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.conns[nc]
	if st != nil {
		st.inFlight = false
	}
	if s.closing {
		return st != nil && st.portalOpen
	}
	return true
}

// setPortalOpen records whether nc has a live cursor (see connState).
func (s *Server) setPortalOpen(nc net.Conn, open bool, deadline time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.conns[nc]; st != nil {
		st.portalOpen = open
		st.portalDeadline = deadline
	}
}

func (s *Server) unregisterConn(nc net.Conn) {
	s.mu.Lock()
	s.active--
	delete(s.conns, nc)
	s.mu.Unlock()
}

// maxConcurrentRefusals caps the courtesy-error goroutines: past the cap a
// flood of over-limit connections is dropped with a bare close instead of a
// buffered handshake, so MaxConns really does bound server memory.
const maxConcurrentRefusals = 32

// serverReadLimit bounds client→server frames (1 MiB): ample for any SQL
// statement, small enough that a flood of hostile length prefixes cannot
// exhaust memory. Server→client frames keep the full wire.MaxFrameSize for
// wide provenance rows.
const serverReadLimit = 1 << 20

// goRefuse runs refuse on its own goroutine, tracked by refuseWg so Shutdown
// does not return (and permserver does not exit) while a refusal is still
// delivering its message. The Add happens under s.mu and only while not
// closing, which orders it strictly before Shutdown's Wait.
func (s *Server) goRefuse(nc net.Conn) {
	s.mu.Lock()
	if s.closing || s.refusing >= maxConcurrentRefusals {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.refusing++
	s.refuseConns[nc] = struct{}{}
	s.refuseWg.Add(1)
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.refusing--
			delete(s.refuseConns, nc)
			s.mu.Unlock()
			s.refuseWg.Done()
		}()
		s.refuse(nc)
	}()
}

// refuse answers a rejected connection with a wire error naming the actual
// reason (shutdown vs. capacity).
func (s *Server) refuse(nc net.Conn) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	conn := wire.NewConn(nc)
	conn.SetReadLimit(serverReadLimit)
	// Consume the Hello so the client reads our error rather than a reset.
	if typ, _, err := conn.ReadMessage(); err != nil || typ != wire.MsgHello {
		return
	}
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	msg := "connection limit reached"
	if closing {
		msg = "server is shutting down"
	}
	conn.WriteMessage(wire.MsgError, wire.AppendError(nil, msg, wire.ErrCodeGeneric))
	conn.Flush()
}

// Shutdown stops accepting connections, closes idle connections immediately
// (pooled database/sql clients keep idle connections open indefinitely, so
// waiting for them would burn the whole drain deadline on every deploy), and
// waits for in-flight requests to finish. When ctx expires first, remaining
// connections — including any mid-refusal — are force-closed and their
// queries interrupted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.doneOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	s.closing = true
	for l := range s.listeners {
		l.Close()
	}
	now := time.Now()
	for nc, st := range s.conns {
		expired := st.portalOpen && !st.portalDeadline.IsZero() && now.After(st.portalDeadline)
		if !st.inFlight && (!st.portalOpen || expired) {
			nc.Close() // idle (or holding a dead cursor): unblocks the read loop
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.refuseWg.Wait() // refusals carry a 5s deadline, so this is bounded
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for nc, st := range s.conns {
			close(st.kill) // interrupt the in-flight query
			nc.Close()
		}
		s.conns = make(map[net.Conn]*connState)
		for nc := range s.refuseConns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-closes everything immediately.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// serveConn runs one session's request/response loop. kill is closed when
// the server force-closes the connection, interrupting in-flight queries.
func (s *Server) serveConn(nc net.Conn, kill <-chan struct{}) {
	defer nc.Close()
	mConns.Inc()
	defer mConns.Dec()
	mConnsTotal.Inc()
	conn := wire.NewConn(countingConn{Conn: nc})
	// Clients only ever send small frames (handshake, SQL text, backup
	// request); capping reads stops a hostile length prefix from making each
	// connection allocate MaxFrameSize before sending a byte.
	conn.SetReadLimit(serverReadLimit)

	// Handshake, under a deadline so an idle TCP connection cannot hold a
	// MaxConns slot without ever speaking the protocol.
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	typ, body, err := conn.ReadMessage()
	if err != nil || typ != wire.MsgHello {
		return
	}
	hello, err := wire.DecodeHello(body)
	if err != nil {
		return
	}
	if hello.Version != wire.ProtocolVersion {
		conn.WriteMessage(wire.MsgError, wire.AppendError(nil,
			fmt.Sprintf("protocol version %d not supported (server speaks %d)",
				hello.Version, wire.ProtocolVersion), wire.ErrCodeGeneric))
		conn.Flush()
		return
	}
	ok := wire.HelloOK{Version: wire.ProtocolVersion, Server: "perm", Epoch: s.db.Epoch(), Role: s.role()}
	if err := conn.WriteMessage(wire.MsgHelloOK, ok.Encode(nil)); err != nil {
		return
	}
	if err := conn.Flush(); err != nil {
		return
	}
	nc.SetDeadline(time.Time{}) // handshake done; sessions may idle

	sess := s.db.NewSession()
	defer sess.Close()
	if s.cfg.WorkMem != 0 {
		n := s.cfg.WorkMem
		if n < 0 {
			n = 0 // negative config = unlimited (work_mem 0)
		}
		sess.SetWorkMem(n)
	}
	if s.cfg.TempDir != "" {
		sess.SetTempDir(s.cfg.TempDir)
	}
	if s.cfg.Parallelism != 0 {
		n := s.cfg.Parallelism
		if n < 0 {
			n = 0 // negative config = all cores (parallelism 0)
		}
		sess.SetParallelism(n)
	}
	if s.cfg.SlowQueryMs > 0 {
		sess.SetSlowQueryMs(s.cfg.SlowQueryMs)
	}
	// Slow-query records go through the server's structured logger with the
	// peer attached, whether the threshold came from config or from a
	// per-connection SET slow_query_ms.
	remote := nc.RemoteAddr().String()
	sess.SetSlowQueryLog(func(q engine.SlowQuery) {
		s.cfg.slog().Warn("slow query",
			"remote", remote,
			"duration", q.Duration,
			"rows", q.Rows,
			"cache_hit", q.CacheHit,
			"spill_bytes", q.SpillBytes,
			"params", q.Params,
			"sql", q.SQL,
		)
	})
	// The connection's kill channel is the session's standing interrupt, so a
	// forced shutdown unwinds an in-flight query promptly; per-query timeouts
	// ride on the session deadline (see execute).
	sess.SetInterrupt(kill)
	s.logf("session open from %s (client %q)", nc.RemoteAddr(), hello.Client)
	defer s.logf("session closed from %s", nc.RemoteAddr())

	// Per-connection protocol state: named prepared statements and the (at
	// most one) open portal. Both die with the connection: an abrupt client
	// disconnect mid-cursor unwinds here, closing the executor tree and
	// releasing the portal immediately.
	st := &connStreams{s: s, nc: nc}
	defer st.closePortal()

	for {
		typ, body, err := conn.ReadMessage()
		if err != nil {
			if err != io.EOF {
				s.logf("read from %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		if typ == wire.MsgTerminate {
			return
		}
		if typ == wire.MsgSubscribe {
			// Subscribe turns the connection into a one-way replication
			// stream; the request/response loop — and with it the in-flight
			// bookkeeping — ends here. The subscription counts as idle for
			// graceful shutdown (a follower reconnects on its own), and the
			// streaming loop watches s.done so shutdown wakes it even while
			// it waits on the change log.
			r := wire.NewReader(body)
			sub := subscribeRequest{after: r.Uvarint()}
			sub.force = r.Remaining() > 0 && r.Bool()
			if r.Remaining() > 0 {
				sub.origin = r.Uvarint()
			}
			if r.Remaining() > 0 {
				sub.resumeHash = r.Uvarint()
			}
			if r.Remaining() > 0 {
				sub.epoch = r.Uvarint()
			}
			if r.Err() != nil {
				s.writeError(conn, "malformed subscribe frame")
				return
			}
			if sub.epoch > s.db.Epoch() {
				// The subscriber has seen a newer fencing epoch than this
				// node serves under: this node is a deposed primary (or a
				// lagging member) and must not feed anyone its stale
				// timeline. The typed code tells the follower to go find
				// the real primary rather than re-bootstrap from us.
				s.writeErrorCode(conn, fmt.Sprintf(
					"subscriber is at cluster epoch %d but this node serves epoch %d: node is fenced",
					sub.epoch, s.db.Epoch()), wire.ErrCodeStaleEpoch)
				return
			}
			s.logf("replication subscription from %s (after LSN %d, origin %x, force-snapshot %v)",
				nc.RemoteAddr(), sub.after, sub.origin, sub.force)
			s.subscriptions.Add(1)
			defer s.subscriptions.Add(-1)
			if err := s.serveSubscription(conn, nc, sub, kill); err != nil {
				s.logf("replication stream to %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		draining := typ == wire.MsgFetch || typ == wire.MsgClosePortal
		if !s.beginRequest(nc, draining) {
			// Shutdown raced this request in: tell the client rather than
			// resetting it.
			s.writeError(conn, "server is shutting down")
			return
		}
		var fatal error
		switch typ {
		case wire.MsgQuery:
			r := wire.NewReader(body)
			sqlText := r.String()
			if r.Err() != nil {
				s.writeError(conn, "malformed query frame")
				return
			}
			s.armWriteDeadline(nc)
			fatal = st.runQuery(conn, sess, sqlText)
		case wire.MsgParse:
			p, err := wire.DecodeParse(body)
			if err != nil {
				s.writeError(conn, "malformed parse frame")
				return
			}
			s.armWriteDeadline(nc)
			fatal = st.runParse(conn, sess, p)
		case wire.MsgExecute:
			req, err := wire.DecodeExecute(body)
			if err != nil {
				s.writeError(conn, "malformed execute frame")
				return
			}
			s.armWriteDeadline(nc)
			fatal = st.runExecute(conn, sess, req)
		case wire.MsgFetch:
			r := wire.NewReader(body)
			fetch := r.Uvarint()
			if r.Err() != nil {
				s.writeError(conn, "malformed fetch frame")
				return
			}
			s.armWriteDeadline(nc)
			fatal = st.runFetch(conn, fetch)
		case wire.MsgClosePortal:
			st.closePortal()
			s.armWriteDeadline(nc)
			fatal = s.writeMessageFlush(conn, wire.MsgCloseOK, nil)
		case wire.MsgCloseStmt:
			r := wire.NewReader(body)
			name := r.String()
			if r.Err() != nil {
				s.writeError(conn, "malformed close frame")
				return
			}
			delete(st.stmts, name)
			s.armWriteDeadline(nc)
			fatal = s.writeMessageFlush(conn, wire.MsgCloseOK, nil)
		case wire.MsgBackup:
			s.armWriteDeadline(nc)
			fatal = s.runBackup(conn, nc)
		case wire.MsgStatus:
			s.armWriteDeadline(nc)
			st.frame = s.nodeStatus().Encode(st.frame[:0])
			fatal = s.writeMessageFlush(conn, wire.MsgStatusOK, st.frame)
		case wire.MsgPromote:
			req, err := wire.DecodePromote(body)
			if err != nil {
				s.writeError(conn, "malformed promote frame")
				return
			}
			s.armWriteDeadline(nc)
			fatal = st.runClusterOp(conn, func(ctl ClusterControl) error { return ctl.Promote(req.Epoch) })
		case wire.MsgDemote:
			req, err := wire.DecodeDemote(body)
			if err != nil {
				s.writeError(conn, "malformed demote frame")
				return
			}
			s.armWriteDeadline(nc)
			fatal = st.runClusterOp(conn, func(ctl ClusterControl) error { return ctl.Demote(req.Epoch, req.PrimaryAddr) })
		default:
			s.writeError(conn, fmt.Sprintf("unexpected message type %q", typ))
			return
		}
		if fatal != nil {
			s.logf("write to %s: %v", nc.RemoteAddr(), fatal)
			return
		}
		nc.SetWriteDeadline(time.Time{})
		// Mirror the read path's buffer hygiene: one outlier result must
		// not pin huge encode buffers for the connection's lifetime.
		st.trim()
		// While a portal sits suspended, bound how long a silent client can
		// pin its executor tree: the next read is deadlined to the portal's
		// query deadline plus one grace timeout. A late Fetch inside the
		// grace still gets the clean typed timeout error; past it, the read
		// fails and the connection (and portal) is reaped.
		if st.port != nil && !st.port.deadline.IsZero() {
			nc.SetReadDeadline(st.port.deadline.Add(s.cfg.QueryTimeout))
		} else {
			nc.SetReadDeadline(time.Time{})
		}
		if !s.endRequest(nc) {
			// Shutdown began while this request ran; its response is
			// delivered and no cursor remains to drain, so close the
			// session instead of idling.
			return
		}
	}
}

// writeMessageFlush writes one frame and flushes it; errors are
// connection-fatal.
func (s *Server) writeMessageFlush(conn *wire.Conn, typ byte, payload []byte) error {
	if err := conn.WriteMessage(typ, payload); err != nil {
		return err
	}
	return conn.Flush()
}

// armWriteDeadline bounds the writing of one response by the query timeout:
// a client that sends a request and then stops reading would otherwise block
// the session goroutine in a deadline-less socket write once the TCP buffers
// fill, pinning a MaxConns slot forever.
func (s *Server) armWriteDeadline(nc net.Conn) {
	if s.cfg.QueryTimeout > 0 {
		nc.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
	}
}

func (s *Server) writeError(conn *wire.Conn, msg string) error {
	return s.writeErrorCode(conn, msg, wire.ErrCodeGeneric)
}

func (s *Server) writeErrorCode(conn *wire.Conn, msg string, code uint64) error {
	if err := conn.WriteMessage(wire.MsgError, wire.AppendError(nil, msg, code)); err != nil {
		return err
	}
	return conn.Flush()
}

// errCodeOf classifies a statement error for the wire protocol, so typed
// engine errors stay typed on the far side of the connection.
func errCodeOf(err error) uint64 {
	if errors.Is(err, engine.ErrReadOnly) {
		return wire.ErrCodeReadOnly
	}
	if errors.Is(err, engine.ErrStaleEpoch) {
		return wire.ErrCodeStaleEpoch
	}
	if errors.Is(err, engine.ErrWriteConflict) {
		return wire.ErrCodeWriteConflict
	}
	return wire.ErrCodeGeneric
}

// role names the node's cluster role for handshakes and status probes.
func (s *Server) role() string {
	if s.db.ReadOnly() {
		return "replica"
	}
	return "primary"
}

// nodeStatus snapshots the member state a coordinator or router needs.
func (s *Server) nodeStatus() wire.NodeStatus {
	rs := s.db.ReplicationStatus()
	ws := s.db.WALStatus()
	durable := ws.DurableLSN
	if ws.Mode == "disabled" {
		// No WAL: applied is as durable as this node gets.
		durable = rs.AppliedLSN
	}
	return wire.NodeStatus{
		Role:        rs.Role,
		Epoch:       rs.Epoch,
		Origin:      s.db.Store().Origin(),
		AppliedLSN:  rs.AppliedLSN,
		DurableLSN:  durable,
		PrimaryLSN:  rs.PrimaryLSN,
		Connected:   rs.Connected,
		StalenessMs: rs.Staleness.Milliseconds(),
		LastError:   rs.LastError,
	}
}

// runClusterOp executes a coordinator-issued promote/demote against the
// node's cluster harness and answers with the post-transition status.
func (st *connStreams) runClusterOp(conn *wire.Conn, op func(ClusterControl) error) error {
	s := st.s
	ctl := s.ClusterControl()
	if ctl == nil {
		return s.writeError(conn, "this server is not cluster-managed (no cluster harness installed)")
	}
	if err := op(ctl); err != nil {
		return s.writeErrorCode(conn, err.Error(), errCodeOf(err))
	}
	st.frame = s.nodeStatus().Encode(st.frame[:0])
	return s.writeMessageFlush(conn, wire.MsgStatusOK, st.frame)
}

// connStreams is one connection's statement-serving state: its named
// prepared statements, its (at most one) open portal, and the reusable
// encode buffers row batches build in. It lives on the serveConn stack, so
// everything here — including the executor tree behind an open cursor —
// dies the moment the connection does.
type connStreams struct {
	s     *Server
	nc    net.Conn
	stmts map[string]*engine.Prepared
	port  *portal
	seg   []byte // encoded rows of the batch being built
	frame []byte // finished frame payload (count prefix + seg)
}

// portal is one open cursor: a live engine row stream plus the wall-clock
// deadline the whole cursor (across fetches) must finish by.
type portal struct {
	rows     *engine.Rows
	deadline time.Time
	descSent bool
}

// maxPreparedStmts caps the per-connection statement registry, so a client
// cannot grow server memory without bound by preparing forever.
const maxPreparedStmts = 256

// closePortal releases the connection's open cursor, if any: the executor
// tree closes immediately (a disconnected client frees its resources here)
// and the portal bookkeeping that shutdown draining relies on is cleared.
func (st *connStreams) closePortal() {
	if st.port == nil {
		return
	}
	st.port.rows.Close()
	st.port = nil
	st.s.portals.Add(-1)
	mOpenPortals.Dec()
	st.s.setPortalOpen(st.nc, false, time.Time{})
}

// trim drops outlier encode buffers so one huge batch cannot pin megabytes
// for the connection's lifetime.
func (st *connStreams) trim() {
	if cap(st.seg) > 1<<20 {
		st.seg = nil
	}
	if cap(st.frame) > 1<<20 {
		st.frame = nil
	}
}

// openRows opens a statement under the per-query timeout. The timeout is a
// session deadline polled by the executor alongside the standing
// kill-channel interrupt — no timer, goroutine, or channel is allocated per
// statement — and it is captured into the statement's execution context, so
// it keeps governing the stream across later fetches. The deadline is
// returned for the portal's own between-fetch checks.
func (s *Server) openRows(sess *engine.Session, open func() (*engine.Rows, error)) (*engine.Rows, time.Time, error) {
	if s.cfg.QueryTimeout <= 0 {
		rows, err := open()
		return rows, time.Time{}, err
	}
	deadline := time.Now().Add(s.cfg.QueryTimeout)
	sess.SetDeadline(deadline)
	defer sess.SetDeadline(time.Time{})
	rows, err := open()
	// Only a genuine interrupt unwind past the deadline is relabeled as a
	// timeout; a statement that failed for its own reasons keeps its error,
	// and a shutdown kill keeps the interrupt error (the connection is dying
	// anyway). DML executes eagerly inside open; SELECTs can also unwind
	// here when a blocking operator (sort, aggregate, set operation — now
	// including their spilling paths) drains its input during Open. The
	// relabeled error still unwraps to executor.ErrInterrupted, so the call
	// sites' timeoutCode classification keeps it typed on the wire.
	if errors.Is(err, executor.ErrInterrupted) && !time.Now().Before(deadline) {
		mQueryTimeouts.Inc()
		return nil, deadline, &timeoutError{msg: s.timeoutMessage()}
	}
	return rows, deadline, err
}

// timeoutError is the relabeled per-query-timeout unwind: the operator-level
// interrupt stays reachable through Unwrap so the error keeps its typed wire
// code (ErrCodeTimeout) at every reporting site.
type timeoutError struct{ msg string }

func (e *timeoutError) Error() string { return e.msg }
func (e *timeoutError) Unwrap() error { return executor.ErrInterrupted }

// timeoutMessage is the one wording of the typed per-query-timeout error,
// paired with wire.ErrCodeTimeout at every site that reports one.
func (s *Server) timeoutMessage() string {
	return fmt.Sprintf("query canceled: exceeded the %s per-query timeout", s.cfg.QueryTimeout)
}

// timeoutCode reports whether err should travel as a typed timeout: an
// interrupt unwind on a statement whose deadline has passed.
func timeoutCode(err error, deadline time.Time) bool {
	return errors.Is(err, executor.ErrInterrupted) &&
		!deadline.IsZero() && !time.Now().Before(deadline)
}

// runQuery executes one statement on the session and streams the result to
// completion in bounded row batches — the server never materializes it.
// Returned errors are connection-fatal I/O errors; statement errors travel
// to the client as wire errors (typed, including mid-stream).
func (st *connStreams) runQuery(conn *wire.Conn, sess *engine.Session, sqlText string) error {
	s := st.s
	s.queries.Add(1)
	mServerQueries.Inc()
	if st.port != nil {
		// A suspended cursor owns the session's active statement (its
		// executor tree is live); running another statement under it would
		// break the engine's one-active-statement contract. Same refusal as
		// runExecute — the portal stays usable.
		return s.writeError(conn, "a cursor is already open on this connection")
	}
	rows, deadline, err := s.openRows(sess, func() (*engine.Rows, error) { return sess.Query(sqlText) })
	if err != nil {
		code := errCodeOf(err)
		if timeoutCode(err, deadline) {
			code = wire.ErrCodeTimeout
		}
		// Open consumed compute budget (a timed-out Open consumed all of
		// it); the error frame gets its own delivery deadline.
		s.armWriteDeadline(st.nc)
		return s.writeErrorCode(conn, err.Error(), code)
	}
	defer rows.Close()
	if _, fatal := st.streamBatches(conn, &portal{rows: rows, deadline: deadline}, 0); fatal != nil {
		return fatal
	}
	return conn.Flush()
}

// runParse registers a server-side prepared statement on the session.
func (st *connStreams) runParse(conn *wire.Conn, sess *engine.Session, p wire.Parse) error {
	s := st.s
	if st.stmts == nil {
		st.stmts = make(map[string]*engine.Prepared)
	}
	if _, exists := st.stmts[p.Name]; !exists && len(st.stmts) >= maxPreparedStmts {
		return s.writeError(conn, fmt.Sprintf("too many prepared statements (limit %d per connection)", maxPreparedStmts))
	}
	prep, err := sess.Prepare(p.SQL)
	if err != nil {
		return s.writeErrorCode(conn, err.Error(), errCodeOf(err))
	}
	st.stmts[p.Name] = prep
	st.frame = binary.AppendUvarint(st.frame[:0], uint64(prep.NumParams()))
	return s.writeMessageFlush(conn, wire.MsgParseOK, st.frame)
}

// runExecute binds arguments to a prepared (or inline one-shot) statement,
// opens the connection's portal and streams the first batch. A FetchSize of
// 0 streams the whole result without suspending.
func (st *connStreams) runExecute(conn *wire.Conn, sess *engine.Session, req wire.Execute) error {
	s := st.s
	s.queries.Add(1)
	mServerQueries.Inc()
	if st.port != nil {
		// One portal per connection; the protocol is strictly
		// request/response, so a second Execute is a client bug. The open
		// portal stays usable.
		return s.writeError(conn, "a cursor is already open on this connection")
	}
	prep := st.stmts[req.Name]
	if req.Name == "" {
		var err error
		prep, err = sess.Prepare(req.SQL)
		if err != nil {
			return s.writeErrorCode(conn, err.Error(), errCodeOf(err))
		}
	} else if prep == nil {
		return s.writeError(conn, fmt.Sprintf("unknown prepared statement %q", req.Name))
	}
	rows, deadline, err := s.openRows(sess, func() (*engine.Rows, error) { return prep.Query(req.Args...) })
	if err != nil {
		code := errCodeOf(err)
		if timeoutCode(err, deadline) {
			code = wire.ErrCodeTimeout
		}
		// Same as runQuery: the error frame's delivery gets a fresh budget.
		s.armWriteDeadline(st.nc)
		return s.writeErrorCode(conn, err.Error(), code)
	}
	port := &portal{rows: rows, deadline: deadline}
	finished, fatal := st.streamBatches(conn, port, req.FetchSize)
	if fatal != nil {
		rows.Close()
		return fatal
	}
	if finished {
		rows.Close()
		return conn.Flush()
	}
	// The limit suspended the result: the portal stays open for Fetch, and
	// the connection counts as draining-eligible for graceful shutdown.
	st.port = port
	s.portals.Add(1)
	mOpenPortals.Inc()
	s.setPortalOpen(st.nc, true, port.deadline)
	if err := conn.WriteMessage(wire.MsgSuspended, nil); err != nil {
		return err
	}
	return conn.Flush()
}

// runFetch continues the open portal by up to fetch rows (0 = to
// completion). The cursor's query deadline is enforced between fetches too,
// so a timeout firing while the portal sits idle surfaces as a typed error
// on the next fetch instead of an untyped stall.
func (st *connStreams) runFetch(conn *wire.Conn, fetch uint64) error {
	s := st.s
	if st.port == nil {
		return s.writeError(conn, "no cursor is open on this connection")
	}
	p := st.port
	if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
		st.closePortal()
		return s.writeErrorCode(conn, s.timeoutMessage(), wire.ErrCodeTimeout)
	}
	finished, fatal := st.streamBatches(conn, p, fetch)
	if fatal != nil {
		st.closePortal()
		return fatal
	}
	if finished {
		st.closePortal()
		return conn.Flush()
	}
	if err := conn.WriteMessage(wire.MsgSuspended, nil); err != nil {
		return err
	}
	return conn.Flush()
}

// streamBatches forwards up to limit rows (0 = all) from p.rows as RowBatch
// frames, each bounded by the configured row/byte caps and flushed
// individually so the write deadline measures per-batch delivery progress —
// server-side memory is bounded by one batch regardless of result size. It
// reports finished=true once the result ended (Complete or in-band Error
// written; the portal is dead), finished=false when the limit suspended it.
// The returned error is a connection-fatal I/O failure.
func (st *connStreams) streamBatches(conn *wire.Conn, p *portal, limit uint64) (bool, error) {
	s := st.s
	if !p.descSent {
		p.descSent = true
		if len(p.rows.Columns) > 0 {
			st.frame = rowDescOf(p.rows).Encode(st.frame[:0])
			if err := conn.WriteMessage(wire.MsgRowDesc, st.frame); err != nil {
				return false, err
			}
		}
	}
	maxRows, maxBytes := s.cfg.batchRows(), s.cfg.batchBytes()
	var sent uint64
	for {
		n := 0
		st.beginBatch()
		for n < maxRows && len(st.seg) < maxBytes && (limit == 0 || sent < limit) {
			row, err := p.rows.Next()
			if err != nil {
				// A mid-stream statement error (interrupt, timeout, runtime
				// failure): deliver the rows already batched, then report the
				// error in-band — the frame stream stays in sync and the
				// connection survives. The write deadline is re-armed first:
				// a query that timed out consumed its whole budget computing,
				// and the deadline bounds delivery, not compute — without a
				// fresh arm the error frame itself hits the expired deadline
				// and the client sees a reset instead of the typed error.
				s.armWriteDeadline(st.nc)
				if ferr := st.writeBatch(conn, n); ferr != nil {
					return false, ferr
				}
				msg, code := err.Error(), errCodeOf(err)
				if timeoutCode(err, p.deadline) {
					msg, code = s.timeoutMessage(), wire.ErrCodeTimeout
				}
				if werr := s.writeErrorCode(conn, msg, code); werr != nil {
					return false, werr
				}
				return true, nil
			}
			if row == nil {
				// Fresh delivery budget for the final batch + Complete: the
				// accumulation loop above is compute, bounded by the query
				// deadline, not by the write deadline armed at dispatch.
				s.armWriteDeadline(st.nc)
				if ferr := st.writeBatch(conn, n); ferr != nil {
					return false, ferr
				}
				t := p.rows.Timings()
				done := wire.Complete{
					Tag:      p.rows.Tag(),
					CacheHit: p.rows.CacheHit,
					Parse:    int64(t.Parse),
					Analyze:  int64(t.Analyze),
					Rewrite:  int64(t.Rewrite),
					Plan:     int64(t.Plan),
					Execute:  int64(t.Execute),
					Epoch:    s.db.Epoch(),
				}
				st.frame = done.Encode(st.frame[:0])
				if err := conn.WriteMessage(wire.MsgComplete, st.frame); err != nil {
					return false, err
				}
				return true, nil
			}
			st.seg = wire.AppendRow(st.seg, row)
			n++
			sent++
		}
		s.armWriteDeadline(st.nc)
		if err := st.writeBatch(conn, n); err != nil {
			// An oversize row is rejected before any of its bytes hit the
			// wire, so the stream is still in sync: report it in-band and
			// keep the connection.
			if errors.Is(err, wire.ErrFrameTooLarge) {
				if werr := s.writeError(conn, fmt.Sprintf("result row too large for the wire protocol: %v", err)); werr != nil {
					return false, werr
				}
				return true, nil
			}
			return false, err
		}
		if limit > 0 && sent >= limit {
			return false, nil
		}
		// Flush per batch (the deadline armed above bounds it), so delivery
		// is bounded per batch, not per result.
		if err := conn.Flush(); err != nil {
			return false, err
		}
	}
}

// beginBatch resets st.seg to a fixed-width row-count header (a padded but
// valid uvarint, patched by writeBatch once the count is known), so the
// encoded row bytes are written exactly once — no second buffer, no memcpy
// of the whole batch just to prepend a count.
func (st *connStreams) beginBatch() {
	st.seg = append(st.seg[:0], 0x80, 0x80, 0x80, 0x00)
}

// writeBatch frames the n rows built up in st.seg; n == 0 writes nothing.
// n is bounded by batchRows (≤ 2^21), so it always fits the four 7-bit
// groups reserved by beginBatch.
func (st *connStreams) writeBatch(conn *wire.Conn, n int) error {
	if n == 0 {
		return nil
	}
	st.seg[0] = 0x80 | byte(n&0x7f)
	st.seg[1] = 0x80 | byte(n>>7&0x7f)
	st.seg[2] = 0x80 | byte(n>>14&0x7f)
	st.seg[3] = byte(n >> 21 & 0x7f)
	return conn.WriteMessage(wire.MsgRowBatch, st.seg)
}

// rowDescOf builds the wire column description from an engine row stream.
// The schema carries the column types and provenance flags; columns that
// lack a schema entry (purely defensive) fall back to untyped.
func rowDescOf(rows *engine.Rows) wire.RowDesc {
	n := len(rows.Columns)
	desc := wire.RowDesc{
		Names:  rows.Columns,
		Kinds:  make([]value.Kind, n),
		IsProv: make([]bool, n),
	}
	for i := 0; i < n && i < len(rows.Schema); i++ {
		desc.Kinds[i] = rows.Schema[i].Type
		desc.IsProv[i] = rows.Schema[i].IsProv
	}
	return desc
}

// runBackup streams a consistent snapshot without blocking queries: the
// storage layer captures a point-in-time image in microseconds and the gob
// encode happens against copy-on-write row snapshots.
func (s *Server) runBackup(conn *wire.Conn, nc net.Conn) error {
	w := &chunkWriter{conn: conn, refresh: func() { s.armWriteDeadline(nc) }}
	if err := s.db.Store().Save(w); err != nil {
		if w.writeErr != nil {
			return w.writeErr // connection gone
		}
		return s.writeError(conn, fmt.Sprintf("backup failed: %v", err))
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	if err := conn.WriteMessage(wire.MsgBackupDone, nil); err != nil {
		return err
	}
	return conn.Flush()
}

// chunkWriter frames an io.Writer stream into BackupChunk messages. refresh
// re-arms the write deadline before each chunk, so a backup is bounded by
// per-chunk progress rather than total duration — a large database streams
// for as long as the client keeps reading, while a stalled client still
// times out within one QueryTimeout.
type chunkWriter struct {
	conn     *wire.Conn
	refresh  func()
	buf      []byte
	writeErr error
}

const backupChunkSize = 256 << 10

// Write streams full chunks straight out of p (WriteMessage copies into the
// connection's buffer, so aliasing is safe) and only retains the sub-chunk
// remainder — constant extra memory and linear work however large the
// encoder's writes are.
func (w *chunkWriter) Write(p []byte) (int, error) {
	if w.writeErr != nil {
		return 0, w.writeErr
	}
	total := len(p)
	// Top up a buffered partial chunk first.
	if len(w.buf) > 0 {
		need := backupChunkSize - len(w.buf)
		if need > len(p) {
			need = len(p)
		}
		w.buf = append(w.buf, p[:need]...)
		p = p[need:]
		if len(w.buf) == backupChunkSize {
			if err := w.send(w.buf); err != nil {
				return 0, err
			}
			w.buf = w.buf[:0]
		}
	}
	for len(p) >= backupChunkSize {
		if err := w.send(p[:backupChunkSize]); err != nil {
			return 0, err
		}
		p = p[backupChunkSize:]
	}
	w.buf = append(w.buf, p...)
	return total, nil
}

func (w *chunkWriter) flushChunk() error {
	if w.writeErr != nil {
		return w.writeErr
	}
	if len(w.buf) == 0 {
		return nil
	}
	err := w.send(w.buf)
	w.buf = w.buf[:0]
	return err
}

func (w *chunkWriter) send(chunk []byte) error {
	w.refresh()
	if err := w.conn.WriteMessage(wire.MsgBackupChunk, chunk); err != nil {
		w.writeErr = err
		return err
	}
	// Flush per chunk so the deadline measures delivery progress, not just
	// filling the 32 KiB write buffer.
	if err := w.conn.Flush(); err != nil {
		w.writeErr = err
		return err
	}
	return nil
}

// --- replication subscriptions --------------------------------------------------

// Change batches stop accumulating past either bound, so one frame stays far
// below the wire size limit and a follower applies (and acknowledges via its
// next read) in small steps.
const (
	changeBatchMaxRecords  = 512
	changeBatchTargetBytes = 256 << 10
)

// subscribeRequest is a parsed MsgSubscribe payload.
type subscribeRequest struct {
	// after is the follower's applied LSN; the stream resumes past it.
	after uint64
	// force requests a bootstrap snapshot regardless of resumability.
	force bool
	// origin is the follower's history id (0 from followers predating it).
	origin uint64
	// resumeHash fingerprints the follower's record at `after` (0 when
	// unavailable — empty log, or restored from a snapshot file).
	resumeHash uint64
	// epoch is the newest cluster fencing epoch the follower has seen; a
	// node serving under an older epoch refuses the subscription (it is a
	// deposed primary).
	epoch uint64
}

// serveSubscription streams this database's change feed: an optional
// bootstrap snapshot (when the follower's position precedes the retained log
// tail, or it asked to be re-seeded), then MsgSubLive, then change batches as
// mutations commit, with heartbeats carrying the current last LSN while the
// log is idle. The loop runs until the connection dies, the kill channel
// fires (forced shutdown) or the server begins shutting down — followers are
// expected to reconnect and resume from their applied LSN.
func (s *Server) serveSubscription(conn *wire.Conn, nc net.Conn, sub subscribeRequest, kill <-chan struct{}) error {
	// The store (and its log) are pinned for the stream's lifetime — the
	// snapshot, the origin check and the change stream must all describe one
	// store. If this server is itself a replica and re-bootstraps, the
	// database swaps in a new store and this log stops growing — detected
	// below so chained followers reconnect against the new history instead
	// of idling forever.
	store := s.db.Store()
	log := store.Log()
	after, force := sub.after, sub.force
	// A follower from a different history (it never restored one of OUR
	// snapshots — a rebuilt primary, a repointed -replica-of) must not
	// resume by LSN coincidence: its numbers count someone else's past.
	// Bootstrap it instead; Restore adopts this store's origin.
	if sub.origin != 0 && sub.origin != store.Origin() {
		force = true
	}
	needSnapshot := force || after > log.LastLSN()
	if !needSnapshot {
		if _, ok := log.Since(after, 1); !ok {
			needSnapshot = true // trimmed past the follower's position
		}
	}
	if !needSnapshot && sub.resumeHash != 0 && after > 0 {
		// Same-origin fork check: the follower's last applied record must BE
		// our record at that LSN. A primary restarted from an older snapshot
		// shares the origin but may have re-assigned these LSNs to different
		// changes; resuming would silently diverge (insert-only feeds never
		// trip the row-image match). Unverifiable positions (our record at
		// `after` already trimmed) resume on the LSN/origin checks alone.
		if recs, ok := log.Since(after-1, 1); ok && len(recs) == 1 && recs[0].LSN == after {
			if repl.RecordHash(recs[0]) != sub.resumeHash {
				s.logf("subscription resume hash mismatch at LSN %d: follower is on a forked timeline, re-seeding", after)
				needSnapshot = true
			}
		}
	}
	if needSnapshot {
		s.armWriteDeadline(nc)
		if err := conn.WriteMessage(wire.MsgSubSnapshot, nil); err != nil {
			return err
		}
		w := &chunkWriter{conn: conn, refresh: func() { s.armWriteDeadline(nc) }}
		lsn, err := store.SaveLSN(w)
		if err != nil {
			if w.writeErr != nil {
				return w.writeErr
			}
			return s.writeError(conn, fmt.Sprintf("bootstrap snapshot failed: %v", err))
		}
		if err := w.flushChunk(); err != nil {
			return err
		}
		after = lsn
	}
	s.armWriteDeadline(nc)
	// SubLive carries the stream's start LSN, this server's heartbeat
	// interval (so the follower can size its liveness read deadline to the
	// cadence it will actually observe instead of guessing), and the fencing
	// epoch the stream is served under.
	live := binary.AppendUvarint(nil, after)
	live = binary.AppendUvarint(live, uint64(s.cfg.heartbeat()))
	live = binary.AppendUvarint(live, s.db.Epoch())
	if err := conn.WriteMessage(wire.MsgSubLive, live); err != nil {
		return err
	}
	if err := conn.Flush(); err != nil {
		return err
	}
	nc.SetWriteDeadline(time.Time{})

	// The subscription writes one-way, which frees the read side for the
	// follower's apply acknowledgments: a dedicated reader feeds MsgSubAck
	// LSNs into the tracker the semi-synchronous write gate waits on. The
	// reader doubles as prompt disconnect detection — a dead follower wakes
	// the idle select below instead of lingering until a heartbeat write
	// fails (and until then would count toward the sync quorum).
	ackID := s.acks.register()
	defer s.acks.unregister(ackID)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			typ, body, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch typ {
			case wire.MsgSubAck:
				r := wire.NewReader(body)
				lsn := r.Uvarint()
				if r.Err() != nil {
					return
				}
				s.acks.update(ackID, lsn)
			case wire.MsgTerminate:
				return
			default:
				return // protocol violation; the write loop will notice the close
			}
		}
	}()

	hb := time.NewTicker(s.cfg.heartbeat())
	defer hb.Stop()
	var frame, seg []byte
	for {
		if s.db.Store() != store {
			// The database re-bootstrapped under this stream (it is a
			// replica that took a fresh snapshot); the pinned log is dead.
			// Waits below always wake within a heartbeat, so this is seen
			// promptly.
			s.armWriteDeadline(nc)
			s.writeErrorCode(conn, "database was re-bootstrapped; re-subscribe", wire.ErrCodeLogTrimmed)
			return nil
		}
		// Take the growth signal BEFORE reading the tail, so an append that
		// lands between the two cannot be missed.
		grown := log.WaitCh()
		recs, ok := log.Since(after, changeBatchMaxRecords)
		if !ok {
			// The log outpaced this stream and trimmed past its position.
			// Say so with the typed code; the follower reconnects and
			// bootstraps from a fresh snapshot.
			s.armWriteDeadline(nc)
			s.writeErrorCode(conn,
				fmt.Sprintf("change log trimmed past LSN %d; re-subscribe for a snapshot", after),
				wire.ErrCodeLogTrimmed)
			return nil
		}
		if len(recs) == 0 {
			select {
			case <-grown:
			case <-hb.C:
				s.armWriteDeadline(nc)
				frame = binary.AppendUvarint(frame[:0], log.LastLSN())
				frame = binary.AppendUvarint(frame, s.db.Epoch())
				if err := conn.WriteMessage(wire.MsgHeartbeat, frame); err != nil {
					return err
				}
				if err := conn.Flush(); err != nil {
					return err
				}
				nc.SetWriteDeadline(time.Time{})
			case <-readerDone:
				return nil // follower disconnected (or spoke out of turn)
			case <-kill:
				return nil
			case <-s.done:
				return nil
			}
			continue
		}
		for i := 0; i < len(recs); {
			n := 0
			seg = seg[:0]
			for i+n < len(recs) && n < changeBatchMaxRecords && len(seg) < changeBatchTargetBytes {
				seg = repl.AppendRecord(seg, recs[i+n])
				n++
			}
			frame = binary.AppendUvarint(frame[:0], uint64(n))
			frame = append(frame, seg...)
			s.armWriteDeadline(nc)
			if err := conn.WriteMessage(wire.MsgChanges, frame); err != nil {
				return err
			}
			i += n
		}
		if err := conn.Flush(); err != nil {
			return err
		}
		nc.SetWriteDeadline(time.Time{})
		after = recs[len(recs)-1].LSN
		// One outlier batch must not pin megabytes for the stream's lifetime.
		if cap(seg) > 1<<20 {
			seg, frame = nil, nil
		}
	}
}
