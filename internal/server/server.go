// Package server exposes a Perm database over TCP using the wire protocol
// of internal/wire. Every accepted connection gets its own engine.Session —
// per-session settings, plan cache and SQL-PLE provenance queries all work
// over the network exactly as they do embedded — while the storage engine
// and catalog are shared, so concurrent clients see one database.
//
// Operational behavior:
//
//   - Connection limits: at most Config.MaxConns sessions run at once;
//     excess connections are refused with a wire error at handshake.
//   - Per-query timeouts: Config.QueryTimeout arms the session's interrupt
//     channel for each statement; a query that overruns unwinds with
//     executor.ErrInterrupted, is reported as a wire error, and the
//     connection stays usable.
//   - Graceful shutdown: Shutdown stops accepting, closes idle connections
//     immediately, waits for in-flight requests to drain until the context
//     expires, then force-closes stragglers (interrupting their queries).
//   - Online backup: the Backup message streams a consistent storage
//     snapshot (storage.Store.Save) without blocking concurrent queries.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"perm/internal/engine"
	"perm/internal/executor"
	"perm/internal/repl"
	"perm/internal/value"
	"perm/internal/wire"
)

// Config tunes a Server. The zero value means no connection limit and no
// query timeout.
type Config struct {
	// MaxConns caps concurrently served connections; 0 means unlimited.
	MaxConns int
	// QueryTimeout bounds each statement's execution AND the writing of its
	// response, so a client that stops reading cannot pin a session (and a
	// MaxConns slot) forever; 0 means unlimited.
	QueryTimeout time.Duration
	// HeartbeatInterval is how often a replication subscription sends a
	// heartbeat (carrying the primary's last LSN) while the change log is
	// idle; 0 means one second. Followers size their read timeouts to it.
	HeartbeatInterval time.Duration
	// Logf, when set, receives connection lifecycle and error logs.
	Logf func(format string, args ...any)
}

func (c Config) heartbeat() time.Duration {
	if c.HeartbeatInterval <= 0 {
		return time.Second
	}
	return c.HeartbeatInterval
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Server serves a Perm database over the wire protocol.
type Server struct {
	db  *engine.DB
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	// conns tracks each served connection: its kill channel (closing it
	// interrupts the connection's in-flight query, so force-closing a socket
	// also unwinds the session promptly) and whether a request is currently
	// being served — graceful shutdown closes idle connections immediately
	// (the norm with pooled database/sql clients) and lets in-flight requests
	// finish.
	conns map[net.Conn]*connState
	// refuseConns tracks connections currently being refused, so the forced
	// shutdown path can cut their 5-second courtesy window short.
	refuseConns map[net.Conn]struct{}
	active      int
	closing     bool
	wg          sync.WaitGroup
	// refuseWg tracks in-flight connection refusals; refusing counts how many
	// run right now, so a connection flood cannot grow refusal goroutines
	// (each with bufio buffers) without bound (see goRefuse).
	refuseWg sync.WaitGroup
	refusing int

	// done is closed when Shutdown begins: replication subscriptions wait on
	// the change log, not the socket, so closing their connection alone would
	// not wake them promptly.
	done     chan struct{}
	doneOnce sync.Once

	queries       atomic.Uint64
	subscriptions atomic.Int64
}

// New creates a server over db.
func New(db *engine.DB, cfg Config) *Server {
	return &Server{
		db:          db,
		cfg:         cfg,
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]*connState),
		refuseConns: make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// QueriesServed reports the total number of statements executed.
func (s *Server) QueriesServed() uint64 { return s.queries.Load() }

// ActiveSubscriptions reports how many replication followers are streaming.
func (s *Server) ActiveSubscriptions() int { return int(s.subscriptions.Load()) }

// ActiveConns reports the number of connections currently served.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until the listener fails or the server
// shuts down. It may be called on several listeners concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	var acceptDelay time.Duration
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return ErrServerClosed
			}
			// Transient accept failures (EMFILE under fd pressure, ECONNABORTED)
			// must not take the whole server down; back off and retry the way
			// net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				s.logf("accept: %v; retrying in %v", err, acceptDelay)
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		kill, ok := s.registerConn(nc)
		if !ok {
			// Over the connection limit (or shutting down): answer the
			// handshake with an error so clients fail fast and descriptively.
			s.goRefuse(nc)
			continue
		}
		go func() {
			defer s.wg.Done()
			defer s.unregisterConn(nc)
			s.serveConn(nc, kill)
		}()
	}
}

// registerConn admits nc under the connection limit. The WaitGroup increment
// happens under the same lock that Shutdown uses to set closing, so a
// connection is either refused or visible to Shutdown's wait — never
// admitted into a gap.
func (s *Server) registerConn(nc net.Conn) (chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, false
	}
	if s.cfg.MaxConns > 0 && s.active >= s.cfg.MaxConns {
		return nil, false
	}
	s.active++
	kill := make(chan struct{})
	s.conns[nc] = &connState{kill: kill}
	s.wg.Add(1)
	return kill, true
}

// connState is the per-connection bookkeeping shutdown needs.
type connState struct {
	kill     chan struct{}
	inFlight bool
}

// beginRequest marks the connection busy; it returns false when the server
// is shutting down and the request should be refused.
func (s *Server) beginRequest(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return false
	}
	if st := s.conns[nc]; st != nil {
		st.inFlight = true
	}
	return true
}

// endRequest marks the connection idle again; it returns false when the
// server started shutting down mid-request, in which case the session
// should close now that its response is delivered.
func (s *Server) endRequest(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.conns[nc]; st != nil {
		st.inFlight = false
	}
	return !s.closing
}

func (s *Server) unregisterConn(nc net.Conn) {
	s.mu.Lock()
	s.active--
	delete(s.conns, nc)
	s.mu.Unlock()
}

// maxConcurrentRefusals caps the courtesy-error goroutines: past the cap a
// flood of over-limit connections is dropped with a bare close instead of a
// buffered handshake, so MaxConns really does bound server memory.
const maxConcurrentRefusals = 32

// serverReadLimit bounds client→server frames (1 MiB): ample for any SQL
// statement, small enough that a flood of hostile length prefixes cannot
// exhaust memory. Server→client frames keep the full wire.MaxFrameSize for
// wide provenance rows.
const serverReadLimit = 1 << 20

// goRefuse runs refuse on its own goroutine, tracked by refuseWg so Shutdown
// does not return (and permserver does not exit) while a refusal is still
// delivering its message. The Add happens under s.mu and only while not
// closing, which orders it strictly before Shutdown's Wait.
func (s *Server) goRefuse(nc net.Conn) {
	s.mu.Lock()
	if s.closing || s.refusing >= maxConcurrentRefusals {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.refusing++
	s.refuseConns[nc] = struct{}{}
	s.refuseWg.Add(1)
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.refusing--
			delete(s.refuseConns, nc)
			s.mu.Unlock()
			s.refuseWg.Done()
		}()
		s.refuse(nc)
	}()
}

// refuse answers a rejected connection with a wire error naming the actual
// reason (shutdown vs. capacity).
func (s *Server) refuse(nc net.Conn) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	conn := wire.NewConn(nc)
	conn.SetReadLimit(serverReadLimit)
	// Consume the Hello so the client reads our error rather than a reset.
	if typ, _, err := conn.ReadMessage(); err != nil || typ != wire.MsgHello {
		return
	}
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	msg := "connection limit reached"
	if closing {
		msg = "server is shutting down"
	}
	conn.WriteMessage(wire.MsgError, wire.AppendError(nil, msg, wire.ErrCodeGeneric))
	conn.Flush()
}

// Shutdown stops accepting connections, closes idle connections immediately
// (pooled database/sql clients keep idle connections open indefinitely, so
// waiting for them would burn the whole drain deadline on every deploy), and
// waits for in-flight requests to finish. When ctx expires first, remaining
// connections — including any mid-refusal — are force-closed and their
// queries interrupted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.doneOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	s.closing = true
	for l := range s.listeners {
		l.Close()
	}
	for nc, st := range s.conns {
		if !st.inFlight {
			nc.Close() // idle: unblocks the read loop, session tears down
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.refuseWg.Wait() // refusals carry a 5s deadline, so this is bounded
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for nc, st := range s.conns {
			close(st.kill) // interrupt the in-flight query
			nc.Close()
		}
		s.conns = make(map[net.Conn]*connState)
		for nc := range s.refuseConns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-closes everything immediately.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// serveConn runs one session's request/response loop. kill is closed when
// the server force-closes the connection, interrupting in-flight queries.
func (s *Server) serveConn(nc net.Conn, kill <-chan struct{}) {
	defer nc.Close()
	conn := wire.NewConn(nc)
	// Clients only ever send small frames (handshake, SQL text, backup
	// request); capping reads stops a hostile length prefix from making each
	// connection allocate MaxFrameSize before sending a byte.
	conn.SetReadLimit(serverReadLimit)

	// Handshake, under a deadline so an idle TCP connection cannot hold a
	// MaxConns slot without ever speaking the protocol.
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	typ, body, err := conn.ReadMessage()
	if err != nil || typ != wire.MsgHello {
		return
	}
	hello, err := wire.DecodeHello(body)
	if err != nil {
		return
	}
	if hello.Version != wire.ProtocolVersion {
		conn.WriteMessage(wire.MsgError, wire.AppendError(nil,
			fmt.Sprintf("protocol version %d not supported (server speaks %d)",
				hello.Version, wire.ProtocolVersion), wire.ErrCodeGeneric))
		conn.Flush()
		return
	}
	ok := wire.HelloOK{Version: wire.ProtocolVersion, Server: "perm"}
	if err := conn.WriteMessage(wire.MsgHelloOK, ok.Encode(nil)); err != nil {
		return
	}
	if err := conn.Flush(); err != nil {
		return
	}
	nc.SetDeadline(time.Time{}) // handshake done; sessions may idle

	sess := s.db.NewSession()
	defer sess.Close()
	// The connection's kill channel is the session's standing interrupt, so a
	// forced shutdown unwinds an in-flight query promptly; per-query timeouts
	// ride on the session deadline (see execute).
	sess.SetInterrupt(kill)
	s.logf("session open from %s (client %q)", nc.RemoteAddr(), hello.Client)
	defer s.logf("session closed from %s", nc.RemoteAddr())

	scratch := make([]byte, 0, 4096)
	for {
		typ, body, err := conn.ReadMessage()
		if err != nil {
			if err != io.EOF {
				s.logf("read from %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		if typ == wire.MsgTerminate {
			return
		}
		if typ == wire.MsgSubscribe {
			// Subscribe turns the connection into a one-way replication
			// stream; the request/response loop — and with it the in-flight
			// bookkeeping — ends here. The subscription counts as idle for
			// graceful shutdown (a follower reconnects on its own), and the
			// streaming loop watches s.done so shutdown wakes it even while
			// it waits on the change log.
			r := wire.NewReader(body)
			sub := subscribeRequest{after: r.Uvarint()}
			sub.force = r.Remaining() > 0 && r.Bool()
			if r.Remaining() > 0 {
				sub.origin = r.Uvarint()
			}
			if r.Remaining() > 0 {
				sub.resumeHash = r.Uvarint()
			}
			if r.Err() != nil {
				s.writeError(conn, "malformed subscribe frame")
				return
			}
			s.logf("replication subscription from %s (after LSN %d, origin %x, force-snapshot %v)",
				nc.RemoteAddr(), sub.after, sub.origin, sub.force)
			s.subscriptions.Add(1)
			defer s.subscriptions.Add(-1)
			if err := s.serveSubscription(conn, nc, sub, kill); err != nil {
				s.logf("replication stream to %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		if !s.beginRequest(nc) {
			// Shutdown raced this request in: tell the client rather than
			// resetting it.
			s.writeError(conn, "server is shutting down")
			return
		}
		switch typ {
		case wire.MsgQuery:
			r := wire.NewReader(body)
			sqlText := r.String()
			if r.Err() != nil {
				s.writeError(conn, "malformed query frame")
				return
			}
			s.armWriteDeadline(nc)
			if err := s.runQuery(conn, sess, sqlText, &scratch); err != nil {
				s.logf("write to %s: %v", nc.RemoteAddr(), err)
				return
			}
			nc.SetWriteDeadline(time.Time{})
			// Mirror the read path's buffer hygiene: one outlier result must
			// not pin a huge scratch for the connection's lifetime.
			if cap(scratch) > 1<<20 {
				scratch = make([]byte, 0, 4096)
			}
		case wire.MsgBackup:
			s.armWriteDeadline(nc)
			if err := s.runBackup(conn, nc); err != nil {
				s.logf("backup to %s: %v", nc.RemoteAddr(), err)
				return
			}
			nc.SetWriteDeadline(time.Time{})
		default:
			s.writeError(conn, fmt.Sprintf("unexpected message type %q", typ))
			return
		}
		if !s.endRequest(nc) {
			// Shutdown began while this request ran; its response is
			// delivered, now close the session instead of idling.
			return
		}
	}
}

// armWriteDeadline bounds the writing of one response by the query timeout:
// a client that sends a request and then stops reading would otherwise block
// the session goroutine in a deadline-less socket write once the TCP buffers
// fill, pinning a MaxConns slot forever.
func (s *Server) armWriteDeadline(nc net.Conn) {
	if s.cfg.QueryTimeout > 0 {
		nc.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
	}
}

func (s *Server) writeError(conn *wire.Conn, msg string) error {
	return s.writeErrorCode(conn, msg, wire.ErrCodeGeneric)
}

func (s *Server) writeErrorCode(conn *wire.Conn, msg string, code uint64) error {
	if err := conn.WriteMessage(wire.MsgError, wire.AppendError(nil, msg, code)); err != nil {
		return err
	}
	return conn.Flush()
}

// errCodeOf classifies a statement error for the wire protocol, so typed
// engine errors stay typed on the far side of the connection.
func errCodeOf(err error) uint64 {
	if errors.Is(err, engine.ErrReadOnly) {
		return wire.ErrCodeReadOnly
	}
	return wire.ErrCodeGeneric
}

// runQuery executes one statement on the session and streams the result.
// Returned errors are connection-fatal I/O errors; statement errors travel
// to the client as wire errors.
func (s *Server) runQuery(conn *wire.Conn, sess *engine.Session, sqlText string, scratch *[]byte) error {
	s.queries.Add(1)
	res, err := s.execute(sess, sqlText)
	if err != nil {
		return s.writeErrorCode(conn, err.Error(), errCodeOf(err))
	}
	if err := s.writeResult(conn, res, scratch); err != nil {
		// An oversize row is rejected before any of its bytes hit the wire,
		// so the stream is still in sync: report it in-band (the client ends
		// the row stream with a ServerError) and keep the connection.
		if errors.Is(err, wire.ErrFrameTooLarge) {
			return s.writeError(conn, fmt.Sprintf("result row too large for the wire protocol: %v", err))
		}
		return err
	}
	return conn.Flush()
}

// execute runs the statement under the per-query timeout. The timeout is a
// session deadline polled by the executor alongside the standing kill-channel
// interrupt — no timer, goroutine, or channel is allocated per statement.
func (s *Server) execute(sess *engine.Session, sqlText string) (*engine.Result, error) {
	if s.cfg.QueryTimeout <= 0 {
		return sess.Execute(sqlText)
	}
	deadline := time.Now().Add(s.cfg.QueryTimeout)
	sess.SetDeadline(deadline)
	defer sess.SetDeadline(time.Time{})
	res, err := sess.Execute(sqlText)
	// Only a genuine interrupt unwind past the deadline is relabeled as a
	// timeout; a statement that failed for its own reasons keeps its error,
	// and a shutdown kill keeps the interrupt error (the connection is dying
	// anyway).
	if errors.Is(err, executor.ErrInterrupted) && !time.Now().Before(deadline) {
		return nil, fmt.Errorf("query canceled: exceeded the %s per-query timeout", s.cfg.QueryTimeout)
	}
	return res, err
}

// rowDescFor builds the wire column description from an engine result. The
// schema carries the column types and provenance flags; results that lack a
// schema entry (SHOW-style synthetic columns always have one, so this is
// purely defensive) fall back to untyped.
func rowDescFor(res *engine.Result) wire.RowDesc {
	n := len(res.Columns)
	desc := wire.RowDesc{
		Names:  res.Columns,
		Kinds:  make([]value.Kind, n),
		IsProv: make([]bool, n),
	}
	for i := 0; i < n && i < len(res.Schema); i++ {
		desc.Kinds[i] = res.Schema[i].Type
		desc.IsProv[i] = res.Schema[i].IsProv
	}
	return desc
}

// writeResult streams RowDesc + rows + Complete for res.
func (s *Server) writeResult(conn *wire.Conn, res *engine.Result, scratch *[]byte) error {
	// Encoded payloads build in *scratch and the grown buffer is stored back,
	// so one connection reuses a single buffer across rows and statements
	// (WriteMessage copies into the bufio writer before returning).
	if len(res.Columns) > 0 {
		*scratch = rowDescFor(res).Encode((*scratch)[:0])
		if err := conn.WriteMessage(wire.MsgRowDesc, *scratch); err != nil {
			return err
		}
		for _, row := range res.Rows {
			*scratch = wire.AppendRow((*scratch)[:0], row)
			if err := conn.WriteMessage(wire.MsgRow, *scratch); err != nil {
				return err
			}
		}
	}
	done := wire.Complete{
		Tag:      res.Tag,
		CacheHit: res.CacheHit,
		Parse:    int64(res.Timings.Parse),
		Analyze:  int64(res.Timings.Analyze),
		Rewrite:  int64(res.Timings.Rewrite),
		Plan:     int64(res.Timings.Plan),
		Execute:  int64(res.Timings.Execute),
	}
	*scratch = done.Encode((*scratch)[:0])
	return conn.WriteMessage(wire.MsgComplete, *scratch)
}

// runBackup streams a consistent snapshot without blocking queries: the
// storage layer captures a point-in-time image in microseconds and the gob
// encode happens against copy-on-write row snapshots.
func (s *Server) runBackup(conn *wire.Conn, nc net.Conn) error {
	w := &chunkWriter{conn: conn, refresh: func() { s.armWriteDeadline(nc) }}
	if err := s.db.Store().Save(w); err != nil {
		if w.writeErr != nil {
			return w.writeErr // connection gone
		}
		return s.writeError(conn, fmt.Sprintf("backup failed: %v", err))
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	if err := conn.WriteMessage(wire.MsgBackupDone, nil); err != nil {
		return err
	}
	return conn.Flush()
}

// chunkWriter frames an io.Writer stream into BackupChunk messages. refresh
// re-arms the write deadline before each chunk, so a backup is bounded by
// per-chunk progress rather than total duration — a large database streams
// for as long as the client keeps reading, while a stalled client still
// times out within one QueryTimeout.
type chunkWriter struct {
	conn     *wire.Conn
	refresh  func()
	buf      []byte
	writeErr error
}

const backupChunkSize = 256 << 10

// Write streams full chunks straight out of p (WriteMessage copies into the
// connection's buffer, so aliasing is safe) and only retains the sub-chunk
// remainder — constant extra memory and linear work however large the
// encoder's writes are.
func (w *chunkWriter) Write(p []byte) (int, error) {
	if w.writeErr != nil {
		return 0, w.writeErr
	}
	total := len(p)
	// Top up a buffered partial chunk first.
	if len(w.buf) > 0 {
		need := backupChunkSize - len(w.buf)
		if need > len(p) {
			need = len(p)
		}
		w.buf = append(w.buf, p[:need]...)
		p = p[need:]
		if len(w.buf) == backupChunkSize {
			if err := w.send(w.buf); err != nil {
				return 0, err
			}
			w.buf = w.buf[:0]
		}
	}
	for len(p) >= backupChunkSize {
		if err := w.send(p[:backupChunkSize]); err != nil {
			return 0, err
		}
		p = p[backupChunkSize:]
	}
	w.buf = append(w.buf, p...)
	return total, nil
}

func (w *chunkWriter) flushChunk() error {
	if w.writeErr != nil {
		return w.writeErr
	}
	if len(w.buf) == 0 {
		return nil
	}
	err := w.send(w.buf)
	w.buf = w.buf[:0]
	return err
}

func (w *chunkWriter) send(chunk []byte) error {
	w.refresh()
	if err := w.conn.WriteMessage(wire.MsgBackupChunk, chunk); err != nil {
		w.writeErr = err
		return err
	}
	// Flush per chunk so the deadline measures delivery progress, not just
	// filling the 32 KiB write buffer.
	if err := w.conn.Flush(); err != nil {
		w.writeErr = err
		return err
	}
	return nil
}

// --- replication subscriptions --------------------------------------------------

// Change batches stop accumulating past either bound, so one frame stays far
// below the wire size limit and a follower applies (and acknowledges via its
// next read) in small steps.
const (
	changeBatchMaxRecords  = 512
	changeBatchTargetBytes = 256 << 10
)

// subscribeRequest is a parsed MsgSubscribe payload.
type subscribeRequest struct {
	// after is the follower's applied LSN; the stream resumes past it.
	after uint64
	// force requests a bootstrap snapshot regardless of resumability.
	force bool
	// origin is the follower's history id (0 from followers predating it).
	origin uint64
	// resumeHash fingerprints the follower's record at `after` (0 when
	// unavailable — empty log, or restored from a snapshot file).
	resumeHash uint64
}

// serveSubscription streams this database's change feed: an optional
// bootstrap snapshot (when the follower's position precedes the retained log
// tail, or it asked to be re-seeded), then MsgSubLive, then change batches as
// mutations commit, with heartbeats carrying the current last LSN while the
// log is idle. The loop runs until the connection dies, the kill channel
// fires (forced shutdown) or the server begins shutting down — followers are
// expected to reconnect and resume from their applied LSN.
func (s *Server) serveSubscription(conn *wire.Conn, nc net.Conn, sub subscribeRequest, kill <-chan struct{}) error {
	// The store (and its log) are pinned for the stream's lifetime — the
	// snapshot, the origin check and the change stream must all describe one
	// store. If this server is itself a replica and re-bootstraps, the
	// database swaps in a new store and this log stops growing — detected
	// below so chained followers reconnect against the new history instead
	// of idling forever.
	store := s.db.Store()
	log := store.Log()
	after, force := sub.after, sub.force
	// A follower from a different history (it never restored one of OUR
	// snapshots — a rebuilt primary, a repointed -replica-of) must not
	// resume by LSN coincidence: its numbers count someone else's past.
	// Bootstrap it instead; Restore adopts this store's origin.
	if sub.origin != 0 && sub.origin != store.Origin() {
		force = true
	}
	needSnapshot := force || after > log.LastLSN()
	if !needSnapshot {
		if _, ok := log.Since(after, 1); !ok {
			needSnapshot = true // trimmed past the follower's position
		}
	}
	if !needSnapshot && sub.resumeHash != 0 && after > 0 {
		// Same-origin fork check: the follower's last applied record must BE
		// our record at that LSN. A primary restarted from an older snapshot
		// shares the origin but may have re-assigned these LSNs to different
		// changes; resuming would silently diverge (insert-only feeds never
		// trip the row-image match). Unverifiable positions (our record at
		// `after` already trimmed) resume on the LSN/origin checks alone.
		if recs, ok := log.Since(after-1, 1); ok && len(recs) == 1 && recs[0].LSN == after {
			if repl.RecordHash(recs[0]) != sub.resumeHash {
				s.logf("subscription resume hash mismatch at LSN %d: follower is on a forked timeline, re-seeding", after)
				needSnapshot = true
			}
		}
	}
	if needSnapshot {
		s.armWriteDeadline(nc)
		if err := conn.WriteMessage(wire.MsgSubSnapshot, nil); err != nil {
			return err
		}
		w := &chunkWriter{conn: conn, refresh: func() { s.armWriteDeadline(nc) }}
		lsn, err := store.SaveLSN(w)
		if err != nil {
			if w.writeErr != nil {
				return w.writeErr
			}
			return s.writeError(conn, fmt.Sprintf("bootstrap snapshot failed: %v", err))
		}
		if err := w.flushChunk(); err != nil {
			return err
		}
		after = lsn
	}
	s.armWriteDeadline(nc)
	// SubLive carries the stream's start LSN and this server's heartbeat
	// interval, so the follower can size its liveness read deadline to the
	// cadence it will actually observe instead of guessing.
	live := binary.AppendUvarint(nil, after)
	live = binary.AppendUvarint(live, uint64(s.cfg.heartbeat()))
	if err := conn.WriteMessage(wire.MsgSubLive, live); err != nil {
		return err
	}
	if err := conn.Flush(); err != nil {
		return err
	}
	nc.SetWriteDeadline(time.Time{})

	hb := time.NewTicker(s.cfg.heartbeat())
	defer hb.Stop()
	var frame, seg []byte
	for {
		if s.db.Store() != store {
			// The database re-bootstrapped under this stream (it is a
			// replica that took a fresh snapshot); the pinned log is dead.
			// Waits below always wake within a heartbeat, so this is seen
			// promptly.
			s.armWriteDeadline(nc)
			s.writeErrorCode(conn, "database was re-bootstrapped; re-subscribe", wire.ErrCodeLogTrimmed)
			return nil
		}
		// Take the growth signal BEFORE reading the tail, so an append that
		// lands between the two cannot be missed.
		grown := log.WaitCh()
		recs, ok := log.Since(after, changeBatchMaxRecords)
		if !ok {
			// The log outpaced this stream and trimmed past its position.
			// Say so with the typed code; the follower reconnects and
			// bootstraps from a fresh snapshot.
			s.armWriteDeadline(nc)
			s.writeErrorCode(conn,
				fmt.Sprintf("change log trimmed past LSN %d; re-subscribe for a snapshot", after),
				wire.ErrCodeLogTrimmed)
			return nil
		}
		if len(recs) == 0 {
			select {
			case <-grown:
			case <-hb.C:
				s.armWriteDeadline(nc)
				if err := conn.WriteMessage(wire.MsgHeartbeat, binary.AppendUvarint(frame[:0], log.LastLSN())); err != nil {
					return err
				}
				if err := conn.Flush(); err != nil {
					return err
				}
				nc.SetWriteDeadline(time.Time{})
			case <-kill:
				return nil
			case <-s.done:
				return nil
			}
			continue
		}
		for i := 0; i < len(recs); {
			n := 0
			seg = seg[:0]
			for i+n < len(recs) && n < changeBatchMaxRecords && len(seg) < changeBatchTargetBytes {
				seg = repl.AppendRecord(seg, recs[i+n])
				n++
			}
			frame = binary.AppendUvarint(frame[:0], uint64(n))
			frame = append(frame, seg...)
			s.armWriteDeadline(nc)
			if err := conn.WriteMessage(wire.MsgChanges, frame); err != nil {
				return err
			}
			i += n
		}
		if err := conn.Flush(); err != nil {
			return err
		}
		nc.SetWriteDeadline(time.Time{})
		after = recs[len(recs)-1].LSN
		// One outlier batch must not pin megabytes for the stream's lifetime.
		if cap(seg) > 1<<20 {
			seg, frame = nil, nil
		}
	}
}
