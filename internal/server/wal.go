package server

import (
	"perm/internal/engine"
	"perm/internal/wal"
)

// walController adapts a wal.Manager to engine.WALController, keeping the
// engine free of a dependency on the wal package (the engine sees only its
// own interface; the server, which owns both, bridges them).
type walController struct{ m *wal.Manager }

// WALController wraps the manager for engine.DB.SetWALController.
func WALController(m *wal.Manager) engine.WALController {
	return walController{m: m}
}

func (c walController) SetSyncPolicy(policy string) error {
	return c.m.SetSyncPolicy(policy)
}

func (c walController) WALStatus() engine.WALStatus {
	st := c.m.Status()
	return engine.WALStatus{
		Mode:          st.Mode,
		LastLSN:       st.LastLSN,
		DurableLSN:    st.DurableLSN,
		CheckpointLSN: st.CheckpointLSN,
		Checkpoints:   st.Checkpoints,
		Segments:      st.Segments,
		WALBytes:      st.WALBytes,
		Err:           st.Err,
	}
}
