package server

import (
	"fmt"
	"testing"

	"perm/internal/engine"
	"perm/internal/wal"
	"perm/internal/workload"
)

// openWALDB opens (or recovers) a WAL-backed database in dir, registering
// cleanup of the manager with t.
func openWALDB(t *testing.T, dir, sync string) (*engine.DB, *wal.Manager, wal.Recovery) {
	t.Helper()
	store, mgr, rec, err := wal.Open(dir, wal.Options{Sync: sync})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	return engine.NewDBFrom(store), mgr, rec
}

// TestWALReplayEqualsReplicationFeed is the cross-subsystem differential:
// the WAL and the replication stream journal the same logical change feed,
// so a crash-recovered primary and a live replica that consumed the feed
// over the wire must answer the whole query battery byte-identically.
func TestWALReplayEqualsReplicationFeed(t *testing.T) {
	dir := t.TempDir()
	primary, mgr, _ := openWALDB(t, dir, "group(1)")
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	defer f.Stop()
	waitCaughtUp(t, primary, f)

	// More traffic while the follower streams, so the feed has a live tail
	// past the bootstrap snapshot.
	s := primary.NewSession()
	mustExec(t, s, `INSERT INTO messages VALUES (77, 'durable hello', 1)`)
	mustExec(t, s, `UPDATE messages SET text = 'edited' WHERE mId = 2`)
	mustExec(t, s, `DELETE FROM imports WHERE mId = 3`)
	mustExec(t, s, `CREATE VIEW walv AS SELECT mId FROM messages WHERE uId = 1`)
	s.Close()
	waitCaughtUp(t, primary, f)
	f.Stop()

	// Crash-equivalent restart of the primary: close the WAL (no final
	// checkpoint — Close never checkpoints) and recover the directory.
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, mgr2, rec := openWALDB(t, dir, "always")
	defer mgr2.Close()
	if rec.LastLSN != primary.Store().Log().LastLSN() {
		t.Fatalf("recovered to LSN %d, primary was at %d", rec.LastLSN, primary.Store().Log().LastLSN())
	}
	queries := append([]string{}, replicationSuite...)
	queries = append(queries, `SELECT * FROM walv ORDER BY mId`)
	assertIdentical(t, recovered, replica, queries)
}

// TestReplicaWALRestartResumesLocally proves replica durability: a replica
// that journals its applied feed to its own WAL restarts from local disk and
// resumes the stream incrementally — zero new bootstrap snapshots — then
// stays byte-identical through further primary writes.
func TestReplicaWALRestartResumesLocally(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	// First replica life: fresh directory, bootstrap over the wire, journal
	// everything applied.
	dir := t.TempDir()
	replica, mgr, _ := openWALDB(t, dir, "always")
	fcfg := fastFollower(addr)
	fcfg.PrepareStore = mgr.AdoptStore
	f := StartFollower(replica, fcfg)
	appendTraffic(t, primary, 200, 5)
	waitCaughtUp(t, primary, f)
	if f.Snapshots() != 1 {
		t.Fatalf("fresh replica took %d bootstrap snapshots, want 1", f.Snapshots())
	}
	f.Stop()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Primary keeps writing while the replica is down.
	appendTraffic(t, primary, 300, 5)

	// Second life: recover from the local WAL, reconnect, resume.
	replica2, mgr2, rec := openWALDB(t, dir, "always")
	defer mgr2.Close()
	if rec.Replayed == 0 && rec.SnapshotLSN == 0 {
		t.Fatalf("replica restart recovered nothing: %s", rec)
	}
	fcfg2 := fastFollower(addr)
	fcfg2.PrepareStore = mgr2.AdoptStore
	f2 := StartFollower(replica2, fcfg2)
	defer f2.Stop()
	waitCaughtUp(t, primary, f2)
	if f2.Snapshots() != 0 {
		t.Fatalf("durable replica re-bootstrapped (%d snapshots), want incremental resume", f2.Snapshots())
	}

	// And it keeps following live traffic after the restart.
	appendTraffic(t, primary, 400, 3)
	waitCaughtUp(t, primary, f2)
	assertIdentical(t, primary, replica2, replicationSuite)
}

func mustExec(t *testing.T, s *engine.Session, q string) {
	t.Helper()
	if _, err := s.Execute(q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

// appendTraffic inserts n fresh messages starting at id base.
func appendTraffic(t *testing.T, db *engine.DB, base, n int) {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	for i := 0; i < n; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO messages VALUES (%d, 'traffic %d', 1)`, base+i, base+i))
	}
}
