package server

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"perm/internal/engine"
	"perm/internal/value"
	"perm/internal/wire"
	"perm/internal/workload"
)

// replCfg is a server config with fast heartbeats so tests observe liveness
// without waiting wall-clock seconds.
func replCfg() Config {
	return Config{HeartbeatInterval: 20 * time.Millisecond}
}

func fastFollower(addr string) FollowerConfig {
	return FollowerConfig{
		PrimaryAddr: addr,
		ReadTimeout: 2 * time.Second,
		RetryMin:    10 * time.Millisecond,
		RetryMax:    200 * time.Millisecond,
	}
}

// waitCaughtUp blocks until the replica's applied LSN reaches the primary's
// current last LSN (lag 0 as of the call, at least).
func waitCaughtUp(t *testing.T, primary *engine.DB, f *Follower) {
	t.Helper()
	target := primary.Store().Log().LastLSN()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Status()
		if st.AppliedLSN >= target {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, primary at %d (connected=%v lastErr=%q)",
				st.AppliedLSN, target, st.Connected, st.LastError)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// replicationSuite is the query battery both sides must answer identically:
// plain SQL, provenance with its rewrite strategies (aggregation, set
// operations, DISTINCT, nested subqueries), views, and EXPLAIN-adjacent
// SHOW output is excluded (it is node-local by design).
var replicationSuite = []string{
	`SELECT mId, text, uId FROM messages ORDER BY mId`,
	`SELECT * FROM v1 ORDER BY mId, text`,
	`SELECT PROVENANCE mId, text FROM messages`,
	`SELECT PROVENANCE name FROM users u, messages m WHERE u.uId = m.uId ORDER BY name`,
	`SELECT PROVENANCE count(*) FROM messages`,
	`SELECT PROVENANCE uId, count(*) FROM approved GROUP BY uId ORDER BY uId`,
	`SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports ORDER BY mId, text`,
	`SELECT PROVENANCE DISTINCT text FROM (SELECT text FROM messages UNION ALL SELECT text FROM imports) sub ORDER BY text`,
	`SELECT PROVENANCE mId FROM messages WHERE mId > ANY (SELECT mId FROM approved) ORDER BY mId`,
	`SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) mId, text FROM messages`,
	`SELECT PROVENANCE * FROM v1 ORDER BY mId, text`,
	`SELECT m.mId, a.uId FROM messages m LEFT OUTER JOIN approved a ON m.mId = a.mId ORDER BY m.mId, a.uId`,
}

// renderResult flattens a result to a byte-comparable string: column names,
// provenance flags, types, and every row value in order.
func renderResult(res *engine.Result) string {
	var b strings.Builder
	for i, c := range res.Columns {
		fmt.Fprintf(&b, "%s|", c)
		if i < len(res.Schema) {
			fmt.Fprintf(&b, "%s|%v|", res.Schema[i].Type, res.Schema[i].IsProv)
		}
	}
	b.WriteString("\n")
	for _, row := range res.Rows {
		for _, v := range row {
			b.WriteString(v.SQLLiteral())
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// assertIdentical runs the suite on both databases and compares the rendered
// results byte for byte.
func assertIdentical(t *testing.T, primary, replica *engine.DB, queries []string) {
	t.Helper()
	ps, rs := primary.NewSession(), replica.NewSession()
	defer ps.Close()
	defer rs.Close()
	for _, q := range queries {
		pres, perr := ps.Execute(q)
		rres, rerr := rs.Execute(q)
		if perr != nil || rerr != nil {
			t.Fatalf("query %q: primary err %v, replica err %v", q, perr, rerr)
		}
		if p, r := renderResult(pres), renderResult(rres); p != r {
			t.Fatalf("query %q diverged:\nprimary:\n%s\nreplica:\n%s", q, p, r)
		}
	}
}

func TestReplicaBootstrapAndLiveChanges(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	defer f.Stop()
	waitCaughtUp(t, primary, f)
	if f.Snapshots() != 1 {
		t.Fatalf("bootstrap used %d snapshots, want 1", f.Snapshots())
	}
	assertIdentical(t, primary, replica, replicationSuite)

	// Live changes: every DML shape, view DDL and ANALYZE flow through.
	ps := primary.NewSession()
	defer ps.Close()
	for _, stmt := range []string{
		`INSERT INTO messages VALUES (5, 'fresh ...', 1)`,
		`UPDATE users SET name = 'Bertha' WHERE uId = 1`,
		`DELETE FROM approved WHERE mId = 2`,
		`CREATE VIEW recent AS SELECT mId FROM messages WHERE mId > 2`,
		`CREATE TABLE tags (mId int, tag text)`,
		`INSERT INTO tags SELECT mId, 'hot' FROM messages WHERE mId >= 4`,
		`ANALYZE`,
	} {
		if _, err := ps.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	waitCaughtUp(t, primary, f)
	assertIdentical(t, primary, replica, append(replicationSuite,
		`SELECT * FROM recent ORDER BY mId`,
		`SELECT PROVENANCE mId, tag FROM tags ORDER BY mId`,
	))

	// Replication status reads correctly on both sides.
	st := f.Status()
	if st.Role != "replica" || !st.Connected || st.Lag() != 0 {
		t.Fatalf("replica status = %+v", st)
	}
	if ps := primary.ReplicationStatus(); ps.Role != "primary" || ps.Lag() != 0 {
		t.Fatalf("primary status = %+v", ps)
	}
	res, err := replica.NewSession().Execute(`SHOW replication_status`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "role" || res.Rows[0][0].Str() != "replica" {
		t.Fatalf("SHOW replication_status = %v / %v", res.Columns, res.Rows)
	}
}

func TestReplicaRejectsWritesTyped(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	defer f.Stop()
	waitCaughtUp(t, primary, f)

	// Embedded sessions get the typed engine error.
	rs := replica.NewSession()
	defer rs.Close()
	for _, stmt := range []string{
		`INSERT INTO messages VALUES (9, 'x', 1)`,
		`UPDATE messages SET text = 'x'`,
		`DELETE FROM messages`,
		`CREATE TABLE nope (i int)`,
		`DROP TABLE messages`,
		`CREATE VIEW nope AS SELECT 1`,
		`ANALYZE`,
	} {
		_, err := rs.Execute(stmt)
		if !errors.Is(err, engine.ErrReadOnly) {
			t.Fatalf("%s on replica: err = %v, want ErrReadOnly", stmt, err)
		}
	}
	// Reads — including provenance and SHOW — still work.
	if _, err := rs.Execute(`SELECT PROVENANCE mId FROM messages`); err != nil {
		t.Fatalf("read on replica: %v", err)
	}

	// Over the wire the error carries the read-only code.
	raddr, rshutdown := startServer(t, replica, replCfg())
	defer rshutdown()
	c, err := wire.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(`INSERT INTO messages VALUES (9, 'x', 1)`)
	var serr *wire.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.ErrCodeReadOnly {
		t.Fatalf("remote write to replica: err = %v (code?)", err)
	}
	if rows, err := c.Query(`SELECT count(*) FROM messages`); err != nil {
		t.Fatalf("remote read from replica: %v", err)
	} else if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaCatchupUnderConcurrentWrites races a follower (including its
// initial snapshot bootstrap) against concurrent DML and DDL writers, then
// verifies convergence. Run with -race this also exercises the log/gate
// locking.
func TestReplicaCatchupUnderConcurrentWrites(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := primary.NewSession()
			defer s.Close()
			table := fmt.Sprintf("load%d", w)
			if _, err := s.Execute(fmt.Sprintf(`CREATE TABLE %s (i int, s text)`, table)); err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				stmts := []string{
					fmt.Sprintf(`INSERT INTO %s VALUES (%d, 'w%d-%d')`, table, i, w, i),
					fmt.Sprintf(`UPDATE %s SET s = 'u%d' WHERE i = %d`, table, i, i/2),
					fmt.Sprintf(`DELETE FROM %s WHERE i < %d`, table, i-40),
				}
				if i%25 == 24 {
					stmts = append(stmts,
						fmt.Sprintf(`CREATE VIEW vw%d_%d AS SELECT i FROM %s WHERE i > %d`, w, i, table, i/2),
						fmt.Sprintf(`DROP VIEW vw%d_%d`, w, i),
						`ANALYZE`)
				}
				for _, stmt := range stmts {
					if _, err := s.Execute(stmt); err != nil {
						t.Errorf("writer %d %q: %v", w, stmt, err)
						return
					}
				}
			}
		}(w)
	}

	// Let the writers get going, then attach the follower mid-stream.
	time.Sleep(20 * time.Millisecond)
	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	defer f.Stop()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	waitCaughtUp(t, primary, f)

	queries := []string{`SELECT mId FROM messages ORDER BY mId`}
	for w := 0; w < 3; w++ {
		queries = append(queries,
			fmt.Sprintf(`SELECT i, s FROM load%d`, w),
			fmt.Sprintf(`SELECT PROVENANCE count(*) FROM load%d`, w))
	}
	assertIdentical(t, primary, replica, queries)
}

// TestReplicaRestartResume saves a replica to a snapshot, "restarts" it into
// a fresh database, and verifies the new follower resumes from its restored
// LSN without a second bootstrap snapshot while the primary still retains
// the log tail.
func TestReplicaRestartResume(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	waitCaughtUp(t, primary, f)
	f.Stop()

	// The replica's state survives as a snapshot (permserver -save).
	var saved bytes.Buffer
	if err := replica.Store().Save(&saved); err != nil {
		t.Fatal(err)
	}
	restartLSN := replica.Store().Log().LastLSN()

	// The primary moves on while the replica is down.
	ps := primary.NewSession()
	defer ps.Close()
	for i := 0; i < 10; i++ {
		if _, err := ps.Execute(fmt.Sprintf(`INSERT INTO messages VALUES (%d, 'later', 1)`, 100+i)); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: restore the snapshot (permserver -open) and follow again.
	restarted := engine.NewDB()
	if err := restarted.Store().Restore(bytes.NewReader(saved.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := restarted.Store().Log().LastLSN(); got != restartLSN {
		t.Fatalf("restored log position %d, want %d", got, restartLSN)
	}
	f2 := StartFollower(restarted, fastFollower(addr))
	defer f2.Stop()
	waitCaughtUp(t, primary, f2)
	if f2.Snapshots() != 0 {
		t.Fatalf("resumed follower took %d snapshots, want 0 (incremental catch-up)", f2.Snapshots())
	}
	assertIdentical(t, primary, restarted, replicationSuite)
}

// TestReplicaResnapshotAfterLogTrim forces the primary to trim its change
// log past a stopped replica's position; on reconnect the follower must fall
// back to a fresh bootstrap snapshot and still converge.
func TestReplicaResnapshotAfterLogTrim(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	primary.Store().Log().SetRetention(8)
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	waitCaughtUp(t, primary, f)
	f.Stop()

	ps := primary.NewSession()
	defer ps.Close()
	for i := 0; i < 30; i++ { // far beyond the retained 8 records
		if _, err := ps.Execute(fmt.Sprintf(`INSERT INTO users VALUES (%d, 'u%d')`, 100+i, i)); err != nil {
			t.Fatal(err)
		}
	}

	f2 := StartFollower(replica, fastFollower(addr))
	defer f2.Stop()
	waitCaughtUp(t, primary, f2)
	if f2.Snapshots() != 1 {
		t.Fatalf("trim-lagged follower took %d snapshots, want 1", f2.Snapshots())
	}
	assertIdentical(t, primary, replica, replicationSuite)
}

// TestChainedReplication replicates a replica: LSNs are global, so a
// follower can subscribe to another follower's server.
func TestChainedReplication(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()

	mid := engine.NewDB()
	f1 := StartFollower(mid, fastFollower(addr))
	defer f1.Stop()
	midAddr, midShutdown := startServer(t, mid, replCfg())
	defer midShutdown()

	leaf := engine.NewDB()
	f2 := StartFollower(leaf, fastFollower(midAddr))
	defer f2.Stop()

	ps := primary.NewSession()
	defer ps.Close()
	if _, err := ps.Execute(`INSERT INTO messages VALUES (7, 'chained', 2)`); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, f1)
	waitCaughtUp(t, primary, f2)
	assertIdentical(t, primary, leaf, replicationSuite)
}

// TestSnapshotLSNConsistency hammers a table while snapshots stream, and
// checks every snapshot's LSN agrees exactly with its data: restoring it and
// replaying the primary's log from that LSN reproduces the primary.
func TestSnapshotLSNConsistency(t *testing.T) {
	db := engine.NewDB()
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`CREATE TABLE n (i int)`); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := db.NewSession()
		defer w.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Execute(fmt.Sprintf(`INSERT INTO n VALUES (%d)`, i)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	for k := 0; k < 20; k++ {
		var buf bytes.Buffer
		lsn, err := db.Store().SaveLSN(&buf)
		if err != nil {
			t.Fatal(err)
		}
		restored := engine.NewDB()
		if err := restored.Store().Restore(&buf); err != nil {
			t.Fatal(err)
		}
		if got := restored.Store().Log().LastLSN(); got != lsn {
			t.Fatalf("snapshot %d: restored LSN %d, want %d", k, got, lsn)
		}
		// The snapshot at LSN n must contain exactly the inserts of records
		// 2..n (record 1 is CREATE TABLE): row count == n-1.
		rs := restored.NewSession()
		res, err := rs.Execute(`SELECT count(*) FROM n`)
		if err != nil {
			t.Fatal(err)
		}
		rs.Close()
		if got := res.Rows[0][0].Int(); got != int64(lsn)-1 {
			t.Fatalf("snapshot at LSN %d has %d rows, want %d", lsn, got, lsn-1)
		}
	}
	close(stop)
	wg.Wait()
}

func TestValueRowKeyRoundTrip(t *testing.T) {
	// Row-image matching on replicas depends on Row.Key being injective
	// across kinds and content; spot-check the shapes replication moves.
	a := value.Row{value.NewInt(1), value.NewString("x"), value.Null}
	b := value.Row{value.NewInt(1), value.NewString("x"), value.NewString("")}
	if a.Key() == b.Key() {
		t.Fatal("NULL and empty string collide in row keys")
	}
	// Numeric kinds normalize in value keys (SQL grouping equality); that
	// cannot confuse row-image matching because every stored column has a
	// fixed kind — checkRow coerces on the primary before the image is
	// logged, so a replica never compares an int against a float within one
	// column.
	c := value.Row{value.NewInt(2), value.NewString("x"), value.Null}
	if a.Key() == c.Key() {
		t.Fatal("distinct ints collide in row keys")
	}
}

// TestReplicaOriginMismatchForcesSnapshot: a replica of history A pointed at
// an unrelated primary B whose LSNs reach at least as far must NOT resume by
// LSN coincidence — the origin check forces a bootstrap from B's snapshot.
func TestReplicaOriginMismatchForcesSnapshot(t *testing.T) {
	primaryA := engine.NewDB()
	if err := workload.LoadPaperExample(primaryA); err != nil {
		t.Fatal(err)
	}
	addrA, shutdownA := startServer(t, primaryA, replCfg())

	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addrA))
	waitCaughtUp(t, primaryA, f)
	f.Stop()
	shutdownA()
	replicaLSN := replica.Store().Log().LastLSN()

	// An unrelated primary with a different history whose log happens to
	// reach past the replica's position.
	primaryB := engine.NewDB()
	sb := primaryB.NewSession()
	defer sb.Close()
	if _, err := sb.Execute(`CREATE TABLE other (i int)`); err != nil {
		t.Fatal(err)
	}
	for primaryB.Store().Log().LastLSN() < replicaLSN+5 {
		if _, err := sb.Execute(`INSERT INTO other VALUES (1)`); err != nil {
			t.Fatal(err)
		}
	}
	if primaryA.Store().Origin() == primaryB.Store().Origin() {
		t.Fatal("two fresh databases share an origin")
	}
	addrB, shutdownB := startServer(t, primaryB, replCfg())
	defer shutdownB()

	f2 := StartFollower(replica, fastFollower(addrB))
	defer f2.Stop()
	waitCaughtUp(t, primaryB, f2)
	if f2.Snapshots() != 1 {
		t.Fatalf("origin-mismatched follower took %d snapshots, want 1", f2.Snapshots())
	}
	if got, want := replica.Store().Origin(), primaryB.Store().Origin(); got != want {
		t.Fatalf("replica origin %x after re-bootstrap, want %x", got, want)
	}
	assertIdentical(t, primaryB, replica, []string{`SELECT count(*) FROM other`})
}

// TestFollowerAdoptsHeartbeatInterval: a primary heartbeating slower than
// the follower's configured read timeout must not flap the connection — the
// follower stretches its liveness deadline to the cadence MsgSubLive
// reports.
func TestFollowerAdoptsHeartbeatInterval(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	cfg := replCfg()
	cfg.HeartbeatInterval = 250 * time.Millisecond
	addr, shutdown := startServer(t, primary, cfg)
	defer shutdown()

	fcfg := fastFollower(addr)
	fcfg.ReadTimeout = 100 * time.Millisecond // shorter than one heartbeat
	replica := engine.NewDB()
	f := StartFollower(replica, fcfg)
	defer f.Stop()
	waitCaughtUp(t, primary, f)

	// Idle across several heartbeat periods: without the adopted interval
	// the 100ms deadline would disconnect (and surface a LastError) long
	// before the first 250ms heartbeat arrives.
	time.Sleep(800 * time.Millisecond)
	st := f.Status()
	if !st.Connected || st.LastError != "" {
		t.Fatalf("follower flapped on a slow-heartbeat primary: %+v", st)
	}
	if f.Snapshots() != 1 {
		t.Fatalf("follower re-bootstrapped %d times", f.Snapshots())
	}
}

// TestReplicaTimelineForkForcesSnapshot: a primary restarted from an OLDER
// snapshot keeps its origin but re-assigns LSNs to different changes; a
// replica that was ahead must detect the fork via the resume-record hash and
// re-bootstrap instead of silently resuming a divergent history.
func TestReplicaTimelineForkForcesSnapshot(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	// Snapshot the primary early (the "old backup").
	var backup bytes.Buffer
	if err := primary.Store().Save(&backup); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())

	// The follower attaches BEFORE the pre-fork writes: the fork check
	// fingerprints the last record the replica applied from the stream, so
	// it protects exactly the replicas that have streamed since their last
	// bootstrap (a replica bootstrapped at the fork point itself has an
	// empty log and resumes on the LSN/origin checks alone).
	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	waitCaughtUp(t, primary, f)

	ps := primary.NewSession()
	for i := 0; i < 10; i++ {
		if _, err := ps.Execute(fmt.Sprintf(`INSERT INTO users VALUES (%d, 'pre-fork')`, 200+i)); err != nil {
			t.Fatal(err)
		}
	}
	ps.Close()
	waitCaughtUp(t, primary, f)
	f.Stop()
	shutdown()
	replicaLSN := replica.Store().Log().LastLSN()
	if oldest := replica.Store().Log().OldestLSN(); oldest == 0 || oldest > replicaLSN {
		t.Fatalf("test setup: replica log must retain its streamed tail (oldest %d)", oldest)
	}

	// "Restart" the primary from the old backup — same origin, forked
	// timeline — and write insert-only changes past the replica's LSN.
	reborn := engine.NewDB()
	if err := reborn.Store().Restore(bytes.NewReader(backup.Bytes())); err != nil {
		t.Fatal(err)
	}
	if reborn.Store().Origin() != replica.Store().Origin() {
		t.Fatal("restore should preserve the origin")
	}
	rs := reborn.NewSession()
	defer rs.Close()
	for reborn.Store().Log().LastLSN() < replicaLSN+5 {
		if _, err := rs.Execute(`INSERT INTO users VALUES (999, 'post-fork')`); err != nil {
			t.Fatal(err)
		}
	}
	addr2, shutdown2 := startServer(t, reborn, replCfg())
	defer shutdown2()

	f2 := StartFollower(replica, fastFollower(addr2))
	defer f2.Stop()
	waitCaughtUp(t, reborn, f2)
	if f2.Snapshots() != 1 {
		t.Fatalf("forked-timeline follower took %d snapshots, want 1", f2.Snapshots())
	}
	assertIdentical(t, reborn, replica, append(replicationSuite,
		`SELECT count(*) FROM users WHERE name = 'post-fork'`,
		`SELECT count(*) FROM users WHERE name = 'pre-fork'`, // must be 0: old timeline discarded
	))
}

// TestReplicaStatsTrackDML: the replica's catalog row counts follow applied
// DML like the primary's engine does, without waiting for an ANALYZE — the
// cost-based planner must see the same cardinalities on both sides.
func TestReplicaStatsTrackDML(t *testing.T) {
	primary := engine.NewDB()
	if err := workload.LoadPaperExample(primary); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, primary, replCfg())
	defer shutdown()
	replica := engine.NewDB()
	f := StartFollower(replica, fastFollower(addr))
	defer f.Stop()
	waitCaughtUp(t, primary, f)

	ps := primary.NewSession()
	defer ps.Close()
	for i := 0; i < 20; i++ {
		if _, err := ps.Execute(fmt.Sprintf(`INSERT INTO approved VALUES (%d, %d)`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ps.Execute(`DELETE FROM approved WHERE uId < 5`); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, f)
	p := primary.Catalog().TableStats("approved").RowCount
	r := replica.Catalog().TableStats("approved").RowCount
	if p != r {
		t.Fatalf("row-count stats diverged without ANALYZE: primary %d, replica %d", p, r)
	}
	if live := replica.Store().Table("approved").RowCount(); live != r {
		t.Fatalf("replica stats %d don't match its heap %d", r, live)
	}
}
