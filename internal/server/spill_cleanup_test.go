package server

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"perm/internal/wire"
)

// Interrupt-safety of spill files: a query that has spilled to disk must
// leave zero temp files behind however it ends — per-query timeout, abrupt
// client disconnect mid-spill, or a server shutdown with an open spilling
// cursor — while keeping the existing typed error codes. All three run under
// the race detector in CI.

// spillCleanupCfg forces every blocking operator to spill into a private,
// assertable temp dir.
func spillCleanupCfg(t *testing.T, extra Config) (Config, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := extra
	cfg.WorkMem = 4096
	cfg.TempDir = dir
	return cfg, dir
}

// waitEmptyDir polls dir down to zero entries.
func waitEmptyDir(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read temp dir: %v", err)
		}
		if len(ents) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d spill files still in %s after 5s (first: %s)", len(ents), dir, ents[0].Name())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// spillingSortQuery is a cross-join ORDER BY whose input dwarfs the 4 KiB
// budget — the executor is guaranteed to be spilling runs and merging them
// for as long as the query lives.
const spillingSortQuery = `SELECT b1.s, b2.i FROM big b1, big b2 ORDER BY b1.s DESC, b2.i`

// TestSpillTimeoutMidQuery runs a large spilling sort under a short
// per-query timeout: the statement must fail with the typed timeout code and
// every spill file must be gone.
func TestSpillTimeoutMidQuery(t *testing.T) {
	db := bigDB(t, 400) // 160k-row cross join: far beyond 50ms
	cfg, dir := spillCleanupCfg(t, Config{QueryTimeout: 50 * time.Millisecond})
	addr, srv, shutdown := startServerSrv(t, db, cfg)
	defer shutdown()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows, err := c.Query(spillingSortQuery)
	for err == nil {
		// Drain until the (in-band or immediate) error surfaces.
		row, rerr := rows.Next()
		if rerr != nil {
			err = rerr
			break
		}
		if row == nil {
			break
		}
	}
	var serr *wire.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.ErrCodeTimeout {
		t.Fatalf("spilling query past deadline: err=%v, want typed timeout", err)
	}
	waitEmptyDir(t, dir)
	if n := srv.ActivePortals(); n != 0 {
		t.Fatalf("portals leaked: %d", n)
	}
	// The connection survives the statement error.
	if _, err := c.Exec(`SELECT 1`); err != nil {
		t.Fatalf("connection unusable after spill timeout: %v", err)
	}
}

// TestSpillDisconnectMidStream kills the TCP connection while a cursor is
// suspended over a spilling sort (its runs live on disk): the server must
// free the portal, close the session, and delete every spill file.
func TestSpillDisconnectMidStream(t *testing.T) {
	db := bigDB(t, 120)
	cfg, dir := spillCleanupCfg(t, Config{CursorBatchRows: 8})
	addr, srv, shutdown := startServerSrv(t, db, cfg)
	defer shutdown()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	if _, err := wire.Handshake(conn, "spill-test"); err != nil {
		t.Fatal(err)
	}
	req := wire.Execute{SQL: spillingSortQuery, FetchSize: 10}
	if err := conn.WriteMessage(wire.MsgExecute, req.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		typ, _, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if typ == wire.MsgSuspended {
			break
		}
		if typ != wire.MsgRowDesc && typ != wire.MsgRowBatch {
			t.Fatalf("unexpected frame %q", typ)
		}
	}
	// The cursor is parked mid-merge: its spill files must exist right now…
	if ents, _ := os.ReadDir(dir); len(ents) == 0 {
		t.Fatalf("expected live spill files under a suspended spilling cursor")
	}
	// …then the client vanishes without a goodbye.
	nc.Close()
	waitZero(t, "portals", srv.ActivePortals)
	waitZero(t, "sessions", db.ActiveSessions)
	waitEmptyDir(t, dir)
}

// TestSpillShutdownWithOpenCursor force-shuts the server down while a
// spilling cursor is suspended: the kill path must interrupt the query,
// close the session, and delete every spill file.
func TestSpillShutdownWithOpenCursor(t *testing.T) {
	db := bigDB(t, 120)
	cfg, dir := spillCleanupCfg(t, Config{CursorBatchRows: 8})
	addr, srv, _ := startServerSrv(t, db, cfg)

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur, err := c.Execute("", spillingSortQuery, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) == 0 {
		t.Fatalf("expected live spill files under an open spilling cursor")
	}

	// An already-expired context: drain nothing, kill immediately — the
	// existing typed contract for a forced shutdown.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown = %v, want context.Canceled", err)
	}
	waitZero(t, "portals", srv.ActivePortals)
	waitZero(t, "sessions", db.ActiveSessions)
	waitEmptyDir(t, dir)
}
