package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"perm/internal/engine"
	"perm/internal/metrics"
	"perm/internal/repl"
	"perm/internal/storage"
	"perm/internal/wire"
)

// FollowerConfig tunes a replication follower. Only PrimaryAddr is required.
type FollowerConfig struct {
	// PrimaryAddr is the primary permserver's host:port.
	PrimaryAddr string
	// DialTimeout bounds the TCP connect plus handshake; default 5s.
	DialTimeout time.Duration
	// ReadTimeout bounds each read from the stream. The primary heartbeats
	// every Config.HeartbeatInterval while idle, so this is the failure
	// detector: default 15s, and it should stay a comfortable multiple of
	// the primary's heartbeat. Bootstrap snapshot chunks get the same
	// per-read budget.
	ReadTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff; defaults 200ms / 5s.
	RetryMin time.Duration
	RetryMax time.Duration
	// PrepareStore, when set, is called with the freshly restored bootstrap
	// store before it is swapped in — the WAL manager hooks in here
	// (Manager.AdoptStore) so a durable replica journals the feed it
	// applies and restarts from local disk instead of re-bootstrapping.
	PrepareStore func(*storage.Store) error
	// ObserveEpoch, when set, is called with every cluster epoch the stream
	// reports that is higher than the local one, BEFORE the follower adopts
	// it — a cluster harness persists the epoch here so a restart cannot
	// forget that an old primary was fenced. When nil the epoch is adopted
	// in memory only.
	ObserveEpoch func(epoch uint64)
	// Logf, when set, receives connection lifecycle and error logs.
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 200 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
}

// Follower turns a database into a read-scaling replica: it subscribes to a
// primary's change feed and applies it to local storage, reconnecting with
// backoff and resuming from its last applied LSN (the local change log's
// position, so resumption survives a snapshot-file restart too). While a
// follower runs, the database is read-only for sessions — SELECT, provenance
// queries, EXPLAIN and SHOW work; DML/DDL fail with engine.ErrReadOnly.
//
// Divergence (a change record whose row images don't match local data) is
// handled by re-bootstrapping: the follower reconnects asking for a fresh
// snapshot, restores it into a new store off to the side, and swaps it in
// atomically — read sessions serve the old, complete state until the swap,
// never a half-restored one. The same happens when the primary has trimmed
// its change log past the follower's position, or when the follower's
// history origin doesn't match the primary's.
type Follower struct {
	db  *engine.DB
	cfg FollowerConfig

	mu         sync.Mutex
	connected  bool
	lastErr    string
	primaryLSN uint64
	snapshots  int
	resync     bool
	progress   time.Time // last applied batch or caught-up heartbeat
	nc         net.Conn  // current connection, closed by Stop

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// StartFollower marks db read-only, installs the replication status
// provider, and starts following the primary. Call Stop to detach (the
// database stays read-only at whatever LSN it reached).
func StartFollower(db *engine.DB, cfg FollowerConfig) *Follower {
	cfg.fill()
	f := &Follower{
		db:   db,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	db.SetReadOnly(true)
	db.SetReplStatusFunc(f.Status)
	// Scrape-time staleness, mirroring SHOW replication_status. GaugeFunc
	// re-registration is latest-wins, so in a multi-follower process the
	// newest follower owns the series.
	metrics.Default.GaugeFunc("perm_repl_staleness_ms",
		"Milliseconds since this replica last proved itself current",
		func() int64 { return f.Status().Staleness.Milliseconds() })
	go f.loop()
	return f
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Stop terminates the follower and waits for its goroutine to exit.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	if f.nc != nil {
		f.nc.Close()
	}
	f.mu.Unlock()
	<-f.done
}

// Status reports the follower's replication state (the provider behind
// SHOW replication_status on this database).
func (f *Follower) Status() engine.ReplStatus {
	applied := f.db.Store().Log().LastLSN()
	f.mu.Lock()
	defer f.mu.Unlock()
	primary := f.primaryLSN
	if primary < applied {
		primary = applied
	}
	var staleness time.Duration
	if !f.progress.IsZero() {
		staleness = time.Since(f.progress)
	}
	return engine.ReplStatus{
		Role:       "replica",
		Connected:  f.connected,
		AppliedLSN: applied,
		PrimaryLSN: primary,
		Epoch:      f.db.Epoch(),
		Staleness:  staleness,
		LastError:  f.lastErr,
	}
}

// Snapshots reports how many bootstrap snapshots this follower has consumed
// (tests assert a resumed follower did NOT need one).
func (f *Follower) Snapshots() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshots
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

// loop reconnects forever with capped exponential backoff.
func (f *Follower) loop() {
	defer close(f.done)
	backoff := f.cfg.RetryMin
	for {
		started := time.Now()
		err := f.streamOnce()
		f.setDisconnected(err)
		if f.stopped() {
			return
		}
		if err != nil {
			f.logf("replication stream from %s: %v", f.cfg.PrimaryAddr, err)
			mReplReconnects.Inc()
		}
		// A stream that ran for a while earned a fresh backoff; only rapid
		// failures escalate it.
		if time.Since(started) > 10*f.cfg.RetryMin {
			backoff = f.cfg.RetryMin
		}
		// Jitter the sleep into [backoff/2, backoff): when every replica of a
		// crashed primary reconnects at once, identical deterministic backoff
		// would keep them retrying in lockstep against the successor.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		select {
		case <-f.stop:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.cfg.RetryMax {
			backoff = f.cfg.RetryMax
		}
	}
}

// streamOnce runs one subscription: dial, handshake, subscribe at the local
// log position, then apply frames until the stream breaks.
func (f *Follower) streamOnce() error {
	d := net.Dialer{Timeout: f.cfg.DialTimeout}
	nc, err := d.Dial("tcp", f.cfg.PrimaryAddr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.stopped() {
		f.mu.Unlock()
		nc.Close()
		return nil
	}
	f.nc = nc
	resync := f.resync
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.nc = nil
		f.mu.Unlock()
		nc.Close()
	}()

	conn := wire.NewConn(nc)
	nc.SetDeadline(time.Now().Add(f.cfg.DialTimeout))
	if _, err := wire.Handshake(conn, "perm-replica"); err != nil {
		return err
	}
	nc.SetDeadline(time.Time{})

	// The active store is re-read at every use below: bootstrap swaps in a
	// freshly restored store mid-stream, and everything after the swap must
	// apply to the new one.
	after := f.db.Store().Log().LastLSN()
	// An empty local database asks for a snapshot outright: replaying the
	// primary's full history from genesis would also converge (the primary
	// offers it when its log still reaches back that far), but a snapshot is
	// O(current data) while history is O(everything that ever happened).
	force := resync || after == 0
	// Fingerprint the last applied record so the primary can detect a
	// same-origin timeline fork (it restarted from an older snapshot and
	// re-assigned our LSNs). Zero when the local tail doesn't reach back to
	// `after` — e.g. right after a snapshot-file restart — in which case the
	// primary resumes on the LSN/origin checks alone.
	var resumeHash uint64
	if after > 0 {
		if recs, ok := f.db.Store().Log().Since(after-1, 1); ok && len(recs) == 1 && recs[0].LSN == after {
			resumeHash = repl.RecordHash(recs[0])
		}
	}
	payload := make([]byte, 0, 32)
	payload = binary.AppendUvarint(payload, after)
	payload = wire.AppendBool(payload, force)
	payload = binary.AppendUvarint(payload, f.db.Store().Origin())
	payload = binary.AppendUvarint(payload, resumeHash)
	// The cluster epoch this replica last saw: a deposed primary (serving a
	// lower epoch) must reject this subscription instead of feeding us its
	// fenced timeline.
	payload = binary.AppendUvarint(payload, f.db.Epoch())
	if err := conn.WriteMessage(wire.MsgSubscribe, payload); err != nil {
		return err
	}
	if err := conn.Flush(); err != nil {
		return err
	}

	// The liveness deadline starts at the configured timeout and stretches
	// once MsgSubLive reports the primary's heartbeat cadence — a primary
	// heartbeating every 20s must not trip a 15s default failure detector.
	readTimeout := f.cfg.ReadTimeout
	adoptHeartbeat := func(hb time.Duration) {
		if min := 3 * hb; hb > 0 && min > readTimeout {
			readTimeout = min
		}
	}
	ackBuf := make([]byte, 0, binary.MaxVarintLen64)
	for {
		nc.SetReadDeadline(time.Now().Add(readTimeout))
		typ, body, err := conn.ReadMessage()
		if err != nil {
			return err
		}
		switch typ {
		case wire.MsgSubSnapshot:
			hb, epoch, err := f.bootstrap(conn, nc)
			if err != nil {
				return err
			}
			adoptHeartbeat(hb)
			if epoch > 0 {
				if err := f.adoptStreamEpoch(epoch); err != nil {
					return err
				}
			}
			f.setConnected()
			f.noteProgress()
			f.logf("bootstrapped from snapshot at LSN %d", f.db.Store().Log().LastLSN())
		case wire.MsgSubLive:
			r := wire.NewReader(body)
			from := r.Uvarint()
			if r.Remaining() > 0 {
				adoptHeartbeat(time.Duration(r.Uvarint()))
			}
			epoch, haveEpoch := uint64(0), false
			if r.Remaining() > 0 {
				epoch, haveEpoch = r.Uvarint(), true
			}
			if r.Err() != nil {
				return r.Err()
			}
			if haveEpoch {
				if err := f.adoptStreamEpoch(epoch); err != nil {
					return err
				}
			}
			if from != f.db.Store().Log().LastLSN() {
				f.markResync()
				return fmt.Errorf("primary resumed stream at LSN %d, local log is at %d", from, f.db.Store().Log().LastLSN())
			}
			f.setConnected()
			f.noteProgress()
			f.logf("live at LSN %d (primary %s)", from, f.cfg.PrimaryAddr)
		case wire.MsgChanges:
			recs, err := repl.DecodeBatch(body)
			if err != nil {
				return err
			}
			store := f.db.Store()
			for _, rec := range recs {
				if want := store.Log().LastLSN() + 1; rec.LSN != want {
					f.markResync()
					return fmt.Errorf("change feed gap: got LSN %d, want %d", rec.LSN, want)
				}
				if err := store.ApplyChange(rec); err != nil {
					f.markResync()
					return fmt.Errorf("apply LSN %d: %w", rec.LSN, err)
				}
			}
			if n := len(recs); n > 0 {
				// One durability wait per batch, not per record: the applied
				// records are journaled by the store's WAL hook (when one is
				// attached), and group-committing the batch keeps replica
				// apply throughput at the primary's, not at one fsync per
				// record.
				if err := store.WaitDurable(); err != nil {
					return fmt.Errorf("replica WAL: %w", err)
				}
				f.observePrimary(recs[n-1].LSN)
				f.noteProgress()
				// Acknowledge the durably applied position so a semi-sync
				// primary can release writes waiting on this replica.
				ackBuf = binary.AppendUvarint(ackBuf[:0], recs[n-1].LSN)
				nc.SetWriteDeadline(time.Now().Add(readTimeout))
				if err := conn.WriteMessage(wire.MsgSubAck, ackBuf); err != nil {
					return fmt.Errorf("send replication ack: %w", err)
				}
				if err := conn.Flush(); err != nil {
					return fmt.Errorf("send replication ack: %w", err)
				}
				nc.SetWriteDeadline(time.Time{})
			}
		case wire.MsgHeartbeat:
			r := wire.NewReader(body)
			lsn := r.Uvarint()
			epoch, haveEpoch := uint64(0), false
			if r.Remaining() > 0 {
				epoch, haveEpoch = r.Uvarint(), true
			}
			if r.Err() != nil {
				return r.Err()
			}
			if haveEpoch {
				if err := f.adoptStreamEpoch(epoch); err != nil {
					return err
				}
			}
			f.observePrimary(lsn)
			// A heartbeat that reports nothing left to apply is progress: the
			// replica is caught up, so staleness restarts from now.
			if lsn <= f.db.Store().Log().LastLSN() {
				f.noteProgress()
			}
		case wire.MsgError:
			serr := wire.DecodeServerError(body)
			if serr.Code == wire.ErrCodeLogTrimmed {
				// Retained tail moved past us mid-stream; the next attempt's
				// Subscribe will be answered with a snapshot automatically.
				f.logf("primary trimmed its change log past our position; re-bootstrapping")
			}
			return serr
		default:
			return fmt.Errorf("unexpected frame %q in replication stream", typ)
		}
	}
}

// bootstrap wipes local storage and rebuilds it from the snapshot chunk
// stream, leaving the local change log positioned at the snapshot's LSN (and
// the store carrying the primary's history origin, via Restore). It returns
// the primary's heartbeat interval and cluster epoch as reported by the
// closing MsgSubLive (epoch 0 when the primary predates clustering).
func (f *Follower) bootstrap(conn *wire.Conn, nc net.Conn) (time.Duration, uint64, error) {
	f.mu.Lock()
	f.snapshots++
	mReplBootstraps.Inc()
	f.mu.Unlock()
	// Restore off to the side: sessions keep serving the current (old but
	// complete) store until the new one is whole, then the swap is atomic.
	// A failed bootstrap leaves the old data serving. The fresh store
	// inherits the old one's log retention (the operator's -repl-retain*).
	fresh := storage.NewStore()
	recs, bytes := f.db.Store().Log().Retention()
	fresh.Log().SetRetention(recs)
	fresh.Log().SetRetentionBytes(bytes)
	cs := &chunkStream{conn: conn, nc: nc, timeout: f.cfg.ReadTimeout}
	if err := fresh.Restore(cs); err != nil {
		if cs.err != nil {
			return 0, 0, cs.err // transport error wins over the decode error it caused
		}
		f.markResync()
		return 0, 0, fmt.Errorf("restore bootstrap snapshot: %w", err)
	}
	if err := cs.finish(); err != nil {
		f.markResync()
		return 0, 0, err
	}
	if cs.liveLSN != fresh.Log().LastLSN() {
		f.markResync()
		return 0, 0, fmt.Errorf("snapshot stream live at LSN %d, snapshot payload at %d", cs.liveLSN, fresh.Log().LastLSN())
	}
	if f.cfg.PrepareStore != nil {
		if err := f.cfg.PrepareStore(fresh); err != nil {
			f.markResync()
			return 0, 0, fmt.Errorf("prepare bootstrap store: %w", err)
		}
	}
	f.db.SwapStore(fresh)
	f.mu.Lock()
	f.resync = false
	// The primary-LSN ratchet restarts at the snapshot's position: after a
	// timeline-fork re-seed the old timeline's (higher) LSNs would otherwise
	// report a lag that never reaches zero again.
	f.primaryLSN = fresh.Log().LastLSN()
	f.mu.Unlock()
	return cs.liveHB, cs.liveEpoch, nil
}

func (f *Follower) setConnected() {
	f.mu.Lock()
	f.connected = true
	f.lastErr = ""
	f.mu.Unlock()
}

func (f *Follower) setDisconnected(err error) {
	f.mu.Lock()
	f.connected = false
	if err != nil && !errors.Is(err, net.ErrClosed) {
		f.lastErr = err.Error()
	}
	f.mu.Unlock()
}

func (f *Follower) observePrimary(lsn uint64) {
	applied := f.db.Store().Log().LastLSN()
	f.mu.Lock()
	if lsn > f.primaryLSN {
		f.primaryLSN = lsn
	}
	if f.primaryLSN > applied {
		mReplLag.Set(int64(f.primaryLSN - applied))
	} else {
		mReplLag.Set(0)
	}
	f.mu.Unlock()
}

// noteProgress timestamps the last moment this replica was demonstrably
// current: it applied a batch, or a heartbeat confirmed there was nothing to
// apply. SHOW replication_status reports time-since as staleness_ms.
func (f *Follower) noteProgress() {
	f.mu.Lock()
	f.progress = time.Now()
	f.mu.Unlock()
}

// adoptStreamEpoch reconciles a cluster epoch reported by the stream with
// the local one. Lower means the node feeding us was deposed — the stream
// fails with engine.ErrStaleEpoch rather than applying a fenced timeline.
// Higher is adopted, persisting first (via the harness's ObserveEpoch) so a
// restart cannot forget the fence.
func (f *Follower) adoptStreamEpoch(epoch uint64) error {
	cur := f.db.Epoch()
	if epoch < cur {
		return fmt.Errorf("node %s serves cluster epoch %d but this replica is at epoch %d: %w",
			f.cfg.PrimaryAddr, epoch, cur, engine.ErrStaleEpoch)
	}
	if epoch > cur {
		if f.cfg.ObserveEpoch != nil {
			f.cfg.ObserveEpoch(epoch)
		}
		f.db.SetEpoch(epoch)
	}
	return nil
}

// markResync makes the next subscription ask for a fresh snapshot instead of
// resuming: the local state can no longer be trusted to match the feed.
func (f *Follower) markResync() {
	f.mu.Lock()
	f.resync = true
	f.mu.Unlock()
}

// chunkStream adapts the MsgBackupChunk frame sequence of a bootstrap
// snapshot into an io.Reader for storage.Restore. The stream ends at the
// MsgSubLive frame, whose LSN is retained for the caller; transport errors
// stick in err.
type chunkStream struct {
	conn      *wire.Conn
	nc        net.Conn
	timeout   time.Duration
	buf       []byte
	live      bool
	liveLSN   uint64
	liveHB    time.Duration // primary's heartbeat interval, from MsgSubLive
	liveEpoch uint64        // primary's cluster epoch, from MsgSubLive
	err       error
}

func (c *chunkStream) Read(p []byte) (int, error) {
	for len(c.buf) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.live {
			return 0, io.EOF
		}
		if err := c.next(); err != nil {
			return 0, err
		}
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}

// next reads one frame. Chunk payloads alias the connection's read buffer,
// which is valid until the next ReadMessage — and the only path to another
// ReadMessage is this method, after the buffered bytes were consumed.
func (c *chunkStream) next() error {
	c.nc.SetReadDeadline(time.Now().Add(c.timeout))
	typ, body, err := c.conn.ReadMessage()
	if err != nil {
		c.err = err
		return err
	}
	switch typ {
	case wire.MsgBackupChunk:
		c.buf = body
		return nil
	case wire.MsgSubLive:
		r := wire.NewReader(body)
		c.liveLSN = r.Uvarint()
		if r.Remaining() > 0 {
			c.liveHB = time.Duration(r.Uvarint())
		}
		if r.Remaining() > 0 {
			c.liveEpoch = r.Uvarint()
		}
		if rerr := r.Err(); rerr != nil {
			c.err = rerr
			return rerr
		}
		c.live = true
		return nil
	case wire.MsgError:
		c.err = wire.DecodeServerError(body)
		return c.err
	}
	c.err = fmt.Errorf("unexpected frame %q in snapshot stream", typ)
	return c.err
}

// finish verifies the snapshot stream was fully consumed and positions the
// reader past the MsgSubLive marker (reading it now if the gob decoder
// stopped exactly at the last chunk's end).
func (c *chunkStream) finish() error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) > 0 {
		return fmt.Errorf("snapshot stream has %d undecoded trailing bytes", len(c.buf))
	}
	for !c.live {
		if err := c.next(); err != nil {
			return err
		}
		if len(c.buf) > 0 {
			return fmt.Errorf("unexpected snapshot bytes after the decoded image")
		}
	}
	return nil
}
