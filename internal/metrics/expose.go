package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4). Histograms emit cumulative _bucket series for non-empty
// buckets plus the mandatory +Inf bound, _sum, and _count; empty buckets are
// elided to keep scrapes small (cumulative counts stay monotone either way).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.fn())
		case kindHistogram:
			h := e.hist
			fmt.Fprintf(bw, "# TYPE %s histogram\n", e.name)
			var cum uint64
			for i := 0; i < numBuckets; i++ {
				n := h.counts[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				fmt.Fprintf(bw, "%s_bucket{le=\"%g\"} %d\n", e.name, float64(bucketMax(i))*h.scale, cum)
			}
			count, sum := h.Counts()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, count)
			fmt.Fprintf(bw, "%s_sum %g\n", e.name, float64(sum)*h.scale)
			fmt.Fprintf(bw, "%s_count %d\n", e.name, count)
		}
	}
	return bw.Flush()
}

// Handler returns the observability endpoint mux: /metrics serves the
// registry in Prometheus text format and /debug/pprof/* serves the standard
// runtime profiles. Mounted by permserver/permrouter under -metrics-addr.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
