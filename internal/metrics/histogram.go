package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a log-bucketed histogram of non-negative int64 observations
// (typically nanoseconds). Buckets follow an HDR-style layout: values 0..3
// get exact buckets, and every power-of-two octave above that is split into
// 4 sub-buckets by the two bits after the leading one. Bucket width is
// therefore at most 25% of the bucket's lower bound, which bounds quantile
// estimation error to the same 25% — plenty for latency monitoring, and it
// keeps Observe at two atomic adds plus an atomic increment with zero
// allocation or locking.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	scale  float64 // exposition unit conversion (1e-9 for ns → s, 1 for counts)
}

// Octaves for bit lengths 3..63 (observations are non-negative int64), 4
// sub-buckets each, plus the 4 exact small-value buckets.
const numBuckets = 4 + (63-2)*4

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v))             // bit length, >= 3 here
	sub := int((uint64(v) >> (e - 3)) & 3) // two bits after the leading one
	return 4 + (e-3)*4 + sub
}

// bucketMax returns the largest value that maps to bucket idx — the
// Prometheus `le` bound.
func bucketMax(idx int) int64 {
	if idx < 4 {
		return int64(idx)
	}
	e := 3 + (idx-4)/4
	sub := (idx - 4) % 4
	// Values with bit length e whose top-2 mantissa bits equal sub span
	// [(4+sub)<<(e-3), (5+sub)<<(e-3)). The top octave's upper bounds
	// overflow int64; clamp them to MaxInt64.
	hi := uint64(5+sub) << (e - 3)
	if hi == 0 || hi-1 >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(hi) - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Counts returns the total number of observations and their sum, in the
// recorded (pre-scale) unit.
func (h *Histogram) Counts() (count uint64, sum int64) {
	return h.count.Load(), h.sum.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded values in
// the recorded unit. The estimate is the upper bound of the bucket holding
// the target rank, so it is never below the true quantile and at most ~25%
// above it. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			return bucketMax(i)
		}
	}
	return bucketMax(numBuckets - 1)
}
