package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerEndpoints smoke-tests the observability mux the binaries mount
// under -metrics-addr: /metrics serves the exposition format and pprof
// answers.
func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("smoke_total", "smoke counter").Add(7)
	r.Histogram("smoke_seconds", "smoke latency", 1e-9).Observe(1500)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, needle := range []string{
		"# TYPE smoke_total counter",
		"smoke_total 7",
		"# TYPE smoke_seconds histogram",
		"smoke_seconds_count 1",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("/metrics missing %q:\n%s", needle, body)
		}
	}

	if code, _, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline status = %d, body %d bytes", code, len(body))
	}
	if code, _, body := get("/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/goroutine status = %d", code)
	}
}
