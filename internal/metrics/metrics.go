// Package metrics is the engine-wide instrumentation registry: allocation-free
// atomic counters and gauges, log-bucketed latency histograms, and a
// process-wide Registry exposed in Prometheus text format (expose.go) and as
// SHOW engine_stats rows (Snapshot).
//
// Design constraints, in order:
//
//  1. Recording must be near-free: a Counter.Inc is one atomic add, a
//     Histogram.Observe is two atomic adds plus a handful of bit operations.
//     Nothing on the record path allocates, locks, or formats.
//  2. Registration must be idempotent: the test suite runs many servers,
//     WALs and followers in one process, all sharing the Default registry,
//     so a second Counter("x", ...) returns the first instance instead of
//     panicking or double-counting HELP lines.
//  3. No dependencies: exposition is hand-rolled Prometheus text format.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 (current value, may go down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates exposition TYPE lines.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// Registry holds the registered metrics of one process. Register methods are
// idempotent by name; mismatched re-registration (same name, different kind)
// panics, since that is always a programming error.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry; subsystems register into it at
// package init and the -metrics-addr endpoint serves it.
var Default = NewRegistry()

func (r *Registry) register(name, help string, k kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: k}
	r.entries[name] = e
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers a gauge computed at scrape time. Re-registration
// replaces the function (the latest instance wins), which is what multi-server
// test processes want.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	e := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	defer r.mu.Unlock()
	e.fn = fn
}

// Histogram registers (or returns the existing) histogram under name.
// scale converts recorded values to the exposition unit: histograms recording
// nanoseconds expose seconds with scale 1e-9; pure counts use scale 1.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	e := r.register(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.hist == nil {
		e.hist = &Histogram{scale: scale}
	}
	return e.hist
}

// sorted returns the entries in name order.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Stat is one row of a registry snapshot, for SHOW engine_stats.
type Stat struct {
	Name  string
	Value string
}

// Snapshot renders every metric as (name, value) rows in name order.
// Histograms expand to _count, _sum and estimated p50/p99 rows.
func (r *Registry) Snapshot() []Stat {
	var out []Stat
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			out = append(out, Stat{e.name, fmt.Sprintf("%d", e.counter.Value())})
		case kindGauge:
			out = append(out, Stat{e.name, fmt.Sprintf("%d", e.gauge.Value())})
		case kindGaugeFunc:
			out = append(out, Stat{e.name, fmt.Sprintf("%d", e.fn())})
		case kindHistogram:
			h := e.hist
			count, sum := h.Counts()
			out = append(out,
				Stat{e.name + "_count", fmt.Sprintf("%d", count)},
				Stat{e.name + "_sum", fmt.Sprintf("%g", float64(sum)*h.scale)},
				Stat{e.name + "_p50", fmt.Sprintf("%g", float64(h.Quantile(0.50))*h.scale)},
				Stat{e.name + "_p99", fmt.Sprintf("%g", float64(h.Quantile(0.99))*h.scale)},
			)
		}
	}
	return out
}
