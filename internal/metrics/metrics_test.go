package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the HDR-style layout: exact buckets below 4, and
// within every octave the two mantissa bits split it into 4 sub-buckets whose
// le bounds are one below the next sub-bucket's smallest member.
func TestBucketBoundaries(t *testing.T) {
	for v := int64(0); v < 4; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketMax(int(v)); got != v {
			t.Fatalf("bucketMax(%d) = %d, want %d", v, got, v)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	// Every value must fall inside its bucket's range: bucketMax(i-1) < v <= bucketMax(i).
	for _, v := range []int64{4, 5, 6, 7, 8, 15, 16, 100, 1000, 1 << 20, (1 << 40) + 12345, 1<<62 + 99} {
		i := bucketIndex(v)
		if v > bucketMax(i) {
			t.Fatalf("value %d above its bucket %d bound %d", v, i, bucketMax(i))
		}
		if i > 0 && v <= bucketMax(i-1) {
			t.Fatalf("value %d should be in bucket %d or lower, got %d", v, i-1, i)
		}
	}
	// Bounds are strictly increasing — required for cumulative exposition.
	for i := 1; i < numBuckets; i++ {
		if bucketMax(i) <= bucketMax(i-1) {
			t.Fatalf("bucketMax not increasing at %d: %d <= %d", i, bucketMax(i), bucketMax(i-1))
		}
	}
	// Relative bucket width is bounded by 25% of the lower edge (octave/4).
	for i := 5; i < numBuckets; i++ {
		lo, hi := bucketMax(i-1)+1, bucketMax(i)
		if width := hi - lo; lo >= 8 && float64(width) > 0.25*float64(lo) {
			t.Fatalf("bucket %d [%d,%d] wider than 25%% of lower edge", i, lo, hi)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this proves the record path is data-race-free, and the final
// count/sum must balance exactly.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{scale: 1}
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	count, _ := h.Counts()
	if count != goroutines*per {
		t.Fatalf("count = %d, want %d", count, goroutines*per)
	}
	var inBuckets uint64
	for i := range h.counts {
		inBuckets += h.counts[i].Load()
	}
	if inBuckets != count {
		t.Fatalf("bucket total %d != count %d", inBuckets, count)
	}
}

// TestQuantileErrorBound checks the estimator's contract on a random sample:
// the estimate never undershoots the true quantile and overshoots by at most
// the 25% bucket width (plus one for integer edges).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{scale: 1}
	values := make([]int64, 50000)
	for i := range values {
		// Log-uniform spread: latencies from ~1µs to ~1s in ns.
		values[i] = int64(1000 * (1 << rng.Intn(20)) * (1 + rng.Intn(100)) / 100)
		h.Observe(values[i])
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		truth := values[int(q*float64(len(values)))]
		est := h.Quantile(q)
		if est < truth {
			t.Fatalf("q%.2f: estimate %d below true %d", q, est, truth)
		}
		if float64(est) > float64(truth)*1.25+1 {
			t.Fatalf("q%.2f: estimate %d above 25%% bound of true %d", q, est, truth)
		}
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

// TestRegistryIdempotent: re-registering a name returns the same instance; a
// kind clash panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instances not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestPrometheusExposition checks shape: HELP/TYPE lines, cumulative
// monotone histogram buckets ending at +Inf, and the seconds scale.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_queries_total", "queries").Add(7)
	r.Gauge("t_sessions", "sessions").Set(3)
	r.GaugeFunc("t_dynamic", "computed", func() int64 { return 11 })
	h := r.Histogram("t_latency_seconds", "latency", 1e-9)
	h.Observe(1500)    // 1.5µs
	h.Observe(3000000) // 3ms
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE t_queries_total counter\nt_queries_total 7\n",
		"# TYPE t_sessions gauge\nt_sessions 3\n",
		"t_dynamic 11\n",
		"# TYPE t_latency_seconds histogram\n",
		`t_latency_seconds_bucket{le="+Inf"} 2`,
		"t_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// _sum must be in seconds: 1500ns + 3000000ns = 0.0030015s.
	if !strings.Contains(out, "t_latency_seconds_sum 0.0030015") {
		t.Fatalf("sum not scaled to seconds:\n%s", out)
	}
	// Cumulative bucket counts must be monotone and end at count.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "t_latency_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if n < last {
			t.Fatalf("bucket counts not monotone: %q after %d", line, last)
		}
		last = n
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", last)
	}
}

// TestSnapshot covers the SHOW engine_stats surface.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "c").Add(5)
	h := r.Histogram("s_lat", "h", 1)
	for i := 0; i < 100; i++ {
		h.Observe(int64(i))
	}
	rows := r.Snapshot()
	got := map[string]string{}
	for _, s := range rows {
		got[s.Name] = s.Value
	}
	if got["s_total"] != "5" {
		t.Fatalf("s_total = %q", got["s_total"])
	}
	if got["s_lat_count"] != "100" {
		t.Fatalf("s_lat_count = %q", got["s_lat_count"])
	}
	if _, ok := got["s_lat_p99"]; !ok {
		t.Fatal("missing p99 row")
	}
}
