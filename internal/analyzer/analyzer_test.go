package analyzer

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/sql"
	"perm/internal/value"
)

// testCatalog builds: t(a int, b text), u(a int, c float), and a view
// v AS SELECT a FROM t.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.CreateTable(&catalog.TableDef{Name: "t", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindString},
	}}))
	must(c.CreateTable(&catalog.TableDef{Name: "u", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt},
		{Name: "c", Type: value.KindFloat},
	}}))
	must(c.CreateView(&catalog.ViewDef{Name: "v", Text: "SELECT a FROM t"}))
	return c
}

func analyze(t *testing.T, input string) (algebra.Op, error) {
	t.Helper()
	st, err := sql.Parse(input)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(testCatalog(t)).AnalyzeSelect(st.(*sql.SelectStmt))
}

func mustAnalyze(t *testing.T, input string) algebra.Op {
	t.Helper()
	op, err := analyze(t, input)
	if err != nil {
		t.Fatalf("analyze(%q): %v", input, err)
	}
	return op
}

func TestResolveSimple(t *testing.T) {
	op := mustAnalyze(t, "SELECT a, b FROM t")
	sch := op.Schema()
	if len(sch) != 2 || sch[0].Name != "a" || sch[0].Type != value.KindInt ||
		sch[1].Type != value.KindString {
		t.Errorf("schema = %v", sch)
	}
}

func TestResolveQualifiedAndAlias(t *testing.T) {
	op := mustAnalyze(t, "SELECT x.a, x.b AS bee FROM t AS x")
	sch := op.Schema()
	if sch[1].Name != "bee" {
		t.Errorf("schema = %v", sch)
	}
	if _, err := analyze(t, "SELECT t.a FROM t AS x"); err == nil {
		t.Error("original name must be hidden by alias")
	}
}

func TestResolveAmbiguous(t *testing.T) {
	_, err := analyze(t, "SELECT a FROM t, u")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("err = %v", err)
	}
	// Qualification disambiguates.
	mustAnalyze(t, "SELECT t.a, u.a FROM t, u")
}

func TestResolveMissing(t *testing.T) {
	_, err := analyze(t, "SELECT zz FROM t")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("err = %v", err)
	}
	_, err = analyze(t, "SELECT a FROM missing")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("err = %v", err)
	}
}

func TestStarExpansion(t *testing.T) {
	op := mustAnalyze(t, "SELECT * FROM t, u")
	if len(op.Schema()) != 4 {
		t.Errorf("schema = %v", op.Schema())
	}
	op = mustAnalyze(t, "SELECT u.* FROM t, u")
	if len(op.Schema()) != 2 || op.Schema()[1].Name != "c" {
		t.Errorf("schema = %v", op.Schema())
	}
	if _, err := analyze(t, "SELECT w.* FROM t"); err == nil {
		t.Error("star on unknown relation must fail")
	}
}

func TestViewUnfolding(t *testing.T) {
	op := mustAnalyze(t, "SELECT a FROM v WHERE a > 1")
	found := false
	algebra.Walk(op, func(o algebra.Op) {
		if s, ok := o.(*algebra.Scan); ok && s.Table == "t" {
			found = true
		}
	})
	if !found {
		t.Error("view must unfold to a scan of t")
	}
}

func TestRecursiveViewDetected(t *testing.T) {
	c := testCatalog(t)
	if err := c.CreateView(&catalog.ViewDef{Name: "rec", Text: "SELECT a FROM rec"}); err != nil {
		t.Fatal(err)
	}
	st, _ := sql.Parse("SELECT a FROM rec")
	_, err := New(c).AnalyzeSelect(st.(*sql.SelectStmt))
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("err = %v", err)
	}
}

func TestAggregationShape(t *testing.T) {
	op := mustAnalyze(t, "SELECT b, count(*), sum(a) FROM t GROUP BY b HAVING count(*) > 1")
	// Expect Project over Select(HAVING) over Agg.
	proj, ok := op.(*algebra.Project)
	if !ok {
		t.Fatalf("top = %T", op)
	}
	sel, ok := proj.Input.(*algebra.Select)
	if !ok {
		t.Fatalf("below project = %T", proj.Input)
	}
	agg, ok := sel.Input.(*algebra.Agg)
	if !ok {
		t.Fatalf("below having = %T", sel.Input)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Errorf("agg = %+v", agg)
	}
}

func TestAggregateDeduplication(t *testing.T) {
	op := mustAnalyze(t, "SELECT count(*), count(*) + 1 FROM t")
	var agg *algebra.Agg
	algebra.Walk(op, func(o algebra.Op) {
		if a, ok := o.(*algebra.Agg); ok {
			agg = a
		}
	})
	if agg == nil || len(agg.Aggs) != 1 {
		t.Errorf("count(*) must be computed once, agg = %+v", agg)
	}
}

func TestBareColumnOutsideGroupByRejected(t *testing.T) {
	_, err := analyze(t, "SELECT a, count(*) FROM t GROUP BY b")
	if err == nil || !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("err = %v", err)
	}
}

func TestGroupByExpressionMatch(t *testing.T) {
	// A whole expression matching a group expression is allowed.
	mustAnalyze(t, "SELECT a + 1, count(*) FROM t GROUP BY a + 1")
	if _, err := analyze(t, "SELECT a + 2, count(*) FROM t GROUP BY a + 1"); err == nil {
		t.Error("non-matching expression must fail")
	}
}

func TestGroupByPositionAndAlias(t *testing.T) {
	mustAnalyze(t, "SELECT b, count(*) FROM t GROUP BY 1")
	mustAnalyze(t, "SELECT b AS grp, count(*) FROM t GROUP BY grp")
	if _, err := analyze(t, "SELECT b, count(*) FROM t GROUP BY 5"); err == nil {
		t.Error("position out of range must fail")
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	_, err := analyze(t, "SELECT a FROM t WHERE count(*) > 1")
	if err == nil {
		t.Errorf("aggregate in WHERE must fail")
	}
}

func TestNestedAggregateRejected(t *testing.T) {
	_, err := analyze(t, "SELECT sum(count(*)) FROM t")
	if err == nil {
		t.Error("nested aggregates must fail")
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	op := mustAnalyze(t, "SELECT b FROM t ORDER BY a")
	// Output schema must not contain the hidden sort column.
	if len(op.Schema()) != 1 || op.Schema()[0].Name != "b" {
		t.Errorf("schema = %v", op.Schema())
	}
	// But a Sort node must exist below.
	foundSort := false
	algebra.Walk(op, func(o algebra.Op) {
		if _, ok := o.(*algebra.Sort); ok {
			foundSort = true
		}
	})
	if !foundSort {
		t.Error("sort missing")
	}
}

func TestOrderByDistinctRestriction(t *testing.T) {
	_, err := analyze(t, "SELECT DISTINCT b FROM t ORDER BY a")
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Errorf("err = %v", err)
	}
}

func TestOrderByPosition(t *testing.T) {
	mustAnalyze(t, "SELECT a, b FROM t ORDER BY 2 DESC")
	if _, err := analyze(t, "SELECT a FROM t ORDER BY 3"); err == nil {
		t.Error("position out of range must fail")
	}
}

func TestWhereMustBeBoolean(t *testing.T) {
	_, err := analyze(t, "SELECT a FROM t WHERE a + 1")
	if err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Errorf("err = %v", err)
	}
}

func TestSetOpArity(t *testing.T) {
	_, err := analyze(t, "SELECT a, b FROM t UNION SELECT a FROM u")
	if err == nil || !strings.Contains(err.Error(), "same number of columns") {
		t.Errorf("err = %v", err)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	op := mustAnalyze(t, "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)")
	foundOuter := false
	algebra.Walk(op, func(o algebra.Op) {
		if s, ok := o.(*algebra.Select); ok {
			if sp, ok2 := s.Cond.(*algebra.Subplan); ok2 && sp.Correlated {
				foundOuter = true
			}
		}
	})
	if !foundOuter {
		t.Error("correlated subplan not detected")
	}
}

func TestUncorrelatedSubqueryNotFlagged(t *testing.T) {
	op := mustAnalyze(t, "SELECT a FROM t WHERE a IN (SELECT a FROM u)")
	algebra.Walk(op, func(o algebra.Op) {
		if s, ok := o.(*algebra.Select); ok {
			if sp, ok2 := s.Cond.(*algebra.Subplan); ok2 && sp.Correlated {
				t.Error("uncorrelated subquery flagged correlated")
			}
		}
	})
}

func TestTwoLevelsUpRejected(t *testing.T) {
	_, err := analyze(t, `SELECT a FROM t WHERE EXISTS (
		SELECT 1 FROM u WHERE EXISTS (SELECT 1 FROM v WHERE v.a = t.a))`)
	if err == nil || !strings.Contains(err.Error(), "one level") {
		t.Errorf("err = %v", err)
	}
}

func TestScalarSubqueryColumnCount(t *testing.T) {
	_, err := analyze(t, "SELECT a FROM t WHERE a = (SELECT a, c FROM u)")
	if err == nil || !strings.Contains(err.Error(), "one column") {
		t.Errorf("err = %v", err)
	}
}

func TestUsingJoin(t *testing.T) {
	op := mustAnalyze(t, "SELECT t.a, u.c FROM t JOIN u USING (a)")
	var join *algebra.Join
	algebra.Walk(op, func(o algebra.Op) {
		if j, ok := o.(*algebra.Join); ok {
			join = j
		}
	})
	if join == nil || join.Cond == nil {
		t.Fatal("USING must desugar to an equality condition")
	}
	if _, err := analyze(t, "SELECT 1 FROM t JOIN u USING (b)"); err == nil {
		t.Error("USING column must exist on both sides")
	}
}

func TestProvenanceWithoutRewriterFails(t *testing.T) {
	_, err := analyze(t, "SELECT PROVENANCE a FROM t")
	if err == nil || !strings.Contains(err.Error(), "rewriter") {
		t.Errorf("err = %v", err)
	}
}

func TestRewriteHookInvoked(t *testing.T) {
	c := testCatalog(t)
	an := New(c)
	calls := 0
	an.Rewrite = func(req ProvRequest) (algebra.Op, error) {
		calls++
		if req.Contribution != sql.Copy {
			t.Errorf("contribution = %v, want COPY", req.Contribution)
		}
		return req.Input, nil
	}
	st, _ := sql.Parse("SELECT PROVENANCE ON CONTRIBUTION (COPY) a FROM t")
	if _, err := an.AnalyzeSelect(st.(*sql.SelectStmt)); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("hook called %d times", calls)
	}
}

func TestStripProvenance(t *testing.T) {
	c := testCatalog(t)
	an := New(c)
	an.StripProvenance = true
	st, _ := sql.Parse("SELECT PROVENANCE a FROM t")
	op, err := an.AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	algebra.Walk(op, func(o algebra.Op) {
		if _, ok := o.(*algebra.ProvDone); ok {
			t.Error("StripProvenance must not produce ProvDone nodes")
		}
	})
}

func TestExternalProvSpec(t *testing.T) {
	c := testCatalog(t)
	an := New(c)
	st, _ := sql.Parse("SELECT a, b FROM t PROVENANCE (b)")
	op, err := an.AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	// The b column must be flagged as provenance in the FROM item, and
	// selected through.
	sch := op.Schema()
	if !sch[1].IsProv || sch[1].ProvRel != "t" {
		t.Errorf("schema = %+v", sch)
	}
	// Unknown attribute errors.
	st, _ = sql.Parse("SELECT a FROM t PROVENANCE (zz)")
	if _, err := an.AnalyzeSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("unknown provenance attribute must fail")
	}
}

func TestBaseRelationNode(t *testing.T) {
	op := mustAnalyze(t, "SELECT a FROM v BASERELATION")
	found := false
	algebra.Walk(op, func(o algebra.Op) {
		if _, ok := o.(*algebra.BaseRel); ok {
			found = true
		}
	})
	if !found {
		t.Error("BASERELATION must produce a BaseRel node")
	}
}

func TestLimitOffset(t *testing.T) {
	op := mustAnalyze(t, "SELECT a FROM t LIMIT 5 OFFSET 2")
	lim, ok := op.(*algebra.Limit)
	if !ok || lim.Count != 5 || lim.Offset != 2 {
		t.Errorf("op = %+v", op)
	}
	if _, err := analyze(t, "SELECT a FROM t LIMIT a"); err == nil {
		t.Error("non-constant LIMIT must fail")
	}
}

func TestFromlessSelect(t *testing.T) {
	op := mustAnalyze(t, "SELECT 1 + 2 AS three")
	sch := op.Schema()
	if len(sch) != 1 || sch[0].Name != "three" {
		t.Errorf("schema = %v", sch)
	}
}

func TestCaseTypeInference(t *testing.T) {
	op := mustAnalyze(t, "SELECT CASE WHEN a > 0 THEN 1 ELSE 2.5 END FROM t")
	if op.Schema()[0].Type != value.KindFloat {
		t.Errorf("case type = %v, want float", op.Schema()[0].Type)
	}
}

func TestFunctionArity(t *testing.T) {
	if _, err := analyze(t, "SELECT substr(b) FROM t"); err == nil {
		t.Error("substr/1 must fail")
	}
	if _, err := analyze(t, "SELECT nosuchfn(a) FROM t"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestAnalyzeExprStandalone(t *testing.T) {
	an := New(testCatalog(t))
	sch := algebra.Schema{{Name: "x", Type: value.KindInt}}
	e, err := sql.ParseExpr("x * 2 > 4")
	if err != nil {
		t.Fatal(err)
	}
	re, err := an.AnalyzeExpr(e, sch)
	if err != nil {
		t.Fatal(err)
	}
	if re.Type() != value.KindBool {
		t.Errorf("type = %v", re.Type())
	}
}
