// Package analyzer implements the semantic analysis stage of the Perm
// pipeline (Figure 3: "syntactic and semantic analysis, view unfolding"). It
// turns a parsed sql.SelectStmt into a resolved algebra.Op tree: names are
// bound to positional column references, views are unfolded at use sites,
// aggregation is normalized into Agg+Project, and nested subqueries become
// Subplan expressions (later de-correlated by the provenance rewriter).
//
// SQL-PLE handling: SELECT PROVENANCE blocks are materialized through the
// RewriteHook — the engine injects the provenance rewriter here, so that by
// the time analysis finishes the tree is fully executable and outer query
// blocks can resolve names against provenance attributes.
package analyzer

import (
	"fmt"
	"strings"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/sql"
	"perm/internal/value"
)

// maxViewDepth bounds view unfolding to catch recursive view definitions.
const maxViewDepth = 32

// ProvRequest describes one SELECT PROVENANCE block encountered during
// analysis; the engine's rewrite hook receives it and must return the
// provenance-rewritten tree.
type ProvRequest struct {
	Input        algebra.Op
	Contribution sql.ContributionSemantics
}

// RewriteHook materializes a provenance request into a rewritten tree.
type RewriteHook func(ProvRequest) (algebra.Op, error)

// Analyzer resolves statements against a catalog.
type Analyzer struct {
	Catalog *catalog.Catalog
	// Rewrite is invoked for each SELECT PROVENANCE block. When nil,
	// provenance queries are rejected (the engine always sets it).
	Rewrite RewriteHook
	// StripProvenance makes the analyzer ignore SELECT PROVENANCE markers,
	// producing the original (un-rewritten) tree; the Perm browser uses this
	// to display the original algebra tree next to the rewritten one.
	StripProvenance bool
	// Params carries the kind of each bound `?` placeholder (index order).
	// The engine sets it from the prepared statement's arguments; a
	// placeholder beyond its length — including any placeholder when no
	// arguments are bound, as in an interactively typed `?` — is an error.
	Params []value.Kind

	viewDepth int
}

// New returns an analyzer over the catalog.
func New(cat *catalog.Catalog) *Analyzer {
	return &Analyzer{Catalog: cat}
}

// AnalyzeSelect resolves a full query statement.
func (a *Analyzer) AnalyzeSelect(st *sql.SelectStmt) (algebra.Op, error) {
	return a.analyzeSelect(st, nil)
}

// AnalyzeExpr resolves a scalar expression over the given schema (used by
// DELETE/UPDATE predicates and tests). The row layout is the schema itself.
func (a *Analyzer) AnalyzeExpr(e sql.Expr, sch algebra.Schema) (algebra.Expr, error) {
	sc := &scope{cols: sch}
	return a.analyzeExpr(e, sc, exprCtx{})
}

// --- scopes -------------------------------------------------------------------

// scope is a name-resolution environment: the current row layout plus an
// optional link to the enclosing query's scope (for correlated subqueries).
type scope struct {
	cols  algebra.Schema
	outer *scope
}

// resolve finds a column by (qualifier, name). It returns the index, whether
// the reference binds to the outer scope, and an error for misses/ambiguity.
func (s *scope) resolve(table, name string) (idx int, isOuter bool, err error) {
	found := -1
	for i, c := range s.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, false, fmt.Errorf("column reference %q is ambiguous", refName(table, name))
		}
		found = i
	}
	if found >= 0 {
		return found, false, nil
	}
	if s.outer != nil {
		idx, deeper, err := s.outer.resolve(table, name)
		if err != nil {
			return 0, false, err
		}
		if deeper {
			return 0, false, fmt.Errorf("column %q: references more than one level up are not supported", refName(table, name))
		}
		return idx, true, nil
	}
	return 0, false, fmt.Errorf("column %q does not exist", refName(table, name))
}

func refName(table, name string) string {
	if table != "" {
		return table + "." + name
	}
	return name
}

// exprCtx carries per-expression analysis context.
type exprCtx struct {
	// aggMode: resolving a post-aggregation expression — group expressions
	// and aggregate calls map to Agg output columns.
	aggMode bool
	// groupKeys maps the string form of a resolved pre-agg expression to its
	// Agg output index.
	groupKeys map[string]int
	// aggCalls collects aggregate calls; in aggMode they resolve to output
	// columns groupCount+position.
	aggs        *aggCollector
	groupCount  int
	preAggScope *scope
	// allowAggs: aggregate calls legal here (select list / HAVING / ORDER BY).
	allowAggs bool
}

// aggCollector deduplicates aggregate calls across select list and HAVING.
// Once frozen (after the Agg node is built), unknown aggregates are rejected.
type aggCollector struct {
	exprs  []algebra.AggExpr
	keys   map[string]int
	frozen bool
}

func (c *aggCollector) add(e algebra.AggExpr) int {
	k := e.String()
	if i, ok := c.keys[k]; ok {
		return i
	}
	if c.frozen {
		return -1
	}
	c.exprs = append(c.exprs, e)
	c.keys[k] = len(c.exprs) - 1
	return len(c.exprs) - 1
}

// --- SELECT -------------------------------------------------------------------

func (a *Analyzer) analyzeSelect(st *sql.SelectStmt, outer *scope) (algebra.Op, error) {
	op, sorted, err := a.analyzeBodyWithOrder(st, outer)
	if err != nil {
		return nil, err
	}
	if len(st.OrderBy) > 0 && !sorted {
		keys := make([]algebra.SortKey, len(st.OrderBy))
		outSch := op.Schema()
		outScope := &scope{cols: outSch, outer: outer}
		for i, o := range st.OrderBy {
			ke, err := a.resolveOrderKey(o.Expr, outSch, outScope)
			if err != nil {
				return nil, err
			}
			keys[i] = algebra.SortKey{Expr: ke, Desc: o.Desc}
		}
		op = &algebra.Sort{Input: op, Keys: keys}
	}
	if st.Limit != nil || st.Offset != nil {
		count := int64(-1)
		offset := int64(0)
		if st.Limit != nil {
			n, err := constInt(st.Limit)
			if err != nil {
				return nil, fmt.Errorf("LIMIT: %v", err)
			}
			count = n
		}
		if st.Offset != nil {
			n, err := constInt(st.Offset)
			if err != nil {
				return nil, fmt.Errorf("OFFSET: %v", err)
			}
			offset = n
		}
		op = &algebra.Limit{Input: op, Count: count, Offset: offset}
	}
	return op, nil
}

func constInt(e sql.Expr) (int64, error) {
	lit, ok := e.(*sql.Literal)
	if !ok || lit.Val.K != value.KindInt {
		return 0, fmt.Errorf("expected an integer constant")
	}
	return lit.Val.I, nil
}

// resolveOrderKey resolves one ORDER BY key against an output schema:
// a positional constant or an expression over the output columns.
func (a *Analyzer) resolveOrderKey(e sql.Expr, outSch algebra.Schema, outScope *scope) (algebra.Expr, error) {
	if lit, ok := e.(*sql.Literal); ok && lit.Val.K == value.KindInt {
		pos := int(lit.Val.I)
		if pos < 1 || pos > len(outSch) {
			return nil, fmt.Errorf("ORDER BY position %d is out of range", pos)
		}
		return &algebra.ColIdx{Idx: pos - 1, Typ: outSch[pos-1].Type, Name: outSch[pos-1].Name}, nil
	}
	ke, err := a.analyzeExpr(e, outScope, exprCtx{})
	if err != nil {
		return nil, fmt.Errorf("ORDER BY: %v", err)
	}
	return ke, nil
}

// analyzeBodyWithOrder analyzes the statement's body. For a single SELECT
// core it hands the ORDER BY items down so keys can reference non-projected
// input columns (via hidden sort columns); sorted reports whether ordering
// was already applied.
func (a *Analyzer) analyzeBodyWithOrder(st *sql.SelectStmt, outer *scope) (algebra.Op, bool, error) {
	if core, ok := st.Body.(*sql.SelectCore); ok && len(st.OrderBy) > 0 {
		op, err := a.analyzeCore(core, outer, st.OrderBy)
		return op, true, err
	}
	op, err := a.analyzeBody(st.Body, outer)
	return op, false, err
}

func (a *Analyzer) analyzeBody(body sql.QueryBody, outer *scope) (algebra.Op, error) {
	switch b := body.(type) {
	case *sql.SelectCore:
		return a.analyzeCore(b, outer, nil)
	case *sql.SetOpBody:
		// SQL-PLE: SELECT PROVENANCE on the first branch of a set operation
		// requests provenance of the whole set operation (the paper's q1).
		if leftmost := leftmostCore(b); leftmost != nil && leftmost.Provenance && !a.StripProvenance {
			contribution := leftmost.Contribution
			leftmost.Provenance = false
			op, err := a.analyzeSetOp(b, outer)
			leftmost.Provenance = true
			if err != nil {
				return nil, err
			}
			if a.Rewrite == nil {
				return nil, fmt.Errorf("SELECT PROVENANCE is not available: no provenance rewriter configured")
			}
			rewritten, err := a.Rewrite(ProvRequest{Input: op, Contribution: contribution})
			if err != nil {
				return nil, err
			}
			return &algebra.ProvDone{Input: rewritten}, nil
		}
		return a.analyzeSetOp(b, outer)
	}
	return nil, fmt.Errorf("unknown query body %T", body)
}

// leftmostCore finds the leftmost SELECT core of a set-operation tree.
func leftmostCore(b *sql.SetOpBody) *sql.SelectCore {
	switch l := b.Left.(type) {
	case *sql.SelectCore:
		return l
	case *sql.SetOpBody:
		return leftmostCore(l)
	}
	return nil
}

func (a *Analyzer) analyzeSetOp(body sql.QueryBody, outer *scope) (algebra.Op, error) {
	switch b := body.(type) {
	case *sql.SelectCore:
		return a.analyzeCore(b, outer, nil)
	case *sql.SetOpBody:
		left, err := a.analyzeBody(b.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := a.analyzeBody(b.Right, outer)
		if err != nil {
			return nil, err
		}
		ls, rs := left.Schema(), right.Schema()
		if len(ls) != len(rs) {
			return nil, fmt.Errorf("each %s branch must have the same number of columns (%d vs %d)",
				b.Op, len(ls), len(rs))
		}
		var kind algebra.SetOpKind
		switch b.Op {
		case sql.Union:
			kind = algebra.UnionDistinct
			if b.All {
				kind = algebra.UnionAll
			}
		case sql.Intersect:
			kind = algebra.IntersectDistinct
			if b.All {
				kind = algebra.IntersectAll
			}
		case sql.Except:
			kind = algebra.ExceptDistinct
			if b.All {
				kind = algebra.ExceptAll
			}
		}
		return algebra.NewSetOp(kind, left, right), nil
	}
	return nil, fmt.Errorf("unknown query body %T", body)
}

// analyzeCore handles one SELECT block. When orderBy is non-nil the core
// also applies the ordering, resolving keys against the output columns first
// and falling back to the pre-projection scope via hidden sort columns
// (stripped after the sort).
func (a *Analyzer) analyzeCore(core *sql.SelectCore, outer *scope, orderBy []sql.OrderItem) (algebra.Op, error) {
	// FROM.
	var op algebra.Op
	if len(core.From) == 0 {
		op = &algebra.Values{Rows: [][]algebra.Expr{{}}, Sch: algebra.Schema{}}
	} else {
		var err error
		op, err = a.analyzeTableExpr(core.From[0], outer)
		if err != nil {
			return nil, err
		}
		for _, te := range core.From[1:] {
			right, err := a.analyzeTableExpr(te, outer)
			if err != nil {
				return nil, err
			}
			op = algebra.NewJoin(algebra.JoinCross, op, right, nil)
		}
	}
	sc := &scope{cols: op.Schema(), outer: outer}

	// WHERE.
	if core.Where != nil {
		cond, err := a.analyzeExpr(core.Where, sc, exprCtx{})
		if err != nil {
			return nil, fmt.Errorf("WHERE: %v", err)
		}
		if err := wantBool(cond, "WHERE"); err != nil {
			return nil, err
		}
		op = &algebra.Select{Input: op, Cond: cond}
	}

	// Detect aggregation.
	hasAgg := len(core.GroupBy) > 0 || core.Having != nil
	if !hasAgg {
		for _, item := range core.Items {
			if item.Expr != nil && containsAggCall(item.Expr) {
				hasAgg = true
				break
			}
		}
	}

	var exprs []algebra.Expr
	var names []string
	var provCols []algebra.Column // provenance metadata carried through projection
	postCtx := exprCtx{}          // context for resolving hidden ORDER BY keys

	if hasAgg {
		var err error
		op, exprs, names, provCols, postCtx, err = a.analyzeAggregation(core, op, sc)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		exprs, names, provCols, err = a.analyzeSelectList(core.Items, sc, exprCtx{allowAggs: false})
		if err != nil {
			return nil, err
		}
	}

	// Resolve ORDER BY keys in three tiers: positional / visible output
	// columns now; pre-projection (hidden) columns now; provenance columns
	// after the rewrite.
	type orderKey struct {
		expr     algebra.Expr // resolved over the final output layout
		hidden   int          // >= 0: index into hidden sort expressions
		deferred sql.Expr     // non-nil: resolve after the provenance rewrite
		desc     bool
	}
	var keys []orderKey
	var hiddenExprs []algebra.Expr
	nVisible := len(exprs)
	if len(orderBy) > 0 {
		visSch := make(algebra.Schema, nVisible)
		for i, e := range exprs {
			visSch[i] = algebra.Column{Name: names[i], Type: e.Type()}
			if provCols != nil && i < len(provCols) {
				visSch[i].Table = provCols[i].Table
			}
		}
		visScope := &scope{cols: visSch, outer: outer}
		for _, o := range orderBy {
			k := orderKey{hidden: -1, desc: o.Desc}
			if lit, ok := o.Expr.(*sql.Literal); ok && lit.Val.K == value.KindInt {
				pos := int(lit.Val.I)
				if pos < 1 || pos > nVisible {
					return nil, fmt.Errorf("ORDER BY position %d is out of range", pos)
				}
				k.expr = &algebra.ColIdx{Idx: pos - 1, Typ: visSch[pos-1].Type, Name: visSch[pos-1].Name}
			} else if e, err := a.analyzeExpr(o.Expr, visScope, exprCtx{}); err == nil {
				k.expr = e
			} else if he, err2 := a.analyzeExpr(o.Expr, sc, hiddenCtx(postCtx, hasAgg)); err2 == nil {
				if core.Distinct {
					return nil, fmt.Errorf("for SELECT DISTINCT, ORDER BY expressions must appear in the select list")
				}
				k.hidden = len(hiddenExprs)
				hiddenExprs = append(hiddenExprs, he)
			} else if core.Provenance && !a.StripProvenance {
				k.deferred = o.Expr
			} else {
				return nil, fmt.Errorf("ORDER BY: %v", err)
			}
			keys = append(keys, k)
		}
	}
	for i, he := range hiddenExprs {
		exprs = append(exprs, he)
		names = append(names, fmt.Sprintf("__sort_%d", i+1))
	}

	proj := algebra.NewProject(op, exprs, names)
	// Propagate provenance metadata for pass-through columns.
	for i := range proj.Sch {
		if provCols != nil && i < len(provCols) {
			proj.Sch[i].IsProv = provCols[i].IsProv
			proj.Sch[i].ProvRel = provCols[i].ProvRel
			proj.Sch[i].ProvAttr = provCols[i].ProvAttr
			proj.Sch[i].Table = provCols[i].Table
		}
	}
	op = proj

	if core.Distinct {
		op = &algebra.Distinct{Input: op}
	}

	if core.Provenance && !a.StripProvenance {
		if a.Rewrite == nil {
			return nil, fmt.Errorf("SELECT PROVENANCE is not available: no provenance rewriter configured")
		}
		rewritten, err := a.Rewrite(ProvRequest{Input: op, Contribution: core.Contribution})
		if err != nil {
			return nil, err
		}
		op = &algebra.ProvDone{Input: rewritten}
	}

	if len(keys) > 0 {
		outSch := op.Schema()
		outScope := &scope{cols: outSch, outer: outer}
		sortKeys := make([]algebra.SortKey, len(keys))
		for i, k := range keys {
			switch {
			case k.deferred != nil:
				e, err := a.analyzeExpr(k.deferred, outScope, exprCtx{})
				if err != nil {
					return nil, fmt.Errorf("ORDER BY: %v", err)
				}
				sortKeys[i] = algebra.SortKey{Expr: e, Desc: k.desc}
			case k.hidden >= 0:
				idx := nVisible + k.hidden
				sortKeys[i] = algebra.SortKey{
					Expr: &algebra.ColIdx{Idx: idx, Typ: outSch[idx].Type, Name: outSch[idx].Name},
					Desc: k.desc,
				}
			default:
				sortKeys[i] = algebra.SortKey{Expr: k.expr, Desc: k.desc}
			}
		}
		op = &algebra.Sort{Input: op, Keys: sortKeys}
	}

	// Strip hidden sort columns, keeping visible columns and (post-rewrite)
	// provenance columns.
	if len(hiddenExprs) > 0 {
		sch := op.Schema()
		var keep []int
		for i := range sch {
			if i < nVisible || sch[i].IsProv {
				keep = append(keep, i)
			}
		}
		stripExprs := make([]algebra.Expr, len(keep))
		stripNames := make([]string, len(keep))
		for j, i := range keep {
			stripExprs[j] = &algebra.ColIdx{Idx: i, Typ: sch[i].Type, Name: sch[i].Name}
			stripNames[j] = sch[i].Name
		}
		strip := algebra.NewProject(op, stripExprs, stripNames)
		for j, i := range keep {
			strip.Sch[j] = sch[i]
		}
		op = strip
	}
	return op, nil
}

// hiddenCtx prepares the expression context for hidden ORDER BY keys: in
// aggregate queries keys resolve against the aggregation output (frozen —
// no new aggregates may be introduced at this point).
func hiddenCtx(postCtx exprCtx, hasAgg bool) exprCtx {
	if !hasAgg {
		return exprCtx{}
	}
	ctx := postCtx
	ctx.allowAggs = true
	if ctx.aggs != nil {
		ctx.aggs.frozen = true
	}
	return ctx
}

// wantBool checks a predicate's type.
func wantBool(e algebra.Expr, clause string) error {
	if t := e.Type(); t != value.KindBool && t != value.KindNull {
		return fmt.Errorf("%s condition must be boolean, got %s", clause, t)
	}
	return nil
}

// analyzeSelectList expands stars and analyzes each item. It returns the
// projection expressions, output names, and per-output provenance metadata
// (for pass-through column references).
func (a *Analyzer) analyzeSelectList(items []sql.SelectItem, sc *scope, ctx exprCtx) ([]algebra.Expr, []string, []algebra.Column, error) {
	var exprs []algebra.Expr
	var names []string
	var meta []algebra.Column
	for _, item := range items {
		if item.Star {
			matched := false
			for i, c := range sc.cols {
				if item.TableStar != "" && !strings.EqualFold(c.Table, item.TableStar) {
					continue
				}
				matched = true
				exprs = append(exprs, &algebra.ColIdx{Idx: i, Typ: c.Type, Name: c.Name})
				names = append(names, c.Name)
				meta = append(meta, c)
			}
			if !matched {
				if item.TableStar != "" {
					return nil, nil, nil, fmt.Errorf("relation %q in star expansion not found", item.TableStar)
				}
				return nil, nil, nil, fmt.Errorf("SELECT * with no FROM columns")
			}
			continue
		}
		e, err := a.analyzeExpr(item.Expr, sc, withAggs(ctx))
		if err != nil {
			return nil, nil, nil, err
		}
		exprs = append(exprs, e)
		name := item.Alias
		var m algebra.Column
		if cr, ok := item.Expr.(*sql.ColRef); ok {
			if name == "" {
				name = cr.Name
			}
			// Pass-through column: carry qualifier + provenance metadata.
			if ci, ok := e.(*algebra.ColIdx); ok && ci.Idx < len(sc.cols) {
				m = sc.cols[ci.Idx]
				if item.Alias != "" {
					m.Name = item.Alias
				}
			}
		}
		if name == "" {
			name = deriveName(item.Expr)
		}
		m.Name = name
		m.Type = e.Type()
		names = append(names, name)
		meta = append(meta, m)
	}
	return exprs, names, meta, nil
}

func withAggs(ctx exprCtx) exprCtx {
	ctx.allowAggs = ctx.aggMode
	return ctx
}

// deriveName picks an output column name for an unaliased expression.
func deriveName(e sql.Expr) string {
	switch x := e.(type) {
	case *sql.ColRef:
		return x.Name
	case *sql.FuncCall:
		return x.Name
	case *sql.CaseExpr:
		return "case"
	case *sql.CastExpr:
		return deriveName(x.E)
	case *sql.SubqueryExpr:
		return "subquery"
	}
	return "column"
}

// containsAggCall reports whether the AST expression contains an aggregate
// function call (not inside a nested subquery).
func containsAggCall(e sql.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sql.FuncCall:
		if isAggName(x.Name) {
			return true
		}
		for _, arg := range x.Args {
			if containsAggCall(arg) {
				return true
			}
		}
		return false
	case *sql.BinExpr:
		return containsAggCall(x.L) || containsAggCall(x.R)
	case *sql.UnaryExpr:
		return containsAggCall(x.E)
	case *sql.IsNullExpr:
		return containsAggCall(x.E)
	case *sql.CaseExpr:
		if containsAggCall(x.Operand) || containsAggCall(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if containsAggCall(w.Cond) || containsAggCall(w.Result) {
				return true
			}
		}
		return false
	case *sql.InExpr:
		if containsAggCall(x.E) {
			return true
		}
		for _, it := range x.List {
			if containsAggCall(it) {
				return true
			}
		}
		return false
	case *sql.BetweenExpr:
		return containsAggCall(x.E) || containsAggCall(x.Lo) || containsAggCall(x.Hi)
	case *sql.QuantifiedExpr:
		return containsAggCall(x.E)
	case *sql.LikeExpr:
		return containsAggCall(x.E) || containsAggCall(x.Pattern)
	case *sql.CastExpr:
		return containsAggCall(x.E)
	}
	return false
}

func isAggName(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// analyzeAggregation builds the Agg node and returns the post-aggregation
// projection pieces plus the expression context (for late ORDER BY keys).
func (a *Analyzer) analyzeAggregation(core *sql.SelectCore, input algebra.Op, sc *scope) (algebra.Op, []algebra.Expr, []string, []algebra.Column, exprCtx, error) {
	groupKeys := make(map[string]int)
	var groupExprs []algebra.Expr
	var groupNames []string
	var groupMeta []algebra.Column
	for _, ge := range core.GroupBy {
		// GROUP BY may reference select-list aliases or positions.
		resolved := ge
		if lit, ok := ge.(*sql.Literal); ok && lit.Val.K == value.KindInt {
			pos := int(lit.Val.I)
			if pos < 1 || pos > len(core.Items) || core.Items[pos-1].Star {
				return nil, nil, nil, nil, exprCtx{}, fmt.Errorf("GROUP BY position %d is not a valid select item", pos)
			}
			resolved = core.Items[pos-1].Expr
		} else if cr, ok := ge.(*sql.ColRef); ok && cr.Table == "" {
			// Try alias resolution when the bare name is not an input column.
			if _, _, err := sc.resolve("", cr.Name); err != nil {
				for _, item := range core.Items {
					if item.Alias != "" && strings.EqualFold(item.Alias, cr.Name) {
						resolved = item.Expr
						break
					}
				}
			}
		}
		e, err := a.analyzeExpr(resolved, sc, exprCtx{})
		if err != nil {
			return nil, nil, nil, nil, exprCtx{}, fmt.Errorf("GROUP BY: %v", err)
		}
		if containsAggExpr(e) {
			return nil, nil, nil, nil, exprCtx{}, fmt.Errorf("aggregate functions are not allowed in GROUP BY")
		}
		key := e.String()
		if _, dup := groupKeys[key]; dup {
			continue
		}
		groupKeys[key] = len(groupExprs)
		groupExprs = append(groupExprs, e)
		var m algebra.Column
		name := fmt.Sprintf("g%d", len(groupExprs))
		if ci, ok := e.(*algebra.ColIdx); ok && ci.Idx < len(sc.cols) {
			m = sc.cols[ci.Idx]
			name = m.Name
		}
		groupNames = append(groupNames, name)
		m.Name = name
		m.Type = e.Type()
		groupMeta = append(groupMeta, m)
	}

	aggs := &aggCollector{keys: make(map[string]int)}
	ctx := exprCtx{
		aggMode:     true,
		groupKeys:   groupKeys,
		aggs:        aggs,
		groupCount:  len(groupExprs),
		preAggScope: sc,
		allowAggs:   true,
	}

	// Pre-pass: analyze select items and HAVING once to collect aggregates,
	// then build the Agg node, then the collected indices are stable.
	exprs, names, _, err := a.analyzeSelectList(core.Items, sc, ctx)
	if err != nil {
		return nil, nil, nil, nil, exprCtx{}, err
	}
	var having algebra.Expr
	if core.Having != nil {
		having, err = a.analyzeExpr(core.Having, sc, ctx)
		if err != nil {
			return nil, nil, nil, nil, exprCtx{}, fmt.Errorf("HAVING: %v", err)
		}
		if err := wantBool(having, "HAVING"); err != nil {
			return nil, nil, nil, nil, exprCtx{}, err
		}
	}

	aggNames := make([]string, len(aggs.exprs))
	for i, ae := range aggs.exprs {
		aggNames[i] = string(ae.Func)
	}
	aggOp := algebra.NewAgg(input, groupExprs, aggs.exprs, groupNames, aggNames)
	// Carry qualifiers onto group output columns so HAVING/ORDER BY can
	// resolve qualified names.
	for i := range groupMeta {
		aggOp.Sch[i].Table = groupMeta[i].Table
		aggOp.Sch[i].IsProv = groupMeta[i].IsProv
		aggOp.Sch[i].ProvRel = groupMeta[i].ProvRel
		aggOp.Sch[i].ProvAttr = groupMeta[i].ProvAttr
	}

	var op algebra.Op = aggOp
	if having != nil {
		op = &algebra.Select{Input: op, Cond: having}
	}

	// Output metadata: group columns keep provenance/qualifier info.
	meta := make([]algebra.Column, len(exprs))
	for i, e := range exprs {
		var m algebra.Column
		if ci, ok := e.(*algebra.ColIdx); ok && ci.Idx < len(aggOp.Sch) {
			m = aggOp.Sch[ci.Idx]
		}
		m.Name = names[i]
		m.Type = e.Type()
		meta[i] = m
	}
	return op, exprs, names, meta, ctx, nil
}

// containsAggExpr reports whether a resolved expression contains an Agg
// output reference; group expressions must not.
func containsAggExpr(e algebra.Expr) bool {
	// Aggregates are resolved to ColIdx during analysis, so a resolved group
	// expression can only contain them if analysis placed them — which it
	// refuses; this remains as a defense for direct construction.
	return false
}

// --- FROM items -----------------------------------------------------------------

func (a *Analyzer) analyzeTableExpr(te sql.TableExpr, outer *scope) (algebra.Op, error) {
	switch t := te.(type) {
	case *sql.TableRef:
		return a.analyzeTableRef(t, outer)
	case *sql.SubqueryRef:
		alias := t.Alias
		if alias == "" {
			alias = "subquery"
		}
		sub, err := a.analyzeSelect(t.Select, outer)
		if err != nil {
			return nil, err
		}
		op := relabel(sub, alias)
		return a.applyProvSpec(op, alias, t.Prov)
	case *sql.JoinExpr:
		left, err := a.analyzeTableExpr(t.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := a.analyzeTableExpr(t.Right, outer)
		if err != nil {
			return nil, err
		}
		var kind algebra.JoinKind
		switch t.Kind {
		case sql.InnerJoin:
			kind = algebra.JoinInner
		case sql.LeftJoin:
			kind = algebra.JoinLeft
		case sql.RightJoin:
			kind = algebra.JoinRight
		case sql.FullJoin:
			kind = algebra.JoinFull
		case sql.CrossJoin:
			kind = algebra.JoinCross
		}
		join := algebra.NewJoin(kind, left, right, nil)
		if len(t.Using) > 0 {
			ls, rs := left.Schema(), right.Schema()
			var conds []algebra.Expr
			for _, u := range t.Using {
				li := indexOf(ls, u)
				ri := indexOf(rs, u)
				if li < 0 || ri < 0 {
					return nil, fmt.Errorf("USING column %q must exist on both join sides", u)
				}
				conds = append(conds, &algebra.Bin{
					Op: sql.OpEq,
					L:  &algebra.ColIdx{Idx: li, Typ: ls[li].Type, Name: ls[li].Name},
					R:  &algebra.ColIdx{Idx: len(ls) + ri, Typ: rs[ri].Type, Name: rs[ri].Name},
				})
			}
			join.Cond = algebra.AndAll(conds)
		} else if t.On != nil {
			sc := &scope{cols: join.Sch, outer: outer}
			cond, err := a.analyzeExpr(t.On, sc, exprCtx{})
			if err != nil {
				return nil, fmt.Errorf("JOIN ON: %v", err)
			}
			if err := wantBool(cond, "JOIN ON"); err != nil {
				return nil, err
			}
			join.Cond = cond
		} else if kind != algebra.JoinCross {
			return nil, fmt.Errorf("JOIN requires an ON or USING clause")
		}
		return join, nil
	}
	return nil, fmt.Errorf("unknown FROM item %T", te)
}

func indexOf(sch algebra.Schema, name string) int {
	for i, c := range sch {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

func (a *Analyzer) analyzeTableRef(t *sql.TableRef, outer *scope) (algebra.Op, error) {
	alias := t.Alias
	if alias == "" {
		alias = t.Name
	}
	if def := a.Catalog.Table(t.Name); def != nil {
		sch := make(algebra.Schema, len(def.Columns))
		for i, c := range def.Columns {
			sch[i] = algebra.Column{Name: c.Name, Table: alias, Type: c.Type}
		}
		var op algebra.Op = &algebra.Scan{Table: def.Name, Alias: alias, Sch: sch}
		return a.applyProvSpec(op, alias, t.Prov)
	}
	if view := a.Catalog.View(t.Name); view != nil {
		if a.viewDepth >= maxViewDepth {
			return nil, fmt.Errorf("view nesting exceeds %d levels (recursive view %q?)", maxViewDepth, t.Name)
		}
		st, err := sql.Parse(view.Text)
		if err != nil {
			return nil, fmt.Errorf("stored view %q is invalid: %v", view.Name, err)
		}
		sel, ok := st.(*sql.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("stored view %q is not a query", view.Name)
		}
		a.viewDepth++
		sub, err := a.analyzeSelect(sel, nil)
		a.viewDepth--
		if err != nil {
			return nil, fmt.Errorf("view %q: %v", view.Name, err)
		}
		op := relabel(sub, alias)
		return a.applyProvSpec(op, alias, t.Prov)
	}
	return nil, fmt.Errorf("relation %q does not exist", t.Name)
}

// applyProvSpec applies SQL-PLE FROM-item annotations.
func (a *Analyzer) applyProvSpec(op algebra.Op, alias string, spec sql.ProvSpec) (algebra.Op, error) {
	if spec.HasProvAttrs {
		sch := op.Schema()
		flag := make(map[int]bool)
		for _, attr := range spec.ProvAttrs {
			idx := indexOf(sch, attr)
			if idx < 0 {
				return nil, fmt.Errorf("PROVENANCE attribute %q does not exist in %q", attr, alias)
			}
			flag[idx] = true
		}
		// Re-label the flagged columns as external provenance attributes and
		// mark the item as provenance-complete so the rewriter stops here.
		proj := algebra.NewProject(op, algebra.IdentityExprs(sch), sch.Names())
		for i := range proj.Sch {
			proj.Sch[i] = sch[i]
			if flag[i] {
				proj.Sch[i].IsProv = true
				proj.Sch[i].ProvRel = alias
				proj.Sch[i].ProvAttr = sch[i].Name
			}
		}
		op = &algebra.ProvDone{Input: proj}
	}
	if spec.BaseRelation {
		op = &algebra.BaseRel{Input: op, RelName: alias}
	}
	return op, nil
}

// relabel wraps op in an identity projection that re-qualifies every output
// column with the given correlation name, preserving provenance metadata.
func relabel(op algebra.Op, alias string) algebra.Op {
	sch := op.Schema()
	proj := algebra.NewProject(op, algebra.IdentityExprs(sch), sch.Names())
	for i := range proj.Sch {
		proj.Sch[i] = sch[i]
		proj.Sch[i].Table = alias
	}
	return proj
}

// --- expressions ------------------------------------------------------------------

func (a *Analyzer) analyzeExpr(e sql.Expr, sc *scope, ctx exprCtx) (algebra.Expr, error) {
	// In aggregation mode, a whole sub-expression that matches a group
	// expression resolves to the Agg output column.
	if ctx.aggMode && ctx.preAggScope != nil {
		if resolved, ok := a.tryGroupMatch(e, sc, ctx); ok {
			return resolved, nil
		}
	}
	switch x := e.(type) {
	case *sql.Literal:
		return &algebra.Const{Val: x.Val}, nil
	case *sql.Placeholder:
		if x.Index < 0 || x.Index >= len(a.Params) {
			return nil, fmt.Errorf("parameter $%d requires a bound value (%d bound)", x.Index+1, len(a.Params))
		}
		return &algebra.Param{Index: x.Index, Typ: a.Params[x.Index]}, nil
	case *sql.ColRef:
		if ctx.aggMode {
			return nil, fmt.Errorf("column %q must appear in the GROUP BY clause or be used in an aggregate function",
				refName(x.Table, x.Name))
		}
		idx, isOuter, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		var col algebra.Column
		if isOuter {
			col = sc.outer.cols[idx]
			return &algebra.OuterRef{Idx: idx, Typ: col.Type, Name: col.Name}, nil
		}
		col = sc.cols[idx]
		return &algebra.ColIdx{Idx: idx, Typ: col.Type, Name: col.Name}, nil
	case *sql.BinExpr:
		l, err := a.analyzeExpr(x.L, sc, ctx)
		if err != nil {
			return nil, err
		}
		r, err := a.analyzeExpr(x.R, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Bin{Op: x.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		inner, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			return &algebra.Not{E: inner}, nil
		case "-":
			return &algebra.Neg{E: inner}, nil
		default:
			return inner, nil
		}
	case *sql.IsNullExpr:
		inner, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.IsNull{E: inner, Not: x.Not}, nil
	case *sql.FuncCall:
		return a.analyzeFunc(x, sc, ctx)
	case *sql.CaseExpr:
		return a.analyzeCase(x, sc, ctx)
	case *sql.InExpr:
		if x.Subquery != nil {
			plan, correlated, err := a.analyzeSubquery(x.Subquery, sc)
			if err != nil {
				return nil, err
			}
			if len(plan.Schema()) != 1 {
				return nil, fmt.Errorf("IN subquery must return exactly one column")
			}
			needle, err := a.analyzeExpr(x.E, sc, ctx)
			if err != nil {
				return nil, err
			}
			return &algebra.Subplan{Mode: algebra.InSubplan, Plan: plan, Needle: needle,
				Neg: x.Not, Correlated: correlated}, nil
		}
		inner, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		list := make([]algebra.Expr, len(x.List))
		for i, it := range x.List {
			le, err := a.analyzeExpr(it, sc, ctx)
			if err != nil {
				return nil, err
			}
			list[i] = le
		}
		return &algebra.InList{E: inner, List: list, Neg: x.Not}, nil
	case *sql.ExistsExpr:
		plan, correlated, err := a.analyzeSubquery(x.Subquery, sc)
		if err != nil {
			return nil, err
		}
		return &algebra.Subplan{Mode: algebra.ExistsSubplan, Plan: plan, Neg: x.Not,
			Correlated: correlated}, nil
	case *sql.SubqueryExpr:
		plan, correlated, err := a.analyzeSubquery(x.Select, sc)
		if err != nil {
			return nil, err
		}
		if len(plan.Schema()) != 1 {
			return nil, fmt.Errorf("scalar subquery must return exactly one column")
		}
		return &algebra.Subplan{Mode: algebra.ScalarSubplan, Plan: plan, Correlated: correlated}, nil
	case *sql.QuantifiedExpr:
		plan, correlated, err := a.analyzeSubquery(x.Subquery, sc)
		if err != nil {
			return nil, err
		}
		if len(plan.Schema()) != 1 {
			return nil, fmt.Errorf("quantified subquery must return exactly one column")
		}
		needle, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		// = ANY is IN; <> ALL is NOT IN — reuse the IN machinery (and its
		// provenance de-correlation).
		if x.Op == sql.OpEq && !x.All {
			return &algebra.Subplan{Mode: algebra.InSubplan, Plan: plan,
				Needle: needle, Correlated: correlated}, nil
		}
		if x.Op == sql.OpNeq && x.All {
			return &algebra.Subplan{Mode: algebra.InSubplan, Plan: plan,
				Needle: needle, Neg: true, Correlated: correlated}, nil
		}
		mode := algebra.AnySubplan
		if x.All {
			mode = algebra.AllSubplan
		}
		return &algebra.Subplan{Mode: mode, Plan: plan, Needle: needle,
			CmpOp: x.Op, Correlated: correlated}, nil
	case *sql.BetweenExpr:
		inner, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		lo, err := a.analyzeExpr(x.Lo, sc, ctx)
		if err != nil {
			return nil, err
		}
		hi, err := a.analyzeExpr(x.Hi, sc, ctx)
		if err != nil {
			return nil, err
		}
		rng := &algebra.Bin{Op: sql.OpAnd,
			L: &algebra.Bin{Op: sql.OpGte, L: inner, R: lo},
			R: &algebra.Bin{Op: sql.OpLte, L: inner, R: hi}}
		if x.Not {
			return &algebra.Not{E: rng}, nil
		}
		return rng, nil
	case *sql.LikeExpr:
		inner, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		pat, err := a.analyzeExpr(x.Pattern, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Like{E: inner, Pattern: pat, Neg: x.Not}, nil
	case *sql.CastExpr:
		inner, err := a.analyzeExpr(x.E, sc, ctx)
		if err != nil {
			return nil, err
		}
		kind, err := value.KindFromTypeName(x.TypeName)
		if err != nil {
			return nil, err
		}
		return &algebra.Cast{E: inner, To: kind}, nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// tryGroupMatch resolves a post-aggregation expression that structurally
// equals a GROUP BY expression, or an aggregate call, to its Agg output.
func (a *Analyzer) tryGroupMatch(e sql.Expr, sc *scope, ctx exprCtx) (algebra.Expr, bool) {
	// Aggregate call?
	if fc, ok := e.(*sql.FuncCall); ok && isAggName(fc.Name) {
		ae, err := a.buildAggExpr(fc, ctx.preAggScope)
		if err != nil {
			return nil, false
		}
		idx := ctx.aggs.add(ae)
		if idx < 0 {
			return nil, false
		}
		return &algebra.ColIdx{Idx: ctx.groupCount + idx, Typ: ae.Type(), Name: string(ae.Func)}, true
	}
	// Group expression match: analyze over the pre-agg scope and compare.
	pre, err := a.analyzeExpr(e, ctx.preAggScope, exprCtx{})
	if err != nil {
		return nil, false
	}
	if idx, ok := ctx.groupKeys[pre.String()]; ok {
		name := ""
		if ci, ok2 := pre.(*algebra.ColIdx); ok2 {
			name = ci.Name
		}
		return &algebra.ColIdx{Idx: idx, Typ: pre.Type(), Name: name}, true
	}
	return nil, false
}

// buildAggExpr analyzes an aggregate call's argument over the pre-agg scope.
func (a *Analyzer) buildAggExpr(fc *sql.FuncCall, pre *scope) (algebra.AggExpr, error) {
	ae := algebra.AggExpr{Func: algebra.AggFunc(fc.Name), Distinct: fc.Distinct}
	if fc.Star {
		if fc.Name != "count" {
			return ae, fmt.Errorf("%s(*) is not a valid aggregate", fc.Name)
		}
		return ae, nil
	}
	if len(fc.Args) != 1 {
		return ae, fmt.Errorf("aggregate %s takes exactly one argument", fc.Name)
	}
	if containsAggCall(fc.Args[0]) {
		return ae, fmt.Errorf("aggregate calls cannot be nested")
	}
	arg, err := a.analyzeExpr(fc.Args[0], pre, exprCtx{})
	if err != nil {
		return ae, err
	}
	ae.Arg = arg
	return ae, nil
}

func (a *Analyzer) analyzeFunc(x *sql.FuncCall, sc *scope, ctx exprCtx) (algebra.Expr, error) {
	if isAggName(x.Name) {
		if !ctx.allowAggs {
			return nil, fmt.Errorf("aggregate function %s is not allowed here", x.Name)
		}
		if !ctx.aggMode {
			return nil, fmt.Errorf("internal: aggregate %s outside aggregation context", x.Name)
		}
		ae, err := a.buildAggExpr(x, ctx.preAggScope)
		if err != nil {
			return nil, err
		}
		idx := ctx.aggs.add(ae)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s must already appear in the select list or HAVING to be used here", x.Name)
		}
		return &algebra.ColIdx{Idx: ctx.groupCount + idx, Typ: ae.Type(), Name: string(ae.Func)}, nil
	}
	sig, ok := scalarFuncs[x.Name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", x.Name)
	}
	if x.Star || x.Distinct {
		return nil, fmt.Errorf("%q is not an aggregate function", x.Name)
	}
	if len(x.Args) < sig.minArgs || (sig.maxArgs >= 0 && len(x.Args) > sig.maxArgs) {
		return nil, fmt.Errorf("function %q expects %s arguments, got %d", x.Name, sig.arity(), len(x.Args))
	}
	args := make([]algebra.Expr, len(x.Args))
	for i, arg := range x.Args {
		ae, err := a.analyzeExpr(arg, sc, ctx)
		if err != nil {
			return nil, err
		}
		args[i] = ae
	}
	return &algebra.Func{Name: x.Name, Args: args, Typ: sig.result(args)}, nil
}

func (a *Analyzer) analyzeCase(x *sql.CaseExpr, sc *scope, ctx exprCtx) (algebra.Expr, error) {
	// Operand form desugars to searched form: CASE x WHEN v ... ->
	// CASE WHEN x = v ...
	whens := make([]algebra.CaseWhen, 0, len(x.Whens))
	var operand algebra.Expr
	if x.Operand != nil {
		op, err := a.analyzeExpr(x.Operand, sc, ctx)
		if err != nil {
			return nil, err
		}
		operand = op
	}
	resultKind := value.KindNull
	for _, w := range x.Whens {
		cond, err := a.analyzeExpr(w.Cond, sc, ctx)
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = &algebra.Bin{Op: sql.OpEq, L: operand, R: cond}
		}
		res, err := a.analyzeExpr(w.Result, sc, ctx)
		if err != nil {
			return nil, err
		}
		resultKind = value.CommonKind(resultKind, res.Type())
		whens = append(whens, algebra.CaseWhen{Cond: cond, Result: res})
	}
	var elseE algebra.Expr
	if x.Else != nil {
		e2, err := a.analyzeExpr(x.Else, sc, ctx)
		if err != nil {
			return nil, err
		}
		elseE = e2
		resultKind = value.CommonKind(resultKind, e2.Type())
	}
	return &algebra.Case{Whens: whens, Else: elseE, Typ: resultKind}, nil
}

// analyzeSubquery analyzes a nested query with the current scope as its
// outer environment and reports whether it is correlated.
func (a *Analyzer) analyzeSubquery(st *sql.SelectStmt, sc *scope) (algebra.Op, bool, error) {
	plan, err := a.analyzeSelect(st, sc)
	if err != nil {
		return nil, false, err
	}
	correlated := false
	algebra.Walk(plan, func(op algebra.Op) {
		checkExprs(op, func(e algebra.Expr) {
			walkForOuter(e, &correlated)
		})
	})
	return plan, correlated, nil
}

// checkExprs visits the top-level expressions of an operator.
func checkExprs(op algebra.Op, fn func(algebra.Expr)) {
	switch o := op.(type) {
	case *algebra.Project:
		for _, e := range o.Exprs {
			fn(e)
		}
	case *algebra.Select:
		fn(o.Cond)
	case *algebra.Join:
		if o.Cond != nil {
			fn(o.Cond)
		}
	case *algebra.Agg:
		for _, g := range o.GroupBy {
			fn(g)
		}
		for _, ae := range o.Aggs {
			if ae.Arg != nil {
				fn(ae.Arg)
			}
		}
	case *algebra.Sort:
		for _, k := range o.Keys {
			fn(k.Expr)
		}
	case *algebra.Values:
		for _, row := range o.Rows {
			for _, e := range row {
				fn(e)
			}
		}
	}
}

func walkForOuter(e algebra.Expr, found *bool) {
	if e == nil || *found {
		return
	}
	switch x := e.(type) {
	case *algebra.OuterRef:
		*found = true
	case *algebra.Bin:
		walkForOuter(x.L, found)
		walkForOuter(x.R, found)
	case *algebra.Not:
		walkForOuter(x.E, found)
	case *algebra.Neg:
		walkForOuter(x.E, found)
	case *algebra.IsNull:
		walkForOuter(x.E, found)
	case *algebra.Func:
		for _, arg := range x.Args {
			walkForOuter(arg, found)
		}
	case *algebra.Case:
		for _, w := range x.Whens {
			walkForOuter(w.Cond, found)
			walkForOuter(w.Result, found)
		}
		walkForOuter(x.Else, found)
	case *algebra.InList:
		walkForOuter(x.E, found)
		for _, it := range x.List {
			walkForOuter(it, found)
		}
	case *algebra.Like:
		walkForOuter(x.E, found)
		walkForOuter(x.Pattern, found)
	case *algebra.Cast:
		walkForOuter(x.E, found)
	case *algebra.Subplan:
		walkForOuter(x.Needle, found)
		algebra.Walk(x.Plan, func(op algebra.Op) {
			checkExprs(op, func(e2 algebra.Expr) { walkForOuter(e2, found) })
		})
	}
}

// --- scalar function signatures ----------------------------------------------------

type funcSig struct {
	minArgs int
	maxArgs int // -1 = variadic
	kind    func(args []algebra.Expr) value.Kind
}

func (s funcSig) arity() string {
	if s.maxArgs < 0 {
		return fmt.Sprintf("at least %d", s.minArgs)
	}
	if s.minArgs == s.maxArgs {
		return fmt.Sprintf("%d", s.minArgs)
	}
	return fmt.Sprintf("%d to %d", s.minArgs, s.maxArgs)
}

func (s funcSig) result(args []algebra.Expr) value.Kind { return s.kind(args) }

func fixed(k value.Kind) func([]algebra.Expr) value.Kind {
	return func([]algebra.Expr) value.Kind { return k }
}

func sameAsFirst(args []algebra.Expr) value.Kind {
	if len(args) > 0 {
		return args[0].Type()
	}
	return value.KindNull
}

func commonOfAll(args []algebra.Expr) value.Kind {
	k := value.KindNull
	for _, a := range args {
		k = value.CommonKind(k, a.Type())
	}
	return k
}

// scalarFuncs is the function registry shared with the executor's evaluator.
var scalarFuncs = map[string]funcSig{
	"upper":     {1, 1, fixed(value.KindString)},
	"lower":     {1, 1, fixed(value.KindString)},
	"length":    {1, 1, fixed(value.KindInt)},
	"abs":       {1, 1, sameAsFirst},
	"coalesce":  {1, -1, commonOfAll},
	"nullif":    {2, 2, sameAsFirst},
	"substr":    {2, 3, fixed(value.KindString)},
	"substring": {2, 3, fixed(value.KindString)},
	"trim":      {1, 1, fixed(value.KindString)},
	"ltrim":     {1, 1, fixed(value.KindString)},
	"rtrim":     {1, 1, fixed(value.KindString)},
	"replace":   {3, 3, fixed(value.KindString)},
	"concat":    {1, -1, fixed(value.KindString)},
	"round":     {1, 2, fixed(value.KindFloat)},
	"floor":     {1, 1, fixed(value.KindFloat)},
	"ceil":      {1, 1, fixed(value.KindFloat)},
	"ceiling":   {1, 1, fixed(value.KindFloat)},
	"sqrt":      {1, 1, fixed(value.KindFloat)},
	"power":     {2, 2, fixed(value.KindFloat)},
	"mod":       {2, 2, fixed(value.KindInt)},
	"greatest":  {1, -1, commonOfAll},
	"least":     {1, -1, commonOfAll},
	"strpos":    {2, 2, fixed(value.KindInt)},
}

// IsScalarFunc reports whether name is a known scalar function (used by the
// executor to validate plans built directly).
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[name]
	return ok
}
