package analyzer

import (
	"strings"
	"testing"
)

// errors_test.go sweeps the analyzer's user-facing error paths: every case
// is a distinct misuse with a distinct diagnostic.
func TestAnalyzerErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		q    string
		want string
	}{
		{"unknown relation", `SELECT 1 FROM nope`, "does not exist"},
		{"unknown column", `SELECT nope FROM t`, "does not exist"},
		{"unknown qualified", `SELECT t.nope FROM t`, "does not exist"},
		{"ambiguous", `SELECT a FROM t, u`, "ambiguous"},
		{"where not boolean", `SELECT a FROM t WHERE a`, "boolean"},
		{"having not boolean", `SELECT count(*) FROM t HAVING a + 1`, "GROUP BY"},
		{"join on not boolean", `SELECT 1 FROM t JOIN u ON t.a + u.a`, "boolean"},
		{"union arity", `SELECT a, b FROM t UNION SELECT a FROM u`, "same number of columns"},
		{"group position", `SELECT b FROM t GROUP BY 9`, "position"},
		{"order position", `SELECT a FROM t ORDER BY 9`, "position"},
		{"limit non-const", `SELECT a FROM t LIMIT b`, "constant"},
		{"offset non-const", `SELECT a FROM t OFFSET b`, "constant"},
		{"agg in where", `SELECT a FROM t WHERE sum(a) > 1`, "not allowed"},
		{"nested agg", `SELECT sum(count(*)) FROM t`, "nested"},
		{"agg arity", `SELECT sum(a, a) FROM t`, "one argument"},
		{"star agg", `SELECT sum(*) FROM t`, "not a valid aggregate"},
		{"unknown function", `SELECT frobnicate(a) FROM t`, "unknown function"},
		{"function arity", `SELECT substr(b) FROM t`, "arguments"},
		{"distinct scalar func", `SELECT upper(DISTINCT b) FROM t`, "not an aggregate"},
		{"scalar columns", `SELECT a FROM t WHERE a = (SELECT a, c FROM u)`, "one column"},
		{"in subquery columns", `SELECT a FROM t WHERE a IN (SELECT a, c FROM u)`, "one column"},
		{"quantified columns", `SELECT a FROM t WHERE a > ANY (SELECT a, c FROM u)`, "one column"},
		{"using missing", `SELECT 1 FROM t JOIN u USING (b)`, "both join sides"},
		{"star unknown rel", `SELECT w.* FROM t`, "not found"},
		{"bad cast type", `SELECT CAST(a AS blob) FROM t`, "unknown type"},
		{"distinct order", `SELECT DISTINCT b FROM t ORDER BY a`, "DISTINCT"},
		{"prov attr missing", `SELECT a FROM t PROVENANCE (zz)`, "does not exist"},
		{"bare column with agg", `SELECT a, count(*) FROM t`, "GROUP BY"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := analyze(t, c.q)
			if err == nil {
				t.Fatalf("analyze(%q) must fail", c.q)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("analyze(%q) error = %q, want containing %q", c.q, err, c.want)
			}
		})
	}
}

// TestQuantifiedAnalysis covers the quantified-comparison resolutions.
func TestQuantifiedAnalysis(t *testing.T) {
	// = ANY lowers to an IN subplan; <> ALL to NOT IN; others keep CmpOp.
	for _, q := range []string{
		`SELECT a FROM t WHERE a = ANY (SELECT a FROM u)`,
		`SELECT a FROM t WHERE a <> ALL (SELECT a FROM u)`,
		`SELECT a FROM t WHERE a >= SOME (SELECT a FROM u)`,
		`SELECT a FROM t WHERE a < ALL (SELECT a FROM u)`,
	} {
		if _, err := analyze(t, q); err != nil {
			t.Errorf("analyze(%q): %v", q, err)
		}
	}
}
