package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "boolean", KindInt: "integer",
		KindFloat: "float", KindString: "text",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromTypeName(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "bigint": KindInt,
		"float": KindFloat, "double precision": KindFloat, "numeric": KindFloat,
		"text": KindString, "VARCHAR": KindString,
		"bool": KindBool, "boolean": KindBool,
	}
	for name, want := range cases {
		got, err := KindFromTypeName(name)
		if err != nil || got != want {
			t.Errorf("KindFromTypeName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromTypeName("blob"); err == nil {
		t.Error("KindFromTypeName(blob) should fail")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Error("zero Value must be NULL")
	}
	if NullRow(3)[2].K != KindNull {
		t.Error("NullRow must produce NULLs")
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	c, err := Compare(NewInt(2), NewFloat(2.0))
	if err != nil || c != 0 {
		t.Errorf("2 vs 2.0 = %d, %v; want 0", c, err)
	}
	c, _ = Compare(NewInt(2), NewFloat(2.5))
	if c != -1 {
		t.Errorf("2 vs 2.5 = %d, want -1", c)
	}
	c, _ = Compare(NewFloat(3.5), NewInt(3))
	if c != 1 {
		t.Errorf("3.5 vs 3 = %d, want 1", c)
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(NewInt(1), NewString("1")); err == nil {
		t.Error("int vs string must not compare")
	}
	if _, err := Compare(NewBool(true), NewInt(1)); err == nil {
		t.Error("bool vs int must not compare")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if c, _ := Compare(NewString("a"), NewString("b")); c != -1 {
		t.Errorf("a vs b = %d", c)
	}
	if c, _ := Compare(NewBool(false), NewBool(true)); c != -1 {
		t.Errorf("false vs true = %d", c)
	}
	if c, _ := Compare(NewBool(true), NewBool(true)); c != 0 {
		t.Errorf("true vs true = %d", c)
	}
}

func TestCompareTotalNullsFirst(t *testing.T) {
	if CompareTotal(Null, NewInt(-999)) != -1 {
		t.Error("NULL must order before any value")
	}
	if CompareTotal(NewString(""), Null) != 1 {
		t.Error("any value must order after NULL")
	}
	if CompareTotal(Null, Null) != 0 {
		t.Error("NULL equals NULL in total order")
	}
}

func TestDistinct(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null, Null, false},
		{Null, NewInt(0), true},
		{NewInt(0), Null, true},
		{NewInt(1), NewInt(1), false},
		{NewInt(1), NewFloat(1.0), false},
		{NewInt(1), NewInt(2), true},
		{NewString("x"), NewString("x"), false},
	}
	for _, c := range cases {
		if got := Distinct(c.a, c.b); got != c.want {
			t.Errorf("Distinct(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullIsFalse(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("Equal(NULL, NULL) must be false (SQL =)")
	}
	if Equal(NewInt(1), Null) {
		t.Error("Equal(1, NULL) must be false")
	}
}

// TestKeyConsistentWithDistinct is the core invariant behind every hash
// join, aggregation and DISTINCT: keys are equal iff values are not
// distinct.
func TestKeyConsistentWithDistinct(t *testing.T) {
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(0), NewInt(1), NewInt(-7), NewInt(42),
		NewFloat(0), NewFloat(1), NewFloat(1.5), NewFloat(-7),
		NewString(""), NewString("1"), NewString("a"), NewString("true"),
	}
	for _, a := range vals {
		for _, b := range vals {
			sameKey := a.Key() == b.Key()
			if sameKey == Distinct(a, b) {
				t.Errorf("Key consistency broken for %v vs %v (sameKey=%v distinct=%v)",
					a, b, sameKey, Distinct(a, b))
			}
			if sameKey && a.Hash() != b.Hash() {
				t.Errorf("equal keys but different hashes: %v vs %v", a, b)
			}
		}
	}
}

func TestQuickIntFloatKeyAgreement(t *testing.T) {
	// Int n and Float n must collide for all int values in float range.
	f := func(n int32) bool {
		a, b := NewInt(int64(n)), NewFloat(float64(n))
		return a.Key() == b.Key() && a.Hash() == b.Hash() && !Distinct(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		c1, err1 := Compare(NewInt(a), NewInt(b))
		c2, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTotalTransitivityOnMixed(t *testing.T) {
	gen := func(tag uint8, i int64, f float64, s string) Value {
		switch tag % 4 {
		case 0:
			return Null
		case 1:
			return NewInt(i)
		case 2:
			if math.IsNaN(f) {
				f = 0
			}
			return NewFloat(f)
		default:
			return NewString(s)
		}
	}
	f := func(t1, t2, t3 uint8, i1, i2, i3 int64, f1, f2, f3 float64, s1, s2, s3 string) bool {
		a, b, c := gen(t1, i1, f1, s1), gen(t2, i2, f2, s2), gen(t3, i3, f3, s3)
		if CompareTotal(a, b) <= 0 && CompareTotal(b, c) <= 0 {
			return CompareTotal(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if Distinct(got, want) {
			t.Errorf("got %v, want %v", got, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	check(v, err, NewInt(5))
	v, err = Add(NewInt(2), NewFloat(0.5))
	check(v, err, NewFloat(2.5))
	v, err = Sub(NewInt(2), NewInt(5))
	check(v, err, NewInt(-3))
	v, err = Mul(NewFloat(1.5), NewInt(4))
	check(v, err, NewFloat(6))
	v, err = Div(NewInt(7), NewInt(2))
	check(v, err, NewInt(3)) // integer division
	v, err = Div(NewFloat(7), NewInt(2))
	check(v, err, NewFloat(3.5))
	v, err = Mod(NewInt(7), NewInt(3))
	check(v, err, NewInt(1))
	v, err = Add(NewString("ab"), NewString("cd"))
	check(v, err, NewString("abcd"))
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, op := range []func(Value, Value) (Value, error){Add, Sub, Mul, Div, Mod} {
		v, err := op(Null, NewInt(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(NULL, 1) = %v, %v; want NULL", v, err)
		}
		v, err = op(NewInt(1), Null)
		if err != nil || !v.IsNull() {
			t.Errorf("op(1, NULL) = %v, %v; want NULL", v, err)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("modulo by zero must error")
	}
}

func TestNeg(t *testing.T) {
	v, err := Neg(NewInt(5))
	if err != nil || v.I != -5 {
		t.Errorf("Neg(5) = %v, %v", v, err)
	}
	v, err = Neg(Null)
	if err != nil || !v.IsNull() {
		t.Errorf("Neg(NULL) = %v, %v", v, err)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg(text) must error")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewString("42"), KindInt)
	if err != nil || v.I != 42 {
		t.Errorf(`Coerce("42", int) = %v, %v`, v, err)
	}
	v, err = Coerce(NewString(" 2.5 "), KindFloat)
	if err != nil || v.F != 2.5 {
		t.Errorf(`Coerce("2.5", float) = %v, %v`, v, err)
	}
	v, err = Coerce(NewInt(3), KindFloat)
	if err != nil || v.F != 3 {
		t.Errorf("Coerce(3, float) = %v, %v", v, err)
	}
	v, err = Coerce(NewFloat(3.7), KindInt)
	if err != nil || v.I != 3 {
		t.Errorf("Coerce(3.7, int) = %v, %v", v, err)
	}
	v, err = Coerce(NewString("true"), KindBool)
	if err != nil || !v.B {
		t.Errorf(`Coerce("true", bool) = %v, %v`, v, err)
	}
	v, err = Coerce(Null, KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("Coerce(NULL, int) = %v, %v; NULL must pass through", v, err)
	}
	if _, err := Coerce(NewString("abc"), KindInt); err == nil {
		t.Error(`Coerce("abc", int) must error`)
	}
	v, err = Coerce(NewInt(123), KindString)
	if err != nil || v.S != "123" {
		t.Errorf("Coerce(123, text) = %v, %v", v, err)
	}
}

func TestCommonKind(t *testing.T) {
	cases := []struct {
		a, b, want Kind
	}{
		{KindInt, KindInt, KindInt},
		{KindInt, KindFloat, KindFloat},
		{KindNull, KindInt, KindInt},
		{KindString, KindNull, KindString},
		{KindInt, KindString, KindString},
	}
	for _, c := range cases {
		if got := CommonKind(c.a, c.b); got != c.want {
			t.Errorf("CommonKind(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"null":  Null,
		"true":  NewBool(true),
		"42":    NewInt(42),
		"2.5":   NewFloat(2.5),
		"3.0":   NewFloat(3),
		"hello": NewString("hello"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("it's").SQLLiteral(); got != "'it''s'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral(NULL) = %q", got)
	}
	if got := NewBool(false).SQLLiteral(); got != "FALSE" {
		t.Errorf("SQLLiteral(false) = %q", got)
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
	cat := Concat(r, Row{Null})
	if len(cat) != 3 || !cat[2].IsNull() {
		t.Errorf("Concat = %v", cat)
	}
	if CompareRows(Row{NewInt(1)}, Row{NewInt(1), NewInt(2)}) != -1 {
		t.Error("shorter row must order first on prefix tie")
	}
	if CompareRows(Row{NewInt(2)}, Row{NewInt(1), NewInt(2)}) != 1 {
		t.Error("row comparison must use first difference")
	}
}

// TestRowKeyInjective checks that row keys cannot collide across different
// column splits (the length-prefixed encoding).
func TestRowKeyInjective(t *testing.T) {
	a := Row{NewString("ab"), NewString("c")}
	b := Row{NewString("a"), NewString("bc")}
	if a.Key() == b.Key() {
		t.Error("row keys must be injective across column boundaries")
	}
}
