// Package value implements the runtime value system of the Perm engine:
// SQL values with NULL, three-valued comparison, coercion between numeric
// types, hashing for join/aggregation keys, and parsing of literals.
//
// A Value is a small immutable struct; rows are []Value. The zero Value is
// NULL, which keeps freshly allocated rows well-formed.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of the engine.
type Kind uint8

// The supported kinds. KindNull is the zero value so that uninitialized
// values are NULL.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindString:
		return "text"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromTypeName maps a SQL type name to a Kind. It accepts the common
// aliases found in CREATE TABLE statements.
func KindFromTypeName(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint", "smallint", "int4", "int8", "serial":
		return KindInt, nil
	case "float", "float8", "double", "real", "numeric", "decimal", "double precision":
		return KindFloat, nil
	case "text", "varchar", "char", "character", "string", "character varying":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "null":
		return KindNull, nil
	}
	return KindNull, fmt.Errorf("unknown type name %q", name)
}

// Value is a single SQL value. Exactly one of the payload fields is
// meaningful, selected by K. The zero Value is NULL.
type Value struct {
	K Kind
	B bool
	I int64
	F float64
	S string
}

// Null is the NULL value.
var Null = Value{K: KindNull}

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{K: KindBool, B: b} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a text value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean payload; it must only be called when K==KindBool.
func (v Value) Bool() bool { return v.B }

// Int returns the integer payload, coercing floats by truncation.
func (v Value) Int() int64 {
	if v.K == KindFloat {
		return int64(v.F)
	}
	return v.I
}

// Float returns the numeric payload as float64.
func (v Value) Float() float64 {
	if v.K == KindInt {
		return float64(v.I)
	}
	return v.F
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// String renders the value the way the engine prints result cells.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "null"
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return formatFloat(v.F)
	case KindString:
		return v.S
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal (strings quoted and escaped).
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	default:
		return v.String()
	}
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// numericKinds reports whether both kinds are numeric (int or float).
func numericKinds(a, b Kind) bool {
	return (a == KindInt || a == KindFloat) && (b == KindInt || b == KindFloat)
}

// Compare orders two non-NULL values. It returns -1, 0, or +1 and an error
// when the kinds are incomparable. Numeric kinds compare after coercion to
// float64 (with an exact path for int/int). NULL handling is the caller's
// responsibility: comparison operators in SQL return NULL when an operand is
// NULL, whereas ORDER BY and set operations use total ordering via
// CompareTotal.
func Compare(a, b Value) (int, error) {
	if a.K == KindInt && b.K == KindInt {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	}
	if numericKinds(a.K, b.K) {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.K != b.K {
		return 0, fmt.Errorf("cannot compare %s with %s", a.K, b.K)
	}
	switch a.K {
	case KindBool:
		switch {
		case !a.B && b.B:
			return -1, nil
		case a.B && !b.B:
			return 1, nil
		}
		return 0, nil
	case KindString:
		return strings.Compare(a.S, b.S), nil
	case KindNull:
		return 0, nil
	}
	return 0, fmt.Errorf("cannot compare %s values", a.K)
}

// CompareTotal is a total ordering over all values, with NULL ordered first.
// Values of incomparable kinds order by kind; this is used by ORDER BY,
// DISTINCT and set operations, never by WHERE predicates.
func CompareTotal(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if c, err := Compare(a, b); err == nil {
		return c
	}
	// Incomparable kinds: order by kind id for determinism.
	ka, kb := normKind(a.K), normKind(b.K)
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	}
	return 0
}

func normKind(k Kind) Kind {
	if k == KindFloat {
		return KindInt // numeric values interleave
	}
	return k
}

// Equal reports SQL equality of two non-NULL values (numeric coercion
// applies). If either side is NULL it returns false; use Distinct for
// null-aware identity.
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Distinct implements IS DISTINCT FROM: NULL is identical to NULL and
// distinct from everything else.
func Distinct(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return (a.K == KindNull) != (b.K == KindNull)
	}
	return !Equal(a, b)
}

// Hash returns a hash of the value consistent with Distinct: values that are
// not distinct hash identically (ints and floats representing the same number
// collide on purpose).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.HashInto(h)
	return h.Sum64()
}

// hashWriter is the subset of hash.Hash64 HashInto needs.
type hashWriter interface {
	Write(p []byte) (int, error)
}

// HashInto feeds the value into h using a kind-tagged encoding.
func (v Value) HashInto(h hashWriter) {
	var tag [1]byte
	switch v.K {
	case KindNull:
		tag[0] = 0
		h.Write(tag[:])
	case KindBool:
		tag[0] = 1
		h.Write(tag[:])
		if v.B {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case KindInt, KindFloat:
		tag[0] = 2
		h.Write(tag[:])
		f := v.Float()
		if f == 0 {
			f = 0 // normalize -0
		}
		bits := math.Float64bits(f)
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case KindString:
		tag[0] = 3
		h.Write(tag[:])
		h.Write([]byte(v.S))
	}
}

// Key returns a canonical string key for the value, usable as a Go map key,
// consistent with Distinct (two values are not distinct iff keys are equal).
func (v Value) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends the canonical key encoding of v (the byte form of Key) to
// dst and returns the extended slice. Hot paths use it with a reusable scratch
// buffer to build hash keys without per-row allocation.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, 0x00)
	case KindBool:
		if v.B {
			return append(dst, 0x01, 'T')
		}
		return append(dst, 0x01, 'F')
	case KindInt, KindFloat:
		f := v.Float()
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			return strconv.AppendInt(append(dst, 0x02), int64(f), 10)
		}
		return strconv.AppendFloat(append(dst, 0x02, 'f'), f, 'b', -1, 64)
	case KindString:
		return append(append(dst, 0x03), v.S...)
	}
	return append(dst, 0x7f)
}

// AppendFramedKey appends v's key encoding prefixed with a fixed-width length,
// so that concatenated framed keys are injective across value boundaries
// (["ab","c"] never collides with ["a","bc"]).
func AppendFramedKey(dst []byte, v Value) []byte {
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = v.AppendKey(dst)
	n := len(dst) - lenPos - 4
	dst[lenPos] = byte(n)
	dst[lenPos+1] = byte(n >> 8)
	dst[lenPos+2] = byte(n >> 16)
	dst[lenPos+3] = byte(n >> 24)
	return dst
}

// Coerce converts v to the target kind when a lossless or standard SQL cast
// exists. NULL coerces to any kind (staying NULL).
func Coerce(v Value, to Kind) (Value, error) {
	if v.K == KindNull || v.K == to {
		return v, nil
	}
	switch to {
	case KindFloat:
		if v.K == KindInt {
			return NewFloat(float64(v.I)), nil
		}
		if v.K == KindString {
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to float", v.S)
			}
			return NewFloat(f), nil
		}
	case KindInt:
		if v.K == KindFloat {
			if v.F != math.Trunc(v.F) {
				return NewInt(int64(v.F)), nil
			}
			return NewInt(int64(v.F)), nil
		}
		if v.K == KindString {
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to integer", v.S)
			}
			return NewInt(i), nil
		}
		if v.K == KindBool {
			if v.B {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case KindString:
		return NewString(v.String()), nil
	case KindBool:
		if v.K == KindString {
			switch strings.ToLower(strings.TrimSpace(v.S)) {
			case "t", "true", "yes", "on", "1":
				return NewBool(true), nil
			case "f", "false", "no", "off", "0":
				return NewBool(false), nil
			}
			return Null, fmt.Errorf("cannot cast %q to boolean", v.S)
		}
		if v.K == KindInt {
			return NewBool(v.I != 0), nil
		}
	}
	return Null, fmt.Errorf("cannot cast %s to %s", v.K, to)
}

// CommonKind returns the kind a binary operation over a and b evaluates in.
func CommonKind(a, b Kind) Kind {
	if a == KindNull {
		return b
	}
	if b == KindNull {
		return a
	}
	if a == b {
		return a
	}
	if numericKinds(a, b) {
		return KindFloat
	}
	return KindString
}

// Row is a tuple of values.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by s.
func Concat(r, s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	out = append(out, s...)
	return out
}

// NullRow returns a row of n NULLs.
func NullRow(n int) Row {
	return make(Row, n) // zero Value is NULL
}

// Key returns a canonical map key for the whole row (Distinct-consistent).
func (r Row) Key() string {
	return string(r.AppendKey(nil))
}

// AppendKey appends the canonical row key (the byte form of Key) to dst.
// Executor hot paths use it with a reusable scratch buffer so that group-by,
// DISTINCT and set-operation lookups do not allocate per input row.
func (r Row) AppendKey(dst []byte) []byte {
	for _, v := range r {
		dst = AppendFramedKey(dst, v)
	}
	return dst
}

// CompareRows orders rows with CompareTotal column-wise.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareTotal(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Arithmetic errors.
var errDivZero = fmt.Errorf("division by zero")

// Add returns a+b with SQL NULL propagation and numeric coercion. For text
// operands it concatenates (convenience for the || operator path).
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b; integer division when both are ints, error on zero divisor.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

// Mod returns a%b over integers.
func Mod(a, b Value) (Value, error) { return arith(a, b, '%') }

func arith(a, b Value, op byte) (Value, error) {
	if a.K == KindNull || b.K == KindNull {
		return Null, nil
	}
	if op == '+' && a.K == KindString && b.K == KindString {
		return NewString(a.S + b.S), nil
	}
	if !numericKinds(a.K, b.K) {
		return Null, fmt.Errorf("operator %c not defined for %s and %s", op, a.K, b.K)
	}
	if a.K == KindInt && b.K == KindInt {
		switch op {
		case '+':
			return NewInt(a.I + b.I), nil
		case '-':
			return NewInt(a.I - b.I), nil
		case '*':
			return NewInt(a.I * b.I), nil
		case '/':
			if b.I == 0 {
				return Null, errDivZero
			}
			return NewInt(a.I / b.I), nil
		case '%':
			if b.I == 0 {
				return Null, errDivZero
			}
			return NewInt(a.I % b.I), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, errDivZero
		}
		return NewFloat(af / bf), nil
	case '%':
		if bf == 0 {
			return Null, errDivZero
		}
		return NewFloat(math.Mod(af, bf)), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %c", op)
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.K {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.I), nil
	case KindFloat:
		return NewFloat(-a.F), nil
	}
	return Null, fmt.Errorf("unary minus not defined for %s", a.K)
}
