package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perm/internal/catalog"
	"perm/internal/storage"
	"perm/internal/value"
	"perm/internal/wal/walfault"
)

func testOpen(t *testing.T, dir string, opts Options) (*storage.Store, *Manager, Recovery) {
	t.Helper()
	s, m, r, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, m, r
}

// seed creates table kv(k int, v int) when missing and inserts n rows with
// ascending keys starting at start. Each insert is one WAL record.
func seed(t *testing.T, s *storage.Store, start, n int) {
	t.Helper()
	tab := s.Table("kv")
	if tab == nil {
		var err error
		tab, err = s.CreateTable(&catalog.TableDef{Name: "kv", Columns: []catalog.Column{
			{Name: "k", Type: value.KindInt},
			{Name: "v", Type: value.KindInt},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tab.Insert(value.Row{value.NewInt(int64(start + i)), value.NewInt(int64(i))}); err != nil {
			t.Fatalf("insert %d: %v", start+i, err)
		}
	}
}

func keys(t *testing.T, s *storage.Store) []int64 {
	t.Helper()
	tab := s.Table("kv")
	if tab == nil {
		t.Fatal("table kv missing after recovery")
	}
	var out []int64
	for _, r := range tab.Snapshot() {
		out = append(out, r[0].I)
	}
	return out
}

func wantKeys(t *testing.T, s *storage.Store, want ...int64) {
	t.Helper()
	got := keys(t, s)
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: key %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, walSubdir))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			out = append(out, filepath.Join(dir, walSubdir, e.Name()))
		}
	}
	return out
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mode int
		iv   time.Duration
		bad  bool
	}{
		{in: "always", mode: syncAlways},
		{in: " ALWAYS ", mode: syncAlways},
		{in: "off", mode: syncOff},
		{in: "group", mode: syncGroup, iv: defaultGroupInterval},
		{in: "group(5)", mode: syncGroup, iv: 5 * time.Millisecond},
		{in: "group(0)", mode: syncGroup, iv: 0},
		{in: "group(0.5)", mode: syncGroup, iv: 500 * time.Microsecond},
		{in: "group(-1)", bad: true},
		{in: "group(99999)", bad: true},
		{in: "group(x)", bad: true},
		{in: "group(5s)", bad: true},
		{in: "group(5xyz)", bad: true},
		{in: "group()", bad: true},
		{in: "fsync", bad: true},
		{in: "", bad: true},
	} {
		mode, iv, err := ParseSyncPolicy(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q): want error", tc.in)
			}
			continue
		}
		if err != nil || mode != tc.mode || iv != tc.iv {
			t.Errorf("ParseSyncPolicy(%q) = %d, %v, %v; want %d, %v", tc.in, mode, iv, err, tc.mode, tc.iv)
		}
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	s, m, rec := testOpen(t, dir, Options{})
	if rec.SnapshotLSN != 0 || rec.Replayed != 0 || rec.LastLSN != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	seed(t, s, 0, 3)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec2 := testOpen(t, dir, Options{})
	defer m2.Close()
	if rec2.SnapshotLSN != 0 || rec2.Replayed != 4 || rec2.LastLSN != 4 {
		t.Fatalf("recovery = %+v, want 4 records replayed to LSN 4", rec2)
	}
	wantKeys(t, s2, 0, 1, 2)
	if s2.Origin() != s.Origin() {
		t.Fatalf("recovered origin %x, want %x (adopted from segment header)", s2.Origin(), s.Origin())
	}
	if s2.Log().LastLSN() != s.Log().LastLSN() {
		t.Fatalf("recovered LSN %d, want %d", s2.Log().LastLSN(), s.Log().LastLSN())
	}
}

func TestRecoverAllRecordKinds(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{})
	seed(t, s, 0, 5)
	tab := s.Table("kv")
	if _, err := tab.Update(func(r value.Row) (bool, error) { return r[0].I == 2, nil },
		func(r value.Row) (value.Row, error) { return value.Row{r[0], value.NewInt(99)}, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Delete(func(r value.Row) (bool, error) { return r[0].I == 3, nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateView(&catalog.ViewDef{Name: "vv", Text: "SELECT k FROM kv", Columns: []catalog.Column{{Name: "k", Type: value.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Analyze("kv"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec := testOpen(t, dir, Options{})
	defer m2.Close()
	wantKeys(t, s2, 0, 1, 2, 4)
	if got := s2.Table("kv").Snapshot()[2][1].I; got != 99 {
		t.Fatalf("updated row replayed v=%d, want 99", got)
	}
	if s2.Catalog().View("vv") == nil {
		t.Fatal("view vv lost in recovery")
	}
	if rec.Truncated {
		t.Fatalf("clean shutdown recovered as truncated: %+v", rec)
	}
}

func TestCheckpointThenTailReplay(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{})
	seed(t, s, 0, 4) // LSN 1..5
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seed(t, s, 100, 2) // LSN 6..7
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec := testOpen(t, dir, Options{})
	defer m2.Close()
	if rec.SnapshotLSN != 5 || rec.Replayed != 2 || rec.LastLSN != 7 {
		t.Fatalf("recovery = %+v, want snapshot LSN 5 + 2 replayed", rec)
	}
	wantKeys(t, s2, 0, 1, 2, 3, 100, 101)
}

func TestSegmentRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{SegmentBytes: 128})
	// Tight in-memory retention so the checkpoint GC floor can advance past
	// sealed segments (by default the change log retains far more).
	s.Log().SetRetention(1)
	seed(t, s, 0, 20)
	if n := len(segPaths(t, dir)); n < 3 {
		t.Fatalf("%d segments after 21 records at 128-byte rotation, want several", n)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec := testOpen(t, dir, Options{SegmentBytes: 128})
	defer m2.Close()
	if rec.Replayed != 21 {
		t.Fatalf("replayed %d records across segments, want 21", rec.Replayed)
	}
	wantKeys(t, s2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19)
	s2.Log().SetRetention(1)
	seed(t, s2, 100, 1) // advance retention past the recovered tail
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := len(segPaths(t, dir)); n != 1 {
		t.Fatalf("%d segments after checkpoint GC, want 1 (the live one)", n)
	}
	st := m2.Status()
	if st.Segments != 1 || st.CheckpointLSN != s2.Log().LastLSN() {
		t.Fatalf("status after GC = %+v", st)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{})
	seed(t, s, 0, 5)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 3 bytes, as a crash mid-write(2)
	// would.
	segs := segPaths(t, dir)
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec := testOpen(t, dir, Options{})
	if !rec.Truncated || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want truncated tail", rec)
	}
	if rec.Replayed != 5 || rec.LastLSN != 5 {
		t.Fatalf("recovery = %+v, want the 5 intact records", rec)
	}
	wantKeys(t, s2, 0, 1, 2, 3)
	// The log must keep working where it was cut.
	seed(t, s2, 50, 1)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, m3, rec3 := testOpen(t, dir, Options{})
	defer m3.Close()
	if rec3.Truncated {
		t.Fatalf("second recovery still truncated: %+v", rec3)
	}
	wantKeys(t, s3, 0, 1, 2, 3, 50)
}

func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{})
	seed(t, s, 0, 5)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segPaths(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // inside the last record's payload
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec := testOpen(t, dir, Options{})
	defer m2.Close()
	if !rec.Truncated {
		t.Fatalf("recovery = %+v, want checksum-truncated tail", rec)
	}
	wantKeys(t, s2, 0, 1, 2, 3)
}

func TestTransformWriteTornRecord(t *testing.T) {
	// A short TransformWrite simulates the OS tearing the final write: the
	// record is acknowledged in this life (the fault is below fsync's radar
	// here), and recovery must truncate it instead of failing.
	dir := t.TempDir()
	var tear atomic.Bool
	hooks := &walfault.Hooks{TransformWrite: func(frame []byte) []byte {
		if tear.Load() {
			return frame[:len(frame)-4]
		}
		return frame
	}}
	s, m, _ := testOpen(t, dir, Options{Hooks: hooks})
	seed(t, s, 0, 3)
	tear.Store(true)
	seed(t, s, 10, 1)
	tear.Store(false)
	_ = m.Close()

	s2, m2, rec := testOpen(t, dir, Options{})
	defer m2.Close()
	if !rec.Truncated {
		t.Fatalf("recovery = %+v, want torn record truncated", rec)
	}
	wantKeys(t, s2, 0, 1, 2)
}

func TestSyncErrSticky(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	hooks := &walfault.Hooks{SyncErr: func() error {
		if fail.Load() {
			return errors.New("injected: disk on fire")
		}
		return nil
	}}
	s, m, _ := testOpen(t, dir, Options{Sync: "always", Hooks: hooks})
	seed(t, s, 0, 2)
	fail.Store(true)
	tab := s.Table("kv")
	if _, err := tab.Insert(value.Row{value.NewInt(9), value.NewInt(9)}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("insert during fsync failure: %v, want ErrWALFailed", err)
	}
	// Sticky: even with the disk "fixed", no further write is accepted.
	fail.Store(false)
	if _, err := tab.Insert(value.Row{value.NewInt(10), value.NewInt(10)}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("insert after sticky failure: %v, want ErrWALFailed", err)
	}
	if _, err := s.CreateTable(&catalog.TableDef{Name: "t2", Columns: []catalog.Column{{Name: "a", Type: value.KindInt}}}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("DDL after sticky failure: %v, want ErrWALFailed", err)
	}
	if st := m.Status(); st.Err == "" {
		t.Fatal("Status().Err empty after failure")
	}
	// Reads keep working.
	if n := tab.RowCount(); n < 2 {
		t.Fatalf("reads broken after WAL failure: %d rows", n)
	}
	_ = m.Close()

	// The acknowledged prefix survives. The never-acknowledged insert was
	// written to the file before fsync failed, so recovery may legitimately
	// resurface it — or not; either is correct for an unacknowledged write.
	s2, m2, _ := testOpen(t, dir, Options{})
	defer m2.Close()
	got := keys(t, s2)
	if len(got) < 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("acknowledged prefix lost: %v", got)
	}
	if len(got) > 3 || (len(got) == 3 && got[2] != 9) {
		t.Fatalf("recovered rows beyond the written log: %v", got)
	}
}

func TestGroupCommitDurable(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{Sync: "group(1)"})
	var wg sync.WaitGroup
	tab := func() *storage.Table {
		seed(t, s, 0, 0)
		return s.Table("kv")
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := tab.Insert(value.Row{value.NewInt(int64(w*100 + i)), value.NewInt(0)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every returned insert was acknowledged: all must be durable already,
	// without Close's final fsync.
	st := m.Status()
	if st.DurableLSN != st.LastLSN {
		t.Fatalf("acknowledged writes not durable: durable %d < last %d", st.DurableLSN, st.LastLSN)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	s2, m2, _ := testOpen(t, dir, Options{})
	defer m2.Close()
	if got := len(keys(t, s2)); got != 40 {
		t.Fatalf("recovered %d rows, want 40", got)
	}
}

func TestSetSyncPolicy(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{Sync: "off"})
	if st := m.Status(); st.Mode != "off" {
		t.Fatalf("mode %q, want off", st.Mode)
	}
	seed(t, s, 0, 3)
	// Tightening to always must immediately fsync the tail written under
	// "off".
	if err := m.SetSyncPolicy("always"); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st.Mode != "always" || st.DurableLSN != st.LastLSN {
		t.Fatalf("status after tightening = %+v", st)
	}
	if err := m.SetSyncPolicy("group(3)"); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st.Mode != "group(3)" {
		t.Fatalf("mode %q, want group(3)", st.Mode)
	}
	if err := m.SetSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	_ = m.Close()
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{CheckpointInterval: 5 * time.Millisecond})
	seed(t, s, 0, 5)
	deadline := time.Now().Add(5 * time.Second)
	for m.Status().CheckpointLSN == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after background checkpoint: %v", err)
	}
	_, m2, rec := testOpen(t, dir, Options{})
	defer m2.Close()
	if rec.SnapshotLSN == 0 {
		t.Fatalf("recovery ignored background checkpoint: %+v", rec)
	}
}

func TestAdoptStoreRebasesWAL(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{})
	seed(t, s, 0, 5)

	// A "bootstrap" store with a different history, as a replica would
	// build from a primary's snapshot.
	fresh := storage.NewStore()
	tab, err := fresh.CreateTable(&catalog.TableDef{Name: "kv", Columns: []catalog.Column{
		{Name: "k", Type: value.KindInt}, {Name: "v", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(value.Row{value.NewInt(7), value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AdoptStore(fresh); err != nil {
		t.Fatal(err)
	}
	// Journaling now follows the adopted store.
	seed(t, fresh, 40, 2)
	// The old store is detached: its writes are not journaled and not
	// gated, but must still work in memory.
	seed(t, s, 90, 1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	s2, m2, rec := testOpen(t, dir, Options{})
	defer m2.Close()
	if s2.Origin() != fresh.Origin() {
		t.Fatalf("recovered origin %x, want adopted %x", s2.Origin(), fresh.Origin())
	}
	if rec.SnapshotLSN == 0 {
		t.Fatalf("AdoptStore wrote no checkpoint: %+v", rec)
	}
	wantKeys(t, s2, 7, 40, 41)
}

// A crash that leaves a header-only segment (created by rotation or first
// boot, never appended to) must not let the reopened log track that file
// both as a sealed segment and as the live append segment: checkpoint GC
// would then unlink the segment being appended to, and every later
// acknowledged write would vanish on the next restart.
func TestEmptyTrailingSegmentNotDoubleTracked(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{})
	origin := s.Origin()
	if err := m.Close(); err != nil { // leaves wal-...01.seg header-only
		t.Fatal(err)
	}

	s2, m2, _ := testOpen(t, dir, Options{})
	if s2.Origin() != origin {
		t.Fatalf("recovered origin %x, want %x (adopted from the empty segment)", s2.Origin(), origin)
	}
	s2.Log().SetRetention(1)
	seed(t, s2, 0, 3)
	// In the buggy version the live segment sat in the sealed list too, and
	// this checkpoint's GC unlinked it out from under the appender.
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seed(t, s2, 10, 2) // acknowledged post-checkpoint writes
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, m3, _ := testOpen(t, dir, Options{})
	defer m3.Close()
	wantKeys(t, s3, 0, 1, 2, 10, 11)
}

// An LSN gap between CRC-valid records means records were lost — corruption,
// not a torn tail. Recovery must refuse, not silently truncate the valid
// (potentially acknowledged) records after the hole.
func TestLSNGapFatal(t *testing.T) {
	dir := t.TempDir()
	s, m, _ := testOpen(t, dir, Options{SegmentBytes: 128})
	seed(t, s, 0, 20)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segPaths(t, dir)
	if len(segs) < 3 {
		t.Fatalf("%d segments, want at least 3", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil { // hole in the middle of history
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, Options{SegmentBytes: 128}); err == nil {
		t.Fatal("recovery spliced over a missing segment, want hard error")
	}
}

// AdoptStore must never leave a crash window where a new-origin segment
// coexists with an old-origin snapshot (recovery rejects that as mixed data
// directories): the old segments go first, the fresh snapshot is installed
// second, and only then is the first new-origin segment created.
func TestAdoptStoreCrashWindowOrdering(t *testing.T) {
	dir := t.TempDir()
	segsAtInstall := -1
	hooks := &walfault.Hooks{MidCheckpoint: func() {
		// Fires inside AdoptStore's checkpoint, just before the snapshot
		// rename: the old-origin segments must already be gone and the
		// new-origin segment must not exist yet.
		segsAtInstall = len(segPathsQuiet(dir))
	}}
	s, m, _ := testOpen(t, dir, Options{Hooks: hooks})
	seed(t, s, 0, 3)

	fresh := storage.NewStore()
	tab, err := fresh.CreateTable(&catalog.TableDef{Name: "kv", Columns: []catalog.Column{
		{Name: "k", Type: value.KindInt}, {Name: "v", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(value.Row{value.NewInt(7), value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AdoptStore(fresh); err != nil {
		t.Fatal(err)
	}
	if segsAtInstall != 0 {
		t.Fatalf("AdoptStore installed the snapshot with %d segment(s) on disk, want 0", segsAtInstall)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash between snapshot install and the new segment's
	// creation: a new-origin snapshot with no WAL at all must recover.
	for _, p := range segPathsQuiet(dir) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	s2, m2, _ := testOpen(t, dir, Options{})
	defer m2.Close()
	if s2.Origin() != fresh.Origin() {
		t.Fatalf("recovered origin %x, want adopted %x", s2.Origin(), fresh.Origin())
	}
	wantKeys(t, s2, 7)
}

// segPathsQuiet is segPaths without the testing.T plumbing, for use inside
// fault hooks.
func segPathsQuiet(dir string) []string {
	ents, err := os.ReadDir(filepath.Join(dir, walSubdir))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			out = append(out, filepath.Join(dir, walSubdir, e.Name()))
		}
	}
	return out
}

func TestMixedOriginRejected(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sA, mA, _ := testOpen(t, dirA, Options{})
	seed(t, sA, 0, 2)
	if err := mA.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = mA.Close()
	sB, mB, _ := testOpen(t, dirB, Options{})
	seed(t, sB, 0, 3)
	_ = mB.Close()
	// Graft B's WAL segment onto A's directory: recovery must refuse the
	// foreign history rather than splice it in.
	bSegs := segPaths(t, dirB)
	data, err := os.ReadFile(bSegs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range segPaths(t, dirA) {
		os.Remove(p)
	}
	if err := os.WriteFile(filepath.Join(dirA, walSubdir, filepath.Base(bSegs[0])), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dirA, Options{}); err == nil {
		t.Fatal("Open spliced a foreign-origin WAL into a snapshot, want error")
	}
}
