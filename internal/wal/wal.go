// Package wal gives the engine a durable write path: a write-ahead log of
// the same logical change records internal/repl already streams to
// replication followers, persisted as CRC-checksummed segment files and
// fsync'd under a configurable sync policy before a mutation is
// acknowledged. Recovery (see recover.go) loads the newest snapshot and
// replays the WAL tail through storage's replication-apply machinery, so a
// crashed primary restarts exactly at its acknowledged prefix; a background
// checkpointer (checkpoint.go) bounds replay time and garbage-collects
// segments the snapshot has subsumed.
//
// # On-disk format
//
// A data directory holds one snapshot plus a wal/ subdirectory of segment
// files:
//
//	<dir>/snapshot.perm          gob snapshot (storage.Store.SaveLSN format)
//	<dir>/wal/wal-%016x.seg      segments, named by their first LSN
//
// Each segment starts with a 24-byte header (magic, first LSN, history
// origin) followed by length-framed records:
//
//	[u32le payload length][u32le CRC32C(payload)][payload]
//
// where the payload is repl.AppendRecord's encoding — the exact bytes a
// replication follower would receive. A torn or corrupt frame ends replay:
// the tail is truncated, never fatal, because everything past the first bad
// byte was by construction never acknowledged (or is re-fetchable from the
// replication primary).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"perm/internal/metrics"
	"perm/internal/repl"
	"perm/internal/wal/walfault"
)

// Process-wide WAL metrics. The fsync histogram is the one to watch on a
// durability-bound workload; the batch histogram shows how well group commit
// amortizes it (records made durable per physical fsync).
var (
	mFsyncs = metrics.Default.Counter("perm_wal_fsyncs_total",
		"Physical WAL fsyncs")
	mFsyncLatency = metrics.Default.Histogram("perm_wal_fsync_seconds",
		"WAL fsync latency", 1e-9)
	mGroupBatch = metrics.Default.Histogram("perm_wal_group_commit_records",
		"Records made durable per physical fsync (group-commit batch size)", 1)
	mRotations = metrics.Default.Counter("perm_wal_segment_rotations_total",
		"WAL segment rotations (seals)")
	mCheckpoints = metrics.Default.Counter("perm_wal_checkpoints_total",
		"Checkpoints taken")
)

// ErrWALFailed is wrapped by every error the log returns after a write or
// fsync failure: durability can no longer be promised, so the log is sticky
// read-only — a lost write must never be acknowledged, and un-journaled
// mutations must never be accepted. The storage layer refuses further
// writes while this error stands; reads keep working.
var ErrWALFailed = errors.New("wal: write-ahead log failed, store is read-only")

// Sync policies for SET wal_sync / permserver -wal-sync.
const (
	// syncAlways fsyncs before every acknowledgment (group-committing
	// whatever concurrent writers appended in the meantime).
	syncAlways = iota
	// syncGroup acknowledges after a shared fsync that runs at most every
	// groupInterval: concurrent sessions amortize one fsync, at the cost of
	// up to one interval of commit latency.
	syncGroup
	// syncOff acknowledges without waiting for fsync; the OS flushes when
	// it pleases. A crash can lose acknowledged tail writes (never corrupt
	// the store — recovery still truncates at the torn record).
	syncOff
)

// ParseSyncPolicy parses "always", "off", "group" or "group(<ms>)" (the
// fsync coalescing window in milliseconds; 0 means sync as soon as the
// syncer is free, batching naturally under load).
func ParseSyncPolicy(s string) (mode int, interval time.Duration, err error) {
	p := strings.TrimSpace(strings.ToLower(s))
	switch p {
	case "always":
		return syncAlways, 0, nil
	case "off":
		return syncOff, 0, nil
	case "group":
		return syncGroup, defaultGroupInterval, nil
	}
	if rest, ok := strings.CutPrefix(p, "group("); ok {
		if ms, ok := strings.CutSuffix(rest, ")"); ok {
			// ParseFloat over the whole substring: trailing garbage
			// ("group(5xyz)", "group(5s)") must fail validation, not silently
			// parse as 5 ms.
			if v, err := strconv.ParseFloat(strings.TrimSpace(ms), 64); err == nil && v >= 0 && v <= 10_000 {
				return syncGroup, time.Duration(v * float64(time.Millisecond)), nil
			}
		}
	}
	return 0, 0, fmt.Errorf("wal: invalid sync policy %q (want always, group, group(<ms>) or off)", s)
}

func syncPolicyString(mode int, interval time.Duration) string {
	switch mode {
	case syncAlways:
		return "always"
	case syncGroup:
		return fmt.Sprintf("group(%g)", float64(interval)/float64(time.Millisecond))
	default:
		return "off"
	}
}

const (
	segPrefix            = "wal-"
	segSuffix            = ".seg"
	segHeaderSize        = 24
	frameHeaderSize      = 8
	defaultSegmentBytes  = 16 << 20
	defaultGroupInterval = 2 * time.Millisecond
	// maxFramePayload rejects impossible length prefixes during replay
	// before allocating: storage splits oversized mutations at ~8 MiB per
	// record (maxRecordBytes), so 32 MiB leaves a 4x margin over any frame
	// the engine can actually write.
	maxFramePayload = 32 << 20
)

var segMagic = [8]byte{'P', 'E', 'R', 'M', 'W', 'A', 'L', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment describes one sealed (no longer appended-to) segment file.
type segment struct {
	first uint64 // LSN of the first record the segment may hold
	path  string
	bytes int64
}

// seglog is the append side of the write-ahead log. It implements
// storage.Durability: the change log's append hook calls append (in strict
// LSN order, under the change log's mutex), and mutations call WaitDurable
// after their critical section, before acknowledging the client.
type seglog struct {
	dir   string // the wal/ subdirectory
	hooks *walfault.Hooks
	logf  func(format string, args ...any)

	mu       sync.Mutex
	cond     *sync.Cond
	mode     int
	interval time.Duration
	segBytes int64

	f        *os.File
	curFirst uint64
	curPath  string
	written  int64
	sealed   []segment

	origin     uint64
	lastLSN    uint64
	durableLSN uint64
	err        error
	closed     bool

	syncScheduled bool
	kick          chan struct{}
	done          chan struct{}

	buf []byte // frame scratch, reused across appends
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, segPrefix)
	if !ok {
		return 0, false
	}
	hexpart, ok := strings.CutSuffix(rest, segSuffix)
	if !ok || len(hexpart) != 16 {
		return 0, false
	}
	var v uint64
	for _, c := range []byte(hexpart) {
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | uint64(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// newSeglog opens the append side positioned after lastLSN, creating a
// fresh segment for the next record. sealed lists the segments recovery
// left on disk (oldest first), for garbage collection.
func newSeglog(dir string, lastLSN, origin uint64, sealed []segment, mode int, interval time.Duration, segBytes int64, hooks *walfault.Hooks, logf func(string, ...any)) (*seglog, error) {
	if segBytes <= segHeaderSize {
		segBytes = defaultSegmentBytes
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	l := &seglog{
		dir:        dir,
		hooks:      hooks,
		logf:       logf,
		mode:       mode,
		interval:   interval,
		segBytes:   segBytes,
		sealed:     sealed,
		origin:     origin,
		lastLSN:    lastLSN,
		durableLSN: lastLSN,
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegmentLocked(lastLSN + 1); err != nil {
		return nil, err
	}
	go l.syncLoop()
	return l, nil
}

// openSegmentLocked creates (truncating any leftover of a previous crashed
// life — replay proved it holds nothing durable) the segment whose first
// record will be LSN first, writes its header, and makes the directory
// entry durable. Callers hold l.mu or are the constructor.
func (l *seglog) openSegmentLocked(first uint64) error {
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], first)
	binary.LittleEndian.PutUint64(hdr[16:24], l.origin)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	// The file's directory entry must be durable before any record in it
	// can be: fsync(file) alone does not persist the name.
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.curFirst = first
	l.curPath = path
	l.written = segHeaderSize
	return nil
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// append journals one record. It is the change log's append hook: called
// under the change log's mutex for every record the log accepts — primary
// mutations, DDL, and a replica's applied feed alike — so the WAL receives
// records in strict LSN order, inside the same critical section that
// published them in memory. It never blocks on fsync (WaitDurable does)
// and never returns an error: a write failure is recorded sticky, the
// record is dropped, and the mutation's WaitDurable (and every later
// write) fails instead — the client is never acknowledged.
func (l *seglog) append(rec repl.Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil || l.closed {
		return
	}
	if l.written >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			l.failLocked(err)
			return
		}
	}
	if h := l.hooks; h != nil && h.BeforeAppend != nil {
		h.BeforeAppend(rec.LSN)
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = repl.AppendRecord(l.buf, rec)
	payload := l.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(payload, castagnoli))
	frame := l.buf
	if h := l.hooks; h != nil && h.TransformWrite != nil {
		frame = h.TransformWrite(frame)
	}
	n, err := l.f.Write(frame)
	if err == nil && n < len(frame) {
		err = fmt.Errorf("short write: %d of %d bytes", n, len(frame))
	}
	if err != nil {
		l.failLocked(fmt.Errorf("append LSN %d: %w", rec.LSN, err))
		return
	}
	l.written += int64(len(frame))
	l.lastLSN = rec.LSN
	if l.mode == syncGroup {
		l.scheduleSyncLocked()
	}
	if h := l.hooks; h != nil && h.AfterAppend != nil {
		h.AfterAppend(rec.LSN)
	}
}

// rotateLocked seals the full current segment (fsynced, so sealed segments
// are always wholly durable) and opens its successor.
func (l *seglog) rotateLocked() error {
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	l.sealed = append(l.sealed, segment{first: l.curFirst, path: l.curPath, bytes: l.written})
	mRotations.Inc()
	if h := l.hooks; h != nil && h.MidRotate != nil {
		h.MidRotate()
	}
	return l.openSegmentLocked(l.lastLSN + 1)
}

// fsyncLocked makes everything appended so far durable and releases
// waiters. A failure is sticky.
func (l *seglog) fsyncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.durableLSN == l.lastLSN {
		return nil
	}
	batch := l.lastLSN - l.durableLSN
	var err error
	if h := l.hooks; h != nil && h.SyncErr != nil {
		err = h.SyncErr()
	}
	if err == nil {
		t0 := time.Now()
		err = l.f.Sync()
		mFsyncLatency.Observe(int64(time.Since(t0)))
		mFsyncs.Inc()
		mGroupBatch.Observe(int64(batch))
	}
	if err != nil {
		l.failLocked(fmt.Errorf("fsync: %w", err))
		return l.err
	}
	l.durableLSN = l.lastLSN
	if h := l.hooks; h != nil && h.AfterSync != nil {
		h.AfterSync(l.durableLSN)
	}
	l.cond.Broadcast()
	return nil
}

// failLocked records the first failure, making the log sticky read-only,
// and releases every waiter with the error.
func (l *seglog) failLocked(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %v", ErrWALFailed, err)
		l.logf("wal: FAILURE, refusing further writes: %v", err)
	}
	l.cond.Broadcast()
}

// scheduleSyncLocked kicks the group syncer once per pending batch.
func (l *seglog) scheduleSyncLocked() {
	if l.syncScheduled || l.closed {
		return
	}
	l.syncScheduled = true
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// syncLoop is the group-commit syncer: each kick waits the coalescing
// interval, then fsyncs whatever accumulated — one disk flush for every
// writer that appended inside the window.
func (l *seglog) syncLoop() {
	defer close(l.done)
	for range l.kick {
		l.mu.Lock()
		interval := l.interval
		l.mu.Unlock()
		if interval > 0 {
			time.Sleep(interval)
		}
		l.mu.Lock()
		l.syncScheduled = false
		if !l.closed {
			_ = l.fsyncLocked()
		}
		l.mu.Unlock()
	}
}

// WaitDurable blocks until lsn is durable under the current sync policy
// (immediately under "off") and returns the sticky error if durability has
// failed. It is the second half of storage.Durability: mutations call it
// after their critical section, before acknowledging the client.
func (l *seglog) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.mode == syncOff || l.durableLSN >= lsn {
			return nil
		}
		if l.closed {
			return fmt.Errorf("%w: log closed before LSN %d became durable", ErrWALFailed, lsn)
		}
		if l.mode == syncAlways {
			if err := l.fsyncLocked(); err != nil {
				return err
			}
			continue
		}
		l.scheduleSyncLocked()
		l.cond.Wait()
	}
}

// Err reports the sticky failure, if any — the first half of
// storage.Durability: the store refuses new mutations while it stands.
func (l *seglog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// setSync switches the sync policy at runtime (SET wal_sync). Tightening
// to "always" fsyncs the pending tail immediately so no already-written
// record remains un-durable under the stricter promise.
func (l *seglog) setSync(mode int, interval time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mode, l.interval = mode, interval
	if mode == syncAlways && l.err == nil && !l.closed {
		_ = l.fsyncLocked()
	}
	// Group waiters re-evaluate under the new mode (off releases them).
	l.cond.Broadcast()
}

// sync forces an fsync now regardless of policy (checkpoints, shutdown).
func (l *seglog) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	return l.fsyncLocked()
}

// removeBelow deletes sealed segments every record of which has LSN <
// floor (their successor's first LSN is <= floor), returning how many were
// removed. The current append segment is never touched.
func (l *seglog) removeBelow(floor uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.sealed) > 0 {
		next := l.curFirst
		if len(l.sealed) > 1 {
			next = l.sealed[1].first
		}
		if next > floor {
			break
		}
		// Invariant guard: the live append segment must never appear in the
		// sealed list (recovery drops a trailing header-only segment before
		// the append side reuses its name). Unlinking it here would send
		// later writes to an unlinked file — acknowledged-write loss.
		if l.sealed[0].path == l.curPath {
			l.logf("wal: BUG: sealed list contains the live segment %s; refusing to remove it", l.curPath)
			break
		}
		if err := os.Remove(l.sealed[0].path); err != nil && !os.IsNotExist(err) {
			l.logf("wal: removing obsolete segment %s: %v", l.sealed[0].path, err)
			break
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	return removed
}

// discard drops the entire log — every sealed segment and the live one (a
// replica adopted a new bootstrap snapshot whose history the local segments
// no longer describe) — leaving the log without an append segment until
// restart reopens it. In between, appends are impossible (the manager holds
// no attached store) and fsyncs are no-ops (durableLSN == lastLSN).
func (l *seglog) discard() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("%w: log closed", ErrWALFailed)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	l.f = nil
	if err := os.Remove(l.curPath); err != nil {
		return fmt.Errorf("wal: remove segment: %w", err)
	}
	for _, s := range l.sealed {
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: remove segment: %w", err)
		}
	}
	l.sealed = nil
	l.durableLSN = l.lastLSN
	l.cond.Broadcast()
	return nil
}

// restart reopens a discarded log positioned after lastLSN under the given
// history origin, creating the first segment of the new timeline.
func (l *seglog) restart(lastLSN, origin uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("%w: log closed", ErrWALFailed)
	}
	l.origin = origin
	l.lastLSN = lastLSN
	l.durableLSN = lastLSN
	if err := l.openSegmentLocked(lastLSN + 1); err != nil {
		l.failLocked(err)
		return l.err
	}
	l.cond.Broadcast()
	return nil
}

// stats reports the observable log state for SHOW wal_status.
func (l *seglog) stats() (mode string, lastLSN, durableLSN uint64, segments int, bytes int64, errStr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	mode = syncPolicyString(l.mode, l.interval)
	lastLSN, durableLSN = l.lastLSN, l.durableLSN
	segments = len(l.sealed) + 1
	bytes = l.written
	for _, s := range l.sealed {
		bytes += s.bytes
	}
	if l.err != nil {
		errStr = l.err.Error()
	}
	return
}

// close fsyncs the tail (best effort once failed) and shuts the syncer
// down. The log cannot be reused.
func (l *seglog) close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	err := l.fsyncLocked()
	// l.f is nil only when a discard was never followed by a successful
	// restart (the sticky error already reports why).
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("wal: close segment: %w", cerr)
		}
	}
	l.closed = true
	l.cond.Broadcast()
	close(l.kick)
	l.mu.Unlock()
	<-l.done
	return err
}
