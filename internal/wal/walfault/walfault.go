// Package walfault is the crash-fault-injection seam of the write-ahead
// log: a set of hooks internal/wal calls at every durability-relevant
// instant of the commit path. Production runs pass no hooks and pay a nil
// check per call; the crash harness installs hooks that kill the process
// with SIGKILL at a chosen commit point, shorten or corrupt the bytes
// handed to write(2), or make fsync report an I/O error — so recovery can
// be proven against every failure the real world produces, not just clean
// shutdowns.
package walfault

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Hooks are the WAL's fault-injection points. Every field may be nil. The
// crash points (BeforeAppend, AfterAppend, AfterSync, MidRotate,
// MidCheckpoint) are called synchronously from inside the WAL's critical
// sections, in commit order; a hook that never returns (process kill)
// therefore freezes the log at an exactly known byte state.
type Hooks struct {
	// BeforeAppend fires before the record's frame is written to the
	// segment file (crash here: the mutation is in memory, not in the WAL —
	// it was never acknowledged and must be absent after recovery).
	BeforeAppend func(lsn uint64)
	// AfterAppend fires after write(2) returned but before any fsync
	// (crash here: the record may or may not survive; if it was not yet
	// acknowledged either outcome is a correct recovery).
	AfterAppend func(lsn uint64)
	// AfterSync fires after a successful fsync, before any waiter is
	// released (crash here: the record is durable but the client never saw
	// the acknowledgment — recovery must still replay it).
	AfterSync func(lsn uint64)
	// MidRotate fires between sealing the full segment and creating its
	// successor.
	MidRotate func()
	// MidCheckpoint fires between writing the checkpoint snapshot to its
	// temp file and renaming it over the live snapshot.
	MidCheckpoint func()
	// TransformWrite, when set, may return a mutated copy of the frame
	// about to be written — truncated (a short write), bit-flipped, or
	// garbage — simulating torn and corrupt records without a real crash.
	TransformWrite func(frame []byte) []byte
	// SyncErr, when set, is consulted before each fsync; a non-nil return
	// is treated exactly like fsync failing with that error (sticky: the
	// log goes read-only, the waiter is never acknowledged).
	SyncErr func() error
}

// Crash-point names accepted by CrashSpec, in commit order.
const (
	PointPreAppend     = "pre-append"
	PointPostAppend    = "post-append"
	PointPostSync      = "post-fsync"
	PointMidRotate     = "mid-rotate"
	PointMidCheckpoint = "mid-checkpoint"
)

// CrashSpec builds Hooks that invoke kill() at the n-th occurrence of the
// named crash point, from a "point:n" spec (n counts from 1). The crash
// harness passes a func that SIGKILLs the running process; tests may pass
// any func, including one that panics. Unknown points are an error so a
// typo cannot silently produce a crash-free "crash" run.
func CrashSpec(spec string, kill func()) (*Hooks, error) {
	point, nstr, ok := strings.Cut(spec, ":")
	n := 1
	if ok {
		v, err := strconv.Atoi(nstr)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("walfault: bad crash count in %q", spec)
		}
		n = v
	}
	var hits atomic.Int64
	at := func() {
		if hits.Add(1) == int64(n) {
			kill()
		}
	}
	h := &Hooks{}
	switch point {
	case PointPreAppend:
		h.BeforeAppend = func(uint64) { at() }
	case PointPostAppend:
		h.AfterAppend = func(uint64) { at() }
	case PointPostSync:
		h.AfterSync = func(uint64) { at() }
	case PointMidRotate:
		h.MidRotate = func() { at() }
	case PointMidCheckpoint:
		h.MidCheckpoint = func() { at() }
	default:
		return nil, fmt.Errorf("walfault: unknown crash point %q", point)
	}
	return h, nil
}
