package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"perm/internal/repl"
	"perm/internal/storage"
	"perm/internal/wal/walfault"
	"perm/internal/wire"
)

// Options tunes a durable store opened with Open.
type Options struct {
	// Sync is the initial sync policy: "always" (default), "group",
	// "group(<ms>)" or "off". SET wal_sync changes it at runtime.
	Sync string
	// SegmentBytes rotates the append segment past this size (default
	// 16 MiB).
	SegmentBytes int64
	// CheckpointInterval, when > 0, starts the background checkpointer
	// with StartCheckpointer after recovery.
	CheckpointInterval time.Duration
	// Hooks injects crash and I/O faults (tests only).
	Hooks *walfault.Hooks
	// Logf, when set, receives recovery, checkpoint and failure logs.
	Logf func(format string, args ...any)
}

// Recovery summarizes what Open found and replayed — permserver logs it on
// startup so an operator can see exactly where the store resumed.
type Recovery struct {
	// SnapshotLSN is the LSN of the snapshot the store was loaded from (0
	// when the directory held none).
	SnapshotLSN uint64
	// Replayed counts WAL records applied on top of the snapshot.
	Replayed int
	// LastLSN is the recovered position: SnapshotLSN plus the replayed
	// tail.
	LastLSN uint64
	// Truncated reports that replay hit a torn or corrupt record and cut
	// the log there; TruncatedBytes is how much was discarded (including
	// any later, unreachable segments).
	Truncated      bool
	TruncatedBytes int64
}

func (r Recovery) String() string {
	s := fmt.Sprintf("snapshot LSN %d, %d WAL records replayed, recovered to LSN %d", r.SnapshotLSN, r.Replayed, r.LastLSN)
	if r.Truncated {
		s += fmt.Sprintf(", torn tail truncated (%d bytes discarded)", r.TruncatedBytes)
	}
	return s
}

const (
	snapshotName = "snapshot.perm"
	snapshotTmp  = "snapshot.perm.tmp"
	walSubdir    = "wal"
)

// Open recovers (or initializes) the durable store in dir and returns it
// wired to a write-ahead log: the newest valid snapshot is restored, WAL
// records past its LSN are replayed through the same apply path a
// replication follower uses, a torn tail is truncated rather than fatal,
// and every subsequent mutation is journaled and held to the sync policy
// before it is acknowledged. Close the manager to detach cleanly.
func Open(dir string, opts Options) (*storage.Store, *Manager, Recovery, error) {
	var rec Recovery
	mode, interval, err := ParseSyncPolicy(orDefault(opts.Sync, "always"))
	if err != nil {
		return nil, nil, rec, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	waldir := filepath.Join(dir, walSubdir)
	if err := os.MkdirAll(waldir, 0o755); err != nil {
		return nil, nil, rec, fmt.Errorf("wal: create data dir: %w", err)
	}
	// A leftover temp snapshot is an interrupted checkpoint: never valid,
	// never referenced, safe to discard.
	_ = os.Remove(filepath.Join(dir, snapshotTmp))

	store := storage.NewStore()
	snapPath := filepath.Join(dir, snapshotName)
	if f, err := os.Open(snapPath); err == nil {
		rerr := store.Restore(f)
		f.Close()
		if rerr != nil {
			return nil, nil, rec, fmt.Errorf("wal: restore %s: %w", snapPath, rerr)
		}
		rec.SnapshotLSN = store.Log().LastLSN()
	} else if !os.IsNotExist(err) {
		return nil, nil, rec, fmt.Errorf("wal: open snapshot: %w", err)
	}

	sealed, err := replayDir(waldir, store, rec.SnapshotLSN, &rec, logf)
	if err != nil {
		return nil, nil, rec, err
	}
	rec.LastLSN = store.Log().LastLSN()

	l, err := newSeglog(waldir, rec.LastLSN, store.Origin(), sealed, mode, interval, opts.SegmentBytes, opts.Hooks, logf)
	if err != nil {
		return nil, nil, rec, err
	}
	m := &Manager{dir: dir, log: l, store: store, logf: logf}
	m.checkpointLSN = rec.SnapshotLSN
	m.attach(store)
	if opts.CheckpointInterval > 0 {
		m.StartCheckpointer(opts.CheckpointInterval)
	}
	return store, m, rec, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// replayDir replays every decodable record past snapLSN into store, in LSN
// order, truncating at the first torn or corrupt frame. It returns the
// surviving segments (oldest first) for the append side's GC bookkeeping.
func replayDir(waldir string, store *storage.Store, snapLSN uint64, rec *Recovery, logf func(string, ...any)) ([]segment, error) {
	entries, err := os.ReadDir(waldir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		segs = append(segs, segment{first: first, path: filepath.Join(waldir, e.Name()), bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	var (
		prevLSN  uint64 // last record LSN seen (0 = none yet)
		origin   uint64 // origin stamped in the segment headers
		survived []segment
	)
	// No snapshot but a WAL from a previous life: the records belong to
	// that life's history, so the rebuilt store adopts its origin — a
	// replication peer (and the next segment this life writes) must see
	// this as the same timeline. Runs on the truncated path too.
	adoptOrigin := func() {
		if snapLSN == 0 && origin != 0 {
			store.AdoptOrigin(origin)
		}
	}
	truncateAt := func(i int, offset int64, why string) ([]segment, error) {
		// Everything from this byte on was never acknowledged under the
		// sync policy (or is re-fetchable from a replication primary):
		// truncate the bad frame away and drop the unreachable later
		// segments, so the next life appends from a clean, verified tail.
		rec.Truncated = true
		rec.TruncatedBytes += segs[i].bytes - offset
		logf("wal: %s in %s at offset %d; truncating", why, segs[i].path, offset)
		if offset <= segHeaderSize {
			if err := os.Remove(segs[i].path); err != nil {
				return nil, fmt.Errorf("wal: remove torn segment: %w", err)
			}
		} else {
			if err := os.Truncate(segs[i].path, offset); err != nil {
				return nil, fmt.Errorf("wal: truncate torn segment: %w", err)
			}
			survived = append(survived, segment{first: segs[i].first, path: segs[i].path, bytes: offset})
		}
		for _, s := range segs[i+1:] {
			rec.TruncatedBytes += s.bytes
			logf("wal: dropping unreachable segment %s (%d bytes)", s.path, s.bytes)
			if err := os.Remove(s.path); err != nil {
				return nil, fmt.Errorf("wal: remove unreachable segment: %w", err)
			}
		}
		adoptOrigin()
		return survived, nil
	}

	for i, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		segRes, err := replaySegment(f, seg, snapLSN, &prevLSN, &origin, store, rec)
		f.Close()
		if err != nil {
			return nil, err
		}
		if segRes.torn {
			return truncateAt(i, segRes.goodOffset, segRes.why)
		}
		// A trailing header-only segment is the footprint of a crash right
		// after rotation (or first boot) created it: it holds no records, and
		// the append side will reuse its name for the fresh live segment. It
		// must NOT survive as a sealed segment — tracking the same file both
		// as sealed and as the live tail would let a later checkpoint GC
		// unlink the segment being appended to, losing acknowledged writes.
		if i == len(segs)-1 && segRes.goodOffset == segHeaderSize {
			logf("wal: dropping empty trailing segment %s", seg.path)
			if err := os.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("wal: remove empty segment: %w", err)
			}
			break
		}
		survived = append(survived, segment{first: seg.first, path: seg.path, bytes: seg.bytes})
	}
	adoptOrigin()
	return survived, nil
}

type segResult struct {
	torn       bool
	goodOffset int64 // bytes of the segment verified good (header included)
	why        string
}

// replaySegment applies one segment's records. Continuity is strict: the
// first record seen across all segments establishes the sequence, every
// later one must be exactly prev+1, and the first record applied on top of
// the snapshot must be snapLSN+1 — a gap means segments were lost, which
// is corruption, not a torn tail.
func replaySegment(f *os.File, seg segment, snapLSN uint64, prevLSN, origin *uint64, store *storage.Store, rec *Recovery) (segResult, error) {
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// A header-less file can only be a segment created but never
		// synced: torn, empty.
		return segResult{torn: true, goodOffset: 0, why: "truncated segment header"}, nil
	}
	if [8]byte(hdr[:8]) != segMagic {
		return segResult{torn: true, goodOffset: 0, why: "bad segment magic"}, nil
	}
	hdrFirst := binary.LittleEndian.Uint64(hdr[8:16])
	hdrOrigin := binary.LittleEndian.Uint64(hdr[16:24])
	if hdrFirst != seg.first {
		return segResult{torn: true, goodOffset: 0, why: "segment name disagrees with header"}, nil
	}
	if *origin == 0 {
		*origin = hdrOrigin
	} else if hdrOrigin != *origin {
		return segResult{}, fmt.Errorf("wal: segment %s carries history origin %x, earlier segments %x — mixed data directories", seg.path, hdrOrigin, *origin)
	}
	if snapLSN > 0 && store.Origin() != 0 && hdrOrigin != store.Origin() {
		return segResult{}, fmt.Errorf("wal: segment %s carries history origin %x, snapshot %x — mixed data directories", seg.path, hdrOrigin, store.Origin())
	}

	offset := int64(segHeaderSize)
	var frameHdr [frameHeaderSize]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, frameHdr[:]); err != nil {
			if err == io.EOF {
				return segResult{goodOffset: offset}, nil // clean end
			}
			return segResult{torn: true, goodOffset: offset, why: "torn frame header"}, nil
		}
		plen := binary.LittleEndian.Uint32(frameHdr[0:4])
		want := binary.LittleEndian.Uint32(frameHdr[4:8])
		if plen == 0 || plen > maxFramePayload {
			return segResult{torn: true, goodOffset: offset, why: "impossible frame length"}, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return segResult{torn: true, goodOffset: offset, why: "torn record payload"}, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return segResult{torn: true, goodOffset: offset, why: "record checksum mismatch"}, nil
		}
		r, err := repl.ReadRecord(wire.NewReader(payload))
		if err != nil {
			return segResult{torn: true, goodOffset: offset, why: "undecodable record"}, nil
		}
		if *prevLSN != 0 && r.LSN != *prevLSN+1 {
			// CRC-valid records on both sides of a hole: records were lost,
			// which is corruption, not a torn tail. Truncating here would
			// silently discard the later (potentially acknowledged) records,
			// so refuse to recover instead.
			return segResult{}, fmt.Errorf("wal: segment %s has an LSN gap (record %d follows %d) — records are missing, refusing to recover", seg.path, r.LSN, *prevLSN)
		}
		*prevLSN = r.LSN
		if r.LSN > snapLSN {
			if want := store.Log().LastLSN() + 1; r.LSN != want {
				return segResult{}, fmt.Errorf("wal: record LSN %d cannot apply to store at %d — WAL and snapshot disagree", r.LSN, want-1)
			}
			if err := store.ApplyChange(r); err != nil {
				return segResult{}, fmt.Errorf("wal: replay LSN %d: %w", r.LSN, err)
			}
			rec.Replayed++
		}
		offset += frameHeaderSize + int64(plen)
	}
}
