package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"perm/internal/catalog"
	"perm/internal/value"
)

// BenchmarkWALAppend measures acknowledged single-row inserts through the
// full durable write path (append + sync policy + WaitDurable), across the
// three sync policies and increasing writer concurrency. The interesting
// ratios: group commit amortizes fsync across concurrent writers, so
// group(2) approaches off as writers grow while always pays one fsync per
// batch of waiters.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []string{"always", "group(2)", "off"} {
		for _, writers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("sync=%s/writers=%d", policy, writers), func(b *testing.B) {
				dir := b.TempDir()
				store, mgr, _, err := Open(dir, Options{Sync: policy})
				if err != nil {
					b.Fatal(err)
				}
				tab, err := store.CreateTable(&catalog.TableDef{Name: "kv", Columns: []catalog.Column{
					{Name: "k", Type: value.KindInt},
					{Name: "v", Type: value.KindInt},
				}})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				var next atomic.Int64
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if _, err := tab.Insert(value.Row{value.NewInt(i), value.NewInt(i)}); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				if err := mgr.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
