package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"perm/internal/storage"
	"perm/internal/wal/walfault"
)

// Manager owns the durable side of one data directory: the append log, the
// snapshot file, and the background checkpointer. It also implements the
// policy surface behind SET wal_sync / SHOW wal_status (adapted to the
// engine's controller interface by internal/server).
type Manager struct {
	dir  string
	log  *seglog
	logf func(format string, args ...any)

	mu            sync.Mutex
	store         *storage.Store
	checkpointLSN uint64
	checkpoints   int

	ckStop chan struct{}
	ckDone chan struct{}
}

// Store returns the store the manager currently journals (a replica's
// bootstrap may swap it via AdoptStore).
func (m *Manager) Store() *storage.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// attach journals every record s's change log accepts and gates s's
// mutations on WAL durability. Recovery replays BEFORE attaching, so
// replayed records are not re-journaled.
func (m *Manager) attach(s *storage.Store) {
	s.Log().SetAppendHook(m.log.append)
	s.SetDurability(m.log)
}

// SetSyncPolicy switches the fsync policy at runtime: "always",
// "group(<ms>)" or "off".
func (m *Manager) SetSyncPolicy(policy string) error {
	mode, interval, err := ParseSyncPolicy(policy)
	if err != nil {
		return err
	}
	m.log.setSync(mode, interval)
	return nil
}

// Status is the observable WAL state (SHOW wal_status).
type Status struct {
	// Mode is the active sync policy string.
	Mode string
	// LastLSN is the newest journaled record; DurableLSN the newest one
	// fsync has covered (they converge at every sync-policy commit point).
	LastLSN, DurableLSN uint64
	// CheckpointLSN is the LSN of the snapshot on disk — recovery replays
	// only records beyond it.
	CheckpointLSN uint64
	// Checkpoints counts snapshots written in this process life.
	Checkpoints int
	// Segments and WALBytes size the live log.
	Segments int
	WALBytes int64
	// Err is the sticky durability failure, empty while healthy.
	Err string
}

// Status reports the manager's state.
func (m *Manager) Status() Status {
	mode, last, durable, segs, bytes, errStr := m.log.stats()
	m.mu.Lock()
	ck, n := m.checkpointLSN, m.checkpoints
	m.mu.Unlock()
	return Status{Mode: mode, LastLSN: last, DurableLSN: durable, CheckpointLSN: ck, Checkpoints: n, Segments: segs, WALBytes: bytes, Err: errStr}
}

// Checkpoint writes a consistent snapshot of the current store (via the
// non-blocking SaveLSN: readers never wait, writers only for the
// header-collection instant), atomically replaces the snapshot file, and
// garbage-collects segments wholly below the checkpoint and the
// replica-retention floor. Safe to call concurrently with traffic and with
// the background checkpointer.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointLocked()
}

func (m *Manager) checkpointLocked() error {
	store := m.store
	tmp := filepath.Join(m.dir, snapshotTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	lsn, err := store.SaveLSN(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if h := m.hooks(); h != nil && h.MidCheckpoint != nil {
		h.MidCheckpoint()
	}
	// Rename-then-fsync-dir makes the switch atomic: recovery sees either
	// the old snapshot (WAL still covers the gap — segments are only
	// removed below) or the new one, never a half-written file.
	if err := os.Rename(tmp, filepath.Join(m.dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}
	m.checkpointLSN = lsn
	m.checkpoints++
	mCheckpoints.Inc()
	// GC floor: segments below the checkpoint are redundant with the
	// snapshot, but segments the in-memory change log still retains stay —
	// they cost little and keep the on-disk history aligned with what a
	// replication follower could still fetch from us.
	floor := lsn + 1
	if oldest := store.Log().OldestLSN(); oldest > 0 && oldest < floor {
		floor = oldest
	}
	if n := m.log.removeBelow(floor); n > 0 {
		m.logf("wal: checkpoint at LSN %d, removed %d obsolete segments", lsn, n)
	} else {
		m.logf("wal: checkpoint at LSN %d", lsn)
	}
	return nil
}

func (m *Manager) hooks() *walfault.Hooks { return m.log.hooks }

// StartCheckpointer checkpoints every interval while there are new records
// to absorb. Stop it with Close.
func (m *Manager) StartCheckpointer(interval time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ckStop != nil || interval <= 0 {
		return
	}
	m.ckStop = make(chan struct{})
	m.ckDone = make(chan struct{})
	stop, done := m.ckStop, m.ckDone
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			m.mu.Lock()
			if m.store.Log().LastLSN() != m.checkpointLSN {
				if err := m.checkpointLocked(); err != nil {
					m.logf("wal: background checkpoint: %v", err)
				}
			}
			m.mu.Unlock()
		}
	}()
}

// AdoptStore rebases the manager onto a freshly bootstrapped store — the
// replica path: when the follower restores a new snapshot from the primary
// (first boot, divergence, timeline fork), the local WAL describes a
// history the new store no longer continues. The old segments are
// discarded, the bootstrap snapshot becomes the on-disk checkpoint, and
// journaling re-attaches to the fresh store, so a replica restart recovers
// locally and resumes the feed incrementally instead of re-bootstrapping.
//
// Ordering is crash-safe in the weak-but-consistent sense, and every crash
// window recovers to a state replay accepts: (1) the old-origin segments
// are removed first — a crash here recovers the old snapshot with no WAL
// tail, an older consistent state, and the follower (it is always a
// follower that calls this) re-bootstraps from the primary; (2) the new
// snapshot is installed — a crash here recovers the fresh state the same
// way; (3) only then is the first new-origin segment created, so no crash
// can leave a new-origin segment next to an old-origin snapshot (which
// recovery would reject as mixed data directories).
func (m *Manager) AdoptStore(fresh *storage.Store) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.log.Err(); err != nil {
		return err
	}
	// Detach the outgoing store first: a late mutation on it must not
	// interleave its records into the new store's journal, and must not
	// wait on a log that will never see its LSNs again.
	m.store.Log().SetAppendHook(nil)
	m.store.SetDurability(nil)
	if err := m.log.discard(); err != nil {
		return err
	}
	m.store = fresh
	if err := m.checkpointLocked(); err != nil {
		return err
	}
	if err := m.log.restart(fresh.Log().LastLSN(), fresh.Origin()); err != nil {
		return err
	}
	m.attach(fresh)
	return nil
}

// Close stops the checkpointer and closes the log after a final fsync. It
// does NOT write a final checkpoint — callers that want one (permserver's
// graceful shutdown) call Checkpoint first, so tests can exercise pure
// snapshot+replay recovery.
func (m *Manager) Close() error {
	m.mu.Lock()
	stop, done := m.ckStop, m.ckDone
	m.ckStop, m.ckDone = nil, nil
	if m.store != nil {
		m.store.Log().SetAppendHook(nil)
	}
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return m.log.close()
}
