package algebra

import (
	"strings"
	"testing"

	"perm/internal/sql"
	"perm/internal/value"
)

// sqlgen_test.go covers the algebra→SQL decompiler operator by operator; the
// engine-level round-trip tests assert semantic equivalence, these assert
// the structural SQL shapes.

func TestToSQLSelect(t *testing.T) {
	sel := &Select{Input: scan("t", "a"), Cond: &Bin{Op: sql.OpGt, L: col(0), R: &Const{Val: value.NewInt(1)}}}
	text := ToSQL(sel)
	if !strings.Contains(text, "WHERE") || !strings.Contains(text, "> 1") {
		t.Errorf("SQL = %s", text)
	}
}

func TestToSQLJoins(t *testing.T) {
	mk := func(kind JoinKind) string {
		j := NewJoin(kind, scan("a", "x"), scan("b", "y"),
			&Bin{Op: sql.OpEq, L: col(0), R: col(1)})
		if kind == JoinCross {
			j = NewJoin(kind, scan("a", "x"), scan("b", "y"), nil)
		}
		return ToSQL(j)
	}
	if !strings.Contains(mk(JoinLeft), "LEFT JOIN") {
		t.Error("left join keyword missing")
	}
	if !strings.Contains(mk(JoinRight), "RIGHT JOIN") {
		t.Error("right join keyword missing")
	}
	if !strings.Contains(mk(JoinFull), "FULL JOIN") {
		t.Error("full join keyword missing")
	}
	if !strings.Contains(mk(JoinCross), "CROSS JOIN") {
		t.Error("cross join keyword missing")
	}
	semi := ToSQL(NewJoin(JoinSemi, scan("a", "x"), scan("b", "y"),
		&Bin{Op: sql.OpEq, L: col(0), R: col(1)}))
	if !strings.Contains(semi, "EXISTS") {
		t.Errorf("semi join must render as EXISTS: %s", semi)
	}
	anti := ToSQL(NewJoin(JoinAnti, scan("a", "x"), scan("b", "y"),
		&Bin{Op: sql.OpEq, L: col(0), R: col(1)}))
	if !strings.Contains(anti, "NOT EXISTS") {
		t.Errorf("anti join must render as NOT EXISTS: %s", anti)
	}
}

func TestToSQLAgg(t *testing.T) {
	agg := NewAgg(scan("t", "a", "b"),
		[]Expr{col(0)},
		[]AggExpr{{Func: AggCount}, {Func: AggSum, Arg: col(1), Distinct: true}},
		[]string{"a"}, []string{"cnt", "total"})
	text := ToSQL(agg)
	for _, want := range []string{"GROUP BY", "count(*)", "sum(DISTINCT"} {
		if !strings.Contains(text, want) {
			t.Errorf("SQL missing %q: %s", want, text)
		}
	}
}

func TestToSQLSetOps(t *testing.T) {
	kinds := map[SetOpKind]string{
		UnionAll:          "UNION ALL",
		UnionDistinct:     "UNION",
		IntersectAll:      "INTERSECT ALL",
		IntersectDistinct: "INTERSECT",
		ExceptAll:         "EXCEPT ALL",
		ExceptDistinct:    "EXCEPT",
	}
	for kind, kw := range kinds {
		text := ToSQL(NewSetOp(kind, scan("a", "x"), scan("b", "x")))
		if !strings.Contains(text, kw) {
			t.Errorf("%v: missing %q in %s", kind, kw, text)
		}
	}
}

func TestToSQLSortLimitDistinct(t *testing.T) {
	srt := &Sort{Input: scan("t", "a"), Keys: []SortKey{{Expr: col(0), Desc: true}}}
	text := ToSQL(srt)
	if !strings.Contains(text, "ORDER BY") || !strings.Contains(text, "DESC") {
		t.Errorf("sort SQL = %s", text)
	}
	lim := &Limit{Input: scan("t", "a"), Count: 5, Offset: 2}
	text = ToSQL(lim)
	if !strings.Contains(text, "LIMIT 5") || !strings.Contains(text, "OFFSET 2") {
		t.Errorf("limit SQL = %s", text)
	}
	text = ToSQL(&Distinct{Input: scan("t", "a")})
	if !strings.Contains(text, "SELECT DISTINCT") {
		t.Errorf("distinct SQL = %s", text)
	}
}

func TestToSQLValues(t *testing.T) {
	v := &Values{
		Rows: [][]Expr{{&Const{Val: value.NewInt(1)}}, {&Const{Val: value.NewInt(2)}}},
		Sch:  Schema{{Name: "x", Type: value.KindInt}},
	}
	text := ToSQL(v)
	if !strings.Contains(text, "UNION ALL") {
		t.Errorf("values SQL = %s", text)
	}
	empty := &Values{Sch: Schema{{Name: "x", Type: value.KindInt}}}
	if !strings.Contains(ToSQL(empty), "WHERE FALSE") {
		t.Errorf("empty values SQL = %s", ToSQL(empty))
	}
	// FROM-less select body: one empty row.
	oneEmpty := &Values{Rows: [][]Expr{{}}, Sch: Schema{}}
	if !strings.Contains(ToSQL(oneEmpty), "__dummy__") {
		t.Errorf("empty row SQL = %s", ToSQL(oneEmpty))
	}
}

func TestToSQLExprForms(t *testing.T) {
	sch := scan("t", "a", "b")
	exprs := []Expr{
		&Not{E: &IsNull{E: col(0)}},
		&Neg{E: col(0)},
		&IsNull{E: col(0), Not: true},
		&Func{Name: "coalesce", Args: []Expr{col(0), &Const{Val: value.NewInt(0)}}, Typ: value.KindInt},
		&Case{Whens: []CaseWhen{{Cond: &IsNull{E: col(0)}, Result: col(1)}}, Else: col(0), Typ: value.KindInt},
		&InList{E: col(0), List: []Expr{&Const{Val: value.NewInt(1)}}, Neg: true},
		&Like{E: &Cast{E: col(0), To: value.KindString}, Pattern: &Const{Val: value.NewString("%x")}},
		&Bin{Op: sql.OpNotDistinct, L: col(0), R: col(1)},
	}
	wants := []string{
		"NOT", "(-", "IS NOT NULL", "coalesce(", "CASE WHEN", "NOT IN (",
		"LIKE", "IS NOT DISTINCT FROM",
	}
	for i, e := range exprs {
		p := NewProject(sch, []Expr{e}, []string{"o"})
		text := ToSQL(p)
		if !strings.Contains(text, wants[i]) {
			t.Errorf("expr %d: missing %q in %s", i, wants[i], text)
		}
	}
}

func TestToSQLSubplans(t *testing.T) {
	inner := scan("u", "z")
	mk := func(sp *Subplan) string {
		sel := &Select{Input: scan("t", "a"), Cond: sp}
		return ToSQL(sel)
	}
	if text := mk(&Subplan{Mode: ExistsSubplan, Plan: inner}); !strings.Contains(text, "EXISTS (") {
		t.Errorf("exists = %s", text)
	}
	if text := mk(&Subplan{Mode: ExistsSubplan, Plan: inner, Neg: true}); !strings.Contains(text, "NOT EXISTS") {
		t.Errorf("not exists = %s", text)
	}
	if text := mk(&Subplan{Mode: InSubplan, Plan: inner, Needle: col(0)}); !strings.Contains(text, "IN (") {
		t.Errorf("in = %s", text)
	}
	if text := mk(&Subplan{Mode: AnySubplan, Plan: inner, Needle: col(0), CmpOp: sql.OpGt}); !strings.Contains(text, "> ANY") {
		t.Errorf("any = %s", text)
	}
	if text := mk(&Subplan{Mode: AllSubplan, Plan: inner, Needle: col(0), CmpOp: sql.OpLt}); !strings.Contains(text, "< ALL") {
		t.Errorf("all = %s", text)
	}
}

func TestSQLIdentQuoting(t *testing.T) {
	if sqlIdent("plain_name2") != "plain_name2" {
		t.Error("plain names must not quote")
	}
	if sqlIdent("select") != `"select"` {
		t.Error("reserved words must quote")
	}
	if sqlIdent("Mixed") != `"Mixed"` {
		t.Error("mixed case must quote")
	}
	if sqlIdent(`wei"rd`) != `"wei""rd"` {
		t.Error("embedded quotes must double")
	}
}

func TestAnnotatedTree(t *testing.T) {
	j := NewJoin(JoinInner, scan("a", "x"), scan("b", "y"), nil)
	out := AnnotatedTree(j, func(op Op) string {
		if _, ok := op.(*Scan); ok {
			return "(rows≈7)"
		}
		return ""
	})
	if strings.Count(out, "(rows≈7)") != 2 {
		t.Errorf("annotations missing:\n%s", out)
	}
}

func TestTreeDescribeCoverage(t *testing.T) {
	ops := []Op{
		&Select{Input: scan("t", "a"), Cond: &IsNull{E: col(0)}},
		NewAgg(scan("t", "a"), []Expr{col(0)}, []AggExpr{{Func: AggCount}}, nil, nil),
		&Sort{Input: scan("t", "a"), Keys: []SortKey{{Expr: col(0), Desc: true}}},
		&Limit{Input: scan("t", "a"), Count: -1, Offset: 3},
		&Values{Rows: [][]Expr{{}}, Sch: Schema{}},
		&BaseRel{Input: scan("t", "a"), RelName: "v"},
		&ProvDone{Input: scan("t", "a")},
		NewSetOp(ExceptDistinct, scan("t", "a"), scan("u", "b")),
	}
	for _, op := range ops {
		if Tree(op) == "" {
			t.Errorf("empty tree for %T", op)
		}
	}
	// Long projection lists truncate.
	var exprs []Expr
	var names []string
	for i := 0; i < 40; i++ {
		exprs = append(exprs, &Const{Val: value.NewString("some_longish_constant")})
		names = append(names, "c")
	}
	p := NewProject(scan("t", "a"), exprs, names)
	if !strings.Contains(Tree(p), "...") {
		t.Error("long projections must truncate in tree display")
	}
}

func TestShiftColsInsideSubplanOuterRefs(t *testing.T) {
	// OuterRefs inside a correlated subplan live in the outer column space
	// and must be remapped by MapCols/ShiftCols on the outer expression.
	inner := &Select{
		Input: scan("u", "z"),
		Cond:  &Bin{Op: sql.OpEq, L: col(0), R: &OuterRef{Idx: 1, Typ: value.KindInt}},
	}
	sp := &Subplan{Mode: ExistsSubplan, Plan: inner, Correlated: true}
	shifted := ShiftCols(sp, 3).(*Subplan)
	var gotIdx = -1
	Walk(shifted.Plan, func(op Op) {
		if sel, ok := op.(*Select); ok {
			if b, ok := sel.Cond.(*Bin); ok {
				if or, ok := b.R.(*OuterRef); ok {
					gotIdx = or.Idx
				}
			}
		}
	})
	if gotIdx != 4 {
		t.Errorf("outer ref idx = %d, want 4", gotIdx)
	}
}
