package algebra

import (
	"fmt"
	"strings"

	"perm/internal/value"
)

// Column is one attribute of an operator's output schema. Provenance
// metadata rides along: IsProv marks a provenance attribute, ProvRel/ProvAttr
// record the base relation and attribute it was derived from (which gives the
// paper's prov_<rel>_<attr> naming scheme).
type Column struct {
	Name     string
	Table    string // qualifier for name resolution ("" when none)
	Type     value.Kind
	IsProv   bool
	ProvRel  string
	ProvAttr string
}

// QualifiedName renders table.name or just name.
func (c Column) QualifiedName() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Schema is an ordered list of output columns.
type Schema []Column

// Clone copies the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Names returns the column names.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// ProvIdx returns the indices of the provenance columns.
func (s Schema) ProvIdx() []int {
	var out []int
	for i, c := range s {
		if c.IsProv {
			out = append(out, i)
		}
	}
	return out
}

// DataIdx returns the indices of the non-provenance columns.
func (s Schema) DataIdx() []int {
	var out []int
	for i, c := range s {
		if !c.IsProv {
			out = append(out, i)
		}
	}
	return out
}

// String renders the schema for plan display.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		p := c.Name
		if c.IsProv {
			p += "*"
		}
		parts[i] = p
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Op is a logical algebra operator.
type Op interface {
	// Schema is the output row layout.
	Schema() Schema
	// Children returns the inputs in order.
	Children() []Op
	// WithChildren returns a copy of the operator with the inputs replaced.
	WithChildren(children []Op) Op
	// Name is the operator's display name (with the algebra symbol Perm's
	// browser shows in its trees).
	Name() string
}

// --- Scan --------------------------------------------------------------------

// Scan reads a base relation. Alias is the FROM-clause correlation name used
// for column qualification.
type Scan struct {
	Table string
	Alias string
	Sch   Schema
}

// Schema implements Op.
func (s *Scan) Schema() Schema { return s.Sch }

// Children implements Op.
func (s *Scan) Children() []Op { return nil }

// WithChildren implements Op.
func (s *Scan) WithChildren(children []Op) Op {
	if len(children) != 0 {
		panic("Scan takes no children")
	}
	return s
}

// Name implements Op.
func (s *Scan) Name() string {
	if s.Alias != "" && !strings.EqualFold(s.Alias, s.Table) {
		return fmt.Sprintf("Scan %s AS %s", s.Table, s.Alias)
	}
	return "Scan " + s.Table
}

// --- Values ------------------------------------------------------------------

// Values produces literal rows (it backs FROM-less SELECTs with one empty
// row, and INSERT ... VALUES).
type Values struct {
	Rows [][]Expr
	Sch  Schema
}

// Schema implements Op.
func (v *Values) Schema() Schema { return v.Sch }

// Children implements Op.
func (v *Values) Children() []Op { return nil }

// WithChildren implements Op.
func (v *Values) WithChildren(children []Op) Op {
	if len(children) != 0 {
		panic("Values takes no children")
	}
	return v
}

// Name implements Op.
func (v *Values) Name() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// --- Project -----------------------------------------------------------------

// Project computes the output expressions (Π).
type Project struct {
	Input Op
	Exprs []Expr
	Sch   Schema
}

// Schema implements Op.
func (p *Project) Schema() Schema { return p.Sch }

// Children implements Op.
func (p *Project) Children() []Op { return []Op{p.Input} }

// WithChildren implements Op.
func (p *Project) WithChildren(children []Op) Op {
	cp := *p
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (p *Project) Name() string { return "Project Π" }

// NewProject builds a Project with the given output names over input.
func NewProject(input Op, exprs []Expr, names []string) *Project {
	sch := make(Schema, len(exprs))
	for i, e := range exprs {
		sch[i] = Column{Name: names[i], Type: e.Type()}
	}
	return &Project{Input: input, Exprs: exprs, Sch: sch}
}

// IdentityExprs returns ColIdx expressions for every column of sch.
func IdentityExprs(sch Schema) []Expr {
	out := make([]Expr, len(sch))
	for i, c := range sch {
		out[i] = &ColIdx{Idx: i, Typ: c.Type, Name: c.Name}
	}
	return out
}

// --- Select ------------------------------------------------------------------

// Select filters rows (σ).
type Select struct {
	Input Op
	Cond  Expr
}

// Schema implements Op.
func (s *Select) Schema() Schema { return s.Input.Schema() }

// Children implements Op.
func (s *Select) Children() []Op { return []Op{s.Input} }

// WithChildren implements Op.
func (s *Select) WithChildren(children []Op) Op {
	cp := *s
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (s *Select) Name() string { return "Select σ" }

// --- Join --------------------------------------------------------------------

// JoinKind enumerates logical join types.
type JoinKind int

// Join kinds. Semi and anti joins are produced by subquery de-correlation.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
	JoinSemi
	JoinAnti
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "Inner"
	case JoinLeft:
		return "Left"
	case JoinRight:
		return "Right"
	case JoinFull:
		return "Full"
	case JoinCross:
		return "Cross"
	case JoinSemi:
		return "Semi"
	case JoinAnti:
		return "Anti"
	}
	return "?"
}

// Join combines two inputs (⋈). Cond is evaluated over the concatenated
// schema left++right; for semi/anti joins the output schema is just the left
// schema. When Lateral is set, the right input may contain OuterRef
// expressions that bind to the current left row (a correlated / LATERAL
// join); the provenance rewriter produces these when de-correlating nested
// subqueries per the EDBT '09 strategy.
type Join struct {
	Kind    JoinKind
	Left    Op
	Right   Op
	Cond    Expr // nil for cross join
	Lateral bool
	Sch     Schema
}

// Schema implements Op.
func (j *Join) Schema() Schema { return j.Sch }

// Children implements Op.
func (j *Join) Children() []Op { return []Op{j.Left, j.Right} }

// WithChildren implements Op.
func (j *Join) WithChildren(children []Op) Op {
	cp := *j
	cp.Left, cp.Right = children[0], children[1]
	return &cp
}

// Name implements Op.
func (j *Join) Name() string { return fmt.Sprintf("Join ⋈ %s", j.Kind) }

// NewJoin builds a join with the schema derived from the inputs. Outer joins
// make the null-extendable side's columns nullable, which the type system
// models implicitly (kinds are unchanged).
func NewJoin(kind JoinKind, left, right Op, cond Expr) *Join {
	var sch Schema
	switch kind {
	case JoinSemi, JoinAnti:
		sch = left.Schema().Clone()
	default:
		sch = append(left.Schema().Clone(), right.Schema()...)
	}
	return &Join{Kind: kind, Left: left, Right: right, Cond: cond, Sch: sch}
}

// --- BaseRel (SQL-PLE BASERELATION) -------------------------------------------

// BaseRel is an execution no-op that instructs the provenance rewriter to
// treat its subtree like a base relation (SQL-PLE keyword BASERELATION): the
// rewrite stops here and the subtree's output attributes are duplicated as
// its provenance attributes under the name RelName.
type BaseRel struct {
	Input   Op
	RelName string
}

// Schema implements Op.
func (b *BaseRel) Schema() Schema { return b.Input.Schema() }

// Children implements Op.
func (b *BaseRel) Children() []Op { return []Op{b.Input} }

// WithChildren implements Op.
func (b *BaseRel) WithChildren(children []Op) Op {
	cp := *b
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (b *BaseRel) Name() string { return fmt.Sprintf("BaseRelation(%s)", b.RelName) }

// --- ProvDone ------------------------------------------------------------------

// ProvDone is an execution no-op marking a subtree whose provenance
// attributes are already complete: external provenance declared via
// PROVENANCE (attrs), or a nested SELECT PROVENANCE block that has already
// been rewritten. The provenance rewriter does not descend into it — the
// flagged columns of its schema ARE its provenance ("the rewrite rules are
// unaware of how the provenance attributes of their input were produced",
// §2.2).
type ProvDone struct {
	Input Op
}

// Schema implements Op.
func (p *ProvDone) Schema() Schema { return p.Input.Schema() }

// Children implements Op.
func (p *ProvDone) Children() []Op { return []Op{p.Input} }

// WithChildren implements Op.
func (p *ProvDone) WithChildren(children []Op) Op {
	cp := *p
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (p *ProvDone) Name() string { return "ProvenanceGiven" }

// --- Aggregate ---------------------------------------------------------------

// AggFunc names an aggregate function.
type AggFunc string

// Supported aggregates.
const (
	AggCount AggFunc = "count"
	AggSum   AggFunc = "sum"
	AggAvg   AggFunc = "avg"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
)

// AggExpr is one aggregate computation.
type AggExpr struct {
	Func     AggFunc
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

// Type returns the aggregate's result kind.
func (a AggExpr) Type() value.Kind {
	switch a.Func {
	case AggCount:
		return value.KindInt
	case AggAvg:
		return value.KindFloat
	case AggSum, AggMin, AggMax:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return value.KindInt
	}
	return value.KindNull
}

func (a AggExpr) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return fmt.Sprintf("%s(%s)", a.Func, arg)
}

// Agg groups and aggregates (α). Output schema: group expressions first (in
// order), then one column per aggregate. With no group-by expressions it
// produces exactly one row.
type Agg struct {
	Input   Op
	GroupBy []Expr
	Aggs    []AggExpr
	Sch     Schema
}

// Schema implements Op.
func (a *Agg) Schema() Schema { return a.Sch }

// Children implements Op.
func (a *Agg) Children() []Op { return []Op{a.Input} }

// WithChildren implements Op.
func (a *Agg) WithChildren(children []Op) Op {
	cp := *a
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (a *Agg) Name() string { return "Aggregate α" }

// NewAgg builds an aggregation node with generated column names.
func NewAgg(input Op, groupBy []Expr, aggs []AggExpr, groupNames, aggNames []string) *Agg {
	sch := make(Schema, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		name := fmt.Sprintf("g%d", i+1)
		if i < len(groupNames) && groupNames[i] != "" {
			name = groupNames[i]
		}
		sch = append(sch, Column{Name: name, Type: g.Type()})
	}
	for i, a := range aggs {
		name := fmt.Sprintf("agg%d", i+1)
		if i < len(aggNames) && aggNames[i] != "" {
			name = aggNames[i]
		}
		sch = append(sch, Column{Name: name, Type: a.Type()})
	}
	return &Agg{Input: input, GroupBy: groupBy, Aggs: aggs, Sch: sch}
}

// --- Distinct ----------------------------------------------------------------

// Distinct removes duplicate rows (δ).
type Distinct struct{ Input Op }

// Schema implements Op.
func (d *Distinct) Schema() Schema { return d.Input.Schema() }

// Children implements Op.
func (d *Distinct) Children() []Op { return []Op{d.Input} }

// WithChildren implements Op.
func (d *Distinct) WithChildren(children []Op) Op {
	cp := *d
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (d *Distinct) Name() string { return "Distinct δ" }

// --- Set operations ------------------------------------------------------------

// SetOpKind enumerates bag/set union, intersection and difference.
type SetOpKind int

// Set operation kinds. The *All variants are bag semantics.
const (
	UnionAll SetOpKind = iota
	UnionDistinct
	IntersectAll
	IntersectDistinct
	ExceptAll
	ExceptDistinct
)

func (k SetOpKind) String() string {
	switch k {
	case UnionAll:
		return "Union All ∪"
	case UnionDistinct:
		return "Union ∪"
	case IntersectAll:
		return "Intersect All ∩"
	case IntersectDistinct:
		return "Intersect ∩"
	case ExceptAll:
		return "Except All −"
	case ExceptDistinct:
		return "Except −"
	}
	return "SetOp"
}

// SetOp combines two inputs with matching column counts. The output schema
// follows the left input (names and qualifiers), per SQL.
type SetOp struct {
	Kind  SetOpKind
	Left  Op
	Right Op
	Sch   Schema
}

// Schema implements Op.
func (s *SetOp) Schema() Schema { return s.Sch }

// Children implements Op.
func (s *SetOp) Children() []Op { return []Op{s.Left, s.Right} }

// WithChildren implements Op.
func (s *SetOp) WithChildren(children []Op) Op {
	cp := *s
	cp.Left, cp.Right = children[0], children[1]
	return &cp
}

// Name implements Op.
func (s *SetOp) Name() string { return s.Kind.String() }

// NewSetOp builds a set operation whose schema mirrors the left input with
// types widened column-wise.
func NewSetOp(kind SetOpKind, left, right Op) *SetOp {
	ls, rs := left.Schema(), right.Schema()
	sch := ls.Clone()
	for i := range sch {
		if i < len(rs) {
			sch[i].Type = value.CommonKind(ls[i].Type, rs[i].Type)
		}
	}
	return &SetOp{Kind: kind, Left: left, Right: right, Sch: sch}
}

// --- Sort / Limit ---------------------------------------------------------------

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort orders rows (τ).
type Sort struct {
	Input Op
	Keys  []SortKey
}

// Schema implements Op.
func (s *Sort) Schema() Schema { return s.Input.Schema() }

// Children implements Op.
func (s *Sort) Children() []Op { return []Op{s.Input} }

// WithChildren implements Op.
func (s *Sort) WithChildren(children []Op) Op {
	cp := *s
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (s *Sort) Name() string { return "Sort τ" }

// Limit truncates the input. Negative Count means no limit (offset only).
type Limit struct {
	Input  Op
	Count  int64
	Offset int64
}

// Schema implements Op.
func (l *Limit) Schema() Schema { return l.Input.Schema() }

// Children implements Op.
func (l *Limit) Children() []Op { return []Op{l.Input} }

// WithChildren implements Op.
func (l *Limit) WithChildren(children []Op) Op {
	cp := *l
	cp.Input = children[0]
	return &cp
}

// Name implements Op.
func (l *Limit) Name() string {
	if l.Count < 0 {
		return fmt.Sprintf("Offset %d", l.Offset)
	}
	return fmt.Sprintf("Limit %d offset %d", l.Count, l.Offset)
}

// --- tree utilities -------------------------------------------------------------

// Walk visits op and its descendants pre-order.
func Walk(op Op, fn func(Op)) {
	if op == nil {
		return
	}
	fn(op)
	for _, c := range op.Children() {
		Walk(c, fn)
	}
}

// MapExprs returns a copy of the tree with every expression of every operator
// rewritten through fn (top-level expressions only; fn receives each stored
// expression and returns the replacement).
func MapExprs(op Op, fn func(Expr) Expr) Op {
	children := op.Children()
	newChildren := make([]Op, len(children))
	for i, c := range children {
		newChildren[i] = MapExprs(c, fn)
	}
	return MapOwnExprs(op.WithChildren(newChildren), fn)
}

// MapOwnExprs rewrites only this operator's own expressions through fn,
// leaving children untouched.
func MapOwnExprs(op Op, fn func(Expr) Expr) Op {
	out := op
	switch o := out.(type) {
	case *Project:
		cp := *o
		cp.Exprs = make([]Expr, len(o.Exprs))
		for i, e := range o.Exprs {
			cp.Exprs[i] = fn(e)
		}
		return &cp
	case *Select:
		cp := *o
		cp.Cond = fn(o.Cond)
		return &cp
	case *Join:
		cp := *o
		if o.Cond != nil {
			cp.Cond = fn(o.Cond)
		}
		return &cp
	case *Agg:
		cp := *o
		cp.GroupBy = make([]Expr, len(o.GroupBy))
		for i, g := range o.GroupBy {
			cp.GroupBy[i] = fn(g)
		}
		cp.Aggs = make([]AggExpr, len(o.Aggs))
		for i, a := range o.Aggs {
			na := a
			if a.Arg != nil {
				na.Arg = fn(a.Arg)
			}
			cp.Aggs[i] = na
		}
		return &cp
	case *Sort:
		cp := *o
		cp.Keys = make([]SortKey, len(o.Keys))
		for i, k := range o.Keys {
			cp.Keys[i] = SortKey{Expr: fn(k.Expr), Desc: k.Desc}
		}
		return &cp
	case *Values:
		cp := *o
		cp.Rows = make([][]Expr, len(o.Rows))
		for i, row := range o.Rows {
			nr := make([]Expr, len(row))
			for j, e := range row {
				nr[j] = fn(e)
			}
			cp.Rows[i] = nr
		}
		return &cp
	}
	return out
}

// CountOps returns the number of operators in the tree.
func CountOps(op Op) int {
	n := 0
	Walk(op, func(Op) { n++ })
	return n
}
