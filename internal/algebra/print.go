package algebra

import (
	"fmt"
	"strings"
)

// Tree renders the operator tree as ASCII art, the terminal analog of the
// algebra-tree panes of the Perm browser (Figure 4, markers 3 and 4).
func Tree(op Op) string {
	return AnnotatedTree(op, nil)
}

// AnnotatedTree renders the tree with an optional per-operator annotation
// (the engine's EXPLAIN attaches cardinality estimates this way).
func AnnotatedTree(op Op, annotate func(Op) string) string {
	var b strings.Builder
	printTree(&b, op, "", true, true, annotate)
	return b.String()
}

func printTree(b *strings.Builder, op Op, prefix string, isLast, isRoot bool, annotate func(Op) string) {
	connector := ""
	childPrefix := prefix
	if !isRoot {
		if isLast {
			connector = "└── "
			childPrefix += "    "
		} else {
			connector = "├── "
			childPrefix += "│   "
		}
	}
	b.WriteString(prefix)
	b.WriteString(connector)
	b.WriteString(describe(op))
	if annotate != nil {
		if note := annotate(op); note != "" {
			b.WriteString("  ")
			b.WriteString(note)
		}
	}
	b.WriteByte('\n')
	children := op.Children()
	for i, c := range children {
		printTree(b, c, childPrefix, i == len(children)-1, false, annotate)
	}
}

// describe renders one operator with its interesting attributes.
func describe(op Op) string {
	switch o := op.(type) {
	case *Scan:
		return fmt.Sprintf("%s %s", o.Name(), o.Sch)
	case *Project:
		parts := make([]string, len(o.Exprs))
		for i, e := range o.Exprs {
			parts[i] = e.String()
		}
		s := strings.Join(parts, ", ")
		if len(s) > 120 {
			s = s[:117] + "..."
		}
		return fmt.Sprintf("Project Π [%s] → %s", s, o.Sch)
	case *Select:
		return fmt.Sprintf("Select σ [%s]", o.Cond)
	case *Join:
		cond := ""
		if o.Cond != nil {
			cond = " on " + o.Cond.String()
		}
		return fmt.Sprintf("%s%s → %s", o.Name(), cond, o.Sch)
	case *Agg:
		groups := make([]string, len(o.GroupBy))
		for i, g := range o.GroupBy {
			groups[i] = g.String()
		}
		aggs := make([]string, len(o.Aggs))
		for i, a := range o.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("Aggregate α group=[%s] aggs=[%s]",
			strings.Join(groups, ", "), strings.Join(aggs, ", "))
	case *Distinct:
		return "Distinct δ"
	case *SetOp:
		return o.Name()
	case *Sort:
		keys := make([]string, len(o.Keys))
		for i, k := range o.Keys {
			d := ""
			if k.Desc {
				d = " DESC"
			}
			keys[i] = k.Expr.String() + d
		}
		return fmt.Sprintf("Sort τ [%s]", strings.Join(keys, ", "))
	case *Limit:
		return o.Name()
	case *Values:
		return fmt.Sprintf("%s → %s", o.Name(), o.Sch)
	}
	return op.Name()
}
