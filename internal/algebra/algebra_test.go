package algebra

import (
	"strings"
	"testing"

	"perm/internal/sql"
	"perm/internal/value"
)

func scan(table string, cols ...string) *Scan {
	sch := make(Schema, len(cols))
	for i, c := range cols {
		sch[i] = Column{Name: c, Table: table, Type: value.KindInt}
	}
	return &Scan{Table: table, Alias: table, Sch: sch}
}

func col(i int) *ColIdx { return &ColIdx{Idx: i, Typ: value.KindInt, Name: ""} }

func TestSchemaHelpers(t *testing.T) {
	sch := Schema{
		{Name: "a", Type: value.KindInt},
		{Name: "p", Type: value.KindInt, IsProv: true},
		{Name: "b", Type: value.KindString},
	}
	if got := sch.ProvIdx(); len(got) != 1 || got[0] != 1 {
		t.Errorf("ProvIdx = %v", got)
	}
	if got := sch.DataIdx(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("DataIdx = %v", got)
	}
	if got := sch.String(); got != "[a, p*, b]" {
		t.Errorf("String = %q", got)
	}
	clone := sch.Clone()
	clone[0].Name = "x"
	if sch[0].Name != "a" {
		t.Error("Clone must not alias")
	}
}

func TestQualifiedName(t *testing.T) {
	c := Column{Name: "a", Table: "t"}
	if c.QualifiedName() != "t.a" {
		t.Errorf("got %q", c.QualifiedName())
	}
	c.Table = ""
	if c.QualifiedName() != "a" {
		t.Errorf("got %q", c.QualifiedName())
	}
}

func TestShiftCols(t *testing.T) {
	e := &Bin{Op: sql.OpEq, L: col(0), R: col(3)}
	shifted := ShiftCols(e, 2).(*Bin)
	if shifted.L.(*ColIdx).Idx != 2 || shifted.R.(*ColIdx).Idx != 5 {
		t.Errorf("shifted = %v", shifted)
	}
	// Original untouched.
	if e.L.(*ColIdx).Idx != 0 {
		t.Error("ShiftCols must copy")
	}
}

func TestMapColsCoversAllNodes(t *testing.T) {
	e := Expr(&Case{
		Whens: []CaseWhen{{
			Cond:   &IsNull{E: col(1)},
			Result: &Func{Name: "abs", Args: []Expr{&Neg{E: col(2)}}, Typ: value.KindInt},
		}},
		Else: &InList{E: col(3), List: []Expr{&Const{Val: value.NewInt(1)}}},
		Typ:  value.KindInt,
	})
	e = &Bin{Op: sql.OpAnd, L: e, R: &Like{E: col(4), Pattern: &Const{Val: value.NewString("%")}}}
	e = &Not{E: &Cast{E: e, To: value.KindBool}}
	used := map[int]bool{}
	ColsUsed(e, used)
	for _, want := range []int{1, 2, 3, 4} {
		if !used[want] {
			t.Errorf("column %d not visited", want)
		}
	}
}

func TestAndAllSplitAnd(t *testing.T) {
	a := &Bin{Op: sql.OpEq, L: col(0), R: col(1)}
	b := &Bin{Op: sql.OpLt, L: col(2), R: col(3)}
	combined := AndAll([]Expr{a, nil, b})
	parts := SplitAnd(combined)
	if len(parts) != 2 {
		t.Errorf("SplitAnd = %v", parts)
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) must be nil")
	}
	if got := SplitAnd(nil); got != nil {
		t.Errorf("SplitAnd(nil) = %v", got)
	}
}

func TestHasSubplan(t *testing.T) {
	sp := &Subplan{Mode: ExistsSubplan, Plan: scan("t", "a")}
	e := &Bin{Op: sql.OpAnd, L: &Const{Val: value.NewBool(true)}, R: sp}
	if !HasSubplan(e) {
		t.Error("subplan not detected")
	}
	if HasSubplan(col(0)) {
		t.Error("false positive")
	}
}

func TestNewJoinSchema(t *testing.T) {
	l, r := scan("l", "a", "b"), scan("r", "c")
	j := NewJoin(JoinInner, l, r, nil)
	if len(j.Sch) != 3 {
		t.Errorf("inner join schema = %v", j.Sch)
	}
	semi := NewJoin(JoinSemi, l, r, nil)
	if len(semi.Sch) != 2 {
		t.Errorf("semi join schema = %v", semi.Sch)
	}
}

func TestNewSetOpWidensTypes(t *testing.T) {
	l := scan("l", "a")
	r := &Scan{Table: "r", Sch: Schema{{Name: "x", Type: value.KindFloat}}}
	s := NewSetOp(UnionAll, l, r)
	if s.Sch[0].Type != value.KindFloat {
		t.Errorf("union type = %v, want float", s.Sch[0].Type)
	}
	if s.Sch[0].Name != "a" {
		t.Error("union schema keeps left names")
	}
}

func TestAggExprType(t *testing.T) {
	if (AggExpr{Func: AggCount}).Type() != value.KindInt {
		t.Error("count type")
	}
	if (AggExpr{Func: AggAvg, Arg: col(0)}).Type() != value.KindFloat {
		t.Error("avg type")
	}
	if (AggExpr{Func: AggSum, Arg: &ColIdx{Idx: 0, Typ: value.KindFloat}}).Type() != value.KindFloat {
		t.Error("sum type follows arg")
	}
}

func TestWithChildrenCopies(t *testing.T) {
	s := scan("t", "a")
	sel := &Select{Input: s, Cond: &Const{Val: value.NewBool(true)}}
	s2 := scan("u", "b")
	sel2 := sel.WithChildren([]Op{s2}).(*Select)
	if sel2.Input != s2 || sel.Input != Op(s) {
		t.Error("WithChildren must copy, not mutate")
	}
}

func TestWalkAndCount(t *testing.T) {
	j := NewJoin(JoinInner, scan("a", "x"), scan("b", "y"), nil)
	p := NewProject(j, IdentityExprs(j.Sch), j.Sch.Names())
	if CountOps(p) != 4 {
		t.Errorf("CountOps = %d, want 4", CountOps(p))
	}
	var names []string
	Walk(p, func(op Op) { names = append(names, op.Name()) })
	if len(names) != 4 || !strings.HasPrefix(names[0], "Project") {
		t.Errorf("walk order = %v", names)
	}
}

func TestTreePrinting(t *testing.T) {
	j := NewJoin(JoinLeft, scan("a", "x"), scan("b", "y"),
		&Bin{Op: sql.OpEq, L: col(0), R: col(1)})
	tree := Tree(&Select{Input: j, Cond: &IsNull{E: col(0), Not: true}})
	for _, want := range []string{"Select σ", "Join ⋈ Left", "Scan a", "Scan b", "└──", "├──"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestMapExprsRewritesEverywhere(t *testing.T) {
	j := NewJoin(JoinInner, scan("a", "x"), scan("b", "y"),
		&Bin{Op: sql.OpEq, L: col(0), R: col(1)})
	agg := NewAgg(j, []Expr{col(0)}, []AggExpr{{Func: AggSum, Arg: col(1)}}, nil, nil)
	count := 0
	MapExprs(agg, func(e Expr) Expr {
		count++
		return e
	})
	// join cond + group expr + agg arg
	if count != 3 {
		t.Errorf("MapExprs visited %d expressions, want 3", count)
	}
}

func TestToSQLScanProject(t *testing.T) {
	s := scan("t", "a", "b")
	p := NewProject(s, []Expr{
		&Bin{Op: sql.OpAdd, L: col(0), R: &Const{Val: value.NewInt(1)}},
	}, []string{"a1"})
	text := ToSQL(p)
	for _, want := range []string{"FROM t", "+ 1", "AS a1"} {
		if !strings.Contains(text, want) {
			t.Errorf("SQL missing %q: %s", want, text)
		}
	}
}

func TestToSQLDuplicateNames(t *testing.T) {
	j := NewJoin(JoinInner, scan("a", "i"), scan("b", "i"),
		&Bin{Op: sql.OpEq, L: col(0), R: col(1)})
	text := ToSQL(j)
	if !strings.Contains(text, "i_2") {
		t.Errorf("duplicate columns must uniquify: %s", text)
	}
}

func TestOpNames(t *testing.T) {
	cases := map[string]Op{
		"Scan t":           scan("t", "a"),
		"Distinct δ":       &Distinct{Input: scan("t", "a")},
		"Union All ∪":      NewSetOp(UnionAll, scan("t", "a"), scan("u", "b")),
		"BaseRelation(v)":  &BaseRel{Input: scan("t", "a"), RelName: "v"},
		"ProvenanceGiven":  &ProvDone{Input: scan("t", "a")},
		"Limit 3 offset 0": &Limit{Input: scan("t", "a"), Count: 3},
		"Values (0 rows)":  &Values{},
		"Sort τ":           &Sort{Input: scan("t", "a")},
	}
	for want, op := range cases {
		if got := op.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestSubplanType(t *testing.T) {
	sp := &Subplan{Mode: ScalarSubplan, Plan: scan("t", "a")}
	if sp.Type() != value.KindInt {
		t.Errorf("scalar subplan type = %v", sp.Type())
	}
	sp.Mode = ExistsSubplan
	if sp.Type() != value.KindBool {
		t.Errorf("exists subplan type = %v", sp.Type())
	}
}
