// Package algebra defines Perm's relational algebra: the resolved operator
// tree the analyzer produces, the provenance rewriter transforms, the planner
// optimizes and the executor runs. Expressions are fully resolved — column
// references are positional indices into the input row — which is what makes
// the rewrite rules compositional: a rule never needs to re-resolve names.
package algebra

import (
	"fmt"
	"strings"

	"perm/internal/sql"
	"perm/internal/value"
)

// Expr is a resolved scalar expression.
type Expr interface {
	// Type is the static result kind.
	Type() value.Kind
	// String renders the expression for plan display.
	String() string
}

// Const is a literal.
type Const struct{ Val value.Value }

// Type implements Expr.
func (c *Const) Type() value.Kind { return c.Val.K }
func (c *Const) String() string   { return c.Val.SQLLiteral() }

// NewNull returns a NULL constant.
func NewNull() *Const { return &Const{Val: value.Null} }

// Param references bind parameter Index of the executing statement. The
// analyzer types it from the kinds of the bound arguments (prepared
// statements re-analyze — and re-cache — per distinct kind vector), so
// downstream rewrite and planning treat it exactly like a constant of that
// kind whose value is only known at execution time.
type Param struct {
	Index int
	Typ   value.Kind
}

// Type implements Expr.
func (p *Param) Type() value.Kind { return p.Typ }
func (p *Param) String() string   { return fmt.Sprintf("$%d", p.Index+1) }

// ColIdx references column Idx of the input row.
type ColIdx struct {
	Idx  int
	Typ  value.Kind
	Name string // display name only
}

// Type implements Expr.
func (c *ColIdx) Type() value.Kind { return c.Typ }
func (c *ColIdx) String() string {
	if c.Name != "" {
		return fmt.Sprintf("%s#%d", c.Name, c.Idx)
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// OuterRef references column Idx of the nearest enclosing correlation row
// (used inside Subplan expressions for correlated subqueries).
type OuterRef struct {
	Idx  int
	Typ  value.Kind
	Name string
}

// Type implements Expr.
func (o *OuterRef) Type() value.Kind { return o.Typ }
func (o *OuterRef) String() string {
	return fmt.Sprintf("outer(%s#%d)", o.Name, o.Idx)
}

// Bin applies a binary operator. Comparison and logic operators yield
// booleans under SQL three-valued logic; arithmetic follows numeric coercion.
type Bin struct {
	Op   sql.BinOp
	L, R Expr
}

// Type implements Expr.
func (b *Bin) Type() value.Kind {
	switch b.Op {
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		return value.CommonKind(b.L.Type(), b.R.Type())
	case sql.OpConcat:
		return value.KindString
	default:
		return value.KindBool
	}
}

func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression (3VL).
type Not struct{ E Expr }

// Type implements Expr.
func (n *Not) Type() value.Kind { return value.KindBool }
func (n *Not) String() string   { return fmt.Sprintf("NOT %s", n.E) }

// Neg is unary minus.
type Neg struct{ E Expr }

// Type implements Expr.
func (n *Neg) Type() value.Kind { return n.E.Type() }
func (n *Neg) String() string   { return fmt.Sprintf("-%s", n.E) }

// IsNull tests for NULL (never returns NULL itself).
type IsNull struct {
	E   Expr
	Not bool
}

// Type implements Expr.
func (i *IsNull) Type() value.Kind { return value.KindBool }
func (i *IsNull) String() string {
	if i.Not {
		return fmt.Sprintf("%s IS NOT NULL", i.E)
	}
	return fmt.Sprintf("%s IS NULL", i.E)
}

// Func is a scalar function call.
type Func struct {
	Name string
	Args []Expr
	Typ  value.Kind
}

// Type implements Expr.
func (f *Func) Type() value.Kind { return f.Typ }
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Case is a searched CASE (operand form is desugared by the analyzer).
type Case struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
	Typ   value.Kind
}

// CaseWhen is one arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Type implements Expr.
func (c *Case) Type() value.Kind { return c.Typ }
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// InList is expr IN (v1, v2, ...) over a literal/expression list.
type InList struct {
	E    Expr
	List []Expr
	Neg  bool
}

// Type implements Expr.
func (i *InList) Type() value.Kind { return value.KindBool }
func (i *InList) String() string {
	parts := make([]string, len(i.List))
	for j, a := range i.List {
		parts[j] = a.String()
	}
	not := ""
	if i.Neg {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s IN (%s)", i.E, not, strings.Join(parts, ", "))
}

// Like is a SQL LIKE pattern match (% and _ wildcards).
type Like struct {
	E, Pattern Expr
	Neg        bool
}

// Type implements Expr.
func (l *Like) Type() value.Kind { return value.KindBool }
func (l *Like) String() string {
	not := ""
	if l.Neg {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s LIKE %s", l.E, not, l.Pattern)
}

// Cast converts to a target kind.
type Cast struct {
	E  Expr
	To value.Kind
}

// Type implements Expr.
func (c *Cast) Type() value.Kind { return c.To }
func (c *Cast) String() string   { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }

// SubplanMode distinguishes how a nested plan is consumed by an expression.
type SubplanMode int

// Subplan consumption modes.
const (
	// ScalarSubplan yields the single value of a single-row, single-column
	// result (NULL when empty; error when more than one row).
	ScalarSubplan SubplanMode = iota
	// ExistsSubplan yields TRUE when the subplan produces at least one row.
	ExistsSubplan
	// InSubplan yields the SQL semantics of "needle IN (subplan)" with the
	// standard NULL behavior.
	InSubplan
	// AnySubplan yields "needle CmpOp ANY (subplan)": TRUE if the comparison
	// holds for some row, NULL if it is NULL for some row and TRUE for none,
	// else FALSE.
	AnySubplan
	// AllSubplan yields "needle CmpOp ALL (subplan)": FALSE if the
	// comparison fails for some row, NULL if it is NULL for some row and
	// FALSE for none, else TRUE (vacuously TRUE on empty).
	AllSubplan
)

// Subplan embeds a nested query plan inside an expression. When Correlated
// is true the plan contains OuterRef expressions that bind to the current
// input row at evaluation time; otherwise the executor evaluates the plan
// once and caches the result.
type Subplan struct {
	Mode       SubplanMode
	Plan       Op
	Needle     Expr      // for In/Any/All subplans
	CmpOp      sql.BinOp // comparison operator for Any/All subplans
	Neg        bool      // NOT EXISTS / NOT IN
	Correlated bool
}

// Type implements Expr.
func (s *Subplan) Type() value.Kind {
	if s.Mode == ScalarSubplan {
		sch := s.Plan.Schema()
		if len(sch) == 1 {
			return sch[0].Type
		}
		return value.KindNull
	}
	return value.KindBool
}

func (s *Subplan) String() string {
	switch s.Mode {
	case ExistsSubplan:
		if s.Neg {
			return "NOT EXISTS(subplan)"
		}
		return "EXISTS(subplan)"
	case InSubplan:
		if s.Neg {
			return fmt.Sprintf("%s NOT IN (subplan)", s.Needle)
		}
		return fmt.Sprintf("%s IN (subplan)", s.Needle)
	case AnySubplan:
		return fmt.Sprintf("%s %s ANY (subplan)", s.Needle, s.CmpOp)
	case AllSubplan:
		return fmt.Sprintf("%s %s ALL (subplan)", s.Needle, s.CmpOp)
	}
	return "(subplan)"
}

// --- expression utilities ----------------------------------------------------

// ShiftCols returns a copy of e with every ColIdx offset by delta. The
// provenance rewriter uses it to re-target expressions when an operator's
// input schema gains leading columns.
func ShiftCols(e Expr, delta int) Expr {
	return MapCols(e, func(c *ColIdx) Expr {
		return &ColIdx{Idx: c.Idx + delta, Typ: c.Typ, Name: c.Name}
	})
}

// MapCols rewrites e bottom-up, replacing every ColIdx via fn. All other
// nodes are copied structurally; Subplan plans are left untouched (their
// column spaces are private) but their Needle and OuterRefs are not remapped
// either — callers that need that use MapOuterRefs.
func MapCols(e Expr, fn func(*ColIdx) Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Const:
		return x
	case *Param:
		return x
	case *ColIdx:
		return fn(x)
	case *OuterRef:
		return x
	case *Bin:
		return &Bin{Op: x.Op, L: MapCols(x.L, fn), R: MapCols(x.R, fn)}
	case *Not:
		return &Not{E: MapCols(x.E, fn)}
	case *Neg:
		return &Neg{E: MapCols(x.E, fn)}
	case *IsNull:
		return &IsNull{E: MapCols(x.E, fn), Not: x.Not}
	case *Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = MapCols(a, fn)
		}
		return &Func{Name: x.Name, Args: args, Typ: x.Typ}
	case *Case:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{Cond: MapCols(w.Cond, fn), Result: MapCols(w.Result, fn)}
		}
		return &Case{Whens: whens, Else: MapCols(x.Else, fn), Typ: x.Typ}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			list[i] = MapCols(a, fn)
		}
		return &InList{E: MapCols(x.E, fn), List: list, Neg: x.Neg}
	case *Like:
		return &Like{E: MapCols(x.E, fn), Pattern: MapCols(x.Pattern, fn), Neg: x.Neg}
	case *Cast:
		return &Cast{E: MapCols(x.E, fn), To: x.To}
	case *Subplan:
		out := *x
		if x.Needle != nil {
			out.Needle = MapCols(x.Needle, fn)
		}
		if x.Correlated {
			out.Plan = mapPlanOuterCols(x.Plan, fn)
		}
		return &out
	}
	panic(fmt.Sprintf("algebra.MapCols: unknown expression %T", e))
}

// mapPlanOuterCols rewrites OuterRef indices inside a correlated subplan when
// the outer row layout changes. OuterRefs index the outer row, which is the
// same coordinate space as the ColIdx space being remapped.
func mapPlanOuterCols(op Op, fn func(*ColIdx) Expr) Op {
	mapped := MapExprs(op, func(e Expr) Expr {
		return mapOuterRefs(e, func(o *OuterRef) Expr {
			r := fn(&ColIdx{Idx: o.Idx, Typ: o.Typ, Name: o.Name})
			if ci, ok := r.(*ColIdx); ok {
				return &OuterRef{Idx: ci.Idx, Typ: ci.Typ, Name: ci.Name}
			}
			return r
		})
	})
	return mapped
}

func mapOuterRefs(e Expr, fn func(*OuterRef) Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *OuterRef:
		return fn(x)
	case *Const, *ColIdx, *Param:
		return x
	case *Bin:
		return &Bin{Op: x.Op, L: mapOuterRefs(x.L, fn), R: mapOuterRefs(x.R, fn)}
	case *Not:
		return &Not{E: mapOuterRefs(x.E, fn)}
	case *Neg:
		return &Neg{E: mapOuterRefs(x.E, fn)}
	case *IsNull:
		return &IsNull{E: mapOuterRefs(x.E, fn), Not: x.Not}
	case *Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = mapOuterRefs(a, fn)
		}
		return &Func{Name: x.Name, Args: args, Typ: x.Typ}
	case *Case:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{Cond: mapOuterRefs(w.Cond, fn), Result: mapOuterRefs(w.Result, fn)}
		}
		return &Case{Whens: whens, Else: mapOuterRefs(x.Else, fn), Typ: x.Typ}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			list[i] = mapOuterRefs(a, fn)
		}
		return &InList{E: mapOuterRefs(x.E, fn), List: list, Neg: x.Neg}
	case *Like:
		return &Like{E: mapOuterRefs(x.E, fn), Pattern: mapOuterRefs(x.Pattern, fn), Neg: x.Neg}
	case *Cast:
		return &Cast{E: mapOuterRefs(x.E, fn), To: x.To}
	case *Subplan:
		out := *x
		if x.Needle != nil {
			out.Needle = mapOuterRefs(x.Needle, fn)
		}
		return &out
	}
	panic(fmt.Sprintf("algebra.mapOuterRefs: unknown expression %T", e))
}

// ColsUsed appends the ColIdx indices referenced by e to set.
func ColsUsed(e Expr, set map[int]bool) {
	MapCols(e, func(c *ColIdx) Expr {
		set[c.Idx] = true
		return c
	})
}

// HasSubplan reports whether e contains a Subplan node.
func HasSubplan(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*Subplan); ok {
			found = true
		}
	})
	return found
}

// HasOuterRef reports whether e contains an OuterRef anywhere outside nested
// subplans (walkExpr does not descend into Subplan plans, whose outer refs
// bind to their own scope). Such expressions must evaluate on the statement's
// context — parallel workers do not inherit the correlation stack.
func HasOuterRef(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*OuterRef); ok {
			found = true
		}
	})
	return found
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Bin:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Not:
		walkExpr(x.E, fn)
	case *Neg:
		walkExpr(x.E, fn)
	case *IsNull:
		walkExpr(x.E, fn)
	case *Func:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *Case:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(x.Else, fn)
	case *InList:
		walkExpr(x.E, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
	case *Like:
		walkExpr(x.E, fn)
		walkExpr(x.Pattern, fn)
	case *Cast:
		walkExpr(x.E, fn)
	case *Subplan:
		walkExpr(x.Needle, fn)
	}
}

// AndAll combines conditions with AND, returning nil for an empty list.
func AndAll(conds []Expr) Expr {
	var out Expr
	for _, c := range conds {
		if c == nil {
			continue
		}
		if out == nil {
			out = c
			continue
		}
		out = &Bin{Op: sql.OpAnd, L: out, R: c}
	}
	return out
}

// SplitAnd flattens a conjunction into its conjuncts.
func SplitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == sql.OpAnd {
		return append(SplitAnd(b.L), SplitAnd(b.R)...)
	}
	return []Expr{e}
}
