package algebra

import (
	"fmt"
	"strings"
)

// ToSQL renders an algebra tree back to executable SQL in Perm's dialect.
// This powers the "rewritten SQL" pane of the Perm browser (Figure 4, marker
// 2): the provenance-rewritten algebra tree is decompiled so users can see —
// and themselves run — the relational query that computes provenance.
//
// The generated SQL nests one derived table per operator, assigning fresh
// correlation names (q1, q2, ...) and de-duplicated column names, so it is
// valid regardless of name collisions in the tree. Round-trip equivalence
// (generated SQL evaluates to the same rows) is covered by integration tests.
func ToSQL(op Op) string {
	g := &sqlGen{}
	text, _ := g.gen(op, nil)
	return text
}

type sqlGen struct{ n int }

func (g *sqlGen) fresh() string {
	g.n++
	return fmt.Sprintf("q%d", g.n)
}

// uniqueNames derives unique SQL column names from a schema.
func uniqueNames(sch Schema) []string {
	seen := make(map[string]int)
	out := make([]string, len(sch))
	for i, c := range sch {
		base := strings.ToLower(c.Name)
		if base == "" {
			base = fmt.Sprintf("c%d", i+1)
		}
		name := base
		for seen[name] > 0 {
			seen[base]++
			name = fmt.Sprintf("%s_%d", base, seen[base])
		}
		seen[name]++
		out[i] = name
	}
	return out
}

// gen returns the SQL for op and the unique column names of its result.
// outerCols maps OuterRef indices to SQL references of the enclosing query
// (for correlated subplans).
func (g *sqlGen) gen(op Op, outerCols []string) (string, []string) {
	outNames := uniqueNames(op.Schema())
	switch o := op.(type) {
	case *Scan:
		alias := g.fresh()
		items := make([]string, len(o.Sch))
		for i, c := range o.Sch {
			items[i] = fmt.Sprintf("%s.%s AS %s", alias, sqlIdent(c.Name), sqlIdent(outNames[i]))
		}
		return fmt.Sprintf("SELECT %s FROM %s AS %s",
			strings.Join(items, ", "), sqlIdent(o.Table), alias), outNames
	case *Values:
		if len(o.Rows) == 0 {
			return "SELECT NULL WHERE FALSE", outNames
		}
		var parts []string
		for _, row := range o.Rows {
			items := make([]string, 0, len(row)+1)
			if len(row) == 0 {
				items = append(items, "0 AS __dummy__")
			}
			for i, e := range row {
				items = append(items, fmt.Sprintf("%s AS %s", g.expr(e, nil, outerCols), sqlIdent(outNames[i])))
			}
			parts = append(parts, "SELECT "+strings.Join(items, ", "))
		}
		return strings.Join(parts, " UNION ALL "), outNames
	case *Project:
		child, cols := g.gen(o.Input, outerCols)
		alias := g.fresh()
		refs := qualify(alias, cols)
		items := make([]string, len(o.Exprs))
		for i, e := range o.Exprs {
			items[i] = fmt.Sprintf("%s AS %s", g.expr(e, refs, outerCols), sqlIdent(outNames[i]))
		}
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s",
			strings.Join(items, ", "), child, alias), outNames
	case *BaseRel:
		return g.gen(o.Input, outerCols)
	case *ProvDone:
		return g.gen(o.Input, outerCols)
	case *Select:
		child, cols := g.gen(o.Input, outerCols)
		alias := g.fresh()
		refs := qualify(alias, cols)
		items := selectAll(refs, cols, outNames)
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s WHERE %s",
			items, child, alias, g.expr(o.Cond, refs, outerCols)), outNames
	case *Join:
		lsql, lcols := g.gen(o.Left, outerCols)
		rsql, rcols := g.gen(o.Right, outerCols)
		la, ra := g.fresh(), g.fresh()
		refs := append(qualify(la, lcols), qualify(ra, rcols)...)
		switch o.Kind {
		case JoinSemi, JoinAnti:
			not := ""
			if o.Kind == JoinAnti {
				not = "NOT "
			}
			cond := "TRUE"
			if o.Cond != nil {
				cond = g.expr(o.Cond, refs, outerCols)
			}
			return fmt.Sprintf("SELECT %s FROM (%s) AS %s WHERE %sEXISTS (SELECT 1 FROM (%s) AS %s WHERE %s)",
				selectAll(qualify(la, lcols), lcols, outNames), lsql, la, not, rsql, ra, cond), outNames
		}
		kw := map[JoinKind]string{
			JoinInner: "JOIN", JoinLeft: "LEFT JOIN", JoinRight: "RIGHT JOIN",
			JoinFull: "FULL JOIN", JoinCross: "CROSS JOIN",
		}[o.Kind]
		on := ""
		if o.Kind == JoinCross {
			on = ""
		} else if o.Cond != nil {
			on = " ON " + g.expr(o.Cond, refs, outerCols)
		} else {
			on = " ON TRUE"
		}
		items := selectAll(refs, append(append([]string{}, lcols...), rcols...), outNames)
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s %s (%s) AS %s%s",
			items, lsql, la, kw, rsql, ra, on), outNames
	case *Agg:
		child, cols := g.gen(o.Input, outerCols)
		alias := g.fresh()
		refs := qualify(alias, cols)
		var items, groups []string
		for i, ge := range o.GroupBy {
			t := g.expr(ge, refs, outerCols)
			items = append(items, fmt.Sprintf("%s AS %s", t, sqlIdent(outNames[i])))
			groups = append(groups, t)
		}
		for i, a := range o.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = g.expr(a.Arg, refs, outerCols)
			}
			if a.Distinct {
				arg = "DISTINCT " + arg
			}
			items = append(items, fmt.Sprintf("%s(%s) AS %s", a.Func, arg, sqlIdent(outNames[len(o.GroupBy)+i])))
		}
		out := fmt.Sprintf("SELECT %s FROM (%s) AS %s", strings.Join(items, ", "), child, alias)
		if len(groups) > 0 {
			out += " GROUP BY " + strings.Join(groups, ", ")
		}
		return out, outNames
	case *Distinct:
		child, cols := g.gen(o.Input, outerCols)
		alias := g.fresh()
		refs := qualify(alias, cols)
		return fmt.Sprintf("SELECT DISTINCT %s FROM (%s) AS %s",
			selectAll(refs, cols, outNames), child, alias), outNames
	case *SetOp:
		lsql, lcols := g.gen(o.Left, outerCols)
		rsql, rcols := g.gen(o.Right, outerCols)
		la, ra := g.fresh(), g.fresh()
		left := fmt.Sprintf("SELECT %s FROM (%s) AS %s", selectAll(qualify(la, lcols), lcols, outNames), lsql, la)
		right := fmt.Sprintf("SELECT %s FROM (%s) AS %s", selectAll(qualify(ra, rcols), rcols, outNames), rsql, ra)
		kw := map[SetOpKind]string{
			UnionAll: "UNION ALL", UnionDistinct: "UNION",
			IntersectAll: "INTERSECT ALL", IntersectDistinct: "INTERSECT",
			ExceptAll: "EXCEPT ALL", ExceptDistinct: "EXCEPT",
		}[o.Kind]
		return fmt.Sprintf("%s %s %s", left, kw, right), outNames
	case *Sort:
		child, cols := g.gen(o.Input, outerCols)
		alias := g.fresh()
		refs := qualify(alias, cols)
		keys := make([]string, len(o.Keys))
		for i, k := range o.Keys {
			keys[i] = g.expr(k.Expr, refs, outerCols)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s ORDER BY %s",
			selectAll(refs, cols, outNames), child, alias, strings.Join(keys, ", ")), outNames
	case *Limit:
		child, cols := g.gen(o.Input, outerCols)
		alias := g.fresh()
		refs := qualify(alias, cols)
		out := fmt.Sprintf("SELECT %s FROM (%s) AS %s", selectAll(refs, cols, outNames), child, alias)
		if o.Count >= 0 {
			out += fmt.Sprintf(" LIMIT %d", o.Count)
		}
		if o.Offset > 0 {
			out += fmt.Sprintf(" OFFSET %d", o.Offset)
		}
		return out, outNames
	}
	return fmt.Sprintf("/* cannot render %T */ SELECT NULL", op), outNames
}

// qualify produces "alias.col" references for each column name.
func qualify(alias string, cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = alias + "." + sqlIdent(c)
	}
	return out
}

// selectAll renders "ref AS out, ..." select items.
func selectAll(refs, _ []string, outNames []string) string {
	items := make([]string, len(refs))
	for i, r := range refs {
		items[i] = fmt.Sprintf("%s AS %s", r, sqlIdent(outNames[i]))
	}
	return strings.Join(items, ", ")
}

// expr renders an expression given the SQL references for input columns.
func (g *sqlGen) expr(e Expr, refs []string, outerCols []string) string {
	switch x := e.(type) {
	case *Const:
		return x.Val.SQLLiteral()
	case *Param:
		return "?"
	case *ColIdx:
		if x.Idx < len(refs) {
			return refs[x.Idx]
		}
		return fmt.Sprintf("/*bad col %d*/NULL", x.Idx)
	case *OuterRef:
		if x.Idx < len(outerCols) {
			return outerCols[x.Idx]
		}
		return fmt.Sprintf("/*bad outer %d*/NULL", x.Idx)
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", g.expr(x.L, refs, outerCols), x.Op, g.expr(x.R, refs, outerCols))
	case *Not:
		return fmt.Sprintf("(NOT %s)", g.expr(x.E, refs, outerCols))
	case *Neg:
		return fmt.Sprintf("(-%s)", g.expr(x.E, refs, outerCols))
	case *IsNull:
		if x.Not {
			return fmt.Sprintf("(%s IS NOT NULL)", g.expr(x.E, refs, outerCols))
		}
		return fmt.Sprintf("(%s IS NULL)", g.expr(x.E, refs, outerCols))
	case *Func:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = g.expr(a, refs, outerCols)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *Case:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			fmt.Fprintf(&b, " WHEN %s THEN %s", g.expr(w.Cond, refs, outerCols), g.expr(w.Result, refs, outerCols))
		}
		if x.Else != nil {
			fmt.Fprintf(&b, " ELSE %s", g.expr(x.Else, refs, outerCols))
		}
		b.WriteString(" END")
		return b.String()
	case *InList:
		items := make([]string, len(x.List))
		for i, a := range x.List {
			items[i] = g.expr(a, refs, outerCols)
		}
		not := ""
		if x.Neg {
			not = " NOT"
		}
		return fmt.Sprintf("(%s%s IN (%s))", g.expr(x.E, refs, outerCols), not, strings.Join(items, ", "))
	case *Like:
		not := ""
		if x.Neg {
			not = " NOT"
		}
		return fmt.Sprintf("(%s%s LIKE %s)", g.expr(x.E, refs, outerCols), not, g.expr(x.Pattern, refs, outerCols))
	case *Cast:
		return fmt.Sprintf("CAST(%s AS %s)", g.expr(x.E, refs, outerCols), x.To)
	case *Subplan:
		// Correlated subplans see the current refs as their outer columns.
		inner, innerCols := g.gen(x.Plan, refs)
		switch x.Mode {
		case ExistsSubplan:
			not := ""
			if x.Neg {
				not = "NOT "
			}
			return fmt.Sprintf("(%sEXISTS (%s))", not, inner)
		case InSubplan:
			not := ""
			if x.Neg {
				not = " NOT"
			}
			_ = innerCols
			return fmt.Sprintf("(%s%s IN (%s))", g.expr(x.Needle, refs, outerCols), not, inner)
		case AnySubplan:
			return fmt.Sprintf("(%s %s ANY (%s))", g.expr(x.Needle, refs, outerCols), x.CmpOp, inner)
		case AllSubplan:
			return fmt.Sprintf("(%s %s ALL (%s))", g.expr(x.Needle, refs, outerCols), x.CmpOp, inner)
		default:
			return fmt.Sprintf("((%s))", inner)
		}
	}
	return "/*unknown expr*/NULL"
}

// sqlIdent quotes identifiers that are not plain words.
func sqlIdent(s string) string {
	plain := s != ""
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			plain = false
		}
	}
	if plain && !sqlReserved[s] {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

var sqlReserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"having": true, "limit": true, "offset": true, "union": true, "join": true,
	"on": true, "as": true, "and": true, "or": true, "not": true, "case": true,
	"when": true, "then": true, "else": true, "end": true, "left": true,
	"right": true, "full": true, "cross": true, "inner": true, "using": true,
	"intersect": true, "except": true, "distinct": true, "all": true,
	"provenance": true, "baserelation": true, "exists": true, "in": true,
	"like": true, "between": true, "is": true, "null": true, "true": true,
	"false": true, "count": true, "sum": true, "avg": true, "min": true, "max": true,
}
