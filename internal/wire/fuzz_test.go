package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"perm/internal/value"
)

// fakeNetConn adapts an in-memory buffer to net.Conn for codec tests.
type fakeNetConn struct {
	r io.Reader
	w io.Writer
}

func (fakeNetConn) Close() error                       { return nil }
func (fakeNetConn) LocalAddr() net.Addr                { return nil }
func (fakeNetConn) RemoteAddr() net.Addr               { return nil }
func (fakeNetConn) SetDeadline(t time.Time) error      { return nil }
func (fakeNetConn) SetReadDeadline(t time.Time) error  { return nil }
func (fakeNetConn) SetWriteDeadline(t time.Time) error { return nil }
func (c fakeNetConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c fakeNetConn) Write(p []byte) (int, error)      { return c.w.Write(p) }

// serverReadLimit mirrors the server's 1 MiB client-frame cap; the fuzz
// target exercises the codec under exactly the limit production runs with.
const fuzzReadLimit = 1 << 20

// FuzzWireFrame feeds arbitrary bytes through the frame reader and every
// payload decoder: nothing may panic, the read limit must hold, and
// payloads that decode must re-encode and re-decode to the same message
// (round-trip stability — non-canonical varints may differ in bytes, never
// in meaning).
func FuzzWireFrame(f *testing.F) {
	// Well-formed frames of each message family.
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		c := NewConn(fakeNetConn{w: &buf})
		c.WriteMessage(typ, payload)
		c.Flush()
		return buf.Bytes()
	}
	row := value.Row{value.NewInt(42), value.NewString("x"), value.Null, value.NewFloat(2.5), value.NewBool(true)}
	f.Add(frame(MsgHello, Hello{Version: ProtocolVersion, Client: "fuzz"}.Encode(nil)))
	f.Add(frame(MsgRowDesc, RowDesc{
		Names:  []string{"a", "prov_public_t_a"},
		Kinds:  []value.Kind{value.KindInt, value.KindString},
		IsProv: []bool{false, true},
	}.Encode(nil)))
	f.Add(frame(MsgRowBatch, AppendRowBatch(nil, []value.Row{row, row})))
	f.Add(frame(MsgExecute, Execute{Name: "s1", Args: []value.Value{value.NewInt(7), value.NewString("q")}, FetchSize: 64}.Encode(nil)))
	f.Add(frame(MsgParse, Parse{Name: "s1", SQL: "SELECT ?"}.Encode(nil)))
	f.Add(frame(MsgComplete, Complete{Tag: "SELECT 2", CacheHit: true, Execute: 12345}.Encode(nil)))
	f.Add(frame(MsgError, AppendError(nil, "boom", ErrCodeTimeout)))
	// Corruption seeds: truncated header, hostile length prefix, garbage.
	f.Add([]byte{'Q'})
	f.Add([]byte{'Q', 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'w', 0, 0, 0, 3, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x80}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewConn(fakeNetConn{r: bytes.NewReader(data), w: io.Discard})
		conn.SetReadLimit(fuzzReadLimit)
		for {
			_, payload, err := conn.ReadMessage()
			if err != nil {
				break
			}
			if len(payload) > fuzzReadLimit {
				t.Fatalf("payload of %d bytes exceeded the read limit", len(payload))
			}
			fuzzDecoders(t, payload)
		}
	})
}

// fuzzDecoders runs one payload through every message decoder; decoders
// must never panic, and successfully decoded messages must survive an
// encode/decode round trip.
func fuzzDecoders(t *testing.T, payload []byte) {
	if h, err := DecodeHello(payload); err == nil {
		h2, err := DecodeHello(h.Encode(nil))
		if err != nil || h2 != h {
			t.Fatalf("Hello round trip: %+v vs %+v (%v)", h, h2, err)
		}
	}
	if m, err := DecodeHelloOK(payload); err == nil {
		m2, err := DecodeHelloOK(m.Encode(nil))
		if err != nil || m2 != m {
			t.Fatalf("HelloOK round trip: %+v vs %+v (%v)", m, m2, err)
		}
	}
	if d, err := DecodeRowDesc(payload); err == nil {
		d2, err := DecodeRowDesc(d.Encode(nil))
		if err != nil || !reflect.DeepEqual(d, d2) {
			t.Fatalf("RowDesc round trip: %+v vs %+v (%v)", d, d2, err)
		}
	}
	if c, err := DecodeComplete(payload); err == nil {
		c2, err := DecodeComplete(c.Encode(nil))
		if err != nil || c2 != c {
			t.Fatalf("Complete round trip: %+v vs %+v (%v)", c, c2, err)
		}
	}
	if p, err := DecodeParse(payload); err == nil {
		p2, err := DecodeParse(p.Encode(nil))
		if err != nil || p2 != p {
			t.Fatalf("Parse round trip: %+v vs %+v (%v)", p, p2, err)
		}
	}
	if e, err := DecodeExecute(payload); err == nil {
		e2, err := DecodeExecute(e.Encode(nil))
		if err != nil || !reflect.DeepEqual(e, e2) {
			t.Fatalf("Execute round trip: %+v vs %+v (%v)", e, e2, err)
		}
	}
	if rows, err := DecodeRowBatch(payload); err == nil {
		rows2, err := DecodeRowBatch(AppendRowBatch(nil, rows))
		if err != nil || !reflect.DeepEqual(rows, rows2) {
			t.Fatalf("RowBatch round trip: %v vs %v (%v)", rows, rows2, err)
		}
	}
	// The error decoder accepts anything by design (legacy bare-string
	// payloads); just exercise it.
	DecodeServerError(payload)
}
