package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"perm/internal/value"
)

// Client is the client side of the Perm wire protocol: one TCP connection,
// one server session, strict request/response. It is not safe for concurrent
// use — database/sql serializes access per connection, which is exactly the
// discipline the protocol expects.
type Client struct {
	nc     net.Conn
	conn   *Conn
	server HelloOK
	// stream is the open row stream, if any; it must be exhausted or closed
	// before the next request.
	stream *Rows
	// cursor is the open server portal, if any; like stream, it must be
	// exhausted or closed before the next request.
	cursor *Cursor
	broken error
}

// Dial connects, performs the handshake, and returns a ready client.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a timeout covering both the TCP connect and the
// protocol handshake, so a peer that accepts but never answers cannot hang
// the caller.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// WatchCancel arms abort to run once when ctx ends. The returned stop
// function disarms the watcher and JOINS it before returning, so after stop
// no late abort can fire — the invariant both connection-abort call sites
// (DialContext and the driver's per-request watcher) depend on: an abort
// that poisons the connection deadline must never land after the caller has
// moved on and cleared it.
func WatchCancel(ctx context.Context, abort func()) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		select {
		case <-ctx.Done():
			abort()
		case <-stopCh:
		}
	}()
	return func() {
		close(stopCh)
		<-parked
	}
}

// DialContext is Dial under a caller-controlled context: both the TCP
// connect and the handshake observe its deadline and cancellation (the
// database/sql pool dials new connections through here, so a query context
// bounds connection establishment too). A context without a deadline still
// gets a 10-second handshake cap.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, conn: NewConn(nc)}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(10 * time.Second)
	}
	nc.SetDeadline(deadline)
	stop := WatchCancel(ctx, c.Abort)
	err = c.handshake()
	stop()
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		nc.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

func (c *Client) handshake() error {
	server, err := Handshake(c.conn, "perm-go")
	if err != nil {
		return err
	}
	c.server = server
	return nil
}

// Handshake performs the client side of the protocol handshake on conn:
// Hello out, HelloOK (or a server error) back. Callers that drive a raw Conn
// — the replication follower subscribes and then reads a one-way stream that
// doesn't fit the Client's request/response discipline — use this directly.
func Handshake(conn *Conn, client string) (HelloOK, error) {
	payload := Hello{Version: ProtocolVersion, Client: client}.Encode(nil)
	if err := conn.WriteMessage(MsgHello, payload); err != nil {
		return HelloOK{}, err
	}
	if err := conn.Flush(); err != nil {
		return HelloOK{}, err
	}
	typ, body, err := conn.ReadMessage()
	if err != nil {
		return HelloOK{}, fmt.Errorf("wire: handshake failed: %w", err)
	}
	switch typ {
	case MsgHelloOK:
		return DecodeHelloOK(body)
	case MsgError:
		return HelloOK{}, DecodeServerError(body)
	}
	return HelloOK{}, fmt.Errorf("wire: unexpected handshake response %q", typ)
}

// Server returns the server's handshake information.
func (c *Client) Server() HelloOK { return c.server }

// fail marks the connection unusable (protocol state lost).
func (c *Client) fail(err error) error {
	if c.broken == nil {
		c.broken = err
	}
	return err
}

// Broken reports the sticky connection error, if any. A client with a broken
// connection must be discarded; database/sql uses this to retire pooled
// connections.
func (c *Client) Broken() error { return c.broken }

// Abort unblocks any in-flight network read or write by expiring the
// connection's deadline. It is the one Client method safe to call from
// another goroutine: the perm driver uses it to honor context cancellation
// while a request is blocked on the server. The protocol state is lost, so
// the aborted operation fails and the connection becomes Broken. A caller
// that stops an armed Abort watcher without the abort having mattered must
// call ResetDeadline (after the watcher has fully exited) so a late Abort
// cannot leak into the next request.
func (c *Client) Abort() {
	c.nc.SetDeadline(time.Unix(1, 0))
}

// ResetDeadline clears any deadline Abort installed. Only call it when no
// Abort can fire concurrently anymore — clearing while a cancellation is
// still in flight would lose it.
func (c *Client) ResetDeadline() {
	c.nc.SetDeadline(time.Time{})
}

func (c *Client) ready() error {
	if c.broken != nil {
		return c.broken
	}
	if c.stream != nil {
		return fmt.Errorf("wire: previous result set not closed")
	}
	if c.cursor != nil {
		return fmt.Errorf("wire: previous cursor not closed")
	}
	return nil
}

// Query sends one SQL statement and returns its (possibly empty) row stream.
// Statement errors come back as *ServerError; the connection stays usable.
func (c *Client) Query(sqlText string) (*Rows, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if err := c.conn.WriteMessage(MsgQuery, AppendString(nil, sqlText)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.conn.Flush(); err != nil {
		return nil, c.fail(err)
	}
	typ, body, err := c.conn.ReadMessage()
	if err != nil {
		return nil, c.fail(err)
	}
	switch typ {
	case MsgError:
		return nil, DecodeServerError(body)
	case MsgRowDesc:
		desc, err := DecodeRowDesc(body)
		if err != nil {
			return nil, c.fail(err)
		}
		rows := &Rows{c: c, Desc: desc}
		c.stream = rows
		return rows, nil
	case MsgComplete:
		done, err := DecodeComplete(body)
		if err != nil {
			return nil, c.fail(err)
		}
		return &Rows{c: c, done: true, Complete: done}, nil
	}
	return nil, c.fail(fmt.Errorf("wire: unexpected response %q to query", typ))
}

// Exec runs a statement and drains any rows, returning the completion.
func (c *Client) Exec(sqlText string) (Complete, error) {
	rows, err := c.Query(sqlText)
	if err != nil {
		return Complete{}, err
	}
	if err := rows.Close(); err != nil {
		return Complete{}, err
	}
	return rows.Complete, nil
}

// Backup streams a consistent snapshot of the server's database into w (the
// remote analog of perm.DB.Save).
func (c *Client) Backup(w io.Writer) error {
	if err := c.ready(); err != nil {
		return err
	}
	if err := c.conn.WriteMessage(MsgBackup, nil); err != nil {
		return c.fail(err)
	}
	if err := c.conn.Flush(); err != nil {
		return c.fail(err)
	}
	for {
		typ, body, err := c.conn.ReadMessage()
		if err != nil {
			return c.fail(err)
		}
		switch typ {
		case MsgBackupChunk:
			if _, err := w.Write(body); err != nil {
				// The stream must still be drained to keep the protocol in
				// sync, but the caller's error wins.
				c.drainBackup()
				return err
			}
		case MsgBackupDone:
			return nil
		case MsgError:
			return DecodeServerError(body)
		default:
			return c.fail(fmt.Errorf("wire: unexpected response %q to backup", typ))
		}
	}
}

func (c *Client) drainBackup() {
	for {
		typ, _, err := c.conn.ReadMessage()
		if err != nil {
			c.fail(err)
			return
		}
		if typ == MsgBackupDone || typ == MsgError {
			return
		}
	}
}

// Status probes the server's cluster status: role, fencing epoch, timeline
// origin and replication positions. It is the coordinator's failure-detector
// probe and the router's membership refresh — one tiny round trip, no SQL.
func (c *Client) Status() (NodeStatus, error) {
	return c.statusRequest(MsgStatus, nil)
}

// Promote orders the server to fence itself at epoch and start accepting
// writes, returning its post-promotion status.
func (c *Client) Promote(epoch uint64) (NodeStatus, error) {
	return c.statusRequest(MsgPromote, Promote{Epoch: epoch}.Encode(nil))
}

// Demote orders the server to fence itself at epoch, enter read-only mode
// and follow primaryAddr, returning its post-demotion status.
func (c *Client) Demote(epoch uint64, primaryAddr string) (NodeStatus, error) {
	return c.statusRequest(MsgDemote, Demote{Epoch: epoch, PrimaryAddr: primaryAddr}.Encode(nil))
}

func (c *Client) statusRequest(typ byte, payload []byte) (NodeStatus, error) {
	if err := c.ready(); err != nil {
		return NodeStatus{}, err
	}
	if err := c.request(typ, payload); err != nil {
		return NodeStatus{}, err
	}
	rtyp, body, err := c.conn.ReadMessage()
	if err != nil {
		return NodeStatus{}, c.fail(err)
	}
	switch rtyp {
	case MsgStatusOK:
		st, err := DecodeNodeStatus(body)
		if err != nil {
			return NodeStatus{}, c.fail(err)
		}
		return st, nil
	case MsgError:
		return NodeStatus{}, DecodeServerError(body)
	}
	return NodeStatus{}, c.fail(fmt.Errorf("wire: unexpected response %q to status request", rtyp))
}

// Close terminates the session and closes the connection.
func (c *Client) Close() error {
	if c.broken == nil {
		// Best effort: the server treats an abrupt close identically.
		c.conn.WriteMessage(MsgTerminate, nil)
		c.conn.Flush()
	}
	return c.conn.Close()
}

// Rows is a streaming result set. Desc is empty for statements without a
// result set; Complete is valid once the stream is exhausted or closed.
type Rows struct {
	c        *Client
	Desc     RowDesc
	Complete Complete
	// batch holds the rows of the last RowBatch frame not yet handed out.
	batch []value.Row
	bpos  int
	done  bool
	err   error
}

// Next returns the next row, or (nil, nil) at end of stream.
func (r *Rows) Next() (value.Row, error) {
	for {
		if r.bpos < len(r.batch) {
			row := r.batch[r.bpos]
			r.bpos++
			return row, nil
		}
		if r.done || r.err != nil {
			return nil, r.err
		}
		typ, body, err := r.c.conn.ReadMessage()
		if err != nil {
			r.finish(r.c.fail(err))
			return nil, r.err
		}
		switch typ {
		case MsgRowBatch:
			rows, err := DecodeRowBatch(body)
			if err != nil {
				r.finish(r.c.fail(err))
				return nil, r.err
			}
			r.batch, r.bpos = rows, 0
			continue // an empty batch just loops to the next frame
		case MsgComplete:
			done, err := DecodeComplete(body)
			if err != nil {
				r.finish(r.c.fail(err))
				return nil, r.err
			}
			r.Complete = done
			r.finish(nil)
			return nil, nil
		case MsgError:
			r.finish(DecodeServerError(body))
			return nil, r.err
		default:
			r.finish(r.c.fail(fmt.Errorf("wire: unexpected frame %q in row stream", typ)))
			return nil, r.err
		}
	}
}

func (r *Rows) finish(err error) {
	r.done = true
	r.err = err
	if r.c.stream == r {
		r.c.stream = nil
	}
}

// Close drains the stream so the connection is ready for the next request.
func (r *Rows) Close() error {
	for !r.done {
		if _, err := r.Next(); err != nil {
			return err
		}
	}
	return r.err
}

// --- prepared statements and cursors (protocol v3) -----------------------------

// Prepare registers sqlText as a server-side prepared statement under name,
// returning the number of `?` parameters it binds. Statements live for the
// connection's lifetime (or until CloseStmt) and execute with true typed
// binds — argument values never travel as SQL text.
func (c *Client) Prepare(name, sqlText string) (int, error) {
	if err := c.ready(); err != nil {
		return 0, err
	}
	if err := c.request(MsgParse, Parse{Name: name, SQL: sqlText}.Encode(nil)); err != nil {
		return 0, err
	}
	typ, body, err := c.conn.ReadMessage()
	if err != nil {
		return 0, c.fail(err)
	}
	switch typ {
	case MsgParseOK:
		r := NewReader(body)
		n := r.Uvarint()
		if r.Err() != nil {
			return 0, c.fail(r.Err())
		}
		return int(n), nil
	case MsgError:
		return 0, DecodeServerError(body)
	}
	return 0, c.fail(fmt.Errorf("wire: unexpected response %q to parse", typ))
}

// CloseStmt deallocates a prepared statement. Unknown names close cleanly
// (deallocation is idempotent).
func (c *Client) CloseStmt(name string) error {
	if err := c.ready(); err != nil {
		return err
	}
	if err := c.request(MsgCloseStmt, AppendString(nil, name)); err != nil {
		return err
	}
	return c.awaitCloseOK()
}

// request writes one frame and flushes it.
func (c *Client) request(typ byte, payload []byte) error {
	if err := c.conn.WriteMessage(typ, payload); err != nil {
		return c.fail(err)
	}
	if err := c.conn.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

func (c *Client) awaitCloseOK() error {
	typ, body, err := c.conn.ReadMessage()
	if err != nil {
		return c.fail(err)
	}
	switch typ {
	case MsgCloseOK:
		return nil
	case MsgError:
		return DecodeServerError(body)
	}
	return c.fail(fmt.Errorf("wire: unexpected response %q to close", typ))
}

// Execute binds args to the named prepared statement (or, with name empty,
// to the one-shot statement sqlText) and opens a cursor over its result.
// fetchSize is the batch the server returns per round trip — the
// backpressure knob: the executor produces at most that many rows ahead of
// the client, whatever the result's total size. fetchSize <= 0 streams the
// whole result without suspending.
func (c *Client) Execute(name, sqlText string, args []value.Value, fetchSize int) (*Cursor, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	req := Execute{Name: name, SQL: sqlText, Args: args}
	if fetchSize > 0 {
		req.FetchSize = uint64(fetchSize)
	}
	if err := c.request(MsgExecute, req.Encode(nil)); err != nil {
		return nil, err
	}
	cur := &Cursor{c: c, fetchSize: req.FetchSize}
	if err := cur.readBatchResponse(); err != nil {
		return nil, err
	}
	if cur.err != nil && len(cur.pending) == 0 {
		// The statement failed before producing anything (parse error,
		// unknown relation, immediate interrupt): surface it as the call's
		// error, matching Query. Mid-stream failures after rows were
		// delivered stay on the cursor so the caller can read the prefix.
		return nil, cur.err
	}
	if !cur.done {
		c.cursor = cur
	}
	return cur, nil
}

// drainFetchSize bounds ExecuteDrain's client-side buffering: rows are
// fetched (and discarded) a batch at a time, so even an Exec pointed at a
// huge SELECT holds at most one batch.
const drainFetchSize = 512

// ExecuteDrain executes a named prepared statement (or, with name empty,
// the one-shot sqlText) with args bound and drains its result, returning
// the completion — the bind-path analog of Exec, used by the driver's
// ExecContext.
func (c *Client) ExecuteDrain(name, sqlText string, args []value.Value) (Complete, error) {
	cur, err := c.Execute(name, sqlText, args, drainFetchSize)
	if err != nil {
		return Complete{}, err
	}
	for {
		row, err := cur.Next()
		if err != nil {
			cur.Close()
			return Complete{}, err
		}
		if row == nil {
			break
		}
	}
	if err := cur.Close(); err != nil {
		return Complete{}, err
	}
	return cur.Complete, nil
}

// Cursor is a server-side portal: a result set fetched in client-driven
// batches. Desc is valid after Execute; Complete once the cursor finishes.
type Cursor struct {
	c         *Client
	Desc      RowDesc
	Complete  Complete
	fetchSize uint64
	pending   []value.Row
	pos       int
	suspended bool
	done      bool
	err       error
}

// readBatchResponse consumes one Execute/Fetch response: an optional leading
// RowDesc, RowBatch frames, then Suspended, Complete or Error.
func (cur *Cursor) readBatchResponse() error {
	cur.pending, cur.pos = cur.pending[:0], 0
	for {
		typ, body, err := cur.c.conn.ReadMessage()
		if err != nil {
			cur.finish(cur.c.fail(err))
			return cur.err
		}
		switch typ {
		case MsgRowDesc:
			desc, err := DecodeRowDesc(body)
			if err != nil {
				cur.finish(cur.c.fail(err))
				return cur.err
			}
			cur.Desc = desc
		case MsgRowBatch:
			rows, err := DecodeRowBatch(body)
			if err != nil {
				cur.finish(cur.c.fail(err))
				return cur.err
			}
			cur.pending = append(cur.pending, rows...)
		case MsgSuspended:
			cur.suspended = true
			return nil
		case MsgComplete:
			done, err := DecodeComplete(body)
			if err != nil {
				cur.finish(cur.c.fail(err))
				return cur.err
			}
			cur.Complete = done
			cur.finish(nil)
			return nil
		case MsgError:
			// A mid-stream statement error: the server closed the portal; rows
			// already delivered in this response stay valid, then Next reports
			// the error. The connection itself is still in sync.
			cur.finish(DecodeServerError(body))
			return nil
		default:
			cur.finish(cur.c.fail(fmt.Errorf("wire: unexpected frame %q in cursor stream", typ)))
			return cur.err
		}
	}
}

func (cur *Cursor) finish(err error) {
	cur.done = true
	cur.suspended = false
	if cur.err == nil {
		cur.err = err
	}
	if cur.c.cursor == cur {
		cur.c.cursor = nil
	}
}

// Next returns the next row, issuing Fetch round trips as batches drain;
// (nil, nil) means end of result.
func (cur *Cursor) Next() (value.Row, error) {
	for {
		if cur.pos < len(cur.pending) {
			row := cur.pending[cur.pos]
			cur.pos++
			return row, nil
		}
		if cur.err != nil {
			return nil, cur.err
		}
		if cur.done {
			return nil, nil
		}
		if !cur.suspended {
			return nil, nil
		}
		cur.suspended = false
		if err := cur.c.request(MsgFetch, binary.AppendUvarint(nil, cur.fetchSize)); err != nil {
			cur.finish(err)
			return nil, err
		}
		if err := cur.readBatchResponse(); err != nil {
			return nil, err
		}
	}
}

// Close releases the cursor: delivered-but-unread rows are dropped, and an
// open server portal is closed with one round trip. After Close the
// connection is ready for the next request.
func (cur *Cursor) Close() error {
	cur.pending, cur.pos = nil, 0
	suspended := !cur.done && cur.suspended
	cur.finish(nil)
	if suspended {
		if err := cur.c.request(MsgClosePortal, nil); err != nil {
			cur.err = err
			return err
		}
		if err := cur.c.awaitCloseOK(); err != nil {
			cur.err = err
			return err
		}
		return nil
	}
	return cur.err
}
