package wire

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"perm/internal/value"
)

// Client is the client side of the Perm wire protocol: one TCP connection,
// one server session, strict request/response. It is not safe for concurrent
// use — database/sql serializes access per connection, which is exactly the
// discipline the protocol expects.
type Client struct {
	nc     net.Conn
	conn   *Conn
	server HelloOK
	// stream is the open row stream, if any; it must be exhausted or closed
	// before the next request.
	stream *Rows
	broken error
}

// Dial connects, performs the handshake, and returns a ready client.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a timeout covering both the TCP connect and the
// protocol handshake, so a peer that accepts but never answers cannot hang
// the caller.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// WatchCancel arms abort to run once when ctx ends. The returned stop
// function disarms the watcher and JOINS it before returning, so after stop
// no late abort can fire — the invariant both connection-abort call sites
// (DialContext and the driver's per-request watcher) depend on: an abort
// that poisons the connection deadline must never land after the caller has
// moved on and cleared it.
func WatchCancel(ctx context.Context, abort func()) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		select {
		case <-ctx.Done():
			abort()
		case <-stopCh:
		}
	}()
	return func() {
		close(stopCh)
		<-parked
	}
}

// DialContext is Dial under a caller-controlled context: both the TCP
// connect and the handshake observe its deadline and cancellation (the
// database/sql pool dials new connections through here, so a query context
// bounds connection establishment too). A context without a deadline still
// gets a 10-second handshake cap.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, conn: NewConn(nc)}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(10 * time.Second)
	}
	nc.SetDeadline(deadline)
	stop := WatchCancel(ctx, c.Abort)
	err = c.handshake()
	stop()
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		nc.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

func (c *Client) handshake() error {
	server, err := Handshake(c.conn, "perm-go")
	if err != nil {
		return err
	}
	c.server = server
	return nil
}

// Handshake performs the client side of the protocol handshake on conn:
// Hello out, HelloOK (or a server error) back. Callers that drive a raw Conn
// — the replication follower subscribes and then reads a one-way stream that
// doesn't fit the Client's request/response discipline — use this directly.
func Handshake(conn *Conn, client string) (HelloOK, error) {
	payload := Hello{Version: ProtocolVersion, Client: client}.Encode(nil)
	if err := conn.WriteMessage(MsgHello, payload); err != nil {
		return HelloOK{}, err
	}
	if err := conn.Flush(); err != nil {
		return HelloOK{}, err
	}
	typ, body, err := conn.ReadMessage()
	if err != nil {
		return HelloOK{}, fmt.Errorf("wire: handshake failed: %w", err)
	}
	switch typ {
	case MsgHelloOK:
		return DecodeHelloOK(body)
	case MsgError:
		return HelloOK{}, DecodeServerError(body)
	}
	return HelloOK{}, fmt.Errorf("wire: unexpected handshake response %q", typ)
}

// Server returns the server's handshake information.
func (c *Client) Server() HelloOK { return c.server }

// fail marks the connection unusable (protocol state lost).
func (c *Client) fail(err error) error {
	if c.broken == nil {
		c.broken = err
	}
	return err
}

// Broken reports the sticky connection error, if any. A client with a broken
// connection must be discarded; database/sql uses this to retire pooled
// connections.
func (c *Client) Broken() error { return c.broken }

// Abort unblocks any in-flight network read or write by expiring the
// connection's deadline. It is the one Client method safe to call from
// another goroutine: the perm driver uses it to honor context cancellation
// while a request is blocked on the server. The protocol state is lost, so
// the aborted operation fails and the connection becomes Broken. A caller
// that stops an armed Abort watcher without the abort having mattered must
// call ResetDeadline (after the watcher has fully exited) so a late Abort
// cannot leak into the next request.
func (c *Client) Abort() {
	c.nc.SetDeadline(time.Unix(1, 0))
}

// ResetDeadline clears any deadline Abort installed. Only call it when no
// Abort can fire concurrently anymore — clearing while a cancellation is
// still in flight would lose it.
func (c *Client) ResetDeadline() {
	c.nc.SetDeadline(time.Time{})
}

func (c *Client) ready() error {
	if c.broken != nil {
		return c.broken
	}
	if c.stream != nil {
		return fmt.Errorf("wire: previous result set not closed")
	}
	return nil
}

// Query sends one SQL statement and returns its (possibly empty) row stream.
// Statement errors come back as *ServerError; the connection stays usable.
func (c *Client) Query(sqlText string) (*Rows, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if err := c.conn.WriteMessage(MsgQuery, AppendString(nil, sqlText)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.conn.Flush(); err != nil {
		return nil, c.fail(err)
	}
	typ, body, err := c.conn.ReadMessage()
	if err != nil {
		return nil, c.fail(err)
	}
	switch typ {
	case MsgError:
		return nil, DecodeServerError(body)
	case MsgRowDesc:
		desc, err := DecodeRowDesc(body)
		if err != nil {
			return nil, c.fail(err)
		}
		rows := &Rows{c: c, Desc: desc}
		c.stream = rows
		return rows, nil
	case MsgComplete:
		done, err := DecodeComplete(body)
		if err != nil {
			return nil, c.fail(err)
		}
		return &Rows{c: c, done: true, Complete: done}, nil
	}
	return nil, c.fail(fmt.Errorf("wire: unexpected response %q to query", typ))
}

// Exec runs a statement and drains any rows, returning the completion.
func (c *Client) Exec(sqlText string) (Complete, error) {
	rows, err := c.Query(sqlText)
	if err != nil {
		return Complete{}, err
	}
	if err := rows.Close(); err != nil {
		return Complete{}, err
	}
	return rows.Complete, nil
}

// Backup streams a consistent snapshot of the server's database into w (the
// remote analog of perm.DB.Save).
func (c *Client) Backup(w io.Writer) error {
	if err := c.ready(); err != nil {
		return err
	}
	if err := c.conn.WriteMessage(MsgBackup, nil); err != nil {
		return c.fail(err)
	}
	if err := c.conn.Flush(); err != nil {
		return c.fail(err)
	}
	for {
		typ, body, err := c.conn.ReadMessage()
		if err != nil {
			return c.fail(err)
		}
		switch typ {
		case MsgBackupChunk:
			if _, err := w.Write(body); err != nil {
				// The stream must still be drained to keep the protocol in
				// sync, but the caller's error wins.
				c.drainBackup()
				return err
			}
		case MsgBackupDone:
			return nil
		case MsgError:
			return DecodeServerError(body)
		default:
			return c.fail(fmt.Errorf("wire: unexpected response %q to backup", typ))
		}
	}
}

func (c *Client) drainBackup() {
	for {
		typ, _, err := c.conn.ReadMessage()
		if err != nil {
			c.fail(err)
			return
		}
		if typ == MsgBackupDone || typ == MsgError {
			return
		}
	}
}

// Close terminates the session and closes the connection.
func (c *Client) Close() error {
	if c.broken == nil {
		// Best effort: the server treats an abrupt close identically.
		c.conn.WriteMessage(MsgTerminate, nil)
		c.conn.Flush()
	}
	return c.conn.Close()
}

// Rows is a streaming result set. Desc is empty for statements without a
// result set; Complete is valid once the stream is exhausted or closed.
type Rows struct {
	c        *Client
	Desc     RowDesc
	Complete Complete
	done     bool
	err      error
}

// Next returns the next row, or (nil, nil) at end of stream.
func (r *Rows) Next() (value.Row, error) {
	if r.done || r.err != nil {
		return nil, r.err
	}
	typ, body, err := r.c.conn.ReadMessage()
	if err != nil {
		r.finish(r.c.fail(err))
		return nil, r.err
	}
	switch typ {
	case MsgRow:
		rd := NewReader(body)
		row := rd.Row()
		if rd.Err() != nil {
			r.finish(r.c.fail(rd.Err()))
			return nil, r.err
		}
		return row, nil
	case MsgComplete:
		done, err := DecodeComplete(body)
		if err != nil {
			r.finish(r.c.fail(err))
			return nil, r.err
		}
		r.Complete = done
		r.finish(nil)
		return nil, nil
	case MsgError:
		r.finish(DecodeServerError(body))
		return nil, r.err
	}
	r.finish(r.c.fail(fmt.Errorf("wire: unexpected frame %q in row stream", typ)))
	return nil, r.err
}

func (r *Rows) finish(err error) {
	r.done = true
	r.err = err
	if r.c.stream == r {
		r.c.stream = nil
	}
}

// Close drains the stream so the connection is ready for the next request.
func (r *Rows) Close() error {
	for !r.done {
		if _, err := r.Next(); err != nil {
			return err
		}
	}
	return r.err
}
