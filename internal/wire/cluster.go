package wire

import "encoding/binary"

// NodeStatus is one member's answer to a MsgStatus probe (and the payload of
// the MsgStatusOK that acknowledges Promote/Demote): everything a coordinator
// or router needs to classify the member — role, fencing epoch, timeline
// origin, replication positions and health — in one small frame.
type NodeStatus struct {
	// Role is "primary" or "replica".
	Role string
	// Epoch is the fencing epoch the member currently serves under.
	Epoch uint64
	// Origin identifies the member's timeline (PR 3's fork detection id).
	Origin uint64
	// AppliedLSN is the newest change record in the member's store;
	// DurableLSN the newest one its WAL has fsynced (equal to AppliedLSN
	// when the WAL is disabled). PrimaryLSN is the upstream position a
	// replica last observed; on a primary it equals AppliedLSN.
	AppliedLSN uint64
	DurableLSN uint64
	PrimaryLSN uint64
	// Connected reports whether a replica's subscription stream is live.
	// Always true on a primary.
	Connected bool
	// StalenessMs is the wall-clock milliseconds since a replica last
	// either applied records or confirmed it was caught up; 0 on a primary
	// and on a caught-up replica.
	StalenessMs int64
	// LastError is the most recent replication error, empty while healthy.
	LastError string
}

// LagRecords is the member's apply lag in change records.
func (m NodeStatus) LagRecords() uint64 {
	if m.PrimaryLSN > m.AppliedLSN {
		return m.PrimaryLSN - m.AppliedLSN
	}
	return 0
}

// Encode appends the NodeStatus payload.
func (m NodeStatus) Encode(dst []byte) []byte {
	dst = AppendString(dst, m.Role)
	dst = binary.AppendUvarint(dst, m.Epoch)
	dst = binary.AppendUvarint(dst, m.Origin)
	dst = binary.AppendUvarint(dst, m.AppliedLSN)
	dst = binary.AppendUvarint(dst, m.DurableLSN)
	dst = binary.AppendUvarint(dst, m.PrimaryLSN)
	dst = AppendBool(dst, m.Connected)
	dst = binary.AppendVarint(dst, m.StalenessMs)
	return AppendString(dst, m.LastError)
}

// DecodeNodeStatus parses a NodeStatus payload.
func DecodeNodeStatus(payload []byte) (NodeStatus, error) {
	r := NewReader(payload)
	m := NodeStatus{
		Role:       r.String(),
		Epoch:      r.Uvarint(),
		Origin:     r.Uvarint(),
		AppliedLSN: r.Uvarint(),
		DurableLSN: r.Uvarint(),
		PrimaryLSN: r.Uvarint(),
		Connected:  r.Bool(),
	}
	m.StalenessMs = r.Varint()
	m.LastError = r.String()
	return m, r.Err()
}

// Promote orders a member to fence itself at Epoch (which must be higher
// than the epoch it serves under) and start accepting writes.
type Promote struct {
	Epoch uint64
}

// Encode appends the Promote payload.
func (m Promote) Encode(dst []byte) []byte {
	return binary.AppendUvarint(dst, m.Epoch)
}

// DecodePromote parses a Promote payload.
func DecodePromote(payload []byte) (Promote, error) {
	r := NewReader(payload)
	m := Promote{Epoch: r.Uvarint()}
	return m, r.Err()
}

// Demote orders a member to fence itself at Epoch (at least as high as the
// epoch it serves under), enter read-only mode and follow PrimaryAddr.
type Demote struct {
	Epoch       uint64
	PrimaryAddr string
}

// Encode appends the Demote payload.
func (m Demote) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, m.Epoch)
	return AppendString(dst, m.PrimaryAddr)
}

// DecodeDemote parses a Demote payload.
func DecodeDemote(payload []byte) (Demote, error) {
	r := NewReader(payload)
	m := Demote{Epoch: r.Uvarint(), PrimaryAddr: r.String()}
	return m, r.Err()
}
