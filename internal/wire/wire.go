// Package wire implements the Perm client/server wire protocol: a compact,
// length-prefixed binary framing with typed messages for the handshake,
// query dispatch, row streaming, command completion, errors and online
// backup. Both sides of the connection — internal/server and the public
// perm/driver — share the encode/decode routines in this package, so the
// protocol has exactly one definition.
//
// # Framing
//
// Every message is one frame:
//
//	[1 byte type][4 bytes big-endian payload length][payload]
//
// Payload integers use unsigned varints (encoding/binary), strings are
// varint-length-prefixed UTF-8, and SQL values travel as a kind tag followed
// by the kind's natural encoding (bool: 1 byte; int: zig-zag varint; float:
// 8-byte IEEE 754 bits; text: varint-prefixed bytes; NULL: tag only) — the
// same five runtime kinds as internal/value, so a provenance tuple streams
// without loss.
//
// # Conversation
//
// The client opens with Hello and the server answers HelloOK (or Error, and
// closes). After that the client drives a strict request/response loop: each
// Query is answered by either Error, or RowDesc followed by zero or more Row
// frames and a final Complete (statements without a result set skip straight
// to Complete). Backup is answered by BackupChunk frames then BackupDone.
// Terminate ends the conversation. The strict alternation means neither side
// ever needs to demultiplex.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"perm/internal/value"
)

// ProtocolVersion is bumped on any incompatible framing or message change.
// Version 2 added replication (Subscribe and the server→client snapshot /
// change-batch / heartbeat stream) and the error-code suffix on Error frames.
// Version 3 added cursors and server-side prepared statements
// (Parse/Execute/Fetch/ClosePortal, batched row frames, typed parameters)
// and switched row streaming from one frame per row to RowBatch frames.
// Version 4 added the cluster layer: fencing epochs in the handshake,
// Subscribe, the replication stream and Complete frames; node status probes
// (Status/StatusOK); coordinator-driven Promote/Demote; and follower apply
// acknowledgments (SubAck) for semi-synchronous replication.
const ProtocolVersion = 4

// MaxFrameSize bounds a single frame (64 MiB): a defense against corrupt or
// malicious length prefixes allocating unbounded memory.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned by WriteMessage for payloads over
// MaxFrameSize, before anything is written — the connection stays in sync,
// so the sender may report the condition in-band instead of dying.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// Message types. Client→server types are uppercase, server→client lowercase.
const (
	MsgHello       byte = 'H' // client: protocol version + client name
	MsgQuery       byte = 'Q' // client: one SQL statement
	MsgBackup      byte = 'B' // client: request a consistent snapshot stream
	MsgSubscribe   byte = 'S' // client: become a replication follower from an LSN
	MsgTerminate   byte = 'X' // client: goodbye
	MsgHelloOK     byte = 'h' // server: handshake accepted
	MsgRowDesc     byte = 'd' // server: result-set column descriptions
	MsgRow         byte = 'r' // reserved: v2's one-row-per-frame type; v3 streams RowBatch frames
	MsgComplete    byte = 'c' // server: statement finished (tag, timings)
	MsgError       byte = 'e' // server: statement or protocol error
	MsgBackupChunk byte = 'b' // server: snapshot bytes
	MsgBackupDone  byte = 'k' // server: snapshot complete

	// Replication stream (server→client, after MsgSubscribe). The follower
	// asks to resume after an LSN; the primary answers either MsgSubLive
	// (the log still holds everything past that LSN) or MsgSubSnapshot +
	// BackupChunk frames + MsgSubLive (bootstrap), then pushes MsgChanges
	// batches as mutations commit and MsgHeartbeat while idle. Subscribe
	// turns the connection into a one-way stream: the client sends nothing
	// further and the strict request/response alternation no longer applies.
	MsgSubSnapshot byte = 'n' // server: bootstrap snapshot stream follows
	MsgSubLive     byte = 'l' // server: snapshot done / resume accepted; payload = stream start LSN
	MsgChanges     byte = 'g' // server: a batch of change records (repl.DecodeBatch)
	MsgHeartbeat   byte = 't' // server: liveness + the primary's current last LSN

	// Cursors and server-side prepared statements (protocol v3). Parse
	// registers a named statement on the connection's session; Execute binds
	// typed arguments to a named (or inline one-shot) statement and opens
	// the connection's portal, streaming the first batch of rows; Fetch
	// continues the portal under client-driven backpressure — the executor
	// produces nothing between fetches — and ClosePortal abandons it. Each
	// Execute/Fetch is answered by RowBatch frames followed by Suspended
	// (more rows remain; portal stays open) or Complete (done), or by a
	// typed Error mid-stream, which also closes the portal.
	MsgParse       byte = 'P' // client: register a prepared statement (name + SQL)
	MsgExecute     byte = 'E' // client: bind args + open the portal, fetch first batch
	MsgFetch       byte = 'F' // client: next batch from the open portal
	MsgClosePortal byte = 'C' // client: abandon the open portal
	MsgCloseStmt   byte = 'D' // client: deallocate a prepared statement
	MsgParseOK     byte = 'p' // server: statement registered; payload = parameter count
	MsgRowBatch    byte = 'w' // server: a batch of data rows in one frame
	MsgSuspended   byte = 's' // server: batch done, portal open — Fetch for more
	MsgCloseOK     byte = 'o' // server: portal/statement closed

	// Cluster management (protocol v4). Status is a cheap point-in-time probe
	// of a member's role, fencing epoch and replication position — the
	// coordinator's failure detector and permshell's \cluster both live on
	// it. Promote and Demote are coordinator→member role changes: Promote
	// fences the member at a new (higher) epoch and opens it for writes;
	// Demote fences it at the coordinator's epoch and points it at the new
	// primary as a follower. Both answer with MsgStatusOK on success so the
	// coordinator sees the post-transition state in one round trip. SubAck is
	// the one exception to the one-way replication stream: a follower sends
	// it upstream on the subscription connection after durably applying a
	// change batch, which is what primaries running with sync_replicas > 0
	// wait on before acknowledging writes.
	MsgStatus   byte = 'U' // client: probe node status
	MsgPromote  byte = 'R' // coordinator: raise epoch, exit read-only, serve writes
	MsgDemote   byte = 'M' // coordinator: adopt epoch, follow the new primary
	MsgSubAck   byte = 'A' // follower: durably applied through LSN (on the subscription conn)
	MsgStatusOK byte = 'u' // server: NodeStatus payload
)

// Error codes carried by Error frames, so clients can surface typed errors
// across the wire (database/sql callers match them with errors.Is).
const (
	// ErrCodeGeneric is an ordinary statement or protocol error.
	ErrCodeGeneric uint64 = 0
	// ErrCodeReadOnly reports a write rejected by a read-only replica.
	ErrCodeReadOnly uint64 = 1
	// ErrCodeLogTrimmed reports a Subscribe position older than the
	// primary's retained change log; the follower must re-bootstrap.
	ErrCodeLogTrimmed uint64 = 2
	// ErrCodeTimeout reports a query canceled by the server's per-query
	// timeout — including a cursor whose client fetched past the deadline,
	// so timeouts stay typed across Fetch boundaries.
	ErrCodeTimeout uint64 = 3
	// ErrCodeStaleEpoch reports a request carrying (or served under) a
	// fencing epoch older than the cluster's current one: a deposed
	// primary's subscription stream, a promote/demote that lost the race,
	// or a write acknowledged by a primary that has since been fenced. The
	// typed code is what turns split-brain into a visible, retryable error.
	ErrCodeStaleEpoch uint64 = 4
	// ErrCodeWriteConflict reports a COMMIT aborted by first-committer-wins
	// validation: a concurrent transaction changed a row this one also
	// wrote. The transaction is already rolled back server-side; the typed
	// code lets clients retry the whole transaction automatically.
	ErrCodeWriteConflict uint64 = 5
)

// Hello is the client's opening message.
type Hello struct {
	Version uint32
	Client  string
}

// HelloOK is the server's handshake acceptance. Epoch and Role (v4) expose
// the member's cluster position right in the handshake, so routers and
// multi-host drivers can classify a member without issuing a single query.
type HelloOK struct {
	Version uint32
	Server  string
	Epoch   uint64 // fencing epoch the member currently serves under
	Role    string // "primary" or "replica"
}

// RowDesc describes the columns of a result set, including which columns are
// provenance attributes (the prov_… columns SELECT PROVENANCE appends).
type RowDesc struct {
	Names  []string
	Kinds  []value.Kind
	IsProv []bool
}

// Complete finishes a statement: the command tag, whether the session plan
// cache served it, and the per-stage pipeline timings in nanoseconds. Epoch
// (v4) stamps the acknowledgment with the fencing epoch the statement ran
// under, so a router can detect a write acked by a since-deposed primary.
type Complete struct {
	Tag      string
	CacheHit bool
	Parse    int64
	Analyze  int64
	Rewrite  int64
	Plan     int64
	Execute  int64
	Epoch    uint64
}

// ServerError is an error reported by the remote server. Code carries the
// machine-readable classification (ErrCode…); consumers that need a typed
// error (the perm driver's read-only mapping) switch on it.
type ServerError struct {
	Message string
	Code    uint64
}

func (e *ServerError) Error() string { return "perm server: " + e.Message }

// AppendError encodes an Error frame payload: the message followed by the
// error code.
func AppendError(dst []byte, msg string, code uint64) []byte {
	dst = AppendString(dst, msg)
	return binary.AppendUvarint(dst, code)
}

// DecodeServerError parses an Error frame payload. For robustness against a
// bare-string payload (a refusal written before the handshake negotiated
// anything) a missing code decodes as ErrCodeGeneric.
func DecodeServerError(payload []byte) *ServerError {
	r := NewReader(payload)
	msg := r.String()
	if r.Err() != nil {
		return &ServerError{Message: string(payload)}
	}
	e := &ServerError{Message: msg}
	if r.Remaining() > 0 {
		e.Code = r.Uvarint()
	}
	return e
}

// Conn wraps a byte stream with buffered frame I/O. It is not safe for
// concurrent use; the protocol is strictly request/response.
type Conn struct {
	raw       io.Closer
	r         *bufio.Reader
	w         *bufio.Writer
	payload   []byte // reused frame read buffer
	readLimit int
}

// NewConn wraps a network connection (or any read-write-closer).
func NewConn(c net.Conn) *Conn {
	return &Conn{
		raw:       c,
		r:         bufio.NewReaderSize(c, 32<<10),
		w:         bufio.NewWriterSize(c, 32<<10),
		readLimit: MaxFrameSize,
	}
}

// SetReadLimit caps the frames this side will accept, below MaxFrameSize.
// The server uses it to bound what a client can make it allocate: everything
// a client legitimately sends (handshake, SQL text, backup request) is tiny,
// whereas the length prefix is attacker-controlled and ReadMessage allocates
// it before a single payload byte arrives.
func (c *Conn) SetReadLimit(n int) {
	if n > 0 && n <= MaxFrameSize {
		c.readLimit = n
	}
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.raw.Close() }

// WriteMessage writes one frame. The payload is not retained. Frames are
// buffered; call Flush when a logical response is complete.
func (c *Conn) WriteMessage(typ byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(payload)
	return err
}

// Flush pushes buffered frames to the peer.
func (c *Conn) Flush() error { return c.w.Flush() }

// ReadMessage reads one frame. The returned payload aliases an internal
// buffer valid only until the next ReadMessage call.
func (c *Conn) ReadMessage() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > uint32(c.readLimit) {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte read limit", n, c.readLimit)
	}
	// Grow the reusable buffer on demand, but do not let one outlier frame
	// pin megabytes for the connection's lifetime: once the retained capacity
	// dwarfs the need, reallocate back down (never below shrinkThreshold, so
	// ordinary traffic cannot thrash between sizes).
	const shrinkThreshold = 64 << 10
	if cap(c.payload) < int(n) {
		c.payload = make([]byte, n)
	} else if cap(c.payload) > shrinkThreshold && int(n) < cap(c.payload)/8 {
		c.payload = make([]byte, max(int(n), shrinkThreshold))
	}
	buf := c.payload[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return 0, nil, err
	}
	return hdr[0], buf, nil
}

// --- payload encoding ---------------------------------------------------------

// AppendString appends a varint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBool appends a boolean byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendValue appends one SQL value in its kind-tagged binary form.
func AppendValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case value.KindNull:
	case value.KindBool:
		dst = AppendBool(dst, v.B)
	case value.KindInt:
		dst = binary.AppendVarint(dst, v.I)
	case value.KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
	case value.KindString:
		dst = AppendString(dst, v.S)
	default:
		// Unknown kinds travel as NULL rather than corrupting the stream.
		dst[len(dst)-1] = byte(value.KindNull)
	}
	return dst
}

// AppendRow appends a column-count-prefixed tuple.
func AppendRow(dst []byte, row value.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = AppendValue(dst, v)
	}
	return dst
}

// Reader decodes a frame payload sequentially. Decoding errors stick: after
// the first failure every subsequent read returns the zero value, and Err
// reports what went wrong, so message decoders can run unchecked and validate
// once at the end.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps a payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many payload bytes are left to decode.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or corrupt %s at offset %d", what, r.pos)
	}
}

// Fail marks the reader corrupt from the outside: message decoders layered
// on this package (repl records) use it when a count or bound they validate
// themselves is impossible, so the payload is rejected as a whole rather
// than decoded misaligned.
func (r *Reader) Fail(what string) { r.fail(what) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.pos += n
	return v
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// String reads a varint-length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Bytes reads n raw bytes, aliasing the payload.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.pos {
		r.fail("bytes")
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Value reads one kind-tagged SQL value.
func (r *Reader) Value() value.Value {
	k := value.Kind(r.Byte())
	switch k {
	case value.KindNull:
		return value.Null
	case value.KindBool:
		return value.NewBool(r.Bool())
	case value.KindInt:
		return value.NewInt(r.Varint())
	case value.KindFloat:
		b := r.Bytes(8)
		if r.err != nil {
			return value.Null
		}
		return value.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b)))
	case value.KindString:
		return value.NewString(r.String())
	}
	r.fail("value kind")
	return value.Null
}

// Row reads a column-count-prefixed tuple.
func (r *Reader) Row() value.Row {
	n := r.Uvarint()
	// Each value takes at least one byte, so an arity beyond the remaining
	// payload is corrupt — reject it before allocating the row.
	if r.err != nil || n > uint64(len(r.buf)-r.pos) {
		r.fail("row arity")
		return nil
	}
	row := make(value.Row, n)
	for i := range row {
		row[i] = r.Value()
	}
	return row
}

// --- message encode/decode ----------------------------------------------------

// Encode appends the Hello payload.
func (m Hello) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Version))
	return AppendString(dst, m.Client)
}

// DecodeHello parses a Hello payload.
func DecodeHello(payload []byte) (Hello, error) {
	r := NewReader(payload)
	m := Hello{Version: uint32(r.Uvarint()), Client: r.String()}
	return m, r.Err()
}

// Encode appends the HelloOK payload.
func (m HelloOK) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Version))
	dst = AppendString(dst, m.Server)
	dst = binary.AppendUvarint(dst, m.Epoch)
	return AppendString(dst, m.Role)
}

// DecodeHelloOK parses a HelloOK payload.
func DecodeHelloOK(payload []byte) (HelloOK, error) {
	r := NewReader(payload)
	m := HelloOK{Version: uint32(r.Uvarint()), Server: r.String()}
	if r.Remaining() > 0 {
		m.Epoch = r.Uvarint()
		m.Role = r.String()
	}
	return m, r.Err()
}

// Encode appends the RowDesc payload.
func (m RowDesc) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Names)))
	for i, name := range m.Names {
		dst = AppendString(dst, name)
		dst = append(dst, byte(m.Kinds[i]))
		dst = AppendBool(dst, m.IsProv[i])
	}
	return dst
}

// DecodeRowDesc parses a RowDesc payload.
func DecodeRowDesc(payload []byte) (RowDesc, error) {
	r := NewReader(payload)
	n := r.Uvarint()
	// Each column costs at least 3 payload bytes (name length, kind, prov
	// flag), so bound the count before allocating the slices.
	if n > uint64(len(payload))/3 {
		return RowDesc{}, fmt.Errorf("wire: row description with impossible column count %d", n)
	}
	m := RowDesc{
		Names:  make([]string, n),
		Kinds:  make([]value.Kind, n),
		IsProv: make([]bool, n),
	}
	for i := 0; i < int(n); i++ {
		m.Names[i] = r.String()
		m.Kinds[i] = value.Kind(r.Byte())
		m.IsProv[i] = r.Bool()
	}
	return m, r.Err()
}

// Encode appends the Complete payload.
func (m Complete) Encode(dst []byte) []byte {
	dst = AppendString(dst, m.Tag)
	dst = AppendBool(dst, m.CacheHit)
	for _, d := range [5]int64{m.Parse, m.Analyze, m.Rewrite, m.Plan, m.Execute} {
		dst = binary.AppendVarint(dst, d)
	}
	return binary.AppendUvarint(dst, m.Epoch)
}

// DecodeComplete parses a Complete payload.
func DecodeComplete(payload []byte) (Complete, error) {
	r := NewReader(payload)
	m := Complete{Tag: r.String(), CacheHit: r.Bool()}
	m.Parse, m.Analyze, m.Rewrite, m.Plan, m.Execute =
		r.Varint(), r.Varint(), r.Varint(), r.Varint(), r.Varint()
	if r.Remaining() > 0 {
		m.Epoch = r.Uvarint()
	}
	return m, r.Err()
}

// Parse registers a prepared statement under Name on the server session.
type Parse struct {
	Name string
	SQL  string
}

// Encode appends the Parse payload.
func (m Parse) Encode(dst []byte) []byte {
	dst = AppendString(dst, m.Name)
	return AppendString(dst, m.SQL)
}

// DecodeParse parses a Parse payload.
func DecodeParse(payload []byte) (Parse, error) {
	r := NewReader(payload)
	m := Parse{Name: r.String(), SQL: r.String()}
	return m, r.Err()
}

// Execute binds Args to a statement and opens the connection's portal. With
// Name set, the statement was registered by an earlier Parse; with Name
// empty, SQL carries a one-shot statement (parse + bind + execute in one
// round trip — what ad-hoc parameterized queries use). FetchSize caps the
// rows returned before the portal suspends; 0 streams to completion.
type Execute struct {
	Name      string
	SQL       string
	Args      []value.Value
	FetchSize uint64
}

// Encode appends the Execute payload.
func (m Execute) Encode(dst []byte) []byte {
	dst = AppendString(dst, m.Name)
	dst = AppendString(dst, m.SQL)
	dst = binary.AppendUvarint(dst, uint64(len(m.Args)))
	for _, a := range m.Args {
		dst = AppendValue(dst, a)
	}
	return binary.AppendUvarint(dst, m.FetchSize)
}

// DecodeExecute parses an Execute payload.
func DecodeExecute(payload []byte) (Execute, error) {
	r := NewReader(payload)
	m := Execute{Name: r.String(), SQL: r.String()}
	n := r.Uvarint()
	// Each value costs at least one payload byte; reject impossible counts
	// before allocating.
	if r.Err() == nil && n > uint64(r.Remaining()) {
		r.Fail("argument count")
	}
	if r.Err() != nil {
		return Execute{}, r.Err()
	}
	if n > 0 {
		m.Args = make([]value.Value, n)
		for i := range m.Args {
			m.Args[i] = r.Value()
		}
	}
	m.FetchSize = r.Uvarint()
	return m, r.Err()
}

// AppendRowBatch encodes a RowBatch payload: a row count followed by the
// rows. The server builds batches incrementally with AppendRow instead; this
// helper exists for tests and simple clients.
func AppendRowBatch(dst []byte, rows []value.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		dst = AppendRow(dst, row)
	}
	return dst
}

// DecodeRowBatch parses a RowBatch payload. Row memory is freshly allocated
// (strings copy out of the frame buffer), so the rows outlive the next read.
func DecodeRowBatch(payload []byte) ([]value.Row, error) {
	r := NewReader(payload)
	n := r.Uvarint()
	// Each row costs at least one payload byte (its arity prefix).
	if r.Err() == nil && n > uint64(r.Remaining()) {
		r.Fail("row batch count")
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	rows := make([]value.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		rows = append(rows, r.Row())
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	return rows, nil
}
