package wire

import (
	"bytes"
	"math"
	"net"
	"reflect"
	"testing"

	"perm/internal/value"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null,
		value.NewBool(true),
		value.NewBool(false),
		value.NewInt(0),
		value.NewInt(-1),
		value.NewInt(math.MaxInt64),
		value.NewInt(math.MinInt64),
		value.NewFloat(0),
		value.NewFloat(-3.25),
		value.NewFloat(math.Inf(1)),
		value.NewString(""),
		value.NewString("hello"),
		value.NewString("quotes ' and \x00 bytes and ünïcode"),
	}
	buf := AppendRow(nil, vals)
	r := NewReader(buf)
	got := r.Row()
	if err := r.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("arity %d, want %d", len(got), len(vals))
	}
	for i, v := range vals {
		if got[i].K != v.K || got[i].String() != v.String() {
			t.Errorf("value %d: got %v (%s), want %v (%s)", i, got[i], got[i].K, v, v.K)
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	h, err := DecodeHello(Hello{Version: 7, Client: "c"}.Encode(nil))
	if err != nil || h.Version != 7 || h.Client != "c" {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}
	ok, err := DecodeHelloOK(HelloOK{Version: 1, Server: "perm/1"}.Encode(nil))
	if err != nil || ok.Server != "perm/1" {
		t.Fatalf("helloOK round trip: %+v, %v", ok, err)
	}
	desc := RowDesc{
		Names:  []string{"i", "prov_public_r_i"},
		Kinds:  []value.Kind{value.KindInt, value.KindInt},
		IsProv: []bool{false, true},
	}
	got, err := DecodeRowDesc(desc.Encode(nil))
	if err != nil || !reflect.DeepEqual(got, desc) {
		t.Fatalf("rowdesc round trip: %+v, %v", got, err)
	}
	done := Complete{Tag: "SELECT 4", CacheHit: true, Parse: 1, Analyze: 2, Rewrite: 3, Plan: 4, Execute: 5}
	gotC, err := DecodeComplete(done.Encode(nil))
	if err != nil || gotC != done {
		t.Fatalf("complete round trip: %+v, %v", gotC, err)
	}
}

func TestReaderCorruptInputs(t *testing.T) {
	// Truncated string length.
	r := NewReader([]byte{0xff})
	_ = r.String()
	if r.Err() == nil {
		t.Error("truncated uvarint: want error")
	}
	// String length pointing past the payload.
	r = NewReader(AppendString(nil, "abcdef")[:3])
	_ = r.String()
	if r.Err() == nil {
		t.Error("overlong string: want error")
	}
	// Unknown value kind.
	r = NewReader([]byte{0x7f})
	r.Value()
	if r.Err() == nil {
		t.Error("unknown kind: want error")
	}
	// Row arity larger than the payload could hold.
	r = NewReader(binary_AppendUvarint(nil, 1<<40))
	r.Row()
	if r.Err() == nil {
		t.Error("absurd arity: want error")
	}
	// Errors stick.
	if r.Byte() != 0 || r.Err() == nil {
		t.Error("sticky error violated")
	}
}

// binary_AppendUvarint avoids importing encoding/binary in the test twice.
func binary_AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func TestFrameRoundTripOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	payload := AppendString(nil, "SELECT PROVENANCE i FROM r")
	errCh := make(chan error, 1)
	go func() {
		if err := ca.WriteMessage(MsgQuery, payload); err != nil {
			errCh <- err
			return
		}
		errCh <- ca.Flush()
	}()
	typ, body, err := cb.ReadMessage()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if werr := <-errCh; werr != nil {
		t.Fatalf("write: %v", werr)
	}
	if typ != MsgQuery {
		t.Fatalf("type %q, want %q", typ, MsgQuery)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("payload mismatch")
	}
	a.Close()
	b.Close()
}

func TestFrameSizeLimit(t *testing.T) {
	// Oversized writes are rejected before touching the socket.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(a)
	if err := conn.WriteMessage(MsgRow, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestServerErrorCodeRoundTrip(t *testing.T) {
	payload := AppendError(nil, "read-only replica", ErrCodeReadOnly)
	e := DecodeServerError(payload)
	if e.Message != "read-only replica" || e.Code != ErrCodeReadOnly {
		t.Fatalf("decoded %+v", e)
	}
	// A bare-string payload (no code suffix) decodes as generic.
	e = DecodeServerError(AppendString(nil, "plain"))
	if e.Message != "plain" || e.Code != ErrCodeGeneric {
		t.Fatalf("decoded bare payload as %+v", e)
	}
}

func TestReaderRemaining(t *testing.T) {
	payload := AppendString(nil, "abc")
	r := NewReader(payload)
	if r.Remaining() != len(payload) {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	if s := r.String(); s != "abc" {
		t.Fatalf("String = %q", s)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining after full decode = %d", r.Remaining())
	}
}
