package executor

import (
	"runtime"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/storage"
	"perm/internal/value"
)

// seedSortStore builds a store with one narrow table big(k, v) of n rows,
// keys scrambled so the sort actually has to work.
func seedSortStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	tt, err := s.CreateTable(&catalog.TableDef{Name: "big", Columns: []catalog.Column{
		{Name: "k", Type: value.KindInt}, {Name: "v", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, value.Row{
			value.NewInt(int64((i * 7919) % n)), value.NewInt(int64(i)),
		})
	}
	if _, err := tt.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return s
}

func sortBigPlan() *algebra.Sort {
	return &algebra.Sort{
		Input: &algebra.Scan{Table: "big", Alias: "big", Sch: algebra.Schema{
			{Name: "k", Table: "big", Type: value.KindInt},
			{Name: "v", Table: "big", Type: value.KindInt},
		}},
		Keys: []algebra.SortKey{{Expr: &algebra.ColIdx{Idx: 0, Typ: value.KindInt}}},
	}
}

// TestSortRunSizingTinyBudget is the budget-aware run-sizing regression: a
// micro work_mem (4 KiB) must not shear external-sort runs down to the
// minSortRunRows floor. Undersized runs mean a spill file per few KiB of
// input plus fan-in reduction passes that re-decode every row they touch —
// pure allocation churn. Runs are floored at minSortRunBytes, so this sort
// must finish in few, large runs: the test pins the spill-file count and the
// total allocation count, both of which regress by an integer factor if runs
// collapse back to row-floor sizing.
func TestSortRunSizingTinyBudget(t *testing.T) {
	const n = 20000
	s := seedSortStore(t, n)
	plan := sortBigPlan()

	ctx := NewContext(s)
	ctx.Mem = NewMemTracker(4096, t.TempDir())
	defer ctx.Mem.Cleanup()

	var res *Result
	allocs := allocsDuring(func() {
		var err error
		res, err = Run(ctx, plan)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	})

	if len(res.Rows) != n {
		t.Fatalf("sorted %d rows, want %d", len(res.Rows), n)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].I > res.Rows[i][0].I {
			t.Fatalf("rows %d/%d out of order: %v > %v", i-1, i, res.Rows[i-1][0].I, res.Rows[i][0].I)
		}
	}
	if tracked := ctx.Mem.Tracked(); tracked != 0 {
		t.Fatalf("tracked bytes after drain = %d, want 0", tracked)
	}

	// ~3.3 MB of input at >= 128 KiB per run is at most ~30 runs, merged in a
	// single fan-in (no reduction passes, no extra files). Row-floor runs of
	// 256 rows would produce ~79 run files plus reduction-pass output files.
	files := ctx.Mem.Pool().Files()
	if files == 0 {
		t.Fatal("sort never spilled under a 4 KiB budget")
	}
	if files > 40 {
		t.Errorf("spill files = %d, want <= 40 (budget-sized runs regressed to row-floor runs)", files)
	}

	// The allocation pin. Budget-sized runs measure ~n*4 allocations here;
	// row-floor runs add a reduction pass (a re-decode and re-encode of
	// mergeFanIn*minSortRunRows rows) and ~3x the file and buffer churn,
	// measuring ~n*6.5 — past this bound with margin on both sides.
	if limit := int64(n * 5); allocs > limit {
		t.Errorf("sort at 4 KiB work_mem made %d allocations, want <= %d", allocs, limit)
	}
	t.Logf("spill files=%d allocs=%d (n=%d)", files, allocs, n)
}

// allocsDuring counts heap allocations made by f on the calling goroutine.
func allocsDuring(f func()) int64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs - before.Mallocs)
}
