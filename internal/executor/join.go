package executor

import (
	"bytes"
	"fmt"
	"hash/maphash"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/sql"
	"perm/internal/value"
)

// joinHashSeed seeds the maphash bucketing of hash joins. One process-wide
// seed keeps build and probe sides consistent across iterators.
var joinHashSeed = maphash.MakeSeed()

// buildJoin picks a join algorithm: lateral joins always run nested-loop with
// per-left-row re-execution of the right side; equi-joins run as hash joins;
// everything else falls back to a generic nested loop.
func buildJoin(op *algebra.Join, parent *OpStats) (iterator, error) {
	n := node(parent, op)
	if op.Lateral {
		switch op.Kind {
		case algebra.JoinInner, algebra.JoinCross, algebra.JoinLeft:
			return wrapStat(&lateralJoinIter{op: op, stats: n}, n), nil
		default:
			return nil, fmt.Errorf("executor: lateral %s join is not supported", op.Kind)
		}
	}
	left, err := buildInto(op.Left, n)
	if err != nil {
		return nil, err
	}
	right, err := buildInto(op.Right, n)
	if err != nil {
		return nil, err
	}
	keys := extractEquiKeys(op)
	if len(keys) > 0 {
		return wrapStat(&hashJoinIter{op: op, left: left, right: right, keys: keys}, n), nil
	}
	return wrapStat(&nlJoinIter{op: op, left: left, right: right}, n), nil
}

// equiKey is one hashable join key pair: leftExpr over the left schema,
// rightExpr over the right schema (already un-shifted). nullEq marks
// IS NOT DISTINCT FROM keys where NULL joins NULL.
type equiKey struct {
	left   algebra.Expr
	right  algebra.Expr
	nullEq bool
}

// extractEquiKeys finds hashable equality conjuncts in the join condition.
func extractEquiKeys(op *algebra.Join) []equiKey {
	if op.Cond == nil {
		return nil
	}
	nLeft := len(op.Left.Schema())
	var keys []equiKey
	for _, conj := range algebra.SplitAnd(op.Cond) {
		b, ok := conj.(*algebra.Bin)
		if !ok || (b.Op != sql.OpEq && b.Op != sql.OpNotDistinct) {
			continue
		}
		if algebra.HasSubplan(b.L) || algebra.HasSubplan(b.R) {
			continue
		}
		lSide, lOK := sideOf(b.L, nLeft)
		rSide, rOK := sideOf(b.R, nLeft)
		if !lOK || !rOK {
			continue
		}
		switch {
		case lSide == 0 && rSide == 1:
			keys = append(keys, equiKey{
				left:   b.L,
				right:  algebra.ShiftCols(b.R, -nLeft),
				nullEq: b.Op == sql.OpNotDistinct,
			})
		case lSide == 1 && rSide == 0:
			keys = append(keys, equiKey{
				left:   b.R,
				right:  algebra.ShiftCols(b.L, -nLeft),
				nullEq: b.Op == sql.OpNotDistinct,
			})
		}
	}
	return keys
}

// sideOf classifies which input an expression references: 0 = left only,
// 1 = right only. ok is false when it references both sides or neither
// determinately (constants count as either; pure constants return left).
func sideOf(e algebra.Expr, nLeft int) (int, bool) {
	used := map[int]bool{}
	algebra.ColsUsed(e, used)
	left, right := false, false
	for idx := range used {
		if idx < nLeft {
			left = true
		} else {
			right = true
		}
	}
	switch {
	case left && right:
		return 0, false
	case right:
		return 1, true
	default:
		return 0, true
	}
}

// buildRow is one materialized build-side row. key is the framed hash-key
// encoding (nil when the row has a NULL in a strict-equality key and can
// never match).
type buildRow struct {
	row     value.Row
	key     []byte
	matched bool
}

// buildRowFixedBytes approximates the per-row footprint of a materialized
// build side beyond the row and key payloads: the buildRow struct itself plus
// its share of the hash-table buckets.
const buildRowFixedBytes = 96

// --- hash join -------------------------------------------------------------------

type hashJoinIter struct {
	op    *algebra.Join
	left  iterator
	right iterator
	keys  []equiKey
	ctx   *Context

	// compiled per-side key evaluators and residual condition
	leftKey  []compiledExpr
	rightKey []compiledExpr
	nullEq   []bool
	cond     compiledPred // nil when the join has no condition

	// table buckets build-row indices by maphash of the framed key bytes;
	// probes confirm candidates with a byte-slice equality check, so hash
	// collisions stay correct.
	table map[uint64][]int32
	// buildRows is a flat slice (one allocation) in insertion order, for
	// full-join unmatched emission.
	buildRows []buildRow
	// keyScratch is the reusable key-encoding buffer (zero allocs per probe).
	keyScratch []byte
	// comb is the reusable probe⧺build scratch row for residual-condition
	// evaluation; ownership transfers to the caller when a combined row is
	// emitted.
	comb value.Row
	// current probe state
	curProbe   value.Row
	curMatches []int32
	curIdx     int
	curMatched bool
	// full-join tail state
	tailIdx int
	inTail  bool
	done    bool
	// spill state: the build side is charged against work_mem; past the
	// budget the whole join switches to grace partitioning (gracejoin.go) and
	// the output streams from the merger instead of the probe loop.
	acct   memAcct
	reg    fileReg
	merger *seqMerger
}

func (h *hashJoinIter) Open(ctx *Context) error {
	h.release()
	h.ctx = ctx
	h.inTail, h.done = false, false
	h.tailIdx = 0
	h.curProbe = nil
	h.curMatches = nil
	h.acct.ctx = ctx
	if h.leftKey == nil {
		h.leftKey = make([]compiledExpr, len(h.keys))
		h.rightKey = make([]compiledExpr, len(h.keys))
		h.nullEq = make([]bool, len(h.keys))
		for i, k := range h.keys {
			h.leftKey[i] = Compile(k.left)
			h.rightKey[i] = Compile(k.right)
			h.nullEq[i] = k.nullEq
		}
		if h.op.Cond != nil {
			h.cond = compilePred(h.op.Cond)
		}
	}
	if err := h.right.Open(ctx); err != nil {
		return err
	}
	// Stream the build side in, charging every retained row (its payload, its
	// stable key copy, and the struct/bucket overhead). The moment the budget
	// is crossed the join hands the buffered prefix — and both remaining
	// inputs — to the grace path, which finishes on disk.
	var rows []buildRow
	total := 0
	for {
		if err := ctx.tick(); err != nil {
			h.right.Close()
			return err
		}
		row, err := h.right.Next()
		if err != nil {
			h.right.Close()
			return err
		}
		if row == nil {
			break
		}
		total++
		if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
			h.right.Close()
			return fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
		key, hashable, err := h.appendKey(h.keyScratch[:0], row, h.rightKey)
		h.keyScratch = key
		if err != nil {
			h.right.Close()
			return err
		}
		br := buildRow{row: row}
		if hashable {
			br.key = append([]byte(nil), key...)
		}
		rows = append(rows, br)
		h.acct.grow(rowBytes(row) + int64(len(br.key)) + buildRowFixedBytes)
		if h.acct.spillable() && h.acct.over() && len(rows) >= minBufferRows {
			return h.openGrace(rows, total)
		}
	}
	h.right.Close()
	h.buildRows = rows
	h.table = make(map[uint64][]int32, len(rows))
	if ctx.owner != nil {
		ctx.owner.BuildRows = int64(len(rows))
	}
	for i := range rows {
		if rows[i].key != nil {
			sum := maphash.Bytes(joinHashSeed, rows[i].key)
			h.table[sum] = append(h.table[sum], int32(i))
		}
	}
	return h.left.Open(ctx)
}

// appendKey encodes the hash key for a row into dst using the given side's
// compiled key expressions. hashable=false means the row contains a NULL in a
// strict-equality key and can never match.
func (h *hashJoinIter) appendKey(dst []byte, row value.Row, side []compiledExpr) ([]byte, bool, error) {
	for i, ce := range side {
		v, err := ce(row, h.ctx)
		if err != nil {
			return dst, false, err
		}
		if v.IsNull() && !h.nullEq[i] {
			return dst, false, nil
		}
		dst = value.AppendFramedKey(dst, v)
	}
	return dst, true, nil
}

// combineScratch copies l⧺r into the reusable scratch row pointed to by
// scratch and returns it. The caller must either drop the returned row or
// take ownership by setting *scratch = nil before handing it out.
func combineScratch(scratch *value.Row, l, r value.Row) value.Row {
	n := len(l) + len(r)
	if cap(*scratch) < n {
		*scratch = make(value.Row, 0, n)
	}
	c := (*scratch)[:0]
	c = append(c, l...)
	c = append(c, r...)
	*scratch = c
	return c
}

func (h *hashJoinIter) Next() (value.Row, error) {
	if h.merger != nil {
		// Grace path: the join already ran partition by partition; the merger
		// replays the outputs in exact serial emission order.
		return h.merger.Next()
	}
	nRight := len(h.op.Right.Schema())
	nLeft := len(h.op.Left.Schema())
	for {
		// Poll for cancellation: a probe stream that never matches loops here
		// without emitting rows, invisible to the materialization polls.
		if err := h.ctx.tick(); err != nil {
			return nil, err
		}
		if h.done {
			return nil, nil
		}
		if h.inTail {
			// FULL/RIGHT JOIN: emit unmatched build-side rows null-padded.
			for h.tailIdx < len(h.buildRows) {
				br := &h.buildRows[h.tailIdx]
				h.tailIdx++
				if !br.matched {
					return value.Concat(value.NullRow(nLeft), br.row), nil
				}
			}
			h.done = true
			return nil, nil
		}
		if h.curProbe == nil {
			probe, err := h.left.Next()
			if err != nil {
				return nil, err
			}
			if probe == nil {
				if h.op.Kind == algebra.JoinFull || h.op.Kind == algebra.JoinRight {
					h.inTail = true
					continue
				}
				h.done = true
				return nil, nil
			}
			h.curProbe = probe
			h.curIdx = 0
			h.curMatched = false
			key, hashable, err := h.appendKey(h.keyScratch[:0], probe, h.leftKey)
			h.keyScratch = key
			if err != nil {
				return nil, err
			}
			h.curMatches = h.curMatches[:0]
			if hashable {
				sum := maphash.Bytes(joinHashSeed, key)
				for _, bi := range h.table[sum] {
					if bytes.Equal(h.buildRows[bi].key, key) {
						h.curMatches = append(h.curMatches, bi)
					}
				}
			}
		}
		// Scan candidate matches.
		for h.curIdx < len(h.curMatches) {
			br := &h.buildRows[h.curMatches[h.curIdx]]
			h.curIdx++
			ok := true
			var combined value.Row
			if h.cond != nil {
				combined = combineScratch(&h.comb, h.curProbe, br.row)
				var err error
				ok, err = h.cond(combined, h.ctx)
				if err != nil {
					return nil, err
				}
			}
			if !ok {
				continue
			}
			h.curMatched = true
			br.matched = true
			switch h.op.Kind {
			case algebra.JoinSemi:
				// Emit probe once, skip the rest.
				probe := h.curProbe
				h.curProbe = nil
				return probe, nil
			case algebra.JoinAnti:
				// A match disqualifies the probe row.
				h.curProbe = nil
				goto nextProbe
			default:
				if combined == nil {
					return value.Concat(h.curProbe, br.row), nil
				}
				h.comb = nil // transfer scratch ownership to the caller
				return combined, nil
			}
		}
		// Probe exhausted its matches.
		{
			probe := h.curProbe
			matched := h.curMatched
			h.curProbe = nil
			switch h.op.Kind {
			case algebra.JoinLeft, algebra.JoinFull:
				if !matched {
					return value.Concat(probe, value.NullRow(nRight)), nil
				}
			case algebra.JoinAnti:
				if !matched {
					return probe, nil
				}
			}
		}
	nextProbe:
	}
}

// release drops the build table, merger, spill files and accounted bytes.
func (h *hashJoinIter) release() {
	h.table = nil
	h.buildRows = nil
	h.merger.Close()
	h.merger = nil
	h.reg.closeAll()
	h.acct.releaseAll()
}

func (h *hashJoinIter) Close() error {
	h.release()
	return h.left.Close()
}

// --- nested-loop join ---------------------------------------------------------------

type nlJoinIter struct {
	op    *algebra.Join
	left  iterator
	right iterator
	ctx   *Context
	cond  compiledPred

	rightRows []buildRow
	// Spill state: once the materialized right side crosses work_mem, every
	// further row appends to one spill file in insertion order and probes
	// stream the file after scanning the resident prefix — emission order is
	// identical to the fully resident loop. spillMatched mirrors
	// buildRow.matched for spilled rows, indexed by file ordinal.
	acct         memAcct
	reg          fileReg
	spillFile    *spill.File
	spillMatched []bool

	comb       value.Row
	curProbe   value.Row
	curIdx     int
	curMatch   bool
	inFile     bool
	fileOrd    int
	inTail     bool
	tailIdx    int
	tailInFile bool
	done       bool
}

func (n *nlJoinIter) Open(ctx *Context) error {
	n.release()
	n.ctx = ctx
	n.done, n.inTail, n.inFile, n.tailInFile = false, false, false, false
	n.tailIdx, n.fileOrd = 0, 0
	n.curProbe = nil
	n.acct.ctx = ctx
	if n.cond == nil && n.op.Cond != nil {
		n.cond = compilePred(n.op.Cond)
	}
	if err := n.right.Open(ctx); err != nil {
		return err
	}
	var rec []byte
	total := 0
	for {
		if err := ctx.tick(); err != nil {
			n.right.Close()
			return err
		}
		row, err := n.right.Next()
		if err != nil {
			n.right.Close()
			return err
		}
		if row == nil {
			break
		}
		total++
		if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
			n.right.Close()
			return fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
		if n.spillFile == nil && n.acct.spillable() && n.acct.over() && len(n.rightRows) >= minBufferRows {
			f, err := ctx.Mem.Pool().Create()
			if err != nil {
				n.right.Close()
				return err
			}
			n.reg.add(f)
			n.spillFile = f
		}
		if n.spillFile != nil {
			rec = spill.AppendRow(rec[:0], row)
			if err := n.spillFile.Append(rec); err != nil {
				n.right.Close()
				return err
			}
			n.spillMatched = append(n.spillMatched, false)
			n.acct.grow(1) // the matched flag stays resident per spilled row
		} else {
			n.rightRows = append(n.rightRows, buildRow{row: row})
			n.acct.grow(rowBytes(row) + buildRowFixedBytes)
		}
	}
	n.right.Close()
	if ctx.owner != nil {
		ctx.owner.BuildRows = int64(total)
	}
	return n.left.Open(ctx)
}

func (n *nlJoinIter) Next() (value.Row, error) {
	nLeft := len(n.op.Left.Schema())
	nRight := len(n.op.Right.Schema())
	for {
		if err := n.ctx.tick(); err != nil {
			return nil, err
		}
		if n.done {
			return nil, nil
		}
		if n.inTail {
			for n.tailIdx < len(n.rightRows) {
				br := &n.rightRows[n.tailIdx]
				n.tailIdx++
				if !br.matched {
					return value.Concat(value.NullRow(nLeft), br.row), nil
				}
			}
			if n.spillFile != nil {
				if !n.tailInFile {
					if err := n.spillFile.StartRead(); err != nil {
						return nil, err
					}
					n.tailInFile = true
					n.fileOrd = 0
				}
				for {
					if err := n.ctx.tick(); err != nil {
						return nil, err
					}
					rec, err := n.spillFile.Next()
					if err != nil {
						return nil, err
					}
					if rec == nil {
						break
					}
					ord := n.fileOrd
					n.fileOrd++
					if n.spillMatched[ord] {
						continue
					}
					row, _, err := spill.DecodeRow(rec)
					if err != nil {
						return nil, err
					}
					return value.Concat(value.NullRow(nLeft), row), nil
				}
			}
			n.done = true
			return nil, nil
		}
		if n.curProbe == nil {
			probe, err := n.left.Next()
			if err != nil {
				return nil, err
			}
			if probe == nil {
				if n.op.Kind == algebra.JoinFull || n.op.Kind == algebra.JoinRight {
					n.inTail = true
					continue
				}
				n.done = true
				return nil, nil
			}
			n.curProbe = probe
			n.curIdx = 0
			n.inFile = false
			n.curMatch = false
		}
		if !n.inFile {
			for n.curIdx < len(n.rightRows) {
				// Per-candidate poll: one probe row can scan the whole right side
				// without a match, so the outer-loop poll alone is not enough.
				if err := n.ctx.tick(); err != nil {
					return nil, err
				}
				br := &n.rightRows[n.curIdx]
				n.curIdx++
				ok := true
				var combined value.Row
				if n.cond != nil {
					combined = combineScratch(&n.comb, n.curProbe, br.row)
					var err error
					ok, err = n.cond(combined, n.ctx)
					if err != nil {
						return nil, err
					}
				}
				if !ok {
					continue
				}
				n.curMatch = true
				br.matched = true
				switch n.op.Kind {
				case algebra.JoinSemi:
					probe := n.curProbe
					n.curProbe = nil
					return probe, nil
				case algebra.JoinAnti:
					n.curProbe = nil
					goto nextProbe
				default:
					if combined == nil {
						return value.Concat(n.curProbe, br.row), nil
					}
					n.comb = nil // transfer scratch ownership to the caller
					return combined, nil
				}
			}
			if n.spillFile != nil {
				// Resident prefix exhausted: stream the spilled suffix in
				// insertion order (the file position carries across emitted
				// rows; only a new probe rewinds it).
				if err := n.spillFile.StartRead(); err != nil {
					return nil, err
				}
				n.inFile = true
				n.fileOrd = 0
			}
		}
		if n.inFile {
			for {
				if err := n.ctx.tick(); err != nil {
					return nil, err
				}
				rec, err := n.spillFile.Next()
				if err != nil {
					return nil, err
				}
				if rec == nil {
					break
				}
				ord := n.fileOrd
				n.fileOrd++
				row, _, err := spill.DecodeRow(rec)
				if err != nil {
					return nil, err
				}
				ok := true
				var combined value.Row
				if n.cond != nil {
					combined = combineScratch(&n.comb, n.curProbe, row)
					ok, err = n.cond(combined, n.ctx)
					if err != nil {
						return nil, err
					}
				}
				if !ok {
					continue
				}
				n.curMatch = true
				n.spillMatched[ord] = true
				switch n.op.Kind {
				case algebra.JoinSemi:
					probe := n.curProbe
					n.curProbe = nil
					return probe, nil
				case algebra.JoinAnti:
					n.curProbe = nil
					goto nextProbe
				default:
					if combined == nil {
						return value.Concat(n.curProbe, row), nil
					}
					n.comb = nil // transfer scratch ownership to the caller
					return combined, nil
				}
			}
		}
		{
			probe := n.curProbe
			matched := n.curMatch
			n.curProbe = nil
			switch n.op.Kind {
			case algebra.JoinLeft, algebra.JoinFull:
				if !matched {
					return value.Concat(probe, value.NullRow(nRight)), nil
				}
			case algebra.JoinAnti:
				if !matched {
					return probe, nil
				}
			}
		}
	nextProbe:
	}
}

// release drops the materialized right side, spill file and accounted bytes.
func (n *nlJoinIter) release() {
	n.rightRows = nil
	n.spillMatched = nil
	n.spillFile = nil
	n.reg.closeAll()
	n.acct.releaseAll()
}

func (n *nlJoinIter) Close() error {
	n.release()
	return n.left.Close()
}

// --- lateral join ---------------------------------------------------------------------

// lateralJoinIter re-executes the right side for every left row with the left
// row pushed as the correlation context. The provenance rewriter uses this to
// implement the EDBT '09 de-correlation of nested subqueries. The right-side
// iterator tree is built (and its expressions compiled) once; each probe row
// only re-Opens it, so the compile-once property survives per-row
// re-execution.
type lateralJoinIter struct {
	op    *algebra.Join
	left  iterator
	right iterator
	ctx   *Context
	cond  compiledPred
	stats *OpStats

	curProbe value.Row
	curRows  []value.Row
	curIdx   int
	curMatch bool
}

func (l *lateralJoinIter) Open(ctx *Context) error {
	l.ctx = ctx
	l.curProbe = nil
	if l.cond == nil && l.op.Cond != nil {
		l.cond = compilePred(l.op.Cond)
	}
	var err error
	if l.right == nil {
		l.right, err = buildInto(l.op.Right, l.stats)
		if err != nil {
			return err
		}
	}
	if l.left == nil {
		l.left, err = buildInto(l.op.Left, l.stats)
		if err != nil {
			return err
		}
	}
	return l.left.Open(ctx)
}

func (l *lateralJoinIter) Next() (value.Row, error) {
	nRight := len(l.op.Right.Schema())
	for {
		if err := l.ctx.tick(); err != nil {
			return nil, err
		}
		if l.curProbe == nil {
			probe, err := l.left.Next()
			if err != nil {
				return nil, err
			}
			if probe == nil {
				return nil, nil
			}
			l.curProbe = probe
			l.curIdx = 0
			l.curMatch = false
			// Re-open the prebuilt right side under this probe row.
			l.ctx.pushOuter(probe)
			rows, err := reopenAndDrain(l.right, l.ctx)
			l.ctx.popOuter()
			if err != nil {
				return nil, err
			}
			l.curRows = rows
		}
		for l.curIdx < len(l.curRows) {
			rrow := l.curRows[l.curIdx]
			l.curIdx++
			combined := value.Concat(l.curProbe, rrow)
			ok := true
			if l.cond != nil {
				var err error
				ok, err = l.cond(combined, l.ctx)
				if err != nil {
					return nil, err
				}
			}
			if !ok {
				continue
			}
			l.curMatch = true
			return combined, nil
		}
		probe := l.curProbe
		matched := l.curMatch
		l.curProbe = nil
		if l.op.Kind == algebra.JoinLeft && !matched {
			return value.Concat(probe, value.NullRow(nRight)), nil
		}
	}
}

func (l *lateralJoinIter) Close() error {
	if l.left != nil {
		return l.left.Close()
	}
	return nil
}
