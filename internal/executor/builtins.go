package executor

import (
	"fmt"
	"math"
	"strings"

	"perm/internal/value"
)

// builtinFn evaluates one scalar function over already-evaluated arguments.
type builtinFn func(args []value.Value) (value.Value, error)

// builtin is one registry entry. tolerant functions see NULL arguments
// (COALESCE-style NULL rules); strict functions propagate NULL before the
// body runs.
type builtin struct {
	fn       builtinFn
	tolerant bool
}

// lookupBuiltin resolves a scalar function by (lower-case) name. Both the
// tree-walking Eval and the compiled-expression path dispatch through this
// registry, so function semantics live in exactly one place.
func lookupBuiltin(name string) (builtin, bool) {
	b, ok := builtins[name]
	return b, ok
}

var builtins = map[string]builtin{
	"coalesce": {tolerant: true, fn: func(args []value.Value) (value.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	}},
	"nullif": {tolerant: true, fn: func(args []value.Value) (value.Value, error) {
		if !args[0].IsNull() && !args[1].IsNull() && value.Equal(args[0], args[1]) {
			return value.Null, nil
		}
		return args[0], nil
	}},
	"concat": {tolerant: true, fn: func(args []value.Value) (value.Value, error) {
		var b strings.Builder
		for _, a := range args {
			if !a.IsNull() {
				b.WriteString(a.String())
			}
		}
		return value.NewString(b.String()), nil
	}},
	"greatest": {tolerant: true, fn: bestOf(1)},
	"least":    {tolerant: true, fn: bestOf(-1)},
	"upper": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewString(strings.ToUpper(args[0].String())), nil
	}},
	"lower": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewString(strings.ToLower(args[0].String())), nil
	}},
	"length": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewInt(int64(len([]rune(args[0].String())))), nil
	}},
	"abs": {fn: func(args []value.Value) (value.Value, error) {
		switch args[0].K {
		case value.KindInt:
			n := args[0].I
			if n < 0 {
				n = -n
			}
			return value.NewInt(n), nil
		default:
			return value.NewFloat(math.Abs(args[0].Float())), nil
		}
	}},
	"substr":    {fn: substrFn},
	"substring": {fn: substrFn},
	"trim": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewString(strings.TrimSpace(args[0].String())), nil
	}},
	"ltrim": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewString(strings.TrimLeft(args[0].String(), " \t\n")), nil
	}},
	"rtrim": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewString(strings.TrimRight(args[0].String(), " \t\n")), nil
	}},
	"replace": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewString(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	}},
	"round": {fn: func(args []value.Value) (value.Value, error) {
		f := args[0].Float()
		digits := 0
		if len(args) == 2 {
			digits = int(args[1].Int())
		}
		scale := math.Pow(10, float64(digits))
		return value.NewFloat(math.Round(f*scale) / scale), nil
	}},
	"floor": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewFloat(math.Floor(args[0].Float())), nil
	}},
	"ceil":    {fn: ceilFn},
	"ceiling": {fn: ceilFn},
	"sqrt": {fn: func(args []value.Value) (value.Value, error) {
		f := args[0].Float()
		if f < 0 {
			return value.Null, fmt.Errorf("sqrt of negative number")
		}
		return value.NewFloat(math.Sqrt(f)), nil
	}},
	"power": {fn: func(args []value.Value) (value.Value, error) {
		return value.NewFloat(math.Pow(args[0].Float(), args[1].Float())), nil
	}},
	"mod": {fn: func(args []value.Value) (value.Value, error) {
		return value.Mod(args[0], args[1])
	}},
	"strpos": {fn: func(args []value.Value) (value.Value, error) {
		idx := strings.Index(args[0].String(), args[1].String())
		return value.NewInt(int64(idx + 1)), nil
	}},
}

// bestOf builds GREATEST (dir=1) / LEAST (dir=-1), skipping NULLs.
func bestOf(dir int) builtinFn {
	return func(args []value.Value) (value.Value, error) {
		best := value.Null
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			if best.IsNull() {
				best = a
				continue
			}
			c, err := value.Compare(a, best)
			if err != nil {
				return value.Null, err
			}
			if c*dir > 0 {
				best = a
			}
		}
		return best, nil
	}
}

func substrFn(args []value.Value) (value.Value, error) {
	s := []rune(args[0].String())
	start64, err := value.Coerce(args[1], value.KindInt)
	if err != nil {
		return value.Null, err
	}
	start := int(start64.I) - 1 // SQL is 1-based
	if start < 0 {
		start = 0
	}
	end := len(s)
	if len(args) == 3 {
		ln64, err := value.Coerce(args[2], value.KindInt)
		if err != nil {
			return value.Null, err
		}
		end = start + int(ln64.I)
	}
	if start > len(s) {
		start = len(s)
	}
	if end > len(s) {
		end = len(s)
	}
	if end < start {
		end = start
	}
	return value.NewString(string(s[start:end])), nil
}

func ceilFn(args []value.Value) (value.Value, error) {
	return value.NewFloat(math.Ceil(args[0].Float())), nil
}
