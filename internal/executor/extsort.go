package executor

import (
	"container/heap"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/value"
)

// External merge sort: when the sort buffer crosses the session budget, the
// buffered rows are stable-sorted and written out as one sorted run (records
// carry the precomputed key row, so the merge never re-evaluates key
// expressions), and the k-way merge replays the runs on Next.
//
// Stability contract: the in-memory path is sort.SliceStable over input
// order, and the external path must match it byte for byte. Runs are
// contiguous input ranges created in input order, each internally stable, so
// the merge breaks key ties by run index — rows with equal keys surface in
// input order across run boundaries. TestSpillSortStability pins this.

// runRecord encodes one sort record: the key row, then the payload row.
func runRecord(dst []byte, keys, row value.Row) []byte {
	dst = spill.AppendRow(dst, keys)
	return spill.AppendRow(dst, row)
}

// decodeRunRecord reverses runRecord.
func decodeRunRecord(rec []byte) (keys, row value.Row, err error) {
	keys, rest, err := spill.DecodeRow(rec)
	if err != nil {
		return nil, nil, err
	}
	row, _, err = spill.DecodeRow(rest)
	return keys, row, err
}

// sortKeyCompare compares two key rows under the ORDER BY direction flags,
// returning -1/0/+1.
func sortKeyCompare(sortKeys []algebra.SortKey, a, b value.Row) int {
	for k := range sortKeys {
		c := value.CompareTotal(a[k], b[k])
		if c == 0 {
			continue
		}
		if sortKeys[k].Desc {
			return -c
		}
		return c
	}
	return 0
}

// runCursor is one sorted run primed with its next record.
type runCursor struct {
	f    *spill.File
	idx  int // run creation index: the tie-break that preserves stability
	keys value.Row
	row  value.Row
}

func (c *runCursor) advance() (done bool, err error) {
	rec, err := c.f.Next()
	if err != nil {
		return false, err
	}
	if rec == nil {
		return true, c.f.Close()
	}
	c.keys, c.row, err = decodeRunRecord(rec)
	return false, err
}

// runHeap orders run cursors by (sort keys, run index).
type runHeap struct {
	sortKeys []algebra.SortKey
	cs       []*runCursor
}

func (h *runHeap) Len() int { return len(h.cs) }
func (h *runHeap) Less(i, j int) bool {
	if c := sortKeyCompare(h.sortKeys, h.cs[i].keys, h.cs[j].keys); c != 0 {
		return c < 0
	}
	return h.cs[i].idx < h.cs[j].idx
}
func (h *runHeap) Swap(i, j int) { h.cs[i], h.cs[j] = h.cs[j], h.cs[i] }
func (h *runHeap) Push(x any)    { h.cs = append(h.cs, x.(*runCursor)) }
func (h *runHeap) Pop() any {
	old := h.cs
	n := len(old)
	x := old[n-1]
	h.cs = old[:n-1]
	return x
}

// runMerger streams the k-way merge of sorted runs.
type runMerger struct {
	h runHeap
}

func (m *runMerger) remaining() int { return m.h.Len() }

func (m *runMerger) minRecord(dst []byte) []byte {
	c := m.h.cs[0]
	return runRecord(dst, c.keys, c.row)
}

// newRunMerger merges runs (in creation order). Sets past mergeFanIn are
// first reduced in passes (reduceToFanIn): adjacent runs merge into one
// replacement run that keeps their position, so the run-index tie-break
// stays equivalent to input order across passes.
func newRunMerger(ctx *Context, reg *fileReg, sortKeys []algebra.SortKey, runs []*spill.File) (*runMerger, error) {
	runs, err := reduceToFanIn(ctx.Mem.Pool(), reg, runs,
		func(fs []*spill.File) (mergeStream, error) { return openRunHeap(sortKeys, fs) }, ctx.tick)
	if err != nil {
		return nil, err
	}
	return openRunHeap(sortKeys, runs)
}

func openRunHeap(sortKeys []algebra.SortKey, runs []*spill.File) (*runMerger, error) {
	m := &runMerger{h: runHeap{sortKeys: sortKeys, cs: make([]*runCursor, 0, len(runs))}}
	for i, f := range runs {
		if err := f.StartRead(); err != nil {
			return nil, err
		}
		c := &runCursor{f: f, idx: i}
		done, err := c.advance()
		if err != nil {
			return nil, err
		}
		if !done {
			m.h.cs = append(m.h.cs, c)
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *runMerger) step() error {
	c := m.h.cs[0]
	done, err := c.advance()
	if err != nil {
		return err
	}
	if done {
		heap.Pop(&m.h)
	} else {
		heap.Fix(&m.h, 0)
	}
	return nil
}

// Next returns the next row in sort order, (nil, nil) at end.
func (m *runMerger) Next() (value.Row, error) {
	if m == nil || m.h.Len() == 0 {
		return nil, nil
	}
	row := m.h.cs[0].row
	if err := m.step(); err != nil {
		return nil, err
	}
	return row, nil
}

// Close releases the runs still held.
func (m *runMerger) Close() {
	if m == nil {
		return
	}
	for _, c := range m.h.cs {
		c.f.Close()
	}
	m.h.cs = nil
}
