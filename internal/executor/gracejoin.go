package executor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/maphash"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/value"
)

// This file is the spill path of the hash join: grace hash partitioning for
// build sides that exceed work_mem. Both inputs route to paired disk
// partitions by join-key hash, each partition pair joins independently (one
// level deeper when its build half is itself over budget), and the
// sequence-tagged outputs merge back into the exact order the in-memory
// probe loop would have produced:
//
//   - every output row is tagged probeSeq<<joinSeqShift|chunk, so the k-way
//     merge replays probes in input order with matches in build-insertion
//     order (chunks load in build order), exactly like the in-memory path;
//   - FULL/RIGHT tail rows are tagged (nProbe+buildOrdinal)<<joinSeqShift,
//     sorting the unmatched build rows after every probe output in
//     build-insertion order, again exactly like the in-memory tail.
//
// A partition whose build half is over budget re-partitions one level deeper
// while that can separate keys; a partition dominated by one hot key (which
// no amount of rehashing can split) instead joins in chunks: load a
// budget-sized slice of the build half, stream the whole probe file against
// it, repeat — the classic block hash join fallback, with a probe-matched
// bitmap carrying LEFT/FULL/ANTI/SEMI semantics across chunks.
//
// Rows whose strict-equality key evaluates to NULL can never match; they
// route by their empty key (one fixed partition per level) purely so
// LEFT/ANTI probes still emit and FULL/RIGHT build rows still reach the tail.

// joinSeqShift widens the output sequence space so every (probe row, build
// chunk) pair gets a unique tag: chunk joins of the same probe row land in
// different files, and the merger's heap only orders distinct sequences.
// 20 bits allow ~1M chunks per partition (each at least minBufferRows rows)
// before tags saturate at joinChunkMask and ties become possible.
const joinSeqShift = 20
const joinChunkMask = (1 << joinSeqShift) - 1

// appendJoinRec encodes one partitioned join input record: the row's ordinal
// on its side (build ordinal or probe sequence), whether it is hashable, its
// framed key, then the exact row.
func appendJoinRec(dst []byte, ord uint64, hashable bool, key []byte, row value.Row) []byte {
	dst = binary.AppendUvarint(dst, ord)
	if hashable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return spill.AppendRow(dst, row)
}

// decodeJoinRec reverses appendJoinRec. The returned key aliases rec and is
// only valid until the next file read.
func decodeJoinRec(rec []byte) (ord uint64, hashable bool, key []byte, row value.Row, err error) {
	ord, n := binary.Uvarint(rec)
	if n <= 0 || len(rec) < n+1 {
		return 0, false, nil, nil, fmt.Errorf("executor: corrupt join spill record (ordinal)")
	}
	hashable = rec[n] != 0
	rec = rec[n+1:]
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return 0, false, nil, nil, fmt.Errorf("executor: corrupt join spill record (key)")
	}
	key = rec[n : n+int(klen)]
	row, _, err = spill.DecodeRow(rec[n+int(klen):])
	return ord, hashable, key, row, err
}

// openGrace finishes the join on disk after the build side crossed the
// budget: buffered is the accounted in-memory prefix (with keys already
// computed), total the build rows drained so far. It consumes the rest of the
// right input and the whole left input, then joins partition pairs and arms
// the merger.
func (h *hashJoinIter) openGrace(buffered []buildRow, total int) error {
	ctx := h.ctx
	pool := ctx.Mem.Pool()
	buildParts := newPartitionSet(pool, &h.reg, 0)
	probeParts := newPartitionSet(pool, &h.reg, 0)

	var rec []byte
	nBuild := uint64(0)
	for i := range buffered {
		br := &buffered[i]
		rec = appendJoinRec(rec[:0], nBuild, br.key != nil, br.key, br.row)
		if err := buildParts.route(br.key, rec); err != nil {
			h.right.Close()
			return err
		}
		nBuild++
	}
	h.acct.releaseAll()
	// Route the rest of the build input straight to disk.
	for {
		if err := ctx.tick(); err != nil {
			h.right.Close()
			return err
		}
		row, err := h.right.Next()
		if err != nil {
			h.right.Close()
			return err
		}
		if row == nil {
			break
		}
		total++
		if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
			h.right.Close()
			return fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
		key, hashable, err := h.appendKey(h.keyScratch[:0], row, h.rightKey)
		h.keyScratch = key
		if err != nil {
			h.right.Close()
			return err
		}
		if !hashable {
			key = nil
		}
		rec = appendJoinRec(rec[:0], nBuild, hashable, key, row)
		if err := buildParts.route(key, rec); err != nil {
			h.right.Close()
			return err
		}
		nBuild++
	}
	h.right.Close()
	if ctx.owner != nil {
		ctx.owner.BuildRows = int64(nBuild)
	}

	// Route the probe input the same way, tagging each row with its sequence.
	if err := h.left.Open(ctx); err != nil {
		return err
	}
	nProbe := uint64(0)
	for {
		if err := ctx.tick(); err != nil {
			return err
		}
		row, err := h.left.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key, hashable, err := h.appendKey(h.keyScratch[:0], row, h.leftKey)
		h.keyScratch = key
		if err != nil {
			return err
		}
		if !hashable {
			key = nil
		}
		rec = appendJoinRec(rec[:0], nProbe, hashable, key, row)
		if err := probeParts.route(key, rec); err != nil {
			return err
		}
		nProbe++
	}

	var outputs []*spill.File
	for i := 0; i < spillPartitions; i++ {
		if err := h.joinPartition(buildParts.files[i], probeParts.files[i], 1, nProbe, &outputs); err != nil {
			return err
		}
	}
	m, err := newSeqMerger(ctx, &h.reg, outputs)
	if err != nil {
		return err
	}
	h.merger = m
	return nil
}

// rerouteJoinFile re-reads a partition file and redistributes every record
// one level deeper (the per-level hash salt sends what this level hashed
// together to different sub-partitions).
func rerouteJoinFile(f *spill.File, ps *partitionSet, tick func() error) error {
	if f == nil {
		return nil
	}
	if err := f.StartRead(); err != nil {
		return err
	}
	for {
		if err := tick(); err != nil {
			return err
		}
		rec, err := f.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			return f.Close()
		}
		_, hashable, key, _, err := decodeJoinRec(rec)
		if err != nil {
			return err
		}
		if !hashable {
			key = nil
		}
		if err := ps.route(key, rec); err != nil {
			return err
		}
	}
}

// joinPartition joins one build/probe partition pair. The build half loads
// into memory in budget-sized chunks: a single-chunk partition joins exactly
// like the in-memory path; one that is over budget either re-partitions a
// level deeper (when its first chunk shows more than one key, so rehashing
// can separate them) or block-joins chunk by chunk against repeated probe
// scans. Outputs are sequence-tagged files appended to outputs.
func (h *hashJoinIter) joinPartition(bf, pf *spill.File, level int, tailBase uint64, outputs *[]*spill.File) error {
	if bf == nil && pf == nil {
		return nil
	}
	ctx := h.ctx
	kind := h.op.Kind
	wantTail := kind == algebra.JoinFull || kind == algebra.JoinRight
	probeAlone := kind == algebra.JoinLeft || kind == algebra.JoinFull || kind == algebra.JoinAnti
	if bf == nil && !wantTail && !probeAlone {
		// No build rows and the join kind emits nothing for unmatched probes.
		pf.Close()
		return nil
	}

	acct := memAcct{ctx: ctx}
	defer acct.releaseAll()

	// Chunked build-half reader. pending holds one looked-ahead record (the
	// peek that discovers whether a full chunk was the final one).
	var pending []byte
	var brs []buildRow
	var ords []uint64
	multiKey := false
	loadChunk := func() (last bool, err error) {
		brs, ords = brs[:0], ords[:0]
		acct.releaseAll()
		if bf == nil {
			return true, nil
		}
		for {
			if err := ctx.tick(); err != nil {
				return false, err
			}
			rec := pending
			pending = nil
			if rec == nil {
				if rec, err = bf.Next(); err != nil {
					return false, err
				}
				if rec == nil {
					return true, nil
				}
			}
			ord, hashable, key, row, err := decodeJoinRec(rec)
			if err != nil {
				return false, err
			}
			br := buildRow{row: row}
			if hashable {
				br.key = append([]byte(nil), key...)
			}
			if len(brs) > 0 && !multiKey && !bytes.Equal(br.key, brs[0].key) {
				multiKey = true
			}
			brs = append(brs, br)
			ords = append(ords, ord)
			acct.grow(rowBytes(row) + int64(len(br.key)) + buildRowFixedBytes)
			if acct.spillable() && acct.over() && len(brs) >= minBufferRows {
				// Chunk full; peek whether the file has more.
				nxt, err := bf.Next()
				if err != nil {
					return false, err
				}
				if nxt == nil {
					return true, nil
				}
				pending = append([]byte(nil), nxt...)
				return false, nil
			}
		}
	}
	if bf != nil {
		if err := bf.StartRead(); err != nil {
			return err
		}
	}
	last, err := loadChunk()
	if err != nil {
		return err
	}
	if !last && multiKey && level < maxSpillLevel {
		// Over budget with separable keys: re-partition both halves a level
		// deeper (rerouteJoinFile rewinds bf, discarding the partial chunk)
		// and recurse per sub-pair.
		brs, ords, pending = nil, nil, nil
		acct.releaseAll()
		pool := ctx.Mem.Pool()
		subBuild := newPartitionSet(pool, &h.reg, level)
		subProbe := newPartitionSet(pool, &h.reg, level)
		if err := rerouteJoinFile(bf, subBuild, ctx.tick); err != nil {
			return err
		}
		if err := rerouteJoinFile(pf, subProbe, ctx.tick); err != nil {
			return err
		}
		for i := 0; i < spillPartitions; i++ {
			if err := h.joinPartition(subBuild.files[i], subProbe.files[i], level+1, tailBase, outputs); err != nil {
				return err
			}
		}
		return nil
	}

	var out *spill.File
	var outRec []byte
	emit := func(seq uint64, row value.Row) error {
		if out == nil {
			f, err := ctx.Mem.Pool().Create()
			if err != nil {
				return err
			}
			h.reg.add(f)
			*outputs = append(*outputs, f)
			out = f
		}
		outRec = appendSeqRow(outRec[:0], seq, row)
		return out.Append(outRec)
	}

	// seen is the cross-chunk probe-matched bitmap, indexed by the probe
	// row's position in this partition's file (identical on every scan).
	// Only a multi-chunk partition allocates it. Its words are charged to
	// bmAcct, which lives for the whole partition.
	bmAcct := memAcct{ctx: ctx}
	defer bmAcct.releaseAll()
	var seen []uint64
	setSeen := func(p uint64) {
		w := p >> 6
		for uint64(len(seen)) <= w {
			seen = append(seen, 0)
			bmAcct.grow(8)
		}
		seen[w] |= 1 << (p & 63)
	}
	getSeen := func(p uint64) bool {
		w := p >> 6
		return w < uint64(len(seen)) && seen[w]&(1<<(p&63)) != 0
	}

	nLeft := len(h.op.Left.Schema())
	nRight := len(h.op.Right.Schema())
	var comb value.Row
	chunk := uint64(0)
	for {
		// One output file per chunk: within a chunk, emission follows the
		// probe scan (ascending seq) then the tail (ascending past-the-probes
		// tags), so each file is ascending — the merger's invariant. A shared
		// file would interleave chunk rounds and break it.
		out = nil
		multiChunk := chunk > 0 || !last
		// Chunk tags saturate at joinChunkMask: beyond ~1M chunks per
		// partition ordering among a probe's own matches could degrade, but
		// each chunk holds at least minBufferRows rows so that is unreachable
		// for any input the row budget admits.
		chunkTag := chunk
		if chunkTag > joinChunkMask {
			chunkTag = joinChunkMask
		}
		table := make(map[uint64][]int32, len(brs))
		for i := range brs {
			if brs[i].key != nil {
				sum := maphash.Bytes(joinHashSeed, brs[i].key)
				table[sum] = append(table[sum], int32(i))
			}
		}
		if pf != nil {
			if err := pf.StartRead(); err != nil {
				return err
			}
			var pos uint64
			for {
				if err := ctx.tick(); err != nil {
					return err
				}
				rec, err := pf.Next()
				if err != nil {
					return err
				}
				if rec == nil {
					break
				}
				pos++
				seq, hashable, key, probe, err := decodeJoinRec(rec)
				if err != nil {
					return err
				}
				if (kind == algebra.JoinSemi || kind == algebra.JoinAnti) && multiChunk && getSeen(pos-1) {
					continue // match already resolved in an earlier chunk
				}
				matched := false
				if hashable {
					sum := maphash.Bytes(joinHashSeed, key)
				matchLoop:
					for _, bi := range table[sum] {
						br := &brs[bi]
						if !bytes.Equal(br.key, key) {
							continue
						}
						ok := true
						var combined value.Row
						if h.cond != nil {
							combined = combineScratch(&comb, probe, br.row)
							ok, err = h.cond(combined, ctx)
							if err != nil {
								return err
							}
						}
						if !ok {
							continue
						}
						matched = true
						br.matched = true
						switch kind {
						case algebra.JoinSemi:
							if err := emit(seq<<joinSeqShift|chunkTag, probe); err != nil {
								return err
							}
							break matchLoop
						case algebra.JoinAnti:
							break matchLoop
						default:
							if combined == nil {
								combined = combineScratch(&comb, probe, br.row)
							}
							if err := emit(seq<<joinSeqShift|chunkTag, combined); err != nil {
								return err
							}
						}
					}
				}
				if matched && multiChunk {
					setSeen(pos - 1)
				}
				if !matched && last && probeAlone && !(multiChunk && getSeen(pos-1)) {
					// Unmatched across every chunk: LEFT/FULL null-pad, ANTI
					// passes the probe through.
					var row value.Row
					if kind == algebra.JoinAnti {
						row = probe
					} else {
						row = value.Concat(probe, value.NullRow(nRight))
					}
					if err := emit(seq<<joinSeqShift|chunkTag, row); err != nil {
						return err
					}
				}
			}
		}
		if wantTail {
			for i := range brs {
				if !brs[i].matched {
					if err := emit((tailBase+ords[i])<<joinSeqShift, value.Concat(value.NullRow(nLeft), brs[i].row)); err != nil {
						return err
					}
				}
			}
		}
		if last {
			break
		}
		chunk++
		if last, err = loadChunk(); err != nil {
			return err
		}
	}
	if bf != nil {
		if err := bf.Close(); err != nil {
			return err
		}
	}
	if pf != nil {
		if err := pf.Close(); err != nil {
			return err
		}
	}
	return nil
}
