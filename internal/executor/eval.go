package executor

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/sql"
	"perm/internal/value"
)

// Eval evaluates a resolved expression against a row under the context's
// correlation stack, with SQL NULL semantics throughout.
func Eval(e algebra.Expr, row value.Row, ctx *Context) (value.Value, error) {
	switch x := e.(type) {
	case *algebra.Const:
		return x.Val, nil
	case *algebra.Param:
		if x.Index < 0 || x.Index >= len(ctx.Params) {
			return value.Null, fmt.Errorf("executor: parameter $%d not bound (%d bound)", x.Index+1, len(ctx.Params))
		}
		return ctx.Params[x.Index], nil
	case *algebra.ColIdx:
		if x.Idx < 0 || x.Idx >= len(row) {
			return value.Null, fmt.Errorf("executor: column index %d out of range (row width %d)", x.Idx, len(row))
		}
		return row[x.Idx], nil
	case *algebra.OuterRef:
		outer, err := ctx.outerRow()
		if err != nil {
			return value.Null, err
		}
		if x.Idx < 0 || x.Idx >= len(outer) {
			return value.Null, fmt.Errorf("executor: outer index %d out of range (outer width %d)", x.Idx, len(outer))
		}
		return outer[x.Idx], nil
	case *algebra.Bin:
		return evalBin(x, row, ctx)
	case *algebra.Not:
		v, err := Eval(x.E, row, ctx)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		return value.NewBool(!v.Bool()), nil
	case *algebra.Neg:
		v, err := Eval(x.E, row, ctx)
		if err != nil {
			return value.Null, err
		}
		return value.Neg(v)
	case *algebra.IsNull:
		v, err := Eval(x.E, row, ctx)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(v.IsNull() != x.Not), nil
	case *algebra.Func:
		return evalFunc(x, row, ctx)
	case *algebra.Case:
		for _, w := range x.Whens {
			c, err := Eval(w.Cond, row, ctx)
			if err != nil {
				return value.Null, err
			}
			if !c.IsNull() && c.Bool() {
				return Eval(w.Result, row, ctx)
			}
		}
		if x.Else != nil {
			return Eval(x.Else, row, ctx)
		}
		return value.Null, nil
	case *algebra.InList:
		needle, err := Eval(x.E, row, ctx)
		if err != nil {
			return value.Null, err
		}
		return evalInMembership(needle, x.List, row, ctx, x.Neg)
	case *algebra.Like:
		s, err := Eval(x.E, row, ctx)
		if err != nil {
			return value.Null, err
		}
		p, err := Eval(x.Pattern, row, ctx)
		if err != nil {
			return value.Null, err
		}
		if s.IsNull() || p.IsNull() {
			return value.Null, nil
		}
		m := likeMatch(s.String(), p.String())
		return value.NewBool(m != x.Neg), nil
	case *algebra.Cast:
		v, err := Eval(x.E, row, ctx)
		if err != nil {
			return value.Null, err
		}
		return value.Coerce(v, x.To)
	case *algebra.Subplan:
		return evalSubplan(x, row, ctx)
	}
	return value.Null, fmt.Errorf("executor: cannot evaluate expression %T", e)
}

// EvalBool evaluates a predicate and reports whether it is TRUE (NULL and
// FALSE both reject).
func EvalBool(e algebra.Expr, row value.Row, ctx *Context) (bool, error) {
	v, err := Eval(e, row, ctx)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.K != value.KindBool {
		return false, fmt.Errorf("executor: predicate evaluated to %s, want boolean", v.K)
	}
	return v.Bool(), nil
}

func evalBin(x *algebra.Bin, row value.Row, ctx *Context) (value.Value, error) {
	switch x.Op {
	case sql.OpAnd, sql.OpOr:
		l, err := Eval(x.L, row, ctx)
		if err != nil {
			return value.Null, err
		}
		// Short-circuit with 3VL.
		if x.Op == sql.OpAnd {
			if !l.IsNull() && !l.Bool() {
				return value.NewBool(false), nil
			}
		} else {
			if !l.IsNull() && l.Bool() {
				return value.NewBool(true), nil
			}
		}
		r, err := Eval(x.R, row, ctx)
		if err != nil {
			return value.Null, err
		}
		if x.Op == sql.OpAnd {
			switch {
			case !r.IsNull() && !r.Bool():
				return value.NewBool(false), nil
			case l.IsNull() || r.IsNull():
				return value.Null, nil
			default:
				return value.NewBool(true), nil
			}
		}
		switch {
		case !r.IsNull() && r.Bool():
			return value.NewBool(true), nil
		case l.IsNull() || r.IsNull():
			return value.Null, nil
		default:
			return value.NewBool(false), nil
		}
	}
	l, err := Eval(x.L, row, ctx)
	if err != nil {
		return value.Null, err
	}
	r, err := Eval(x.R, row, ctx)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case sql.OpNotDistinct:
		return value.NewBool(!value.Distinct(l, r)), nil
	case sql.OpAdd:
		return value.Add(l, r)
	case sql.OpSub:
		return value.Sub(l, r)
	case sql.OpMul:
		return value.Mul(l, r)
	case sql.OpDiv:
		return value.Div(l, r)
	case sql.OpMod:
		return value.Mod(l, r)
	case sql.OpConcat:
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		return value.NewString(l.String() + r.String()), nil
	}
	// Ordering comparisons.
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	c, err := value.Compare(l, r)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case sql.OpEq:
		return value.NewBool(c == 0), nil
	case sql.OpNeq:
		return value.NewBool(c != 0), nil
	case sql.OpLt:
		return value.NewBool(c < 0), nil
	case sql.OpLte:
		return value.NewBool(c <= 0), nil
	case sql.OpGt:
		return value.NewBool(c > 0), nil
	case sql.OpGte:
		return value.NewBool(c >= 0), nil
	}
	return value.Null, fmt.Errorf("executor: unknown binary operator %v", x.Op)
}

// evalInMembership implements SQL IN semantics over an evaluated list: TRUE
// on a match, NULL if no match but a NULL was present, else FALSE.
func evalInMembership(needle value.Value, list []algebra.Expr, row value.Row, ctx *Context, neg bool) (value.Value, error) {
	if needle.IsNull() {
		return value.Null, nil
	}
	sawNull := false
	for _, le := range list {
		v, err := Eval(le, row, ctx)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if value.Equal(needle, v) {
			return value.NewBool(!neg), nil
		}
	}
	if sawNull {
		return value.Null, nil
	}
	return value.NewBool(neg), nil
}

// evalSubplan runs a nested plan for scalar/EXISTS/IN consumption.
func evalSubplan(sp *algebra.Subplan, row value.Row, ctx *Context) (value.Value, error) {
	var rows []value.Row
	if !sp.Correlated {
		cached, ok := ctx.subplanCache[sp]
		if !ok {
			ctx.SubplanMisses++
			res, err := Run(ctx, sp.Plan)
			cached = &subplanResult{err: err}
			if err == nil {
				cached.rows = res.Rows
			}
			ctx.subplanCache[sp] = cached
		} else {
			ctx.SubplanHits++
		}
		if cached.err != nil {
			return value.Null, cached.err
		}
		// Fast path: uncorrelated IN membership via hash lookup. The probe key
		// is built in the context's scratch buffer; map lookups through
		// string(scratch) stay on the compiler's no-allocation path, so probing
		// costs zero allocations per outer row.
		if sp.Mode == algebra.InSubplan {
			needle, err := Eval(sp.Needle, row, ctx)
			if err != nil {
				return value.Null, err
			}
			if needle.IsNull() {
				return value.Null, nil
			}
			set, sawNull := cached.membership()
			ctx.keyScratch = needle.AppendKey(ctx.keyScratch[:0])
			if _, ok := set[string(ctx.keyScratch)]; ok {
				return value.NewBool(!sp.Neg), nil
			}
			if sawNull {
				return value.Null, nil
			}
			return value.NewBool(sp.Neg), nil
		}
		rows = cached.rows
	} else {
		// Correlated: re-open the cached iterator tree under this outer row
		// (compile-once — the tree is built on first use, see subplanIter).
		it, err := ctx.subplanIter(sp)
		if err != nil {
			return value.Null, err
		}
		ctx.pushOuter(row)
		rows, err = reopenAndDrain(it, ctx)
		ctx.popOuter()
		if err != nil {
			return value.Null, err
		}
	}
	switch sp.Mode {
	case algebra.ScalarSubplan:
		if len(rows) == 0 {
			return value.Null, nil
		}
		if len(rows) > 1 {
			return value.Null, fmt.Errorf("scalar subquery produced more than one row")
		}
		return rows[0][0], nil
	case algebra.ExistsSubplan:
		return value.NewBool((len(rows) > 0) != sp.Neg), nil
	case algebra.InSubplan:
		needle, err := Eval(sp.Needle, row, ctx)
		if err != nil {
			return value.Null, err
		}
		if needle.IsNull() {
			return value.Null, nil
		}
		sawNull := false
		for _, r := range rows {
			v := r[0]
			if v.IsNull() {
				sawNull = true
				continue
			}
			if value.Equal(needle, v) {
				return value.NewBool(!sp.Neg), nil
			}
		}
		if sawNull {
			return value.Null, nil
		}
		return value.NewBool(sp.Neg), nil
	case algebra.AnySubplan, algebra.AllSubplan:
		needle, err := Eval(sp.Needle, row, ctx)
		if err != nil {
			return value.Null, err
		}
		sawNull := false
		for _, r := range rows {
			cmp, err := evalBin(&algebra.Bin{Op: sp.CmpOp,
				L: &algebra.Const{Val: needle}, R: &algebra.Const{Val: r[0]}}, nil, ctx)
			if err != nil {
				return value.Null, err
			}
			if cmp.IsNull() {
				sawNull = true
				continue
			}
			if sp.Mode == algebra.AnySubplan && cmp.Bool() {
				return value.NewBool(true), nil
			}
			if sp.Mode == algebra.AllSubplan && !cmp.Bool() {
				return value.NewBool(false), nil
			}
		}
		if sawNull {
			return value.Null, nil
		}
		return value.NewBool(sp.Mode == algebra.AllSubplan), nil
	}
	return value.Null, fmt.Errorf("executor: unknown subplan mode %d", sp.Mode)
}

// likeMatch implements SQL LIKE with % (any sequence) and _ (any single
// character), case sensitively, via iterative backtracking.
func likeMatch(s, pattern string) bool {
	// Convert to runes for correct _ semantics.
	str, pat := []rune(s), []rune(pattern)
	si, pi := 0, 0
	starSi, starPi := -1, -1
	for si < len(str) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == str[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			starPi = pi
			starSi = si
			pi++
		case starPi >= 0:
			starSi++
			si = starSi
			pi = starPi + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// evalFunc evaluates a scalar function call through the builtin registry.
func evalFunc(f *algebra.Func, row value.Row, ctx *Context) (value.Value, error) {
	b, ok := lookupBuiltin(f.Name)
	if !ok {
		return value.Null, fmt.Errorf("executor: unknown function %q", f.Name)
	}
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := Eval(a, row, ctx)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	if !b.tolerant {
		for _, a := range args {
			if a.IsNull() {
				return value.Null, nil
			}
		}
	}
	return b.fn(args)
}
