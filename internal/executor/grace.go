package executor

import (
	"container/heap"
	"encoding/binary"
	"fmt"

	"perm/internal/spill"
	"perm/internal/value"
)

// This file holds the spill machinery shared by the blocking operators:
// hash partitioning (grace-style, with per-level rehashing), sequence-tagged
// output files, and the k-way merge that reassembles spilled output in the
// exact order the in-memory path would have produced. Every operator's
// contract is: with or without spilling, byte-identical results in the same
// order — the differential suite runs the same queries under a huge and a
// tiny work_mem and asserts exactly that.

const (
	// spillPartitions is the grace fan-out per level.
	spillPartitions = 8
	// maxSpillLevel caps recursive re-partitioning; past it an operator
	// finishes in memory regardless of budget (correctness over bound — a
	// pathological key distribution must not recurse forever).
	maxSpillLevel = 8
	// minSortRunRows floors an external-sort run, so a tiny budget cannot
	// degenerate into one run per row (and a file per row).
	minSortRunRows = 256
	// minSortRunBytes floors an external-sort run in bytes: below it, the
	// per-run costs (a spill file with its write and read buffers, a slot in
	// every merge pass, a fresh decode of each row it carries) dominate the
	// row payload, and a tiny work_mem degenerates into allocation churn —
	// hundreds of near-empty runs plus reduction passes over all of them.
	// Runs are sized to the budget (half of work_mem, the sorting operator's
	// fair share of a tracker other operators draw on too) but never below
	// this floor; it is the one place the sort knowingly overshoots a
	// micro-budget, trading a bounded transient buffer for an order of
	// magnitude fewer spill files. See sortRunTargetBytes.
	minSortRunBytes = 128 << 10
	// mergeFanIn caps how many spill files a merge holds open at once;
	// larger sets merge in passes.
	mergeFanIn = 64
	// minFoldGroups floors the resident group/key set of a hash fold: each
	// fold makes at least this much progress before routing to partitions,
	// which bounds recursion depth and file count under absurd budgets.
	minFoldGroups = 64
	// minBufferRows floors the rows a buffering operator admits before it
	// considers partitioning.
	minBufferRows = 256
)

// sortRunTargetBytes is the byte size an external-sort run aims for before
// flushing: half the work_mem budget, floored at minSortRunBytes. The
// budget share keeps a spilling sort from buffering past its fair fraction
// of the (session-shared) tracker; the floor keeps micro-budgets from
// producing runs so small that file and merge-pass overhead dominates —
// the documented spill-path allocation churn at tiny budgets.
func sortRunTargetBytes(budget int64) int64 {
	t := budget / 2
	if t < minSortRunBytes {
		t = minSortRunBytes
	}
	return t
}

// spillHash hashes a canonical key with a level-dependent seed, so recursive
// re-partitioning redistributes what a parent level hashed together.
func spillHash(key []byte, level int) uint64 {
	h := uint64(1469598103934665603) ^ (uint64(level)+1)*1099511628211
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// fileReg tracks every spill file an operator currently owns, so Close can
// unconditionally release them however the query ends (file Close is
// idempotent; consumed files close twice harmlessly).
type fileReg struct {
	files []*spill.File
}

func (r *fileReg) add(f *spill.File) { r.files = append(r.files, f) }

func (r *fileReg) closeAll() {
	for _, f := range r.files {
		f.Close()
	}
	r.files = nil
}

// partitionSet is one level of grace partitioning: records route to one of
// spillPartitions files by key hash, files created lazily.
type partitionSet struct {
	pool  *spill.Pool
	reg   *fileReg
	level int
	files [spillPartitions]*spill.File
}

func newPartitionSet(pool *spill.Pool, reg *fileReg, level int) *partitionSet {
	return &partitionSet{pool: pool, reg: reg, level: level}
}

// route appends rec to the partition key hashes into.
func (ps *partitionSet) route(key []byte, rec []byte) error {
	idx := spillHash(key, ps.level) % spillPartitions
	f := ps.files[idx]
	if f == nil {
		var err error
		if f, err = ps.pool.Create(); err != nil {
			return err
		}
		ps.reg.add(f)
		ps.files[idx] = f
	}
	return f.Append(rec)
}

// --- sequence-tagged output files ------------------------------------------------

// appendSeqRow encodes an output record: the row's original input sequence
// number, then the exact row.
func appendSeqRow(dst []byte, seq uint64, row value.Row) []byte {
	dst = binary.AppendUvarint(dst, seq)
	return spill.AppendRow(dst, row)
}

// decodeSeqRow reverses appendSeqRow.
func decodeSeqRow(rec []byte) (uint64, value.Row, error) {
	seq, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, nil, fmt.Errorf("executor: corrupt spill record (sequence)")
	}
	row, _, err := spill.DecodeRow(rec[n:])
	return seq, row, err
}

// seqCursor is one output file primed with its next record.
type seqCursor struct {
	f   *spill.File
	seq uint64
	row value.Row
}

// advance loads the cursor's next record; done=true at end of file (the file
// is closed and removed).
func (c *seqCursor) advance() (done bool, err error) {
	rec, err := c.f.Next()
	if err != nil {
		return false, err
	}
	if rec == nil {
		return true, c.f.Close()
	}
	c.seq, c.row, err = decodeSeqRow(rec)
	return false, err
}

// seqHeap orders cursors by sequence number. Sequence numbers are unique
// (each input row has one), so the order is total.
type seqHeap []*seqCursor

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x any)        { *h = append(*h, x.(*seqCursor)) }
func (h *seqHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h seqHeap) MinSeq() uint64     { return h[0].seq }
func (h seqHeap) MinRow() value.Row  { return h[0].row }

// mergeStream is the common shape of the two k-way mergers during a
// fan-in-reduction pass: expose the current minimum as a re-encoded record,
// then step past it.
type mergeStream interface {
	remaining() int
	minRecord(dst []byte) []byte
	step() error
}

// reduceToFanIn merges the leading mergeFanIn files into one replacement
// file (which keeps their position, preserving positional tie-breaks) until
// at most mergeFanIn files remain. tick is the cancellation poll — a large
// reduction pass must stay interruptible.
func reduceToFanIn(pool *spill.Pool, reg *fileReg, files []*spill.File,
	open func([]*spill.File) (mergeStream, error), tick func() error) ([]*spill.File, error) {
	for len(files) > mergeFanIn {
		out, err := pool.Create()
		if err != nil {
			return nil, err
		}
		reg.add(out)
		m, err := open(files[:mergeFanIn])
		if err != nil {
			return nil, err
		}
		var rec []byte
		for m.remaining() > 0 {
			if err := tick(); err != nil {
				return nil, err
			}
			rec = m.minRecord(rec[:0])
			if err := out.Append(rec); err != nil {
				return nil, err
			}
			if err := m.step(); err != nil {
				return nil, err
			}
		}
		files = append([]*spill.File{out}, files[mergeFanIn:]...)
	}
	return files, nil
}

// seqMerger streams the union of sequence-tagged output files in ascending
// sequence order — i.e. in the exact order the in-memory operator would have
// emitted. It holds one record per file; file sets past mergeFanIn are first
// reduced in passes.
type seqMerger struct {
	h seqHeap
}

func (m *seqMerger) remaining() int { return m.h.Len() }

func (m *seqMerger) minRecord(dst []byte) []byte {
	return appendSeqRow(dst, m.h.MinSeq(), m.h.MinRow())
}

// newSeqMerger builds a merger over files (each already fully written). Large
// file sets are reduced to mergeFanIn with intermediate merge passes so the
// merger never holds more than mergeFanIn files open.
func newSeqMerger(ctx *Context, reg *fileReg, files []*spill.File) (*seqMerger, error) {
	files, err := reduceToFanIn(ctx.Mem.Pool(), reg, files,
		func(fs []*spill.File) (mergeStream, error) { return openSeqHeap(fs) }, ctx.tick)
	if err != nil {
		return nil, err
	}
	return openSeqHeap(files)
}

// openSeqHeap rewinds files for reading and primes the heap.
func openSeqHeap(files []*spill.File) (*seqMerger, error) {
	m := &seqMerger{h: make(seqHeap, 0, len(files))}
	for _, f := range files {
		if err := f.StartRead(); err != nil {
			return nil, err
		}
		c := &seqCursor{f: f}
		done, err := c.advance()
		if err != nil {
			return nil, err
		}
		if !done {
			m.h = append(m.h, c)
		}
	}
	heap.Init(&m.h)
	return m, nil
}

// step advances past the current minimum.
func (m *seqMerger) step() error {
	c := m.h[0]
	done, err := c.advance()
	if err != nil {
		return err
	}
	if done {
		heap.Pop(&m.h)
	} else {
		heap.Fix(&m.h, 0)
	}
	return nil
}

// Next returns the next row in ascending sequence order, (nil, nil) at end.
func (m *seqMerger) Next() (value.Row, error) {
	if m == nil || m.h.Len() == 0 {
		return nil, nil
	}
	row := m.h.MinRow()
	if err := m.step(); err != nil {
		return nil, err
	}
	return row, nil
}

// Close releases the files still held.
func (m *seqMerger) Close() {
	if m == nil {
		return
	}
	for _, c := range m.h {
		c.f.Close()
	}
	m.h = nil
}
