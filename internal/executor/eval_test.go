package executor

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/sql"
	"perm/internal/value"
)

func evalOne(t *testing.T, e algebra.Expr, row value.Row) value.Value {
	t.Helper()
	v, err := Eval(e, row, NewContext(nil))
	if err != nil {
		t.Fatalf("Eval(%v): %v", e, err)
	}
	return v
}

func boolConst(b bool) *algebra.Const { return &algebra.Const{Val: value.NewBool(b)} }
func nullConst() *algebra.Const       { return &algebra.Const{Val: value.Null} }
func strConst(s string) *algebra.Const {
	return &algebra.Const{Val: value.NewString(s)}
}

func TestThreeValuedAnd(t *testing.T) {
	cases := []struct {
		l, r algebra.Expr
		want value.Value
	}{
		{boolConst(true), boolConst(true), value.NewBool(true)},
		{boolConst(true), boolConst(false), value.NewBool(false)},
		{boolConst(false), nullConst(), value.NewBool(false)}, // FALSE AND NULL = FALSE
		{nullConst(), boolConst(false), value.NewBool(false)},
		{boolConst(true), nullConst(), value.Null},
		{nullConst(), nullConst(), value.Null},
	}
	for _, c := range cases {
		got := evalOne(t, &algebra.Bin{Op: sql.OpAnd, L: c.l, R: c.r}, nil)
		if value.Distinct(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("AND(%v, %v) = %v, want %v", c.l, c.r, got, c.want)
		}
	}
}

func TestThreeValuedOr(t *testing.T) {
	cases := []struct {
		l, r algebra.Expr
		want value.Value
	}{
		{boolConst(false), boolConst(false), value.NewBool(false)},
		{boolConst(true), nullConst(), value.NewBool(true)}, // TRUE OR NULL = TRUE
		{nullConst(), boolConst(true), value.NewBool(true)},
		{boolConst(false), nullConst(), value.Null},
		{nullConst(), nullConst(), value.Null},
	}
	for _, c := range cases {
		got := evalOne(t, &algebra.Bin{Op: sql.OpOr, L: c.l, R: c.r}, nil)
		if value.Distinct(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("OR = %v, want %v", got, c.want)
		}
	}
}

func TestNotOfNull(t *testing.T) {
	got := evalOne(t, &algebra.Not{E: nullConst()}, nil)
	if !got.IsNull() {
		t.Errorf("NOT NULL = %v", got)
	}
}

func TestComparisonNullPropagation(t *testing.T) {
	got := evalOne(t, &algebra.Bin{Op: sql.OpEq, L: nullConst(), R: nullConst()}, nil)
	if !got.IsNull() {
		t.Errorf("NULL = NULL must be NULL, got %v", got)
	}
	got = evalOne(t, &algebra.Bin{Op: sql.OpNotDistinct, L: nullConst(), R: nullConst()}, nil)
	if got.IsNull() || !got.Bool() {
		t.Errorf("NULL IS NOT DISTINCT FROM NULL must be TRUE, got %v", got)
	}
}

func TestIsNullNeverNull(t *testing.T) {
	got := evalOne(t, &algebra.IsNull{E: nullConst()}, nil)
	if got.IsNull() || !got.Bool() {
		t.Errorf("NULL IS NULL = %v", got)
	}
	got = evalOne(t, &algebra.IsNull{E: boolConst(true), Not: true}, nil)
	if !got.Bool() {
		t.Errorf("TRUE IS NOT NULL = %v", got)
	}
}

func TestCaseEvaluation(t *testing.T) {
	e := &algebra.Case{
		Whens: []algebra.CaseWhen{
			{Cond: boolConst(false), Result: strConst("no")},
			{Cond: nullConst(), Result: strConst("never")},
			{Cond: boolConst(true), Result: strConst("yes")},
		},
		Else: strConst("else"),
		Typ:  value.KindString,
	}
	if got := evalOne(t, e, nil); got.S != "yes" {
		t.Errorf("CASE = %v", got)
	}
	e.Whens = e.Whens[:2]
	if got := evalOne(t, e, nil); got.S != "else" {
		t.Errorf("CASE else = %v", got)
	}
	e.Else = nil
	if got := evalOne(t, e, nil); !got.IsNull() {
		t.Errorf("CASE without else = %v", got)
	}
}

func TestInListSemantics(t *testing.T) {
	in := &algebra.InList{
		E:    &algebra.Const{Val: value.NewInt(2)},
		List: []algebra.Expr{nullConst(), &algebra.Const{Val: value.NewInt(3)}},
	}
	// 2 IN (NULL, 3) = NULL
	if got := evalOne(t, in, nil); !got.IsNull() {
		t.Errorf("IN with NULL = %v", got)
	}
	in.List = append(in.List, &algebra.Const{Val: value.NewInt(2)})
	if got := evalOne(t, in, nil); !got.Bool() {
		t.Errorf("IN match = %v", got)
	}
	in.Neg = true
	if got := evalOne(t, in, nil); got.Bool() {
		t.Errorf("NOT IN match = %v", got)
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%l%", true},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"日本語", "日_語", true},
	}
	for _, c := range cases {
		e := &algebra.Like{E: strConst(c.s), Pattern: strConst(c.pat)}
		if got := evalOne(t, e, nil); got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	// NULL propagation
	e := &algebra.Like{E: nullConst(), Pattern: strConst("%")}
	if got := evalOne(t, e, nil); !got.IsNull() {
		t.Errorf("NULL LIKE = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	call := func(name string, args ...algebra.Expr) value.Value {
		return evalOne(t, &algebra.Func{Name: name, Args: args}, nil)
	}
	i := func(n int64) algebra.Expr { return &algebra.Const{Val: value.NewInt(n)} }
	f := func(x float64) algebra.Expr { return &algebra.Const{Val: value.NewFloat(x)} }

	if got := call("upper", strConst("abc")); got.S != "ABC" {
		t.Errorf("upper = %v", got)
	}
	if got := call("lower", strConst("ABC")); got.S != "abc" {
		t.Errorf("lower = %v", got)
	}
	if got := call("length", strConst("héllo")); got.I != 5 {
		t.Errorf("length = %v", got)
	}
	if got := call("abs", i(-5)); got.I != 5 {
		t.Errorf("abs = %v", got)
	}
	if got := call("coalesce", nullConst(), nullConst(), i(3)); got.I != 3 {
		t.Errorf("coalesce = %v", got)
	}
	if got := call("nullif", i(1), i(1)); !got.IsNull() {
		t.Errorf("nullif equal = %v", got)
	}
	if got := call("nullif", i(1), i(2)); got.I != 1 {
		t.Errorf("nullif distinct = %v", got)
	}
	if got := call("substr", strConst("hello"), i(2), i(3)); got.S != "ell" {
		t.Errorf("substr = %v", got)
	}
	if got := call("substr", strConst("hello"), i(4)); got.S != "lo" {
		t.Errorf("substr open = %v", got)
	}
	if got := call("replace", strConst("aaa"), strConst("a"), strConst("b")); got.S != "bbb" {
		t.Errorf("replace = %v", got)
	}
	if got := call("round", f(2.567), i(1)); got.F != 2.6 {
		t.Errorf("round = %v", got)
	}
	if got := call("floor", f(2.9)); got.F != 2 {
		t.Errorf("floor = %v", got)
	}
	if got := call("sqrt", f(9)); got.F != 3 {
		t.Errorf("sqrt = %v", got)
	}
	if got := call("power", f(2), f(10)); got.F != 1024 {
		t.Errorf("power = %v", got)
	}
	if got := call("greatest", i(1), nullConst(), i(7), i(3)); got.I != 7 {
		t.Errorf("greatest = %v", got)
	}
	if got := call("least", i(1), i(7)); got.I != 1 {
		t.Errorf("least = %v", got)
	}
	if got := call("concat", strConst("a"), nullConst(), strConst("b")); got.S != "ab" {
		t.Errorf("concat skips nulls = %v", got)
	}
	if got := call("strpos", strConst("hello"), strConst("ll")); got.I != 3 {
		t.Errorf("strpos = %v", got)
	}
	if got := call("mod", i(7), i(3)); got.I != 1 {
		t.Errorf("mod = %v", got)
	}
	// NULL propagation for plain functions.
	if got := call("upper", nullConst()); !got.IsNull() {
		t.Errorf("upper(NULL) = %v", got)
	}
}

func TestCastEval(t *testing.T) {
	got := evalOne(t, &algebra.Cast{E: strConst("12"), To: value.KindInt}, nil)
	if got.I != 12 {
		t.Errorf("cast = %v", got)
	}
	_, err := Eval(&algebra.Cast{E: strConst("x"), To: value.KindInt}, nil, NewContext(nil))
	if err == nil {
		t.Error("bad cast must error")
	}
}

func TestConcatOperatorNull(t *testing.T) {
	got := evalOne(t, &algebra.Bin{Op: sql.OpConcat, L: strConst("a"), R: nullConst()}, nil)
	if !got.IsNull() {
		t.Errorf("'a' || NULL = %v, want NULL", got)
	}
	got = evalOne(t, &algebra.Bin{Op: sql.OpConcat, L: strConst("a"), R: &algebra.Const{Val: value.NewInt(1)}}, nil)
	if got.S != "a1" {
		t.Errorf("'a' || 1 = %v", got)
	}
}

func TestEvalBoolRejectsNonBool(t *testing.T) {
	_, err := EvalBool(&algebra.Const{Val: value.NewInt(1)}, nil, NewContext(nil))
	if err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Errorf("err = %v", err)
	}
	ok, err := EvalBool(nullConst(), nil, NewContext(nil))
	if err != nil || ok {
		t.Errorf("NULL predicate must reject: %v %v", ok, err)
	}
}

func TestColumnOutOfRange(t *testing.T) {
	_, err := Eval(&algebra.ColIdx{Idx: 5}, value.Row{value.NewInt(1)}, NewContext(nil))
	if err == nil {
		t.Error("out-of-range column must error")
	}
}

func TestOuterRefOutsideContext(t *testing.T) {
	_, err := Eval(&algebra.OuterRef{Idx: 0}, nil, NewContext(nil))
	if err == nil {
		t.Error("outer ref without correlation context must error")
	}
}
