package executor

import (
	"encoding/binary"
	"fmt"

	"perm/internal/spill"
	"perm/internal/value"
)

// dedupState is the spillable first-occurrence filter behind DISTINCT and
// UNION DISTINCT. It streams while its seen-set fits the budget; once over,
// the resident keys are frozen to disk as tombstones, every further row
// routes to a grace partition, and the operator turns blocking for the
// remainder: partitions resolve recursively, emitting each partition's
// first-occurrence rows tagged with their input sequence, and the final
// merge replays them in ascending sequence — exactly the order the pure
// streaming path would have produced after the already-emitted prefix.
//
// Partition record format: [0x00, key bytes] is a tombstone (key emitted or
// routed before the freeze — suppress, never emit), [0x01, uvarint seq, row]
// is a candidate row. Within any partition file every tombstone for a key
// precedes every routed row of that key, which is what makes per-partition
// resolution order-free.
type dedupState struct {
	ctx   *Context
	acct  memAcct
	reg   *fileReg
	seen  map[string]struct{}
	parts *partitionSet
	seq   uint64
	key   []byte // scratch: canonical row key
	rec   []byte // scratch: partition record
}

func newDedupState(ctx *Context, reg *fileReg) *dedupState {
	return &dedupState{ctx: ctx, acct: memAcct{ctx: ctx}, reg: reg, seen: make(map[string]struct{})}
}

// offer decides one input row: emit=true means the caller streams it out now
// (first occurrence while under budget); false means it was a duplicate or
// was routed to a partition for the blocking phase.
func (d *dedupState) offer(row value.Row) (emit bool, err error) {
	d.key = row.AppendKey(d.key[:0])
	seq := d.seq
	d.seq++
	if d.parts != nil {
		return false, d.routeRow(d.parts, d.key, seq, row)
	}
	if _, dup := d.seen[string(d.key)]; dup {
		return false, nil
	}
	if d.acct.spillable() && d.acct.over() && len(d.seen) >= minFoldGroups {
		if err := d.freeze(); err != nil {
			return false, err
		}
		return false, d.routeRow(d.parts, d.key, seq, row)
	}
	d.seen[string(d.key)] = struct{}{}
	d.acct.grow(int64(len(d.key)) + mapEntryBytes)
	return true, nil
}

// freeze dumps the resident seen-set to the level-0 partitions as tombstones
// and switches to routing.
func (d *dedupState) freeze() error {
	d.parts = newPartitionSet(d.ctx.Mem.Pool(), d.reg, 0)
	for k := range d.seen {
		if err := d.routeTombstone(d.parts, []byte(k)); err != nil {
			return err
		}
	}
	d.seen = nil
	d.acct.releaseAll()
	return nil
}

func (d *dedupState) routeTombstone(ps *partitionSet, key []byte) error {
	d.rec = append(d.rec[:0], 0x00)
	d.rec = append(d.rec, key...)
	return ps.route(key, d.rec)
}

func (d *dedupState) routeRow(ps *partitionSet, key []byte, seq uint64, row value.Row) error {
	d.rec = append(d.rec[:0], 0x01)
	d.rec = binary.AppendUvarint(d.rec, seq)
	d.rec = spill.AppendRow(d.rec, row)
	return ps.route(key, d.rec)
}

// finish resolves the partitions (if any) into a sequence merger over the
// remaining first-occurrence rows. A nil merger with nil error means the
// state never spilled and everything was already emitted live.
func (d *dedupState) finish() (*seqMerger, error) {
	if d.parts == nil {
		return nil, nil
	}
	var outputs []*spill.File
	for _, f := range d.parts.files {
		if f == nil {
			continue
		}
		if err := d.resolvePartition(f, 1, &outputs); err != nil {
			return nil, err
		}
	}
	return newSeqMerger(d.ctx, d.reg, outputs)
}

// resolvePartition reads one partition file, emitting first occurrences to a
// fresh output file. If the resident set outgrows the budget mid-way, the
// frozen set and the remaining records cascade to sub-partitions one level
// deeper, preserving the tombstones-first-per-key invariant.
func (d *dedupState) resolvePartition(f *spill.File, level int, outputs *[]*spill.File) error {
	if err := f.StartRead(); err != nil {
		return err
	}
	acct := memAcct{ctx: d.ctx}
	defer acct.releaseAll()
	seen := make(map[string]struct{})
	var sub *partitionSet
	var out *spill.File
	var outRec []byte
	for {
		if err := d.ctx.tick(); err != nil {
			return err
		}
		rec, err := f.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		if len(rec) < 1 {
			return fmt.Errorf("executor: corrupt dedup spill record")
		}
		tomb := rec[0] == 0x00
		var seq uint64
		var row value.Row
		var key []byte
		if tomb {
			key = rec[1:]
		} else {
			if seq, row, err = decodeSeqRow(rec[1:]); err != nil {
				return err
			}
			key = row.AppendKey(d.key[:0])
			d.key = key
		}
		if _, dup := seen[string(key)]; dup {
			continue // resident: already emitted, routed, or tombstoned
		}
		if sub != nil || (acct.spillable() && acct.over() && len(seen) >= minFoldGroups && level < maxSpillLevel) {
			if sub == nil {
				sub = newPartitionSet(d.ctx.Mem.Pool(), d.reg, level)
				for k := range seen {
					if err := d.routeTombstone(sub, []byte(k)); err != nil {
						return err
					}
				}
				// The resident set is frozen into the sub-partitions; from
				// here every record routes, so drop it (nil-map reads are
				// legal and always miss).
				seen = nil
				acct.releaseAll()
			}
			if tomb {
				if err := d.routeTombstone(sub, key); err != nil {
					return err
				}
			} else if err := d.routeRow(sub, key, seq, row); err != nil {
				return err
			}
			continue
		}
		seen[string(key)] = struct{}{}
		acct.grow(int64(len(key)) + mapEntryBytes)
		if !tomb {
			if out == nil {
				if out, err = d.ctx.Mem.Pool().Create(); err != nil {
					return err
				}
				d.reg.add(out)
				*outputs = append(*outputs, out)
			}
			outRec = appendSeqRow(outRec[:0], seq, row)
			if err := out.Append(outRec); err != nil {
				return err
			}
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if sub == nil {
		return nil
	}
	for _, sf := range sub.files {
		if sf == nil {
			continue
		}
		if err := d.resolvePartition(sf, level+1, outputs); err != nil {
			return err
		}
	}
	return nil
}

// release drops all dedup state (accounting only; spill files belong to the
// owner's registry).
func (d *dedupState) release() {
	if d == nil {
		return
	}
	d.seen = nil
	d.parts = nil
	d.acct.releaseAll()
}

// mapEntryBytes is the charged per-entry overhead of a Go map entry beyond
// its key bytes.
const mapEntryBytes = 48
