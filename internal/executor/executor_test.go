package executor

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

// testStore builds a store with two small integer tables:
//
//	t(a, b): (1,10) (2,20) (3,30) (2,25)
//	u(a, c): (2,200) (3,300) (5,500)
func testStore(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	tt, err := s.CreateTable(&catalog.TableDef{Name: "t", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt}, {Name: "b", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{1, 10}, {2, 20}, {3, 30}, {2, 25}} {
		tt.Insert(value.Row{value.NewInt(r[0]), value.NewInt(r[1])})
	}
	uu, err := s.CreateTable(&catalog.TableDef{Name: "u", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt}, {Name: "c", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{2, 200}, {3, 300}, {5, 500}} {
		uu.Insert(value.Row{value.NewInt(r[0]), value.NewInt(r[1])})
	}
	return s
}

func scanT() *algebra.Scan {
	return &algebra.Scan{Table: "t", Alias: "t", Sch: algebra.Schema{
		{Name: "a", Table: "t", Type: value.KindInt},
		{Name: "b", Table: "t", Type: value.KindInt},
	}}
}

func scanU() *algebra.Scan {
	return &algebra.Scan{Table: "u", Alias: "u", Sch: algebra.Schema{
		{Name: "a", Table: "u", Type: value.KindInt},
		{Name: "c", Table: "u", Type: value.KindInt},
	}}
}

func intCol(i int) *algebra.ColIdx { return &algebra.ColIdx{Idx: i, Typ: value.KindInt} }
func intConst(n int64) *algebra.Const {
	return &algebra.Const{Val: value.NewInt(n)}
}

func runPlan(t *testing.T, s *storage.Store, plan algebra.Op) []value.Row {
	t.Helper()
	res, err := Run(NewContext(s), plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Rows
}

func rowsToInts(rows []value.Row) [][]int64 {
	out := make([][]int64, len(rows))
	for i, r := range rows {
		out[i] = make([]int64, len(r))
		for j, v := range r {
			if v.IsNull() {
				out[i][j] = -1
			} else {
				out[i][j] = v.Int()
			}
		}
	}
	return out
}

func equalInts(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestScanAndFilter(t *testing.T) {
	s := testStore(t)
	plan := &algebra.Select{
		Input: scanT(),
		Cond:  &algebra.Bin{Op: sql.OpGt, L: intCol(1), R: intConst(15)},
	}
	rows := runPlan(t, s, plan)
	if len(rows) != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestMissingTable(t *testing.T) {
	s := storage.NewStore()
	_, err := Run(NewContext(s), scanT())
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("err = %v", err)
	}
}

func TestProjectExpressions(t *testing.T) {
	s := testStore(t)
	plan := algebra.NewProject(scanT(), []algebra.Expr{
		&algebra.Bin{Op: sql.OpMul, L: intCol(0), R: intCol(1)},
	}, []string{"prod"})
	rows := runPlan(t, s, plan)
	if rows[0][0].I != 10 || rows[3][0].I != 50 {
		t.Errorf("rows = %v", rows)
	}
}

func TestHashJoinInner(t *testing.T) {
	s := testStore(t)
	join := algebra.NewJoin(algebra.JoinInner, scanT(), scanU(),
		&algebra.Bin{Op: sql.OpEq, L: intCol(0), R: intCol(2)})
	rows := runPlan(t, s, join)
	// t rows with a=2 (x2) match u a=2; t a=3 matches u a=3 → 3 rows.
	if len(rows) != 3 {
		t.Errorf("rows = %v", rowsToInts(rows))
	}
}

func TestHashJoinLeft(t *testing.T) {
	s := testStore(t)
	join := algebra.NewJoin(algebra.JoinLeft, scanT(), scanU(),
		&algebra.Bin{Op: sql.OpEq, L: intCol(0), R: intCol(2)})
	rows := runPlan(t, s, join)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rowsToInts(rows))
	}
	// The a=1 row must be null-extended.
	found := false
	for _, r := range rows {
		if r[0].I == 1 {
			found = true
			if !r[2].IsNull() || !r[3].IsNull() {
				t.Errorf("unmatched left row not null-padded: %v", r)
			}
		}
	}
	if !found {
		t.Error("a=1 row missing")
	}
}

func TestNLJoinRightAndFull(t *testing.T) {
	s := testStore(t)
	// Force nested loop with a non-equi condition.
	cond := &algebra.Bin{Op: sql.OpLt, L: intCol(0), R: intCol(2)}
	right := algebra.NewJoin(algebra.JoinRight, scanT(), scanU(), cond)
	rows := runPlan(t, s, right)
	// every u row matches at least one t row with t.a < u.a except none?
	// t.a values: 1,2,3,2; u.a: 2,3,5. matches: u2:{1}, u3:{1,2,2}, u5:{1,2,3,2} → 8 rows, all matched.
	if len(rows) != 8 {
		t.Errorf("right join rows = %d: %v", len(rows), rowsToInts(rows))
	}

	full := algebra.NewJoin(algebra.JoinFull, scanT(), scanU(),
		&algebra.Bin{Op: sql.OpEq, L: &algebra.Bin{Op: sql.OpAdd, L: intCol(0), R: intCol(1)}, R: intCol(3)})
	rows = runPlan(t, s, full)
	// matches where a+b = c: (2,25)? 27 no; none match except... a+b: 11,22,32,27; c: 200,300,500 → none.
	// full join: 4 left-unmatched + 3 right-unmatched = 7 rows.
	if len(rows) != 7 {
		t.Errorf("full join rows = %d: %v", len(rows), rowsToInts(rows))
	}
}

func TestHashJoinRight(t *testing.T) {
	s := testStore(t)
	// Equi condition → hash join path. u(5) has no match and must appear
	// null-padded on the left.
	right := algebra.NewJoin(algebra.JoinRight, scanT(), scanU(),
		&algebra.Bin{Op: sql.OpEq, L: intCol(0), R: intCol(2)})
	rows := runPlan(t, s, right)
	if len(rows) != 4 {
		t.Fatalf("right join rows = %v, want 4", rowsToInts(rows))
	}
	foundUnmatched := false
	for _, r := range rows {
		if r[2].I == 5 {
			foundUnmatched = true
			if !r[0].IsNull() || !r[1].IsNull() {
				t.Errorf("unmatched right row not null-padded: %v", r)
			}
		}
	}
	if !foundUnmatched {
		t.Error("unmatched right row (a=5) missing")
	}
}

func TestHashJoinFull(t *testing.T) {
	s := testStore(t)
	full := algebra.NewJoin(algebra.JoinFull, scanT(), scanU(),
		&algebra.Bin{Op: sql.OpEq, L: intCol(0), R: intCol(2)})
	rows := runPlan(t, s, full)
	// matched: 3 rows; left-unmatched a=1: 1; right-unmatched a=5: 1 → 5.
	if len(rows) != 5 {
		t.Errorf("rows = %v", rowsToInts(rows))
	}
}

func TestSemiAntiJoin(t *testing.T) {
	s := testStore(t)
	cond := &algebra.Bin{Op: sql.OpEq, L: intCol(0), R: intCol(2)}
	semi := algebra.NewJoin(algebra.JoinSemi, scanT(), scanU(), cond)
	rows := runPlan(t, s, semi)
	if len(rows) != 3 { // rows a=2,3,2 have matches; each left row emitted once
		t.Errorf("semi rows = %v", rowsToInts(rows))
	}
	anti := algebra.NewJoin(algebra.JoinAnti, scanT(), scanU(), cond)
	rows = runPlan(t, s, anti)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("anti rows = %v", rowsToInts(rows))
	}
}

func TestNullSafeJoinKeys(t *testing.T) {
	s := storage.NewStore()
	tab, _ := s.CreateTable(&catalog.TableDef{Name: "n", Columns: []catalog.Column{
		{Name: "x", Type: value.KindInt},
	}})
	tab.Insert(value.Row{value.Null})
	tab.Insert(value.Row{value.NewInt(1)})
	scanN := func() *algebra.Scan {
		return &algebra.Scan{Table: "n", Sch: algebra.Schema{{Name: "x", Type: value.KindInt}}}
	}
	// Strict equality: NULL never matches.
	eq := algebra.NewJoin(algebra.JoinInner, scanN(), scanN(),
		&algebra.Bin{Op: sql.OpEq, L: intCol(0), R: intCol(1)})
	rows := runPlan(t, s, eq)
	if len(rows) != 1 {
		t.Errorf("= join rows = %v", rowsToInts(rows))
	}
	// IS NOT DISTINCT FROM: NULL joins NULL.
	nd := algebra.NewJoin(algebra.JoinInner, scanN(), scanN(),
		&algebra.Bin{Op: sql.OpNotDistinct, L: intCol(0), R: intCol(1)})
	rows = runPlan(t, s, nd)
	if len(rows) != 2 {
		t.Errorf("IS NOT DISTINCT FROM join rows = %v", rowsToInts(rows))
	}
}

func TestAggregation(t *testing.T) {
	s := testStore(t)
	agg := algebra.NewAgg(scanT(),
		[]algebra.Expr{intCol(0)},
		[]algebra.AggExpr{
			{Func: algebra.AggCount},
			{Func: algebra.AggSum, Arg: intCol(1)},
			{Func: algebra.AggMin, Arg: intCol(1)},
			{Func: algebra.AggMax, Arg: intCol(1)},
			{Func: algebra.AggAvg, Arg: intCol(1)},
		}, nil, nil)
	sorted := &algebra.Sort{Input: agg, Keys: []algebra.SortKey{{Expr: intCol(0)}}}
	rows := runPlan(t, s, sorted)
	if len(rows) != 3 {
		t.Fatalf("groups = %v", rowsToInts(rows))
	}
	// group a=2: count=2 sum=45 min=20 max=25 avg=22.5
	g2 := rows[1]
	if g2[1].I != 2 || g2[2].I != 45 || g2[3].I != 20 || g2[4].I != 25 || g2[5].F != 22.5 {
		t.Errorf("group 2 = %v", g2)
	}
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	s := testStore(t)
	empty := &algebra.Select{Input: scanT(), Cond: &algebra.Const{Val: value.NewBool(false)}}
	agg := algebra.NewAgg(empty, nil, []algebra.AggExpr{
		{Func: algebra.AggCount},
		{Func: algebra.AggSum, Arg: intCol(1)},
	}, nil, nil)
	rows := runPlan(t, s, agg)
	if len(rows) != 1 {
		t.Fatalf("scalar agg must emit one row, got %v", rows)
	}
	if rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Errorf("count/sum over empty = %v, want (0, NULL)", rows[0])
	}
}

func TestAggDistinct(t *testing.T) {
	s := testStore(t)
	agg := algebra.NewAgg(scanT(), nil, []algebra.AggExpr{
		{Func: algebra.AggCount, Arg: intCol(0), Distinct: true},
		{Func: algebra.AggSum, Arg: intCol(0), Distinct: true},
	}, nil, nil)
	rows := runPlan(t, s, agg)
	if rows[0][0].I != 3 || rows[0][1].I != 6 { // distinct a: 1,2,3
		t.Errorf("distinct agg = %v", rows[0])
	}
}

func TestAggNullsSkipped(t *testing.T) {
	s := storage.NewStore()
	tab, _ := s.CreateTable(&catalog.TableDef{Name: "n", Columns: []catalog.Column{
		{Name: "x", Type: value.KindInt},
	}})
	tab.Insert(value.Row{value.Null})
	tab.Insert(value.Row{value.NewInt(5)})
	sc := &algebra.Scan{Table: "n", Sch: algebra.Schema{{Name: "x", Type: value.KindInt}}}
	agg := algebra.NewAgg(sc, nil, []algebra.AggExpr{
		{Func: algebra.AggCount},                 // count(*) = 2
		{Func: algebra.AggCount, Arg: intCol(0)}, // count(x) = 1
		{Func: algebra.AggAvg, Arg: intCol(0)},   // avg = 5
	}, nil, nil)
	rows := runPlan(t, s, agg)
	if rows[0][0].I != 2 || rows[0][1].I != 1 || rows[0][2].F != 5 {
		t.Errorf("agg = %v", rows[0])
	}
}

func TestDistinctOp(t *testing.T) {
	s := testStore(t)
	proj := algebra.NewProject(scanT(), []algebra.Expr{intCol(0)}, []string{"a"})
	rows := runPlan(t, s, &algebra.Distinct{Input: proj})
	if len(rows) != 3 {
		t.Errorf("distinct rows = %v", rowsToInts(rows))
	}
}

func TestSetOps(t *testing.T) {
	s := testStore(t)
	ta := algebra.NewProject(scanT(), []algebra.Expr{intCol(0)}, []string{"a"})
	ua := algebra.NewProject(scanU(), []algebra.Expr{intCol(0)}, []string{"a"})
	cases := []struct {
		kind algebra.SetOpKind
		want int
	}{
		{algebra.UnionAll, 7},
		{algebra.UnionDistinct, 4},     // 1,2,3,5
		{algebra.IntersectAll, 2},      // 2,3 (t has two 2s but u has one)
		{algebra.IntersectDistinct, 2}, // 2,3
		{algebra.ExceptAll, 2},         // 1 and the second 2
		{algebra.ExceptDistinct, 1},    // 1
	}
	for _, c := range cases {
		rows := runPlan(t, s, algebra.NewSetOp(c.kind, ta, ua))
		if len(rows) != c.want {
			t.Errorf("%v: rows = %v, want %d", c.kind, rowsToInts(rows), c.want)
		}
	}
}

func TestSortAndLimit(t *testing.T) {
	s := testStore(t)
	sorted := &algebra.Sort{Input: scanT(), Keys: []algebra.SortKey{
		{Expr: intCol(0), Desc: true},
		{Expr: intCol(1)},
	}}
	rows := runPlan(t, s, sorted)
	want := [][]int64{{3, 30}, {2, 20}, {2, 25}, {1, 10}}
	if !equalInts(rowsToInts(rows), want) {
		t.Errorf("sorted = %v", rowsToInts(rows))
	}
	limited := &algebra.Limit{Input: sorted, Count: 2, Offset: 1}
	rows = runPlan(t, s, limited)
	if !equalInts(rowsToInts(rows), want[1:3]) {
		t.Errorf("limited = %v", rowsToInts(rows))
	}
}

func TestSortNullsFirst(t *testing.T) {
	s := storage.NewStore()
	tab, _ := s.CreateTable(&catalog.TableDef{Name: "n", Columns: []catalog.Column{
		{Name: "x", Type: value.KindInt},
	}})
	tab.Insert(value.Row{value.NewInt(2)})
	tab.Insert(value.Row{value.Null})
	tab.Insert(value.Row{value.NewInt(1)})
	sc := &algebra.Scan{Table: "n", Sch: algebra.Schema{{Name: "x", Type: value.KindInt}}}
	rows := runPlan(t, s, &algebra.Sort{Input: sc, Keys: []algebra.SortKey{{Expr: intCol(0)}}})
	if !rows[0][0].IsNull() || rows[1][0].I != 1 || rows[2][0].I != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestValuesOp(t *testing.T) {
	s := storage.NewStore()
	v := &algebra.Values{
		Rows: [][]algebra.Expr{{intConst(1)}, {intConst(2)}},
		Sch:  algebra.Schema{{Name: "x", Type: value.KindInt}},
	}
	rows := runPlan(t, s, v)
	if len(rows) != 2 || rows[1][0].I != 2 {
		t.Errorf("values = %v", rows)
	}
}

func TestLateralJoin(t *testing.T) {
	s := testStore(t)
	// Right side: u filtered by correlation u.a = outer t.a.
	inner := &algebra.Select{
		Input: scanU(),
		Cond: &algebra.Bin{Op: sql.OpEq,
			L: intCol(0),
			R: &algebra.OuterRef{Idx: 0, Typ: value.KindInt}},
	}
	join := algebra.NewJoin(algebra.JoinInner, scanT(), inner, nil)
	join.Lateral = true
	rows := runPlan(t, s, join)
	if len(rows) != 3 {
		t.Errorf("lateral rows = %v", rowsToInts(rows))
	}
	// Lateral left join keeps unmatched probe rows.
	lj := algebra.NewJoin(algebra.JoinLeft, scanT(), inner, nil)
	lj.Lateral = true
	rows = runPlan(t, s, lj)
	if len(rows) != 4 {
		t.Errorf("lateral left rows = %v", rowsToInts(rows))
	}
}

func TestSubplanScalar(t *testing.T) {
	s := testStore(t)
	maxU := algebra.NewAgg(scanU(), nil, []algebra.AggExpr{{Func: algebra.AggMax, Arg: intCol(0)}}, nil, nil)
	plan := &algebra.Select{
		Input: scanT(),
		Cond: &algebra.Bin{Op: sql.OpLt,
			L: intCol(0),
			R: &algebra.Subplan{Mode: algebra.ScalarSubplan, Plan: maxU}},
	}
	rows := runPlan(t, s, plan)
	if len(rows) != 4 { // all t.a < 5
		t.Errorf("rows = %v", rowsToInts(rows))
	}
}

func TestSubplanExistsCorrelated(t *testing.T) {
	s := testStore(t)
	inner := &algebra.Select{
		Input: scanU(),
		Cond: &algebra.Bin{Op: sql.OpEq,
			L: intCol(0),
			R: &algebra.OuterRef{Idx: 0, Typ: value.KindInt}},
	}
	plan := &algebra.Select{
		Input: scanT(),
		Cond:  &algebra.Subplan{Mode: algebra.ExistsSubplan, Plan: inner, Correlated: true},
	}
	rows := runPlan(t, s, plan)
	if len(rows) != 3 {
		t.Errorf("exists rows = %v", rowsToInts(rows))
	}
	// NOT EXISTS
	plan = &algebra.Select{
		Input: scanT(),
		Cond:  &algebra.Subplan{Mode: algebra.ExistsSubplan, Plan: inner, Correlated: true, Neg: true},
	}
	rows = runPlan(t, s, plan)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("not exists rows = %v", rowsToInts(rows))
	}
}

func TestSubplanInWithNulls(t *testing.T) {
	s := storage.NewStore()
	tab, _ := s.CreateTable(&catalog.TableDef{Name: "n", Columns: []catalog.Column{
		{Name: "x", Type: value.KindInt},
	}})
	tab.Insert(value.Row{value.Null})
	tab.Insert(value.Row{value.NewInt(1)})
	sc := &algebra.Scan{Table: "n", Sch: algebra.Schema{{Name: "x", Type: value.KindInt}}}

	// 2 NOT IN (NULL, 1) is NULL → filtered out.
	one := &algebra.Values{Rows: [][]algebra.Expr{{intConst(2)}},
		Sch: algebra.Schema{{Name: "v", Type: value.KindInt}}}
	plan := &algebra.Select{
		Input: one,
		Cond: &algebra.Subplan{Mode: algebra.InSubplan, Plan: sc,
			Needle: intCol(0), Neg: true},
	}
	rows := runPlan(t, s, plan)
	if len(rows) != 0 {
		t.Errorf("NOT IN with NULL must filter: %v", rows)
	}
	// 1 IN (NULL, 1) is TRUE.
	plan = &algebra.Select{
		Input: &algebra.Values{Rows: [][]algebra.Expr{{intConst(1)}},
			Sch: algebra.Schema{{Name: "v", Type: value.KindInt}}},
		Cond: &algebra.Subplan{Mode: algebra.InSubplan, Plan: sc, Needle: intCol(0)},
	}
	rows = runPlan(t, s, plan)
	if len(rows) != 1 {
		t.Errorf("IN must match: %v", rows)
	}
}

func TestRowBudget(t *testing.T) {
	s := testStore(t)
	ctx := NewContext(s)
	ctx.RowBudget = 2
	_, err := Run(ctx, scanT())
	if err == nil || !strings.Contains(err.Error(), "row budget") {
		t.Errorf("err = %v", err)
	}
}
