// Compile-once expression evaluation. Every iterator lowers its expressions
// into closures at Open time, so the per-node type switch, binary-operator
// dispatch and scalar-function lookup of the tree-walking Eval run once per
// query instead of once per row. The closures implement exactly the SQL
// three-valued logic of eval.go; eval.go remains the reference
// implementation (and the path used for one-shot evaluation such as INSERT
// literals).
package executor

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/sql"
	"perm/internal/value"
)

// compiledExpr is an algebra.Expr lowered to a closure: row in, value out,
// under the context's correlation stack.
type compiledExpr func(row value.Row, ctx *Context) (value.Value, error)

// compiledPred is a compiled boolean predicate: TRUE accepts, FALSE and NULL
// reject (SQL WHERE semantics).
type compiledPred func(row value.Row, ctx *Context) (bool, error)

// Compile lowers e into a compiled evaluator. Compilation never fails;
// malformed nodes compile into closures that return the error the interpreter
// would have produced at evaluation time, preserving lazy-error semantics
// (e.g. a CASE arm that never runs never errors).
func Compile(e algebra.Expr) compiledExpr {
	switch x := e.(type) {
	case nil:
		return nil
	case *algebra.Const:
		v := x.Val
		return func(value.Row, *Context) (value.Value, error) { return v, nil }
	case *algebra.Param:
		idx := x.Index
		return func(_ value.Row, ctx *Context) (value.Value, error) {
			if idx < 0 || idx >= len(ctx.Params) {
				return value.Null, fmt.Errorf("executor: parameter $%d not bound (%d bound)", idx+1, len(ctx.Params))
			}
			return ctx.Params[idx], nil
		}
	case *algebra.ColIdx:
		idx := x.Idx
		return func(row value.Row, _ *Context) (value.Value, error) {
			if idx < 0 || idx >= len(row) {
				return value.Null, fmt.Errorf("executor: column index %d out of range (row width %d)", idx, len(row))
			}
			return row[idx], nil
		}
	case *algebra.OuterRef:
		idx := x.Idx
		return func(_ value.Row, ctx *Context) (value.Value, error) {
			outer, err := ctx.outerRow()
			if err != nil {
				return value.Null, err
			}
			if idx < 0 || idx >= len(outer) {
				return value.Null, fmt.Errorf("executor: outer index %d out of range (outer width %d)", idx, len(outer))
			}
			return outer[idx], nil
		}
	case *algebra.Bin:
		return compileBin(x)
	case *algebra.Not:
		in := Compile(x.E)
		return func(row value.Row, ctx *Context) (value.Value, error) {
			v, err := in(row, ctx)
			if err != nil || v.IsNull() {
				return value.Null, err
			}
			return value.NewBool(!v.Bool()), nil
		}
	case *algebra.Neg:
		in := Compile(x.E)
		return func(row value.Row, ctx *Context) (value.Value, error) {
			v, err := in(row, ctx)
			if err != nil {
				return value.Null, err
			}
			return value.Neg(v)
		}
	case *algebra.IsNull:
		in := Compile(x.E)
		not := x.Not
		return func(row value.Row, ctx *Context) (value.Value, error) {
			v, err := in(row, ctx)
			if err != nil {
				return value.Null, err
			}
			return value.NewBool(v.IsNull() != not), nil
		}
	case *algebra.Func:
		return compileFunc(x)
	case *algebra.Case:
		return compileCase(x)
	case *algebra.InList:
		return compileInList(x)
	case *algebra.Like:
		ce, cp := Compile(x.E), Compile(x.Pattern)
		neg := x.Neg
		return func(row value.Row, ctx *Context) (value.Value, error) {
			s, err := ce(row, ctx)
			if err != nil {
				return value.Null, err
			}
			p, err := cp(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if s.IsNull() || p.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(likeMatch(s.String(), p.String()) != neg), nil
		}
	case *algebra.Cast:
		in := Compile(x.E)
		to := x.To
		return func(row value.Row, ctx *Context) (value.Value, error) {
			v, err := in(row, ctx)
			if err != nil {
				return value.Null, err
			}
			return value.Coerce(v, to)
		}
	case *algebra.Subplan:
		// Subplans execute a nested plan; the plan's own iterators compile
		// their expressions when that plan opens, so the closure just defers
		// to the subplan machinery.
		return func(row value.Row, ctx *Context) (value.Value, error) {
			return evalSubplan(x, row, ctx)
		}
	}
	return func(value.Row, *Context) (value.Value, error) {
		return value.Null, fmt.Errorf("executor: cannot evaluate expression %T", e)
	}
}

// compilePred wraps a compiled expression with WHERE truth semantics.
func compilePred(e algebra.Expr) compiledPred {
	ce := Compile(e)
	return func(row value.Row, ctx *Context) (bool, error) {
		v, err := ce(row, ctx)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			return false, nil
		}
		if v.K != value.KindBool {
			return false, fmt.Errorf("executor: predicate evaluated to %s, want boolean", v.K)
		}
		return v.Bool(), nil
	}
}

// CompilePredicate exposes predicate compilation to the engine (UPDATE/DELETE
// WHERE clauses run once-compiled over every heap row). The wrapper also
// polls for cancellation: DML decision loops run in the storage layer, which
// has no iterator machinery to poll for it.
func CompilePredicate(e algebra.Expr) func(row value.Row, ctx *Context) (bool, error) {
	pred := compilePred(e)
	return func(row value.Row, ctx *Context) (bool, error) {
		if err := ctx.tick(); err != nil {
			return false, err
		}
		return pred(row, ctx)
	}
}

// CompileExpr exposes expression compilation to the engine (UPDATE SET
// expressions).
func CompileExpr(e algebra.Expr) func(row value.Row, ctx *Context) (value.Value, error) {
	return Compile(e)
}

func compileBin(x *algebra.Bin) compiledExpr {
	l, r := Compile(x.L), Compile(x.R)
	switch x.Op {
	case sql.OpAnd:
		return func(row value.Row, ctx *Context) (value.Value, error) {
			lv, err := l(row, ctx)
			if err != nil {
				return value.Null, err
			}
			// Short-circuit with 3VL.
			if !lv.IsNull() && !lv.Bool() {
				return value.NewBool(false), nil
			}
			rv, err := r(row, ctx)
			if err != nil {
				return value.Null, err
			}
			switch {
			case !rv.IsNull() && !rv.Bool():
				return value.NewBool(false), nil
			case lv.IsNull() || rv.IsNull():
				return value.Null, nil
			default:
				return value.NewBool(true), nil
			}
		}
	case sql.OpOr:
		return func(row value.Row, ctx *Context) (value.Value, error) {
			lv, err := l(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if !lv.IsNull() && lv.Bool() {
				return value.NewBool(true), nil
			}
			rv, err := r(row, ctx)
			if err != nil {
				return value.Null, err
			}
			switch {
			case !rv.IsNull() && rv.Bool():
				return value.NewBool(true), nil
			case lv.IsNull() || rv.IsNull():
				return value.Null, nil
			default:
				return value.NewBool(false), nil
			}
		}
	case sql.OpNotDistinct:
		return func(row value.Row, ctx *Context) (value.Value, error) {
			lv, rv, err := evalPair(l, r, row, ctx)
			if err != nil {
				return value.Null, err
			}
			return value.NewBool(!value.Distinct(lv, rv)), nil
		}
	case sql.OpAdd:
		return compileArith(l, r, value.Add)
	case sql.OpSub:
		return compileArith(l, r, value.Sub)
	case sql.OpMul:
		return compileArith(l, r, value.Mul)
	case sql.OpDiv:
		return compileArith(l, r, value.Div)
	case sql.OpMod:
		return compileArith(l, r, value.Mod)
	case sql.OpConcat:
		return func(row value.Row, ctx *Context) (value.Value, error) {
			lv, rv, err := evalPair(l, r, row, ctx)
			if err != nil {
				return value.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			return value.NewString(lv.String() + rv.String()), nil
		}
	}
	// Ordering comparisons: resolve the comparison test once.
	var test func(c int) bool
	switch x.Op {
	case sql.OpEq:
		test = func(c int) bool { return c == 0 }
	case sql.OpNeq:
		test = func(c int) bool { return c != 0 }
	case sql.OpLt:
		test = func(c int) bool { return c < 0 }
	case sql.OpLte:
		test = func(c int) bool { return c <= 0 }
	case sql.OpGt:
		test = func(c int) bool { return c > 0 }
	case sql.OpGte:
		test = func(c int) bool { return c >= 0 }
	default:
		op := x.Op
		return func(value.Row, *Context) (value.Value, error) {
			return value.Null, fmt.Errorf("executor: unknown binary operator %v", op)
		}
	}
	return func(row value.Row, ctx *Context) (value.Value, error) {
		lv, rv, err := evalPair(l, r, row, ctx)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() || rv.IsNull() {
			return value.Null, nil
		}
		c, err := value.Compare(lv, rv)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(test(c)), nil
	}
}

func evalPair(l, r compiledExpr, row value.Row, ctx *Context) (value.Value, value.Value, error) {
	lv, err := l(row, ctx)
	if err != nil {
		return value.Null, value.Null, err
	}
	rv, err := r(row, ctx)
	if err != nil {
		return value.Null, value.Null, err
	}
	return lv, rv, nil
}

func compileArith(l, r compiledExpr, op func(a, b value.Value) (value.Value, error)) compiledExpr {
	return func(row value.Row, ctx *Context) (value.Value, error) {
		lv, rv, err := evalPair(l, r, row, ctx)
		if err != nil {
			return value.Null, err
		}
		return op(lv, rv)
	}
}

func compileFunc(x *algebra.Func) compiledExpr {
	name := x.Name
	b, known := lookupBuiltin(name)
	if !known {
		return func(value.Row, *Context) (value.Value, error) {
			return value.Null, fmt.Errorf("executor: unknown function %q", name)
		}
	}
	cargs := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		cargs[i] = Compile(a)
	}
	// The argument scratch is safe to reuse: a closure instance belongs to a
	// single iterator and is never re-entered (nested calls evaluate through
	// their own closures, subplans through freshly built iterator trees).
	scratch := make([]value.Value, len(cargs))
	return func(row value.Row, ctx *Context) (value.Value, error) {
		for i, ca := range cargs {
			v, err := ca(row, ctx)
			if err != nil {
				return value.Null, err
			}
			scratch[i] = v
		}
		if !b.tolerant {
			for _, a := range scratch {
				if a.IsNull() {
					return value.Null, nil
				}
			}
		}
		return b.fn(scratch)
	}
}

func compileCase(x *algebra.Case) compiledExpr {
	type compiledWhen struct {
		cond, result compiledExpr
	}
	whens := make([]compiledWhen, len(x.Whens))
	for i, w := range x.Whens {
		whens[i] = compiledWhen{cond: Compile(w.Cond), result: Compile(w.Result)}
	}
	els := Compile(x.Else)
	return func(row value.Row, ctx *Context) (value.Value, error) {
		for _, w := range whens {
			c, err := w.cond(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if !c.IsNull() && c.Bool() {
				return w.result(row, ctx)
			}
		}
		if els != nil {
			return els(row, ctx)
		}
		return value.Null, nil
	}
}

func compileInList(x *algebra.InList) compiledExpr {
	ce := Compile(x.E)
	clist := make([]compiledExpr, len(x.List))
	for i, le := range x.List {
		clist[i] = Compile(le)
	}
	neg := x.Neg
	return func(row value.Row, ctx *Context) (value.Value, error) {
		needle, err := ce(row, ctx)
		if err != nil {
			return value.Null, err
		}
		if needle.IsNull() {
			return value.Null, nil
		}
		sawNull := false
		for _, le := range clist {
			v, err := le(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() {
				sawNull = true
				continue
			}
			if value.Equal(needle, v) {
				return value.NewBool(!neg), nil
			}
		}
		if sawNull {
			return value.Null, nil
		}
		return value.NewBool(neg), nil
	}
}

// compileAll compiles a slice of expressions.
func compileAll(exprs []algebra.Expr) []compiledExpr {
	out := make([]compiledExpr, len(exprs))
	for i, e := range exprs {
		out[i] = Compile(e)
	}
	return out
}
