package executor

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/value"
)

// aggIter implements hash aggregation with DISTINCT support. With no GROUP BY
// expressions it emits exactly one row (the SQL scalar-aggregate case), even
// over empty input.
//
// Memory behavior (hybrid grace hash aggregation): the fold consumes its
// input streaming — the input is never materialized — and accounts the group
// table (keys, states, DISTINCT seen-sets) against the session budget. Once
// over budget, resident groups keep absorbing their rows in memory, while
// rows of NEW groups route to hash partitions on disk; partitions resolve
// recursively with the same rule. Every group's output row is tagged with
// the group's first input sequence, and the final merge replays groups in
// ascending first-appearance order — byte-identical to the in-memory path.
// (A group's rows split cleanly: a group is either resident from its first
// row, absorbing everything, or never resident, spilling everything.)
type aggIter struct {
	op    *algebra.Agg
	input iterator
	ctx   *Context
	out   []value.Row
	pos   int
	// compiled group-by and aggregate-argument evaluators, built on first
	// Open and kept across re-Opens (lateral/correlated re-execution).
	groupBy  []compiledExpr
	argExprs []compiledExpr
	// spill state
	reg    fileReg
	merger *seqMerger
	fold   *aggFold // current fold, released via Close on error unwinds
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int64
	sum      value.Value
	min      value.Value
	max      value.Value
	distinct map[string]struct{} // non-nil iff DISTINCT
}

// aggGroup is one group: its key values, its aggregate states, and the input
// sequence of its first row (the output-order tag).
type aggGroup struct {
	keys     value.Row
	states   []aggState
	firstSeq uint64
}

// aggGroupFixedBytes approximates the per-group footprint beyond key bytes
// and DISTINCT entries.
const aggGroupFixedBytes = 96

func (a *aggIter) Open(ctx *Context) error {
	a.release()
	a.ctx = ctx
	if err := a.input.Open(ctx); err != nil {
		return err
	}
	defer a.input.Close()

	// Compile group-by and aggregate-argument expressions once for the whole
	// input, instead of tree-walking them per row.
	if a.groupBy == nil {
		a.groupBy = compileAll(a.op.GroupBy)
		a.argExprs = make([]compiledExpr, len(a.op.Aggs))
		for i, ae := range a.op.Aggs {
			if ae.Arg != nil {
				a.argExprs[i] = Compile(ae.Arg)
			}
		}
	}

	fold := a.newFold(0)
	a.fold = fold
	total := 0
	for {
		// The fold emits no rows until every input is consumed, so it polls
		// for cancellation itself (like the join probe loops).
		if err := ctx.tick(); err != nil {
			return err
		}
		row, err := a.input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		total++
		if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
			return fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
		if err := fold.add(uint64(total-1), row); err != nil {
			return err
		}
	}

	if fold.parts == nil {
		// Everything fit: emit the groups in first-appearance order, exactly
		// the historical in-memory path.
		out, err := a.emitGroups(fold)
		if err != nil {
			return err
		}
		// Scalar aggregation over empty input still produces one (empty) group.
		if len(a.op.GroupBy) == 0 && len(out) == 0 {
			g := fold.newGroup(value.Row{}, 0)
			row, err := a.groupRow(g)
			if err != nil {
				return err
			}
			out = append(out, row)
		}
		a.out = out
		a.pos = 0
		fold.acct.releaseAll()
		a.fold = nil
		return nil
	}

	// Spilled: the resident groups become the first output file, then every
	// partition resolves recursively into more, and the merge replays all of
	// them in ascending first-appearance order.
	var outputs []*spill.File
	if err := a.writeGroups(fold, &outputs); err != nil {
		return err
	}
	parts := fold.parts
	fold.acct.releaseAll()
	a.fold = nil
	for _, f := range parts.files {
		if f == nil {
			continue
		}
		if err := a.resolvePartition(f, 1, &outputs); err != nil {
			return err
		}
	}
	m, err := newSeqMerger(ctx, &a.reg, outputs)
	if err != nil {
		return err
	}
	a.merger = m
	return nil
}

// resolvePartition folds one spilled partition, cascading to sub-partitions
// one level deeper when it is itself over budget.
func (a *aggIter) resolvePartition(f *spill.File, level int, outputs *[]*spill.File) error {
	if err := f.StartRead(); err != nil {
		return err
	}
	fold := a.newFold(level)
	a.fold = fold
	for {
		if err := a.ctx.tick(); err != nil {
			return err
		}
		rec, err := f.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		seq, row, err := decodeSeqRow(rec)
		if err != nil {
			return err
		}
		if err := fold.add(seq, row); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := a.writeGroups(fold, outputs); err != nil {
		return err
	}
	parts := fold.parts
	fold.acct.releaseAll()
	a.fold = nil
	if parts == nil {
		return nil
	}
	for _, sf := range parts.files {
		if sf == nil {
			continue
		}
		if err := a.resolvePartition(sf, level+1, outputs); err != nil {
			return err
		}
	}
	return nil
}

// emitGroups finalizes a fold's groups into rows, in insertion order
// (ascending first-appearance).
func (a *aggIter) emitGroups(fold *aggFold) ([]value.Row, error) {
	out := make([]value.Row, 0, len(fold.order))
	for _, g := range fold.order {
		row, err := a.groupRow(g)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// writeGroups finalizes a fold's groups into a fresh sequence-tagged output
// file (skipped when the fold holds none).
func (a *aggIter) writeGroups(fold *aggFold, outputs *[]*spill.File) error {
	if len(fold.order) == 0 {
		return nil
	}
	out, err := a.ctx.Mem.Pool().Create()
	if err != nil {
		return err
	}
	a.reg.add(out)
	*outputs = append(*outputs, out)
	var rec []byte
	for _, g := range fold.order {
		row, err := a.groupRow(g)
		if err != nil {
			return err
		}
		rec = appendSeqRow(rec[:0], g.firstSeq, row)
		if err := out.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// groupRow builds one output row: group keys then finalized aggregates.
func (a *aggIter) groupRow(g *aggGroup) (value.Row, error) {
	row := make(value.Row, 0, len(g.keys)+len(g.states))
	row = append(row, g.keys...)
	for i, ae := range a.op.Aggs {
		v, err := g.states[i].result(ae)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// aggFold is one in-memory aggregation pass: a group table plus (once over
// budget) the partition set rows of non-resident groups route to.
type aggFold struct {
	a      *aggIter
	level  int
	acct   memAcct
	groups map[string]*aggGroup
	order  []*aggGroup
	parts  *partitionSet
	// scratch buffers, reused across rows
	keyVals         value.Row
	keyScratch      []byte
	distinctScratch []byte
	rec             []byte
}

func (a *aggIter) newFold(level int) *aggFold {
	return &aggFold{
		a:       a,
		level:   level,
		acct:    memAcct{ctx: a.ctx},
		groups:  make(map[string]*aggGroup),
		keyVals: make(value.Row, len(a.groupBy)),
	}
}

func (f *aggFold) newGroup(keys value.Row, firstSeq uint64) *aggGroup {
	g := &aggGroup{keys: keys, states: make([]aggState, len(f.a.op.Aggs)), firstSeq: firstSeq}
	for i, ae := range f.a.op.Aggs {
		st := &g.states[i]
		st.sum, st.min, st.max = value.Null, value.Null, value.Null
		if ae.Distinct {
			st.distinct = make(map[string]struct{})
		}
	}
	return g
}

// add folds one (sequence, row) pair: accumulate into a resident group,
// create the group if there is room, or route the row to a partition.
func (f *aggFold) add(seq uint64, row value.Row) error {
	// The group key is built in the scratch buffer and looked up
	// allocation-free; only new groups pay for a map-owned key string.
	f.keyScratch = f.keyScratch[:0]
	for i, ge := range f.a.groupBy {
		v, err := ge(row, f.a.ctx)
		if err != nil {
			return err
		}
		f.keyVals[i] = v
		f.keyScratch = value.AppendFramedKey(f.keyScratch, v)
	}
	g, ok := f.groups[string(f.keyScratch)]
	if !ok {
		if f.parts != nil || (f.acct.spillable() && f.acct.over() && len(f.order) >= minFoldGroups && f.level < maxSpillLevel) {
			if f.parts == nil {
				f.parts = newPartitionSet(f.a.ctx.Mem.Pool(), &f.a.reg, f.level)
			}
			f.rec = appendSeqRow(f.rec[:0], seq, row)
			return f.parts.route(f.keyScratch, f.rec)
		}
		g = f.newGroup(f.keyVals.Clone(), seq)
		f.groups[string(f.keyScratch)] = g
		f.order = append(f.order, g)
		f.acct.grow(int64(len(f.keyScratch)) + rowBytes(g.keys) + aggGroupFixedBytes + int64(len(g.states))*48)
	}
	for i, ae := range f.a.op.Aggs {
		var arg value.Value
		if f.a.argExprs[i] != nil {
			v, err := f.a.argExprs[i](row, f.a.ctx)
			if err != nil {
				return err
			}
			arg = v
		}
		grew, err := g.states[i].accumulate(ae, arg, &f.distinctScratch)
		if err != nil {
			return err
		}
		if grew > 0 {
			f.acct.grow(grew)
		}
	}
	return nil
}

// accumulate folds one input value into the state. scratch is a shared
// reusable buffer for DISTINCT seen-set keys; the returned byte count is the
// DISTINCT set growth to account.
func (s *aggState) accumulate(ae algebra.AggExpr, arg value.Value, scratch *[]byte) (int64, error) {
	if ae.Func == algebra.AggCount && ae.Arg == nil {
		s.count++ // COUNT(*): every row counts
		return 0, nil
	}
	if arg.IsNull() {
		return 0, nil // aggregates skip NULLs
	}
	var grew int64
	if s.distinct != nil {
		*scratch = arg.AppendKey((*scratch)[:0])
		if _, seen := s.distinct[string(*scratch)]; seen {
			return 0, nil
		}
		s.distinct[string(*scratch)] = struct{}{}
		grew = int64(len(*scratch)) + mapEntryBytes
	}
	s.count++
	switch ae.Func {
	case algebra.AggCount:
	case algebra.AggSum, algebra.AggAvg:
		if s.sum.IsNull() {
			s.sum = arg
		} else {
			v, err := value.Add(s.sum, arg)
			if err != nil {
				return grew, err
			}
			s.sum = v
		}
	case algebra.AggMin:
		if s.min.IsNull() {
			s.min = arg
		} else if c, err := value.Compare(arg, s.min); err != nil {
			return grew, err
		} else if c < 0 {
			s.min = arg
		}
	case algebra.AggMax:
		if s.max.IsNull() {
			s.max = arg
		} else if c, err := value.Compare(arg, s.max); err != nil {
			return grew, err
		} else if c > 0 {
			s.max = arg
		}
	default:
		return grew, fmt.Errorf("executor: unknown aggregate %q", ae.Func)
	}
	return grew, nil
}

// result finalizes the aggregate value.
func (s *aggState) result(ae algebra.AggExpr) (value.Value, error) {
	switch ae.Func {
	case algebra.AggCount:
		return value.NewInt(s.count), nil
	case algebra.AggSum:
		return s.sum, nil
	case algebra.AggAvg:
		if s.count == 0 || s.sum.IsNull() {
			return value.Null, nil
		}
		return value.NewFloat(s.sum.Float() / float64(s.count)), nil
	case algebra.AggMin:
		return s.min, nil
	case algebra.AggMax:
		return s.max, nil
	}
	return value.Null, fmt.Errorf("executor: unknown aggregate %q", ae.Func)
}

func (a *aggIter) Next() (value.Row, error) {
	if a.merger != nil {
		return a.merger.Next()
	}
	if a.pos >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, nil
}

// release drops all aggregation state: output, accounting, spill files.
func (a *aggIter) release() {
	a.out = nil
	a.pos = 0
	a.merger.Close()
	a.merger = nil
	a.reg.closeAll()
	if a.fold != nil {
		a.fold.acct.releaseAll()
		a.fold = nil
	}
}

func (a *aggIter) Close() error {
	a.release()
	return nil
}
