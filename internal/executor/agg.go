package executor

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/value"
)

// aggIter implements hash aggregation with DISTINCT support. With no GROUP BY
// expressions it emits exactly one row (the SQL scalar-aggregate case), even
// over empty input.
//
// Memory behavior (hybrid grace hash aggregation): the fold consumes its
// input streaming — the input is never materialized — and accounts the group
// table (keys, states, DISTINCT seen-sets) against the session budget. Once
// over budget, resident groups keep absorbing their rows in memory, while
// rows of NEW groups route to hash partitions on disk; partitions resolve
// recursively with the same rule. Resident state that itself outgrows the
// budget sheds in one of two ways: COUNT(DISTINCT …) seen-sets flush their
// fragment as sorted element runs (merged back with dedup at emission, so even
// one giant set never sits fully resident), and other oversized groups
// serialize whole into the partition files as mergeable partial records, their
// remaining rows following them down by key. Every group's output row is
// tagged with the group's first input sequence, and the final merge replays
// groups in ascending first-appearance order — byte-identical to the
// in-memory path.
type aggIter struct {
	op    *algebra.Agg
	input iterator
	ctx   *Context
	out   []value.Row
	pos   int
	// compiled group-by and aggregate-argument evaluators, built on first
	// Open and kept across re-Opens (lateral/correlated re-execution).
	groupBy  []compiledExpr
	argExprs []compiledExpr
	// spill state
	reg    fileReg
	merger *seqMerger
	fold   *aggFold // current fold, released via Close on error unwinds
}

// aggState accumulates one aggregate within one group.
//
// DISTINCT states keep their seen-set as a resident fragment (canonical key →
// value) plus zero or more sorted runs on disk. While no run exists the
// aggregate folds eagerly, exactly the historical path. Once memory pressure
// flushes the first fragment (flushFragment), the eager values stop being
// meaningful — an element absent from the fragment may still be in a run — and
// finalizeDistinct recomputes them from a deduplicating merge of all runs
// before the group emits.
type aggState struct {
	count    int64
	sum      value.Value
	min      value.Value
	max      value.Value
	distinct map[string]value.Value // non-nil iff DISTINCT
	// fragBytes is the accounted footprint of the resident fragment; runs are
	// the flushed sorted element runs.
	fragBytes int64
	runs      []*spill.File
}

// aggGroup is one group: its key values, its aggregate states, and the input
// sequence of its first row (the output-order tag).
type aggGroup struct {
	keys     value.Row
	states   []aggState
	firstSeq uint64
	// bytes is the group's accounted footprint (key, states, DISTINCT
	// entries), released in one piece when the group is evicted.
	bytes int64
}

// aggGroupFixedBytes approximates the per-group footprint beyond key bytes
// and DISTINCT entries.
const aggGroupFixedBytes = 96

// Aggregation partition files hold two record kinds, discriminated by their
// first byte: raw input rows (sequence-tagged, folded downstream) and partial
// group states (an evicted resident group — counts, sums, extrema and the
// DISTINCT seen-set — merged downstream with the group's remaining rows).
const (
	aggRecRaw     = 0x00
	aggRecPartial = 0x01
)

// appendAggPartial serializes a group's partial state behind the aggRecPartial
// discriminator. DISTINCT fragments serialize as length-prefixed canonical
// element keys, each followed by its source value; set order does not matter
// because the reader folds them back into a set. Groups holding runs are never
// serialized (evictOver only flushes them): a run is a file, and files cannot
// ride inside a partition record.
func appendAggPartial(dst []byte, g *aggGroup) []byte {
	dst = append(dst, aggRecPartial)
	dst = binary.AppendUvarint(dst, g.firstSeq)
	dst = spill.AppendRow(dst, g.keys)
	for i := range g.states {
		st := &g.states[i]
		dst = binary.AppendUvarint(dst, uint64(st.count))
		dst = spill.AppendValue(dst, st.sum)
		dst = spill.AppendValue(dst, st.min)
		dst = spill.AppendValue(dst, st.max)
		if st.distinct == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(st.distinct)))
		for k, v := range st.distinct {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			dst = spill.AppendValue(dst, v)
		}
	}
	return dst
}

// decodeAggPartial reverses appendAggPartial (rec excludes the discriminator
// byte), returning the reconstructed group and its accountable byte footprint
// (sans the map key, which the caller adds).
func decodeAggPartial(rec []byte, nAggs int) (*aggGroup, int64, error) {
	corrupt := fmt.Errorf("executor: corrupt partial aggregate record")
	firstSeq, n := binary.Uvarint(rec)
	if n <= 0 {
		return nil, 0, corrupt
	}
	keys, rest, err := spill.DecodeRow(rec[n:])
	if err != nil {
		return nil, 0, err
	}
	g := &aggGroup{keys: keys, states: make([]aggState, nAggs), firstSeq: firstSeq}
	bytes := rowBytes(keys) + aggGroupFixedBytes + int64(nAggs)*48
	for i := 0; i < nAggs; i++ {
		st := &g.states[i]
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, corrupt
		}
		st.count = int64(count)
		rest = rest[n:]
		if st.sum, rest, err = spill.DecodeValue(rest); err != nil {
			return nil, 0, err
		}
		if st.min, rest, err = spill.DecodeValue(rest); err != nil {
			return nil, 0, err
		}
		if st.max, rest, err = spill.DecodeValue(rest); err != nil {
			return nil, 0, err
		}
		if len(rest) == 0 {
			return nil, 0, corrupt
		}
		hasDistinct := rest[0]
		rest = rest[1:]
		if hasDistinct == 0 {
			continue
		}
		nElems, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, corrupt
		}
		rest = rest[n:]
		st.distinct = make(map[string]value.Value, nElems)
		for j := uint64(0); j < nElems; j++ {
			klen, n := binary.Uvarint(rest)
			if n <= 0 || uint64(len(rest)-n) < klen {
				return nil, 0, corrupt
			}
			k := string(rest[n : n+int(klen)])
			rest = rest[n+int(klen):]
			var v value.Value
			if v, rest, err = spill.DecodeValue(rest); err != nil {
				return nil, 0, err
			}
			st.distinct[k] = v
			st.fragBytes += int64(klen) + mapEntryBytes + valueFixedBytes + int64(len(v.S))
		}
		bytes += st.fragBytes
	}
	return g, bytes, nil
}

func (a *aggIter) Open(ctx *Context) error {
	a.release()
	a.ctx = ctx
	if err := a.input.Open(ctx); err != nil {
		return err
	}
	defer a.input.Close()

	// Compile group-by and aggregate-argument expressions once for the whole
	// input, instead of tree-walking them per row.
	if a.groupBy == nil {
		a.groupBy = compileAll(a.op.GroupBy)
		a.argExprs = make([]compiledExpr, len(a.op.Aggs))
		for i, ae := range a.op.Aggs {
			if ae.Arg != nil {
				a.argExprs[i] = Compile(ae.Arg)
			}
		}
	}

	fold := a.newFold(0)
	a.fold = fold
	total := 0
	for {
		// The fold emits no rows until every input is consumed, so it polls
		// for cancellation itself (like the join probe loops).
		if err := ctx.tick(); err != nil {
			return err
		}
		row, err := a.input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		total++
		if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
			return fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
		if err := fold.add(uint64(total-1), row); err != nil {
			return err
		}
	}

	if fold.parts == nil {
		// Everything fit: emit the groups in first-appearance order, exactly
		// the historical in-memory path.
		out, err := a.emitGroups(fold)
		if err != nil {
			return err
		}
		// Scalar aggregation over empty input still produces one (empty) group.
		if len(a.op.GroupBy) == 0 && len(out) == 0 {
			g := fold.newGroup(value.Row{}, 0)
			row, err := a.groupRow(g)
			if err != nil {
				return err
			}
			out = append(out, row)
		}
		a.out = out
		a.pos = 0
		fold.acct.releaseAll()
		a.fold = nil
		return nil
	}

	// Spilled: the resident groups become the first output file, then every
	// partition resolves recursively into more, and the merge replays all of
	// them in ascending first-appearance order.
	var outputs []*spill.File
	if err := a.writeGroups(fold, &outputs); err != nil {
		return err
	}
	parts := fold.parts
	fold.acct.releaseAll()
	a.fold = nil
	for _, f := range parts.files {
		if f == nil {
			continue
		}
		if err := a.resolvePartition(f, 1, &outputs); err != nil {
			return err
		}
	}
	m, err := newSeqMerger(ctx, &a.reg, outputs)
	if err != nil {
		return err
	}
	a.merger = m
	return nil
}

// resolvePartition folds one spilled partition, cascading to sub-partitions
// one level deeper when it is itself over budget.
func (a *aggIter) resolvePartition(f *spill.File, level int, outputs *[]*spill.File) error {
	if err := f.StartRead(); err != nil {
		return err
	}
	fold := a.newFold(level)
	a.fold = fold
	for {
		if err := a.ctx.tick(); err != nil {
			return err
		}
		rec, err := f.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		if len(rec) == 0 {
			return fmt.Errorf("executor: empty aggregation spill record")
		}
		switch rec[0] {
		case aggRecRaw:
			seq, row, err := decodeSeqRow(rec[1:])
			if err != nil {
				return err
			}
			if err := fold.add(seq, row); err != nil {
				return err
			}
		case aggRecPartial:
			if err := fold.addPartial(rec); err != nil {
				return err
			}
		default:
			return fmt.Errorf("executor: unknown aggregation spill record kind %d", rec[0])
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := a.writeGroups(fold, outputs); err != nil {
		return err
	}
	parts := fold.parts
	fold.acct.releaseAll()
	a.fold = nil
	if parts == nil {
		return nil
	}
	for _, sf := range parts.files {
		if sf == nil {
			continue
		}
		if err := a.resolvePartition(sf, level+1, outputs); err != nil {
			return err
		}
	}
	return nil
}

// emitGroups finalizes a fold's groups into rows, in insertion order
// (ascending first-appearance).
func (a *aggIter) emitGroups(fold *aggFold) ([]value.Row, error) {
	out := make([]value.Row, 0, len(fold.order))
	for _, g := range fold.order {
		row, err := a.groupRow(g)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// writeGroups finalizes a fold's groups into a fresh sequence-tagged output
// file (skipped when the fold holds none). Groups sort by first-appearance
// before writing: insertion order is already ascending for raw-row folds, but
// an admitted partial (evicted upstream later than its first row) can arrive
// behind younger groups, and the merger requires each file ascending.
func (a *aggIter) writeGroups(fold *aggFold, outputs *[]*spill.File) error {
	if len(fold.order) == 0 {
		return nil
	}
	sort.Slice(fold.order, func(i, j int) bool { return fold.order[i].firstSeq < fold.order[j].firstSeq })
	out, err := a.ctx.Mem.Pool().Create()
	if err != nil {
		return err
	}
	a.reg.add(out)
	*outputs = append(*outputs, out)
	var rec []byte
	for _, g := range fold.order {
		row, err := a.groupRow(g)
		if err != nil {
			return err
		}
		rec = appendSeqRow(rec[:0], g.firstSeq, row)
		if err := out.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// groupRow builds one output row: group keys then finalized aggregates.
// DISTINCT states that flushed runs first recompute their values from the
// deduplicating merge.
func (a *aggIter) groupRow(g *aggGroup) (value.Row, error) {
	row := make(value.Row, 0, len(g.keys)+len(g.states))
	row = append(row, g.keys...)
	for i, ae := range a.op.Aggs {
		st := &g.states[i]
		if st.runs != nil {
			if err := st.finalizeDistinct(a.ctx, &a.reg, ae); err != nil {
				return nil, err
			}
		}
		v, err := st.result(ae)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// aggFold is one in-memory aggregation pass: a group table plus (once over
// budget) the partition set rows of non-resident groups route to.
type aggFold struct {
	a      *aggIter
	level  int
	acct   memAcct
	groups map[string]*aggGroup
	order  []*aggGroup
	parts  *partitionSet
	// evictStuck records that the last evictOver scan released nothing;
	// growSinceEvict accrues charged growth since that scan, so the next one
	// only runs once a fragment can plausibly have crossed the run floor.
	evictStuck     bool
	growSinceEvict int64
	// scratch buffers, reused across rows
	keyVals         value.Row
	keyScratch      []byte
	distinctScratch []byte
	rec             []byte
}

func (a *aggIter) newFold(level int) *aggFold {
	return &aggFold{
		a:       a,
		level:   level,
		acct:    memAcct{ctx: a.ctx},
		groups:  make(map[string]*aggGroup),
		keyVals: make(value.Row, len(a.groupBy)),
	}
}

func (f *aggFold) newGroup(keys value.Row, firstSeq uint64) *aggGroup {
	return newAggGroup(f.a.op.Aggs, keys, firstSeq)
}

// newAggGroup initializes a group's states for the given aggregate list; the
// serial fold and the parallel workers share it so partial states start out
// identical.
func newAggGroup(aggs []algebra.AggExpr, keys value.Row, firstSeq uint64) *aggGroup {
	g := &aggGroup{keys: keys, states: make([]aggState, len(aggs)), firstSeq: firstSeq}
	for i, ae := range aggs {
		st := &g.states[i]
		st.sum, st.min, st.max = value.Null, value.Null, value.Null
		if ae.Distinct {
			st.distinct = make(map[string]value.Value)
		}
	}
	return g
}

// add folds one (sequence, row) pair: accumulate into a resident group,
// create the group if there is room, or route the row to a partition.
func (f *aggFold) add(seq uint64, row value.Row) error {
	// The group key is built in the scratch buffer and looked up
	// allocation-free; only new groups pay for a map-owned key string.
	f.keyScratch = f.keyScratch[:0]
	for i, ge := range f.a.groupBy {
		v, err := ge(row, f.a.ctx)
		if err != nil {
			return err
		}
		f.keyVals[i] = v
		f.keyScratch = value.AppendFramedKey(f.keyScratch, v)
	}
	g, ok := f.groups[string(f.keyScratch)]
	if !ok {
		if f.routing() {
			f.rec = append(f.rec[:0], aggRecRaw)
			f.rec = appendSeqRow(f.rec, seq, row)
			return f.parts.route(f.keyScratch, f.rec)
		}
		g = f.newGroup(f.keyVals.Clone(), seq)
		f.groups[string(f.keyScratch)] = g
		f.order = append(f.order, g)
		g.bytes = int64(len(f.keyScratch)) + rowBytes(g.keys) + aggGroupFixedBytes + int64(len(g.states))*48
		f.acct.grow(g.bytes)
		f.growSinceEvict += g.bytes
	}
	for i, ae := range f.a.op.Aggs {
		var arg value.Value
		if f.a.argExprs[i] != nil {
			v, err := f.a.argExprs[i](row, f.a.ctx)
			if err != nil {
				return err
			}
			arg = v
		}
		grew, err := g.states[i].accumulate(ae, arg, &f.distinctScratch)
		if err != nil {
			return err
		}
		if grew > 0 {
			g.bytes += grew
			f.acct.grow(grew)
			f.growSinceEvict += grew
		}
	}
	// Resident state that outgrew the budget (DISTINCT seen-sets) sheds here
	// — the one growth path the new-group gate above cannot bound. When a
	// previous scan found nothing left to shed, rescan only once enough new
	// growth accrued for a fragment to have crossed the run floor.
	if f.acct.spillable() && f.acct.over() {
		if !f.evictStuck || f.growSinceEvict >= minDistinctRunBytes {
			return f.evictOver()
		}
	}
	return nil
}

// routing reports whether rows of non-resident groups currently route to disk
// partitions, creating the partition set on the first routed row.
func (f *aggFold) routing() bool {
	if f.parts != nil {
		return true
	}
	if f.acct.spillable() && f.acct.over() && len(f.order) >= minFoldGroups && f.level < maxSpillLevel {
		f.parts = newPartitionSet(f.a.ctx.Mem.Pool(), &f.a.reg, f.level)
		return true
	}
	return false
}

// addPartial folds one serialized partial group state (rec includes the
// discriminator). The partial either passes through to a deeper partition
// (when the fold is already routing) or becomes a resident group; its
// remaining raw rows always follow it in file order, because an eviction
// precedes every routed row of its group.
func (f *aggFold) addPartial(rec []byte) error {
	g, bytes, err := decodeAggPartial(rec[1:], len(f.a.op.Aggs))
	if err != nil {
		return err
	}
	f.keyScratch = f.keyScratch[:0]
	for _, v := range g.keys {
		f.keyScratch = value.AppendFramedKey(f.keyScratch, v)
	}
	if _, exists := f.groups[string(f.keyScratch)]; exists {
		return fmt.Errorf("executor: internal: partial aggregate state after its group became resident")
	}
	if f.routing() {
		return f.parts.route(f.keyScratch, rec)
	}
	g.bytes = bytes + int64(len(f.keyScratch))
	f.groups[string(f.keyScratch)] = g
	f.order = append(f.order, g)
	f.acct.grow(g.bytes)
	f.growSinceEvict += g.bytes
	if f.acct.spillable() && f.acct.over() {
		if !f.evictStuck || f.growSinceEvict >= minDistinctRunBytes {
			return f.evictOver()
		}
	}
	return nil
}

// evictOver sheds resident footprint — largest groups first — until tracked
// memory is back under 3/4 of the budget (the hysteresis keeps one growing
// seen-set from re-triggering a scan per element). A group carrying a sizable
// DISTINCT fragment flushes it to a sorted run and stays resident: its rows
// keep folding in place, bounding even a single giant seen-set, and the runs
// merge back at emission (finalizeDistinct). Other groups serialize whole into
// the partition files as partial records and leave the table; their later rows
// route to the same partition by key and merge one level deeper. Groups
// already behind runs can only flush — a run file cannot ride inside a
// partition record — and partial eviction needs headroom below maxSpillLevel,
// while flushing works at any level.
func (f *aggFold) evictOver() error {
	m := f.a.ctx.Mem
	target := m.Budget() - m.Budget()/4
	f.growSinceEvict = 0
	if m.Tracked() <= target || len(f.order) == 0 {
		return nil
	}
	cands := append([]*aggGroup(nil), f.order...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].bytes > cands[j].bytes })
	evicted := make(map[*aggGroup]bool)
	released := false
	var key []byte
	for _, g := range cands {
		if m.Tracked() <= target {
			break
		}
		var flushed int64
		hasRuns := false
		for i := range g.states {
			st := &g.states[i]
			if st.runs != nil {
				hasRuns = true
			}
			if st.distinct != nil && st.fragBytes >= minDistinctRunBytes {
				rel, err := st.flushFragment(m.Pool(), &f.a.reg)
				if err != nil {
					return err
				}
				flushed += rel
				hasRuns = true
			}
		}
		if flushed > 0 {
			g.bytes -= flushed
			f.acct.release(flushed)
			released = true
			continue
		}
		if hasRuns || f.level >= maxSpillLevel {
			continue
		}
		if f.parts == nil {
			f.parts = newPartitionSet(m.Pool(), &f.a.reg, f.level)
		}
		key = key[:0]
		for _, v := range g.keys {
			key = value.AppendFramedKey(key, v)
		}
		f.rec = appendAggPartial(f.rec[:0], g)
		if err := f.parts.route(key, f.rec); err != nil {
			return err
		}
		delete(f.groups, string(key))
		evicted[g] = true
		released = true
		f.acct.release(g.bytes)
	}
	if len(evicted) > 0 {
		keep := f.order[:0]
		for _, g := range f.order {
			if !evicted[g] {
				keep = append(keep, g)
			}
		}
		f.order = keep
	}
	f.evictStuck = !released
	return nil
}

// accumulate folds one input value into the state. scratch is a shared
// reusable buffer for DISTINCT seen-set keys; the returned byte count is the
// DISTINCT set growth to account.
func (s *aggState) accumulate(ae algebra.AggExpr, arg value.Value, scratch *[]byte) (int64, error) {
	if ae.Func == algebra.AggCount && ae.Arg == nil {
		s.count++ // COUNT(*): every row counts
		return 0, nil
	}
	if arg.IsNull() {
		return 0, nil // aggregates skip NULLs
	}
	var grew int64
	if s.distinct != nil {
		*scratch = arg.AppendKey((*scratch)[:0])
		if _, seen := s.distinct[string(*scratch)]; seen {
			return 0, nil
		}
		s.distinct[string(*scratch)] = arg
		grew = int64(len(*scratch)) + mapEntryBytes + valueFixedBytes + int64(len(arg.S))
		s.fragBytes += grew
		if s.runs != nil {
			// An element absent from the fragment may still sit in a flushed
			// run, so the eager values below would double-count; they are
			// garbage from the first flush on, and finalizeDistinct recomputes
			// them from the merge before the group emits.
			return grew, nil
		}
	}
	return grew, s.fold(ae, arg)
}

// fold applies one non-NULL value to the running aggregates (any DISTINCT
// bookkeeping already done by the caller).
func (s *aggState) fold(ae algebra.AggExpr, arg value.Value) error {
	s.count++
	switch ae.Func {
	case algebra.AggCount:
	case algebra.AggSum, algebra.AggAvg:
		if s.sum.IsNull() {
			s.sum = arg
		} else {
			v, err := value.Add(s.sum, arg)
			if err != nil {
				return err
			}
			s.sum = v
		}
	case algebra.AggMin:
		if s.min.IsNull() {
			s.min = arg
		} else if c, err := value.Compare(arg, s.min); err != nil {
			return err
		} else if c < 0 {
			s.min = arg
		}
	case algebra.AggMax:
		if s.max.IsNull() {
			s.max = arg
		} else if c, err := value.Compare(arg, s.max); err != nil {
			return err
		} else if c > 0 {
			s.max = arg
		}
	default:
		return fmt.Errorf("executor: unknown aggregate %q", ae.Func)
	}
	return nil
}

// minDistinctRunBytes floors the fragment size worth flushing as a run, so a
// permanently over-budget tracker cannot degrade into per-element run files.
const minDistinctRunBytes = 2048

// flushFragment writes the resident DISTINCT fragment as one sorted run file
// and clears it, returning the released footprint. Canonical keys sort
// bytewise, so every run is internally ascending and duplicate-free;
// duplicates exist only across runs and fall to the merge's dedup.
func (s *aggState) flushFragment(pool *spill.Pool, reg *fileReg) (int64, error) {
	keys := make([]string, 0, len(s.distinct))
	for k := range s.distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f, err := pool.Create()
	if err != nil {
		return 0, err
	}
	reg.add(f)
	var rec []byte
	for _, k := range keys {
		rec = binary.AppendUvarint(rec[:0], uint64(len(k)))
		rec = append(rec, k...)
		rec = spill.AppendValue(rec, s.distinct[k])
		if err := f.Append(rec); err != nil {
			return 0, err
		}
	}
	s.runs = append(s.runs, f)
	released := s.fragBytes
	s.fragBytes = 0
	s.distinct = make(map[string]value.Value)
	return released, nil
}

// distinctCursor walks one sorted DISTINCT run. Keys copy out of the file's
// read buffer (Next aliases it); values copy by construction (DecodeValue).
type distinctCursor struct {
	f   *spill.File
	key []byte
	val value.Value
}

func (c *distinctCursor) advance() (done bool, err error) {
	rec, err := c.f.Next()
	if err != nil {
		return false, err
	}
	if rec == nil {
		return true, c.f.Close()
	}
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return false, fmt.Errorf("executor: corrupt DISTINCT run record")
	}
	c.key = append(c.key[:0], rec[n:n+int(klen)]...)
	c.val, _, err = spill.DecodeValue(rec[n+int(klen):])
	return false, err
}

// distinctHeap orders run cursors by canonical element key. Equal keys carry
// equal values, so ties need no break.
type distinctHeap []*distinctCursor

func (h distinctHeap) Len() int           { return len(h) }
func (h distinctHeap) Less(i, j int) bool { return bytes.Compare(h[i].key, h[j].key) < 0 }
func (h distinctHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distinctHeap) Push(x any)        { *h = append(*h, x.(*distinctCursor)) }
func (h *distinctHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// distinctMerger streams the deduplicating k-way merge of sorted element runs:
// each step surfaces one distinct element and advances every cursor sitting on
// it.
type distinctMerger struct {
	h       distinctHeap
	scratch []byte
}

func openDistinctHeap(files []*spill.File) (*distinctMerger, error) {
	m := &distinctMerger{h: make(distinctHeap, 0, len(files))}
	for _, f := range files {
		if err := f.StartRead(); err != nil {
			return nil, err
		}
		c := &distinctCursor{f: f}
		done, err := c.advance()
		if err != nil {
			return nil, err
		}
		if !done {
			m.h = append(m.h, c)
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *distinctMerger) remaining() int { return len(m.h) }

func (m *distinctMerger) minRecord(dst []byte) []byte {
	c := m.h[0]
	dst = binary.AppendUvarint(dst, uint64(len(c.key)))
	dst = append(dst, c.key...)
	return spill.AppendValue(dst, c.val)
}

func (m *distinctMerger) step() error {
	m.scratch = append(m.scratch[:0], m.h[0].key...)
	for len(m.h) > 0 && bytes.Equal(m.h[0].key, m.scratch) {
		c := m.h[0]
		done, err := c.advance()
		if err != nil {
			return err
		}
		if done {
			heap.Pop(&m.h)
		} else {
			heap.Fix(&m.h, 0)
		}
	}
	return nil
}

// finalizeDistinct recomputes a spilled DISTINCT state's aggregates from the
// deduplicating merge of its runs (plus the final resident fragment, flushed
// as one more run), then drops the runs. States that never flushed keep their
// eager values and never reach here.
func (s *aggState) finalizeDistinct(ctx *Context, reg *fileReg, ae algebra.AggExpr) error {
	if len(s.distinct) > 0 {
		if _, err := s.flushFragment(ctx.Mem.Pool(), reg); err != nil {
			return err
		}
	}
	files, err := reduceToFanIn(ctx.Mem.Pool(), reg, s.runs,
		func(fs []*spill.File) (mergeStream, error) { return openDistinctHeap(fs) }, ctx.tick)
	if err != nil {
		return err
	}
	s.runs = nil
	m, err := openDistinctHeap(files)
	if err != nil {
		return err
	}
	s.count, s.sum, s.min, s.max = 0, value.Null, value.Null, value.Null
	for m.remaining() > 0 {
		if err := ctx.tick(); err != nil {
			return err
		}
		if err := s.fold(ae, m.h[0].val); err != nil {
			return err
		}
		if err := m.step(); err != nil {
			return err
		}
	}
	return nil
}

// result finalizes the aggregate value.
func (s *aggState) result(ae algebra.AggExpr) (value.Value, error) {
	switch ae.Func {
	case algebra.AggCount:
		return value.NewInt(s.count), nil
	case algebra.AggSum:
		return s.sum, nil
	case algebra.AggAvg:
		if s.count == 0 || s.sum.IsNull() {
			return value.Null, nil
		}
		return value.NewFloat(s.sum.Float() / float64(s.count)), nil
	case algebra.AggMin:
		return s.min, nil
	case algebra.AggMax:
		return s.max, nil
	}
	return value.Null, fmt.Errorf("executor: unknown aggregate %q", ae.Func)
}

func (a *aggIter) Next() (value.Row, error) {
	if a.merger != nil {
		return a.merger.Next()
	}
	if a.pos >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, nil
}

// release drops all aggregation state: output, accounting, spill files.
func (a *aggIter) release() {
	a.out = nil
	a.pos = 0
	a.merger.Close()
	a.merger = nil
	a.reg.closeAll()
	if a.fold != nil {
		a.fold.acct.releaseAll()
		a.fold = nil
	}
}

func (a *aggIter) Close() error {
	a.release()
	return nil
}
