package executor

import (
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/value"
)

// aggIter implements hash aggregation with DISTINCT support. With no GROUP BY
// expressions it emits exactly one row (the SQL scalar-aggregate case), even
// over empty input.
type aggIter struct {
	op    *algebra.Agg
	input iterator
	out   []value.Row
	pos   int
	// compiled group-by and aggregate-argument evaluators, built on first
	// Open and kept across re-Opens (lateral/correlated re-execution).
	groupBy  []compiledExpr
	argExprs []compiledExpr
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int64
	sum      value.Value
	min      value.Value
	max      value.Value
	distinct map[string]struct{} // non-nil iff DISTINCT
}

func (a *aggIter) Open(ctx *Context) error {
	if err := a.input.Open(ctx); err != nil {
		return err
	}
	rows, err := drain(a.input, ctx)
	if err != nil {
		return err
	}

	// Compile group-by and aggregate-argument expressions once for the whole
	// input, instead of tree-walking them per row.
	if a.groupBy == nil {
		a.groupBy = compileAll(a.op.GroupBy)
		a.argExprs = make([]compiledExpr, len(a.op.Aggs))
		for i, ae := range a.op.Aggs {
			if ae.Arg != nil {
				a.argExprs[i] = Compile(ae.Arg)
			}
		}
	}
	groupBy, argExprs := a.groupBy, a.argExprs

	type group struct {
		keys   value.Row
		states []aggState
	}
	groups := make(map[string]*group)
	var order []*group

	newGroup := func(keys value.Row) *group {
		g := &group{keys: keys, states: make([]aggState, len(a.op.Aggs))}
		for i, ae := range a.op.Aggs {
			st := &g.states[i]
			st.sum, st.min, st.max = value.Null, value.Null, value.Null
			if ae.Distinct {
				st.distinct = make(map[string]struct{})
			}
		}
		return g
	}

	// keyVals and keyScratch are reused across rows: the group key is built in
	// the scratch buffer, looked up allocation-free, and only cloned into a
	// fresh Row when the group is new. distinctScratch plays the same role for
	// DISTINCT-aggregate argument keys: the seen-set lookup goes through
	// string(scratch) (no allocation), and only first-seen values pay for a
	// map-owned key string.
	keyVals := make(value.Row, len(groupBy))
	var keyScratch, distinctScratch []byte
	for _, row := range rows {
		// The fold emits no rows until every input is consumed, so it polls
		// for cancellation itself (like the join probe loops).
		if err := ctx.tick(); err != nil {
			return err
		}
		keyScratch = keyScratch[:0]
		for i, ge := range groupBy {
			v, err := ge(row, ctx)
			if err != nil {
				return err
			}
			keyVals[i] = v
			keyScratch = value.AppendFramedKey(keyScratch, v)
		}
		g, ok := groups[string(keyScratch)]
		if !ok {
			g = newGroup(keyVals.Clone())
			groups[string(keyScratch)] = g
			order = append(order, g)
		}
		for i, ae := range a.op.Aggs {
			var arg value.Value
			if argExprs[i] != nil {
				v, err := argExprs[i](row, ctx)
				if err != nil {
					return err
				}
				arg = v
			}
			if err := g.states[i].accumulate(ae, arg, &distinctScratch); err != nil {
				return err
			}
		}
	}

	// Scalar aggregation over empty input still produces one (empty) group.
	if len(a.op.GroupBy) == 0 && len(groups) == 0 {
		order = append(order, newGroup(value.Row{}))
	}

	a.out = make([]value.Row, 0, len(order))
	for _, g := range order {
		row := make(value.Row, 0, len(g.keys)+len(g.states))
		row = append(row, g.keys...)
		for i, ae := range a.op.Aggs {
			v, err := g.states[i].result(ae)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

// accumulate folds one input value into the state. scratch is a shared
// reusable buffer for DISTINCT seen-set keys.
func (s *aggState) accumulate(ae algebra.AggExpr, arg value.Value, scratch *[]byte) error {
	if ae.Func == algebra.AggCount && ae.Arg == nil {
		s.count++ // COUNT(*): every row counts
		return nil
	}
	if arg.IsNull() {
		return nil // aggregates skip NULLs
	}
	if s.distinct != nil {
		*scratch = arg.AppendKey((*scratch)[:0])
		if _, seen := s.distinct[string(*scratch)]; seen {
			return nil
		}
		s.distinct[string(*scratch)] = struct{}{}
	}
	s.count++
	switch ae.Func {
	case algebra.AggCount:
	case algebra.AggSum, algebra.AggAvg:
		if s.sum.IsNull() {
			s.sum = arg
		} else {
			v, err := value.Add(s.sum, arg)
			if err != nil {
				return err
			}
			s.sum = v
		}
	case algebra.AggMin:
		if s.min.IsNull() {
			s.min = arg
		} else if c, err := value.Compare(arg, s.min); err != nil {
			return err
		} else if c < 0 {
			s.min = arg
		}
	case algebra.AggMax:
		if s.max.IsNull() {
			s.max = arg
		} else if c, err := value.Compare(arg, s.max); err != nil {
			return err
		} else if c > 0 {
			s.max = arg
		}
	default:
		return fmt.Errorf("executor: unknown aggregate %q", ae.Func)
	}
	return nil
}

// result finalizes the aggregate value.
func (s *aggState) result(ae algebra.AggExpr) (value.Value, error) {
	switch ae.Func {
	case algebra.AggCount:
		return value.NewInt(s.count), nil
	case algebra.AggSum:
		return s.sum, nil
	case algebra.AggAvg:
		if s.count == 0 || s.sum.IsNull() {
			return value.Null, nil
		}
		return value.NewFloat(s.sum.Float() / float64(s.count)), nil
	case algebra.AggMin:
		return s.min, nil
	case algebra.AggMax:
		return s.max, nil
	}
	return value.Null, fmt.Errorf("executor: unknown aggregate %q", ae.Func)
}

func (a *aggIter) Next() (value.Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, nil
}

func (a *aggIter) Close() error {
	a.out = nil
	return nil
}

// sortRowsInPlace orders rows deterministically (used by set operations for
// stable bag arithmetic output).
func sortRowsInPlace(rows []value.Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		return value.CompareRows(rows[i], rows[j]) < 0
	})
}
