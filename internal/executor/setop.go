package executor

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/value"
)

// setOpIter implements UNION/INTERSECT/EXCEPT in both bag (ALL) and set
// (DISTINCT) semantics. UNION ALL streams; UNION DISTINCT streams through
// the spillable dedup filter (see dedup.go); INTERSECT/EXCEPT buffer both
// sides under the session budget and grace-partition past it: both sides
// hash-partition by row key into paired files, each pair resolves with the
// in-memory count-map algorithm (recursing a level deeper when a pair is
// itself over budget), and the sequence-tagged outputs merge back into left
// input order — byte-identical to the in-memory path.
type setOpIter struct {
	op    *algebra.SetOp
	left  iterator
	right iterator
	ctx   *Context

	// streaming state for UNION ALL / UNION DISTINCT
	onRight    bool
	dedup      *dedupState // non-nil for UNION DISTINCT
	streamDone bool
	// materialized output for in-memory INTERSECT/EXCEPT
	out []value.Row
	pos int
	// mode
	streaming bool
	// scratch is the reusable row-key buffer; map lookups via string(scratch)
	// do not allocate.
	scratch []byte
	// spill state
	acct   memAcct
	reg    fileReg
	merger *seqMerger
}

func (s *setOpIter) Open(ctx *Context) error {
	s.release()
	s.ctx = ctx
	s.acct.ctx = ctx
	switch s.op.Kind {
	case algebra.UnionAll, algebra.UnionDistinct:
		s.streaming = true
		if s.op.Kind == algebra.UnionDistinct {
			s.dedup = newDedupState(ctx, &s.reg)
		}
		if err := s.left.Open(ctx); err != nil {
			return err
		}
		return s.right.Open(ctx)
	}
	s.streaming = false
	if err := s.left.Open(ctx); err != nil {
		return err
	}
	defer s.left.Close()

	// Collect both sides, switching to paired hash partitions the moment the
	// buffered total crosses the budget. Left rows carry their input
	// sequence; right rows are bag entries and need none.
	var lbuf, rbuf []value.Row
	var lparts, rparts *partitionSet
	var lseq uint64 // left input sequence, the output-order tag
	var rec []byte
	routeLeft := func(seq uint64, row value.Row) error {
		s.scratch = row.AppendKey(s.scratch[:0])
		rec = appendSeqRow(rec[:0], seq, row)
		return lparts.route(s.scratch, rec)
	}
	routeRight := func(row value.Row) error {
		s.scratch = row.AppendKey(s.scratch[:0])
		rec = spill.AppendRow(rec[:0], row)
		return rparts.route(s.scratch, rec)
	}
	spillOut := func() error {
		lparts = newPartitionSet(ctx.Mem.Pool(), &s.reg, 0)
		rparts = newPartitionSet(ctx.Mem.Pool(), &s.reg, 0)
		for i, row := range lbuf {
			if err := routeLeft(uint64(i), row); err != nil {
				return err
			}
		}
		for _, row := range rbuf {
			if err := routeRight(row); err != nil {
				return err
			}
		}
		lbuf, rbuf = nil, nil
		s.acct.releaseAll()
		return nil
	}
	collect := func(in iterator, isLeft bool) error {
		total := 0
		for {
			if err := ctx.tick(); err != nil {
				return err
			}
			row, err := in.Next()
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
			total++
			if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
				return fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
			}
			if lparts != nil {
				if isLeft {
					err = routeLeft(lseq, row)
					lseq++
				} else {
					err = routeRight(row)
				}
				if err != nil {
					return err
				}
				continue
			}
			if isLeft {
				lbuf = append(lbuf, row)
				lseq++
			} else {
				rbuf = append(rbuf, row)
			}
			s.acct.grow(rowBytes(row))
			if s.acct.spillable() && s.acct.over() && len(lbuf)+len(rbuf) >= minBufferRows {
				if err := spillOut(); err != nil {
					return err
				}
			}
		}
	}
	if err := collect(s.left, true); err != nil {
		return err
	}
	if err := s.right.Open(ctx); err != nil {
		return err
	}
	defer s.right.Close()
	if err := collect(s.right, false); err != nil {
		return err
	}

	if lparts == nil {
		// In-memory path: count the right side, then emit left rows in order.
		algo, err := newSetAlgo(s.op.Kind, len(rbuf))
		if err != nil {
			return err
		}
		for _, r := range rbuf {
			s.scratch = r.AppendKey(s.scratch[:0])
			algo.countRight(s.scratch)
		}
		for _, l := range lbuf {
			s.scratch = l.AppendKey(s.scratch[:0])
			if emit, _ := algo.offerLeft(s.scratch); emit {
				s.out = append(s.out, l)
			}
		}
		s.acct.releaseAll()
		return nil
	}

	var outputs []*spill.File
	for i := 0; i < spillPartitions; i++ {
		if err := s.resolvePair(lparts.files[i], rparts.files[i], 1, &outputs); err != nil {
			return err
		}
	}
	m, err := newSeqMerger(ctx, &s.reg, outputs)
	if err != nil {
		return err
	}
	s.merger = m
	return nil
}

// resolvePair resolves one (left, right) partition pair with the count-map
// algorithm, under the budget: the right side builds the count map, then the
// left side streams through it emitting sequence-tagged survivors. If either
// phase outgrows the budget — the count map while counting, or the DISTINCT
// variants' emitted-set while streaming — the attempt restarts one level
// deeper: both files are still intact (and any partial output is discarded),
// so re-partitioning loses and duplicates nothing.
func (s *setOpIter) resolvePair(lf, rf *spill.File, level int, outputs *[]*spill.File) error {
	if lf == nil {
		// No left rows can survive without a left side; the right file (if
		// any) only ever subtracts.
		if rf != nil {
			return rf.Close()
		}
		return nil
	}
	acct := memAcct{ctx: s.ctx}
	defer acct.releaseAll()

	// restartDeeper abandons this attempt (discarding the partial output
	// file, if any) and re-partitions both files into sub-pairs.
	restartDeeper := func(partialOut *spill.File) error {
		if partialOut != nil {
			partialOut.Close()
			*outputs = (*outputs)[:len(*outputs)-1]
		}
		acct.releaseAll()
		subL := newPartitionSet(s.ctx.Mem.Pool(), &s.reg, level)
		subR := newPartitionSet(s.ctx.Mem.Pool(), &s.reg, level)
		if err := s.repartition(rf, subR, false); err != nil {
			return err
		}
		if err := s.repartition(lf, subL, true); err != nil {
			return err
		}
		for i := 0; i < spillPartitions; i++ {
			if err := s.resolvePair(subL.files[i], subR.files[i], level+1, outputs); err != nil {
				return err
			}
		}
		return nil
	}

	rrows := int64(0)
	if rf != nil {
		rrows = rf.Records()
	}
	algo, err := newSetAlgo(s.op.Kind, int(rrows))
	if err != nil {
		return err
	}
	if rf != nil {
		if err := rf.StartRead(); err != nil {
			return err
		}
		for {
			if err := s.ctx.tick(); err != nil {
				return err
			}
			rec, err := rf.Next()
			if err != nil {
				return err
			}
			if rec == nil {
				break
			}
			row, _, err := spill.DecodeRow(rec)
			if err != nil {
				return err
			}
			s.scratch = row.AppendKey(s.scratch[:0])
			if algo.countRight(s.scratch) {
				acct.grow(int64(len(s.scratch)) + mapEntryBytes)
			}
			if acct.spillable() && acct.over() && len(algo.rcount) >= minFoldGroups && level < maxSpillLevel {
				return restartDeeper(nil)
			}
		}
	}
	if err := lf.StartRead(); err != nil {
		return err
	}
	var out *spill.File
	var outRec []byte
	for {
		if err := s.ctx.tick(); err != nil {
			return err
		}
		rec, err := lf.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		seq, row, err := decodeSeqRow(rec)
		if err != nil {
			return err
		}
		s.scratch = row.AppendKey(s.scratch[:0])
		emit, newEmitted := algo.offerLeft(s.scratch)
		if newEmitted {
			// The DISTINCT variants' emitted-set grows with distinct LEFT
			// keys, which rcount (right keys) does not bound — EXCEPT
			// DISTINCT over a distinct-heavy left side would otherwise grow
			// without limit. Account it and restart deeper when over.
			acct.grow(int64(len(s.scratch)) + mapEntryBytes)
			if acct.spillable() && acct.over() && len(algo.emitted) >= minFoldGroups && level < maxSpillLevel {
				return restartDeeper(out)
			}
		}
		if !emit {
			continue
		}
		if out == nil {
			if out, err = s.ctx.Mem.Pool().Create(); err != nil {
				return err
			}
			s.reg.add(out)
			*outputs = append(*outputs, out)
		}
		outRec = appendSeqRow(outRec[:0], seq, row)
		if err := out.Append(outRec); err != nil {
			return err
		}
	}
	if rf != nil {
		if err := rf.Close(); err != nil {
			return err
		}
	}
	return lf.Close()
}

// repartition streams one file's records into a deeper partition set.
func (s *setOpIter) repartition(f *spill.File, sub *partitionSet, seqTagged bool) error {
	if f == nil {
		return nil
	}
	if err := f.StartRead(); err != nil {
		return err
	}
	for {
		if err := s.ctx.tick(); err != nil {
			return err
		}
		rec, err := f.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			return f.Close()
		}
		var row value.Row
		if seqTagged {
			if _, row, err = decodeSeqRow(rec); err != nil {
				return err
			}
		} else if row, _, err = spill.DecodeRow(rec); err != nil {
			return err
		}
		s.scratch = row.AppendKey(s.scratch[:0])
		if err := sub.route(s.scratch, rec); err != nil {
			return err
		}
	}
}

// setAlgo is the kind-specific count-map arithmetic of INTERSECT/EXCEPT,
// shared by the in-memory and per-partition paths.
type setAlgo struct {
	kind    algebra.SetOpKind
	rcount  map[string]int
	emitted map[string]struct{} // DISTINCT variants only
}

func newSetAlgo(kind algebra.SetOpKind, rhint int) (*setAlgo, error) {
	switch kind {
	case algebra.IntersectAll, algebra.IntersectDistinct, algebra.ExceptAll, algebra.ExceptDistinct:
	default:
		return nil, fmt.Errorf("executor: unknown set operation %v", kind)
	}
	a := &setAlgo{kind: kind, rcount: make(map[string]int, rhint)}
	if kind == algebra.IntersectDistinct || kind == algebra.ExceptDistinct {
		a.emitted = make(map[string]struct{})
	}
	return a, nil
}

// countRight adds one right-side occurrence; it reports whether the key is
// new (for memory accounting).
func (a *setAlgo) countRight(key []byte) bool {
	n, ok := a.rcount[string(key)]
	a.rcount[string(key)] = n + 1
	return !ok
}

// offerLeft decides one left row in input order. newEmitted reports that the
// key was added to the DISTINCT variants' emitted-set (for memory
// accounting; the ALL variants never grow on the left side).
func (a *setAlgo) offerLeft(key []byte) (emit, newEmitted bool) {
	switch a.kind {
	case algebra.IntersectAll:
		// Emit each left row while the right still has a matching occurrence.
		if a.rcount[string(key)] > 0 {
			a.rcount[string(key)]--
			return true, false
		}
		return false, false
	case algebra.IntersectDistinct:
		if _, done := a.emitted[string(key)]; done {
			return false, false
		}
		if a.rcount[string(key)] > 0 {
			a.emitted[string(key)] = struct{}{}
			return true, true
		}
		return false, false
	case algebra.ExceptAll:
		if a.rcount[string(key)] > 0 {
			a.rcount[string(key)]--
			return false, false
		}
		return true, false
	case algebra.ExceptDistinct:
		if _, done := a.emitted[string(key)]; done {
			return false, false
		}
		a.emitted[string(key)] = struct{}{}
		return a.rcount[string(key)] == 0, true
	}
	return false, false
}

func (s *setOpIter) Next() (value.Row, error) {
	if s.streaming {
		for {
			if s.merger != nil {
				return s.merger.Next()
			}
			if s.streamDone {
				return nil, nil
			}
			var src iterator
			if s.onRight {
				src = s.right
			} else {
				src = s.left
			}
			row, err := src.Next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				if !s.onRight {
					s.onRight = true
					continue
				}
				s.streamDone = true
				if s.dedup == nil {
					return nil, nil
				}
				m, err := s.dedup.finish()
				if err != nil {
					return nil, err
				}
				if m == nil {
					return nil, nil
				}
				s.merger = m
				continue
			}
			if s.dedup != nil {
				emit, err := s.dedup.offer(row)
				if err != nil {
					return nil, err
				}
				if !emit {
					continue
				}
			}
			return row, nil
		}
	}
	if s.merger != nil {
		return s.merger.Next()
	}
	if s.pos >= len(s.out) {
		return nil, nil
	}
	row := s.out[s.pos]
	s.pos++
	return row, nil
}

// release drops all set-operation state: buffers, accounting, spill files.
func (s *setOpIter) release() {
	s.out = nil
	s.pos = 0
	s.onRight = false
	s.streamDone = false
	s.merger.Close()
	s.merger = nil
	s.reg.closeAll()
	s.dedup.release()
	s.dedup = nil
	s.acct.releaseAll()
}

func (s *setOpIter) Close() error {
	s.release()
	if s.streaming {
		s.left.Close()
		return s.right.Close()
	}
	return nil
}
