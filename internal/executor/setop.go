package executor

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/value"
)

// setOpIter implements UNION/INTERSECT/EXCEPT in both bag (ALL) and set
// (DISTINCT) semantics. UNION ALL streams; the others materialize the right
// (and for bag arithmetic the left) side into count maps.
type setOpIter struct {
	op    *algebra.SetOp
	left  iterator
	right iterator
	ctx   *Context

	// streaming state for UNION ALL / UNION DISTINCT
	onRight bool
	seen    map[string]struct{}
	// materialized output for INTERSECT/EXCEPT
	out []value.Row
	pos int
	// mode
	streaming bool
	// scratch is the reusable row-key buffer; map lookups via string(scratch)
	// do not allocate.
	scratch []byte
}

func (s *setOpIter) Open(ctx *Context) error {
	s.ctx = ctx
	s.pos = 0
	s.onRight = false
	s.out = nil // Open must fully reset: lateral re-execution re-opens iterators
	s.seen = nil
	switch s.op.Kind {
	case algebra.UnionAll, algebra.UnionDistinct:
		s.streaming = true
		if s.op.Kind == algebra.UnionDistinct {
			s.seen = make(map[string]struct{})
		}
		if err := s.left.Open(ctx); err != nil {
			return err
		}
		return s.right.Open(ctx)
	}
	s.streaming = false
	if err := s.left.Open(ctx); err != nil {
		return err
	}
	lrows, err := drain(s.left, ctx)
	if err != nil {
		return err
	}
	if err := s.right.Open(ctx); err != nil {
		return err
	}
	rrows, err := drain(s.right, ctx)
	if err != nil {
		return err
	}

	rcount := make(map[string]int, len(rrows))
	for _, r := range rrows {
		s.scratch = r.AppendKey(s.scratch[:0])
		rcount[string(s.scratch)]++
	}

	switch s.op.Kind {
	case algebra.IntersectAll:
		// Emit each left row while the right still has a matching occurrence.
		for _, l := range lrows {
			s.scratch = l.AppendKey(s.scratch[:0])
			if rcount[string(s.scratch)] > 0 {
				rcount[string(s.scratch)]--
				s.out = append(s.out, l)
			}
		}
	case algebra.IntersectDistinct:
		emitted := make(map[string]struct{})
		for _, l := range lrows {
			s.scratch = l.AppendKey(s.scratch[:0])
			if _, done := emitted[string(s.scratch)]; done {
				continue
			}
			if rcount[string(s.scratch)] > 0 {
				emitted[string(s.scratch)] = struct{}{}
				s.out = append(s.out, l)
			}
		}
	case algebra.ExceptAll:
		for _, l := range lrows {
			s.scratch = l.AppendKey(s.scratch[:0])
			if rcount[string(s.scratch)] > 0 {
				rcount[string(s.scratch)]--
				continue
			}
			s.out = append(s.out, l)
		}
	case algebra.ExceptDistinct:
		emitted := make(map[string]struct{})
		for _, l := range lrows {
			s.scratch = l.AppendKey(s.scratch[:0])
			if _, done := emitted[string(s.scratch)]; done {
				continue
			}
			emitted[string(s.scratch)] = struct{}{}
			if rcount[string(s.scratch)] == 0 {
				s.out = append(s.out, l)
			}
		}
	default:
		return fmt.Errorf("executor: unknown set operation %v", s.op.Kind)
	}
	return nil
}

func (s *setOpIter) Next() (value.Row, error) {
	if s.streaming {
		for {
			var src iterator
			if s.onRight {
				src = s.right
			} else {
				src = s.left
			}
			row, err := src.Next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				if !s.onRight {
					s.onRight = true
					continue
				}
				return nil, nil
			}
			if s.seen != nil {
				s.scratch = row.AppendKey(s.scratch[:0])
				if _, dup := s.seen[string(s.scratch)]; dup {
					continue
				}
				s.seen[string(s.scratch)] = struct{}{}
			}
			return row, nil
		}
	}
	if s.pos >= len(s.out) {
		return nil, nil
	}
	row := s.out[s.pos]
	s.pos++
	return row, nil
}

func (s *setOpIter) Close() error {
	s.out = nil
	s.seen = nil
	if s.streaming {
		s.left.Close()
		return s.right.Close()
	}
	return nil
}
