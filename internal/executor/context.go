// Package executor implements Perm's Volcano-style query executor: iterators
// over the logical algebra with runtime choices (hash vs. nested-loop joins,
// hash aggregation), SQL three-valued logic, correlated subplan evaluation,
// and the LATERAL joins the provenance rewriter emits for nested subqueries.
package executor

import (
	"errors"
	"fmt"
	"time"

	"perm/internal/algebra"
	"perm/internal/storage"
	"perm/internal/value"
)

// ErrInterrupted is returned when a query is canceled through the context's
// Interrupt channel (per-query timeouts in the network server, client
// cancellation in the in-process driver).
var ErrInterrupted = errors.New("executor: query interrupted")

// Context carries execution state: the storage engine, the stack of outer
// rows for correlated evaluation, and the cache for uncorrelated subplans.
type Context struct {
	Store *storage.Store
	// SnapLSN is the statement's pinned snapshot position: scans materialize
	// exactly the row versions visible at it, however many writers commit
	// while the statement runs. Zero means "the store's current visible
	// LSN" (detached/test contexts that never pinned).
	SnapLSN uint64
	// Txn, when non-nil, is the session's open transaction: scans read
	// through it so the statement sees the transaction's own buffered
	// writes on top of its snapshot.
	Txn *storage.Txn
	// unpin releases the statement's snapshot pin; Release calls it exactly
	// once. Worker clones never carry it — the coordinator owns the pin.
	unpin func()
	// outer is the stack of correlation rows; OuterRef binds to the top.
	outer []value.Row
	// subplanCache memoizes uncorrelated subplan results by plan identity.
	subplanCache map[*algebra.Subplan]*subplanResult
	// subplanIters caches the built (and expression-compiled) iterator tree
	// of each correlated subplan, so per-outer-row re-execution only re-Opens
	// it instead of rebuilding and recompiling. Safe because a subplan's
	// evaluation fully materializes before returning and a plan tree cannot
	// contain itself, so the cached iterator is never re-entered mid-stream.
	subplanIters map[*algebra.Subplan]iterator
	// Mem, when non-nil, is the session's memory governor: blocking
	// operators (sort, aggregation, set operations, DISTINCT) account the
	// bytes they retain against its budget and spill to its temp-file pool
	// once they cross it. Nil means unlimited memory and no spilling.
	Mem *MemTracker
	// Interrupt, when non-nil, cancels the query once it is closed: the
	// materialization loops poll it periodically and unwind with
	// ErrInterrupted. The network server arms it with the connection's kill
	// channel; the in-process driver with the caller's context.
	Interrupt <-chan struct{}
	// DeadlineNs, when non-zero, cancels the query once the wall clock passes
	// it (UnixNano) — the timer-free form of per-query timeouts (one time.Now
	// per poll, no goroutine or channel per statement). Stored as nanoseconds
	// rather than a time.Time to keep the Context inside its allocation size
	// class now that Parallel rides along.
	DeadlineNs int64
	// Parallel is the statement's intra-query parallelism degree, resolved by
	// the session (SET parallelism; 0 resolves to GOMAXPROCS before it gets
	// here). Values <= 1 build the classic single-goroutine iterator tree;
	// higher values let eligible operators fan work out to that many workers.
	Parallel int32
	// Params are the statement's bound `?` arguments, indexed by placeholder
	// ordinal; algebra.Param expressions read them at evaluation time.
	Params []value.Value
	// keyScratch is a reusable buffer for probe-side hash keys (uncorrelated
	// IN-subquery membership tests), so probing does not allocate per row.
	keyScratch []byte
	// owner is the stats node of the operator currently executing, set and
	// restored by statIter around every wrapped Open/Next/Close so memory
	// accounts attribute their bytes to the right operator. Always nil on
	// the uninstrumented path.
	owner *OpStats
	// RowBudget, when positive, bounds the total number of rows any single
	// operator may buffer (protection against runaway provenance joins in
	// interactive use). Zero means unlimited.
	RowBudget int32
	// SubplanHits/SubplanMisses count uncorrelated-subplan memoization: a
	// miss runs the subplan, a hit reuses its materialized result. Reported
	// by EXPLAIN ANALYZE and SET trace at statement level.
	SubplanHits   int32
	SubplanMisses int32
	// ParallelOps counts operators that actually fanned out to workers this
	// statement (serial fallbacks do not count). Incremented only by
	// coordinator Opens on the statement goroutine; the engine reads it for
	// metrics and tracing after execution. ParallelWorkers is the total
	// worker fan-out across those operators.
	ParallelOps     int32
	ParallelWorkers int32
	// ticks counts tick() calls for the row-free cancellation polls.
	ticks uint32
}

// Tick exposes the cancellation poll to engine-level DML loops (UPDATE
// setters, and any other per-row work that bypasses the iterator machinery).
func (c *Context) Tick() error { return c.tick() }

// SetUnpin installs the statement's snapshot-release hook (the engine pins
// a snapshot LSN per statement and must unpin it when the statement's last
// reader is done, or the version vacuum could never advance).
func (c *Context) SetUnpin(f func()) { c.unpin = f }

// Release releases the statement's snapshot pin. Idempotent; safe on
// contexts that never pinned.
func (c *Context) Release() {
	if c.unpin != nil {
		c.unpin()
		c.unpin = nil
	}
}

// TableRows resolves the named table and returns the rows this statement
// sees: the open transaction's read-your-writes view when one is active,
// otherwise the versions visible at the pinned snapshot LSN. Every scan
// must come through here — a scan that read the live table directly would
// observe concurrent writers mid-statement.
func (c *Context) TableRows(name string) ([]value.Row, error) {
	t := c.Store.Table(name)
	if t == nil {
		return nil, fmt.Errorf("executor: table %q does not exist", name)
	}
	if c.Txn != nil {
		return c.Txn.TableRows(t), nil
	}
	return t.SnapshotAt(c.SnapLSN), nil
}

// tick is the cancellation poll for loops that can spin without producing a
// row (filters rejecting everything, join probes that never match): the
// materialization loops only poll per emitted row, so these inner loops call
// tick once per iteration and pay one channel select every interruptMask+1
// calls.
func (c *Context) tick() error {
	c.ticks++
	if c.ticks&interruptMask != 0 {
		return nil
	}
	return c.interrupted()
}

// interrupted reports ErrInterrupted once the Interrupt channel has fired or
// the deadline has passed.
func (c *Context) interrupted() error {
	if c.DeadlineNs != 0 && time.Now().UnixNano() > c.DeadlineNs {
		return ErrInterrupted
	}
	if c.Interrupt == nil {
		return nil
	}
	select {
	case <-c.Interrupt:
		return ErrInterrupted
	default:
		return nil
	}
}

// subplanIter returns the cached iterator tree for a correlated subplan,
// building it on first use.
func (c *Context) subplanIter(sp *algebra.Subplan) (iterator, error) {
	if it, ok := c.subplanIters[sp]; ok {
		return it, nil
	}
	it, err := build(sp.Plan)
	if err != nil {
		return nil, err
	}
	c.subplanIters[sp] = it
	return it, nil
}

type subplanResult struct {
	rows []value.Row
	err  error
	// Membership index for uncorrelated IN subplans, built on first use:
	// keys of the first column's values, plus whether a NULL occurred.
	inSet     map[string]struct{}
	inSawNull bool
}

// membership returns the IN-membership index, building it lazily. Keys are
// built in a scratch buffer and only materialize into map-owned strings for
// values not seen before, so duplicate-heavy inputs index allocation-free.
func (r *subplanResult) membership() (map[string]struct{}, bool) {
	if r.inSet == nil {
		r.inSet = make(map[string]struct{}, len(r.rows))
		var scratch []byte
		for _, row := range r.rows {
			if row[0].IsNull() {
				r.inSawNull = true
				continue
			}
			scratch = row[0].AppendKey(scratch[:0])
			if _, seen := r.inSet[string(scratch)]; !seen {
				r.inSet[string(scratch)] = struct{}{}
			}
		}
	}
	return r.inSet, r.inSawNull
}

// NewContext returns an execution context over the store.
func NewContext(store *storage.Store) *Context {
	return &Context{
		Store:        store,
		subplanCache: make(map[*algebra.Subplan]*subplanResult),
		subplanIters: make(map[*algebra.Subplan]iterator),
	}
}

// SetDeadline arms (or, with the zero time, clears) the context's wall-clock
// deadline.
func (c *Context) SetDeadline(t time.Time) {
	if t.IsZero() {
		c.DeadlineNs = 0
		return
	}
	c.DeadlineNs = t.UnixNano()
}

// workerClone derives a context for one parallel worker goroutine. Workers
// share the statement's immutable state (store, memory governor, interrupt
// channel, deadline, bound parameters) but own everything mutable: scratch
// buffers, tick counters, subplan caches, the outer-row stack, and the stats
// owner — none of which is safe to share across goroutines. Parallel is 1:
// subtrees a worker drives never fan out again.
func (c *Context) workerClone() *Context {
	return &Context{
		Store:        c.Store,
		SnapLSN:      c.SnapLSN,
		Txn:          c.Txn,
		subplanCache: make(map[*algebra.Subplan]*subplanResult),
		subplanIters: make(map[*algebra.Subplan]iterator),
		Mem:          c.Mem,
		Interrupt:    c.Interrupt,
		DeadlineNs:   c.DeadlineNs,
		Parallel:     1,
		Params:       c.Params,
		RowBudget:    c.RowBudget,
	}
}

// absorbWorker folds the statement-level counters a worker clone accumulated
// back into the parent context. Called after the worker goroutine has been
// joined (the caller provides the happens-before edge).
func (c *Context) absorbWorker(w *Context) {
	c.SubplanHits += w.SubplanHits
	c.SubplanMisses += w.SubplanMisses
}

func (c *Context) pushOuter(row value.Row) { c.outer = append(c.outer, row) }
func (c *Context) popOuter()               { c.outer = c.outer[:len(c.outer)-1] }

func (c *Context) outerRow() (value.Row, error) {
	if len(c.outer) == 0 {
		return nil, fmt.Errorf("executor: outer reference outside correlated context")
	}
	return c.outer[len(c.outer)-1], nil
}

// Result is a fully materialized query result.
type Result struct {
	Schema algebra.Schema
	Rows   []value.Row
}

// Run executes the plan to completion — Open + Drain over the streaming
// surface, kept for callers that want the whole result at once.
func Run(ctx *Context, plan algebra.Op) (*Result, error) {
	s, err := Open(ctx, plan)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	rows, err := s.Drain()
	if err != nil {
		return nil, err
	}
	return &Result{Schema: s.Schema(), Rows: rows}, nil
}

// iterator is the Volcano operator interface. Next returns (nil, nil) at end
// of stream.
type iterator interface {
	Open(ctx *Context) error
	Next() (value.Row, error)
	Close() error
}

// build maps a logical operator to its uninstrumented iterator — the
// default, zero-overhead path.
func build(op algebra.Op) (iterator, error) { return buildInto(op, nil) }

// buildInto maps a logical operator to its iterator. With a non-nil parent
// stats node (EXPLAIN ANALYZE, SET trace) every concrete operator gets a
// stats child and a statIter wrapper; pass-through nodes (BaseRel, ProvDone)
// attach their input directly to the parent, exactly as they produce no
// iterator of their own.
func buildInto(op algebra.Op, parent *OpStats) (iterator, error) {
	switch o := op.(type) {
	case *algebra.Scan:
		return wrapStat(&scanIter{op: o}, node(parent, o)), nil
	case *algebra.Values:
		return wrapStat(&valuesIter{op: o}, node(parent, o)), nil
	case *algebra.Project:
		n := node(parent, o)
		in, err := buildInto(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&projectIter{op: o, input: in}, n), nil
	case *algebra.Select:
		n := node(parent, o)
		in, err := buildInto(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&filterIter{op: o, input: in}, n), nil
	case *algebra.BaseRel:
		return buildInto(o.Input, parent)
	case *algebra.ProvDone:
		return buildInto(o.Input, parent)
	case *algebra.Join:
		return buildJoin(o, parent)
	case *algebra.Agg:
		n := node(parent, o)
		in, err := buildInto(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&aggIter{op: o, input: in}, n), nil
	case *algebra.Distinct:
		n := node(parent, o)
		in, err := buildInto(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&distinctIter{input: in}, n), nil
	case *algebra.SetOp:
		n := node(parent, o)
		l, err := buildInto(o.Left, n)
		if err != nil {
			return nil, err
		}
		r, err := buildInto(o.Right, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&setOpIter{op: o, left: l, right: r}, n), nil
	case *algebra.Sort:
		n := node(parent, o)
		in, err := buildInto(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&sortIter{op: o, input: in}, n), nil
	case *algebra.Limit:
		n := node(parent, o)
		in, err := buildInto(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&limitIter{op: o, input: in}, n), nil
	}
	return nil, fmt.Errorf("executor: no iterator for operator %T", op)
}
