// Package executor implements Perm's Volcano-style query executor: iterators
// over the logical algebra with runtime choices (hash vs. nested-loop joins,
// hash aggregation), SQL three-valued logic, correlated subplan evaluation,
// and the LATERAL joins the provenance rewriter emits for nested subqueries.
package executor

import (
	"errors"
	"fmt"
	"time"

	"perm/internal/algebra"
	"perm/internal/storage"
	"perm/internal/value"
)

// ErrInterrupted is returned when a query is canceled through the context's
// Interrupt channel (per-query timeouts in the network server, client
// cancellation in the in-process driver).
var ErrInterrupted = errors.New("executor: query interrupted")

// Context carries execution state: the storage engine, the stack of outer
// rows for correlated evaluation, and the cache for uncorrelated subplans.
type Context struct {
	Store *storage.Store
	// outer is the stack of correlation rows; OuterRef binds to the top.
	outer []value.Row
	// subplanCache memoizes uncorrelated subplan results by plan identity.
	subplanCache map[*algebra.Subplan]*subplanResult
	// subplanIters caches the built (and expression-compiled) iterator tree
	// of each correlated subplan, so per-outer-row re-execution only re-Opens
	// it instead of rebuilding and recompiling. Safe because a subplan's
	// evaluation fully materializes before returning and a plan tree cannot
	// contain itself, so the cached iterator is never re-entered mid-stream.
	subplanIters map[*algebra.Subplan]iterator
	// RowBudget, when positive, bounds the total number of rows any single
	// operator may buffer (protection against runaway provenance joins in
	// interactive use). Zero means unlimited.
	RowBudget int
	// Mem, when non-nil, is the session's memory governor: blocking
	// operators (sort, aggregation, set operations, DISTINCT) account the
	// bytes they retain against its budget and spill to its temp-file pool
	// once they cross it. Nil means unlimited memory and no spilling.
	Mem *MemTracker
	// Interrupt, when non-nil, cancels the query once it is closed: the
	// materialization loops poll it periodically and unwind with
	// ErrInterrupted. The network server arms it with the connection's kill
	// channel; the in-process driver with the caller's context.
	Interrupt <-chan struct{}
	// Deadline, when non-zero, cancels the query once it passes — the
	// timer-free form of per-query timeouts (one time.Now per poll, no
	// goroutine or channel per statement).
	Deadline time.Time
	// Params are the statement's bound `?` arguments, indexed by placeholder
	// ordinal; algebra.Param expressions read them at evaluation time.
	Params []value.Value
	// keyScratch is a reusable buffer for probe-side hash keys (uncorrelated
	// IN-subquery membership tests), so probing does not allocate per row.
	keyScratch []byte
	// ticks counts tick() calls for the row-free cancellation polls.
	ticks uint
}

// Tick exposes the cancellation poll to engine-level DML loops (UPDATE
// setters, and any other per-row work that bypasses the iterator machinery).
func (c *Context) Tick() error { return c.tick() }

// tick is the cancellation poll for loops that can spin without producing a
// row (filters rejecting everything, join probes that never match): the
// materialization loops only poll per emitted row, so these inner loops call
// tick once per iteration and pay one channel select every interruptMask+1
// calls.
func (c *Context) tick() error {
	c.ticks++
	if c.ticks&interruptMask != 0 {
		return nil
	}
	return c.interrupted()
}

// interrupted reports ErrInterrupted once the Interrupt channel has fired or
// the deadline has passed.
func (c *Context) interrupted() error {
	if !c.Deadline.IsZero() && time.Now().After(c.Deadline) {
		return ErrInterrupted
	}
	if c.Interrupt == nil {
		return nil
	}
	select {
	case <-c.Interrupt:
		return ErrInterrupted
	default:
		return nil
	}
}

// subplanIter returns the cached iterator tree for a correlated subplan,
// building it on first use.
func (c *Context) subplanIter(sp *algebra.Subplan) (iterator, error) {
	if it, ok := c.subplanIters[sp]; ok {
		return it, nil
	}
	it, err := build(sp.Plan)
	if err != nil {
		return nil, err
	}
	c.subplanIters[sp] = it
	return it, nil
}

type subplanResult struct {
	rows []value.Row
	err  error
	// Membership index for uncorrelated IN subplans, built on first use:
	// keys of the first column's values, plus whether a NULL occurred.
	inSet     map[string]struct{}
	inSawNull bool
}

// membership returns the IN-membership index, building it lazily. Keys are
// built in a scratch buffer and only materialize into map-owned strings for
// values not seen before, so duplicate-heavy inputs index allocation-free.
func (r *subplanResult) membership() (map[string]struct{}, bool) {
	if r.inSet == nil {
		r.inSet = make(map[string]struct{}, len(r.rows))
		var scratch []byte
		for _, row := range r.rows {
			if row[0].IsNull() {
				r.inSawNull = true
				continue
			}
			scratch = row[0].AppendKey(scratch[:0])
			if _, seen := r.inSet[string(scratch)]; !seen {
				r.inSet[string(scratch)] = struct{}{}
			}
		}
	}
	return r.inSet, r.inSawNull
}

// NewContext returns an execution context over the store.
func NewContext(store *storage.Store) *Context {
	return &Context{
		Store:        store,
		subplanCache: make(map[*algebra.Subplan]*subplanResult),
		subplanIters: make(map[*algebra.Subplan]iterator),
	}
}

func (c *Context) pushOuter(row value.Row) { c.outer = append(c.outer, row) }
func (c *Context) popOuter()               { c.outer = c.outer[:len(c.outer)-1] }

func (c *Context) outerRow() (value.Row, error) {
	if len(c.outer) == 0 {
		return nil, fmt.Errorf("executor: outer reference outside correlated context")
	}
	return c.outer[len(c.outer)-1], nil
}

// Result is a fully materialized query result.
type Result struct {
	Schema algebra.Schema
	Rows   []value.Row
}

// Run executes the plan to completion — Open + Drain over the streaming
// surface, kept for callers that want the whole result at once.
func Run(ctx *Context, plan algebra.Op) (*Result, error) {
	s, err := Open(ctx, plan)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	rows, err := s.Drain()
	if err != nil {
		return nil, err
	}
	return &Result{Schema: s.Schema(), Rows: rows}, nil
}

// iterator is the Volcano operator interface. Next returns (nil, nil) at end
// of stream.
type iterator interface {
	Open(ctx *Context) error
	Next() (value.Row, error)
	Close() error
}

// build maps a logical operator to its iterator.
func build(op algebra.Op) (iterator, error) {
	switch o := op.(type) {
	case *algebra.Scan:
		return &scanIter{op: o}, nil
	case *algebra.Values:
		return &valuesIter{op: o}, nil
	case *algebra.Project:
		in, err := build(o.Input)
		if err != nil {
			return nil, err
		}
		return &projectIter{op: o, input: in}, nil
	case *algebra.Select:
		in, err := build(o.Input)
		if err != nil {
			return nil, err
		}
		return &filterIter{op: o, input: in}, nil
	case *algebra.BaseRel:
		return build(o.Input)
	case *algebra.ProvDone:
		return build(o.Input)
	case *algebra.Join:
		return buildJoin(o)
	case *algebra.Agg:
		in, err := build(o.Input)
		if err != nil {
			return nil, err
		}
		return &aggIter{op: o, input: in}, nil
	case *algebra.Distinct:
		in, err := build(o.Input)
		if err != nil {
			return nil, err
		}
		return &distinctIter{input: in}, nil
	case *algebra.SetOp:
		l, err := build(o.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(o.Right)
		if err != nil {
			return nil, err
		}
		return &setOpIter{op: o, left: l, right: r}, nil
	case *algebra.Sort:
		in, err := build(o.Input)
		if err != nil {
			return nil, err
		}
		return &sortIter{op: o, input: in}, nil
	case *algebra.Limit:
		in, err := build(o.Input)
		if err != nil {
			return nil, err
		}
		return &limitIter{op: o, input: in}, nil
	}
	return nil, fmt.Errorf("executor: no iterator for operator %T", op)
}
