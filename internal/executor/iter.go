package executor

import (
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/spill"
	"perm/internal/value"
)

// --- Scan ----------------------------------------------------------------------

type scanIter struct {
	op   *algebra.Scan
	rows []value.Row
	pos  int
}

func (s *scanIter) Open(ctx *Context) error {
	// The context resolves the rows visible to THIS statement: the versions
	// at its pinned snapshot LSN (or its transaction's read-your-writes
	// view). Steady-state reads alias the table's shared materialized view
	// without copying; the rows themselves are immutable and downstream
	// operators must never write into them.
	rows, err := ctx.TableRows(s.op.Table)
	if err != nil {
		return err
	}
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *scanIter) Next() (value.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *scanIter) Close() error {
	s.rows = nil
	return nil
}

// --- Values --------------------------------------------------------------------

type valuesIter struct {
	op       *algebra.Values
	ctx      *Context
	pos      int
	compiled [][]compiledExpr
}

func (v *valuesIter) Open(ctx *Context) error {
	v.ctx = ctx
	v.pos = 0
	if v.compiled == nil {
		v.compiled = make([][]compiledExpr, len(v.op.Rows))
		for i, exprs := range v.op.Rows {
			v.compiled[i] = compileAll(exprs)
		}
	}
	return nil
}

func (v *valuesIter) Next() (value.Row, error) {
	if v.pos >= len(v.compiled) {
		return nil, nil
	}
	exprs := v.compiled[v.pos]
	v.pos++
	row := make(value.Row, len(exprs))
	for i, ce := range exprs {
		val, err := ce(nil, v.ctx)
		if err != nil {
			return nil, err
		}
		row[i] = val
	}
	return row, nil
}

func (v *valuesIter) Close() error { return nil }

// --- Project -------------------------------------------------------------------

type projectIter struct {
	op    *algebra.Project
	input iterator
	ctx   *Context
	exprs []compiledExpr
}

func (p *projectIter) Open(ctx *Context) error {
	p.ctx = ctx
	if p.exprs == nil {
		p.exprs = compileAll(p.op.Exprs)
	}
	return p.input.Open(ctx)
}

func (p *projectIter) Next() (value.Row, error) {
	in, err := p.input.Next()
	if err != nil || in == nil {
		return nil, err
	}
	out := make(value.Row, len(p.exprs))
	for i, ce := range p.exprs {
		v, err := ce(in, p.ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *projectIter) Close() error { return p.input.Close() }

// --- Filter --------------------------------------------------------------------

type filterIter struct {
	op    *algebra.Select
	input iterator
	ctx   *Context
	pred  compiledPred
}

func (f *filterIter) Open(ctx *Context) error {
	f.ctx = ctx
	if f.pred == nil {
		f.pred = compilePred(f.op.Cond)
	}
	return f.input.Open(ctx)
}

func (f *filterIter) Next() (value.Row, error) {
	for {
		if err := f.ctx.tick(); err != nil {
			return nil, err
		}
		in, err := f.input.Next()
		if err != nil || in == nil {
			return nil, err
		}
		ok, err := f.pred(in, f.ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			return in, nil
		}
	}
}

func (f *filterIter) Close() error { return f.input.Close() }

// --- Sort ----------------------------------------------------------------------

// sortIter is ORDER BY. Under budget it is the classic buffer-and-
// SliceStable; past the session's work_mem it becomes an external merge sort
// (sorted runs spilled through the context's spill pool, k-way merged on
// Next) with identical output, stability included — see extsort.go.
type sortIter struct {
	op       *algebra.Sort
	input    iterator
	rows     []value.Row
	pos      int
	keyExprs []compiledExpr
	acct     memAcct
	reg      fileReg
	merger   *runMerger
}

type sortKeyed struct {
	row  value.Row
	keys value.Row
	seq  int
}

func (s *sortIter) Open(ctx *Context) error {
	s.release() // re-Open (lateral re-execution) must not leak prior state
	s.acct.ctx = ctx
	if err := s.input.Open(ctx); err != nil {
		return err
	}
	defer s.input.Close()
	if s.keyExprs == nil {
		s.keyExprs = make([]compiledExpr, len(s.op.Keys))
		for i, k := range s.op.Keys {
			s.keyExprs[i] = Compile(k.Expr)
		}
	}
	keyExprs := s.keyExprs

	sortBatch := func(all []sortKeyed) {
		sort.SliceStable(all, func(i, j int) bool {
			if c := sortKeyCompare(s.op.Keys, all[i].keys, all[j].keys); c != 0 {
				return c < 0
			}
			return all[i].seq < all[j].seq
		})
	}

	var all []sortKeyed
	var runs []*spill.File
	var batchBytes int64
	var rec []byte
	// flushRun sorts the buffered batch and writes it out as one run.
	flushRun := func() error {
		sortBatch(all)
		f, err := ctx.Mem.Pool().Create()
		if err != nil {
			return err
		}
		s.reg.add(f)
		runs = append(runs, f)
		for _, k := range all {
			rec = runRecord(rec[:0], k.keys, k.row)
			if err := f.Append(rec); err != nil {
				return err
			}
		}
		all = all[:0]
		s.acct.release(batchBytes)
		batchBytes = 0
		return nil
	}

	total := 0
	for {
		if err := ctx.tick(); err != nil {
			return err
		}
		row, err := s.input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		total++
		if ctx.RowBudget > 0 && total > int(ctx.RowBudget) {
			return fmt.Errorf("executor: sort input exceeds row budget of %d rows", ctx.RowBudget)
		}
		keys := make(value.Row, len(keyExprs))
		for i, ke := range keyExprs {
			v, err := ke(row, ctx)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		all = append(all, sortKeyed{row: row, keys: keys, seq: len(all)})
		n := rowBytes(row) + rowBytes(keys)
		s.acct.grow(n)
		batchBytes += n
		// Flush a run only once the local batch is budget-sized (and past the
		// row floor): the shared tracker being over — possibly from other
		// operators' bytes — must not shear this sort's runs down to the row
		// floor, or a tiny budget writes a spill file per few KiB of rows
		// and pays merge passes over all of them.
		if s.acct.spillable() && s.acct.over() && len(all) >= minSortRunRows &&
			batchBytes >= sortRunTargetBytes(ctx.Mem.Budget()) {
			if err := flushRun(); err != nil {
				return err
			}
		}
	}

	if len(runs) == 0 {
		// Everything fit: the classic in-memory path, output aliasing the
		// buffered rows.
		sortBatch(all)
		s.rows = make([]value.Row, len(all))
		for i, k := range all {
			s.rows[i] = k.row
		}
		s.pos = 0
		return nil
	}
	if len(all) > 0 {
		if err := flushRun(); err != nil {
			return err
		}
	}
	m, err := newRunMerger(ctx, &s.reg, s.op.Keys, runs)
	if err != nil {
		return err
	}
	s.merger = m
	return nil
}

func (s *sortIter) Next() (value.Row, error) {
	if s.merger != nil {
		return s.merger.Next()
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// release drops all sort state: buffered rows, accounting, spill files.
func (s *sortIter) release() {
	s.rows = nil
	s.pos = 0
	s.merger.Close()
	s.merger = nil
	s.reg.closeAll()
	s.acct.releaseAll()
}

func (s *sortIter) Close() error {
	s.release()
	return nil
}

// --- Limit ---------------------------------------------------------------------

type limitIter struct {
	op      *algebra.Limit
	input   iterator
	skipped int64
	emitted int64
}

func (l *limitIter) Open(ctx *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open(ctx)
}

func (l *limitIter) Next() (value.Row, error) {
	for l.skipped < l.op.Offset {
		row, err := l.input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		l.skipped++
	}
	if l.op.Count >= 0 && l.emitted >= l.op.Count {
		return nil, nil
	}
	row, err := l.input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.emitted++
	return row, nil
}

func (l *limitIter) Close() error { return l.input.Close() }

// --- Distinct ------------------------------------------------------------------

// distinctIter streams first occurrences while its seen-set fits work_mem;
// past the budget it freezes the seen keys to disk and grace-partitions the
// remainder (see dedupState), producing the same rows in the same order.
type distinctIter struct {
	input  iterator
	dedup  *dedupState
	reg    fileReg
	merger *seqMerger
	done   bool
}

func (d *distinctIter) Open(ctx *Context) error {
	d.release()
	d.dedup = newDedupState(ctx, &d.reg)
	return d.input.Open(ctx)
}

func (d *distinctIter) Next() (value.Row, error) {
	for {
		if d.merger != nil {
			return d.merger.Next()
		}
		if d.done {
			return nil, nil
		}
		row, err := d.input.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			d.done = true
			m, err := d.dedup.finish()
			if err != nil {
				return nil, err
			}
			if m == nil {
				return nil, nil
			}
			d.merger = m
			continue
		}
		emit, err := d.dedup.offer(row)
		if err != nil {
			return nil, err
		}
		if emit {
			return row, nil
		}
	}
}

// release drops all dedup state, accounting, and spill files.
func (d *distinctIter) release() {
	d.merger.Close()
	d.merger = nil
	d.reg.closeAll()
	d.dedup.release()
	d.dedup = nil
	d.done = false
}

func (d *distinctIter) Close() error {
	d.release()
	return d.input.Close()
}

// reopenAndDrain runs a prebuilt iterator tree to completion under the
// current context. Iterators are re-openable: Open fully resets streaming
// state while keeping compiled expressions, which is what lets lateral joins
// and correlated subplans re-execute a subtree per outer row without
// rebuilding (and recompiling) it.
func reopenAndDrain(it iterator, ctx *Context) ([]value.Row, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	return drain(it, ctx)
}

// drain materializes an iterator (caller must have opened it); it closes the
// iterator when done.
func drain(it iterator, ctx *Context) ([]value.Row, error) {
	defer it.Close()
	var rows []value.Row
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
		if ctx.RowBudget > 0 && len(rows) > int(ctx.RowBudget) {
			return nil, fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
		if len(rows)&interruptMask == 0 {
			if err := ctx.interrupted(); err != nil {
				return nil, err
			}
		}
	}
}

// interruptMask spaces the cancellation polls in the materialization loops:
// the channel select runs once every interruptMask+1 rows, which keeps the
// per-row overhead unmeasurable while still canceling runaway provenance
// joins within microseconds.
const interruptMask = 255
