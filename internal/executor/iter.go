package executor

import (
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/value"
)

// --- Scan ----------------------------------------------------------------------

type scanIter struct {
	op   *algebra.Scan
	rows []value.Row
	pos  int
}

func (s *scanIter) Open(ctx *Context) error {
	t := ctx.Store.Table(s.op.Table)
	if t == nil {
		return fmt.Errorf("executor: table %q does not exist", s.op.Table)
	}
	s.rows = t.Snapshot()
	s.pos = 0
	return nil
}

func (s *scanIter) Next() (value.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *scanIter) Close() error {
	s.rows = nil
	return nil
}

// --- Values --------------------------------------------------------------------

type valuesIter struct {
	op  *algebra.Values
	ctx *Context
	pos int
}

func (v *valuesIter) Open(ctx *Context) error {
	v.ctx = ctx
	v.pos = 0
	return nil
}

func (v *valuesIter) Next() (value.Row, error) {
	if v.pos >= len(v.op.Rows) {
		return nil, nil
	}
	exprs := v.op.Rows[v.pos]
	v.pos++
	row := make(value.Row, len(exprs))
	for i, e := range exprs {
		val, err := Eval(e, nil, v.ctx)
		if err != nil {
			return nil, err
		}
		row[i] = val
	}
	return row, nil
}

func (v *valuesIter) Close() error { return nil }

// --- Project -------------------------------------------------------------------

type projectIter struct {
	op    *algebra.Project
	input iterator
	ctx   *Context
}

func (p *projectIter) Open(ctx *Context) error {
	p.ctx = ctx
	return p.input.Open(ctx)
}

func (p *projectIter) Next() (value.Row, error) {
	in, err := p.input.Next()
	if err != nil || in == nil {
		return nil, err
	}
	out := make(value.Row, len(p.op.Exprs))
	for i, e := range p.op.Exprs {
		v, err := Eval(e, in, p.ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *projectIter) Close() error { return p.input.Close() }

// --- Filter --------------------------------------------------------------------

type filterIter struct {
	op    *algebra.Select
	input iterator
	ctx   *Context
}

func (f *filterIter) Open(ctx *Context) error {
	f.ctx = ctx
	return f.input.Open(ctx)
}

func (f *filterIter) Next() (value.Row, error) {
	for {
		in, err := f.input.Next()
		if err != nil || in == nil {
			return nil, err
		}
		ok, err := EvalBool(f.op.Cond, in, f.ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			return in, nil
		}
	}
}

func (f *filterIter) Close() error { return f.input.Close() }

// --- Sort ----------------------------------------------------------------------

type sortIter struct {
	op    *algebra.Sort
	input iterator
	rows  []value.Row
	pos   int
}

func (s *sortIter) Open(ctx *Context) error {
	if err := s.input.Open(ctx); err != nil {
		return err
	}
	defer s.input.Close()
	type keyed struct {
		row  value.Row
		keys value.Row
		seq  int
	}
	var all []keyed
	for {
		row, err := s.input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make(value.Row, len(s.op.Keys))
		for i, k := range s.op.Keys {
			v, err := Eval(k.Expr, row, ctx)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		all = append(all, keyed{row: row, keys: keys, seq: len(all)})
		if ctx.RowBudget > 0 && len(all) > ctx.RowBudget {
			return fmt.Errorf("executor: sort input exceeds row budget of %d rows", ctx.RowBudget)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		for k := range s.op.Keys {
			c := value.CompareTotal(all[i].keys[k], all[j].keys[k])
			if c == 0 {
				continue
			}
			if s.op.Keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return all[i].seq < all[j].seq
	})
	s.rows = make([]value.Row, len(all))
	for i, k := range all {
		s.rows[i] = k.row
	}
	s.pos = 0
	return nil
}

func (s *sortIter) Next() (value.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *sortIter) Close() error {
	s.rows = nil
	return nil
}

// --- Limit ---------------------------------------------------------------------

type limitIter struct {
	op      *algebra.Limit
	input   iterator
	skipped int64
	emitted int64
}

func (l *limitIter) Open(ctx *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open(ctx)
}

func (l *limitIter) Next() (value.Row, error) {
	for l.skipped < l.op.Offset {
		row, err := l.input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		l.skipped++
	}
	if l.op.Count >= 0 && l.emitted >= l.op.Count {
		return nil, nil
	}
	row, err := l.input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.emitted++
	return row, nil
}

func (l *limitIter) Close() error { return l.input.Close() }

// --- Distinct ------------------------------------------------------------------

type distinctIter struct {
	input iterator
	seen  map[string]struct{}
}

func (d *distinctIter) Open(ctx *Context) error {
	d.seen = make(map[string]struct{})
	return d.input.Open(ctx)
}

func (d *distinctIter) Next() (value.Row, error) {
	for {
		row, err := d.input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		k := row.Key()
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, nil
	}
}

func (d *distinctIter) Close() error {
	d.seen = nil
	return d.input.Close()
}

// drain materializes an iterator (caller must have opened it); it closes the
// iterator when done.
func drain(it iterator, ctx *Context) ([]value.Row, error) {
	defer it.Close()
	var rows []value.Row
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
		if ctx.RowBudget > 0 && len(rows) > ctx.RowBudget {
			return nil, fmt.Errorf("executor: intermediate result exceeds row budget of %d rows", ctx.RowBudget)
		}
	}
}
