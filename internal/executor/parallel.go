package executor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"perm/internal/algebra"
	"perm/internal/value"
)

// Intra-query parallelism. Three operators fan work out to ctx.Parallel
// worker goroutines, each running a private iterator tree over a contiguous
// range of the base scan's snapshot:
//
//   - parGatherIter: a Scan/Select/Project chain. Workers stream their range
//     through the chain; the coordinator concatenates worker outputs in worker
//     order, which for contiguous ranges over order-preserving operators is
//     exactly the serial row order.
//   - parJoinIter: a hash or nested-loop join whose probe (left) side is such
//     a chain. The coordinator materializes the build side once; each worker
//     joins its probe range against the shared read-only rows with a private
//     join iterator (its own compiled expressions, hash table, and memory
//     account against the one shared budget). Probe-side-local kinds only
//     (INNER/LEFT/SEMI/ANTI/CROSS): their output factors by probe row, so
//     worker-order concatenation again reproduces the serial order byte for
//     byte.
//   - parAggIter: hash aggregation over such a chain. Workers fold partial
//     group states over their range; the coordinator merges partials in worker
//     order (count/sum/min/max compose exactly), which reproduces the serial
//     first-appearance emission order.
//
// Everything else runs serial, with parallel subtrees grafted underneath
// (buildPar). Workers share the statement's interrupt channel, deadline and
// MemTracker through workerClone contexts; the exchange between a worker and
// the coordinator is a bounded channel of row batches, so a fast worker parks
// after parallelQueueLen batches instead of buffering its whole output. Close
// cancels via the quit channel and joins every worker — no goroutine outlives
// its statement.
//
// Serial fallbacks (always producing identical results, since the parallel
// plans are exact): degree < 2 at Open, a probe table smaller than
// minParallelRows, a row budget (per-worker budgets would not add up to the
// serial semantics), a parallel join whose build side cannot stay resident
// within work_mem, or a parallel aggregation whose group table outgrows it
// (partial-state spilling stays a serial-path feature).

const (
	// parallelBatchRows is the exchange batch size: one channel operation per
	// this many rows.
	parallelBatchRows = 128
	// parallelQueueLen bounds each worker's exchange queue, in batches.
	parallelQueueLen = 8
	// minParallelRows is the smallest scan worth fanning out; below it the
	// goroutine and channel overhead outweighs any per-row work.
	minParallelRows = 2048
)

// errParallelOverflow is the internal signal that a parallel operator's
// memory-bounded state outgrew work_mem and the serial (spilling) path must
// run instead. It never escapes the executor.
var errParallelOverflow = errors.New("executor: parallel operator over memory budget")

// buildPar mirrors buildInto with parallel operators grafted in wherever the
// subtree is eligible. Only statement roots build through it (subplans and
// lateral right sides stay serial); every parallel operator still re-checks
// eligibility at Open and falls back to an identical serial tree.
func buildPar(op algebra.Op, parent *OpStats) (iterator, error) {
	switch o := op.(type) {
	case *algebra.Join:
		if parJoinEligible(o) {
			n := node(parent, o)
			return wrapStat(&parJoinIter{op: o, keys: extractEquiKeys(o)}, n), nil
		}
		if !o.Lateral {
			n := node(parent, o)
			left, err := buildPar(o.Left, n)
			if err != nil {
				return nil, err
			}
			right, err := buildPar(o.Right, n)
			if err != nil {
				return nil, err
			}
			if keys := extractEquiKeys(o); len(keys) > 0 {
				return wrapStat(&hashJoinIter{op: o, left: left, right: right, keys: keys}, n), nil
			}
			return wrapStat(&nlJoinIter{op: o, left: left, right: right}, n), nil
		}
		return buildJoin(o, parent)
	case *algebra.Agg:
		if parAggEligible(o) {
			n := node(parent, o)
			return wrapStat(&parAggIter{op: o}, n), nil
		}
		n := node(parent, o)
		in, err := buildPar(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&aggIter{op: o, input: in}, n), nil
	case *algebra.Scan, *algebra.Select, *algebra.Project:
		if gatherLeaf(op) != nil && chainHasWork(op) {
			n := node(parent, op)
			return wrapStat(&parGatherIter{op: op}, n), nil
		}
		return buildSerialNode(op, parent)
	case *algebra.BaseRel:
		return buildPar(o.Input, parent)
	case *algebra.ProvDone:
		return buildPar(o.Input, parent)
	case *algebra.Distinct:
		n := node(parent, o)
		in, err := buildPar(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&distinctIter{input: in}, n), nil
	case *algebra.Sort:
		n := node(parent, o)
		in, err := buildPar(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&sortIter{op: o, input: in}, n), nil
	case *algebra.Limit:
		n := node(parent, o)
		in, err := buildPar(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&limitIter{op: o, input: in}, n), nil
	case *algebra.SetOp:
		n := node(parent, o)
		l, err := buildPar(o.Left, n)
		if err != nil {
			return nil, err
		}
		r, err := buildPar(o.Right, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&setOpIter{op: o, left: l, right: r}, n), nil
	}
	return buildInto(op, parent)
}

// buildSerialNode builds one serial Scan/Select/Project iterator whose input
// (if any) still goes through buildPar.
func buildSerialNode(op algebra.Op, parent *OpStats) (iterator, error) {
	switch o := op.(type) {
	case *algebra.Scan:
		return wrapStat(&scanIter{op: o}, node(parent, o)), nil
	case *algebra.Select:
		n := node(parent, o)
		in, err := buildPar(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&filterIter{op: o, input: in}, n), nil
	case *algebra.Project:
		n := node(parent, o)
		in, err := buildPar(o.Input, n)
		if err != nil {
			return nil, err
		}
		return wrapStat(&projectIter{op: o, input: in}, n), nil
	}
	return nil, fmt.Errorf("executor: no iterator for operator %T", op)
}

// --- eligibility ----------------------------------------------------------------

// exprParSafe reports whether an expression may run inside a worker: no
// subplans (their caches and any correlation belong to the statement context)
// and no outer references (they bind to the coordinator's correlation stack,
// which workers do not inherit).
func exprParSafe(e algebra.Expr) bool {
	return e == nil || (!algebra.HasSubplan(e) && !algebra.HasOuterRef(e))
}

// gatherLeaf returns the unique Scan leaf of a range-partitionable chain —
// Scan under any stack of parallel-safe Select/Project (and the pass-through
// BaseRel/ProvDone markers) — or nil when the subtree has another shape.
func gatherLeaf(op algebra.Op) *algebra.Scan {
	switch o := op.(type) {
	case *algebra.Scan:
		return o
	case *algebra.Select:
		if !exprParSafe(o.Cond) {
			return nil
		}
		return gatherLeaf(o.Input)
	case *algebra.Project:
		for _, e := range o.Exprs {
			if !exprParSafe(e) {
				return nil
			}
		}
		return gatherLeaf(o.Input)
	case *algebra.BaseRel:
		return gatherLeaf(o.Input)
	case *algebra.ProvDone:
		return gatherLeaf(o.Input)
	}
	return nil
}

// chainHasWork reports whether a gatherable chain does per-row compute. A bare
// scan partitions fine but gains nothing from fan-out: moving rows through the
// exchange costs more than the slice iteration it replaces.
func chainHasWork(op algebra.Op) bool {
	switch o := op.(type) {
	case *algebra.Select, *algebra.Project:
		return true
	case *algebra.BaseRel:
		return chainHasWork(o.Input)
	case *algebra.ProvDone:
		return chainHasWork(o.Input)
	}
	return false
}

// parJoinEligible: non-lateral probe-side-local kinds whose output factors by
// probe row, a parallel-safe condition, and a partitionable probe side.
func parJoinEligible(o *algebra.Join) bool {
	if o.Lateral {
		return false
	}
	switch o.Kind {
	case algebra.JoinInner, algebra.JoinLeft, algebra.JoinSemi, algebra.JoinAnti, algebra.JoinCross:
	default:
		// FULL/RIGHT emit unmatched build rows — shared mutable matched state
		// across workers; stays serial.
		return false
	}
	if !exprParSafe(o.Cond) {
		return false
	}
	return gatherLeaf(o.Left) != nil
}

// parAggEligible: partitionable input, parallel-safe expressions, no DISTINCT
// aggregates (their seen-sets do not merge cheaply across workers), and no
// float SUM/AVG (float addition is not associative, so worker-block fold order
// could diverge from the serial row order in the last bits).
func parAggEligible(o *algebra.Agg) bool {
	for _, e := range o.GroupBy {
		if !exprParSafe(e) {
			return false
		}
	}
	for _, ae := range o.Aggs {
		if ae.Distinct {
			return false
		}
		if ae.Arg != nil {
			if !exprParSafe(ae.Arg) {
				return false
			}
			if (ae.Func == algebra.AggSum || ae.Func == algebra.AggAvg) && ae.Arg.Type() == value.KindFloat {
				return false
			}
		}
	}
	return gatherLeaf(o.Input) != nil
}

// --- worker plumbing ------------------------------------------------------------

// sliceScanIter iterates a pre-resolved row slice: a worker's contiguous
// partition of the coordinator's snapshot, or the shared materialized build
// side of a parallel join.
type sliceScanIter struct {
	rows []value.Row
	pos  int
}

func (s *sliceScanIter) Open(*Context) error { s.pos = 0; return nil }
func (s *sliceScanIter) Next() (value.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}
func (s *sliceScanIter) Close() error { return nil }

// buildGatherWorker builds one worker's private iterator over a gatherable
// chain, with the leaf scan replaced by the worker's partition. Each worker
// compiles its own expressions: compiled closures carry scratch state and are
// not goroutine-safe to share.
func buildGatherWorker(op algebra.Op, part []value.Row) (iterator, error) {
	switch o := op.(type) {
	case *algebra.Scan:
		return &sliceScanIter{rows: part}, nil
	case *algebra.Select:
		in, err := buildGatherWorker(o.Input, part)
		if err != nil {
			return nil, err
		}
		return &filterIter{op: o, input: in}, nil
	case *algebra.Project:
		in, err := buildGatherWorker(o.Input, part)
		if err != nil {
			return nil, err
		}
		return &projectIter{op: o, input: in}, nil
	case *algebra.BaseRel:
		return buildGatherWorker(o.Input, part)
	case *algebra.ProvDone:
		return buildGatherWorker(o.Input, part)
	}
	return nil, fmt.Errorf("executor: operator %T is not range-partitionable", op)
}

// splitRows cuts rows into deg contiguous partitions (the last may be short;
// trailing partitions may be empty when deg > len).
func splitRows(rows []value.Row, deg int) [][]value.Row {
	parts := make([][]value.Row, deg)
	per := (len(rows) + deg - 1) / deg
	for w := 0; w < deg; w++ {
		lo := w * per
		hi := lo + per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		parts[w] = rows[lo:hi]
	}
	return parts
}

// parBatch is one exchange message: a batch of rows, a terminal error, or the
// worker's end-of-stream marker.
type parBatch struct {
	rows []value.Row
	err  error
	done bool
}

// exchange runs worker goroutines that drain private iterators into bounded
// channels, and replays their outputs in worker order. The quit channel
// unblocks workers parked on a full queue; shutdown closes it, joins every
// worker, and folds worker statement counters back into the parent context.
type exchange struct {
	quit    chan struct{}
	wg      sync.WaitGroup
	outs    []chan parBatch
	workers []*Context
	rows    []int64 // per-worker emitted rows, written by the worker, read after join
	ns      []int64 // per-worker wall time, same discipline
	wi      int
	cur     []value.Row
	curIdx  int
	err     error
}

// newExchange preallocates every per-worker slot up front: workers index into
// these slices concurrently, so the backing arrays must never move after the
// first goroutine starts.
func newExchange(deg int) *exchange {
	return &exchange{
		quit:    make(chan struct{}),
		outs:    make([]chan parBatch, 0, deg),
		workers: make([]*Context, 0, deg),
		rows:    make([]int64, deg),
		ns:      make([]int64, deg),
	}
}

// launch starts one worker draining it. The worker owns it entirely,
// including Close on every exit path.
func (e *exchange) launch(parent *Context, it iterator) {
	w := len(e.outs)
	out := make(chan parBatch, parallelQueueLen)
	e.outs = append(e.outs, out)
	wctx := parent.workerClone()
	e.workers = append(e.workers, wctx)
	e.wg.Add(1)
	go e.run(w, it, wctx, out)
}

func (e *exchange) run(w int, it iterator, wctx *Context, out chan<- parBatch) {
	defer e.wg.Done()
	t0 := time.Now()
	defer func() { e.ns[w] = time.Since(t0).Nanoseconds() }()
	send := func(b parBatch) bool {
		select {
		case out <- b:
			return true
		case <-e.quit:
			return false
		}
	}
	if err := it.Open(wctx); err != nil {
		it.Close()
		send(parBatch{err: err})
		return
	}
	batch := make([]value.Row, 0, parallelBatchRows)
	for {
		// Workers poll their own clone's tick: a worker parked in a filter
		// that rejects everything must still observe interrupts and deadlines.
		if err := wctx.tick(); err != nil {
			it.Close()
			send(parBatch{err: err})
			return
		}
		row, err := it.Next()
		if err != nil {
			it.Close()
			send(parBatch{err: err})
			return
		}
		if row == nil {
			break
		}
		e.rows[w]++
		batch = append(batch, row)
		if len(batch) == parallelBatchRows {
			if !send(parBatch{rows: batch}) {
				it.Close()
				return
			}
			batch = make([]value.Row, 0, parallelBatchRows)
		}
	}
	if err := it.Close(); err != nil {
		send(parBatch{err: err})
		return
	}
	if len(batch) > 0 && !send(parBatch{rows: batch}) {
		return
	}
	send(parBatch{done: true})
}

// next returns the next row in worker order, (nil, nil) after the last
// worker's end-of-stream. The first worker error is sticky.
func (e *exchange) next() (value.Row, error) {
	if e.err != nil {
		return nil, e.err
	}
	for {
		if e.curIdx < len(e.cur) {
			row := e.cur[e.curIdx]
			e.curIdx++
			return row, nil
		}
		if e.wi >= len(e.outs) {
			return nil, nil
		}
		b := <-e.outs[e.wi]
		switch {
		case b.err != nil:
			e.err = b.err
			return nil, b.err
		case b.done:
			e.wi++
		default:
			e.cur, e.curIdx = b.rows, 0
		}
	}
}

// shutdown cancels outstanding workers, joins them all, and absorbs their
// counters. Idempotent via the caller niling its reference.
func (e *exchange) shutdown(parent *Context) {
	close(e.quit)
	e.wg.Wait()
	for _, w := range e.workers {
		parent.absorbWorker(w)
	}
	if e.err == nil {
		e.err = errors.New("executor: exchange closed")
	}
}

// recordWorkers publishes the per-worker rollup on the operator's stats node.
// Callers invoke it only after the exchange's workers are joined.
func recordWorkers(n *OpStats, deg int, rows, ns []int64) {
	if n == nil {
		return
	}
	n.Workers = deg
	n.WorkerRows = append([]int64(nil), rows...)
	n.WorkerNs = append([]int64(nil), ns...)
}

// parDegree resolves the fan-out for one Open: the session degree, bounded by
// the partition count that still gives every worker at least one row.
func parDegree(ctx *Context, nRows int) int {
	d := int(ctx.Parallel)
	if d > nRows {
		d = nRows
	}
	return d
}

// parSnapshot resolves the chain's base table and takes the one snapshot every
// partition is cut from (workers must never re-snapshot: a concurrent writer
// could swap the live slice between looks).
func parSnapshot(ctx *Context, leaf *algebra.Scan) ([]value.Row, error) {
	t := ctx.Store.Table(leaf.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: table %q does not exist", leaf.Table)
	}
	return t.Snapshot(), nil
}

// --- parallel gather (scan/filter/project chains) --------------------------------

type parGatherIter struct {
	op     algebra.Op
	ctx    *Context
	ex     *exchange
	serial iterator // built lazily, reused across serial-fallback re-Opens
	inPar  bool
}

func (g *parGatherIter) Open(ctx *Context) error {
	g.release()
	g.ctx = ctx
	leaf := gatherLeaf(g.op)
	var rows []value.Row
	deg := 0
	if int(ctx.Parallel) > 1 && ctx.RowBudget == 0 {
		var err error
		if rows, err = parSnapshot(ctx, leaf); err != nil {
			return err
		}
		deg = parDegree(ctx, len(rows))
	}
	if deg < 2 || len(rows) < minParallelRows {
		return g.openSerial(ctx)
	}
	g.inPar = true
	g.ex = newExchange(deg)
	for _, part := range splitRows(rows, deg) {
		it, err := buildGatherWorker(g.op, part)
		if err != nil {
			g.release()
			return err
		}
		g.ex.launch(ctx, it)
	}
	ctx.ParallelOps++
	ctx.ParallelWorkers += int32(deg)
	return nil
}

func (g *parGatherIter) openSerial(ctx *Context) error {
	if g.serial == nil {
		it, err := build(g.op)
		if err != nil {
			return err
		}
		g.serial = it
	}
	return g.serial.Open(ctx)
}

func (g *parGatherIter) Next() (value.Row, error) {
	if !g.inPar {
		if g.serial == nil {
			return nil, nil
		}
		return g.serial.Next()
	}
	return g.ex.next()
}

func (g *parGatherIter) release() {
	if g.ex != nil {
		// Join the workers before reading their rows/ns counters —
		// recordWorkers' contract; a worker's deferred timing write races
		// with the copy otherwise.
		g.ex.shutdown(g.ctx)
		if g.ctx != nil && g.ctx.owner != nil {
			recordWorkers(g.ctx.owner, len(g.ex.outs), g.ex.rows, g.ex.ns)
		}
		g.ex = nil
	}
	g.inPar = false
}

func (g *parGatherIter) Close() error {
	g.release()
	if g.serial != nil {
		return g.serial.Close()
	}
	return nil
}

// --- parallel partition-wise join ------------------------------------------------

type parJoinIter struct {
	op     *algebra.Join
	keys   []equiKey
	ctx    *Context
	ex     *exchange
	acct   memAcct // the coordinator's shared materialized build side
	serial iterator
	inPar  bool
}

func (j *parJoinIter) Open(ctx *Context) error {
	j.release()
	j.ctx = ctx
	j.acct.ctx = ctx
	var rows []value.Row
	deg := 0
	if int(ctx.Parallel) > 1 && ctx.RowBudget == 0 {
		var err error
		if rows, err = parSnapshot(ctx, gatherLeaf(j.op.Left)); err != nil {
			return err
		}
		deg = parDegree(ctx, len(rows))
	}
	if deg < 2 || len(rows) < minParallelRows {
		return j.openSerial(ctx)
	}
	// Materialize the build side once, charged against work_mem. If it cannot
	// stay resident the serial join runs instead: its grace machinery spills,
	// which a table shared read-only across workers cannot.
	shared, err := j.materializeRight(ctx)
	if err == errParallelOverflow {
		j.acct.releaseAll()
		return j.openSerial(ctx)
	}
	if err != nil {
		return err
	}
	j.inPar = true
	j.ex = newExchange(deg)
	for _, part := range splitRows(rows, deg) {
		left, err := buildGatherWorker(j.op.Left, part)
		if err != nil {
			j.release()
			return err
		}
		right := &sliceScanIter{rows: shared}
		var wit iterator
		if len(j.keys) > 0 {
			wit = &hashJoinIter{op: j.op, left: left, right: right, keys: j.keys}
		} else {
			wit = &nlJoinIter{op: j.op, left: left, right: right}
		}
		j.ex.launch(ctx, wit)
	}
	if ctx.owner != nil {
		ctx.owner.BuildRows = int64(len(shared))
	}
	ctx.ParallelOps++
	ctx.ParallelWorkers += int32(deg)
	return nil
}

// materializeRight drains the build side into memory under the coordinator's
// account, failing with errParallelOverflow the moment it crosses the budget.
func (j *parJoinIter) materializeRight(ctx *Context) ([]value.Row, error) {
	right, err := build(j.op.Right)
	if err != nil {
		return nil, err
	}
	if err := right.Open(ctx); err != nil {
		right.Close()
		return nil, err
	}
	defer right.Close()
	var rows []value.Row
	for {
		if err := ctx.tick(); err != nil {
			return nil, err
		}
		row, err := right.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
		j.acct.grow(rowBytes(row) + rowSliceBytes)
		if j.acct.spillable() && j.acct.over() {
			return nil, errParallelOverflow
		}
	}
}

func (j *parJoinIter) openSerial(ctx *Context) error {
	if j.serial == nil {
		it, err := buildJoin(j.op, nil)
		if err != nil {
			return err
		}
		j.serial = it
	}
	return j.serial.Open(ctx)
}

func (j *parJoinIter) Next() (value.Row, error) {
	if !j.inPar {
		if j.serial == nil {
			return nil, nil
		}
		return j.serial.Next()
	}
	return j.ex.next()
}

func (j *parJoinIter) release() {
	if j.ex != nil {
		// Join the workers before reading their rows/ns counters —
		// recordWorkers' contract; a worker's deferred timing write races
		// with the copy otherwise.
		j.ex.shutdown(j.ctx)
		if j.ctx != nil && j.ctx.owner != nil {
			recordWorkers(j.ctx.owner, len(j.ex.outs), j.ex.rows, j.ex.ns)
		}
		j.ex = nil
	}
	j.acct.releaseAll()
	j.inPar = false
}

func (j *parJoinIter) Close() error {
	j.release()
	if j.serial != nil {
		return j.serial.Close()
	}
	return nil
}

// --- parallel partition-wise aggregation -----------------------------------------

type parAggIter struct {
	op     *algebra.Agg
	ctx    *Context
	acct   memAcct
	out    []value.Row
	pos    int
	serial iterator
	inPar  bool
}

// parAggWorker is one worker's partial fold: groups in local first-appearance
// order, plus the rollup the coordinator publishes after joining it.
type parAggWorker struct {
	groups map[string]*aggGroup
	order  []*aggGroup
	keys   []string // framed group key per order entry
	rows   int64
	ns     int64
	err    error
}

func (a *parAggIter) Open(ctx *Context) error {
	a.release()
	a.ctx = ctx
	a.acct.ctx = ctx
	var rows []value.Row
	deg := 0
	if int(ctx.Parallel) > 1 && ctx.RowBudget == 0 {
		var err error
		if rows, err = parSnapshot(ctx, gatherLeaf(a.op.Input)); err != nil {
			return err
		}
		deg = parDegree(ctx, len(rows))
	}
	if deg < 2 || len(rows) < minParallelRows {
		return a.openSerial(ctx)
	}
	parts := splitRows(rows, deg)
	workers := make([]*parAggWorker, deg)
	wctxs := make([]*Context, deg)
	var wg sync.WaitGroup
	for w := 0; w < deg; w++ {
		workers[w] = &parAggWorker{groups: make(map[string]*aggGroup)}
		wctxs[w] = ctx.workerClone()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a.foldPartition(workers[w], wctxs[w], parts[w])
		}(w)
	}
	wg.Wait()
	for _, w := range wctxs {
		ctx.absorbWorker(w)
	}
	if n := ctx.owner; n != nil {
		n.Workers = deg
		n.WorkerRows = make([]int64, deg)
		n.WorkerNs = make([]int64, deg)
		for w, pw := range workers {
			n.WorkerRows[w] = pw.rows
			n.WorkerNs[w] = pw.ns
		}
	}
	out, err := a.mergeWorkers(workers)
	if err == errParallelOverflow {
		a.acct.releaseAll()
		return a.openSerial(ctx)
	}
	if err != nil {
		return err
	}
	a.inPar = true
	a.out = out
	a.pos = 0
	a.acct.releaseAll()
	ctx.ParallelOps++
	ctx.ParallelWorkers += int32(deg)
	return nil
}

// foldPartition folds one partition into partial groups. It never spills:
// crossing the budget aborts with errParallelOverflow and the serial path
// (which does spill) takes over.
func (a *parAggIter) foldPartition(w *parAggWorker, wctx *Context, part []value.Row) {
	t0 := time.Now()
	defer func() { w.ns = time.Since(t0).Nanoseconds() }()
	acct := memAcct{ctx: wctx}
	defer acct.releaseAll()
	it, err := buildGatherWorker(a.op.Input, part)
	if err != nil {
		w.err = err
		return
	}
	groupBy := compileAll(a.op.GroupBy)
	argExprs := make([]compiledExpr, len(a.op.Aggs))
	for i, ae := range a.op.Aggs {
		if ae.Arg != nil {
			argExprs[i] = Compile(ae.Arg)
		}
	}
	if err := it.Open(wctx); err != nil {
		it.Close()
		w.err = err
		return
	}
	defer it.Close()
	keyVals := make(value.Row, len(groupBy))
	var keyScratch, distinctScratch []byte
	var seq uint64
	for {
		if err := wctx.tick(); err != nil {
			w.err = err
			return
		}
		row, err := it.Next()
		if err != nil {
			w.err = err
			return
		}
		if row == nil {
			return
		}
		w.rows++
		keyScratch = keyScratch[:0]
		for i, ge := range groupBy {
			v, err := ge(row, wctx)
			if err != nil {
				w.err = err
				return
			}
			keyVals[i] = v
			keyScratch = value.AppendFramedKey(keyScratch, v)
		}
		g, ok := w.groups[string(keyScratch)]
		if !ok {
			g = newAggGroup(a.op.Aggs, keyVals.Clone(), seq)
			w.groups[string(keyScratch)] = g
			w.order = append(w.order, g)
			w.keys = append(w.keys, string(keyScratch))
			acct.grow(int64(len(keyScratch)) + rowBytes(g.keys) + aggGroupFixedBytes + int64(len(g.states))*48)
		}
		seq++
		for i, ae := range a.op.Aggs {
			var arg value.Value
			if argExprs[i] != nil {
				v, err := argExprs[i](row, wctx)
				if err != nil {
					w.err = err
					return
				}
				arg = v
			}
			if _, err := g.states[i].accumulate(ae, arg, &distinctScratch); err != nil {
				w.err = err
				return
			}
		}
		if acct.spillable() && acct.over() {
			w.err = errParallelOverflow
			return
		}
	}
}

// mergeWorkers combines partial groups in worker order. With contiguous
// partitions, any group of worker w first appeared globally before any group
// whose first worker is w+1, so insertion order across workers in worker
// order IS the serial first-appearance order.
func (a *parAggIter) mergeWorkers(workers []*parAggWorker) ([]value.Row, error) {
	for _, w := range workers {
		if w.err != nil {
			return nil, w.err
		}
	}
	merged := make(map[string]*aggGroup)
	var order []*aggGroup
	for _, w := range workers {
		for i, g := range w.order {
			key := w.keys[i]
			dst, ok := merged[key]
			if !ok {
				merged[key] = g
				order = append(order, g)
				a.acct.grow(int64(len(key)) + rowBytes(g.keys) + aggGroupFixedBytes + int64(len(g.states))*48)
				if a.acct.spillable() && a.acct.over() {
					return nil, errParallelOverflow
				}
				continue
			}
			for s := range dst.states {
				if err := mergeAggState(&dst.states[s], &g.states[s]); err != nil {
					return nil, err
				}
			}
		}
	}
	// Scalar aggregation over empty input still produces one (empty) group,
	// exactly like the serial path.
	if len(a.op.GroupBy) == 0 && len(order) == 0 {
		order = append(order, newAggGroup(a.op.Aggs, value.Row{}, 0))
	}
	out := make([]value.Row, 0, len(order))
	for _, g := range order {
		row := make(value.Row, 0, len(g.keys)+len(g.states))
		row = append(row, g.keys...)
		for i, ae := range a.op.Aggs {
			v, err := g.states[i].result(ae)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out, nil
}

// mergeAggState folds one partial state into another. Exact for count, min,
// max and integer sums; float SUM/AVG never reaches here (eligibility).
func mergeAggState(dst, src *aggState) error {
	dst.count += src.count
	if !src.sum.IsNull() {
		if dst.sum.IsNull() {
			dst.sum = src.sum
		} else {
			v, err := value.Add(dst.sum, src.sum)
			if err != nil {
				return err
			}
			dst.sum = v
		}
	}
	if !src.min.IsNull() {
		if dst.min.IsNull() {
			dst.min = src.min
		} else if c, err := value.Compare(src.min, dst.min); err != nil {
			return err
		} else if c < 0 {
			dst.min = src.min
		}
	}
	if !src.max.IsNull() {
		if dst.max.IsNull() {
			dst.max = src.max
		} else if c, err := value.Compare(src.max, dst.max); err != nil {
			return err
		} else if c > 0 {
			dst.max = src.max
		}
	}
	return nil
}

func (a *parAggIter) openSerial(ctx *Context) error {
	if a.serial == nil {
		in, err := build(a.op.Input)
		if err != nil {
			return err
		}
		a.serial = &aggIter{op: a.op, input: in}
	}
	return a.serial.Open(ctx)
}

func (a *parAggIter) Next() (value.Row, error) {
	if !a.inPar {
		if a.serial == nil {
			return nil, nil
		}
		return a.serial.Next()
	}
	if a.pos >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, nil
}

func (a *parAggIter) release() {
	a.out = nil
	a.pos = 0
	a.acct.releaseAll()
	a.inPar = false
}

func (a *parAggIter) Close() error {
	a.release()
	if a.serial != nil {
		return a.serial.Close()
	}
	return nil
}
