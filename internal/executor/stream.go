package executor

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/value"
)

// Stream is the executor's pull-based result surface: the iterator tree of a
// plan, opened and ready to produce rows one at a time. It is what lets the
// layers above (engine sessions, the network server's cursors) forward rows
// as they are produced instead of materializing whole results — the
// provenance rewrites of the paper routinely multiply result width and
// cardinality, so "hold the whole answer in memory" is exactly the wrong
// contract for them.
//
// A Stream is single-goroutine, like the iterators beneath it. Interrupt and
// deadline polling run inside Next with the same cadence the materializing
// loops used (one channel select / clock read every interruptMask+1 rows),
// so a canceled query unwinds mid-stream. Close releases the operator tree
// and is idempotent; an exhausted or failed stream closes itself.
type Stream struct {
	it     iterator
	ctx    *Context
	schema algebra.Schema
	n      int
	closed bool
	err    error
}

// Context returns the executor context the stream runs under. Callers use it
// after the drain to read coordinator-side counters (subplan cache hits,
// parallel fan-outs); it is not safe to mutate while rows are flowing.
func (s *Stream) Context() *Context { return s.ctx }

// Open builds the iterator tree for plan and opens it under ctx, returning
// the live stream. The schema (and thus result columns) is available
// immediately; rows follow on demand.
func Open(ctx *Context, plan algebra.Op) (*Stream, error) {
	var it iterator
	var err error
	if ctx.Parallel > 1 {
		// Statement roots with a parallelism degree build through buildPar,
		// which grafts parallel operators wherever a subtree is eligible.
		// Results are identical either way; ineligible or too-small subtrees
		// fall back to the serial iterators at Open.
		it, err = buildPar(plan, nil)
	} else {
		it, err = build(plan)
	}
	if err != nil {
		return nil, err
	}
	if err := it.Open(ctx); err != nil {
		it.Close()
		return nil, err
	}
	return &Stream{it: it, ctx: ctx, schema: plan.Schema()}, nil
}

// OpenInstrumented is Open with per-operator counters: every concrete
// iterator is wrapped with a stats collector, and the returned root node
// mirrors the iterator tree. The numbers are live while the stream drains
// and final once it is closed or exhausted. Used by EXPLAIN ANALYZE and
// SET trace; everything else takes the unwrapped Open path.
func OpenInstrumented(ctx *Context, plan algebra.Op) (*Stream, *OpStats, error) {
	sentinel := &OpStats{}
	var it iterator
	var err error
	if ctx.Parallel > 1 {
		it, err = buildPar(plan, sentinel)
	} else {
		it, err = buildInto(plan, sentinel)
	}
	if err != nil {
		return nil, nil, err
	}
	root := sentinel.Children[0]
	if err := it.Open(ctx); err != nil {
		it.Close()
		return nil, nil, err
	}
	return &Stream{it: it, ctx: ctx, schema: plan.Schema()}, root, nil
}

// Schema describes the stream's columns.
func (s *Stream) Schema() algebra.Schema { return s.schema }

// Rows reports how many rows the stream has produced so far; once Next has
// returned (nil, nil) it is the result's cardinality — the drain-time row
// count command tags are built from.
func (s *Stream) Rows() int { return s.n }

// Next returns the next row, or (nil, nil) at end of stream. The first error
// (including an interrupt or deadline unwind) is sticky and closes the
// underlying operators; rows alias executor-owned memory and must be treated
// as immutable, but remain valid after further Next calls.
func (s *Stream) Next() (value.Row, error) {
	if s.err != nil || s.closed {
		return nil, s.err
	}
	row, err := s.it.Next()
	if err != nil {
		s.fail(err)
		return nil, err
	}
	if row == nil {
		s.Close()
		return nil, nil
	}
	s.n++
	if s.n&interruptMask == 0 {
		if err := s.ctx.interrupted(); err != nil {
			s.fail(err)
			return nil, err
		}
	}
	return row, nil
}

// fail closes the stream, recording err as its sticky error.
func (s *Stream) fail(err error) {
	if !s.closed {
		s.closed = true
		s.it.Close()
	}
	if s.err == nil {
		s.err = err
	}
}

// Close releases the operator tree. It is safe to call at any point — a
// client abandoning a half-read cursor closes it mid-stream — and more than
// once.
func (s *Stream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.it.Close()
}

// Drain materializes the rest of the stream, enforcing the context's row
// budget exactly as the materializing Run always has. Execute-style callers
// use it to keep their fully-buffered semantics on top of the streaming
// surface.
func (s *Stream) Drain() ([]value.Row, error) {
	var rows []value.Row
	for {
		row, err := s.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
		if s.ctx.RowBudget > 0 && len(rows) > int(s.ctx.RowBudget) {
			s.Close()
			return nil, fmt.Errorf("executor: result exceeds row budget of %d rows", s.ctx.RowBudget)
		}
	}
}
