package executor

import (
	"testing"

	"perm/internal/algebra"
	"perm/internal/sql"
	"perm/internal/value"
)

// compile_test.go pins the compiled-expression subsystem to the tree-walking
// interpreter: for a matrix of expressions over a matrix of rows, Compile and
// Eval must agree on value and error outcome. The interpreter's own semantics
// are covered by eval_test.go, so agreement implies correctness.

func floatConst(f float64) *algebra.Const     { return &algebra.Const{Val: value.NewFloat(f)} }
func col(i int, k value.Kind) *algebra.ColIdx { return &algebra.ColIdx{Idx: i, Typ: k} }

func equivalenceExprs() []algebra.Expr {
	c0 := col(0, value.KindInt)
	c1 := col(1, value.KindString)
	c2 := col(2, value.KindFloat)
	bin := func(op sql.BinOp, l, r algebra.Expr) algebra.Expr { return &algebra.Bin{Op: op, L: l, R: r} }
	return []algebra.Expr{
		intConst(7),
		nullConst(),
		c0,
		c1,
		// arithmetic, incl. division by zero (error case) and NULL operands
		bin(sql.OpAdd, c0, intConst(3)),
		bin(sql.OpMul, c0, c2),
		bin(sql.OpDiv, intConst(10), c0),
		bin(sql.OpMod, c0, intConst(4)),
		bin(sql.OpSub, nullConst(), c0),
		bin(sql.OpConcat, c1, strConst("!")),
		bin(sql.OpConcat, c1, nullConst()),
		// comparisons and 3VL logic
		bin(sql.OpEq, c0, intConst(2)),
		bin(sql.OpNeq, c0, c2),
		bin(sql.OpLt, c1, strConst("m")),
		bin(sql.OpGte, c2, floatConst(1.5)),
		bin(sql.OpEq, c0, nullConst()),
		bin(sql.OpNotDistinct, c0, nullConst()),
		bin(sql.OpAnd, bin(sql.OpGt, c0, intConst(0)), bin(sql.OpLt, c0, intConst(9))),
		bin(sql.OpOr, bin(sql.OpEq, c0, nullConst()), boolConst(true)),
		bin(sql.OpAnd, nullConst(), boolConst(false)),
		bin(sql.OpEq, c1, intConst(1)), // type error at runtime
		&algebra.Not{E: bin(sql.OpGt, c0, intConst(2))},
		&algebra.Neg{E: c0},
		&algebra.Neg{E: c1}, // error: unary minus on text
		&algebra.IsNull{E: c0},
		&algebra.IsNull{E: c0, Not: true},
		// functions: strict, tolerant, unknown, nested
		&algebra.Func{Name: "upper", Args: []algebra.Expr{c1}, Typ: value.KindString},
		&algebra.Func{Name: "length", Args: []algebra.Expr{c1}, Typ: value.KindInt},
		&algebra.Func{Name: "coalesce", Args: []algebra.Expr{nullConst(), c0, intConst(9)}, Typ: value.KindInt},
		&algebra.Func{Name: "nullif", Args: []algebra.Expr{c0, intConst(2)}, Typ: value.KindInt},
		&algebra.Func{Name: "greatest", Args: []algebra.Expr{c0, intConst(5), nullConst()}, Typ: value.KindInt},
		&algebra.Func{Name: "substr", Args: []algebra.Expr{c1, intConst(2), intConst(2)}, Typ: value.KindString},
		&algebra.Func{Name: "abs", Args: []algebra.Expr{&algebra.Neg{E: c0}}, Typ: value.KindInt},
		&algebra.Func{Name: "no_such_fn", Args: nil, Typ: value.KindInt},
		// CASE: lazy arms must not evaluate (the error arm is unreachable)
		&algebra.Case{
			Whens: []algebra.CaseWhen{
				{Cond: bin(sql.OpGt, c0, intConst(100)), Result: &algebra.Neg{E: c1}},
				{Cond: bin(sql.OpGt, c0, intConst(1)), Result: strConst("big")},
			},
			Else: strConst("small"),
			Typ:  value.KindString,
		},
		&algebra.InList{E: c0, List: []algebra.Expr{intConst(1), intConst(2), nullConst()}},
		&algebra.InList{E: c0, List: []algebra.Expr{intConst(99), nullConst()}, Neg: true},
		&algebra.Like{E: c1, Pattern: strConst("a%")},
		&algebra.Like{E: c1, Pattern: strConst("_b%"), Neg: true},
		&algebra.Cast{E: c0, To: value.KindString},
		&algebra.Cast{E: c1, To: value.KindInt}, // may error depending on row
	}
}

func TestCompileMatchesEval(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(2), value.NewString("abc"), value.NewFloat(1.5)},
		{value.NewInt(0), value.NewString("12"), value.NewFloat(-3)},
		{value.Null, value.Null, value.Null},
		{value.NewInt(-7), value.NewString(""), value.NewFloat(2)},
	}
	for _, e := range equivalenceExprs() {
		ce := Compile(e)
		for ri, row := range rows {
			want, wantErr := Eval(e, row, NewContext(nil))
			got, gotErr := ce(row, NewContext(nil))
			if (wantErr != nil) != (gotErr != nil) {
				t.Errorf("%v row %d: eval err = %v, compiled err = %v", e, ri, wantErr, gotErr)
				continue
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Errorf("%v row %d: error text diverged: %q vs %q", e, ri, wantErr, gotErr)
				}
				continue
			}
			if got.K != want.K || value.Distinct(got, want) {
				t.Errorf("%v row %d: compiled = %v, eval = %v", e, ri, got, want)
			}
		}
	}
}

// TestCompilePredicateTruth checks WHERE truth semantics of the compiled
// predicate wrapper: NULL and FALSE reject, non-boolean errors.
func TestCompilePredicateTruth(t *testing.T) {
	cases := []struct {
		e       algebra.Expr
		want    bool
		wantErr bool
	}{
		{boolConst(true), true, false},
		{boolConst(false), false, false},
		{nullConst(), false, false},
		{intConst(1), false, true},
	}
	for _, c := range cases {
		got, err := CompilePredicate(c.e)(nil, NewContext(nil))
		if (err != nil) != c.wantErr {
			t.Errorf("%v: err = %v, wantErr = %v", c.e, err, c.wantErr)
			continue
		}
		if got != c.want {
			t.Errorf("%v: got %v, want %v", c.e, got, c.want)
		}
	}
}

// TestCompiledColumnOutOfRange mirrors eval_test's bounds behavior.
func TestCompiledColumnOutOfRange(t *testing.T) {
	ce := Compile(col(5, value.KindInt))
	if _, err := ce(value.Row{value.NewInt(1)}, NewContext(nil)); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestCompiledOuterRef checks correlation-stack reads and the error outside a
// correlated context.
func TestCompiledOuterRef(t *testing.T) {
	ce := Compile(&algebra.OuterRef{Idx: 0, Typ: value.KindInt})
	ctx := NewContext(nil)
	if _, err := ce(nil, ctx); err == nil {
		t.Fatal("outer ref outside correlation must error")
	}
	ctx.pushOuter(value.Row{value.NewInt(42)})
	v, err := ce(nil, ctx)
	if err != nil || v.I != 42 {
		t.Fatalf("outer ref = %v, %v", v, err)
	}
}
