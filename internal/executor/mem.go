package executor

import (
	"sync/atomic"
	"unsafe"

	"perm/internal/spill"
	"perm/internal/value"
)

// MemTracker is the per-session memory governor for blocking operators: a
// byte budget (SET work_mem), the live/peak tracked byte counts, and the
// spill-file pool temp files come from. One tracker is shared by every
// statement of a session — concurrent use of the shared implicit session is
// legal, so the counters are atomics — and SHOW memory_status reads it.
//
// Tracking is cooperative: operators that buffer (sort, aggregation, set
// operations, DISTINCT) grow the tracker as they retain rows and release on
// Close; when the tracked total crosses the budget they spill to the pool
// instead of growing further. A nil tracker (executor tests, tools) means
// unlimited memory and no spilling.
type MemTracker struct {
	budget atomic.Int64 // bytes; <= 0 means unlimited
	cur    atomic.Int64
	peak   atomic.Int64
	pool   *spill.Pool
}

// NewMemTracker returns a tracker with the given byte budget (<= 0 =
// unlimited) spilling into dir ("" = the OS temp directory).
func NewMemTracker(budget int64, dir string) *MemTracker {
	m := &MemTracker{pool: spill.NewPool(dir)}
	m.budget.Store(budget)
	return m
}

// SetBudget changes the byte budget (SET work_mem); <= 0 means unlimited.
func (m *MemTracker) SetBudget(n int64) { m.budget.Store(n) }

// Budget reports the byte budget.
func (m *MemTracker) Budget() int64 { return m.budget.Load() }

// SetDir redirects future spill files.
func (m *MemTracker) SetDir(dir string) { m.pool.SetDir(dir) }

// Dir reports the spill directory ("" = the OS temp directory).
func (m *MemTracker) Dir() string { return m.pool.Dir() }

// Pool exposes the spill-file pool.
func (m *MemTracker) Pool() *spill.Pool { return m.pool }

// Grow adds n tracked bytes.
func (m *MemTracker) Grow(n int64) {
	c := m.cur.Add(n)
	for {
		p := m.peak.Load()
		if c <= p || m.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// Shrink releases n tracked bytes.
func (m *MemTracker) Shrink(n int64) { m.cur.Add(-n) }

// Over reports whether the tracked total exceeds the budget.
func (m *MemTracker) Over() bool {
	b := m.budget.Load()
	return b > 0 && m.cur.Load() > b
}

// Tracked reports the current tracked byte total.
func (m *MemTracker) Tracked() int64 { return m.cur.Load() }

// Peak reports the high-water tracked byte total.
func (m *MemTracker) Peak() int64 { return m.peak.Load() }

// Cleanup force-removes every live spill file (session teardown).
func (m *MemTracker) Cleanup() {
	if m != nil {
		m.pool.Cleanup()
	}
}

// valueFixedBytes is the in-memory footprint of one Value struct; string
// payloads add their length on top.
const valueFixedBytes = int64(unsafe.Sizeof(value.Value{}))

// rowSliceBytes is the slice-header overhead charged per retained row.
const rowSliceBytes = int64(unsafe.Sizeof(value.Row{}))

// rowBytes estimates the heap footprint of one retained row — the unit of
// memory accounting for every blocking operator. It deliberately counts what
// the row itself holds (headers, value structs, string payloads), not
// sharing: an over-estimate only spills earlier.
func rowBytes(row value.Row) int64 {
	n := rowSliceBytes + valueFixedBytes*int64(len(row))
	for i := range row {
		n += int64(len(row[i].S))
	}
	return n
}

// memAcct is one operator's slice of the session tracker: every Grow is
// remembered so Close (or a spill handoff) releases exactly what this
// operator holds, keeping the shared counter drift-free across statements.
// It reads the tracker through the statement context so instrumented runs
// (EXPLAIN ANALYZE, SET trace) can attribute bytes to ctx.owner — the stats
// node of the operator currently executing — without widening the account.
type memAcct struct {
	ctx  *Context
	held int64
}

// mem returns the session tracker, or nil when unaccounted.
func (a *memAcct) mem() *MemTracker {
	if a.ctx == nil {
		return nil
	}
	return a.ctx.Mem
}

// grow adds n bytes to the operator's tracked total.
func (a *memAcct) grow(n int64) {
	m := a.mem()
	if m == nil {
		return
	}
	a.held += n
	m.Grow(n)
	if o := a.ctx.owner; o != nil {
		o.MemCur += n
		if o.MemCur > o.MemPeak {
			o.MemPeak = o.MemCur
		}
	}
}

// over reports whether the session is past its budget.
func (a *memAcct) over() bool {
	m := a.mem()
	return m != nil && m.Over()
}

// release returns n of the operator's held bytes (a batch handed off to
// disk). All accounting flows through memAcct so the shared session counter
// stays drift-free.
func (a *memAcct) release(n int64) {
	m := a.mem()
	if m != nil && n != 0 {
		a.held -= n
		m.Shrink(n)
		if o := a.ctx.owner; o != nil {
			o.MemCur -= n
		}
	}
}

// releaseAll returns every byte this operator holds.
func (a *memAcct) releaseAll() {
	m := a.mem()
	if m != nil && a.held != 0 {
		m.Shrink(a.held)
		if o := a.ctx.owner; o != nil {
			o.MemCur -= a.held
		}
		a.held = 0
	}
}

// spillable reports whether spilling is possible at all: a tracker with a
// positive budget exists.
func (a *memAcct) spillable() bool {
	m := a.mem()
	return m != nil && m.Budget() > 0
}
