package executor

import (
	"time"

	"perm/internal/algebra"
	"perm/internal/value"
)

// OpStats is the runtime profile of one operator in an instrumented
// execution (EXPLAIN ANALYZE, SET trace). A stats tree mirrors the iterator
// tree; pass-through algebra nodes (BaseRel, ProvDone) get no node, exactly
// as they get no iterator.
//
// Instrumentation is strictly opt-in: an uninstrumented build carries nil
// stats nodes, wraps nothing, and adds zero work to the per-row path.
type OpStats struct {
	// Op is the algebra node this operator executes — the key EXPLAIN
	// ANALYZE uses to annotate the optimized plan tree.
	Op       algebra.Op
	Children []*OpStats

	// Opens counts Open calls: >1 means the operator sat under a lateral
	// join and was re-executed once per outer row.
	Opens int64
	// Rows is the total row count this operator produced across all opens.
	Rows int64
	// OpenNs and NextNs are inclusive wall time (children included, like
	// EXPLAIN ANALYZE in Postgres): time spent in Open, and in the Next loop.
	OpenNs int64
	NextNs int64

	// MemCur/MemPeak track operator-attributed work_mem bytes (exact, via
	// the operator's memory accounts). Zero for non-blocking operators.
	MemCur  int64
	MemPeak int64

	// SpillFiles/SpillBytes are subtree-inclusive spill-pool deltas: every
	// temp file and byte written while this subtree executed. The root's
	// numbers therefore equal the statement's totals (what SHOW
	// memory_status reports as the session delta).
	SpillFiles int64
	SpillBytes int64

	// BuildRows is the materialized build-side cardinality of a hash or
	// nested-loop join (0 for other operators and lateral joins, which
	// stream the right side per outer row).
	BuildRows int64

	// Workers is the fan-out degree of a parallel operator (0 for serial
	// operators, and for parallel operators that fell back to the serial
	// path). WorkerRows/WorkerNs are the per-worker output row counts and
	// wall times, indexed by worker; they are written only after the
	// workers are joined, so instrumented reads never race.
	Workers    int
	WorkerRows []int64
	WorkerNs   []int64

	baseFiles int64
	baseBytes int64
	based     bool
}

// TotalNs is the operator's inclusive wall time: open + next loop.
func (n *OpStats) TotalNs() int64 { return n.OpenNs + n.NextNs }

// Walk visits the node and its subtree preorder.
func (n *OpStats) Walk(f func(*OpStats)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// node creates a stats child under parent, or nil when uninstrumented.
func node(parent *OpStats, op algebra.Op) *OpStats {
	if parent == nil {
		return nil
	}
	n := &OpStats{Op: op}
	parent.Children = append(parent.Children, n)
	return n
}

// wrapStat wraps an iterator with its stats collector; a nil node returns
// the iterator untouched, keeping the disabled path allocation-identical.
func wrapStat(it iterator, n *OpStats) iterator {
	if n == nil {
		return it
	}
	return &statIter{inner: it, n: n}
}

// statIter decorates one iterator with counters. Timing is inclusive: a
// parent's Next time contains its children's, so self time is parent minus
// sum-of-children at render time.
type statIter struct {
	inner iterator
	n     *OpStats
	ctx   *Context
}

func (s *statIter) Open(ctx *Context) error {
	s.ctx = ctx
	if !s.n.based {
		s.n.based = true
		if ctx.Mem != nil {
			p := ctx.Mem.Pool()
			s.n.baseFiles, s.n.baseBytes = p.Files(), p.Bytes()
		}
	}
	s.n.Opens++
	prev := ctx.owner
	ctx.owner = s.n
	t0 := time.Now()
	err := s.inner.Open(ctx)
	s.n.OpenNs += time.Since(t0).Nanoseconds()
	ctx.owner = prev
	s.collectSpill()
	return err
}

func (s *statIter) Next() (value.Row, error) {
	prev := s.ctx.owner
	s.ctx.owner = s.n
	t0 := time.Now()
	row, err := s.inner.Next()
	s.n.NextNs += time.Since(t0).Nanoseconds()
	s.ctx.owner = prev
	if row != nil {
		s.n.Rows++
	}
	return row, err
}

func (s *statIter) Close() error {
	s.collectSpill()
	if s.ctx == nil {
		return s.inner.Close()
	}
	prev := s.ctx.owner
	s.ctx.owner = s.n
	err := s.inner.Close()
	s.ctx.owner = prev
	return err
}

// collectSpill refreshes the subtree-inclusive spill deltas from the
// session pool's cumulative counters.
func (s *statIter) collectSpill() {
	if s.ctx == nil || s.ctx.Mem == nil {
		return
	}
	p := s.ctx.Mem.Pool()
	s.n.SpillFiles = p.Files() - s.n.baseFiles
	s.n.SpillBytes = p.Bytes() - s.n.baseBytes
}
