package cluster

import "perm/internal/metrics"

// Process-wide cluster metrics: the coordinator's failover activity and the
// router's traffic split. The epoch gauge moving is the observable for "a
// failover happened"; read retries climbing without reads climbing means a
// member is flapping.
var (
	mEpoch = metrics.Default.Gauge("perm_cluster_epoch",
		"Highest fencing epoch the coordinator has observed")
	mPromotions = metrics.Default.Counter("perm_cluster_promotions_total",
		"Failover promotions executed by the coordinator")
	mRouteWrites = metrics.Default.Counter("perm_router_writes_total",
		"Statements routed to the primary")
	mRouteReads = metrics.Default.Counter("perm_router_reads_total",
		"Idempotent requests routed across read backends")
	mReadRetries = metrics.Default.Counter("perm_router_read_retries_total",
		"Read requests retried on another member after a backend failure")
)
