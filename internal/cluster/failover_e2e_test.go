package cluster_test

// The kill-primary failover e2e: a real permserver-shaped primary runs in a
// child PROCESS (this test binary re-exec'd) with a durable data directory
// and semi-synchronous replication, the parent runs two in-process replicas,
// the coordinator and the router, and a writer hammers unique keys through
// the router. The parent SIGKILLs the primary mid-load and holds the cluster
// to the contract:
//
//   - the coordinator promotes a replica at a bumped epoch within the lease
//     deadline,
//   - no write acknowledged to the client is lost (semi-sync: an ack implies
//     a replica durably applied it; promotion picks the most-caught-up one),
//   - the deposed primary, restarted from its data directory, is fenced: a
//     current-epoch subscriber is refused with the typed stale-epoch code,
//     and the coordinator demotes it back into the cluster as a follower,
//     re-seeded onto the new timeline.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"perm/internal/cluster"
	"perm/internal/engine"
	"perm/internal/server"
	"perm/internal/wal"
	"perm/internal/wire"
)

// TestFailoverChildPrimary is the harness child, inert unless driven by
// TestKillPrimaryFailover: it serves a WAL-backed primary with
// semi-synchronous replication until it is SIGKILLed.
func TestFailoverChildPrimary(t *testing.T) {
	dir := os.Getenv("PERM_FAILOVER_DIR")
	if dir == "" {
		t.Skip("failover-harness child; driven by TestKillPrimaryFailover")
	}
	store, mgr, _, err := wal.Open(dir, wal.Options{Sync: "always"})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	db := engine.NewDBFrom(store)
	db.SetWALController(server.WALController(mgr))
	srv := server.New(db, server.Config{
		HeartbeatInterval: 20 * time.Millisecond,
		SyncReplicas:      1,
		SyncTimeout:       5 * time.Second,
	})
	node, err := server.NewClusterNode(db, srv, server.ClusterNodeConfig{
		DataDir:  dir,
		Follower: server.FollowerConfig{PrepareStore: mgr.AdoptStore, RetryMin: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond, ReadTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatalf("child cluster node: %v", err)
	}
	if err := node.EnsurePrimaryEpoch(); err != nil {
		t.Fatalf("child epoch: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	// Publish the address atomically: write-temp then rename, so the parent
	// never reads a half-written file.
	addrFile := os.Getenv("PERM_FAILOVER_ADDRFILE")
	if err := os.WriteFile(addrFile+".tmp", []byte(l.Addr().String()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	// Serve until killed. The parent always ends this process with SIGKILL —
	// a clean return here means the harness is broken.
	t.Fatalf("child serve returned: %v", srv.Serve(l))
}

// ackedKeys is the writer's record of client-acknowledged inserts.
type ackedKeys struct {
	mu   sync.Mutex
	keys []int
}

func (a *ackedKeys) add(k int) {
	a.mu.Lock()
	a.keys = append(a.keys, k)
	a.mu.Unlock()
}

func (a *ackedKeys) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.keys)
}

func (a *ackedKeys) snapshot() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.keys...)
}

// startChildPrimary launches (or relaunches) the child primary over dir and
// returns its address and a kill function that SIGKILLs and reaps it.
func startChildPrimary(t *testing.T, dir, tag string) (addr string, kill func()) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr-"+tag)
	cmd := exec.Command(exe, "-test.run=^TestFailoverChildPrimary$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"PERM_FAILOVER_DIR="+dir,
		"PERM_FAILOVER_ADDRFILE="+addrFile,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	reaped := make(chan struct{})
	go func() { cmd.Wait(); close(reaped) }()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			cmd.Process.Kill()
			<-reaped
		})
	}
	t.Cleanup(kill)

	deadline := time.Now().Add(30 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			return string(b), kill
		}
		select {
		case <-reaped:
			t.Fatalf("child %s exited before publishing its address", tag)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("child %s never published its address", tag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestKillPrimaryFailover(t *testing.T) {
	if os.Getenv("PERM_FAILOVER_DIR") != "" {
		t.Skip("already inside the harness child")
	}
	if testing.Short() {
		t.Skip("multi-process failover e2e; skipped in -short")
	}
	dataDir := filepath.Join(t.TempDir(), "primary-data")
	primaryAddr, killPrimary := startChildPrimary(t, dataDir, "phase1")

	// Two in-process replicas follow the child primary. Both must be live
	// before the writer starts: the primary's sync-replica quorum is 1.
	r1 := startMember(t, engine.NewDB(), server.Config{})
	r2 := startMember(t, engine.NewDB(), server.Config{})
	r1.node.Follow(primaryAddr)
	r2.node.Follow(primaryAddr)
	for _, r := range []*member{r1, r2} {
		r := r
		waitFor(t, "replica connected", 30*time.Second, func() bool {
			f := r.node.Follower()
			return f != nil && f.Status().Connected
		})
	}

	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Members:       []string{primaryAddr, r1.addr, r2.addr},
		ProbeInterval: 50 * time.Millisecond,
		LeaseTimeout:  400 * time.Millisecond,
		DialTimeout:   time.Second,
		Logf:          t.Logf,
	})
	go coord.Run()
	defer coord.Stop()
	routerAddr := startRouter(t, coord)
	waitFor(t, "coordinator finds the primary", 30*time.Second, func() bool {
		addr, _, ok := coord.Primary()
		return ok && addr == primaryAddr
	})

	setup, err := wire.DialTimeout(routerAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(`CREATE TABLE kv (k int)`); err != nil {
		t.Fatalf("create through router: %v", err)
	}
	setup.Close()

	// The writer: unique key per attempt, recorded only when the router
	// acknowledged it. Failures during the failover window are expected and
	// handled by reconnecting; the key is never reused, so "acked ⊆ present"
	// is directly checkable.
	acked := &ackedKeys{}
	stopWriter := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var cli *wire.Client
		defer func() {
			if cli != nil {
				cli.Close()
			}
		}()
		redial := func() bool {
			if cli != nil {
				cli.Close()
				cli = nil
			}
			for {
				select {
				case <-stopWriter:
					return false
				default:
				}
				c, err := wire.DialTimeout(routerAddr, 2*time.Second)
				if err == nil {
					cli = c
					return true
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		if !redial() {
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			_, err := cli.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d)`, i))
			if err == nil {
				acked.add(i)
				continue
			}
			var serr *wire.ServerError
			if !errors.As(err, &serr) {
				// Transport-level failure: the routed session died with its
				// backend; reconnect and keep writing fresh keys.
				if !redial() {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	waitFor(t, "write load before the kill", 60*time.Second, func() bool { return acked.count() >= 30 })
	killedAt := time.Now()
	killPrimary()

	waitFor(t, "promotion at epoch 2", 30*time.Second, func() bool {
		_, epoch, ok := coord.Primary()
		return ok && epoch >= 2
	})
	failoverTime := time.Since(killedAt)
	newAddr, newEpoch, _ := coord.Primary()
	t.Logf("failover: promoted %s at epoch %d %.0fms after SIGKILL (lease 400ms)",
		newAddr, newEpoch, float64(failoverTime.Milliseconds()))
	if newAddr != r1.addr && newAddr != r2.addr {
		t.Fatalf("promoted %q, want one of the replicas", newAddr)
	}
	if failoverTime > 15*time.Second {
		t.Fatalf("promotion took %s, far beyond the lease deadline", failoverTime)
	}
	promoted, survivor := r1, r2
	if newAddr == r2.addr {
		promoted, survivor = r2, r1
	}

	// The cluster must take writes again through the same router.
	ackedAtPromotion := acked.count()
	waitFor(t, "post-failover writes", 60*time.Second, func() bool {
		return acked.count() >= ackedAtPromotion+30
	})
	close(stopWriter)
	<-writerDone

	// Zero acked writes lost: every key the router acknowledged is present on
	// the new primary.
	assertAckedPresent(t, promoted.db, acked.snapshot(), "promoted primary")
	waitFor(t, "survivor converged onto the new primary", 30*time.Second, func() bool {
		st := survivor.db.ReplicationStatus()
		return st.Epoch >= 2 && st.AppliedLSN >= promoted.db.Store().Log().LastLSN()
	})
	assertAckedPresent(t, survivor.db, acked.snapshot(), "surviving replica")

	// --- the deposed primary returns ------------------------------------------------
	deposedAddr, killDeposed := startChildPrimary(t, dataDir, "phase2")
	defer killDeposed()
	cli, err := wire.DialTimeout(deposedAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cli.Status()
	cli.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || st.Epoch != 1 {
		t.Fatalf("restarted deposed primary reports %s at epoch %d, want primary at its persisted epoch 1",
			st.Role, st.Epoch)
	}

	// Fencing: a subscriber at the cluster's current epoch must be refused by
	// the stale node with the typed code, never silently fed the old timeline.
	fdb := engine.NewDB()
	fdb.SetEpoch(newEpoch)
	fdb.SetReadOnly(true)
	f := server.StartFollower(fdb, server.FollowerConfig{
		PrimaryAddr: deposedAddr,
		ReadTimeout: 2 * time.Second,
		RetryMin:    10 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
	})
	waitFor(t, "stale-epoch subscription refusal", 30*time.Second, func() bool {
		return strings.Contains(f.Status().LastError, "fenced")
	})
	f.Stop()

	// The coordinator folds the deposed primary back in: demoted to follow
	// the new primary at the new epoch, re-seeded onto the new timeline.
	c2 := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Members:       []string{promoted.addr, survivor.addr, deposedAddr},
		ProbeInterval: 50 * time.Millisecond,
		LeaseTimeout:  time.Hour, // phase 2 must never fail over
		DialTimeout:   time.Second,
		Logf:          t.Logf,
	})
	go c2.Run()
	defer c2.Stop()
	waitFor(t, "deposed primary demoted and re-seeded", 60*time.Second, func() bool {
		cli, err := wire.DialTimeout(deposedAddr, time.Second)
		if err != nil {
			return false
		}
		defer cli.Close()
		st, err := cli.Status()
		return err == nil && st.Role == "replica" && st.Epoch >= newEpoch &&
			st.AppliedLSN >= promoted.db.Store().Log().LastLSN()
	})
	rejoined, err := wire.DialTimeout(deposedAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rejoined.Close()
	present := map[string]bool{}
	for _, k := range queryStrings(t, rejoined, `SELECT k FROM kv`) {
		present[k] = true
	}
	for _, k := range acked.snapshot() {
		if !present[fmt.Sprint(k)] {
			t.Fatalf("acked key %d missing from the re-seeded deposed primary", k)
		}
	}
}

// assertAckedPresent checks every acknowledged key exists in db's kv table.
func assertAckedPresent(t *testing.T, db *engine.DB, acked []int, who string) {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	res, err := s.Execute(`SELECT k FROM kv`)
	if err != nil {
		t.Fatalf("%s: %v", who, err)
	}
	present := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		present[row[0].I] = true
	}
	for _, k := range acked {
		if !present[int64(k)] {
			t.Fatalf("LOST ACKNOWLEDGED WRITE: key %d acked to the client but missing on the %s (%d acked, %d present)",
				k, who, len(acked), len(present))
		}
	}
	t.Logf("%s holds all %d acked keys (%d rows total)", who, len(acked), len(present))
}
