// Package cluster_test exercises the availability layer end to end with real
// in-process members: engine + server + cluster harness per member, and the
// coordinator/router talking to them over loopback TCP exactly as
// cmd/permrouter would.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"perm/internal/cluster"
	"perm/internal/engine"
	"perm/internal/server"
	"perm/internal/value"
	"perm/internal/wire"
)

// member is one in-process cluster member.
type member struct {
	db   *engine.DB
	srv  *server.Server
	node *server.ClusterNode
	addr string
	stop func()
}

// startMember serves db on loopback with a cluster harness attached.
func startMember(t testing.TB, db *engine.DB, cfg server.Config) *member {
	t.Helper()
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 20 * time.Millisecond
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(db, cfg)
	node, err := server.NewClusterNode(db, srv, server.ClusterNodeConfig{
		Follower: server.FollowerConfig{
			ReadTimeout: 2 * time.Second,
			RetryMin:    10 * time.Millisecond,
			RetryMax:    100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("cluster node: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	m := &member{db: db, srv: srv, node: node, addr: l.Addr().String()}
	var once sync.Once
	m.stop = func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			node.Stop()
			<-done
		})
	}
	t.Cleanup(m.stop)
	return m
}

// exec runs one statement on db directly.
func mustExec(t testing.TB, db *engine.DB, sql string) {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// queryStrings collects the first column of a query through a wire client.
func queryStrings(t testing.TB, cli *wire.Client, sql string) []string {
	t.Helper()
	rows, err := cli.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var out []string
	for {
		row, err := rows.Next()
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if row == nil {
			return out
		}
		out = append(out, row[0].SQLLiteral())
	}
}

// staticTopology is a fixed Topology for router tests.
type staticTopology struct {
	primary string
	epoch   uint64
	reads   []string
}

func (s staticTopology) Primary() (string, uint64, bool) { return s.primary, s.epoch, s.primary != "" }
func (s staticTopology) ReadOrder() []string             { return s.reads }
func (s staticTopology) Epoch() uint64                   { return s.epoch }

// startRouter serves a router over topo on loopback.
func startRouter(t testing.TB, topo cluster.Topology) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	r := cluster.NewRouter(cluster.RouterConfig{Topology: topo, DialTimeout: 2 * time.Second})
	go r.Serve(l)
	t.Cleanup(func() { r.Close() })
	return l.Addr().String()
}

// TestRouterReadWriteSplit proves the split with two deliberately divergent
// members: the same table holds a different marker row on each, so whichever
// member answers is visible in the result.
func TestRouterReadWriteSplit(t *testing.T) {
	writeDB, readDB := engine.NewDB(), engine.NewDB()
	for _, db := range []*engine.DB{writeDB, readDB} {
		mustExec(t, db, `CREATE TABLE t (v string)`)
	}
	mustExec(t, writeDB, `INSERT INTO t VALUES ('on-primary')`)
	mustExec(t, readDB, `INSERT INTO t VALUES ('on-replica')`)
	writeDB.SetEpoch(1)
	readDB.SetEpoch(1)
	primary := startMember(t, writeDB, server.Config{})
	replica := startMember(t, readDB, server.Config{})

	addr := startRouter(t, staticTopology{primary: primary.addr, epoch: 1, reads: []string{replica.addr}})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial router: %v", err)
	}
	defer cli.Close()

	if got := queryStrings(t, cli, `SELECT v FROM t`); len(got) != 1 || got[0] != `'on-replica'` {
		t.Fatalf("read routed to %v, want the replica's row", got)
	}
	if _, err := cli.Exec(`INSERT INTO t VALUES ('routed-write')`); err != nil {
		t.Fatalf("routed write: %v", err)
	}
	// The write landed on the primary and only there.
	pc, err := wire.Dial(primary.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if got := queryStrings(t, pc, `SELECT v FROM t WHERE v = 'routed-write'`); len(got) != 1 {
		t.Fatalf("write did not land on the primary: %v", got)
	}
	if got := queryStrings(t, cli, `SELECT v FROM t WHERE v = 'routed-write'`); len(got) != 0 {
		t.Fatalf("write leaked to the replica: %v", got)
	}

	// Prepared statements route by class: a read statement prepared through
	// the router executes on the replica.
	if _, err := cli.Prepare("q1", `SELECT v FROM t WHERE v = ?`); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	cur, err := cli.Execute("q1", "", []value.Value{value.NewString("on-replica")}, 0)
	if err != nil {
		t.Fatalf("execute prepared: %v", err)
	}
	n := 0
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatalf("prepared rows: %v", err)
		}
		if row == nil {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("prepared read returned %d rows from the wrong member", n)
	}
}

// TestRouterSessionSettingsFollow proves SET statements replay onto every
// backend the session touches: a SET issued through the router must be in
// force for a later write relayed to the primary.
func TestRouterSessionSettingsFollow(t *testing.T) {
	writeDB, readDB := engine.NewDB(), engine.NewDB()
	mustExec(t, writeDB, `CREATE TABLE t (v string)`)
	mustExec(t, readDB, `CREATE TABLE t (v string)`)
	primary := startMember(t, writeDB, server.Config{})
	replica := startMember(t, readDB, server.Config{})

	addr := startRouter(t, staticTopology{primary: primary.addr, epoch: 0, reads: []string{replica.addr}})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// The SET runs on the read backend first; the later provenance query on
	// the replica and any primary-bound statement both see it replayed.
	if _, err := cli.Exec(`SET provenance_contribution = 'copy'`); err != nil {
		t.Fatalf("SET through router: %v", err)
	}
	if got := queryStrings(t, cli, `SELECT v FROM t`); len(got) != 0 {
		t.Fatalf("unexpected rows: %v", got)
	}
	if _, err := cli.Exec(`INSERT INTO t VALUES ('x')`); err != nil {
		t.Fatalf("write after SET: %v", err)
	}
}

// TestRouterReadFailover: a dead member first in the read order is skipped
// transparently — the client sees only the successful response.
func TestRouterReadFailover(t *testing.T) {
	readDB := engine.NewDB()
	mustExec(t, readDB, `CREATE TABLE t (v string)`)
	mustExec(t, readDB, `INSERT INTO t VALUES ('alive')`)
	replica := startMember(t, readDB, server.Config{})

	// A listener that is closed immediately: connect refused.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	addr := startRouter(t, staticTopology{primary: replica.addr, epoch: 1, reads: []string{deadAddr, replica.addr}})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if got := queryStrings(t, cli, `SELECT v FROM t`); len(got) != 1 || got[0] != `'alive'` {
		t.Fatalf("read not retried past the dead member: %v", got)
	}
}

// TestRouterStaleEpochWriteAck: a write acknowledged by a backend at an epoch
// below the cluster's becomes a typed stale-epoch error, never a silent ack.
func TestRouterStaleEpochWriteAck(t *testing.T) {
	db := engine.NewDB()
	mustExec(t, db, `CREATE TABLE t (v string)`)
	db.SetEpoch(1) // the backend believes it is primary at epoch 1
	deposed := startMember(t, db, server.Config{})

	// The topology knows the cluster moved on to epoch 5.
	addr := startRouter(t, staticTopology{primary: deposed.addr, epoch: 5, reads: []string{deposed.addr}})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Exec(`INSERT INTO t VALUES ('lost')`)
	var serr *wire.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.ErrCodeStaleEpoch {
		t.Fatalf("write through a fenced primary returned %v, want stale-epoch code", err)
	}
	// Reads are unaffected: a stale replica can still serve them.
	if got := queryStrings(t, cli, `SELECT count(*) FROM t`); len(got) != 1 {
		t.Fatalf("read after fenced write: %v", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordinatorFailover drives a full promotion with in-process members:
// primary dies, the coordinator promotes the most-caught-up replica at a
// bumped epoch, the other replica re-points at the new primary, and new
// writes flow.
func TestCoordinatorFailover(t *testing.T) {
	pdb := engine.NewDB()
	mustExec(t, pdb, `CREATE TABLE t (k int)`)
	mustExec(t, pdb, `INSERT INTO t VALUES (1)`)
	primary := startMember(t, pdb, server.Config{})
	if err := primary.node.EnsurePrimaryEpoch(); err != nil {
		t.Fatal(err)
	}

	r1 := startMember(t, engine.NewDB(), server.Config{})
	r2 := startMember(t, engine.NewDB(), server.Config{})
	r1.node.Follow(primary.addr)
	r2.node.Follow(primary.addr)
	for _, r := range []*member{r1, r2} {
		r := r
		waitFor(t, "replica catch-up", 10*time.Second, func() bool {
			f := r.node.Follower()
			return f != nil && f.Status().AppliedLSN >= pdb.Store().Log().LastLSN()
		})
	}

	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Members:       []string{primary.addr, r1.addr, r2.addr},
		ProbeInterval: time.Hour, // stepped manually via Tick
		LeaseTimeout:  150 * time.Millisecond,
		DialTimeout:   time.Second,
		Logf:          t.Logf,
	})
	defer coord.Stop()
	coord.Tick()
	if addr, epoch, ok := coord.Primary(); !ok || addr != primary.addr || epoch != 1 {
		t.Fatalf("coordinator sees primary %q at epoch %d (ok=%v), want %q at 1", addr, epoch, ok, primary.addr)
	}

	// Kill the primary and let the lease expire.
	primary.stop()
	time.Sleep(200 * time.Millisecond)
	coord.Tick()

	newAddr, epoch, ok := coord.Primary()
	if !ok || epoch != 2 {
		t.Fatalf("no promotion: primary %q epoch %d ok=%v, want epoch 2", newAddr, epoch, ok)
	}
	promoted, other := r1, r2
	if newAddr == r2.addr {
		promoted, other = r2, r1
	} else if newAddr != r1.addr {
		t.Fatalf("promoted %q, want one of the replicas", newAddr)
	}
	if promoted.db.ReadOnly() || promoted.db.Epoch() != 2 {
		t.Fatalf("promoted member readonly=%v epoch=%d, want writable at epoch 2",
			promoted.db.ReadOnly(), promoted.db.Epoch())
	}

	// New writes land on the new primary and replicate to the survivor,
	// which now follows the new primary at the bumped epoch.
	cli, err := wire.Dial(newAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	waitFor(t, "survivor re-pointed and caught up", 10*time.Second, func() bool {
		coord.Tick()
		st := other.db.ReplicationStatus()
		return st.Epoch == 2 && st.AppliedLSN >= promoted.db.Store().Log().LastLSN()
	})

	// Stability: further rounds keep the promoted primary at epoch 2.
	coord.Tick()
	if addr, epoch, _ := coord.Primary(); addr != newAddr || epoch != 2 {
		t.Fatalf("topology flapped to %q at epoch %d", addr, epoch)
	}
}

// TestClusterNodeFencing pins the promote/demote epoch rules: stale epochs
// are refused with the typed error and never roll the fence back.
func TestClusterNodeFencing(t *testing.T) {
	db := engine.NewDB()
	node, err := server.NewClusterNode(db, nil, server.ClusterNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	db.SetEpoch(5)
	for _, e := range []uint64{4, 5} {
		if err := node.Promote(e); !errors.Is(err, engine.ErrStaleEpoch) {
			t.Fatalf("Promote(%d) at epoch 5 = %v, want stale-epoch", e, err)
		}
	}
	if err := node.Demote(4, "127.0.0.1:1"); !errors.Is(err, engine.ErrStaleEpoch) {
		t.Fatalf("Demote(4) at epoch 5 = %v, want stale-epoch", err)
	}
	if db.Epoch() != 5 {
		t.Fatalf("fence rolled back to %d", db.Epoch())
	}
	if err := node.Promote(6); err != nil {
		t.Fatalf("Promote(6): %v", err)
	}
	if db.Epoch() != 6 || db.ReadOnly() {
		t.Fatalf("after promote: epoch %d readonly %v", db.Epoch(), db.ReadOnly())
	}
}

// TestEpochSurvivesRestart: a promotion's epoch is durably persisted in the
// data dir and restored by a fresh harness — a crashed node cannot forget it
// was fenced.
func TestEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db := engine.NewDB()
	node, err := server.NewClusterNode(db, nil, server.ClusterNodeConfig{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Promote(3); err != nil {
		t.Fatal(err)
	}
	db2 := engine.NewDB()
	if _, err := server.NewClusterNode(db2, nil, server.ClusterNodeConfig{DataDir: dir}); err != nil {
		t.Fatal(err)
	}
	if db2.Epoch() != 3 {
		t.Fatalf("restarted node at epoch %d, want 3", db2.Epoch())
	}
}

// TestShowReplicationStatusStaleness: the SHOW surface reports lag in records
// and wall-clock staleness on a live replica.
func TestShowReplicationStatusStaleness(t *testing.T) {
	pdb := engine.NewDB()
	mustExec(t, pdb, `CREATE TABLE t (k int)`)
	mustExec(t, pdb, `INSERT INTO t VALUES (1)`)
	primary := startMember(t, pdb, server.Config{})
	replica := startMember(t, engine.NewDB(), server.Config{})
	replica.node.Follow(primary.addr)
	waitFor(t, "replica catch-up", 10*time.Second, func() bool {
		f := replica.node.Follower()
		return f != nil && f.Status().Connected && f.Status().AppliedLSN >= pdb.Store().Log().LastLSN()
	})

	s := replica.db.NewSession()
	defer s.Close()
	res, err := s.Execute(`SHOW replication_status`)
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, c := range res.Columns {
		col[c] = i
	}
	for _, want := range []string{"role", "epoch", "lag", "staleness_ms"} {
		if _, ok := col[want]; !ok {
			t.Fatalf("SHOW replication_status misses column %q: %v", want, res.Columns)
		}
	}
	row := res.Rows[0]
	if role := row[col["role"]].SQLLiteral(); role != `'replica'` {
		t.Fatalf("role = %s", role)
	}
	if lag := row[col["lag"]].I; lag != 0 {
		t.Fatalf("caught-up replica reports lag %d", lag)
	}
	// A caught-up replica's staleness is bounded by the heartbeat cadence; it
	// must be a sane small number, not an uninitialized epoch-sized value.
	if st := row[col["staleness_ms"]].I; st < 0 || st > 5000 {
		t.Fatalf("staleness_ms = %d, want within a few heartbeats", st)
	}
}

// BenchmarkRouterOverhead measures the routing tax: the same point query
// against a member directly vs through the router (which relays frames
// verbatim, so the expected overhead is one hop plus one copy per frame).
func BenchmarkRouterOverhead(b *testing.B) {
	db := engine.NewDB()
	mustExec(b, db, `CREATE TABLE t (k int, v string)`)
	for i := 0; i < 100; i++ {
		mustExec(b, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d')`, i, i))
	}
	db.SetEpoch(1)
	m := startMember(b, db, server.Config{})
	raddr := startRouter(b, staticTopology{primary: m.addr, epoch: 1, reads: []string{m.addr}})

	run := func(b *testing.B, addr string) {
		cli, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := cli.Query(`SELECT v FROM t WHERE k = 42`)
			if err != nil {
				b.Fatal(err)
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("direct", func(b *testing.B) { run(b, m.addr) })
	b.Run("routed", func(b *testing.B) { run(b, raddr) })
}
