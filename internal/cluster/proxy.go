package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"perm/internal/wire"
)

// Topology is the router's view of the member set: who takes writes, in what
// order to try reads, and the cluster's current fencing epoch. *Coordinator
// implements it; tests substitute fixed topologies.
type Topology interface {
	// Primary returns the current primary's address and fencing epoch; ok is
	// false while the cluster has no known live primary.
	Primary() (addr string, epoch uint64, ok bool)
	// ReadOrder returns the addresses a read should try, best first.
	ReadOrder() []string
	// Epoch is the highest fencing epoch known to the cluster.
	Epoch() uint64
}

// RouterConfig tunes the routing proxy. Topology is required.
type RouterConfig struct {
	Topology Topology
	// DialTimeout bounds each backend connect + handshake; default 2s.
	DialTimeout time.Duration
	// Logf, when set, receives connection lifecycle and routing logs.
	Logf func(format string, args ...any)
}

func (c *RouterConfig) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 2 * time.Second
}

// Router is the cluster's front end: clients connect to it as if it were a
// single permserver, and it relays each statement to the right member —
// writes to the current-epoch primary, reads to the healthiest least-lagged
// replica (falling back to the primary). Frames are relayed verbatim, never
// re-encoded, so a routed row stream costs one extra copy per frame.
//
// Reads are idempotent and are transparently retried on another member when
// a backend dies before the first response frame was forwarded; writes are
// never retried (an unknown outcome is reported, not repeated). A write
// acknowledged under a fencing epoch older than the cluster's current one is
// converted into a typed stale-epoch error: a deposed primary's ack must
// surface as a failure, never as silent split-brain.
//
// Session state is preserved across members: SET statements are recorded and
// replayed onto every backend the session touches, and prepared statements
// are re-parsed on whichever backend a later execute lands on.
type Router struct {
	cfg RouterConfig

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[net.Conn]struct{}
	closing   bool
	wg        sync.WaitGroup
}

// ErrRouterClosed is returned by Serve after Close.
var ErrRouterClosed = errors.New("cluster: router closed")

// NewRouter builds a router over the given topology.
func NewRouter(cfg RouterConfig) *Router {
	return &Router{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[net.Conn]struct{}),
	}
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (r *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(l)
}

// Serve accepts client connections on l until the listener fails or the
// router closes.
func (r *Router) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		l.Close()
		return ErrRouterClosed
	}
	r.listeners[l] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.listeners, l)
		r.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			r.mu.Lock()
			closing := r.closing
			r.mu.Unlock()
			if closing {
				return ErrRouterClosed
			}
			return err
		}
		r.mu.Lock()
		if r.closing {
			r.mu.Unlock()
			nc.Close()
			return ErrRouterClosed
		}
		r.sessions[nc] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		go func() {
			defer r.wg.Done()
			s := &routerSession{r: r, nc: nc, conn: wire.NewConn(nc)}
			s.serve()
			s.closeBackends()
			nc.Close()
			r.mu.Lock()
			delete(r.sessions, nc)
			r.mu.Unlock()
		}()
	}
}

// Close stops accepting, disconnects every session and waits for them.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closing = true
	for l := range r.listeners {
		l.Close()
	}
	for nc := range r.sessions {
		nc.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	return nil
}

// backend is one upstream member connection owned by a session.
type backend struct {
	addr string
	nc   net.Conn
	conn *wire.Conn
	// applied counts the session SET statements already replayed here.
	applied int
	// prepared tracks which session statement names are parsed here.
	prepared map[string]bool
}

func (b *backend) close() {
	if b != nil {
		b.nc.Close()
	}
}

// roundTrip issues one request on the backend and discards the response
// (settings replay, re-parse, statement close). A server-reported error
// comes back as serr with the connection still usable; err is transport
// failure.
func (b *backend) roundTrip(typ byte, payload []byte) (serr *wire.ServerError, err error) {
	if err := b.conn.WriteMessage(typ, payload); err != nil {
		return nil, err
	}
	if err := b.conn.Flush(); err != nil {
		return nil, err
	}
	for {
		rtyp, body, err := b.conn.ReadMessage()
		if err != nil {
			return nil, err
		}
		switch rtyp {
		case wire.MsgError:
			return wire.DecodeServerError(body), nil
		case wire.MsgComplete, wire.MsgParseOK, wire.MsgCloseOK, wire.MsgStatusOK, wire.MsgSuspended, wire.MsgBackupDone:
			return nil, nil
		}
	}
}

// routedStmt is a prepared statement the session registered through the
// router: the SQL travels with the session so the statement can be re-parsed
// on whichever backend a later Execute routes to.
type routedStmt struct {
	sql   string
	write bool
}

// routerSession serves one client connection.
type routerSession struct {
	r    *Router
	nc   net.Conn
	conn *wire.Conn

	settings []string // successful SETs, replayed per backend
	stmts    map[string]routedStmt
	read     *backend
	write    *backend
	portal   *backend // backend holding the open portal, if any
}

// clientError marks a failure on the client side of the relay: the session
// is over (backend errors, by contrast, are routed around or reported).
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

func (s *routerSession) serve() {
	if err := s.handshake(); err != nil {
		return
	}
	for {
		typ, body, err := s.conn.ReadMessage()
		if err != nil {
			return
		}
		if err := s.dispatch(typ, body); err != nil {
			var ce clientError
			if errors.As(err, &ce) {
				return
			}
			// Backend-side failure already reported in-band; session lives on.
			s.r.logf("router: %v", err)
		}
		if typ == wire.MsgTerminate {
			return
		}
	}
}

func (s *routerSession) handshake() error {
	s.nc.SetDeadline(time.Now().Add(s.r.cfg.dialTimeout()))
	defer s.nc.SetDeadline(time.Time{})
	typ, body, err := s.conn.ReadMessage()
	if err != nil {
		return err
	}
	if typ != wire.MsgHello {
		return s.writeError(fmt.Sprintf("expected Hello, got %q", typ), wire.ErrCodeGeneric)
	}
	if _, err := wire.DecodeHello(body); err != nil {
		return s.writeError("malformed Hello", wire.ErrCodeGeneric)
	}
	ok := wire.HelloOK{
		Version: wire.ProtocolVersion,
		Server:  "perm-router",
		Epoch:   s.r.cfg.Topology.Epoch(),
		// The router fronts the whole cluster: it accepts writes (relayed to
		// the primary), so it presents as one.
		Role: "primary",
	}
	return s.send(wire.MsgHelloOK, ok.Encode(nil))
}

func (s *routerSession) send(typ byte, payload []byte) error {
	if err := s.conn.WriteMessage(typ, payload); err != nil {
		return clientError{err}
	}
	if err := s.conn.Flush(); err != nil {
		return clientError{err}
	}
	return nil
}

func (s *routerSession) writeError(msg string, code uint64) error {
	return s.send(wire.MsgError, wire.AppendError(nil, msg, code))
}

func (s *routerSession) dispatch(typ byte, body []byte) error {
	switch typ {
	case wire.MsgQuery:
		r := wire.NewReader(body)
		sql := r.String()
		if r.Err() != nil {
			return s.writeError("malformed query frame", wire.ErrCodeGeneric)
		}
		switch Classify(sql) {
		case ClassWrite:
			return s.relayWrite(typ, body)
		case ClassSession:
			return s.relaySession(sql, body)
		default:
			return s.relayRead(typ, body, nil)
		}
	case wire.MsgExecute:
		m, err := wire.DecodeExecute(body)
		if err != nil {
			return s.writeError("malformed execute frame", wire.ErrCodeGeneric)
		}
		if m.Name != "" {
			st, ok := s.stmts[m.Name]
			if !ok {
				return s.writeError(fmt.Sprintf("unknown prepared statement %q", m.Name), wire.ErrCodeGeneric)
			}
			if st.write {
				return s.relayWrite(typ, body)
			}
			return s.relayRead(typ, body, &m.Name)
		}
		if Classify(m.SQL) == ClassWrite {
			return s.relayWrite(typ, body)
		}
		return s.relayRead(typ, body, nil)
	case wire.MsgParse:
		return s.handleParse(body)
	case wire.MsgFetch, wire.MsgClosePortal:
		return s.relayPortal(typ, body)
	case wire.MsgCloseStmt:
		return s.handleCloseStmt(body)
	case wire.MsgStatus:
		return s.relayRead(typ, body, nil)
	case wire.MsgTerminate:
		return nil
	case wire.MsgBackup, wire.MsgSubscribe, wire.MsgPromote, wire.MsgDemote:
		return s.writeError(fmt.Sprintf("request %q is not routable; connect to a cluster member directly", typ), wire.ErrCodeGeneric)
	}
	return s.writeError(fmt.Sprintf("unexpected frame %q", typ), wire.ErrCodeGeneric)
}

// isTerminal reports whether rtyp ends one server response.
func isTerminal(rtyp byte) bool {
	switch rtyp {
	case wire.MsgComplete, wire.MsgError, wire.MsgParseOK, wire.MsgSuspended,
		wire.MsgCloseOK, wire.MsgStatusOK, wire.MsgBackupDone:
		return true
	}
	return false
}

// relay forwards one request to b and streams the response back verbatim.
// It returns the terminal frame type, whether any frame reached the client,
// and the backend transport error if the stream broke.
func (s *routerSession) relay(b *backend, typ byte, payload []byte, checkEpoch bool) (rtyp byte, forwarded bool, err error) {
	if err := b.conn.WriteMessage(typ, payload); err != nil {
		return 0, false, err
	}
	if err := b.conn.Flush(); err != nil {
		return 0, false, err
	}
	for {
		rtyp, body, err := b.conn.ReadMessage()
		if err != nil {
			return 0, forwarded, err
		}
		if rtyp == wire.MsgComplete && checkEpoch {
			if done, derr := wire.DecodeComplete(body); derr == nil && done.Epoch > 0 {
				if cur := s.r.cfg.Topology.Epoch(); done.Epoch < cur {
					// The ack came from a primary the cluster has since
					// fenced: the write may not survive the failover. Typed
					// failure, not a silent ack.
					return rtyp, true, s.writeError(fmt.Sprintf(
						"write acknowledged at stale cluster epoch %d (cluster is at %d); outcome unknown after failover",
						done.Epoch, cur), wire.ErrCodeStaleEpoch)
				}
			}
		}
		if werr := s.conn.WriteMessage(rtyp, body); werr != nil {
			return rtyp, forwarded, clientError{werr}
		}
		forwarded = true
		if isTerminal(rtyp) {
			if werr := s.conn.Flush(); werr != nil {
				return rtyp, forwarded, clientError{werr}
			}
			return rtyp, forwarded, nil
		}
	}
}

// trackPortal records which backend holds the open portal after an
// Execute/Fetch response ended with rtyp.
func (s *routerSession) trackPortal(rtyp byte, b *backend) {
	if rtyp == wire.MsgSuspended {
		s.portal = b
	} else {
		s.portal = nil
	}
}

// relayWrite routes one statement to the current-epoch primary. Writes are
// never retried: a transport failure mid-request has an unknown outcome and
// is reported as such.
func (s *routerSession) relayWrite(typ byte, body []byte) error {
	mRouteWrites.Inc()
	b, err := s.writeBackend()
	if err != nil {
		return s.writeError("cluster has no writable primary: "+err.Error(), wire.ErrCodeGeneric)
	}
	if err := s.prepareBackend(b, typ, body); err != nil {
		return err
	}
	rtyp, forwarded, err := s.relay(b, typ, body, true)
	if err != nil {
		var ce clientError
		if errors.As(err, &ce) {
			return err
		}
		s.dropBackend(b)
		if forwarded {
			return s.writeError("primary connection failed mid-response: "+err.Error(), wire.ErrCodeGeneric)
		}
		return s.writeError("primary connection failed; write outcome unknown: "+err.Error(), wire.ErrCodeGeneric)
	}
	if typ == wire.MsgExecute || typ == wire.MsgFetch {
		s.trackPortal(rtyp, b)
	}
	return nil
}

// relayRead routes one idempotent request across the topology's read order,
// transparently retrying on the next candidate while nothing has been
// forwarded to the client yet. stmt, when set, names a prepared statement
// that must exist on the chosen backend before the request is relayed.
func (s *routerSession) relayRead(typ byte, body []byte, stmt *string) error {
	mRouteReads.Inc()
	var lastErr error
	tried := 0
	for _, addr := range s.r.cfg.Topology.ReadOrder() {
		if tried++; tried > 1 {
			mReadRetries.Inc()
		}
		b, err := s.readBackend(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.prepareBackend(b, typ, body); err != nil {
			var ce clientError
			if errors.As(err, &ce) {
				return err
			}
			s.dropBackend(b)
			lastErr = err
			continue
		}
		if stmt != nil {
			if err := s.ensurePrepared(b, *stmt); err != nil {
				var se *wire.ServerError
				if errors.As(err, &se) {
					// The statement itself is bad; no other member will do
					// better.
					return s.send(wire.MsgError, wire.AppendError(nil, se.Message, se.Code))
				}
				s.dropBackend(b)
				lastErr = err
				continue
			}
		}
		rtyp, forwarded, err := s.relay(b, typ, body, false)
		if err == nil {
			if typ == wire.MsgExecute || typ == wire.MsgFetch {
				s.trackPortal(rtyp, b)
			}
			return nil
		}
		var ce clientError
		if errors.As(err, &ce) {
			return err
		}
		s.dropBackend(b)
		lastErr = err
		if forwarded {
			// The client already saw part of this response; a retry would
			// corrupt the stream. End the statement with an in-band error —
			// the protocol allows a mid-stream error and the session
			// survives.
			return s.writeError("backend failed mid-response: "+err.Error(), wire.ErrCodeGeneric)
		}
	}
	msg := "no healthy cluster member to serve the request"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	return s.writeError(msg, wire.ErrCodeGeneric)
}

// relaySession runs a SET on the read path and, on success, records it for
// replay on every backend the session touches later.
func (s *routerSession) relaySession(sql string, body []byte) error {
	var lastErr error
	for _, addr := range s.r.cfg.Topology.ReadOrder() {
		b, err := s.readBackend(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.prepareBackend(b, wire.MsgQuery, body); err != nil {
			var ce clientError
			if errors.As(err, &ce) {
				return err
			}
			s.dropBackend(b)
			lastErr = err
			continue
		}
		rtyp, forwarded, err := s.relay(b, wire.MsgQuery, body, false)
		if err == nil {
			if rtyp == wire.MsgComplete {
				s.settings = append(s.settings, sql)
				b.applied = len(s.settings)
			}
			return nil
		}
		var ce clientError
		if errors.As(err, &ce) {
			return err
		}
		s.dropBackend(b)
		lastErr = err
		if forwarded {
			return s.writeError("backend failed mid-response: "+err.Error(), wire.ErrCodeGeneric)
		}
	}
	msg := "no healthy cluster member to serve the request"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	return s.writeError(msg, wire.ErrCodeGeneric)
}

// relayPortal relays Fetch/ClosePortal to whichever backend holds the open
// portal.
func (s *routerSession) relayPortal(typ byte, body []byte) error {
	b := s.portal
	if b == nil {
		return s.writeError("no open portal on this connection", wire.ErrCodeGeneric)
	}
	rtyp, forwarded, err := s.relay(b, typ, body, false)
	if err != nil {
		var ce clientError
		if errors.As(err, &ce) {
			return err
		}
		s.dropBackend(b)
		if !forwarded {
			return s.writeError("backend holding the portal failed: "+err.Error(), wire.ErrCodeGeneric)
		}
		return s.writeError("backend failed mid-response: "+err.Error(), wire.ErrCodeGeneric)
	}
	if typ == wire.MsgClosePortal {
		s.portal = nil
	} else {
		s.trackPortal(rtyp, b)
	}
	return nil
}

// handleParse registers a prepared statement: the Parse is relayed to the
// backend its class routes to, and the SQL is remembered so other backends
// can be brought up to date on demand.
func (s *routerSession) handleParse(body []byte) error {
	m, err := wire.DecodeParse(body)
	if err != nil {
		return s.writeError("malformed parse frame", wire.ErrCodeGeneric)
	}
	write := Classify(m.SQL) == ClassWrite
	record := func(b *backend) {
		if s.stmts == nil {
			s.stmts = make(map[string]routedStmt)
		}
		s.stmts[m.Name] = routedStmt{sql: m.SQL, write: write}
		if b.prepared == nil {
			b.prepared = make(map[string]bool)
		}
		b.prepared[m.Name] = true
	}
	if write {
		b, err := s.writeBackend()
		if err != nil {
			return s.writeError("cluster has no writable primary: "+err.Error(), wire.ErrCodeGeneric)
		}
		if err := s.prepareBackend(b, wire.MsgParse, body); err != nil {
			return err
		}
		rtyp, _, err := s.relay(b, wire.MsgParse, body, false)
		if err != nil {
			var ce clientError
			if errors.As(err, &ce) {
				return err
			}
			s.dropBackend(b)
			return s.writeError("primary connection failed: "+err.Error(), wire.ErrCodeGeneric)
		}
		if rtyp == wire.MsgParseOK {
			record(b)
		}
		return nil
	}
	return s.relayReadParse(body, m, record)
}

func (s *routerSession) relayReadParse(body []byte, m wire.Parse, record func(*backend)) error {
	var lastErr error
	for _, addr := range s.r.cfg.Topology.ReadOrder() {
		b, err := s.readBackend(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.prepareBackend(b, wire.MsgParse, body); err != nil {
			var ce clientError
			if errors.As(err, &ce) {
				return err
			}
			s.dropBackend(b)
			lastErr = err
			continue
		}
		rtyp, forwarded, err := s.relay(b, wire.MsgParse, body, false)
		if err == nil {
			if rtyp == wire.MsgParseOK {
				record(b)
			}
			return nil
		}
		var ce clientError
		if errors.As(err, &ce) {
			return err
		}
		s.dropBackend(b)
		lastErr = err
		if forwarded {
			return s.writeError("backend failed mid-response: "+err.Error(), wire.ErrCodeGeneric)
		}
	}
	msg := "no healthy cluster member to serve the request"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	return s.writeError(msg, wire.ErrCodeGeneric)
}

// handleCloseStmt deallocates a routed prepared statement everywhere it was
// parsed, then acknowledges once. Deallocation is idempotent, so backend
// errors here only drop the backend.
func (s *routerSession) handleCloseStmt(body []byte) error {
	r := wire.NewReader(body)
	name := r.String()
	if r.Err() != nil {
		return s.writeError("malformed close frame", wire.ErrCodeGeneric)
	}
	delete(s.stmts, name)
	for _, b := range []*backend{s.read, s.write} {
		if b == nil || !b.prepared[name] {
			continue
		}
		delete(b.prepared, name)
		if _, err := b.roundTrip(wire.MsgCloseStmt, body); err != nil {
			s.dropBackend(b)
		}
	}
	return s.send(wire.MsgCloseOK, nil)
}

// writeBackend returns the session's connection to the current-epoch
// primary, (re)connecting when the primary moved.
func (s *routerSession) writeBackend() (*backend, error) {
	addr, _, ok := s.r.cfg.Topology.Primary()
	if !ok {
		return nil, errors.New("no live primary")
	}
	if s.write != nil && s.write.addr == addr {
		return s.write, nil
	}
	if s.write != nil {
		s.write.close()
		s.write = nil
	}
	b, err := s.r.dialBackend(addr)
	if err != nil {
		return nil, err
	}
	s.write = b
	return b, nil
}

// readBackend returns the session's read connection, pinned while healthy:
// reads load-balance across sessions, not across statements, so prepared
// statements and session settings need replaying at most once per failover.
func (s *routerSession) readBackend(addr string) (*backend, error) {
	if s.read != nil && s.read.addr == addr {
		return s.read, nil
	}
	if s.read != nil {
		s.read.close()
		s.read = nil
	}
	b, err := s.r.dialBackend(addr)
	if err != nil {
		return nil, err
	}
	s.read = b
	return b, nil
}

func (s *routerSession) dropBackend(b *backend) {
	b.close()
	if s.read == b {
		s.read = nil
	}
	if s.write == b {
		s.write = nil
	}
	if s.portal == b {
		s.portal = nil
	}
}

func (s *routerSession) closeBackends() {
	s.read.close()
	s.write.close()
}

// prepareBackend brings b up to date with the session's recorded state
// before a request is relayed there: pending SET statements are replayed
// (the request itself, passed for context, is not run here).
func (s *routerSession) prepareBackend(b *backend, typ byte, body []byte) error {
	for b.applied < len(s.settings) {
		sql := s.settings[b.applied]
		serr, err := b.roundTrip(wire.MsgQuery, wire.AppendString(nil, sql))
		if err != nil {
			return err
		}
		if serr != nil {
			// The member rejected a setting the session carries (version
			// skew). Keep going: the setting applied where it was issued, and
			// refusing all routing over it would take the session down.
			s.r.logf("router: replaying %q on %s: %v", sql, b.addr, serr)
		}
		b.applied++
	}
	return nil
}

// ensurePrepared re-parses the named statement on b when it is not there
// yet. A server-reported parse failure comes back as *wire.ServerError.
func (s *routerSession) ensurePrepared(b *backend, name string) error {
	if b.prepared[name] {
		return nil
	}
	st, ok := s.stmts[name]
	if !ok {
		return &wire.ServerError{Message: fmt.Sprintf("unknown prepared statement %q", name)}
	}
	serr, err := b.roundTrip(wire.MsgParse, wire.Parse{Name: name, SQL: st.sql}.Encode(nil))
	if err != nil {
		return err
	}
	if serr != nil {
		return serr
	}
	if b.prepared == nil {
		b.prepared = make(map[string]bool)
	}
	b.prepared[name] = true
	return nil
}

// dialBackend opens one member connection with the handshake done.
func (r *Router) dialBackend(addr string) (*backend, error) {
	nc, err := net.DialTimeout("tcp", addr, r.cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	conn := wire.NewConn(nc)
	nc.SetDeadline(time.Now().Add(r.cfg.dialTimeout()))
	if _, err := wire.Handshake(conn, "perm-router"); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return &backend{addr: addr, nc: nc, conn: conn}, nil
}
