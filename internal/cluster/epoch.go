// Package cluster is the availability layer over the replicated, durable
// core: fencing epochs persisted beside the WAL, a coordinator that detects
// primary failure and promotes the most-caught-up replica, and a routing
// proxy that splits reads from writes across the member set.
//
// The package deliberately depends only on internal/wire (plus the standard
// library): coordinator and router speak to members purely through the
// protocol, exactly like any other client, so they can run anywhere — inside
// cmd/permrouter, inside a test, or beside a member process.
package cluster

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// epochFile is the name of the fencing-epoch sidecar inside a data
// directory, next to the WAL segments and snapshot.
const epochFile = "epoch"

// LoadEpoch reads the persisted fencing epoch from dir. A missing file is
// epoch 0 ("never clustered"), not an error.
func LoadEpoch(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, epochFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: read epoch: %w", err)
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: corrupt epoch file %q: %w", filepath.Join(dir, epochFile), err)
	}
	return e, nil
}

// SaveEpoch durably persists the fencing epoch in dir: write-temp, fsync,
// rename, fsync-dir — the same atomic-install discipline as the WAL's
// checkpoint, because the epoch IS the fence: a promotion that is not on
// disk before the node acknowledges writes could be forgotten by a crash,
// resurrecting a deposed primary at full authority.
func SaveEpoch(dir string, epoch uint64) error {
	tmp := filepath.Join(dir, epochFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: write epoch: %w", err)
	}
	_, err = fmt.Fprintf(f, "%d\n", epoch)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: write epoch: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, epochFile)); err != nil {
		return fmt.Errorf("cluster: install epoch: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cluster: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("cluster: sync dir: %w", err)
	}
	return nil
}
