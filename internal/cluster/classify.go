package cluster

import "strings"

// StatementClass is the router's three-way routing decision for one SQL
// statement.
type StatementClass int

const (
	// ClassRead statements mutate nothing and are idempotent: safe on any
	// member, safe to retry on another member if the first dies mid-request.
	ClassRead StatementClass = iota
	// ClassWrite statements mutate data or schema: primary only, never
	// retried by the router (the failure mode "did it commit?" belongs to
	// the client).
	ClassWrite
	// ClassSession statements (SET) mutate per-session state only. The
	// router records them and replays them onto every backend the session
	// touches, so contribution semantics and rewrite strategies follow the
	// session across members.
	ClassSession
)

// Classify routes one SQL statement. The keyword set mirrors the driver's
// read-only enforcement: SELECT, VALUES, EXPLAIN, SHOW, parenthesized
// queries and empty statements read; SET is session-local; everything else
// writes.
func Classify(sql string) StatementClass {
	switch FirstKeyword(sql) {
	case "select", "values", "explain", "show", "(", "":
		return ClassRead
	case "set":
		return ClassSession
	}
	return ClassWrite
}

// FirstKeyword returns the statement's leading keyword, lowercased, skipping
// whitespace, comments and empty statements — the engine's parser skips
// leading semicolons too, so ";INSERT …" must classify as "insert", not as
// empty ("(" for a parenthesized query, "" for a genuinely empty statement).
// The perm driver shares this implementation for its client-side read-only
// enforcement.
func FirstKeyword(s string) string {
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r' || s[i] == ';':
			i++
		case s[i] == '-' && i+1 < len(s) && s[i+1] == '-':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '*':
			depth := 1
			i += 2
			for i < len(s) && depth > 0 {
				switch {
				case i+1 < len(s) && s[i] == '/' && s[i+1] == '*':
					depth++
					i += 2
				case i+1 < len(s) && s[i] == '*' && s[i+1] == '/':
					depth--
					i += 2
				default:
					i++
				}
			}
		case s[i] == '(':
			return "("
		default:
			j := i
			for j < len(s) && (s[j] == '_' || 'a' <= s[j]|0x20 && s[j]|0x20 <= 'z') {
				j++
			}
			return strings.ToLower(s[i:j])
		}
	}
	return ""
}
