package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perm/internal/wire"
)

// CoordinatorConfig tunes the failure detector and promotion policy. Only
// Members is required.
type CoordinatorConfig struct {
	// Members is the fixed set of cluster member addresses (host:port).
	Members []string
	// ProbeInterval is how often every member is probed; default 500ms.
	ProbeInterval time.Duration
	// LeaseTimeout is how long the primary may go unseen before failover is
	// declared; default 3s. It should be a comfortable multiple of
	// ProbeInterval — a single dropped probe must not trigger a promotion.
	LeaseTimeout time.Duration
	// DialTimeout bounds each probe's connect + status round trip; default 1s.
	DialTimeout time.Duration
	// Logf, when set, receives probe failures and role-transition logs.
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) fill() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 3 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
}

// Member is one member's last observed state, for \cluster displays and the
// router's backend selection.
type Member struct {
	Addr    string
	Healthy bool
	// LastSeen is when the member last answered a probe.
	LastSeen time.Time
	// Err is the last probe failure, empty while healthy.
	Err string
	// Status is the member's last successful probe answer (zero value until
	// the first success).
	Status wire.NodeStatus
}

// Coordinator is the cluster's failure detector and promotion authority: it
// probes every member on a fixed interval, tracks which member is primary
// under the highest fencing epoch, and — when the primary's lease expires —
// promotes the most-caught-up healthy replica at a freshly bumped epoch,
// then demotes every other member onto the new primary. A deposed primary
// that comes back is demoted the same way: it adopts the higher epoch and
// re-seeds from the new timeline if it diverged.
//
// The coordinator speaks pure wire protocol, so it runs anywhere: inside
// cmd/permrouter (the usual deployment), inside a test topology, or as a
// standalone process.
type Coordinator struct {
	cfg CoordinatorConfig

	mu          sync.Mutex
	clients     map[string]*wire.Client
	members     map[string]*Member
	epoch       uint64 // highest fencing epoch observed anywhere
	primary     string // member serving as primary under epoch; "" while unknown
	primarySeen time.Time

	stop     chan struct{}
	stopOnce sync.Once
	running  atomic.Bool
	done     chan struct{}
}

// NewCoordinator builds a coordinator over the given member set. Call Run
// (usually in a goroutine) to start probing.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:     cfg,
		clients: make(map[string]*wire.Client),
		members: make(map[string]*Member),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, addr := range cfg.Members {
		c.members[addr] = &Member{Addr: addr}
	}
	// The lease starts now: a cluster that boots with its primary already
	// dead still fails over, but only after a full lease of evidence.
	c.primarySeen = time.Now()
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run probes until Stop. It blocks; run it in a goroutine.
func (c *Coordinator) Run() {
	c.running.Store(true)
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		c.Tick()
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
	}
}

// Stop terminates Run and closes every member connection. It is safe on a
// coordinator whose Run was never started (tests stepping Tick directly) —
// it only waits for a loop that actually exists.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.running.Load() {
		<-c.done
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, cli := range c.clients {
		cli.Close()
		delete(c.clients, addr)
	}
}

// Tick runs one probe-and-evaluate round. Run calls it on the configured
// interval; tests call it directly for deterministic stepping.
func (c *Coordinator) Tick() {
	var wg sync.WaitGroup
	for _, addr := range c.cfg.Members {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			st, err := c.probe(addr)
			c.mu.Lock()
			m := c.members[addr]
			if err != nil {
				m.Healthy = false
				m.Err = err.Error()
			} else {
				m.Healthy = true
				m.Err = ""
				m.LastSeen = time.Now()
				m.Status = st
				if st.Epoch > c.epoch {
					c.epoch = st.Epoch
					mEpoch.Set(int64(c.epoch))
				}
			}
			c.mu.Unlock()
		}(addr)
	}
	wg.Wait()
	c.evaluate()
}

// probe issues one Status round trip on the member's persistent connection,
// dialing a fresh one when needed. Any failure retires the connection — the
// next round redials.
func (c *Coordinator) probe(addr string) (wire.NodeStatus, error) {
	cli, err := c.client(addr)
	if err != nil {
		return wire.NodeStatus{}, err
	}
	st, err := c.timed(cli, func() (wire.NodeStatus, error) { return cli.Status() })
	if err != nil {
		c.retire(addr, cli)
		return wire.NodeStatus{}, err
	}
	return st, nil
}

func (c *Coordinator) client(addr string) (*wire.Client, error) {
	c.mu.Lock()
	cli := c.clients[addr]
	c.mu.Unlock()
	if cli != nil {
		return cli, nil
	}
	cli, err := wire.DialTimeout(addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients[addr] = cli
	c.mu.Unlock()
	return cli, nil
}

func (c *Coordinator) retire(addr string, cli *wire.Client) {
	cli.Close()
	c.mu.Lock()
	if c.clients[addr] == cli {
		delete(c.clients, addr)
	}
	c.mu.Unlock()
}

// timed bounds one client round trip with the dial timeout, aborting the
// connection (which retires it) when the member hangs rather than refuses.
func (c *Coordinator) timed(cli *wire.Client, op func() (wire.NodeStatus, error)) (wire.NodeStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.DialTimeout)
	defer cancel()
	stop := wire.WatchCancel(ctx, cli.Abort)
	st, err := op()
	stop()
	if err == nil {
		if cerr := ctx.Err(); cerr != nil {
			return wire.NodeStatus{}, cerr
		}
		cli.ResetDeadline()
	}
	return st, err
}

// evaluate applies the role policy to the freshly probed state: track the
// live primary, fail over when its lease expires, and demote every member
// that is not the current-epoch primary onto it.
func (c *Coordinator) evaluate() {
	c.mu.Lock()
	// The authoritative primary is the healthy member claiming "primary"
	// under the highest epoch; ties (a transient split-brain the fencing
	// epochs are about to resolve) go to the higher epoch, which demotes
	// the rest below.
	best := ""
	var bestEpoch uint64
	for _, m := range c.members {
		if m.Healthy && m.Status.Role == "primary" && (best == "" || m.Status.Epoch > bestEpoch) {
			best, bestEpoch = m.Addr, m.Status.Epoch
		}
	}
	if best != "" && bestEpoch >= c.epoch {
		c.primary = best
		c.primarySeen = time.Now()
	}
	primary := c.primary
	expired := time.Since(c.primarySeen) > c.cfg.LeaseTimeout
	primaryHealthy := primary != "" && c.members[primary] != nil && c.members[primary].Healthy &&
		c.members[primary].Status.Role == "primary" && c.members[primary].Status.Epoch >= c.epoch
	c.mu.Unlock()

	if !primaryHealthy && expired {
		c.failover()
		return
	}
	if primaryHealthy {
		c.converge(primary)
	}
}

// failover promotes the most-caught-up healthy replica at a bumped epoch.
func (c *Coordinator) failover() {
	c.mu.Lock()
	var candidate *Member
	for _, addr := range c.cfg.Members {
		m := c.members[addr]
		if !m.Healthy || addr == c.primary {
			continue
		}
		// Most durably applied wins; ties break on applied position, then on
		// member order so the choice is deterministic.
		if candidate == nil ||
			m.Status.DurableLSN > candidate.Status.DurableLSN ||
			(m.Status.DurableLSN == candidate.Status.DurableLSN && m.Status.AppliedLSN > candidate.Status.AppliedLSN) {
			candidate = m
		}
	}
	if candidate == nil {
		c.mu.Unlock()
		c.logf("cluster: primary lease expired but no healthy replica to promote")
		return
	}
	newEpoch := c.epoch + 1
	addr := candidate.Addr
	c.mu.Unlock()

	c.logf("cluster: primary %q lease expired; promoting %s at epoch %d", c.PrimaryAddr(), addr, newEpoch)
	cli, err := c.client(addr)
	if err != nil {
		c.logf("cluster: promote %s: %v", addr, err)
		return
	}
	st, err := c.timed(cli, func() (wire.NodeStatus, error) { return cli.Promote(newEpoch) })
	if err != nil {
		c.retire(addr, cli)
		c.logf("cluster: promote %s at epoch %d: %v", addr, newEpoch, err)
		return
	}

	c.mu.Lock()
	c.epoch = newEpoch
	mEpoch.Set(int64(newEpoch))
	mPromotions.Inc()
	c.primary = addr
	c.primarySeen = time.Now()
	if m := c.members[addr]; m != nil {
		m.Status = st
		m.Healthy = true
		m.Err = ""
		m.LastSeen = time.Now()
	}
	c.mu.Unlock()
	c.logf("cluster: %s is primary at epoch %d", addr, newEpoch)
	c.converge(addr)
}

// converge demotes every healthy member that is not the primary onto it.
// Demote is idempotent on a conforming follower, so issuing it each round is
// cheap; what it actually catches is a returning deposed primary (fenced at
// a stale epoch) and followers still streaming from the old address.
func (c *Coordinator) converge(primary string) {
	c.mu.Lock()
	epoch := c.epoch
	var targets []string
	for _, addr := range c.cfg.Members {
		m := c.members[addr]
		if addr == primary || !m.Healthy {
			continue
		}
		targets = append(targets, addr)
	}
	c.mu.Unlock()
	for _, addr := range targets {
		cli, err := c.client(addr)
		if err != nil {
			continue
		}
		st, err := c.timed(cli, func() (wire.NodeStatus, error) { return cli.Demote(epoch, primary) })
		if err != nil {
			c.retire(addr, cli)
			c.logf("cluster: demote %s to follow %s at epoch %d: %v", addr, primary, epoch, err)
			continue
		}
		c.mu.Lock()
		if m := c.members[addr]; m != nil {
			m.Status = st
		}
		c.mu.Unlock()
	}
}

// Epoch is the highest fencing epoch the coordinator has observed or minted.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// PrimaryAddr returns the current primary's address ("" while unknown).
func (c *Coordinator) PrimaryAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// Primary returns the current primary's address and epoch; ok is false while
// the cluster has no known live primary.
func (c *Coordinator) Primary() (addr string, epoch uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.primary == "" {
		return "", 0, false
	}
	m := c.members[c.primary]
	if m == nil || !m.Healthy {
		return "", 0, false
	}
	return c.primary, c.epoch, true
}

// ReadOrder returns the addresses a read should try, in preference order:
// healthy replicas least-lagged first, then the primary as the fallback that
// is always current.
func (c *Coordinator) ReadOrder() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var replicas []*Member
	for _, addr := range c.cfg.Members {
		m := c.members[addr]
		if m.Healthy && addr != c.primary && m.Status.Role == "replica" {
			replicas = append(replicas, m)
		}
	}
	sort.SliceStable(replicas, func(i, j int) bool {
		if li, lj := replicas[i].Status.LagRecords(), replicas[j].Status.LagRecords(); li != lj {
			return li < lj
		}
		return replicas[i].Status.StalenessMs < replicas[j].Status.StalenessMs
	})
	order := make([]string, 0, len(replicas)+1)
	for _, m := range replicas {
		order = append(order, m.Addr)
	}
	if c.primary != "" {
		if m := c.members[c.primary]; m != nil && m.Healthy {
			order = append(order, c.primary)
		}
	}
	return order
}

// View snapshots every member's last observed state, in configured order —
// what permshell's \cluster renders.
func (c *Coordinator) View() []Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Member, 0, len(c.cfg.Members))
	for _, addr := range c.cfg.Members {
		out = append(out, *c.members[addr])
	}
	return out
}

// String renders a one-line topology summary for logs.
func (c *Coordinator) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("cluster{epoch %d, primary %q, %d members}", c.epoch, c.primary, len(c.members))
}
