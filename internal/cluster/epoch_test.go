package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEpochMissingFileIsZero(t *testing.T) {
	e, err := LoadEpoch(t.TempDir())
	if err != nil || e != 0 {
		t.Fatalf("LoadEpoch(empty dir) = %d, %v; want 0, nil", e, err)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, e := range []uint64{1, 2, 7, 7, 1<<40 + 3} {
		if err := SaveEpoch(dir, e); err != nil {
			t.Fatalf("SaveEpoch(%d): %v", e, err)
		}
		got, err := LoadEpoch(dir)
		if err != nil || got != e {
			t.Fatalf("LoadEpoch after SaveEpoch(%d) = %d, %v", e, got, err)
		}
	}
	// The install is atomic: no temp file may linger.
	if _, err := os.Stat(filepath.Join(dir, epochFile+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp epoch file left behind: %v", err)
	}
}

func TestEpochCorruptFileIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, epochFile), []byte("bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEpoch(dir); err == nil {
		t.Fatal("LoadEpoch accepted a corrupt epoch file")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sql  string
		want StatementClass
	}{
		{"SELECT 1", ClassRead},
		{"  select PROVENANCE * from messages", ClassRead},
		{"VALUES (1, 2)", ClassRead},
		{"EXPLAIN SELECT 1", ClassRead},
		{"SHOW replication_status", ClassRead},
		{"(SELECT 1) UNION (SELECT 2)", ClassRead},
		{"-- leading comment\nSELECT 1", ClassRead},
		{"/* block */ select 1", ClassRead},
		{";; SELECT 1", ClassRead},
		{"", ClassRead},
		{"SET provenance_contribution = 'copy'", ClassSession},
		{"  set wal_sync = 'group'", ClassSession},
		{"INSERT INTO t VALUES (1)", ClassWrite},
		{"UPDATE t SET v = 1", ClassWrite},
		{"DELETE FROM t", ClassWrite},
		{"CREATE TABLE t (a int)", ClassWrite},
		{"DROP VIEW v", ClassWrite},
		{"ANALYZE t", ClassWrite},
	}
	for _, c := range cases {
		if got := Classify(c.sql); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestFirstKeyword(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT 1", "select"},
		{"-- c\n  /* c2 */ Insert into t", "insert"},
		{"; ;\nupdate t set v=1", "update"},
		{"", ""},
		{"/* unterminated", ""},
	}
	for _, c := range cases {
		if got := FirstKeyword(c.sql); got != c.want {
			t.Errorf("FirstKeyword(%q) = %q, want %q", c.sql, got, c.want)
		}
	}
}
