// Package catalog holds the schema metadata of a Perm database: table and
// view definitions, column types, and the basic statistics the cost-based
// rewrite-strategy chooser and the planner consume.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"perm/internal/value"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type value.Kind
	// NotNull is informational; the engine enforces it on INSERT.
	NotNull bool
}

// TableDef describes a stored base relation.
type TableDef struct {
	Name    string
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1.
func (t *TableDef) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ViewDef describes a stored view. Text is the original SQL of the defining
// query; the analyzer re-parses and unfolds it at use sites, exactly like the
// "view unfolding" stage in the Perm architecture diagram (Figure 3).
type ViewDef struct {
	Name string
	Text string
	// Columns caches the output schema of the defining query so that other
	// queries can resolve names against the view without re-analysis.
	Columns []Column
}

// Stats carries per-table statistics for costing.
type Stats struct {
	RowCount int
	// DistinctFrac estimates, per column, the fraction of distinct values
	// (1.0 = all distinct / key-like). Missing columns default to 0.1.
	DistinctFrac map[string]float64
}

// Catalog is the mutable schema registry. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableDef
	views  map[string]*ViewDef
	stats  map[string]*Stats
	// version counts schema-changing operations (CREATE/DROP of tables and
	// views, explicit statistics refreshes). Plan caches tag entries with the
	// version they were planned under and discard them when it moves.
	version atomic.Uint64
}

// Version returns the current schema version.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// BumpVersion advances the schema version, invalidating cached plans. DDL
// paths call it internally; the engine also calls it for operations outside
// the catalog's view (e.g. ANALYZE refreshing statistics used at plan time).
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*TableDef),
		views:  make(map[string]*ViewDef),
		stats:  make(map[string]*Stats),
	}
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a table definition.
func (c *Catalog) CreateTable(def *TableDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(def.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", def.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %q already exists", def.Name)
	}
	if len(def.Columns) == 0 {
		return fmt.Errorf("table %q must have at least one column", def.Name)
	}
	seen := make(map[string]bool, len(def.Columns))
	for _, col := range def.Columns {
		ck := key(col.Name)
		if seen[ck] {
			return fmt.Errorf("duplicate column %q in table %q", col.Name, def.Name)
		}
		seen[ck] = true
	}
	c.tables[k] = def
	c.stats[k] = &Stats{DistinctFrac: make(map[string]float64)}
	c.version.Add(1)
	return nil
}

// DropTable removes a table definition.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, k)
	delete(c.stats, k)
	c.version.Add(1)
	return nil
}

// Table returns the definition of the named table, or nil.
func (c *Catalog) Table(name string) *TableDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[key(name)]
}

// CreateView registers a view.
func (c *Catalog) CreateView(def *ViewDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(def.Name)
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %q already exists", def.Name)
	}
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", def.Name)
	}
	c.views[k] = def
	c.version.Add(1)
	return nil
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("view %q does not exist", name)
	}
	delete(c.views, k)
	c.version.Add(1)
	return nil
}

// View returns the named view, or nil.
func (c *Catalog) View(name string) *ViewDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[key(name)]
}

// TableNames returns the sorted list of table names.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// ViewNames returns the sorted list of view names.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.views))
	for _, v := range c.views {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	return names
}

// SetRowCount records the cardinality statistic for a table.
func (c *Catalog) SetRowCount(name string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stats[key(name)]
	if !ok {
		s = &Stats{DistinctFrac: make(map[string]float64)}
		c.stats[key(name)] = s
	}
	s.RowCount = n
}

// SetDistinctFrac records the distinct-fraction statistic for a column.
func (c *Catalog) SetDistinctFrac(table, column string, frac float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stats[key(table)]
	if !ok {
		s = &Stats{DistinctFrac: make(map[string]float64)}
		c.stats[key(table)] = s
	}
	s.DistinctFrac[key(column)] = frac
}

// TableStats returns a copy of the statistics for the table (zero Stats when
// unknown).
func (c *Catalog) TableStats(name string) Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.stats[key(name)]
	if !ok {
		return Stats{DistinctFrac: map[string]float64{}}
	}
	out := Stats{RowCount: s.RowCount, DistinctFrac: make(map[string]float64, len(s.DistinctFrac))}
	for k, v := range s.DistinctFrac {
		out.DistinctFrac[k] = v
	}
	return out
}
