package catalog

import (
	"sync"
	"testing"

	"perm/internal/value"
)

func def(name string, cols ...string) *TableDef {
	d := &TableDef{Name: name}
	for _, c := range cols {
		d.Columns = append(d.Columns, Column{Name: c, Type: value.KindInt})
	}
	return d
}

func TestCreateAndLookupTable(t *testing.T) {
	c := New()
	if err := c.CreateTable(def("T1", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if c.Table("t1") == nil || c.Table("T1") == nil {
		t.Error("lookup must be case-insensitive")
	}
	if c.Table("t2") != nil {
		t.Error("missing table must be nil")
	}
	if idx := c.Table("t1").ColumnIndex("B"); idx != 1 {
		t.Errorf("ColumnIndex(B) = %d", idx)
	}
	if idx := c.Table("t1").ColumnIndex("z"); idx != -1 {
		t.Errorf("ColumnIndex(z) = %d", idx)
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if err := c.CreateTable(def("t")); err == nil {
		t.Error("zero columns must fail")
	}
	if err := c.CreateTable(&TableDef{Name: "d", Columns: []Column{
		{Name: "a"}, {Name: "A"},
	}}); err == nil {
		t.Error("duplicate columns must fail")
	}
	if err := c.CreateTable(def("t1", "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(def("T1", "a")); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := c.CreateView(&ViewDef{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(def("v", "a")); err == nil {
		t.Error("table must not shadow view")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	if err := c.DropTable("nope"); err == nil {
		t.Error("dropping a missing table must fail")
	}
	c.CreateTable(def("t", "a"))
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if c.Table("t") != nil {
		t.Error("table must be gone")
	}
}

func TestViews(t *testing.T) {
	c := New()
	if err := c.CreateView(&ViewDef{Name: "v", Text: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&ViewDef{Name: "V"}); err == nil {
		t.Error("duplicate view must fail")
	}
	c.CreateTable(def("t", "a"))
	if err := c.CreateView(&ViewDef{Name: "t"}); err == nil {
		t.Error("view must not shadow table")
	}
	if c.View("v") == nil {
		t.Error("view lookup failed")
	}
	if err := c.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestNames(t *testing.T) {
	c := New()
	c.CreateTable(def("zeta", "a"))
	c.CreateTable(def("alpha", "a"))
	c.CreateView(&ViewDef{Name: "view1"})
	names := c.TableNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("TableNames = %v (must be sorted)", names)
	}
	if v := c.ViewNames(); len(v) != 1 || v[0] != "view1" {
		t.Errorf("ViewNames = %v", v)
	}
}

func TestStats(t *testing.T) {
	c := New()
	c.CreateTable(def("t", "a"))
	c.SetRowCount("t", 123)
	c.SetDistinctFrac("t", "A", 0.5)
	st := c.TableStats("T")
	if st.RowCount != 123 || st.DistinctFrac["a"] != 0.5 {
		t.Errorf("stats = %+v", st)
	}
	// Stats for unknown tables are zero-valued but usable.
	st = c.TableStats("missing")
	if st.RowCount != 0 || st.DistinctFrac == nil {
		t.Errorf("missing stats = %+v", st)
	}
	// Returned stats are copies.
	st = c.TableStats("t")
	st.DistinctFrac["a"] = 0.9
	if c.TableStats("t").DistinctFrac["a"] != 0.5 {
		t.Error("TableStats must return a copy")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			if err := c.CreateTable(def(name, "x")); err != nil {
				t.Error(err)
			}
			c.SetRowCount(name, i)
			_ = c.TableNames()
			_ = c.TableStats(name)
		}(i)
	}
	wg.Wait()
	if len(c.TableNames()) != 8 {
		t.Errorf("want 8 tables, got %v", c.TableNames())
	}
}
