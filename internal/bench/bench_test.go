package bench

import (
	"strings"
	"testing"
)

// TestRunAllSmall exercises every experiment end-to-end at a tiny scale so
// the harness itself is covered by go test.
func TestRunAllSmall(t *testing.T) {
	tables, err := RunAll([]int{50}, 1)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(tables) != 4 {
		t.Fatalf("want 4 experiment tables, got %d", len(tables))
	}
	ids := []string{"E5", "E6", "E7", "E8"}
	for i, tab := range tables {
		if tab.ID != ids[i] {
			t.Errorf("table %d id = %s, want %s", i, tab.ID, ids[i])
		}
		if len(tab.Rows) == 0 {
			t.Errorf("table %s has no rows", tab.ID)
		}
		text := tab.Format()
		if !strings.Contains(text, tab.Title) {
			t.Errorf("formatted table %s misses title", tab.ID)
		}
	}
}

// TestOverheadShape checks the qualitative claim of E5: provenance queries
// are strictly more expensive than their plain counterparts but still finish
// (the ratio is finite) — the "who wins" shape of the paper's story.
func TestOverheadShape(t *testing.T) {
	tab, err := RunOverhead([]int{200}, 3)
	if err != nil {
		t.Fatalf("RunOverhead: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 classes, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] == "-" {
			t.Errorf("class %s: missing overhead ratio", row[0])
		}
	}
}

// TestIncrementalShape checks E8's shape: BASERELATION must expose fewer
// provenance columns than the full rewrite (it stops at the view), and
// external provenance reuses the stored columns.
func TestIncrementalShape(t *testing.T) {
	tab, err := RunIncremental(100, 1)
	if err != nil {
		t.Fatalf("RunIncremental: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 modes, got %d", len(tab.Rows))
	}
	cols := map[string]string{}
	for _, row := range tab.Rows {
		cols[row[0]] = row[2]
	}
	if cols["full rewrite"] <= cols["BASERELATION"] {
		t.Errorf("full rewrite should expose more provenance columns than BASERELATION: %v", cols)
	}
}
