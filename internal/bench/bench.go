// Package bench implements the experiment harness that regenerates every
// figure of the paper and the performance-shaped experiments E5–E8 of
// DESIGN.md. Each experiment returns a Table that cmd/permbench prints and
// EXPERIMENTS.md records.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perm/internal/engine"
	"perm/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned ASCII.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c + strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 3
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// newPipelineSession opens a session with the plan cache disabled, so every
// repetition of an experiment query pays the full parse/analyze/rewrite/plan
// pipeline. The experiments E5-E8 contrast exactly those stages (rewrite
// scope, strategy choice), which a cache hit would silently exclude; cached
// steady-state behavior is measured separately by BenchmarkPlanCacheHit.
func newPipelineSession(db *engine.DB) (*engine.Session, error) {
	s := db.NewSession()
	if _, err := s.Execute("SET plan_cache = 'off'"); err != nil {
		return nil, err
	}
	return s, nil
}

// timeQuery runs a query reps times and returns the median wall time.
func timeQuery(s *engine.Session, query string, reps int) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := s.Execute(query); err != nil {
			return 0, fmt.Errorf("%v\nquery: %s", err, query)
		}
		times = append(times, time.Since(t0))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

func ratio(prov, plain time.Duration) string {
	if plain <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(prov)/float64(plain))
}

// queryClass pairs a plain query with its provenance variant.
type queryClass struct {
	name  string
	plain string
	prov  string
}

func classes() []queryClass {
	return []queryClass{
		{
			name:  "SPJ",
			plain: `SELECT m.mid, m.text, u.name FROM messages m JOIN users u ON m.uid = u.uid WHERE m.mid % 10 = 0`,
			prov:  `SELECT PROVENANCE m.mid, m.text, u.name FROM messages m JOIN users u ON m.uid = u.uid WHERE m.mid % 10 = 0`,
		},
		{
			name:  "AGG",
			plain: `SELECT count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`,
			prov:  `SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`,
		},
		{
			name:  "UNION",
			plain: `SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`,
			prov:  `SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`,
		},
		{
			name:  "NESTED",
			plain: `SELECT mid, text FROM messages WHERE mid IN (SELECT mid FROM approved)`,
			prov:  `SELECT PROVENANCE mid, text FROM messages WHERE mid IN (SELECT mid FROM approved)`,
		},
	}
}

// RunOverhead is E5: provenance computation overhead per query class across
// dataset sizes — the demo's core performance claim that rewritten queries
// stay ordinary relational queries with moderate overhead for SPJ and larger
// (output-proportional) overhead for aggregation and set operations.
func RunOverhead(sizes []int, reps int) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Provenance overhead by query class (median ms, provenance/plain)",
		Headers: []string{"class", "rows", "plain ms", "prov ms", "overhead"},
		Notes: []string{
			"provenance result width/cardinality grows with witnesses; overhead is expected >1x and largest for AGG",
		},
	}
	for _, n := range sizes {
		db := engine.NewDB()
		if err := workload.LoadForum(db, workload.DefaultForum(n)); err != nil {
			return nil, err
		}
		s, err := newPipelineSession(db)
		if err != nil {
			return nil, err
		}
		for _, qc := range classes() {
			plain, err := timeQuery(s, qc.plain, reps)
			if err != nil {
				return nil, err
			}
			prov, err := timeQuery(s, qc.prov, reps)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				qc.name, fmt.Sprintf("%d", n), ms(plain), ms(prov), ratio(prov, plain),
			})
		}
	}
	return t, nil
}

// RunStrategies is E6: the rewrite-strategy ablation (§2.2 "heuristic and a
// cost-based solution for choosing the best rewrite strategy").
func RunStrategies(n, reps int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Rewrite strategy ablation (median ms)",
		Headers: []string{"operator", "strategy", "ms"},
		Notes: []string{
			"pad vs join for UNION; joingroup vs crossfilter for aggregation; equivalent results, different cost",
		},
	}
	db := engine.NewDB()
	if err := workload.LoadForum(db, workload.DefaultForum(n)); err != nil {
		return nil, err
	}
	unionQ := `SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`
	aggQ := `SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`

	run := func(setting, val, query, label, strat string) error {
		s, err := newPipelineSession(db)
		if err != nil {
			return err
		}
		if _, err := s.Execute(fmt.Sprintf("SET %s = '%s'", setting, val)); err != nil {
			return err
		}
		d, err := timeQuery(s, query, reps)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{label, strat, ms(d)})
		return nil
	}
	if err := run("provenance_set_strategy", "pad", unionQ, "UNION", "SetPad (heuristic default)"); err != nil {
		return nil, err
	}
	if err := run("provenance_set_strategy", "join", unionQ, "UNION", "SetJoin"); err != nil {
		return nil, err
	}
	if err := run("provenance_agg_strategy", "joingroup", aggQ, "AGG", "AggJoinGroup (heuristic default)"); err != nil {
		return nil, err
	}
	if err := run("provenance_agg_strategy", "crossfilter", aggQ, "AGG", "AggCrossFilter"); err != nil {
		return nil, err
	}
	// Cost-based mode for reference.
	s, err := newPipelineSession(db)
	if err != nil {
		return nil, err
	}
	if _, err := s.Execute("SET provenance_strategy = 'cost'"); err != nil {
		return nil, err
	}
	d, err := timeQuery(s, aggQ, reps)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"AGG", "cost-based choice", ms(d)})
	return t, nil
}

// RunLazyEager is E7: lazy (recompute per use) vs eager (materialize once
// with CREATE TABLE AS SELECT PROVENANCE, then query the stored provenance).
func RunLazyEager(n, uses, reps int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("Lazy vs eager provenance over %d re-uses", uses),
		Headers: []string{"mode", "setup ms", "per-use ms", fmt.Sprintf("total ms (%d uses)", uses)},
		Notes: []string{
			"eager pays materialization once; lazy re-runs the rewritten query per use — eager wins once uses exceed the break-even",
		},
	}
	db := engine.NewDB()
	if err := workload.LoadForum(db, workload.DefaultForum(n)); err != nil {
		return nil, err
	}
	s, err := newPipelineSession(db)
	if err != nil {
		return nil, err
	}

	lazyQ := `SELECT text, prov_public_imports_origin
		FROM (SELECT PROVENANCE count(*), text
		      FROM v1 JOIN approved a ON v1.mid = a.mid
		      GROUP BY v1.mid, text) AS p
		WHERE count > 1 AND prov_public_imports_origin IS NOT NULL`
	lazyPerUse, err := timeQuery(s, lazyQ, reps)
	if err != nil {
		return nil, err
	}
	lazyTotal := time.Duration(uses) * lazyPerUse
	t.Rows = append(t.Rows, []string{"lazy", "0", ms(lazyPerUse), ms(lazyTotal)})

	t0 := time.Now()
	if _, err := s.Execute(`CREATE TABLE provmat AS
		SELECT PROVENANCE count(*), text
		FROM v1 JOIN approved a ON v1.mid = a.mid
		GROUP BY v1.mid, text`); err != nil {
		return nil, err
	}
	setup := time.Since(t0)
	eagerQ := `SELECT text, prov_public_imports_origin FROM provmat
		WHERE count > 1 AND prov_public_imports_origin IS NOT NULL`
	eagerPerUse, err := timeQuery(s, eagerQ, reps)
	if err != nil {
		return nil, err
	}
	eagerTotal := setup + time.Duration(uses)*eagerPerUse
	t.Rows = append(t.Rows, []string{"eager", ms(setup), ms(eagerPerUse), ms(eagerTotal)})

	if lazyPerUse > eagerPerUse {
		breakEven := float64(setup) / float64(lazyPerUse-eagerPerUse)
		t.Notes = append(t.Notes, fmt.Sprintf("break-even at ~%.1f uses", breakEven))
	}
	return t, nil
}

// RunIncremental is E8: full rewrite vs BASERELATION (stop the rewrite at a
// view) vs external provenance (query a pre-materialized provenance table
// through PROVENANCE (attrs)).
func RunIncremental(n, reps int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Incremental provenance: full vs BASERELATION vs external",
		Headers: []string{"mode", "ms", "prov columns"},
		Notes: []string{
			"BASERELATION stops the rewrite at the view; external reuses stored provenance without rewriting the view at all",
		},
	}
	db := engine.NewDB()
	if err := workload.LoadForum(db, workload.DefaultForum(n)); err != nil {
		return nil, err
	}
	s, err := newPipelineSession(db)
	if err != nil {
		return nil, err
	}
	if _, err := s.Execute(`CREATE VIEW v2 AS
		SELECT v1.mid AS mid, text, count(*) AS cnt
		FROM v1 JOIN approved a ON v1.mid = a.mid
		GROUP BY v1.mid, text`); err != nil {
		return nil, err
	}

	measure := func(mode, q string) error {
		d, err := timeQuery(s, q, reps)
		if err != nil {
			return err
		}
		res, err := s.Execute(q)
		if err != nil {
			return err
		}
		provCols := 0
		for _, c := range res.Schema {
			if c.IsProv {
				provCols++
			}
		}
		t.Rows = append(t.Rows, []string{mode, ms(d), fmt.Sprintf("%d", provCols)})
		return nil
	}

	if err := measure("full rewrite",
		`SELECT PROVENANCE mid, cnt FROM v2 WHERE cnt > 1`); err != nil {
		return nil, err
	}
	if err := measure("BASERELATION",
		`SELECT PROVENANCE mid, cnt FROM v2 BASERELATION WHERE cnt > 1`); err != nil {
		return nil, err
	}
	// External: materialize v2's provenance once, then declare the stored
	// provenance columns with PROVENANCE (attrs).
	if _, err := s.Execute(`CREATE TABLE v2prov AS SELECT PROVENANCE mid, text, cnt FROM v2`); err != nil {
		return nil, err
	}
	ext := `SELECT PROVENANCE mid, cnt FROM v2prov PROVENANCE (` + strings.Join(provColumnList(db, "v2prov"), ", ") + `) WHERE cnt > 1`
	if err := measure("external provenance", ext); err != nil {
		return nil, err
	}
	return t, nil
}

// provColumnList lists the prov_* columns of a stored table.
func provColumnList(db *engine.DB, table string) []string {
	def := db.Catalog().Table(table)
	var out []string
	for _, c := range def.Columns {
		if strings.HasPrefix(c.Name, "prov_") {
			out = append(out, c.Name)
		}
	}
	return out
}

// RunAll executes every experiment at the given base size.
func RunAll(sizes []int, reps int) ([]*Table, error) {
	var out []*Table
	t5, err := RunOverhead(sizes, reps)
	if err != nil {
		return nil, fmt.Errorf("E5: %v", err)
	}
	out = append(out, t5)
	n := sizes[len(sizes)-1]
	t6, err := RunStrategies(n, reps)
	if err != nil {
		return nil, fmt.Errorf("E6: %v", err)
	}
	out = append(out, t6)
	t7, err := RunLazyEager(n, 20, reps)
	if err != nil {
		return nil, fmt.Errorf("E7: %v", err)
	}
	out = append(out, t7)
	t8, err := RunIncremental(n, reps)
	if err != nil {
		return nil, fmt.Errorf("E8: %v", err)
	}
	out = append(out, t8)
	return out, nil
}
