package planner

import (
	"sort"
	"testing"

	"perm/internal/algebra"
	"perm/internal/analyzer"
	"perm/internal/catalog"
	"perm/internal/executor"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

func env(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	tab, err := s.CreateTable(&catalog.TableDef{Name: "t", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt}, {Name: "b", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		tab.Insert(value.Row{value.NewInt(i), value.NewInt(i * 10)})
	}
	tab2, err := s.CreateTable(&catalog.TableDef{Name: "u", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt}, {Name: "c", Type: value.KindInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(10); i <= 30; i++ {
		tab2.Insert(value.Row{value.NewInt(i), value.NewInt(i * 100)})
	}
	if err := s.Analyze(""); err != nil {
		t.Fatal(err)
	}
	return s
}

func planOf(t *testing.T, s *storage.Store, q string) algebra.Op {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	op, err := analyzer.New(s.Catalog()).AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func rowsOf(t *testing.T, s *storage.Store, op algebra.Op) []string {
	t.Helper()
	res, err := executor.Run(executor.NewContext(s), op)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestOptimizePreservesResults is the planner's core soundness property.
func TestOptimizePreservesResults(t *testing.T) {
	s := env(t)
	queries := []string{
		`SELECT a, b FROM t WHERE a > 5 AND b < 150`,
		`SELECT t.a, u.c FROM t JOIN u ON t.a = u.a WHERE t.b > 50 AND u.c < 2500`,
		`SELECT x.s FROM (SELECT a + b AS s FROM t) AS x WHERE x.s > 100`,
		`SELECT count(*), a % 3 FROM t GROUP BY a % 3 HAVING count(*) > 2`,
		`SELECT a FROM t WHERE 1 + 1 = 2`,
		`SELECT a FROM t WHERE a IN (SELECT a FROM u) ORDER BY a DESC LIMIT 3`,
		`SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE t.b >= 100`,
	}
	p := New(s.Catalog())
	for _, q := range queries {
		raw := planOf(t, s, q)
		opt := p.Optimize(raw)
		a, b := rowsOf(t, s, raw), rowsOf(t, s, opt)
		if len(a) != len(b) {
			t.Errorf("%q: optimized plan changed results (%d vs %d rows)", q, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%q: row %d differs", q, i)
				break
			}
		}
	}
}

func TestPredicatePushdownIntoJoin(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	raw := planOf(t, s, `SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 50 AND u.c > 1000`)
	opt := p.Optimize(raw)
	// After pushdown, some Select must sit directly above a Scan.
	pushed := 0
	algebra.Walk(opt, func(op algebra.Op) {
		if sel, ok := op.(*algebra.Select); ok {
			if _, ok := sel.Input.(*algebra.Scan); ok {
				pushed++
			}
		}
	})
	if pushed < 2 {
		t.Errorf("conjuncts not pushed to scans (pushed=%d):\n%s", pushed, algebra.Tree(opt))
	}
}

func TestNoPushdownThroughOuterJoin(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	raw := planOf(t, s, `SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE u.c IS NULL`)
	opt := p.Optimize(raw)
	// The IS NULL filter must NOT appear below the left join's right side.
	algebra.Walk(opt, func(op algebra.Op) {
		if j, ok := op.(*algebra.Join); ok && j.Kind == algebra.JoinLeft {
			algebra.Walk(j.Right, func(inner algebra.Op) {
				if _, bad := inner.(*algebra.Select); bad {
					t.Error("filter pushed through outer join")
				}
			})
		}
	})
	// And results stay correct.
	if len(rowsOf(t, s, raw)) != len(rowsOf(t, s, opt)) {
		t.Error("outer join results changed")
	}
}

func TestConstantFolding(t *testing.T) {
	e := algebra.Expr(&algebra.Bin{Op: sql.OpAdd,
		L: &algebra.Const{Val: value.NewInt(1)},
		R: &algebra.Bin{Op: sql.OpMul,
			L: &algebra.Const{Val: value.NewInt(2)},
			R: &algebra.Const{Val: value.NewInt(3)}}})
	folded, changed := FoldConstants(e)
	if !changed {
		t.Fatal("no folding happened")
	}
	c, ok := folded.(*algebra.Const)
	if !ok || c.Val.I != 7 {
		t.Errorf("folded = %v", folded)
	}
}

func TestFoldIsNull(t *testing.T) {
	e := algebra.Expr(&algebra.IsNull{E: &algebra.Const{Val: value.Null}})
	folded, _ := FoldConstants(e)
	if c, ok := folded.(*algebra.Const); !ok || !c.Val.Bool() {
		t.Errorf("folded = %v", folded)
	}
}

func TestTrivialFilterRemoved(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	opt := p.Optimize(planOf(t, s, `SELECT a FROM t WHERE 1 = 1`))
	algebra.Walk(opt, func(op algebra.Op) {
		if _, ok := op.(*algebra.Select); ok {
			t.Error("trivially-true filter must be removed")
		}
	})
}

func TestFilterMerging(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	// Nested derived table creates stacked filters after pushdown.
	opt := p.Optimize(planOf(t, s,
		`SELECT a FROM (SELECT a FROM t WHERE a > 2) AS x WHERE a < 10`))
	selects := 0
	algebra.Walk(opt, func(op algebra.Op) {
		if _, ok := op.(*algebra.Select); ok {
			selects++
		}
	})
	if selects > 1 {
		t.Errorf("filters not merged (%d selects):\n%s", selects, algebra.Tree(opt))
	}
}

func TestEstimateRows(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	if got := p.EstimateRows(planOf(t, s, `SELECT a FROM t`)); got != 20 {
		t.Errorf("scan estimate = %v, want 20", got)
	}
	sel := p.EstimateRows(planOf(t, s, `SELECT a FROM t WHERE a > 5`))
	if sel >= 20 || sel <= 0 {
		t.Errorf("filter estimate = %v", sel)
	}
	agg := p.EstimateRows(planOf(t, s, `SELECT count(*) FROM t`))
	if agg != 1 {
		t.Errorf("scalar agg estimate = %v", agg)
	}
	join := p.EstimateRows(planOf(t, s, `SELECT 1 FROM t JOIN u ON t.a = u.a`))
	if join <= 0 || join > 20*21 {
		t.Errorf("join estimate = %v", join)
	}
	cross := p.EstimateRows(planOf(t, s, `SELECT 1 FROM t, u`))
	if cross != 20*21 {
		t.Errorf("cross estimate = %v", cross)
	}
	lim := p.EstimateRows(planOf(t, s, `SELECT a FROM t LIMIT 3`))
	if lim != 3 {
		t.Errorf("limit estimate = %v", lim)
	}
	unknown := p.EstimateRows(&algebra.Scan{Table: "nope", Sch: algebra.Schema{{Name: "x"}}})
	if unknown != 1000 {
		t.Errorf("unknown table default = %v", unknown)
	}
}

func TestOptimizeProvenancePlans(t *testing.T) {
	// The optimizer must keep provenance plans (with ProvDone etc.) correct.
	s := env(t)
	st, _ := sql.Parse(`SELECT PROVENANCE a, b FROM t WHERE a <= 3`)
	an := analyzer.New(s.Catalog())
	an.Rewrite = func(req analyzer.ProvRequest) (algebra.Op, error) {
		return req.Input, nil // identity hook for structure testing
	}
	raw, err := an.AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	p := New(s.Catalog())
	opt := p.Optimize(raw)
	if len(rowsOf(t, s, raw)) != len(rowsOf(t, s, opt)) {
		t.Error("results changed")
	}
}
