package planner

import (
	"testing"

	"perm/internal/algebra"
	"perm/internal/sql"
	"perm/internal/value"
)

// optimize_more_test.go covers the planner branches the query-driven tests
// miss: projection merging, cheap-expression substitution limits, and the
// estimator's remaining operator cases.

func TestProjectMergeCollapsesChains(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	// Three stacked projections of plain column references must merge.
	raw := planOf(t, s, `SELECT y FROM (SELECT x AS y FROM (SELECT a AS x FROM t) AS i) AS o`)
	opt := p.Optimize(raw)
	projects := 0
	algebra.Walk(opt, func(op algebra.Op) {
		if _, ok := op.(*algebra.Project); ok {
			projects++
		}
	})
	if projects > 1 {
		t.Errorf("projection chain not merged (%d projects):\n%s", projects, algebra.Tree(opt))
	}
	if len(rowsOf(t, s, raw)) != len(rowsOf(t, s, opt)) {
		t.Error("merge changed results")
	}
}

func TestNoSubstitutionThroughExpensiveExprs(t *testing.T) {
	// A filter above a projection computing a function must NOT duplicate
	// the function call into the filter (cheap() guard) — the Select stays
	// above the Project.
	s := env(t)
	p := New(s.Catalog())
	raw := planOf(t, s, `SELECT v FROM (SELECT a + b AS v FROM t) AS x WHERE v > 10 AND v < 100`)
	opt := p.Optimize(raw)
	// Results must hold either way.
	if len(rowsOf(t, s, raw)) != len(rowsOf(t, s, opt)) {
		t.Error("optimization changed results")
	}
}

func TestFoldCast(t *testing.T) {
	e := algebra.Expr(&algebra.Cast{E: &algebra.Const{Val: value.NewString("5")}, To: value.KindInt})
	folded, changed := FoldConstants(e)
	if !changed {
		t.Fatal("cast of constant must fold")
	}
	if c, ok := folded.(*algebra.Const); !ok || c.Val.I != 5 {
		t.Errorf("folded = %v", folded)
	}
}

func TestFoldNegAndNot(t *testing.T) {
	neg, _ := FoldConstants(&algebra.Neg{E: &algebra.Const{Val: value.NewInt(3)}})
	if c, ok := neg.(*algebra.Const); !ok || c.Val.I != -3 {
		t.Errorf("neg folded = %v", neg)
	}
	not, _ := FoldConstants(&algebra.Not{E: &algebra.Const{Val: value.NewBool(true)}})
	if c, ok := not.(*algebra.Const); !ok || c.Val.Bool() {
		t.Errorf("not folded = %v", not)
	}
	notNull, _ := FoldConstants(&algebra.Not{E: &algebra.Const{Val: value.Null}})
	if c, ok := notNull.(*algebra.Const); !ok || !c.Val.IsNull() {
		t.Errorf("NOT NULL folded = %v", notNull)
	}
}

func TestAndOrNotFolded(t *testing.T) {
	// AND/OR deliberately do not constant-fold (3VL short-circuits at
	// runtime are already cheap); the fold must leave them intact.
	e := &algebra.Bin{Op: sql.OpAnd,
		L: &algebra.Const{Val: value.NewBool(true)},
		R: &algebra.Const{Val: value.NewBool(false)}}
	folded, _ := FoldConstants(e)
	if _, ok := folded.(*algebra.Const); ok {
		t.Error("AND must not fold")
	}
}

func TestEstimateSetOpsAndSemi(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	tScan := planOf(t, s, `SELECT a FROM t`)
	uScan := planOf(t, s, `SELECT a FROM u`)
	if est := p.EstimateRows(algebra.NewSetOp(algebra.UnionAll, tScan, uScan)); est != 41 {
		t.Errorf("union all estimate = %v, want 41", est)
	}
	if est := p.EstimateRows(algebra.NewSetOp(algebra.IntersectDistinct, tScan, uScan)); est <= 0 || est > 20 {
		t.Errorf("intersect estimate = %v", est)
	}
	if est := p.EstimateRows(algebra.NewSetOp(algebra.ExceptAll, tScan, uScan)); est != 10 {
		t.Errorf("except estimate = %v, want 10", est)
	}
	semi := algebra.NewJoin(algebra.JoinSemi, tScan, uScan, nil)
	if est := p.EstimateRows(semi); est != 10 {
		t.Errorf("semi estimate = %v, want 10", est)
	}
	if est := p.EstimateRows(&algebra.Values{Rows: make([][]algebra.Expr, 3)}); est != 3 {
		t.Errorf("values estimate = %v", est)
	}
	if est := p.EstimateRows(&algebra.Distinct{Input: tScan}); est != 10 {
		t.Errorf("distinct estimate = %v", est)
	}
	if est := p.EstimateRows(&algebra.BaseRel{Input: tScan}); est != 20 {
		t.Errorf("baserel estimate = %v", est)
	}
	if est := p.EstimateRows(&algebra.ProvDone{Input: tScan}); est != 20 {
		t.Errorf("provdone estimate = %v", est)
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	s := env(t)
	p := New(s.Catalog())
	raw := planOf(t, s, `SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 50 AND u.c > 1000 ORDER BY t.a`)
	once := p.Optimize(raw)
	twice := p.Optimize(once)
	if algebra.Tree(once) != algebra.Tree(twice) {
		t.Errorf("optimizer not idempotent:\nonce:\n%s\ntwice:\n%s",
			algebra.Tree(once), algebra.Tree(twice))
	}
}
