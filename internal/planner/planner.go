// Package planner implements the optimizer stage of the Perm pipeline
// (Figure 3: "optimize and transform into plan"): rule-based logical
// optimizations (constant folding, predicate pushdown, filter merging,
// identity-projection removal) and the cardinality estimator that both the
// planner and the provenance rewriter's cost-based strategy chooser use.
// Perm deliberately reuses the host DBMS's optimizer on rewritten queries;
// this package plays that role for the Go engine.
package planner

import (
	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/executor"
	"perm/internal/sql"
	"perm/internal/value"
)

// Planner optimizes plans and estimates cardinalities against a catalog.
type Planner struct {
	Cat *catalog.Catalog
	// MaxPasses bounds the fixpoint iteration of the rewrite rules.
	MaxPasses int
}

// New returns a planner over the catalog.
func New(cat *catalog.Catalog) *Planner {
	return &Planner{Cat: cat, MaxPasses: 8}
}

// Optimize applies the logical rewrite rules to a fixpoint (bounded).
func (p *Planner) Optimize(op algebra.Op) algebra.Op {
	passes := p.MaxPasses
	if passes <= 0 {
		passes = 8
	}
	for i := 0; i < passes; i++ {
		next, changed := p.pass(op)
		op = next
		if !changed {
			break
		}
	}
	return op
}

// pass applies one bottom-up optimization pass.
func (p *Planner) pass(op algebra.Op) (algebra.Op, bool) {
	changed := false
	children := op.Children()
	if len(children) > 0 {
		newChildren := make([]algebra.Op, len(children))
		for i, c := range children {
			nc, ch := p.pass(c)
			newChildren[i] = nc
			changed = changed || ch
		}
		if changed {
			op = op.WithChildren(newChildren)
		}
	}
	// Fold constants in this operator's expressions.
	op = algebra.MapOwnExprs(op, func(e algebra.Expr) algebra.Expr {
		ne, ch := FoldConstants(e)
		changed = changed || ch
		return ne
	})

	switch o := op.(type) {
	case *algebra.Select:
		// Drop trivially-true filters.
		if c, ok := o.Cond.(*algebra.Const); ok && !c.Val.IsNull() && c.Val.K == value.KindBool && c.Val.Bool() {
			return o.Input, true
		}
		// Merge stacked filters.
		if inner, ok := o.Input.(*algebra.Select); ok {
			return &algebra.Select{
				Input: inner.Input,
				Cond:  &algebra.Bin{Op: sql.OpAnd, L: inner.Cond, R: o.Cond},
			}, true
		}
		// Push filter below a projection when the condition rewrites to
		// cheap expressions.
		if proj, ok := o.Input.(*algebra.Project); ok && !algebra.HasSubplan(o.Cond) {
			if cond, ok2 := substitute(o.Cond, proj.Exprs); ok2 {
				np := *proj
				np.Input = &algebra.Select{Input: proj.Input, Cond: cond}
				return &np, true
			}
		}
		// Push conjuncts into join sides.
		if join, ok := o.Input.(*algebra.Join); ok && !join.Lateral {
			if next, ok2 := pushIntoJoin(o, join); ok2 {
				return next, true
			}
		}
		// Swap with sort (filter first).
		if srt, ok := o.Input.(*algebra.Sort); ok {
			return &algebra.Sort{
				Input: &algebra.Select{Input: srt.Input, Cond: o.Cond},
				Keys:  srt.Keys,
			}, true
		}
	case *algebra.Project:
		// Collapse identity projections that change nothing observable.
		if isIdentityProject(o) {
			return o.Input, true
		}
		// Merge Project(Project) when the outer references are substitutable.
		if inner, ok := o.Input.(*algebra.Project); ok {
			merged := true
			newExprs := make([]algebra.Expr, len(o.Exprs))
			for i, e := range o.Exprs {
				ne, ok2 := substitute(e, inner.Exprs)
				if !ok2 {
					merged = false
					break
				}
				newExprs[i] = ne
			}
			if merged {
				np := *o
				np.Input = inner.Input
				np.Exprs = newExprs
				return &np, true
			}
		}
	}
	return op, changed
}

// isIdentityProject reports whether the projection emits its input unchanged
// (same positions, names, types and provenance metadata).
func isIdentityProject(p *algebra.Project) bool {
	in := p.Input.Schema()
	if len(p.Exprs) != len(in) {
		return false
	}
	for i, e := range p.Exprs {
		ci, ok := e.(*algebra.ColIdx)
		if !ok || ci.Idx != i {
			return false
		}
		if p.Sch[i] != in[i] {
			return false
		}
	}
	return true
}

// substitute rewrites cond's column references through the projection's
// expressions; ok is false when any referenced expression is not cheap
// (only ColIdx, Const and Cast-of-those count as cheap to duplicate).
func substitute(cond algebra.Expr, exprs []algebra.Expr) (algebra.Expr, bool) {
	ok := true
	out := algebra.MapCols(cond, func(c *algebra.ColIdx) algebra.Expr {
		if c.Idx >= len(exprs) {
			ok = false
			return c
		}
		e := exprs[c.Idx]
		if !cheap(e) {
			ok = false
		}
		return e
	})
	return out, ok
}

func cheap(e algebra.Expr) bool {
	switch x := e.(type) {
	case *algebra.ColIdx, *algebra.Const, *algebra.OuterRef:
		return true
	case *algebra.Cast:
		return cheap(x.E)
	}
	return false
}

// pushIntoJoin pushes filter conjuncts that reference only one join side
// below the join (inner joins only; outer joins change NULL semantics).
func pushIntoJoin(sel *algebra.Select, join *algebra.Join) (algebra.Op, bool) {
	if join.Kind != algebra.JoinInner && join.Kind != algebra.JoinCross {
		return nil, false
	}
	nLeft := len(join.Left.Schema())
	var leftConds, rightConds, rest []algebra.Expr
	for _, conj := range algebra.SplitAnd(sel.Cond) {
		if algebra.HasSubplan(conj) {
			rest = append(rest, conj)
			continue
		}
		used := map[int]bool{}
		algebra.ColsUsed(conj, used)
		left, right := false, false
		for idx := range used {
			if idx < nLeft {
				left = true
			} else {
				right = true
			}
		}
		switch {
		case left && !right:
			leftConds = append(leftConds, conj)
		case right && !left:
			rightConds = append(rightConds, algebra.ShiftCols(conj, -nLeft))
		default:
			rest = append(rest, conj)
		}
	}
	if len(leftConds) == 0 && len(rightConds) == 0 {
		return nil, false
	}
	nj := *join
	if c := algebra.AndAll(leftConds); c != nil {
		nj.Left = &algebra.Select{Input: join.Left, Cond: c}
	}
	if c := algebra.AndAll(rightConds); c != nil {
		nj.Right = &algebra.Select{Input: join.Right, Cond: c}
	}
	var out algebra.Op = &nj
	if c := algebra.AndAll(rest); c != nil {
		out = &algebra.Select{Input: out, Cond: c}
	}
	return out, true
}

// FoldConstants evaluates constant sub-expressions at plan time.
func FoldConstants(e algebra.Expr) (algebra.Expr, bool) {
	changed := false
	var fold func(algebra.Expr) algebra.Expr
	fold = func(e algebra.Expr) algebra.Expr {
		switch x := e.(type) {
		case *algebra.Bin:
			l := fold(x.L)
			r := fold(x.R)
			lc, lok := l.(*algebra.Const)
			rc, rok := r.(*algebra.Const)
			if lok && rok && foldableOp(x.Op) {
				if v, err := executor.Eval(&algebra.Bin{Op: x.Op, L: lc, R: rc}, nil, nil); err == nil {
					changed = true
					return &algebra.Const{Val: v}
				}
			}
			if l != x.L || r != x.R {
				changed = true
				return &algebra.Bin{Op: x.Op, L: l, R: r}
			}
			return x
		case *algebra.Not:
			inner := fold(x.E)
			if c, ok := inner.(*algebra.Const); ok {
				if c.Val.IsNull() {
					changed = true
					return &algebra.Const{Val: value.Null}
				}
				if c.Val.K == value.KindBool {
					changed = true
					return &algebra.Const{Val: value.NewBool(!c.Val.Bool())}
				}
			}
			if inner != x.E {
				changed = true
				return &algebra.Not{E: inner}
			}
			return x
		case *algebra.Neg:
			inner := fold(x.E)
			if c, ok := inner.(*algebra.Const); ok {
				if v, err := value.Neg(c.Val); err == nil {
					changed = true
					return &algebra.Const{Val: v}
				}
			}
			if inner != x.E {
				changed = true
				return &algebra.Neg{E: inner}
			}
			return x
		case *algebra.IsNull:
			inner := fold(x.E)
			if c, ok := inner.(*algebra.Const); ok {
				changed = true
				return &algebra.Const{Val: value.NewBool(c.Val.IsNull() != x.Not)}
			}
			if inner != x.E {
				changed = true
				return &algebra.IsNull{E: inner, Not: x.Not}
			}
			return x
		case *algebra.Cast:
			inner := fold(x.E)
			if c, ok := inner.(*algebra.Const); ok {
				if v, err := value.Coerce(c.Val, x.To); err == nil {
					changed = true
					return &algebra.Const{Val: v}
				}
			}
			if inner != x.E {
				changed = true
				return &algebra.Cast{E: inner, To: x.To}
			}
			return x
		}
		return e
	}
	out := fold(e)
	return out, changed
}

// foldableOp excludes AND/OR (3VL short-circuits are already cheap and
// folding them needs care with NULL) — arithmetic and comparisons fold.
func foldableOp(op sql.BinOp) bool {
	switch op {
	case sql.OpAnd, sql.OpOr:
		return false
	}
	return true
}

// --- cardinality estimation -------------------------------------------------------

const defaultTableRows = 1000

// EstimateRows estimates the output cardinality of a plan using catalog
// statistics; unknown tables default to 1000 rows. The provenance rewriter's
// cost-based strategy chooser consumes this.
func (p *Planner) EstimateRows(op algebra.Op) float64 {
	switch o := op.(type) {
	case *algebra.Scan:
		st := p.Cat.TableStats(o.Table)
		if st.RowCount > 0 {
			return float64(st.RowCount)
		}
		return defaultTableRows
	case *algebra.Values:
		return float64(len(o.Rows))
	case *algebra.Project:
		return p.EstimateRows(o.Input)
	case *algebra.BaseRel:
		return p.EstimateRows(o.Input)
	case *algebra.ProvDone:
		return p.EstimateRows(o.Input)
	case *algebra.Select:
		sel := 1.0
		for range algebra.SplitAnd(o.Cond) {
			sel *= 0.25
		}
		if sel < 0.01 {
			sel = 0.01
		}
		return p.EstimateRows(o.Input) * sel
	case *algebra.Join:
		l := p.EstimateRows(o.Left)
		r := p.EstimateRows(o.Right)
		switch o.Kind {
		case algebra.JoinCross:
			return l * r
		case algebra.JoinSemi, algebra.JoinAnti:
			return l / 2
		}
		if o.Cond == nil {
			return l * r
		}
		// Equi-join heuristic: |L×R| / max(|L|,|R|).
		den := l
		if r > den {
			den = r
		}
		if den < 1 {
			den = 1
		}
		est := l * r / den
		if o.Kind == algebra.JoinLeft && est < l {
			est = l
		}
		if o.Kind == algebra.JoinRight && est < r {
			est = r
		}
		if o.Kind == algebra.JoinFull && est < l+r {
			est = l + r
		}
		return est
	case *algebra.Agg:
		in := p.EstimateRows(o.Input)
		if len(o.GroupBy) == 0 {
			return 1
		}
		groups := in * 0.1
		if groups < 1 {
			groups = 1
		}
		return groups
	case *algebra.Distinct:
		return p.EstimateRows(o.Input) * 0.5
	case *algebra.SetOp:
		l := p.EstimateRows(o.Left)
		r := p.EstimateRows(o.Right)
		switch o.Kind {
		case algebra.UnionAll:
			return l + r
		case algebra.UnionDistinct:
			return (l + r) * 0.7
		case algebra.IntersectAll, algebra.IntersectDistinct:
			if l < r {
				return l * 0.5
			}
			return r * 0.5
		default:
			return l * 0.5
		}
	case *algebra.Sort:
		return p.EstimateRows(o.Input)
	case *algebra.Limit:
		in := p.EstimateRows(o.Input)
		if o.Count >= 0 && float64(o.Count) < in {
			return float64(o.Count)
		}
		return in
	}
	return defaultTableRows
}
