package logx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }
	return l
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := fixed(New(&buf, "text", LevelInfo, "permserver"))
	l.Info("slow query", "duration", 1500*time.Millisecond, "sql", "select 1", "rows", 42)
	got := buf.String()
	want := `2026-01-02T03:04:05Z INFO permserver: slow query duration=1.5s sql="select 1" rows=42` + "\n"
	if got != want {
		t.Fatalf("text record\n got %q\nwant %q", got, want)
	}
}

func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l := fixed(New(&buf, "json", LevelInfo, "permserver"))
	l.Warn("reconnect", "attempt", 3, "err", strings.Repeat("x", 3))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON object per line: %v in %q", err, buf.String())
	}
	if rec["level"] != "warn" || rec["msg"] != "reconnect" || rec["component"] != "permserver" {
		t.Fatalf("bad record %v", rec)
	}
	if rec["attempt"] != float64(3) || rec["err"] != "xxx" {
		t.Fatalf("fields not native: %v", rec)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, "text", LevelWarn, "")
	l.Debug("nope")
	l.Info("nope")
	l.Printf("printf is info: %d", 7)
	if buf.Len() != 0 {
		t.Fatalf("below-threshold records emitted: %q", buf.String())
	}
	l.Error("yes")
	if !strings.Contains(buf.String(), "ERROR yes") {
		t.Fatalf("error record missing: %q", buf.String())
	}
}

func TestPrintfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := fixed(New(&buf, "text", LevelInfo, ""))
	l.Printf("applied %d records in %s", 10, "5ms")
	if !strings.Contains(buf.String(), "INFO applied 10 records in 5ms") {
		t.Fatalf("printf adapter: %q", buf.String())
	}
	// A nil logger must be safe — Logf seams pass nil to disable logging.
	var nilLogger *Logger
	nilLogger.Printf("dropped")
	nilLogger.Info("dropped")
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "": LevelInfo, "WARN": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}
