// Package logx is the minimal leveled structured logger shared by the Perm
// binaries. It exists so slow-query and recovery-summary lines are
// machine-parseable: every record is a level, a message, and key=value
// fields, rendered either as aligned text or as one JSON object per line
// (-log-format text|json).
//
// The Printf method is a compatibility adapter for the many existing
// Logf(func(string, ...any)) seams in server, follower, coordinator and
// router — those callers keep their printf-style call sites and gain level,
// timestamp and format handling for free.
package logx

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return fmt.Sprintf("LEVEL(%d)", int(l))
}

// Logger writes leveled records to one destination. Safe for concurrent use.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	jsonMode  bool
	level     Level
	component string // e.g. "permserver"; empty omits the field
	now       func() time.Time
}

// New builds a logger. format is "text" or "json" (anything else falls back
// to text). Records below min are dropped.
func New(w io.Writer, format string, min Level, component string) *Logger {
	return &Logger{
		w:         w,
		jsonMode:  strings.EqualFold(format, "json"),
		level:     min,
		component: component,
		now:       time.Now,
	}
}

// Default logs text at Info to stderr, for embedded users that never
// configured logging.
var Default = New(os.Stderr, "text", LevelInfo, "")

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (debug|info|warn|error)", s)
}

// Log emits one record with alternating key, value fields. Keys must be
// strings; values are rendered with %v (JSON mode keeps string/int/bool/
// float types native). Odd trailing fields get the key "arg".
func (l *Logger) Log(level Level, msg string, fields ...any) {
	if l == nil || level < l.level {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jsonMode {
		rec := make(map[string]any, 4+len(fields)/2)
		rec["ts"] = ts
		rec["level"] = strings.ToLower(level.String())
		rec["msg"] = msg
		if l.component != "" {
			rec["component"] = l.component
		}
		for i := 0; i+1 < len(fields); i += 2 {
			key, ok := fields[i].(string)
			if !ok {
				key = fmt.Sprintf("%v", fields[i])
			}
			rec[key] = jsonValue(fields[i+1])
		}
		if len(fields)%2 == 1 {
			rec["arg"] = jsonValue(fields[len(fields)-1])
		}
		b, err := json.Marshal(rec)
		if err != nil {
			b = []byte(fmt.Sprintf(`{"ts":%q,"level":"error","msg":"logx: marshal: %v"}`, ts, err))
		}
		l.w.Write(append(b, '\n'))
		return
	}
	var sb strings.Builder
	sb.WriteString(ts)
	sb.WriteByte(' ')
	sb.WriteString(level.String())
	sb.WriteByte(' ')
	if l.component != "" {
		sb.WriteString(l.component)
		sb.WriteString(": ")
	}
	sb.WriteString(msg)
	for i := 0; i+1 < len(fields); i += 2 {
		fmt.Fprintf(&sb, " %v=%s", fields[i], textValue(fields[i+1]))
	}
	if len(fields)%2 == 1 {
		fmt.Fprintf(&sb, " arg=%s", textValue(fields[len(fields)-1]))
	}
	sb.WriteByte('\n')
	io.WriteString(l.w, sb.String())
}

// jsonValue keeps JSON-native types as-is and stringifies the rest.
func jsonValue(v any) any {
	switch v.(type) {
	case nil, string, bool,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, json.Number:
		return v
	case time.Duration:
		return v.(time.Duration).String()
	case error:
		return v.(error).Error()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// textValue quotes values containing spaces so text lines stay splittable.
func textValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// Debug, Info, Warn and Error emit at their level.
func (l *Logger) Debug(msg string, fields ...any) { l.Log(LevelDebug, msg, fields...) }
func (l *Logger) Info(msg string, fields ...any)  { l.Log(LevelInfo, msg, fields...) }
func (l *Logger) Warn(msg string, fields ...any)  { l.Log(LevelWarn, msg, fields...) }
func (l *Logger) Error(msg string, fields ...any) { l.Log(LevelError, msg, fields...) }

// Printf is the legacy adapter for Logf seams: the formatted string becomes
// an Info record's message with no fields.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil || LevelInfo < l.level {
		return
	}
	l.Log(LevelInfo, fmt.Sprintf(format, args...))
}
