// Package spill gives blocking executor operators a disk surface: temp files
// of length-framed records holding exactly-encoded rows, tracked by a Pool so
// that every byte written is counted and every file is removed however the
// query ends — normal completion, timeout, client disconnect, session close
// or server shutdown.
//
// The codec here is NOT the canonical key encoding of internal/value: key
// encodings are Distinct-consistent on purpose (5 and 5.0 collide), which
// makes them one-way. Spilled rows must round-trip bit-for-bit — an external
// sort or a grace-partitioned aggregate re-reads its own input and must
// produce byte-identical results to the in-memory path — so values are
// framed with their kind and exact payload (varint integers, IEEE float
// bits, raw string bytes).
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"perm/internal/metrics"
	"perm/internal/value"
)

// Process-wide spill traffic, across every pool in the process. Per-session
// numbers stay available through SHOW memory_status.
var (
	mSpillFiles = metrics.Default.Counter("perm_spill_files_total",
		"Spill files ever created")
	mSpillBytes = metrics.Default.Counter("perm_spill_bytes_total",
		"Bytes ever written to spill files")
)

// --- exact row codec -------------------------------------------------------------

// AppendValue appends the exact, reversible encoding of v: one kind byte,
// then the kind's payload.
func AppendValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case value.KindNull:
	case value.KindBool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case value.KindInt:
		dst = binary.AppendVarint(dst, v.I)
	case value.KindFloat:
		dst = binary.AppendUvarint(dst, math.Float64bits(v.F))
	case value.KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	}
	return dst
}

// DecodeValue reverses AppendValue, returning the value and the remaining
// bytes.
func DecodeValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Null, nil, fmt.Errorf("spill: truncated value")
	}
	k := value.Kind(b[0])
	b = b[1:]
	switch k {
	case value.KindNull:
		return value.Null, b, nil
	case value.KindBool:
		if len(b) < 1 {
			return value.Null, nil, fmt.Errorf("spill: truncated bool")
		}
		return value.NewBool(b[0] != 0), b[1:], nil
	case value.KindInt:
		i, n := binary.Varint(b)
		if n <= 0 {
			return value.Null, nil, fmt.Errorf("spill: bad int encoding")
		}
		return value.NewInt(i), b[n:], nil
	case value.KindFloat:
		bits, n := binary.Uvarint(b)
		if n <= 0 {
			return value.Null, nil, fmt.Errorf("spill: bad float encoding")
		}
		return value.NewFloat(math.Float64frombits(bits)), b[n:], nil
	case value.KindString:
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return value.Null, nil, fmt.Errorf("spill: bad string encoding")
		}
		return value.NewString(string(b[n : n+int(l)])), b[n+int(l):], nil
	}
	return value.Null, nil, fmt.Errorf("spill: unknown kind %d", k)
}

// AppendRow appends the exact encoding of a row: a uvarint arity then each
// value.
func AppendRow(dst []byte, row value.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow reverses AppendRow, returning the row and the remaining bytes.
func DecodeRow(b []byte) (value.Row, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, fmt.Errorf("spill: bad row arity")
	}
	if n > uint64(len(b)) {
		// Each value costs at least one byte; an arity larger than the
		// remaining input is corrupt, and guarding here keeps a hostile
		// length prefix from allocating gigabytes.
		return nil, nil, fmt.Errorf("spill: row arity %d exceeds input", n)
	}
	b = b[w:]
	row := make(value.Row, n)
	var err error
	for i := range row {
		if row[i], b, err = DecodeValue(b); err != nil {
			return nil, nil, err
		}
	}
	return row, b, nil
}

// --- tracked temp files ----------------------------------------------------------

// Pool creates and tracks spill files under one directory. Files deregister
// themselves on Close; Cleanup force-removes whatever is still live, which is
// how a session teardown (close, disconnect, shutdown) guarantees zero
// leftover temp files even if an iterator tree was abandoned mid-stream.
// Counters are cumulative for the pool's lifetime — they feed
// SHOW memory_status.
type Pool struct {
	mu   sync.Mutex
	dir  string
	live map[*File]struct{}

	files atomic.Int64 // files ever created
	bytes atomic.Int64 // bytes ever written
}

// NewPool returns a pool writing under dir ("" = the OS temp directory).
func NewPool(dir string) *Pool {
	return &Pool{dir: dir, live: make(map[*File]struct{})}
}

// SetDir changes the directory future files are created in.
func (p *Pool) SetDir(dir string) {
	p.mu.Lock()
	p.dir = dir
	p.mu.Unlock()
}

// Dir reports the pool's directory ("" = the OS temp directory).
func (p *Pool) Dir() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dir
}

// Files reports how many spill files were ever created.
func (p *Pool) Files() int64 { return p.files.Load() }

// Bytes reports how many bytes were ever spilled.
func (p *Pool) Bytes() int64 { return p.bytes.Load() }

// Live reports how many spill files currently exist (tests assert zero).
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.live)
}

// Create opens a fresh spill file in the pool's directory.
func (p *Pool) Create() (*File, error) {
	p.mu.Lock()
	dir := p.dir
	p.mu.Unlock()
	f, err := os.CreateTemp(dir, "perm-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill: create temp file: %w", err)
	}
	sf := &File{pool: p, f: f, w: bufio.NewWriterSize(f, 64<<10)}
	p.mu.Lock()
	p.live[sf] = struct{}{}
	p.mu.Unlock()
	p.files.Add(1)
	mSpillFiles.Inc()
	return sf, nil
}

// Cleanup closes and removes every file still live. Idempotent; safe to call
// concurrently with Close (a file is removed exactly once).
func (p *Pool) Cleanup() {
	p.mu.Lock()
	live := make([]*File, 0, len(p.live))
	for f := range p.live {
		live = append(live, f)
	}
	p.mu.Unlock()
	for _, f := range live {
		f.Close()
	}
}

// File is one spill file: append length-framed records, then StartRead to
// rewind and stream them back. Close removes the file from disk. A File is
// single-goroutine, like the operators above it.
type File struct {
	pool    *Pool
	f       *os.File
	w       *bufio.Writer
	r       *bufio.Reader
	buf     []byte // reusable record read buffer
	written int64
	records int64
	closed  bool
}

// Append writes one record.
func (f *File) Append(rec []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if _, err := f.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := f.w.Write(rec); err != nil {
		return err
	}
	f.written += int64(n + len(rec))
	f.records++
	return nil
}

// Records reports how many records were appended.
func (f *File) Records() int64 { return f.records }

// StartRead flushes pending writes, accounts the file's bytes in the pool,
// and rewinds for reading. A file is either being written or being read.
func (f *File) StartRead() error {
	if err := f.w.Flush(); err != nil {
		return err
	}
	f.pool.bytes.Add(f.written)
	mSpillBytes.Add(uint64(f.written))
	f.written = 0
	if _, err := f.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if f.r == nil {
		f.r = bufio.NewReaderSize(f.f, 64<<10)
	} else {
		f.r.Reset(f.f)
	}
	return nil
}

// Next returns the next record, or (nil, nil) at end of file. The returned
// slice is only valid until the next call.
func (f *File) Next() ([]byte, error) {
	n, err := binary.ReadUvarint(f.r)
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if cap(f.buf) < int(n) {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	if _, err := io.ReadFull(f.r, f.buf); err != nil {
		return nil, err
	}
	return f.buf, nil
}

// Close closes and deletes the file. Idempotent.
func (f *File) Close() error {
	f.pool.mu.Lock()
	if f.closed {
		f.pool.mu.Unlock()
		return nil
	}
	f.closed = true
	delete(f.pool.live, f)
	f.pool.mu.Unlock()
	// Bytes written but never read back (an interrupted run) still count as
	// spilled traffic.
	f.pool.bytes.Add(f.written)
	mSpillBytes.Add(uint64(f.written))
	name := f.f.Name()
	err := f.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	// Drop the buffered I/O state now: owners keep closed files registered
	// for idempotent teardown, and a big spill creates hundreds of files —
	// their 64 KiB buffers must not stay pinned until the query ends.
	f.w, f.r, f.buf = nil, nil, nil
	return err
}
