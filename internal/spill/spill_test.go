package spill

import (
	"math"
	"os"
	"testing"

	"perm/internal/value"
)

func codecCases() []value.Row {
	return []value.Row{
		{},
		{value.Null},
		{value.NewBool(true), value.NewBool(false)},
		{value.NewInt(0), value.NewInt(-1), value.NewInt(math.MaxInt64), value.NewInt(math.MinInt64)},
		{value.NewFloat(0), value.NewFloat(math.Copysign(0, -1)), value.NewFloat(math.NaN()), value.NewFloat(math.Inf(1)), value.NewFloat(2.5)},
		{value.NewString(""), value.NewString("héllo\x00world"), value.NewString(string(make([]byte, 4096)))},
		{value.NewInt(5), value.NewFloat(5)}, // int 5 and float 5.0 must stay distinct kinds
	}
}

// TestRowCodecRoundTrip: every value must come back bit-for-bit, kinds
// included — the codec backs external sorts and grace partitions whose
// results must be byte-identical to the in-memory path.
func TestRowCodecRoundTrip(t *testing.T) {
	for _, row := range codecCases() {
		enc := AppendRow(nil, row)
		got, rest, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", row, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v left %d bytes", row, len(rest))
		}
		if len(got) != len(row) {
			t.Fatalf("arity %d != %d", len(got), len(row))
		}
		for i := range row {
			w, g := row[i], got[i]
			if w.K != g.K || w.B != g.B || w.I != g.I || w.S != g.S ||
				math.Float64bits(w.F) != math.Float64bits(g.F) {
				t.Fatalf("value %d: %#v != %#v", i, g, w)
			}
		}
	}
}

// TestFileRoundTrip writes records through a pool file and reads them back.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(dir)
	f, err := p.Create()
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for _, row := range codecCases() {
		recs = append(recs, AppendRow(nil, row))
	}
	for _, rec := range recs {
		if err := f.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.StartRead(); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		got, err := f.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if got, err := f.Next(); err != nil || got != nil {
		t.Fatalf("expected EOF, got %v / %v", got, err)
	}
	if p.Files() != 1 || p.Bytes() == 0 {
		t.Fatalf("counters: files=%d bytes=%d", p.Files(), p.Bytes())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("file not removed: %d entries", len(ents))
	}
}

// TestPoolCleanup force-removes abandoned files — the backstop behind
// session teardown.
func TestPoolCleanup(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(dir)
	for i := 0; i < 5; i++ {
		f, err := p.Create()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append([]byte("abandoned")); err != nil {
			t.Fatal(err)
		}
	}
	if p.Live() != 5 {
		t.Fatalf("live = %d", p.Live())
	}
	p.Cleanup()
	if p.Live() != 0 {
		t.Fatalf("live after cleanup = %d", p.Live())
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("cleanup left %d entries", len(ents))
	}
	p.Cleanup() // idempotent
}

// FuzzSpillCodec throws arbitrary bytes at the row decoder: it must never
// panic or over-allocate, and whatever decodes must re-encode to bytes that
// decode to the same row (decode∘encode is the identity on valid frames).
func FuzzSpillCodec(f *testing.F) {
	for _, row := range codecCases() {
		f.Add(AppendRow(nil, row))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, _, err := DecodeRow(data)
		if err != nil {
			return
		}
		enc := AppendRow(nil, row)
		again, rest, err := DecodeRow(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (%d rest)", err, len(rest))
		}
		if len(again) != len(row) {
			t.Fatalf("arity changed: %d != %d", len(again), len(row))
		}
		for i := range row {
			if row[i].K != again[i].K || row[i].Key() != again[i].Key() {
				t.Fatalf("value %d changed: %#v != %#v", i, again[i], row[i])
			}
		}
	})
}
