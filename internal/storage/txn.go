package storage

import (
	"errors"
	"fmt"
	"sort"

	"perm/internal/repl"
	"perm/internal/value"
)

// ErrWriteConflict is the typed error a transaction commit fails with when
// first-committer-wins validation finds that another writer changed or
// removed a row this transaction also wrote. The losing transaction is
// rolled back; the caller retries it from BEGIN. The engine re-exports it
// and the network server maps it to a wire error code, so it stays typed
// all the way to database/sql callers.
var ErrWriteConflict = errors.New("storage: write conflict: row changed by a concurrent transaction, retry the transaction")

// errTxnDone guards use-after-finish.
var errTxnDone = errors.New("storage: transaction is already committed or rolled back")

// Txn is a snapshot-isolation transaction: every read sees exactly the
// versions visible at the snapshot LSN pinned at Begin (plus the
// transaction's own buffered writes), and writes are buffered until Commit,
// which validates first-committer-wins — if any row this transaction
// deleted or updated was meanwhile changed by another committed writer, the
// commit fails with ErrWriteConflict and nothing is applied.
//
// A Txn is single-goroutine on its write side (the owning session executes
// one statement at a time); concurrent readers of the same Txn (parallel
// query workers) are safe because they only read the buffered state.
type Txn struct {
	store *Store
	snap  uint64
	done  bool
	tabs  map[*Table]*txnTable
}

// txnTable is one table's buffered effects.
type txnTable struct {
	// mods maps a row version this transaction read (the version visible at
	// its snapshot) to what the transaction did to it. The version pointer
	// is the conflict-detection token: at commit it must still be its
	// slot's newest, live version, or someone else changed the row first.
	mods map[*rowVersion]*txnMod
	// ins are rows this transaction inserted; entries deleted again by the
	// same transaction are nil.
	ins []value.Row
}

// txnMod is a buffered delete (del) or update (replacement row) of one
// pre-existing row.
type txnMod struct {
	del bool
	row value.Row
}

// Begin opens a snapshot-isolation transaction pinned at the store's
// current visible LSN. The pin also holds the vacuum horizon: versions the
// transaction can see stay resident until it finishes.
func (s *Store) Begin() *Txn {
	return &Txn{store: s, snap: s.PinSnapshot(), tabs: make(map[*Table]*txnTable)}
}

// Snap returns the transaction's snapshot LSN.
func (x *Txn) Snap() uint64 { return x.snap }

// Store returns the store the transaction began on. Sessions check it before
// attaching the transaction to a statement: after a replica re-bootstrap
// swaps the database's store, a transaction pinned on the old store must not
// read the new one's heaps.
func (x *Txn) Store() *Store { return x.store }

// Done reports whether the transaction has committed or rolled back.
func (x *Txn) Done() bool { return x.done }

func (x *Txn) table(t *Table) *txnTable {
	tt := x.tabs[t]
	if tt == nil {
		tt = &txnTable{mods: make(map[*rowVersion]*txnMod)}
		x.tabs[t] = tt
	}
	return tt
}

// versionRow pairs a version the transaction can see with the row image the
// transaction sees for it (the buffered replacement, when it updated it).
type versionRow struct {
	v   *rowVersion
	row value.Row
}

// visiblePairs materializes the versions visible at the transaction's
// snapshot with its own modifications applied, in slot order. Own inserts
// are NOT included — callers overlay tt.ins themselves, because inserts are
// addressed by index, not by version.
func (x *Txn) visiblePairs(t *Table) []versionRow {
	tt := x.tabs[t]
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]versionRow, 0, len(t.slots))
	for _, v := range t.slots {
		w := v.visibleAt(x.snap)
		if w == nil {
			continue
		}
		if tt != nil {
			if m, ok := tt.mods[w]; ok {
				if m.del {
					continue
				}
				out = append(out, versionRow{v: w, row: m.row})
				continue
			}
		}
		out = append(out, versionRow{v: w, row: w.row})
	}
	return out
}

// TableRows returns the rows of t as this transaction sees them: the
// snapshot image with buffered updates and deletes applied and buffered
// inserts appended. The executor's scans read transactions through this.
func (x *Txn) TableRows(t *Table) []value.Row {
	tt := x.tabs[t]
	if tt == nil || (len(tt.mods) == 0 && len(tt.ins) == 0) {
		// No writes to this table: the plain snapshot read, sharing the
		// table's materialization cache with every other reader.
		return t.SnapshotAt(x.snap)
	}
	pairs := x.visiblePairs(t)
	out := make([]value.Row, 0, len(pairs)+len(tt.ins))
	for _, p := range pairs {
		out = append(out, p.row)
	}
	for _, r := range tt.ins {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Insert buffers rows for insertion at commit, after type checking.
func (x *Txn) Insert(t *Table, rows []value.Row) (int, error) {
	if x.done {
		return 0, errTxnDone
	}
	checked := make([]value.Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return 0, fmt.Errorf("row %d: %v", i+1, err)
		}
		checked[i] = c
	}
	if len(checked) == 0 {
		return 0, nil
	}
	tt := x.table(t)
	tt.ins = append(tt.ins, checked...)
	return len(checked), nil
}

// Delete buffers the deletion of every visible row matching pred (all rows
// when pred is nil), including rows this transaction itself inserted or
// updated. pred runs outside all storage locks and may query any table.
func (x *Txn) Delete(t *Table, pred func(value.Row) (bool, error)) (int, error) {
	if x.done {
		return 0, errTxnDone
	}
	pairs := x.visiblePairs(t)
	tt := x.table(t)
	n := 0
	for _, p := range pairs {
		if pred != nil {
			ok, err := pred(p.row)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
		}
		tt.mods[p.v] = &txnMod{del: true}
		n++
	}
	for i, r := range tt.ins {
		if r == nil {
			continue
		}
		if pred != nil {
			ok, err := pred(r)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
		}
		tt.ins[i] = nil
		n++
	}
	return n, nil
}

// Update buffers the replacement of every visible row matching pred with
// fn's result, after type checking. Rows this transaction inserted are
// rewritten in place. Like Delete's, both callbacks run outside all storage
// locks.
func (x *Txn) Update(t *Table, pred func(value.Row) (bool, error), fn func(value.Row) (value.Row, error)) (int, error) {
	if x.done {
		return 0, errTxnDone
	}
	pairs := x.visiblePairs(t)
	tt := x.table(t)
	n := 0
	for _, p := range pairs {
		if pred != nil {
			ok, err := pred(p.row)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
		}
		nr, err := fn(p.row)
		if err != nil {
			return 0, err
		}
		checked, err := t.checkRow(nr)
		if err != nil {
			return 0, err
		}
		tt.mods[p.v] = &txnMod{row: checked}
		n++
	}
	for i, r := range tt.ins {
		if r == nil {
			continue
		}
		if pred != nil {
			ok, err := pred(r)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
		}
		nr, err := fn(r)
		if err != nil {
			return 0, err
		}
		checked, err := t.checkRow(nr)
		if err != nil {
			return 0, err
		}
		tt.ins[i] = checked
		n++
	}
	return n, nil
}

// commitTable is one table's validated, slot-ordered commit plan.
type commitTable struct {
	t *Table
	// deletes
	delVs   []*rowVersion
	delImgs []value.Row
	// updates (slot index, target version, old and new image, slot-ordered)
	updIdx  []int
	updVs   []*rowVersion
	oldImgs []value.Row
	newImgs []value.Row
	// inserts (in buffered order, nil entries already dropped)
	ins []value.Row
}

// Commit validates and applies the transaction. Validation is
// first-committer-wins: every version this transaction deleted or updated
// must still be its slot's newest, live version — if a concurrent committed
// writer superseded, deleted, or (via vacuum after deletion) removed it,
// Commit aborts everything with ErrWriteConflict. On success all buffered
// effects across all tables become visible atomically at one gate-held
// apply, and Commit then waits for durability like any autocommit mutation.
// Whatever the outcome, the transaction is finished afterwards.
func (x *Txn) Commit() error {
	if x.done {
		return errTxnDone
	}
	s := x.store
	plans := x.commitPlansLocked()
	if plans == nil {
		// Nothing to write: a read-only transaction just releases its pin.
		x.finish()
		return nil
	}
	if err := s.writeAllowed(); err != nil {
		x.unlockAll(plans)
		x.finish()
		return err
	}
	// Validate under the tables' writer locks: no other writer can stamp
	// anything while we check, and the locks are ordered (by table name), so
	// concurrent commits cannot deadlock.
	conflict := false
	for i := range plans {
		if !plans[i].validate() {
			conflict = true
			break
		}
	}
	if conflict {
		x.unlockAll(plans)
		x.finish()
		s.conflicts.Add(1)
		return ErrWriteConflict
	}
	// Apply everything under one gate hold: the whole transaction becomes
	// visible at once, and snapshot collection can never see half of it.
	s.gate.Lock()
	for i := range plans {
		plans[i].apply()
	}
	s.visible.Store(s.log.LastLSN())
	s.gate.Unlock()
	// Mirror the engine's post-DML statistics refresh for row-count-changing
	// effects, exactly as replica replay does — cost-based plan choices must
	// not drift between a primary that committed a transaction and a replica
	// that replayed its records.
	for i := range plans {
		p := &plans[i]
		if len(p.ins) > 0 || len(p.delVs) > 0 {
			s.catalog.SetRowCount(p.t.def.Name, p.t.RowCount())
		}
	}
	x.unlockAll(plans)
	x.finish()
	return s.WaitDurable()
}

// commitPlansLocked collects the transaction's effects per table, sorted by
// table name, and takes each table's writer lock in that order. It returns
// nil (taking no locks) when the transaction wrote nothing.
func (x *Txn) commitPlansLocked() []commitTable {
	var plans []commitTable
	for t, tt := range x.tabs {
		p := commitTable{t: t}
		for _, r := range tt.ins {
			if r != nil {
				p.ins = append(p.ins, r)
			}
		}
		for v, m := range tt.mods {
			if m.del {
				p.delVs = append(p.delVs, v)
			} else {
				p.updVs = append(p.updVs, v)
				p.newImgs = append(p.newImgs, m.row)
			}
		}
		if len(p.ins) == 0 && len(p.delVs) == 0 && len(p.updVs) == 0 {
			continue
		}
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return nil
	}
	sort.Slice(plans, func(i, j int) bool {
		return keyOf(plans[i].t.def.Name) < keyOf(plans[j].t.def.Name)
	})
	for i := range plans {
		plans[i].t.writeMu.Lock()
	}
	return plans
}

func (x *Txn) unlockAll(plans []commitTable) {
	for i := range plans {
		plans[i].t.writeMu.Unlock()
	}
}

// validate checks first-committer-wins for one table and orders the plan's
// targets by slot position (the order replica replay re-matches images in).
// Caller holds the table's writeMu.
func (p *commitTable) validate() bool {
	t := p.t
	// Slot index of every newest version. A target missing from this map was
	// superseded by another writer's update (its slot has a newer head) or
	// vacuumed after another writer's delete — both conflicts.
	newest := make(map[*rowVersion]int, len(t.slots))
	t.mu.RLock()
	for i, v := range t.slots {
		newest[v] = i
	}
	t.mu.RUnlock()
	type tagged struct {
		idx int
		v   *rowVersion
		img value.Row
	}
	dels := make([]tagged, 0, len(p.delVs))
	for _, v := range p.delVs {
		idx, ok := newest[v]
		if !ok || v.deleted != 0 {
			return false
		}
		dels = append(dels, tagged{idx: idx, v: v})
	}
	upds := make([]tagged, 0, len(p.updVs))
	for i, v := range p.updVs {
		idx, ok := newest[v]
		if !ok || v.deleted != 0 {
			return false
		}
		upds = append(upds, tagged{idx: idx, v: v, img: p.newImgs[i]})
	}
	sort.Slice(dels, func(i, j int) bool { return dels[i].idx < dels[j].idx })
	sort.Slice(upds, func(i, j int) bool { return upds[i].idx < upds[j].idx })
	p.delVs, p.delImgs = p.delVs[:0], p.delImgs[:0]
	for _, d := range dels {
		p.delVs = append(p.delVs, d.v)
		p.delImgs = append(p.delImgs, d.v.row)
	}
	p.updIdx, p.updVs, p.oldImgs, p.newImgs = p.updIdx[:0], p.updVs[:0], p.oldImgs[:0], p.newImgs[:0]
	for _, u := range upds {
		p.updIdx = append(p.updIdx, u.idx)
		p.updVs = append(p.updVs, u.v)
		p.oldImgs = append(p.oldImgs, u.v.row)
		p.newImgs = append(p.newImgs, u.img)
	}
	return true
}

// apply stamps one table's validated plan. Caller holds the table's writeMu
// and the store gate; the visible LSN is published once by Commit after
// every table applied.
func (p *commitTable) apply() {
	t := p.t
	if len(p.delVs) > 0 {
		rec := &repl.Record{Kind: repl.KindDelete, Table: t.def.Name, Rows: p.delImgs}
		t.applyGateHeld(rec, func(ranges []lsnRange) {
			for _, rg := range ranges {
				for i := rg.lo; i < rg.hi; i++ {
					p.delVs[i].deleted = rg.lsn
				}
			}
		})
	}
	if len(p.updVs) > 0 {
		rec := &repl.Record{Kind: repl.KindUpdate, Table: t.def.Name, Rows: p.newImgs, OldRows: p.oldImgs}
		t.applyGateHeld(rec, func(ranges []lsnRange) {
			for _, rg := range ranges {
				for i := rg.lo; i < rg.hi; i++ {
					old := p.updVs[i]
					old.deleted = rg.lsn
					t.slots[p.updIdx[i]] = &rowVersion{row: p.newImgs[i], created: rg.lsn, next: old}
				}
			}
		})
	}
	if len(p.ins) > 0 {
		rec := &repl.Record{Kind: repl.KindInsert, Table: t.def.Name, Rows: p.ins}
		t.applyGateHeld(rec, func(ranges []lsnRange) { t.insertLocked(p.ins, ranges) })
	}
}

// applyGateHeld is Table.apply for callers that already hold the store gate
// and publish the visible LSN themselves (transaction commit, which spans
// several records and tables under one gate hold).
func (t *Table) applyGateHeld(rec *repl.Record, stamp func(ranges []lsnRange)) {
	ranges := appendRecord(t.log, *rec)
	t.mu.Lock()
	stamp(ranges)
	if len(ranges) > 0 {
		t.lastMod = ranges[len(ranges)-1].lsn
	}
	t.mu.Unlock()
}

// Rollback discards all buffered effects and releases the snapshot pin. It
// is a no-op on a finished transaction.
func (x *Txn) Rollback() {
	if x.done {
		return
	}
	x.finish()
}

func (x *Txn) finish() {
	x.done = true
	x.store.UnpinSnapshot(x.snap)
	x.tabs = nil
}
