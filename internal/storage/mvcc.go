package storage

import (
	"perm/internal/value"
)

// This file is the multi-version half of the storage engine: row versions,
// snapshot visibility, snapshot pinning, and the version vacuum. The write
// paths that create versions live in storage.go (primary DML, replica
// replay) and txn.go (transaction commit); everything here is about reading
// them consistently and reclaiming them safely.

// rowVersion is one version of one row. A table slot points at the newest
// version; older versions hang off next, newest first. created is the LSN of
// the change that produced the version (0 = loaded from a snapshot, visible
// to everyone); deleted is the LSN of the change that superseded or removed
// it (0 = live). Fields are stamped under the owning table's mu (exclusive)
// and read either under mu (readers) or under the table's writeMu (writers,
// which excludes all stamping), so none of them need atomics.
type rowVersion struct {
	row     value.Row
	created uint64
	deleted uint64
	next    *rowVersion
}

// visibleAt returns the version of this slot's row visible at snapshot LSN
// snap, or nil when the row does not exist at that snapshot. The chain is
// newest-first and created LSNs decrease along it, so the first version old
// enough decides: it is visible unless a change at or before snap deleted it.
func (v *rowVersion) visibleAt(snap uint64) *rowVersion {
	for w := v; w != nil; w = w.next {
		if w.created > snap {
			continue
		}
		if w.deleted != 0 && w.deleted <= snap {
			return nil
		}
		return w
	}
	return nil
}

// matRows is one materialized read view of a table, cached on the table and
// shared zero-copy by every reader whose snapshot it matches. mod is the
// table's lastMod LSN at materialization time: any snapshot at or past it
// sees exactly these rows, because nothing in the table changed after mod.
type matRows struct {
	mod  uint64
	rows []value.Row
}

// visibleLSN is the newest snapshot LSN readers of this table may pin:
// the owning store's published visible position, or the table-local
// sequence for a detached table.
func (t *Table) visibleLSN() uint64 {
	if t.store != nil {
		return t.store.visible.Load()
	}
	return t.localSeq.Load()
}

// SnapshotAt materializes the rows visible at snapshot LSN snap, in slot
// (insertion) order — updated rows keep their position, exactly as the
// pre-MVCC in-place heap ordered them. snap == 0 means "now": the store's
// current visible LSN. The returned slice and its rows are immutable and may
// be shared between callers; a steady-state read (no write to this table
// since the snapshot) is served from the table's materialization cache
// without copying anything.
func (t *Table) SnapshotAt(snap uint64) []value.Row {
	t.mu.RLock()
	if snap == 0 {
		snap = t.visibleLSN()
	}
	current := t.lastMod <= snap
	if current {
		if c := t.cache.Load(); c != nil && c.mod == t.lastMod {
			t.mu.RUnlock()
			return c.rows
		}
	}
	out := make([]value.Row, 0, len(t.slots))
	for _, v := range t.slots {
		if w := v.visibleAt(snap); w != nil {
			out = append(out, w.row)
		}
	}
	mod := t.lastMod
	t.mu.RUnlock()
	if current {
		t.cache.Store(&matRows{mod: mod, rows: out})
	}
	return out
}

// Snapshot returns the rows currently visible — SnapshotAt at the store's
// visible position. Kept as the zero-argument form the executor, ANALYZE and
// persistence always used; the aliasing contract is unchanged (callers must
// treat the slice and its rows as read-only).
func (t *Table) Snapshot() []value.Row {
	return t.SnapshotAt(0)
}

// RowCount returns the number of rows currently visible.
func (t *Table) RowCount() int {
	return len(t.SnapshotAt(0))
}

// VersionCount reports live slots and total resident versions (diagnostics:
// SHOW mvcc_status sums it across tables).
func (t *Table) VersionCount() (slots, versions int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slots = len(t.slots)
	for _, v := range t.slots {
		for w := v; w != nil; w = w.next {
			versions++
		}
	}
	return slots, versions
}

// --- snapshot pinning -----------------------------------------------------------

// PinSnapshot registers a reader at the store's current visible LSN and
// returns that LSN. The registration and the read of the visible position
// happen under one lock, so the vacuum horizon can never advance past a
// snapshot between a reader choosing it and the pin landing. Every pin must
// be paired with exactly one UnpinSnapshot.
func (s *Store) PinSnapshot() uint64 {
	s.pinMu.Lock()
	lsn := s.visible.Load()
	if s.pins == nil {
		s.pins = make(map[uint64]int)
	}
	s.pins[lsn]++
	s.pinMu.Unlock()
	return lsn
}

// UnpinSnapshot releases one pin taken at lsn.
func (s *Store) UnpinSnapshot(lsn uint64) {
	s.pinMu.Lock()
	if n := s.pins[lsn]; n > 1 {
		s.pins[lsn] = n - 1
	} else {
		delete(s.pins, lsn)
	}
	s.pinMu.Unlock()
}

// snapshotHorizon is the oldest snapshot any reader may still be using: the
// minimum pinned LSN, or the current visible position when nothing is
// pinned. Versions dead at or before the horizon are unreachable by every
// present and future reader and may be vacuumed.
func (s *Store) snapshotHorizon() uint64 {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	h := s.visible.Load()
	for lsn := range s.pins {
		if lsn < h {
			h = lsn
		}
	}
	return h
}

// PinnedSnapshots reports how many snapshot pins are outstanding.
func (s *Store) PinnedSnapshots() int {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	n := 0
	for _, c := range s.pins {
		n += c
	}
	return n
}

// --- vacuum ---------------------------------------------------------------------

// Vacuum reclaims row versions no reader can see anymore: for every table it
// drops slots whose newest version was deleted at or before the snapshot
// horizon, and trims version chains below the newest version the horizon can
// still reach. It returns the number of versions removed. Vacuum never
// blocks readers for longer than one table's slot walk and takes each
// table's writer lock in turn, so it interleaves with normal DML.
//
// Version structs themselves are never copied or reused — an open
// transaction holds pointers to the versions it read, and commit-time
// conflict validation depends on those identities staying meaningful.
func (s *Store) Vacuum() int {
	h := s.snapshotHorizon()
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	removed := 0
	for _, t := range tables {
		removed += t.vacuum(h)
	}
	s.vacuumRuns.Add(1)
	s.vacuumRemoved.Add(uint64(removed))
	return removed
}

func (t *Table) vacuum(h uint64) int {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	kept := t.slots[:0]
	for _, v := range t.slots {
		if v.deleted != 0 && v.deleted <= h {
			// The newest version is dead at the horizon, so every older one
			// is too (they were superseded even earlier): no reader at or
			// past the horizon can see any of them. Drop the whole slot.
			for w := v; w != nil; w = w.next {
				removed++
			}
			continue
		}
		kept = append(kept, v)
		// Find the newest version the horizon can reach; everything below it
		// is unreachable by any pinnable snapshot and is cut loose.
		w := v
		for w != nil && w.created > h {
			w = w.next
		}
		if w != nil && w.next != nil {
			for x := w.next; x != nil; x = x.next {
				removed++
			}
			w.next = nil
		}
	}
	for i := len(kept); i < len(t.slots); i++ {
		t.slots[i] = nil
	}
	t.slots = kept
	return removed
}

// MVCCStatus is the observable multi-version state behind SHOW mvcc_status.
type MVCCStatus struct {
	// VisibleLSN is the store's published snapshot position; HorizonLSN the
	// oldest snapshot still pinned (== VisibleLSN when nothing is pinned).
	VisibleLSN, HorizonLSN uint64
	// Pins counts outstanding snapshot pins (statements and transactions).
	Pins int
	// Slots and Versions count resident row slots and row versions across
	// all tables; Versions - live rows is the vacuum backlog.
	Slots, Versions int
	// VacuumRuns and VacuumRemoved count vacuum passes and the versions they
	// reclaimed; WriteConflicts counts transactions aborted by
	// first-committer-wins validation.
	VacuumRuns, VacuumRemoved, WriteConflicts uint64
}

// MVCCStatus reports the store's multi-version counters.
func (s *Store) MVCCStatus() MVCCStatus {
	st := MVCCStatus{
		VisibleLSN:     s.visible.Load(),
		HorizonLSN:     s.snapshotHorizon(),
		Pins:           s.PinnedSnapshots(),
		VacuumRuns:     s.vacuumRuns.Load(),
		VacuumRemoved:  s.vacuumRemoved.Load(),
		WriteConflicts: s.conflicts.Load(),
	}
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	for _, t := range tables {
		sl, vs := t.VersionCount()
		st.Slots += sl
		st.Versions += vs
	}
	return st
}
