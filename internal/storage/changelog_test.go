package storage

import (
	"bytes"
	"fmt"
	"testing"

	"perm/internal/catalog"
	"perm/internal/repl"
	"perm/internal/value"
)

func mustCreate(t *testing.T, s *Store, name string, cols ...catalog.Column) *Table {
	t.Helper()
	tab, err := s.CreateTable(&catalog.TableDef{Name: name, Columns: cols})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func intCol(name string) catalog.Column  { return catalog.Column{Name: name, Type: value.KindInt} }
func textCol(name string) catalog.Column { return catalog.Column{Name: name, Type: value.KindString} }

// TestChangeLogRecordsMutations verifies every mutation shape lands in the
// log with the right kind, dense LSNs, and faithful row images.
func TestChangeLogRecordsMutations(t *testing.T) {
	s := NewStore()
	tab := mustCreate(t, s, "t", intCol("i"), textCol("s"))
	if _, err := tab.InsertBatch([]value.Row{
		{value.NewInt(1), value.NewString("a")},
		{value.NewInt(2), value.NewString("b")},
		{value.NewInt(2), value.NewString("b")}, // duplicate row
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Update(
		func(r value.Row) (bool, error) { return r[0].Int() == 2, nil },
		func(r value.Row) (value.Row, error) {
			return value.Row{r[0], value.NewString("u")}, nil
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Delete(func(r value.Row) (bool, error) { return r[0].Int() == 1, nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateView(&catalog.ViewDef{Name: "v", Text: "SELECT i FROM t"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Analyze(""); err != nil {
		t.Fatal(err)
	}
	if err := s.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}

	recs, ok := s.Log().Since(0, 0)
	if !ok {
		t.Fatal("log trimmed unexpectedly")
	}
	wantKinds := []repl.Kind{
		repl.KindCreateTable, repl.KindInsert, repl.KindUpdate, repl.KindDelete,
		repl.KindCreateView, repl.KindAnalyze, repl.KindDropView, repl.KindDropTable,
	}
	if len(recs) != len(wantKinds) {
		t.Fatalf("log has %d records, want %d: %+v", len(recs), len(wantKinds), recs)
	}
	for i, rec := range recs {
		if rec.Kind != wantKinds[i] {
			t.Fatalf("record %d kind %s, want %s", i, rec.Kind, wantKinds[i])
		}
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d LSN %d, want %d", i, rec.LSN, i+1)
		}
	}
	if upd := recs[2]; len(upd.OldRows) != 2 || len(upd.Rows) != 2 ||
		upd.OldRows[0][1].Str() != "b" || upd.Rows[0][1].Str() != "u" {
		t.Fatalf("update record images: old %v new %v", upd.OldRows, upd.Rows)
	}
	if del := recs[3]; len(del.Rows) != 1 || del.Rows[0][0].Int() != 1 {
		t.Fatalf("delete record images: %v", del.Rows)
	}
}

// TestNoOpMutationsNotLogged: zero-row inserts, no-match deletes/updates add
// nothing to the log (a replica has nothing to do).
func TestNoOpMutationsNotLogged(t *testing.T) {
	s := NewStore()
	tab := mustCreate(t, s, "t", intCol("i"))
	before := s.Log().LastLSN()
	if _, err := tab.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Delete(func(value.Row) (bool, error) { return false, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Update(func(value.Row) (bool, error) { return false, nil },
		func(r value.Row) (value.Row, error) { return r, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Delete(nil); err != nil { // truncate of an empty table
		t.Fatal(err)
	}
	if got := s.Log().LastLSN(); got != before {
		t.Fatalf("no-op mutations advanced the log from %d to %d", before, got)
	}
}

// TestApplyChangeReplay replays a store's log into a second store and
// expects identical tables, including duplicate-row multisets.
func TestApplyChangeReplay(t *testing.T) {
	src := NewStore()
	tab := mustCreate(t, src, "t", intCol("i"), textCol("s"))
	var rows []value.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i % 7)), value.NewString(fmt.Sprint("v", i%5))})
	}
	if _, err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Update(
		func(r value.Row) (bool, error) { return r[0].Int()%3 == 0, nil },
		func(r value.Row) (value.Row, error) { return value.Row{r[0], value.NewString("upd")}, nil },
	); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Delete(func(r value.Row) (bool, error) { return r[0].Int() == 1, nil }); err != nil {
		t.Fatal(err)
	}

	dst := NewStore()
	recs, ok := src.Log().Since(0, 0)
	if !ok {
		t.Fatal("source log trimmed")
	}
	for _, rec := range recs {
		if err := dst.ApplyChange(rec); err != nil {
			t.Fatalf("apply LSN %d: %v", rec.LSN, err)
		}
	}
	if got, want := dst.Log().LastLSN(), src.Log().LastLSN(); got != want {
		t.Fatalf("replayed log at LSN %d, source at %d", got, want)
	}
	srcRows, dstRows := src.Table("t").Snapshot(), dst.Table("t").Snapshot()
	if len(srcRows) != len(dstRows) {
		t.Fatalf("replayed table has %d rows, want %d", len(dstRows), len(srcRows))
	}
	for i := range srcRows {
		if srcRows[i].Key() != dstRows[i].Key() {
			t.Fatalf("row %d diverged: %v vs %v", i, srcRows[i], dstRows[i])
		}
	}
}

// TestApplyChangeDivergence: row images that don't match the local table
// must error (the follower re-bootstraps on this signal).
func TestApplyChangeDivergence(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "t", intCol("i"))
	lsn := s.Log().LastLSN()
	err := s.ApplyChange(repl.Record{LSN: lsn + 1, Kind: repl.KindDelete, Table: "t",
		Rows: []value.Row{{value.NewInt(99)}}})
	if err == nil {
		t.Fatal("deleting a non-existent row image did not error")
	}
	// DML against a missing table is skipped but still consumes the LSN.
	before := s.Log().LastLSN()
	if err := s.ApplyChange(repl.Record{LSN: before + 1, Kind: repl.KindInsert, Table: "ghost",
		Rows: []value.Row{{value.NewInt(1)}}}); err != nil {
		t.Fatalf("insert into dropped table should be a logged no-op: %v", err)
	}
	if got := s.Log().LastLSN(); got != before+1 {
		t.Fatalf("skipped record did not advance the log: %d", got)
	}
}

// TestLargeMutationSplit: one huge insert is logged as several consecutive
// records so encoded frames stay bounded, and replaying them reproduces the
// table.
func TestLargeMutationSplit(t *testing.T) {
	s := NewStore()
	tab := mustCreate(t, s, "t", intCol("i"))
	n := maxRecordRows*2 + 17
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(i))}
	}
	if _, err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	recs, _ := s.Log().Since(1, 0) // skip CREATE TABLE
	if len(recs) != 3 {
		t.Fatalf("huge insert logged as %d records, want 3", len(recs))
	}
	total := 0
	for _, rec := range recs {
		if rec.Kind != repl.KindInsert || len(rec.Rows) > maxRecordRows {
			t.Fatalf("split record: kind %s, %d rows", rec.Kind, len(rec.Rows))
		}
		total += len(rec.Rows)
	}
	if total != n {
		t.Fatalf("split records carry %d rows, want %d", total, n)
	}
}

// TestSnapshotCarriesLSN: Save/Restore round-trips the log position, and a
// v2 snapshot of a store with history resumes the LSN space.
func TestSnapshotCarriesLSN(t *testing.T) {
	s := NewStore()
	tab := mustCreate(t, s, "t", intCol("i"))
	for i := 0; i < 5; i++ {
		if _, err := tab.Insert(value.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	lsn, err := s.SaveLSN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 { // CREATE TABLE + 5 inserts
		t.Fatalf("snapshot LSN = %d, want 6", lsn)
	}
	r := NewStore()
	if err := r.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if got := r.Log().LastLSN(); got != 6 {
		t.Fatalf("restored log at LSN %d, want 6", got)
	}
	// Restore logged nothing: the retained tail is empty, history beyond the
	// snapshot position unavailable.
	if _, ok := r.Log().Since(0, 0); ok {
		t.Fatal("restored store claims history before its snapshot LSN")
	}
	if recs, ok := r.Log().Since(6, 0); !ok || len(recs) != 0 {
		t.Fatalf("restored store tail = %v, ok=%v", recs, ok)
	}
	// And the store continues the LSN space.
	if _, err := r.Table("t").Insert(value.Row{value.NewInt(99)}); err != nil {
		t.Fatal(err)
	}
	if got := r.Log().LastLSN(); got != 7 {
		t.Fatalf("first post-restore mutation at LSN %d, want 7", got)
	}
}

// TestWideRowMutationSplitsByBytes: few rows but huge payloads must also
// split, so one record can never exceed what a wire frame can carry.
func TestWideRowMutationSplitsByBytes(t *testing.T) {
	s := NewStore()
	tab := mustCreate(t, s, "t", intCol("i"), textCol("s"))
	wide := string(make([]byte, 3<<20)) // 3 MiB per row, 8 MiB record budget
	var rows []value.Row
	for i := 0; i < 6; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewString(wide)})
	}
	if _, err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	recs, _ := s.Log().Since(1, 0) // skip CREATE TABLE
	if len(recs) != 3 {
		t.Fatalf("6×3MiB insert logged as %d records, want 3 (2 rows each)", len(recs))
	}
	total := 0
	for _, rec := range recs {
		if len(rec.Rows) > 2 {
			t.Fatalf("split record carries %d wide rows", len(rec.Rows))
		}
		total += len(rec.Rows)
	}
	if total != 6 {
		t.Fatalf("split records carry %d rows, want 6", total)
	}
}
