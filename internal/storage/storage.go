// Package storage implements the in-memory heap storage engine under the
// Perm catalog: multi-versioned row slots per table with snapshot-LSN
// visibility, type-checked inserts, full-scan cursors, snapshot-isolation
// transactions, and a store that ties table data to the catalog the way
// PostgreSQL's heap ties to its system catalogs.
package storage

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"perm/internal/catalog"
	"perm/internal/repl"
	"perm/internal/value"
)

// Table holds the rows of one base relation as a slice of version slots:
// each slot is the newest version of one row, with superseded versions
// chained behind it (see mvcc.go). It is safe for concurrent use; readers
// materialize the versions visible at their snapshot LSN and never block on
// writers.
//
// Mutations run in two phases under writeMu (which serializes writers per
// table): first the decision phase evaluates predicates and update
// expressions against the live versions WITHOUT holding mu — so a WHERE
// subquery may scan any table, including this one, without deadlocking —
// then the apply phase takes the store gate, appends the change record (which
// assigns the mutation's LSNs), stamps and installs versions under mu, and
// publishes the new visible LSN. Readers pinned at earlier LSNs keep seeing
// exactly the versions their snapshot could see.
type Table struct {
	writeMu sync.Mutex
	mu      sync.RWMutex
	def     *catalog.TableDef
	slots   []*rowVersion
	// lastMod is the LSN of the last change applied to THIS table (under
	// mu). Any snapshot at or past it sees the table's current contents,
	// which is what lets the materialization cache serve steady-state reads
	// zero-copy.
	lastMod uint64
	// cache is the table's materialized read view (mvcc.go).
	cache atomic.Pointer[matRows]
	// gate, when non-nil, is the owning store's apply gate: every apply
	// phase holds it exclusively, so record append, version stamping and the
	// visible-LSN publication happen atomically with respect to every other
	// applier and to snapshot collection (Store.collect).
	gate *sync.Mutex
	// log, when non-nil, is the owning store's change log. Mutations append
	// their record inside the gate-held apply, so a persistence snapshot
	// always captures a row state and a log position that agree exactly.
	log *repl.ChangeLog
	// store, when non-nil, is the owning store — mutations consult its
	// durability gate before deciding and wait on it before acknowledging.
	store *Store
	// localSeq is the LSN space of a detached table (no owning store):
	// version stamps come from it and it doubles as the visible position.
	localSeq atomic.Uint64
}

// NewTable creates an empty table for the definition.
func NewTable(def *catalog.TableDef) *Table {
	return &Table{def: def}
}

// Def returns the table definition.
func (t *Table) Def() *catalog.TableDef { return t.def }

// checkRow validates arity, nullability and coerces values to column types.
func (t *Table) checkRow(row value.Row) (value.Row, error) {
	if len(row) != len(t.def.Columns) {
		return nil, fmt.Errorf("table %q expects %d values, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	out := make(value.Row, len(row))
	for i, v := range row {
		col := t.def.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("null value in column %q of table %q violates not-null constraint",
					col.Name, t.def.Name)
			}
			out[i] = value.Null
			continue
		}
		cv, err := value.Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("column %q of table %q: %v", col.Name, t.def.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// lsnRange says which rows of a (possibly split) change record landed at
// which LSN: record rows [lo:hi) carry lsn. Version stamps come from these,
// so a split mutation's versions match the log records a replica will replay
// one by one.
type lsnRange struct {
	lsn    uint64
	lo, hi int
}

// maxRecordRows and maxRecordBytes cap one change record: a single huge
// mutation (CREATE TABLE AS over a large provenance query, an unqualified
// DELETE or UPDATE on a wide table) is logged as several consecutive
// records, so an encoded record always fits comfortably inside a wire frame
// — a record that cannot frame would wedge every subscription on it
// forever. The byte bound is approximate (string payloads dominate); 8 MiB
// leaves an 8× margin under the 64 MiB frame limit. The split happens
// inside one gate-held apply, so snapshots and readers still see all or
// none of it.
const (
	maxRecordRows  = 4096
	maxRecordBytes = 8 << 20
)

// approxRowBytes estimates a row image's encoded size.
func approxRowBytes(row value.Row) int {
	n := 16 * len(row)
	for _, v := range row {
		n += len(v.S)
	}
	return n
}

// appendRecord routes a record to the log and reports which LSNs its rows
// landed at: records without an LSN (primary mutations) are assigned the
// next ones, splitting oversized row sets; records carrying an LSN (a
// replica replaying the primary's feed — already split by the primary) must
// land at exactly that position. The replica's apply loop verifies
// continuity before mutating, so a failed AppendAt here means that check was
// bypassed — a programming error — and the record is dropped (nil return,
// the caller skips its apply) rather than corrupting the LSN space.
func appendRecord(log *repl.ChangeLog, rec repl.Record) []lsnRange {
	if rec.LSN != 0 {
		if err := log.AppendAt(rec); err != nil {
			return nil
		}
		return []lsnRange{{lsn: rec.LSN, lo: 0, hi: len(rec.Rows)}}
	}
	if len(rec.Rows) == 0 {
		log.Append(rec)
		return []lsnRange{{lsn: log.LastLSN()}}
	}
	var ranges []lsnRange
	for i := 0; i < len(rec.Rows); {
		j, bytes := i, 0
		for j < len(rec.Rows) && j-i < maxRecordRows {
			b := approxRowBytes(rec.Rows[j])
			if rec.OldRows != nil {
				b += approxRowBytes(rec.OldRows[j])
			}
			// Always take at least one row; a single row beyond the byte
			// bound still has to travel somehow.
			if j > i && bytes+b > maxRecordBytes {
				break
			}
			bytes += b
			j++
		}
		if i == 0 && j == len(rec.Rows) {
			log.Append(rec) // common case: no split
			return []lsnRange{{lsn: log.LastLSN(), lo: 0, hi: len(rec.Rows)}}
		}
		sub := repl.Record{Kind: rec.Kind, Table: rec.Table, Rows: rec.Rows[i:j]}
		if rec.OldRows != nil {
			sub.OldRows = rec.OldRows[i:j]
		}
		log.Append(sub)
		ranges = append(ranges, lsnRange{lsn: log.LastLSN(), lo: i, hi: j})
		i = j
	}
	return ranges
}

// apply is the apply phase of a mutation: under the store gate it appends
// the change record (assigning LSNs), lets stamp install/stamp versions
// under mu with those LSNs, and publishes the new visible position. A nil
// rec applies silently with no LSN (bulk load). Callers hold writeMu. The
// return value is false only when a replica-positioned record was refused by
// the log, in which case nothing was applied.
func (t *Table) apply(rec *repl.Record, stamp func(ranges []lsnRange)) bool {
	if t.gate != nil {
		t.gate.Lock()
		defer t.gate.Unlock()
	}
	var ranges []lsnRange
	if rec != nil {
		if t.log != nil {
			if ranges = appendRecord(t.log, *rec); ranges == nil {
				return false
			}
		} else {
			ranges = []lsnRange{{lsn: t.localSeq.Load() + 1, lo: 0, hi: len(rec.Rows)}}
		}
	}
	t.mu.Lock()
	stamp(ranges)
	if len(ranges) > 0 {
		t.lastMod = ranges[len(ranges)-1].lsn
	}
	t.mu.Unlock()
	if t.store != nil {
		t.store.visible.Store(t.log.LastLSN())
	} else if len(ranges) > 0 {
		t.localSeq.Store(ranges[len(ranges)-1].lsn)
	}
	return true
}

// insertLocked appends one new version per row, stamped per LSN range.
// Callers are inside an apply's stamp callback (mu held).
func (t *Table) insertLocked(rows []value.Row, ranges []lsnRange) {
	for _, rg := range ranges {
		for i := rg.lo; i < rg.hi; i++ {
			t.slots = append(t.slots, &rowVersion{row: rows[i], created: rg.lsn})
		}
	}
}

// liveVersions returns the table's live row versions (newest per slot, not
// deleted) and their slot indices, in slot order. Callers hold writeMu, so
// the result is stable until they apply: only writers stamp versions, and
// writeMu excludes them.
func (t *Table) liveVersions() ([]*rowVersion, []int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	live := make([]*rowVersion, 0, len(t.slots))
	idxs := make([]int, 0, len(t.slots))
	for i, v := range t.slots {
		if v.deleted == 0 {
			live = append(live, v)
			idxs = append(idxs, i)
		}
	}
	return live, idxs
}

// writeAllowed reports the owning store's sticky durability failure, if
// any; a detached table (no owning store) is always writable.
func (t *Table) writeAllowed() error {
	if t.store == nil {
		return nil
	}
	return t.store.writeAllowed()
}

// waitDurable blocks until the mutation this call follows is durable under
// the owning store's policy. Called after the gate-held apply, so an fsync
// wait never blocks snapshot collection, readers, or other tables' writers.
func (t *Table) waitDurable() error {
	if t.store == nil {
		return nil
	}
	return t.store.WaitDurable()
}

// Insert appends a row after type checking. It returns the number of rows
// inserted (always 1 on success).
func (t *Table) Insert(row value.Row) (int, error) {
	return t.InsertBatch([]value.Row{row})
}

// InsertBatch appends many rows, failing atomically on the first bad row.
func (t *Table) InsertBatch(rows []value.Row) (int, error) {
	checked := make([]value.Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return 0, fmt.Errorf("row %d: %v", i+1, err)
		}
		checked[i] = c
	}
	if len(checked) == 0 {
		return 0, nil
	}
	if err := t.writeAllowed(); err != nil {
		return 0, err
	}
	t.writeMu.Lock()
	rec := &repl.Record{Kind: repl.KindInsert, Table: t.def.Name, Rows: checked}
	t.apply(rec, func(ranges []lsnRange) { t.insertLocked(checked, ranges) })
	t.writeMu.Unlock()
	if err := t.waitDurable(); err != nil {
		return 0, err
	}
	return len(checked), nil
}

// Delete removes all rows for which pred returns true and reports how many
// were removed. A nil pred removes every row. pred runs in the decision
// phase — outside the table's locks — so it may itself query this table
// (DELETE ... WHERE x IN (SELECT ... FROM same_table)).
func (t *Table) Delete(pred func(value.Row) (bool, error)) (int, error) {
	if err := t.writeAllowed(); err != nil {
		return 0, err
	}
	n, err := t.delete(pred)
	if err != nil || n == 0 {
		return n, err
	}
	if err := t.waitDurable(); err != nil {
		return 0, err
	}
	return n, nil
}

func (t *Table) delete(pred func(value.Row) (bool, error)) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	live, _ := t.liveVersions()
	targets := live
	if pred != nil {
		targets = targets[:0:0]
		for _, v := range live {
			ok, err := pred(v.row)
			if err != nil {
				return 0, err
			}
			if ok {
				targets = append(targets, v)
			}
		}
	}
	if len(targets) == 0 {
		return 0, nil
	}
	images := make([]value.Row, len(targets))
	for i, v := range targets {
		images[i] = v.row
	}
	rec := &repl.Record{Kind: repl.KindDelete, Table: t.def.Name, Rows: images}
	t.apply(rec, func(ranges []lsnRange) {
		for _, rg := range ranges {
			for i := rg.lo; i < rg.hi; i++ {
				targets[i].deleted = rg.lsn
			}
		}
	})
	return len(targets), nil
}

// Update applies fn to every row matching pred, replacing the row with fn's
// result after type checking. It reports how many rows changed. Like
// Delete's pred, both callbacks run outside the table locks and may query
// any table, including this one.
func (t *Table) Update(pred func(value.Row) (bool, error), fn func(value.Row) (value.Row, error)) (int, error) {
	if err := t.writeAllowed(); err != nil {
		return 0, err
	}
	n, err := t.update(pred, fn)
	if err != nil || n == 0 {
		return n, err
	}
	if err := t.waitDurable(); err != nil {
		return 0, err
	}
	return n, nil
}

func (t *Table) update(pred func(value.Row) (bool, error), fn func(value.Row) (value.Row, error)) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	live, idxs := t.liveVersions()
	var targets []*rowVersion
	var tidx []int
	// The change record carries old/new image pairs in table-scan order, the
	// order a replica re-scans in when it replays the record.
	var oldImages, newImages []value.Row
	for i, v := range live {
		match := true
		if pred != nil {
			ok, err := pred(v.row)
			if err != nil {
				return 0, err
			}
			match = ok
		}
		if !match {
			continue
		}
		nr, err := fn(v.row)
		if err != nil {
			return 0, err
		}
		checked, err := t.checkRow(nr)
		if err != nil {
			return 0, err
		}
		targets = append(targets, v)
		tidx = append(tidx, idxs[i])
		oldImages = append(oldImages, v.row)
		newImages = append(newImages, checked)
	}
	if len(newImages) == 0 {
		return 0, nil
	}
	rec := &repl.Record{Kind: repl.KindUpdate, Table: t.def.Name, Rows: newImages, OldRows: oldImages}
	t.apply(rec, func(ranges []lsnRange) {
		for _, rg := range ranges {
			for i := rg.lo; i < rg.hi; i++ {
				old := targets[i]
				old.deleted = rg.lsn
				t.slots[tidx[i]] = &rowVersion{row: newImages[i], created: rg.lsn, next: old}
			}
		}
	})
	return len(newImages), nil
}

// Store couples a catalog with the physical tables.
//
// Two locks protect it: mu guards the catalog/tables pairing (DDL holds it
// exclusively so the catalog and the heap map never disagree), and gate
// serializes apply phases — record append, version stamping and the
// visible-LSN publication of one mutation (or one transaction commit)
// happen as a unit, so readers pinning the visible position always see
// whole changes and snapshot collection captures an exact LSN. Readers
// never take the gate: they pin the visible LSN and materialize versions
// under per-table read locks.
type Store struct {
	mu      sync.RWMutex
	gate    sync.Mutex
	catalog *catalog.Catalog
	tables  map[string]*Table
	// log is the store's logical change log. DML appends under the gate
	// from Table.apply; DDL appends under mu (exclusive) AND the gate.
	// Snapshot collection holds mu (shared) and gate, so the LSN it captures
	// is exact: no mutation of either kind can be half-recorded.
	log *repl.ChangeLog
	// visible is the published snapshot position: the LSN up to which every
	// change is fully stamped and installed. Readers pin it (PinSnapshot);
	// appliers advance it as the last step of their gate-held apply. It
	// equals log.LastLSN() whenever the gate is free.
	visible atomic.Uint64
	// pinMu guards pins, the multiset of snapshot LSNs readers currently
	// hold (mvcc.go); the vacuum horizon is their minimum.
	pinMu sync.Mutex
	pins  map[uint64]int
	// vacuumRuns/vacuumRemoved/conflicts are the MVCC observability
	// counters behind SHOW mvcc_status.
	vacuumRuns    atomic.Uint64
	vacuumRemoved atomic.Uint64
	conflicts     atomic.Uint64
	// origin identifies the history this store's LSNs belong to: random at
	// creation, adopted from the snapshot on Restore. Two stores share an
	// origin exactly when one descends from the other's history, so a
	// replication follower whose origin differs from the primary's must
	// bootstrap from a snapshot — its LSNs count a different past, even if
	// the numbers happen to line up.
	origin atomic.Uint64
	// dur holds the store's Durability gate (a durabilityBox; nil d when the
	// store is purely in-memory). Loaded on every mutation, stored once at
	// startup, hence atomic rather than under mu.
	dur atomic.Value
}

// Durability is the write-ahead log's contract with the store: WaitDurable
// blocks until everything the change log accepted up to lsn is persistent
// under the configured sync policy, and Err reports the sticky failure that
// makes the store read-only (a write that may have been lost must never be
// acknowledged, and no later write may be accepted on top of it).
type Durability interface {
	WaitDurable(lsn uint64) error
	Err() error
}

type durabilityBox struct{ d Durability }

// SetDurability installs (or, with nil, removes) the durability gate. The
// WAL manager calls it after recovery, before the store serves traffic.
func (s *Store) SetDurability(d Durability) {
	s.dur.Store(durabilityBox{d: d})
}

func (s *Store) durability() Durability {
	if box, ok := s.dur.Load().(durabilityBox); ok {
		return box.d
	}
	return nil
}

// Durability returns the installed durability gate (nil when the store is
// purely in-memory). The cluster layer uses it to wrap the WAL gate with a
// replica-acknowledgment quorum without the two layers knowing each other.
func (s *Store) Durability() Durability { return s.durability() }

// WaitDurable blocks until the store's current change-log position is
// durable. Mutations call it after their critical section: the log position
// is at least their own record's LSN, and durability is monotone, so
// waiting for the newer position is correct (and naturally group-commits
// concurrent writers). A replication follower calls it once per applied
// batch instead of once per record.
func (s *Store) WaitDurable() error {
	d := s.durability()
	if d == nil {
		return nil
	}
	return d.WaitDurable(s.log.LastLSN())
}

// writeAllowed refuses new mutations while the durability gate's sticky
// failure stands; reads are unaffected.
func (s *Store) writeAllowed() error {
	d := s.durability()
	if d == nil {
		return nil
	}
	return d.Err()
}

// AdoptOrigin stamps the store with a history identifier recovered from an
// on-disk artifact (a WAL segment header when no snapshot survived). Zero —
// "no origin recorded" — is ignored.
func (s *Store) AdoptOrigin(origin uint64) {
	if origin != 0 {
		s.origin.Store(origin)
	}
}

// NewStore creates a store over a fresh catalog.
func NewStore() *Store {
	s := &Store{
		catalog: catalog.New(),
		tables:  make(map[string]*Table),
		log:     repl.NewChangeLog(),
		pins:    make(map[uint64]int),
	}
	s.origin.Store(newOrigin())
	return s
}

// newOrigin draws a random non-zero history identifier.
func newOrigin() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("storage: reading randomness: %v", err))
		}
		if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
}

// Origin returns the store's history identifier.
func (s *Store) Origin() uint64 { return s.origin.Load() }

// Catalog exposes the schema registry.
func (s *Store) Catalog() *catalog.Catalog { return s.catalog }

// Log exposes the store's change log (replication, tests).
func (s *Store) Log() *repl.ChangeLog { return s.log }

// logDDL appends a catalog-change record under the gate and publishes the
// new visible position. Callers hold s.mu.
func (s *Store) logDDL(rec repl.Record) {
	s.gate.Lock()
	appendRecord(s.log, rec)
	s.visible.Store(s.log.LastLSN())
	s.gate.Unlock()
}

// CreateTable registers the definition and allocates the heap. Catalog entry
// and heap appear atomically with respect to snapshot collection.
func (s *Store) CreateTable(def *catalog.TableDef) (*Table, error) {
	if err := s.writeAllowed(); err != nil {
		return nil, err
	}
	t, err := s.createTable(def, 0)
	if err != nil {
		return nil, err
	}
	if err := s.WaitDurable(); err != nil {
		return nil, err
	}
	return t, nil
}

func (s *Store) createTable(def *catalog.TableDef, lsn uint64) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.CreateTable(def); err != nil {
		return nil, err
	}
	t := s.attach(def)
	s.logDDL(repl.Record{LSN: lsn, Kind: repl.KindCreateTable, Table: def.Name, Columns: def.Columns})
	return t, nil
}

// attach allocates the heap for a registered definition. Callers hold s.mu.
func (s *Store) attach(def *catalog.TableDef) *Table {
	t := NewTable(def)
	t.gate = &s.gate
	t.log = s.log
	t.store = s
	s.tables[keyOf(def.Name)] = t
	return t
}

// DropTable removes definition and data atomically.
func (s *Store) DropTable(name string) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.dropTable(name, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

func (s *Store) dropTable(name string, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.DropTable(name); err != nil {
		return err
	}
	delete(s.tables, keyOf(name))
	s.logDDL(repl.Record{LSN: lsn, Kind: repl.KindDropTable, Table: name})
	return nil
}

// CreateView registers a view in the catalog and logs the change. View DDL
// must go through the store (not the catalog directly) on any database that
// may have replication followers.
func (s *Store) CreateView(def *catalog.ViewDef) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.createView(def, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

func (s *Store) createView(def *catalog.ViewDef, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.CreateView(def); err != nil {
		return err
	}
	s.logDDL(repl.Record{LSN: lsn, Kind: repl.KindCreateView, Table: def.Name, ViewText: def.Text, Columns: def.Columns})
	return nil
}

// DropView removes a view and logs the change.
func (s *Store) DropView(name string) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.dropView(name, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

func (s *Store) dropView(name string, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.DropView(name); err != nil {
		return err
	}
	s.logDDL(repl.Record{LSN: lsn, Kind: repl.KindDropView, Table: name})
	return nil
}

// Table returns the heap for the named table, or nil.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[keyOf(name)]
}

// Analyze refreshes the catalog statistics (row count and per-column distinct
// fraction) for the named table, or for all tables when name is empty.
func (s *Store) Analyze(name string) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.analyze(name, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

// analyze does the statistics refresh and logs it. The scan runs over the
// currently visible rows (statistics are advisory and influence plan
// choice, never results), so a replica's ANALYZE may interleave slightly
// differently with concurrent DML than the primary's did — its statistics
// can differ transiently, its data cannot.
func (s *Store) analyze(name string, lsn uint64) error {
	names := []string{name}
	if name == "" {
		names = s.catalog.TableNames()
	}
	for _, n := range names {
		t := s.Table(n)
		if t == nil {
			return fmt.Errorf("table %q does not exist", n)
		}
		rows := t.Snapshot()
		s.catalog.SetRowCount(n, len(rows))
		for ci, col := range t.Def().Columns {
			if len(rows) == 0 {
				s.catalog.SetDistinctFrac(n, col.Name, 1)
				continue
			}
			seen := make(map[string]struct{}, len(rows))
			for _, r := range rows {
				seen[r[ci].Key()] = struct{}{}
			}
			s.catalog.SetDistinctFrac(n, col.Name, float64(len(seen))/float64(len(rows)))
		}
	}
	s.gate.Lock()
	appendRecord(s.log, repl.Record{LSN: lsn, Kind: repl.KindAnalyze, Table: name})
	s.visible.Store(s.log.LastLSN())
	s.gate.Unlock()
	return nil
}

// --- replication apply ----------------------------------------------------------

// ApplyChange replays one change record from a primary's feed: it performs
// the mutation and appends the record to this store's own log at the
// primary's LSN, atomically with respect to snapshot collection and
// concurrent readers. Records must arrive in LSN order (the caller —
// internal/server's follower — verifies continuity against Log().LastLSN()
// before applying).
//
// DML against a relation this store does not have is skipped silently: the
// primary logs mutations decided against a table heap that a concurrent DROP
// already detached, and the visible state on both sides is identical — no
// table. A row-image mismatch, by contrast, means the replica has diverged
// and is returned as an error so the caller can re-bootstrap from a
// snapshot.
func (s *Store) ApplyChange(rec repl.Record) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	switch rec.Kind {
	case repl.KindCreateTable:
		cols := append([]catalog.Column(nil), rec.Columns...)
		_, err := s.createTable(&catalog.TableDef{Name: rec.Table, Columns: cols}, rec.LSN)
		return err
	case repl.KindDropTable:
		return s.dropTable(rec.Table, rec.LSN)
	case repl.KindCreateView:
		cols := append([]catalog.Column(nil), rec.Columns...)
		return s.createView(&catalog.ViewDef{Name: rec.Table, Text: rec.ViewText, Columns: cols}, rec.LSN)
	case repl.KindDropView:
		return s.dropView(rec.Table, rec.LSN)
	case repl.KindAnalyze:
		// The primary logs ANALYZE outside the DDL lock (statistics are
		// advisory), so its record can land after a concurrent DROP of its
		// target. Like DML on a dropped table, that replays as a logged
		// no-op rather than a divergence.
		if rec.Table != "" && s.Table(rec.Table) == nil {
			s.logSkipped(rec)
			return nil
		}
		return s.analyze(rec.Table, rec.LSN)
	case repl.KindInsert, repl.KindDelete, repl.KindUpdate:
		t := s.Table(rec.Table)
		if t == nil {
			// Mutation against a dropped table: a no-op on the primary's
			// visible state too. Keep the LSN space dense by logging the
			// skip.
			s.logSkipped(rec)
			return nil
		}
		if err := t.applyChange(rec); err != nil {
			return err
		}
		// Mirror the engine's post-DML statistics refresh (runInsert and
		// runDelete call SetRowCount): cost-based plan choices — and with
		// them un-ORDERed result order — must not drift between primary and
		// replica on cardinality alone.
		if rec.Kind != repl.KindUpdate {
			s.catalog.SetRowCount(rec.Table, t.RowCount())
		}
		return nil
	}
	return fmt.Errorf("storage: unknown change record kind %d", rec.Kind)
}

// logSkipped records a replayed change whose target relation is gone,
// keeping the LSN space dense.
func (s *Store) logSkipped(rec repl.Record) {
	s.mu.Lock()
	s.logDDL(rec)
	s.mu.Unlock()
}

// applyChange replays one DML record on the table: it matches the record's
// row images against the live versions exactly as the primary's scan
// decided them, then stamps versions at the record's LSN.
func (t *Table) applyChange(rec repl.Record) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	switch rec.Kind {
	case repl.KindInsert:
		t.apply(&rec, func(ranges []lsnRange) { t.insertLocked(rec.Rows, ranges) })
		return nil
	case repl.KindDelete:
		targets, err := t.matchImages(rec.Rows)
		if err != nil {
			return fmt.Errorf("table %q: %v", t.def.Name, err)
		}
		t.apply(&rec, func(ranges []lsnRange) {
			for _, rg := range ranges {
				for i := rg.lo; i < rg.hi; i++ {
					targets[i].deleted = rg.lsn
				}
			}
		})
		return nil
	case repl.KindUpdate:
		targets, tidx, news, err := t.matchReplacements(rec.OldRows, rec.Rows)
		if err != nil {
			return fmt.Errorf("table %q: %v", t.def.Name, err)
		}
		t.apply(&rec, func(ranges []lsnRange) {
			for _, rg := range ranges {
				for i := rg.lo; i < rg.hi; i++ {
					old := targets[i]
					old.deleted = rg.lsn
					t.slots[tidx[i]] = &rowVersion{row: news[i], created: rg.lsn, next: old}
				}
			}
		})
		return nil
	}
	return fmt.Errorf("storage: unexpected DML record kind %d", rec.Kind)
}

// matchImages resolves deleted row images to live versions by multiset match
// in slot order — the order the primary's scan removed them in, so the
// surviving rows come out byte-identical to the primary's.
func (t *Table) matchImages(images []value.Row) ([]*rowVersion, error) {
	pending := make(map[string]int, len(images))
	var keyBuf []byte
	for _, img := range images {
		keyBuf = img.AppendKey(keyBuf[:0])
		pending[string(keyBuf)]++
	}
	live, _ := t.liveVersions()
	targets := make([]*rowVersion, 0, len(images))
	for _, v := range live {
		keyBuf = v.row.AppendKey(keyBuf[:0])
		if n := pending[string(keyBuf)]; n > 0 {
			pending[string(keyBuf)] = n - 1
			targets = append(targets, v)
		}
	}
	if len(targets) != len(images) {
		return nil, fmt.Errorf("replica diverged: %d of %d deleted row images not found", len(images)-len(targets), len(images))
	}
	return targets, nil
}

// matchReplacements resolves updated old-row images to live versions,
// matching in slot order like matchImages. Duplicate old images consume
// their new images in order, reproducing the primary's scan exactly. The
// returned news are reordered into slot order alongside their targets.
func (t *Table) matchReplacements(olds, news []value.Row) ([]*rowVersion, []int, []value.Row, error) {
	if len(olds) != len(news) {
		return nil, nil, nil, fmt.Errorf("replica diverged: update record with %d old and %d new images", len(olds), len(news))
	}
	queue := make(map[string][]int, len(olds))
	var keyBuf []byte
	for i, img := range olds {
		keyBuf = img.AppendKey(keyBuf[:0])
		queue[string(keyBuf)] = append(queue[string(keyBuf)], i)
	}
	live, idxs := t.liveVersions()
	var targets []*rowVersion
	var tidx []int
	var ordered []value.Row
	for i, v := range live {
		keyBuf = v.row.AppendKey(keyBuf[:0])
		if q := queue[string(keyBuf)]; len(q) > 0 {
			ordered = append(ordered, news[q[0]])
			queue[string(keyBuf)] = q[1:]
			targets = append(targets, v)
			tidx = append(tidx, idxs[i])
		}
	}
	if len(targets) != len(olds) {
		return nil, nil, nil, fmt.Errorf("replica diverged: %d of %d updated row images not found", len(olds)-len(targets), len(olds))
	}
	return targets, tidx, ordered, nil
}

func keyOf(name string) string {
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
