// Package storage implements the in-memory heap storage engine under the
// Perm catalog: append-only row slices per table with tombstone deletes,
// type-checked inserts, full-scan cursors, and a store that ties table data
// to the catalog the way PostgreSQL's heap ties to its system catalogs.
package storage

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"perm/internal/catalog"
	"perm/internal/repl"
	"perm/internal/value"
)

// Table holds the rows of one base relation. It is safe for concurrent use;
// scans take a snapshot of the current row slice, so readers never observe a
// partially applied mutation.
//
// Mutations run in two phases under writeMu (which serializes writers per
// table): first the decision phase evaluates predicates and update
// expressions against a snapshot WITHOUT holding mu — so a WHERE subquery
// may scan any table, including this one, without deadlocking — then the
// apply phase briefly takes the snapshot gate (shared) and mu (exclusive) to
// swap the new row slice in. writeMu makes the snapshot stable for the
// duration of the decision phase, so nothing is decided against stale rows.
type Table struct {
	writeMu sync.Mutex
	mu      sync.RWMutex
	def     *catalog.TableDef
	rows    []value.Row
	// gate, when non-nil, is the owning store's snapshot gate: the apply
	// phase holds it shared so Store.Save can briefly exclude all writers and
	// collect a point-in-time snapshot across every table (see
	// Store.collect). No store or table lookups happen under it.
	gate *sync.RWMutex
	// log, when non-nil, is the owning store's change log. Mutations append
	// their record inside the same gate-shared critical section that swaps
	// the row slice in, so a snapshot (gate exclusive) always captures a row
	// state and a log position that agree exactly.
	log *repl.ChangeLog
	// store, when non-nil, is the owning store — mutations consult its
	// durability gate before deciding and wait on it before acknowledging.
	store *Store
}

// NewTable creates an empty table for the definition.
func NewTable(def *catalog.TableDef) *Table {
	return &Table{def: def}
}

// Def returns the table definition.
func (t *Table) Def() *catalog.TableDef { return t.def }

// checkRow validates arity, nullability and coerces values to column types.
func (t *Table) checkRow(row value.Row) (value.Row, error) {
	if len(row) != len(t.def.Columns) {
		return nil, fmt.Errorf("table %q expects %d values, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	out := make(value.Row, len(row))
	for i, v := range row {
		col := t.def.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("null value in column %q of table %q violates not-null constraint",
					col.Name, t.def.Name)
			}
			out[i] = value.Null
			continue
		}
		cv, err := value.Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("column %q of table %q: %v", col.Name, t.def.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// applyRows is the apply phase of a mutation: it installs the new row slice
// under the gate (shared) and mu (exclusive), and appends the mutation's
// change record — in the same gate-shared critical section, so snapshot
// collection can never observe the rows without the record or vice versa. A
// nil rec applies silently (no-op mutations are not logged). Callers hold
// writeMu.
func (t *Table) applyRows(rows []value.Row, rec *repl.Record) {
	if t.gate != nil {
		t.gate.RLock()
		defer t.gate.RUnlock()
	}
	t.mu.Lock()
	t.rows = rows
	t.mu.Unlock()
	if rec != nil && t.log != nil {
		appendRecord(t.log, *rec)
	}
}

// maxRecordRows and maxRecordBytes cap one change record: a single huge
// mutation (CREATE TABLE AS over a large provenance query, an unqualified
// DELETE or UPDATE on a wide table) is logged as several consecutive
// records, so an encoded record always fits comfortably inside a wire frame
// — a record that cannot frame would wedge every subscription on it
// forever. The byte bound is approximate (string payloads dominate); 8 MiB
// leaves an 8× margin under the 64 MiB frame limit. The split happens
// inside one apply critical section, so snapshots still see all or none of
// it.
const (
	maxRecordRows  = 4096
	maxRecordBytes = 8 << 20
)

// approxRowBytes estimates a row image's encoded size.
func approxRowBytes(row value.Row) int {
	n := 16 * len(row)
	for _, v := range row {
		n += len(v.S)
	}
	return n
}

// appendRecord routes a record to the log: records without an LSN (primary
// mutations) are assigned the next ones, splitting oversized row sets;
// records carrying an LSN (a replica replaying the primary's feed — already
// split by the primary) must land at exactly that position. The replica's
// apply loop verifies continuity before mutating, so a failed AppendAt here
// means that check was bypassed — a programming error — and the record is
// dropped rather than corrupting the LSN space.
func appendRecord(log *repl.ChangeLog, rec repl.Record) {
	if rec.LSN != 0 {
		_ = log.AppendAt(rec)
		return
	}
	if len(rec.Rows) == 0 {
		log.Append(rec)
		return
	}
	for i := 0; i < len(rec.Rows); {
		j, bytes := i, 0
		for j < len(rec.Rows) && j-i < maxRecordRows {
			b := approxRowBytes(rec.Rows[j])
			if rec.OldRows != nil {
				b += approxRowBytes(rec.OldRows[j])
			}
			// Always take at least one row; a single row beyond the byte
			// bound still has to travel somehow.
			if j > i && bytes+b > maxRecordBytes {
				break
			}
			bytes += b
			j++
		}
		if i == 0 && j == len(rec.Rows) {
			log.Append(rec) // common case: no split
			return
		}
		sub := repl.Record{Kind: rec.Kind, Table: rec.Table, Rows: rec.Rows[i:j]}
		if rec.OldRows != nil {
			sub.OldRows = rec.OldRows[i:j]
		}
		log.Append(sub)
		i = j
	}
}

// writeAllowed reports the owning store's sticky durability failure, if
// any; a detached table (no owning store) is always writable.
func (t *Table) writeAllowed() error {
	if t.store == nil {
		return nil
	}
	return t.store.writeAllowed()
}

// waitDurable blocks until the mutation this call follows is durable under
// the owning store's policy. Called after the apply critical section, so an
// fsync wait never blocks snapshot collection or other tables' writers.
func (t *Table) waitDurable() error {
	if t.store == nil {
		return nil
	}
	return t.store.WaitDurable()
}

// Insert appends a row after type checking. It returns the number of rows
// inserted (always 1 on success).
func (t *Table) Insert(row value.Row) (int, error) {
	return t.InsertBatch([]value.Row{row})
}

// InsertBatch appends many rows, failing atomically on the first bad row.
func (t *Table) InsertBatch(rows []value.Row) (int, error) {
	checked := make([]value.Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return 0, fmt.Errorf("row %d: %v", i+1, err)
		}
		checked[i] = c
	}
	if len(checked) == 0 {
		return 0, nil
	}
	if err := t.writeAllowed(); err != nil {
		return 0, err
	}
	t.writeMu.Lock()
	rec := &repl.Record{Kind: repl.KindInsert, Table: t.def.Name, Rows: checked}
	t.applyRows(append(t.snapshotLocked(), checked...), rec)
	t.writeMu.Unlock()
	if err := t.waitDurable(); err != nil {
		return 0, err
	}
	return len(checked), nil
}

// snapshotLocked reads the current rows for a mutation's decision phase.
// Callers hold writeMu, so the result cannot change until they apply.
func (t *Table) snapshotLocked() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Snapshot returns the current rows WITHOUT copying.
//
// Aliasing contract: the returned slice header aliases the table's live row
// slice, which is safe because every mutation is copy-on-write with respect
// to previously returned snapshots:
//
//   - Insert/InsertBatch append past the snapshot's length; a concurrent
//     append that grows the backing array never writes into the prefix a
//     snapshot can see, and an in-place append only writes beyond its length.
//   - Delete rebuilds the kept rows into a fresh backing array (t.rows[:0:0]).
//   - Update writes every surviving row into a freshly allocated slice.
//
// Row values themselves are immutable once stored. Callers (scans, ANALYZE,
// persistence) therefore must treat both the slice and its rows as read-only;
// the executor relies on this to stream tables with zero copies.
func (t *Table) Snapshot() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// RowCount returns the current number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Delete removes all rows for which pred returns true and reports how many
// were removed. A nil pred removes every row. pred runs in the decision
// phase — outside the table's read-write lock — so it may itself query this
// table (DELETE ... WHERE x IN (SELECT ... FROM same_table)).
func (t *Table) Delete(pred func(value.Row) (bool, error)) (int, error) {
	if err := t.writeAllowed(); err != nil {
		return 0, err
	}
	n, err := t.delete(pred)
	if err != nil || n == 0 {
		return n, err
	}
	if err := t.waitDurable(); err != nil {
		return 0, err
	}
	return n, nil
}

func (t *Table) delete(pred func(value.Row) (bool, error)) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if pred == nil {
		rows := t.snapshotLocked()
		if len(rows) == 0 {
			return 0, nil
		}
		rec := &repl.Record{Kind: repl.KindDelete, Table: t.def.Name, Rows: rows}
		t.applyRows(nil, rec)
		return len(rows), nil
	}
	rows := t.snapshotLocked()
	kept := rows[:0:0]
	var removed []value.Row
	for _, r := range rows {
		ok, err := pred(r)
		if err != nil {
			return 0, err
		}
		if ok {
			removed = append(removed, r)
			continue
		}
		kept = append(kept, r)
	}
	if len(removed) == 0 {
		return 0, nil
	}
	rec := &repl.Record{Kind: repl.KindDelete, Table: t.def.Name, Rows: removed}
	t.applyRows(kept, rec)
	return len(removed), nil
}

// Update applies fn to every row matching pred, replacing the row with fn's
// result after type checking. It reports how many rows changed. Like
// Delete's pred, both callbacks run outside the table lock and may query any
// table, including this one.
func (t *Table) Update(pred func(value.Row) (bool, error), fn func(value.Row) (value.Row, error)) (int, error) {
	if err := t.writeAllowed(); err != nil {
		return 0, err
	}
	n, err := t.update(pred, fn)
	if err != nil || n == 0 {
		return n, err
	}
	if err := t.waitDurable(); err != nil {
		return 0, err
	}
	return n, nil
}

func (t *Table) update(pred func(value.Row) (bool, error), fn func(value.Row) (value.Row, error)) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	rows := t.snapshotLocked()
	out := make([]value.Row, len(rows))
	// The change record carries old/new image pairs in table-scan order, the
	// order a replica re-scans in when it replays the record.
	var oldImages, newImages []value.Row
	for i, r := range rows {
		match := true
		if pred != nil {
			ok, err := pred(r)
			if err != nil {
				return 0, err
			}
			match = ok
		}
		if !match {
			out[i] = r
			continue
		}
		nr, err := fn(r)
		if err != nil {
			return 0, err
		}
		checked, err := t.checkRow(nr)
		if err != nil {
			return 0, err
		}
		out[i] = checked
		oldImages = append(oldImages, r)
		newImages = append(newImages, checked)
	}
	if len(newImages) == 0 {
		return 0, nil
	}
	rec := &repl.Record{Kind: repl.KindUpdate, Table: t.def.Name, Rows: newImages, OldRows: oldImages}
	t.applyRows(out, rec)
	return len(newImages), nil
}

// Store couples a catalog with the physical tables.
//
// Two locks protect it: mu guards the catalog/tables pairing (DDL holds it
// exclusively so the catalog and the heap map never disagree), and gate
// orders row mutations against snapshot collection — writers hold it shared,
// Save's collect phase holds it exclusively for the microseconds it takes to
// capture every table's row-slice header, which is all a point-in-time
// snapshot needs under the copy-on-write aliasing contract of
// Table.Snapshot.
type Store struct {
	mu      sync.RWMutex
	gate    sync.RWMutex
	catalog *catalog.Catalog
	tables  map[string]*Table
	// log is the store's logical change log. DML appends under the gate
	// (shared) from Table.applyRows; DDL appends under mu (exclusive) here.
	// Snapshot collection holds mu (shared) AND gate (exclusive), so the LSN
	// it captures is exact: no mutation of either kind can be half-recorded.
	log *repl.ChangeLog
	// origin identifies the history this store's LSNs belong to: random at
	// creation, adopted from the snapshot on Restore. Two stores share an
	// origin exactly when one descends from the other's history, so a
	// replication follower whose origin differs from the primary's must
	// bootstrap from a snapshot — its LSNs count a different past, even if
	// the numbers happen to line up.
	origin atomic.Uint64
	// dur holds the store's Durability gate (a durabilityBox; nil d when the
	// store is purely in-memory). Loaded on every mutation, stored once at
	// startup, hence atomic rather than under mu.
	dur atomic.Value
}

// Durability is the write-ahead log's contract with the store: WaitDurable
// blocks until everything the change log accepted up to lsn is persistent
// under the configured sync policy, and Err reports the sticky failure that
// makes the store read-only (a write that may have been lost must never be
// acknowledged, and no later write may be accepted on top of it).
type Durability interface {
	WaitDurable(lsn uint64) error
	Err() error
}

type durabilityBox struct{ d Durability }

// SetDurability installs (or, with nil, removes) the durability gate. The
// WAL manager calls it after recovery, before the store serves traffic.
func (s *Store) SetDurability(d Durability) {
	s.dur.Store(durabilityBox{d: d})
}

func (s *Store) durability() Durability {
	if box, ok := s.dur.Load().(durabilityBox); ok {
		return box.d
	}
	return nil
}

// Durability returns the installed durability gate (nil when the store is
// purely in-memory). The cluster layer uses it to wrap the WAL gate with a
// replica-acknowledgment quorum without the two layers knowing each other.
func (s *Store) Durability() Durability { return s.durability() }

// WaitDurable blocks until the store's current change-log position is
// durable. Mutations call it after their critical section: the log position
// is at least their own record's LSN, and durability is monotone, so
// waiting for the newer position is correct (and naturally group-commits
// concurrent writers). A replication follower calls it once per applied
// batch instead of once per record.
func (s *Store) WaitDurable() error {
	d := s.durability()
	if d == nil {
		return nil
	}
	return d.WaitDurable(s.log.LastLSN())
}

// writeAllowed refuses new mutations while the durability gate's sticky
// failure stands; reads are unaffected.
func (s *Store) writeAllowed() error {
	d := s.durability()
	if d == nil {
		return nil
	}
	return d.Err()
}

// AdoptOrigin stamps the store with a history identifier recovered from an
// on-disk artifact (a WAL segment header when no snapshot survived). Zero —
// "no origin recorded" — is ignored.
func (s *Store) AdoptOrigin(origin uint64) {
	if origin != 0 {
		s.origin.Store(origin)
	}
}

// NewStore creates a store over a fresh catalog.
func NewStore() *Store {
	s := &Store{
		catalog: catalog.New(),
		tables:  make(map[string]*Table),
		log:     repl.NewChangeLog(),
	}
	s.origin.Store(newOrigin())
	return s
}

// newOrigin draws a random non-zero history identifier.
func newOrigin() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("storage: reading randomness: %v", err))
		}
		if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
}

// Origin returns the store's history identifier.
func (s *Store) Origin() uint64 { return s.origin.Load() }

// Catalog exposes the schema registry.
func (s *Store) Catalog() *catalog.Catalog { return s.catalog }

// Log exposes the store's change log (replication, tests).
func (s *Store) Log() *repl.ChangeLog { return s.log }

// CreateTable registers the definition and allocates the heap. Catalog entry
// and heap appear atomically with respect to snapshot collection.
func (s *Store) CreateTable(def *catalog.TableDef) (*Table, error) {
	if err := s.writeAllowed(); err != nil {
		return nil, err
	}
	t, err := s.createTable(def, 0)
	if err != nil {
		return nil, err
	}
	if err := s.WaitDurable(); err != nil {
		return nil, err
	}
	return t, nil
}

func (s *Store) createTable(def *catalog.TableDef, lsn uint64) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.CreateTable(def); err != nil {
		return nil, err
	}
	t := s.attach(def)
	appendRecord(s.log, repl.Record{LSN: lsn, Kind: repl.KindCreateTable, Table: def.Name, Columns: def.Columns})
	return t, nil
}

// attach allocates the heap for a registered definition. Callers hold s.mu.
func (s *Store) attach(def *catalog.TableDef) *Table {
	t := NewTable(def)
	t.gate = &s.gate
	t.log = s.log
	t.store = s
	s.tables[keyOf(def.Name)] = t
	return t
}

// DropTable removes definition and data atomically.
func (s *Store) DropTable(name string) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.dropTable(name, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

func (s *Store) dropTable(name string, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.DropTable(name); err != nil {
		return err
	}
	delete(s.tables, keyOf(name))
	appendRecord(s.log, repl.Record{LSN: lsn, Kind: repl.KindDropTable, Table: name})
	return nil
}

// CreateView registers a view in the catalog and logs the change. View DDL
// must go through the store (not the catalog directly) on any database that
// may have replication followers.
func (s *Store) CreateView(def *catalog.ViewDef) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.createView(def, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

func (s *Store) createView(def *catalog.ViewDef, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.CreateView(def); err != nil {
		return err
	}
	appendRecord(s.log, repl.Record{LSN: lsn, Kind: repl.KindCreateView, Table: def.Name, ViewText: def.Text, Columns: def.Columns})
	return nil
}

// DropView removes a view and logs the change.
func (s *Store) DropView(name string) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.dropView(name, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

func (s *Store) dropView(name string, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.DropView(name); err != nil {
		return err
	}
	appendRecord(s.log, repl.Record{LSN: lsn, Kind: repl.KindDropView, Table: name})
	return nil
}

// Table returns the heap for the named table, or nil.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[keyOf(name)]
}

// Analyze refreshes the catalog statistics (row count and per-column distinct
// fraction) for the named table, or for all tables when name is empty.
func (s *Store) Analyze(name string) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := s.analyze(name, 0); err != nil {
		return err
	}
	return s.WaitDurable()
}

// analyze does the statistics refresh and logs it. The record is appended
// outside the gate (statistics are advisory and influence plan choice, never
// results), so a replica's ANALYZE may interleave slightly differently with
// concurrent DML than the primary's did — its statistics can differ
// transiently, its data cannot.
func (s *Store) analyze(name string, lsn uint64) error {
	names := []string{name}
	if name == "" {
		names = s.catalog.TableNames()
	}
	for _, n := range names {
		t := s.Table(n)
		if t == nil {
			return fmt.Errorf("table %q does not exist", n)
		}
		rows := t.Snapshot()
		s.catalog.SetRowCount(n, len(rows))
		for ci, col := range t.Def().Columns {
			if len(rows) == 0 {
				s.catalog.SetDistinctFrac(n, col.Name, 1)
				continue
			}
			seen := make(map[string]struct{}, len(rows))
			for _, r := range rows {
				seen[r[ci].Key()] = struct{}{}
			}
			s.catalog.SetDistinctFrac(n, col.Name, float64(len(seen))/float64(len(rows)))
		}
	}
	appendRecord(s.log, repl.Record{LSN: lsn, Kind: repl.KindAnalyze, Table: name})
	return nil
}

// --- replication apply ----------------------------------------------------------

// ApplyChange replays one change record from a primary's feed: it performs
// the mutation and appends the record to this store's own log at the
// primary's LSN, atomically with respect to snapshot collection. Records
// must arrive in LSN order (the caller — internal/server's follower —
// verifies continuity against Log().LastLSN() before applying).
//
// DML against a relation this store does not have is skipped silently: the
// primary logs mutations decided against a table heap that a concurrent DROP
// already detached, and the visible state on both sides is identical — no
// table. A row-image mismatch, by contrast, means the replica has diverged
// and is returned as an error so the caller can re-bootstrap from a
// snapshot.
func (s *Store) ApplyChange(rec repl.Record) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	switch rec.Kind {
	case repl.KindCreateTable:
		cols := append([]catalog.Column(nil), rec.Columns...)
		_, err := s.createTable(&catalog.TableDef{Name: rec.Table, Columns: cols}, rec.LSN)
		return err
	case repl.KindDropTable:
		return s.dropTable(rec.Table, rec.LSN)
	case repl.KindCreateView:
		cols := append([]catalog.Column(nil), rec.Columns...)
		return s.createView(&catalog.ViewDef{Name: rec.Table, Text: rec.ViewText, Columns: cols}, rec.LSN)
	case repl.KindDropView:
		return s.dropView(rec.Table, rec.LSN)
	case repl.KindAnalyze:
		// The primary logs ANALYZE outside the DDL lock (statistics are
		// advisory), so its record can land after a concurrent DROP of its
		// target. Like DML on a dropped table, that replays as a logged
		// no-op rather than a divergence.
		if rec.Table != "" && s.Table(rec.Table) == nil {
			s.mu.Lock()
			appendRecord(s.log, rec)
			s.mu.Unlock()
			return nil
		}
		return s.analyze(rec.Table, rec.LSN)
	case repl.KindInsert, repl.KindDelete, repl.KindUpdate:
		t := s.Table(rec.Table)
		if t == nil {
			// Mutation against a dropped table: a no-op on the primary's
			// visible state too. Keep the LSN space dense by logging the
			// skip.
			s.mu.Lock()
			appendRecord(s.log, rec)
			s.mu.Unlock()
			return nil
		}
		if err := t.applyChange(rec); err != nil {
			return err
		}
		// Mirror the engine's post-DML statistics refresh (runInsert and
		// runDelete call SetRowCount): cost-based plan choices — and with
		// them un-ORDERed result order — must not drift between primary and
		// replica on cardinality alone.
		if rec.Kind != repl.KindUpdate {
			s.catalog.SetRowCount(rec.Table, t.RowCount())
		}
		return nil
	}
	return fmt.Errorf("storage: unknown change record kind %d", rec.Kind)
}

// applyChange replays one DML record on the table.
func (t *Table) applyChange(rec repl.Record) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	rows := t.snapshotLocked()
	var next []value.Row
	switch rec.Kind {
	case repl.KindInsert:
		next = append(rows, rec.Rows...)
	case repl.KindDelete:
		var err error
		if next, err = removeImages(rows, rec.Rows); err != nil {
			return fmt.Errorf("table %q: %v", t.def.Name, err)
		}
	case repl.KindUpdate:
		var err error
		if next, err = replaceImages(rows, rec.OldRows, rec.Rows); err != nil {
			return fmt.Errorf("table %q: %v", t.def.Name, err)
		}
	}
	t.applyRows(next, &rec)
	return nil
}

// removeImages deletes the given row images from rows by multiset match in
// table order — the order the primary's scan removed them in, so the
// surviving rows come out byte-identical to the primary's.
func removeImages(rows, images []value.Row) ([]value.Row, error) {
	pending := make(map[string]int, len(images))
	var keyBuf []byte
	for _, img := range images {
		keyBuf = img.AppendKey(keyBuf[:0])
		pending[string(keyBuf)]++
	}
	kept := rows[:0:0]
	matched := 0
	for _, r := range rows {
		keyBuf = r.AppendKey(keyBuf[:0])
		if n := pending[string(keyBuf)]; n > 0 {
			pending[string(keyBuf)] = n - 1
			matched++
			continue
		}
		kept = append(kept, r)
	}
	if matched != len(images) {
		return nil, fmt.Errorf("replica diverged: %d of %d deleted row images not found", len(images)-matched, len(images))
	}
	return kept, nil
}

// replaceImages substitutes old row images with their parallel new images,
// matching in table order like removeImages. Duplicate old images consume
// their new images in order, reproducing the primary's scan exactly.
func replaceImages(rows, olds, news []value.Row) ([]value.Row, error) {
	if len(olds) != len(news) {
		return nil, fmt.Errorf("replica diverged: update record with %d old and %d new images", len(olds), len(news))
	}
	queue := make(map[string][]int, len(olds))
	var keyBuf []byte
	for i, img := range olds {
		keyBuf = img.AppendKey(keyBuf[:0])
		queue[string(keyBuf)] = append(queue[string(keyBuf)], i)
	}
	out := make([]value.Row, len(rows))
	matched := 0
	for i, r := range rows {
		keyBuf = r.AppendKey(keyBuf[:0])
		if idxs := queue[string(keyBuf)]; len(idxs) > 0 {
			out[i] = news[idxs[0]]
			queue[string(keyBuf)] = idxs[1:]
			matched++
			continue
		}
		out[i] = r
	}
	if matched != len(olds) {
		return nil, fmt.Errorf("replica diverged: %d of %d updated row images not found", len(olds)-matched, len(olds))
	}
	return out, nil
}

func keyOf(name string) string {
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
