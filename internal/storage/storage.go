// Package storage implements the in-memory heap storage engine under the
// Perm catalog: append-only row slices per table with tombstone deletes,
// type-checked inserts, full-scan cursors, and a store that ties table data
// to the catalog the way PostgreSQL's heap ties to its system catalogs.
package storage

import (
	"fmt"
	"sync"

	"perm/internal/catalog"
	"perm/internal/value"
)

// Table holds the rows of one base relation. It is safe for concurrent use;
// scans take a snapshot of the current row slice, so readers never observe a
// partially applied mutation.
//
// Mutations run in two phases under writeMu (which serializes writers per
// table): first the decision phase evaluates predicates and update
// expressions against a snapshot WITHOUT holding mu — so a WHERE subquery
// may scan any table, including this one, without deadlocking — then the
// apply phase briefly takes the snapshot gate (shared) and mu (exclusive) to
// swap the new row slice in. writeMu makes the snapshot stable for the
// duration of the decision phase, so nothing is decided against stale rows.
type Table struct {
	writeMu sync.Mutex
	mu      sync.RWMutex
	def     *catalog.TableDef
	rows    []value.Row
	// gate, when non-nil, is the owning store's snapshot gate: the apply
	// phase holds it shared so Store.Save can briefly exclude all writers and
	// collect a point-in-time snapshot across every table (see
	// Store.collect). No store or table lookups happen under it.
	gate *sync.RWMutex
}

// NewTable creates an empty table for the definition.
func NewTable(def *catalog.TableDef) *Table {
	return &Table{def: def}
}

// Def returns the table definition.
func (t *Table) Def() *catalog.TableDef { return t.def }

// checkRow validates arity, nullability and coerces values to column types.
func (t *Table) checkRow(row value.Row) (value.Row, error) {
	if len(row) != len(t.def.Columns) {
		return nil, fmt.Errorf("table %q expects %d values, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	out := make(value.Row, len(row))
	for i, v := range row {
		col := t.def.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("null value in column %q of table %q violates not-null constraint",
					col.Name, t.def.Name)
			}
			out[i] = value.Null
			continue
		}
		cv, err := value.Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("column %q of table %q: %v", col.Name, t.def.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// applyRows is the apply phase of a mutation: it installs the new row slice
// under the gate (shared) and mu (exclusive). Callers hold writeMu.
func (t *Table) applyRows(rows []value.Row) {
	if t.gate != nil {
		t.gate.RLock()
		defer t.gate.RUnlock()
	}
	t.mu.Lock()
	t.rows = rows
	t.mu.Unlock()
}

// Insert appends a row after type checking. It returns the number of rows
// inserted (always 1 on success).
func (t *Table) Insert(row value.Row) (int, error) {
	return t.InsertBatch([]value.Row{row})
}

// InsertBatch appends many rows, failing atomically on the first bad row.
func (t *Table) InsertBatch(rows []value.Row) (int, error) {
	checked := make([]value.Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return 0, fmt.Errorf("row %d: %v", i+1, err)
		}
		checked[i] = c
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.applyRows(append(t.snapshotLocked(), checked...))
	return len(checked), nil
}

// snapshotLocked reads the current rows for a mutation's decision phase.
// Callers hold writeMu, so the result cannot change until they apply.
func (t *Table) snapshotLocked() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Snapshot returns the current rows WITHOUT copying.
//
// Aliasing contract: the returned slice header aliases the table's live row
// slice, which is safe because every mutation is copy-on-write with respect
// to previously returned snapshots:
//
//   - Insert/InsertBatch append past the snapshot's length; a concurrent
//     append that grows the backing array never writes into the prefix a
//     snapshot can see, and an in-place append only writes beyond its length.
//   - Delete rebuilds the kept rows into a fresh backing array (t.rows[:0:0]).
//   - Update writes every surviving row into a freshly allocated slice.
//
// Row values themselves are immutable once stored. Callers (scans, ANALYZE,
// persistence) therefore must treat both the slice and its rows as read-only;
// the executor relies on this to stream tables with zero copies.
func (t *Table) Snapshot() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// RowCount returns the current number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Delete removes all rows for which pred returns true and reports how many
// were removed. A nil pred removes every row. pred runs in the decision
// phase — outside the table's read-write lock — so it may itself query this
// table (DELETE ... WHERE x IN (SELECT ... FROM same_table)).
func (t *Table) Delete(pred func(value.Row) (bool, error)) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if pred == nil {
		n := len(t.snapshotLocked())
		t.applyRows(nil)
		return n, nil
	}
	rows := t.snapshotLocked()
	kept := rows[:0:0]
	removed := 0
	for _, r := range rows {
		ok, err := pred(r)
		if err != nil {
			return 0, err
		}
		if ok {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.applyRows(kept)
	return removed, nil
}

// Update applies fn to every row matching pred, replacing the row with fn's
// result after type checking. It reports how many rows changed. Like
// Delete's pred, both callbacks run outside the table lock and may query any
// table, including this one.
func (t *Table) Update(pred func(value.Row) (bool, error), fn func(value.Row) (value.Row, error)) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	rows := t.snapshotLocked()
	changed := 0
	out := make([]value.Row, len(rows))
	for i, r := range rows {
		match := true
		if pred != nil {
			ok, err := pred(r)
			if err != nil {
				return 0, err
			}
			match = ok
		}
		if !match {
			out[i] = r
			continue
		}
		nr, err := fn(r)
		if err != nil {
			return 0, err
		}
		checked, err := t.checkRow(nr)
		if err != nil {
			return 0, err
		}
		out[i] = checked
		changed++
	}
	t.applyRows(out)
	return changed, nil
}

// Store couples a catalog with the physical tables.
//
// Two locks protect it: mu guards the catalog/tables pairing (DDL holds it
// exclusively so the catalog and the heap map never disagree), and gate
// orders row mutations against snapshot collection — writers hold it shared,
// Save's collect phase holds it exclusively for the microseconds it takes to
// capture every table's row-slice header, which is all a point-in-time
// snapshot needs under the copy-on-write aliasing contract of
// Table.Snapshot.
type Store struct {
	mu      sync.RWMutex
	gate    sync.RWMutex
	catalog *catalog.Catalog
	tables  map[string]*Table
}

// NewStore creates a store over a fresh catalog.
func NewStore() *Store {
	return &Store{catalog: catalog.New(), tables: make(map[string]*Table)}
}

// Catalog exposes the schema registry.
func (s *Store) Catalog() *catalog.Catalog { return s.catalog }

// CreateTable registers the definition and allocates the heap. Catalog entry
// and heap appear atomically with respect to snapshot collection.
func (s *Store) CreateTable(def *catalog.TableDef) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.CreateTable(def); err != nil {
		return nil, err
	}
	t := NewTable(def)
	t.gate = &s.gate
	s.tables[keyOf(def.Name)] = t
	return t, nil
}

// DropTable removes definition and data atomically.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.DropTable(name); err != nil {
		return err
	}
	delete(s.tables, keyOf(name))
	return nil
}

// Table returns the heap for the named table, or nil.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[keyOf(name)]
}

// Analyze refreshes the catalog statistics (row count and per-column distinct
// fraction) for the named table, or for all tables when name is empty.
func (s *Store) Analyze(name string) error {
	names := []string{name}
	if name == "" {
		names = s.catalog.TableNames()
	}
	for _, n := range names {
		t := s.Table(n)
		if t == nil {
			return fmt.Errorf("table %q does not exist", n)
		}
		rows := t.Snapshot()
		s.catalog.SetRowCount(n, len(rows))
		for ci, col := range t.Def().Columns {
			if len(rows) == 0 {
				s.catalog.SetDistinctFrac(n, col.Name, 1)
				continue
			}
			seen := make(map[string]struct{}, len(rows))
			for _, r := range rows {
				seen[r[ci].Key()] = struct{}{}
			}
			s.catalog.SetDistinctFrac(n, col.Name, float64(len(seen))/float64(len(rows)))
		}
	}
	return nil
}

func keyOf(name string) string {
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
