package storage

import (
	"sync"
	"testing"

	"perm/internal/catalog"
	"perm/internal/value"
)

func intTable(t *testing.T, s *Store, name string, cols ...string) *Table {
	t.Helper()
	def := &catalog.TableDef{Name: name}
	for _, c := range cols {
		def.Columns = append(def.Columns, catalog.Column{Name: c, Type: value.KindInt})
	}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestInsertAndScan(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a", "b")
	n, err := tab.Insert(value.Row{value.NewInt(1), value.NewInt(2)})
	if err != nil || n != 1 {
		t.Fatalf("Insert: %d, %v", n, err)
	}
	rows := tab.Snapshot()
	if len(rows) != 1 || rows[0][1].I != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestInsertTypeCoercion(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	if _, err := tab.Insert(value.Row{value.NewString("42")}); err != nil {
		t.Fatalf("string->int coercion on insert: %v", err)
	}
	if got := tab.Snapshot()[0][0]; got.K != value.KindInt || got.I != 42 {
		t.Errorf("stored %v", got)
	}
	if _, err := tab.Insert(value.Row{value.NewString("nope")}); err == nil {
		t.Error("uncoercible insert must fail")
	}
}

func TestInsertArityAndNotNull(t *testing.T) {
	s := NewStore()
	def := &catalog.TableDef{Name: "t", Columns: []catalog.Column{
		{Name: "a", Type: value.KindInt, NotNull: true},
		{Name: "b", Type: value.KindString},
	}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := tab.Insert(value.Row{value.Null, value.NewString("x")}); err == nil {
		t.Error("NOT NULL violation must fail")
	}
	if _, err := tab.Insert(value.Row{value.NewInt(1), value.Null}); err != nil {
		t.Errorf("nullable column must accept NULL: %v", err)
	}
}

func TestInsertBatchAtomicity(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	_, err := tab.InsertBatch([]value.Row{
		{value.NewInt(1)},
		{value.NewString("bad")},
	})
	if err == nil {
		t.Fatal("batch with a bad row must fail")
	}
	if tab.RowCount() != 0 {
		t.Errorf("failed batch must not insert anything, have %d rows", tab.RowCount())
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	for i := 1; i <= 5; i++ {
		tab.Insert(value.Row{value.NewInt(int64(i))})
	}
	n, err := tab.Delete(func(r value.Row) (bool, error) { return r[0].I%2 == 0, nil })
	if err != nil || n != 2 {
		t.Fatalf("Delete: %d, %v", n, err)
	}
	if tab.RowCount() != 3 {
		t.Errorf("rows left = %d", tab.RowCount())
	}
	n, err = tab.Delete(nil)
	if err != nil || n != 3 {
		t.Fatalf("Delete(nil): %d, %v", n, err)
	}
}

func TestUpdate(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	for i := 1; i <= 3; i++ {
		tab.Insert(value.Row{value.NewInt(int64(i))})
	}
	n, err := tab.Update(
		func(r value.Row) (bool, error) { return r[0].I > 1, nil },
		func(r value.Row) (value.Row, error) {
			return value.Row{value.NewInt(r[0].I * 10)}, nil
		})
	if err != nil || n != 2 {
		t.Fatalf("Update: %d, %v", n, err)
	}
	rows := tab.Snapshot()
	if rows[0][0].I != 1 || rows[1][0].I != 20 || rows[2][0].I != 30 {
		t.Errorf("rows = %v", rows)
	}
}

func TestUpdateTypeChecked(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	tab.Insert(value.Row{value.NewInt(1)})
	_, err := tab.Update(nil, func(r value.Row) (value.Row, error) {
		return value.Row{value.NewString("bad")}, nil
	})
	if err == nil {
		t.Error("update writing a bad value must fail")
	}
}

func TestStoreDropTable(t *testing.T) {
	s := NewStore()
	intTable(t, s, "t", "a")
	if err := s.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if s.Table("t") != nil {
		t.Error("heap must be gone")
	}
	if err := s.DropTable("t"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestAnalyze(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a", "b")
	for i := 0; i < 10; i++ {
		tab.Insert(value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 2))})
	}
	if err := s.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	st := s.Catalog().TableStats("t")
	if st.RowCount != 10 {
		t.Errorf("rowcount = %d", st.RowCount)
	}
	if st.DistinctFrac["a"] != 1.0 {
		t.Errorf("distinct frac a = %v", st.DistinctFrac["a"])
	}
	if st.DistinctFrac["b"] != 0.2 {
		t.Errorf("distinct frac b = %v", st.DistinctFrac["b"])
	}
	if err := s.Analyze("missing"); err == nil {
		t.Error("analyzing a missing table must fail")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	tab.Insert(value.Row{value.NewInt(1)})
	snap := tab.Snapshot()
	tab.Insert(value.Row{value.NewInt(2)})
	if len(snap) != 1 {
		t.Error("snapshot must not observe later inserts")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tab.Insert(value.Row{value.NewInt(int64(i*100 + j))})
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = tab.Snapshot()
			}
		}()
	}
	wg.Wait()
	if tab.RowCount() != 400 {
		t.Errorf("rows = %d, want 400", tab.RowCount())
	}
}

// TestSnapshotCopyOnWrite pins the aliasing contract of Snapshot: the shared
// slice returned without copying must stay stable across every mutation kind
// (append, delete, update), since the executor streams it directly.
func TestSnapshotCopyOnWrite(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	for i := 1; i <= 3; i++ {
		tab.Insert(value.Row{value.NewInt(int64(i))})
	}
	snap := tab.Snapshot()

	if _, err := tab.Delete(func(r value.Row) (bool, error) { return r[0].I == 2, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Update(nil, func(r value.Row) (value.Row, error) {
		return value.Row{value.NewInt(r[0].I * 10)}, nil
	}); err != nil {
		t.Fatal(err)
	}
	tab.Insert(value.Row{value.NewInt(99)})

	if len(snap) != 3 {
		t.Fatalf("snapshot length changed to %d", len(snap))
	}
	for i, want := range []int64{1, 2, 3} {
		if snap[i][0].I != want {
			t.Errorf("snapshot row %d = %v, want %d (mutation leaked into snapshot)", i, snap[i][0], want)
		}
	}
}
